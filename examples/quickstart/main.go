// Quickstart: the DieHard heap in stand-alone mode.
//
// Demonstrates the probabilistic memory safety the allocator provides
// with no program changes: double and invalid frees are ignored, heap
// metadata cannot be corrupted from the heap, a modest buffer overflow
// lands on empty space with high probability, and the checked strcpy
// replacement cannot overflow at all.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"diehard"
)

func main() {
	h, err := diehard.NewHeap(diehard.HeapOptions{Seed: 42}) // paper defaults: 384 MB, M = 2
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heap ready (seed %#x)\n\n", h.Seed())

	// Ordinary allocation: pointers are simulated addresses; data access
	// goes through the heap's memory.
	p, err := h.Malloc(64)
	if err != nil {
		log.Fatal(err)
	}
	if err := diehard.WriteString(h.Mem(), p, "hello, infinite heap"); err != nil {
		log.Fatal(err)
	}
	s, _ := diehard.ReadString(h.Mem(), p, 64)
	fmt.Printf("stored and loaded: %q\n", s)

	// Error 1: double free. DieHard validates every free against its
	// segregated bitmap and silently ignores repeats.
	if err := h.Free(p); err != nil {
		log.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("double free: ignored (%d ignored so far)\n", h.Stats().IgnoredFrees)

	// Error 2: invalid free of an interior pointer. Also ignored: the
	// offset is not a multiple of the object size.
	q, _ := h.Malloc(128)
	if err := h.Free(q + 12); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("invalid free: ignored (%d ignored so far)\n", h.Stats().IgnoredFrees)

	// Error 3: a buffer overflow. The write goes one object's width past
	// the end; with the heap nearly empty the neighboring slot is free,
	// so nothing live is harmed — the M-approximation of an infinite
	// heap at work (Theorem 1: at 1/8 full, 87.5% masking with one
	// replica).
	if err := h.Mem().Store64(q+128, 0xbad); err != nil {
		log.Fatal(err)
	}
	fmt.Println("one-object overflow: wrote into empty space, heap intact")

	// Error 4: strcpy with a too-small destination. The checked
	// replacement resolves the destination object's bounds and truncates
	// (§4.4).
	src, _ := h.Malloc(256)
	dst, _ := h.Malloc(16)
	if err := diehard.WriteString(h.Mem(), src, strings.Repeat("A", 200)); err != nil {
		log.Fatal(err)
	}
	n, err := h.Strcpy(dst, src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("checked strcpy: copied %d of 200 bytes into a 16-byte object\n", n)

	// The probabilistic guarantees are computable (§6).
	fmt.Printf("\nTheorem 1: P(mask 1-object overflow, 1/8 full, 3 replicas) = %.4f\n",
		diehard.OverflowMaskProbability(1.0/8, 1, 3))
	fmt.Printf("Theorem 2: P(8-byte object freed 10000 allocs early survives) = %.4f\n",
		diehard.DanglingMaskProbability(10000, 8, (384<<20)/12/2, 1))
	fmt.Printf("Theorem 3: P(detect 16-bit uninitialized read, 3 replicas) = %.5f\n",
		diehard.UninitDetectProbability(16, 3))
}
