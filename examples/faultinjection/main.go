// Fault-injection demo (§7.3.1): inject memory errors into an unaltered
// application and compare the default allocator with DieHard.
//
// The espresso logic minimizer runs ten times under each allocator with
// each of the paper's two fault loads:
//
//   - dangling pointers: half of all objects freed ten allocations too
//     early (frequency 50%, distance 10);
//   - buffer overflows: 1% of requests of 32 bytes or more
//     under-allocated by 4 bytes.
//
// The paper's result: the default allocator never completes correctly
// under the dangling load and crashes or hangs under the overflow load,
// while DieHard runs correctly 9/10 and 10/10 times respectively.
//
//	go run ./examples/faultinjection
package main

import (
	"fmt"
	"log"

	"diehard/internal/exps"
)

func main() {
	const trials = 10
	for _, kind := range []exps.InjectionKind{exps.InjectDangling, exps.InjectOverflow} {
		fmt.Printf("=== %s injection into espresso (%d trials) ===\n", kind, trials)
		for _, alloc := range []string{exps.KindMalloc, exps.KindDieHard} {
			heapSize := 0 // DieHard: paper default 384 MB
			if alloc == exps.KindMalloc {
				heapSize = 64 << 20
			}
			res, err := exps.RunFaultInjection("espresso", alloc,
				exps.InjectionParams{Kind: kind}, trials, 3, heapSize, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-8s correct %2d/%d   crashed %d, wrong output %d, hung %d (injected %d faults)\n",
				alloc, res.Correct, res.Trials, res.Crashed, res.WrongOutput, res.Hung, res.Injected)
		}
		fmt.Println()
	}
	fmt.Println("paper §7.3.1: dangling — default fails all runs, DieHard correct 9/10;")
	fmt.Println("overflow — default crashes 9/10 and hangs 1/10, DieHard correct 10/10.")
}
