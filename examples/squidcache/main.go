// Squid web-cache demo: the paper's "Real Faults" case study (§7.3).
//
// A miniature web cache carries the buffer overflow of Squid 2.3s5: an
// ill-formed request whose URL exceeds a fixed 64-byte key buffer is
// copied with an unchecked strcpy. The same server and the same input
// run against three runtimes:
//
//   - the GNU-libc-style allocator: the overflow smashes a boundary tag
//     and the server crashes;
//
//   - the Boehm-Demers-Weiser-style collector: the overflow corrupts a
//     neighboring cache entry and the server crashes chasing it;
//
//   - DieHard: the overflow lands on an empty random slot and the
//     server keeps answering.
//
//     go run ./examples/squidcache
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"diehard/internal/apps"
	"diehard/internal/exps"
	"diehard/internal/squid"
)

func main() {
	input := squid.IllFormedInput(900)
	fmt.Printf("replaying %d bytes of cache traffic including one ill-formed request\n\n",
		len(input))

	for _, kind := range []string{exps.KindMalloc, exps.KindGC, exps.KindDieHard} {
		alloc, err := exps.NewAllocator(exps.AllocConfig{
			Kind: kind, HeapSize: 64 << 20, Seed: 0x51d,
		})
		if err != nil {
			log.Fatal(err)
		}
		var out bytes.Buffer
		rt := &apps.Runtime{Alloc: alloc, Mem: alloc.Mem(), Input: input, Out: &out}
		err = squid.Run(rt, squid.Options{})
		fmt.Printf("%-8s: ", kind)
		if err != nil {
			fmt.Printf("CRASHED — %v\n", err)
			continue
		}
		fmt.Printf("survived — %s", out.String())
	}

	// And the §4.4 fix: DieHard's checked strcpy makes survival
	// deterministic rather than probabilistic.
	alloc, err := exps.NewAllocator(exps.AllocConfig{
		Kind: exps.KindDieHard, HeapSize: 64 << 20, Seed: 99,
	})
	if err != nil {
		log.Fatal(err)
	}
	var out bytes.Buffer
	rt := &apps.Runtime{Alloc: alloc, Mem: alloc.Mem(), Input: input, Out: &out}
	if err := squid.Run(rt, squid.Options{UseSafeCopy: true}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s: survived — %s", "DieHard+checked-strcpy", out.String())
	fmt.Println(strings.Repeat("-", 60))
	fmt.Println("paper §7.3: crashes with GNU libc and the BDW collector;")
	fmt.Println("\"Using DieHard in stand-alone mode, the overflow has no effect.\"")
}
