// Detection walkthrough: the canary engine turned on through the
// public facade.
//
// DieHard's randomized heap normally *tolerates* memory errors; with
// DetectCanaries it also *reports* them. Free space carries a seeded
// canary pattern, audited when objects are freed, when slots are
// reused, and at heap-check barriers; damaged canaries become Evidence
// records (page, offset, damaged span, neighbor objects, culprit
// allocation site). Running the same buggy program under several
// independently seeded layouts and intersecting the evidence localizes
// the culprit — Exterminator's trick on the DieHard substrate.
//
//	go run ./examples/detection
package main

import (
	"fmt"
	"log"

	"diehard"
)

func main() {
	h, err := diehard.NewHeap(diehard.HeapOptions{
		HeapSize:       64 << 20,
		Seed:           42,
		DetectCanaries: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	mem := h.Memory() // the checked view: loads audit for uninit reads
	fmt.Println("== detection heap ready ==")

	// 1. A buffer overflow: ask for 56 bytes, write 60. The 4 stray
	// bytes damage the slot's canary slack and are caught when the
	// object is freed.
	p, err := h.Malloc(56)
	if err != nil {
		log.Fatal(err)
	}
	if err := mem.Memset(p, 'A', 60); err != nil {
		log.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		log.Fatal(err)
	}

	// 2. A dangling write: free an object, then store through the stale
	// pointer. The freed slot was re-armed with canary, so a heap-check
	// barrier sees the damage.
	q, err := h.Malloc(64)
	if err != nil {
		log.Fatal(err)
	}
	if err := mem.Memset(q, 'B', 64); err != nil {
		log.Fatal(err)
	}
	if err := h.Free(q); err != nil {
		log.Fatal(err)
	}
	if err := mem.Store64(q+8, 0xDEADBEEF); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("heap check found %d new violation(s)\n", h.HeapCheck())

	// 3. An uninitialized read: allocate and read without writing. The
	// object still holds canary, and the checked load reports it.
	r, err := h.Malloc(64)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := mem.Load64(r); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== evidence ==")
	for _, ev := range h.DetectionReport().Evidence {
		fmt.Printf("  %-18s at %-9s page %-5d offset %-4d span %-3d object %#x (site %d)\n",
			ev.Kind, ev.Audit, ev.Page, ev.Offset, ev.Span, ev.Object, ev.AllocSite)
	}

	// 4. Triage: run the same buggy program under 16 independently
	// seeded layouts. The overflow's culprit allocation site recurs in
	// every layout; coincidental neighbors re-randomize away.
	fmt.Println("\n== triage across 16 seeded layouts ==")
	var reports []*diehard.DetectionReport
	for seed := uint64(1); seed <= 16; seed++ {
		hh, err := diehard.NewHeap(diehard.HeapOptions{
			HeapSize: 64 << 20, Seed: seed, DetectCanaries: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		// The "program": three allocations, the second one overflowing.
		for i := 0; i < 3; i++ {
			obj, err := hh.Malloc(56)
			if err != nil {
				log.Fatal(err)
			}
			n := 56
			if i == 1 {
				n = 62 // the bug: 6 bytes past the request
			}
			if err := hh.Memory().Memset(obj, byte('a'+i), n); err != nil {
				log.Fatal(err)
			}
			if err := hh.Free(obj); err != nil {
				log.Fatal(err)
			}
		}
		reports = append(reports, hh.DetectionReport())
	}
	tri := diehard.Triage(diehard.KindOverflow, reports)
	fmt.Printf("detected in %d/%d layouts; culprit allocation site %d "+
		"(confidence %.0f%%), overflow length >= %d bytes\n",
		tri.Detected, tri.Trials, tri.Culprit, 100*tri.Confidence, tri.OverflowLen)

	// 5. The same evidence flows out of the replicated runtime: replicas
	// run detection heaps, and when the voter kills a divergent replica
	// its evidence feeds the triage report (see internal/replicate).
	fmt.Println("\ndone — see `go run ./cmd/detect` for the full graded campaign")
}
