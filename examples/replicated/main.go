// Replicated-mode demo (§5): output voting across randomized replicas,
// including the detection of an uninitialized read (§3.2).
//
// Two programs run under -replicas replicas each (default 3). The first
// is correct: every replica produces the same output despite completely
// different heap layouts, and the pipelined voter commits it. The
// second reads memory it never initialized; each replica's randomized
// fill gives it a different value, no two replicas agree, and the
// runtime terminates the computation — the error is detected rather
// than silently wrong. A final §7.2.3-style sweep reruns an application
// at several replica counts, fanning the sweep points across -workers
// goroutines.
//
//	go run ./examples/replicated
//	go run ./examples/replicated -replicas 5 -workers 4
package main

import (
	"flag"
	"fmt"
	"log"

	"diehard"
	"diehard/internal/exps"
)

func main() {
	var (
		replicas = flag.Int("replicas", 3, "replica count for the demos (1, or at least 3)")
		workers  = flag.Int("workers", 1, "goroutines for the scaling sweep's points (0 = GOMAXPROCS); voted outputs are identical for any value")
	)
	flag.Parse()
	// A correct program: builds a linked list in the simulated heap and
	// sums it.
	correct := func(ctx *diehard.Context) error {
		var head diehard.Ptr
		for i := 1; i <= 10; i++ {
			node, err := ctx.Alloc.Malloc(16)
			if err != nil {
				return err
			}
			if err := ctx.Mem.Store64(node, uint64(i*i)); err != nil {
				return err
			}
			if err := ctx.Mem.Store64(node+8, head); err != nil {
				return err
			}
			head = node
		}
		sum := uint64(0)
		for n := head; n != 0; {
			v, err := ctx.Mem.Load64(n)
			if err != nil {
				return err
			}
			sum += v
			if n2, err := ctx.Mem.Load64(n + 8); err != nil {
				return err
			} else {
				n = n2
			}
		}
		_, err := fmt.Fprintf(ctx.Out, "sum of squares 1..10 = %d\n", sum)
		return err
	}

	res, err := diehard.Run(correct, nil, diehard.RunOptions{Replicas: *replicas, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correct program: agreed=%v survivors=%d output: %s",
		res.Agreed, res.Survivors, res.Output)
	for i, r := range res.Replicas {
		fmt.Printf("  replica %d heap seed %#x\n", i, r.Seed)
	}

	// A buggy program: the field at offset 8 is never written, yet its
	// value reaches the output.
	buggy := func(ctx *diehard.Context) error {
		rec, err := ctx.Alloc.Malloc(32)
		if err != nil {
			return err
		}
		if err := ctx.Mem.Store64(rec, 12345); err != nil {
			return err
		}
		initialized, err := ctx.Mem.Load64(rec)
		if err != nil {
			return err
		}
		forgotten, err := ctx.Mem.Load64(rec + 8) // never written!
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(ctx.Out, "result = %d\n", initialized+forgotten)
		return err
	}

	res, err = diehard.Run(buggy, nil, diehard.RunOptions{Replicas: *replicas, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbuggy program: uninitialized read detected = %v\n", res.UninitSuspected)
	if res.UninitSuspected {
		fmt.Println("(each replica filled the forgotten field with different random values,")
		fmt.Println(" so no two replicas agreed and the voter terminated execution — §3.2)")
	} else {
		fmt.Println("(detection needs replicas to disagree; with -replicas 1 there is no")
		fmt.Println(" one to disagree with, and the wrong result streams through — §6)")
	}

	// §7.2.3 in miniature: the same application at growing replica
	// counts. The sweep points fan out across -workers goroutines on the
	// campaign engine; each point's seed derives from its index, so the
	// voted outputs (the hashes below) never depend on the worker count.
	counts := []int{1, 2, *replicas}
	points, err := exps.RunReplicatedScaling("espresso", counts, 1, 12<<20, 0xca1e, *workers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreplicated scaling sweep (espresso, sweep workers=%d):\n", *workers)
	for _, p := range points {
		fmt.Printf("  k=%-3d wall=%-12v survivors=%-3d agreed=%-5v output-hash=%#016x\n",
			p.Replicas, p.Wall.Round(1e6), p.Survivors, p.Agreed, p.OutputHash)
	}
}
