// Replicated-mode demo (§5): output voting across randomized replicas,
// including the detection of an uninitialized read (§3.2).
//
// Two programs run under three replicas each. The first is correct:
// every replica produces the same output despite completely different
// heap layouts, and the voter commits it. The second reads memory it
// never initialized; each replica's randomized fill gives it a
// different value, no two replicas agree, and the runtime terminates
// the computation — the error is detected rather than silently wrong.
//
//	go run ./examples/replicated
package main

import (
	"fmt"
	"log"

	"diehard"
)

func main() {
	// A correct program: builds a linked list in the simulated heap and
	// sums it.
	correct := func(ctx *diehard.Context) error {
		var head diehard.Ptr
		for i := 1; i <= 10; i++ {
			node, err := ctx.Alloc.Malloc(16)
			if err != nil {
				return err
			}
			if err := ctx.Mem.Store64(node, uint64(i*i)); err != nil {
				return err
			}
			if err := ctx.Mem.Store64(node+8, head); err != nil {
				return err
			}
			head = node
		}
		sum := uint64(0)
		for n := head; n != 0; {
			v, err := ctx.Mem.Load64(n)
			if err != nil {
				return err
			}
			sum += v
			if n2, err := ctx.Mem.Load64(n + 8); err != nil {
				return err
			} else {
				n = n2
			}
		}
		_, err := fmt.Fprintf(ctx.Out, "sum of squares 1..10 = %d\n", sum)
		return err
	}

	res, err := diehard.Run(correct, nil, diehard.RunOptions{Replicas: 3, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("correct program: agreed=%v survivors=%d output: %s",
		res.Agreed, res.Survivors, res.Output)
	for i, r := range res.Replicas {
		fmt.Printf("  replica %d heap seed %#x\n", i, r.Seed)
	}

	// A buggy program: the field at offset 8 is never written, yet its
	// value reaches the output.
	buggy := func(ctx *diehard.Context) error {
		rec, err := ctx.Alloc.Malloc(32)
		if err != nil {
			return err
		}
		if err := ctx.Mem.Store64(rec, 12345); err != nil {
			return err
		}
		initialized, err := ctx.Mem.Load64(rec)
		if err != nil {
			return err
		}
		forgotten, err := ctx.Mem.Load64(rec + 8) // never written!
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(ctx.Out, "result = %d\n", initialized+forgotten)
		return err
	}

	res, err = diehard.Run(buggy, nil, diehard.RunOptions{Replicas: 3, Seed: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbuggy program: uninitialized read detected = %v\n", res.UninitSuspected)
	fmt.Println("(each replica filled the forgotten field with different random values,")
	fmt.Println(" so no two replicas agreed and the voter terminated execution — §3.2)")
}
