// Repository-level benchmarks: one per table and figure of the paper's
// evaluation, plus ablations of DieHard's design decisions. Each bench
// regenerates its experiment and reports the paper-comparable quantities
// as custom metrics (testing.B metrics are the "rows" of the figure).
//
//	go test -bench=. -benchmem
package diehard

import (
	"strings"
	"testing"

	"diehard/internal/analysis"
	"diehard/internal/core"
	"diehard/internal/exps"
	"diehard/internal/heap"
	"diehard/internal/libc"
	"diehard/internal/rng"
)

// --- Figure 4(a): probability of masking buffer overflows ---

func BenchmarkFig4aOverflowMasking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = analysis.SimOverflowMask(2000, 4096, 1, 3, 1.0/8, uint64(i)+1)
	}
	b.ReportMetric(analysis.OverflowMaskProb(1.0/8, 1, 1), "P(mask)/1replica-1/8full")
	b.ReportMetric(analysis.OverflowMaskProb(1.0/8, 1, 3), "P(mask)/3replicas-1/8full")
	b.ReportMetric(analysis.OverflowMaskProb(1.0/2, 1, 3), "P(mask)/3replicas-1/2full")
}

// --- Figure 4(b): probability of masking dangling pointers ---

func BenchmarkFig4bDanglingMasking(b *testing.B) {
	q := analysis.DefaultClassFreeBytes / 8
	for i := 0; i < b.N; i++ {
		_ = analysis.SimDanglingMask(2000, q, 10000, 1, uint64(i)+1)
	}
	b.ReportMetric(analysis.DanglingMaskProb(10000, 8, analysis.DefaultClassFreeBytes, 1), "P(mask)/8B-10000allocs")
	b.ReportMetric(analysis.DanglingMaskProb(10000, 256, analysis.DefaultClassFreeBytes, 1), "P(mask)/256B-10000allocs")
}

// --- §6.3 / Theorem 3: uninitialized read detection ---

func BenchmarkUninitDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = analysis.SimUninitDetect(2000, 4, 3, uint64(i)+1)
	}
	b.ReportMetric(analysis.UninitDetectProb(4, 3), "P(detect)/4bit-3replicas")
	b.ReportMetric(analysis.UninitDetectProb(4, 4), "P(detect)/4bit-4replicas")
	b.ReportMetric(analysis.UninitDetectProb(16, 3), "P(detect)/16bit-3replicas")
}

// --- Figure 5(a): normalized runtime on "Linux" (malloc / GC / DieHard) ---

func BenchmarkFig5aLinux(b *testing.B) {
	var report *exps.OverheadReport
	for i := 0; i < b.N; i++ {
		r, err := exps.RunOverhead(exps.PlatformLinux, 1, 0, 0x5a5a, 1)
		if err != nil {
			b.Fatal(err)
		}
		report = r
	}
	b.ReportMetric(report.GeoMean["alloc-intensive/"+exps.KindDieHard], "DieHard-alloc-intensive-x")
	b.ReportMetric(report.GeoMean["general-purpose/"+exps.KindDieHard], "DieHard-general-purpose-x")
	b.ReportMetric(report.GeoMean["alloc-intensive/"+exps.KindGC], "GC-alloc-intensive-x")
	b.ReportMetric(report.GeoMean["general-purpose/"+exps.KindGC], "GC-general-purpose-x")
	for _, row := range report.Rows {
		if row.Benchmark == "300.twolf" {
			b.ReportMetric(row.Normalized[exps.KindDieHard], "DieHard-twolf-x")
		}
	}
}

// --- Figure 5(b): normalized runtime on "Windows" (default heap / DieHard) ---

func BenchmarkFig5bWindows(b *testing.B) {
	var report *exps.OverheadReport
	for i := 0; i < b.N; i++ {
		r, err := exps.RunOverhead(exps.PlatformWindows, 1, 0, 0xb0b0, 1)
		if err != nil {
			b.Fatal(err)
		}
		report = r
	}
	b.ReportMetric(report.GeoMean["alloc-intensive/"+exps.KindDieHard], "DieHard-alloc-intensive-x")
	faster := 0.0
	for _, row := range report.Rows {
		if row.Normalized[exps.KindDieHard] < 1.0 {
			faster++
		}
	}
	b.ReportMetric(faster, "benchmarks-faster-than-default")
}

// --- Table 1: error-handling matrix ---

func BenchmarkTable1ErrorMatrix(b *testing.B) {
	var correct, abort float64
	for i := 0; i < b.N; i++ {
		table, err := exps.RunErrorTable(1)
		if err != nil {
			b.Fatal(err)
		}
		correct, abort = 0, 0
		for _, row := range table.Cell {
			if row["DieHard"] == exps.OutcomeCorrect {
				correct++
			}
			if row["DieHard"] == exps.OutcomeAbort {
				abort++
			}
		}
	}
	b.ReportMetric(correct, "DieHard-correct-rows")
	b.ReportMetric(abort, "DieHard-abort-rows")
}

// --- §7.3.1: fault injection ---

func BenchmarkFaultInjectionDangling(b *testing.B) {
	var libcCorrect, dhCorrect float64
	for i := 0; i < b.N; i++ {
		l, err := exps.RunFaultInjection("espresso", exps.KindMalloc,
			exps.InjectionParams{Kind: exps.InjectDangling}, 10, 1, 16<<20, 1)
		if err != nil {
			b.Fatal(err)
		}
		d, err := exps.RunFaultInjection("espresso", exps.KindDieHard,
			exps.InjectionParams{Kind: exps.InjectDangling}, 10, 1, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		libcCorrect, dhCorrect = float64(l.Correct), float64(d.Correct)
	}
	b.ReportMetric(libcCorrect, "libc-correct-of-10")
	b.ReportMetric(dhCorrect, "DieHard-correct-of-10")
}

func BenchmarkFaultInjectionOverflow(b *testing.B) {
	var libcCorrect, dhCorrect float64
	for i := 0; i < b.N; i++ {
		l, err := exps.RunFaultInjection("espresso", exps.KindMalloc,
			exps.InjectionParams{Kind: exps.InjectOverflow}, 10, 3, 16<<20, 1)
		if err != nil {
			b.Fatal(err)
		}
		d, err := exps.RunFaultInjection("espresso", exps.KindDieHard,
			exps.InjectionParams{Kind: exps.InjectOverflow}, 10, 3, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		libcCorrect, dhCorrect = float64(l.Correct), float64(d.Correct)
	}
	b.ReportMetric(libcCorrect, "libc-correct-of-10")
	b.ReportMetric(dhCorrect, "DieHard-correct-of-10")
}

// --- §7.3: Squid real fault ---

func BenchmarkSquidRealFault(b *testing.B) {
	var dhSurvived, libcSurvived float64
	for i := 0; i < b.N; i++ {
		results, err := exps.RunSquidExperiment(
			[]string{exps.KindMalloc, exps.KindDieHard}, 5, 900, 24<<20, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range results {
			if r.Allocator == exps.KindDieHard {
				dhSurvived = float64(r.Survived)
			} else {
				libcSurvived = float64(r.Survived)
			}
		}
	}
	b.ReportMetric(libcSurvived, "libc-survived-of-5")
	b.ReportMetric(dhSurvived, "DieHard-survived-of-5")
}

// --- §7.2.3: replicated scaling ---

func BenchmarkReplicatedScaling16(b *testing.B) {
	var relative float64
	for i := 0; i < b.N; i++ {
		// workers=1 so the two sweep points don't co-schedule and the
		// wall ratio stays a scaling measurement.
		points, err := exps.RunReplicatedScaling("espresso", []int{1, 16}, 1, 12<<20, 0xca1e, 1)
		if err != nil {
			b.Fatal(err)
		}
		relative = points[1].RelativeToOne
	}
	b.ReportMetric(relative, "16-replicas-vs-1-x")
}

// --- §4.2: expected probe count ---

func BenchmarkMallocProbes(b *testing.B) {
	h, err := core.New(core.Options{HeapSize: 48 << 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	// Fill the 64-byte class to its threshold, then measure steady-state
	// pairs, as §4.2's bound describes.
	_, maxInUse := h.ClassSlots(core.ClassFor(64))
	ptrs := make([]heap.Ptr, maxInUse)
	for i := range ptrs {
		p, err := h.Malloc(64)
		if err != nil {
			b.Fatal(err)
		}
		ptrs[i] = p
	}
	r := rng.NewSeeded(2)
	before := h.Stats().Probes
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := r.Intn(len(ptrs))
		_ = h.Free(ptrs[j])
		p, err := h.Malloc(64)
		if err != nil {
			b.Fatal(err)
		}
		ptrs[j] = p
	}
	b.StopTimer()
	b.ReportMetric(float64(h.Stats().Probes-before)/float64(b.N), "probes/alloc")
}

// --- Ablation: heap expansion factor M (space vs safety) ---

func BenchmarkAblationMSweep(b *testing.B) {
	for _, m := range []float64{2, 4, 8} {
		b.Run(map[float64]string{2: "M2", 4: "M4", 8: "M8"}[m], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h, err := core.New(core.Options{HeapSize: 24 << 20, M: m, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < 1000; j++ {
					p, err := h.Malloc(64)
					if err != nil {
						b.Fatal(err)
					}
					if err := h.Free(p); err != nil {
						b.Fatal(err)
					}
				}
			}
			// Larger M: better masking odds, fewer usable slots.
			b.ReportMetric(analysis.OverflowMaskProb(1/m, 1, 1), "P(mask-overflow)")
			b.ReportMetric(1/m, "usable-fraction")
		})
	}
}

// --- Ablation: adaptive region growth (§9 future work) ---

func BenchmarkAblationAdaptive(b *testing.B) {
	for _, adaptive := range []bool{false, true} {
		name := "static"
		if adaptive {
			name = "adaptive"
		}
		b.Run(name, func(b *testing.B) {
			var reserved float64
			for i := 0; i < b.N; i++ {
				h, err := core.New(core.Options{HeapSize: 96 << 20, Adaptive: adaptive, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				for j := 0; j < 2000; j++ {
					if _, err := h.Malloc(64); err != nil {
						b.Fatal(err)
					}
				}
				reserved = float64(h.Mem().Stats().PagesMapped) * 4096
			}
			b.ReportMetric(reserved/(1<<20), "reserved-MB")
		})
	}
}

// --- Ablation: checked libc interception (§4.4) on/off ---

func BenchmarkAblationCheckedStrcpy(b *testing.B) {
	h, err := core.New(core.Options{HeapSize: 24 << 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	src, _ := h.Malloc(256)
	dst, _ := h.Malloc(256)
	if err := libc.WriteString(h.Mem(), src, strings.Repeat("x", 200)); err != nil {
		b.Fatal(err)
	}
	b.Run("unchecked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := libc.Strcpy(h.Mem(), dst, src); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("checked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := libc.SafeStrcpy(h, h.Mem(), dst, src); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Ablation: size-class segregation vs one random region ---
//
// DieHard restricts each size class to its own region precisely to
// avoid the external fragmentation of scattering small objects across
// the whole heap (§4.1). The ablation compares pages touched by a mixed
// workload under segregated placement (the real allocator) against a
// model that places the same objects at random offsets in one region.

func BenchmarkAblationSegregatedRegions(b *testing.B) {
	// 16-byte objects filling a quarter of their class's capacity on a
	// 12 MB heap (1 MB per class): segregation confines them to one
	// 1 MB partition; random placement over the whole heap would
	// scatter them across nearly every page of all twelve megabytes.
	const heapSize = 12 << 20
	const objSize = 16
	count := (heapSize / 12 / objSize) / 4
	b.Run("segregated", func(b *testing.B) {
		var touched float64
		for i := 0; i < b.N; i++ {
			h, err := core.New(core.Options{HeapSize: heapSize, Seed: uint64(i) + 1})
			if err != nil {
				b.Fatal(err)
			}
			for j := 0; j < count; j++ {
				p, err := h.Malloc(objSize)
				if err != nil {
					b.Fatal(err)
				}
				if err := h.Mem().Store8(p, 1); err != nil {
					b.Fatal(err)
				}
			}
			touched = float64(h.Mem().Stats().PagesDirty)
		}
		b.ReportMetric(touched, "pages-touched")
	})
	b.Run("single-region", func(b *testing.B) {
		// Model: the same objects placed uniformly at random across one
		// region spanning the whole heap; count distinct pages touched.
		var touched float64
		for i := 0; i < b.N; i++ {
			r := rng.NewSeeded(uint64(i) + 1)
			pages := make(map[uint64]bool)
			for j := 0; j < count; j++ {
				off := r.Uintn(heapSize)
				pages[off/4096] = true
			}
			touched = float64(len(pages))
		}
		b.ReportMetric(touched, "pages-touched")
	})
}
