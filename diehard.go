// Package diehard is the public API of a complete reproduction of
// Berger & Zorn, "DieHard: Probabilistic Memory Safety for Unsafe
// Languages" (PLDI 2006).
//
// DieHard tolerates the memory errors of unsafe languages — buffer
// overflows, dangling pointers, invalid and double frees, uninitialized
// reads — by approximating an infinite heap: objects are placed
// uniformly at random in a heap M times larger than needed, heap
// metadata is fully segregated, and (in replicated mode) several
// replicas with independently randomized heaps vote on output.
//
// Because Go is garbage-collected, the whole system runs on a simulated
// virtual address space: the allocator hands out simulated pointers and
// programs access memory through them, so memory errors have their
// native consequences (see DESIGN.md). The package exposes:
//
//   - Heap: the randomized allocator (stand-alone mode);
//   - Run: the replicated runtime with output voting;
//   - Strcpy/Strncpy replacements that cannot overflow (§4.4);
//   - the analytical guarantees of §6 (Theorems 1-3).
//
// A minimal session:
//
//	h, _ := diehard.NewHeap(diehard.HeapOptions{})
//	p, _ := h.Malloc(64)
//	_ = h.Mem().Store64(p, 42)
//	v, _ := h.Mem().Load64(p)   // 42
//	_ = h.Free(p)
//	_ = h.Free(p)               // double free: detected and ignored
package diehard

import (
	"fmt"
	"io"

	"diehard/internal/analysis"
	"diehard/internal/core"
	"diehard/internal/detect"
	"diehard/internal/heal"
	"diehard/internal/heap"
	"diehard/internal/libc"
	"diehard/internal/obs"
	"diehard/internal/replicate"
	"diehard/internal/vmem"
)

// Ptr is a simulated pointer into a Heap's address space. The zero
// value is the null pointer.
type Ptr = heap.Ptr

// Memory is the data-access interface of a simulated address space.
type Memory = heap.Memory

// HeapOptions configures a DieHard heap. The zero value selects the
// paper's defaults: a 384 MB heap of which at most 1/M may be live,
// M = 2, and a true-random seed.
type HeapOptions struct {
	// HeapSize is the total small-object heap size in bytes.
	HeapSize int
	// M is the heap expansion factor (how many times larger the heap is
	// than the maximum live size it will serve). Must exceed 1.
	M float64
	// Seed fixes the randomized layout for reproduction; 0 draws a true
	// random seed.
	Seed uint64
	// ReplicatedMode fills the heap and every allocation with random
	// values, as the replicated runtime requires (§4.1).
	ReplicatedMode bool
	// Adaptive grows size-class regions on demand (the paper's §9
	// future-work extension).
	Adaptive bool
	// Concurrent prepares the heap for use by multiple goroutines at
	// once: allocator statistics and memory-access accounting switch to
	// atomic updates. Without it, the heap (and data access through
	// Mem()) must be confined to one goroutine at a time.
	Concurrent bool
	// LockedHeap selects the per-class-mutex malloc engine instead of
	// the default lock-free CAS fast path (DESIGN.md §10). Placement is
	// byte-identical between the two engines for the same seed when one
	// goroutine allocates; the locked engine is retained as the
	// reference the lock-free path is differenced and benchmarked
	// against. ReplicatedMode heaps always use it.
	LockedHeap bool
	// RemoteFreeRing equips the heap with a bounded remote-free ring
	// (DESIGN.md §12): RemoteFree from a non-owning goroutine enqueues
	// the address instead of CAS-clearing the shared bitmap, and the
	// heap applies queued frees in batches at its next malloc miss or
	// invariant barrier. Requires Concurrent and the lock-free engine;
	// incompatible with LockedHeap, ReplicatedMode, and DetectCanaries.
	RemoteFreeRing bool
	// DetectCanaries layers the probabilistic error detector
	// (internal/detect) over the heap: free space carries a seeded
	// canary pattern, audited on free, on reuse, and at heap-check
	// barriers, and damage is classified as buffer overflow, dangling
	// write, or uninitialized read with per-error Evidence records.
	// Detection is sequential and incompatible with Concurrent and
	// ReplicatedMode (the canary pattern is the fill).
	DetectCanaries bool
	// HeapCheckEvery, with DetectCanaries, runs an automatic canary
	// heap check every that many allocations; 0 leaves barriers to
	// explicit HeapCheck calls.
	HeapCheckEvery int
	// GenTags equips every slot with a generation counter in a side
	// array next to the bitmap (DESIGN.md §15): MallocFat returns fat
	// (address, generation) pointers, and FreeFat/RemoteFreeFat reject a
	// free whose tag went stale — a double free is caught exactly, even
	// when it straddles a reallocation, where the thin-pointer §4.3
	// ignore semantics are probabilistic. Tags live outside user memory,
	// so placement and data are byte-identical to an untagged heap with
	// the same seed; the thin Malloc/Free API keeps working alongside.
	// Requires the lock-free engine (incompatible with LockedHeap and
	// ReplicatedMode); composes with DetectCanaries, where GenMemory
	// adds the generation check to every accessor.
	GenTags bool
	// HeapCheckMin, with HeapCheckEvery, makes the barrier cadence
	// adaptive (DESIGN.md §13): after a barrier interval in which any
	// audit recorded fresh evidence the next check fires HeapCheckMin
	// allocations later, and clean intervals double the cadence back
	// toward HeapCheckEvery. 0 keeps the fixed cadence.
	HeapCheckMin int
	// Trace attaches a flight-recorder ring (DESIGN.md §14): the heap
	// emits one fixed-size binary event per malloc, free, quarantine
	// hold, and invariant barrier — and, with DetectCanaries, per
	// evidence record and heap check. Tracing consumes no randomness
	// and never alters placement, so traced and untraced runs with the
	// same seed are byte-identical; nil (the default) leaves the hot
	// path at a single predictable branch.
	Trace *ObsRing
}

// Heap is a DieHard randomized heap. Built with HeapOptions.Concurrent,
// it is safe for use by multiple goroutines (lock-free CAS malloc fast
// path, statistics atomic; or fine-grained per-size-class locks with
// LockedHeap); without it, the heap must be confined to one goroutine at
// a time, and each simulated process owns its own Heap, just as each
// replica owns its own randomized allocator. See core.ShardedHeap for a
// scalable multi-worker front end with occupancy-aware shard routing.
type Heap struct {
	h   *core.Heap
	dh  *detect.Heap // non-nil with DetectCanaries
	det *detect.Detector
	mem heap.Memory // canary-checking view with DetectCanaries, else the raw space
}

// NewHeap creates a DieHard heap.
func NewHeap(opts HeapOptions) (*Heap, error) {
	copts := core.Options{
		HeapSize:   opts.HeapSize,
		M:          opts.M,
		Seed:       opts.Seed,
		RandomFill: opts.ReplicatedMode,
		Adaptive:   opts.Adaptive,
		Concurrent: opts.Concurrent,
		LockedHeap: opts.LockedHeap,
		RemoteRing: opts.RemoteFreeRing,
		GenTags:    opts.GenTags,
		Trace:      opts.Trace,
	}
	if opts.DetectCanaries {
		if opts.RemoteFreeRing {
			return nil, fmt.Errorf("diehard: RemoteFreeRing cannot batch past canary detection (DetectCanaries)")
		}
		dh, err := detect.New(copts, detect.Options{
			HeapCheckEvery: opts.HeapCheckEvery,
			HeapCheckMin:   opts.HeapCheckMin,
			Trace:          opts.Trace,
		})
		if err != nil {
			return nil, err
		}
		return &Heap{h: dh.Heap, dh: dh, det: dh.Detector(), mem: dh.Memory()}, nil
	}
	h, err := core.New(copts)
	if err != nil {
		return nil, err
	}
	return &Heap{h: h, mem: h.Mem()}, nil
}

// Malloc allocates size bytes at a uniformly random heap location and
// returns the simulated address.
func (h *Heap) Malloc(size int) (Ptr, error) { return h.h.Malloc(size) }

// Free releases an allocation. Invalid, misaligned, and double frees
// are detected and ignored — they can never corrupt the heap (§4.3).
func (h *Heap) Free(p Ptr) error { return h.h.Free(p) }

// RemoteFree releases an allocation from a goroutine that does not own
// the heap's hot path: with HeapOptions.RemoteFreeRing the address is
// enqueued on the heap's remote-free ring (one atomic ticket and a slot
// write — no CAS on the shared bitmap) and applied in a batch at the
// heap's next malloc miss or invariant barrier. Without the ring — or
// when the ring is momentarily full — it behaves exactly like Free.
// The §4.3 ignore semantics are unchanged: of any set of racing frees
// of the same object, exactly one wins.
func (h *Heap) RemoteFree(p Ptr) error { return h.h.RemoteFree(p) }

// FatPtr is a generation-tagged fat pointer: the simulated address plus
// the generation the slot carried when it was issued (HeapOptions.
// GenTags). The zero value is the null fat pointer.
type FatPtr = heap.FatPtr

// MallocFat allocates like Malloc and returns the fat pointer carrying
// the slot's fresh generation (GenTags heaps only).
func (h *Heap) MallocFat(size int) (FatPtr, error) { return h.h.MallocFat(size) }

// FreeFat releases an allocation through its fat pointer: the free is
// accepted only while the tag is current, so a stale free — a double
// free, even one straddling a reallocation — is rejected deterministically
// and counted (Stats().StaleFrees), never mistaken for the new
// incarnation's free. Misaligned interior addresses are ignored as in
// Free. accepted reports whether this call released the object.
func (h *Heap) FreeFat(fp FatPtr) (accepted bool, err error) { return h.h.FreeFat(fp) }

// RemoteFreeFat is FreeFat through the remote-free ring (RemoteFreeRing
// heaps): the tag travels with the address and the owner's drain
// arbitrates, so deferral cannot turn a stale free into a valid one.
func (h *Heap) RemoteFreeFat(fp FatPtr) (accepted bool, err error) { return h.h.RemoteFreeFat(fp) }

// CheckGen reports whether fp is still current — the temporal validity
// test a program can apply before using a stored fat pointer.
func (h *Heap) CheckGen(fp FatPtr) bool { return h.h.CheckGen(fp) }

// GenCheckedMemory is the generation-checked data-access view of a
// DetectCanaries+GenTags heap: every accessor — word, byte, and bulk —
// verifies the fat pointer's tag, records stale-access Evidence when it
// is dead, and then forwards to the canary-checked view.
type GenCheckedMemory = detect.GenMemory

// GenMemory returns the generation-checked view; nil unless the heap
// was built with both DetectCanaries and GenTags.
func (h *Heap) GenMemory() *GenCheckedMemory {
	if h.dh == nil || !h.h.GenTagged() {
		return nil
	}
	return h.dh.GenMemory()
}

// Calloc allocates zeroed memory for n objects of size bytes.
func (h *Heap) Calloc(n, size int) (Ptr, error) { return heap.Calloc(h.h, n, size) }

// Realloc resizes an allocation, preserving contents.
func (h *Heap) Realloc(p Ptr, size int) (Ptr, error) { return heap.Realloc(h.h, p, size) }

// Mem returns the heap's simulated memory, used for all data access.
func (h *Heap) Mem() *vmem.Space { return h.h.Mem() }

// Memory returns the data-access view of the heap: with DetectCanaries
// it is the canary-checking wrapper whose 32/64-bit loads audit for
// uninitialized reads; otherwise it is the raw address space. Programs
// that want uninitialized-read detection must load through this view.
func (h *Heap) Memory() Memory { return h.mem }

// HeapCheck runs a canary barrier audit now (DetectCanaries only) and
// returns the number of new evidence records; without detection it
// reports 0.
func (h *Heap) HeapCheck() int {
	if h.det == nil {
		return 0
	}
	return h.det.HeapCheck()
}

// DetectionReport snapshots the detector's findings: every audited
// violation with its page, offset, damaged span, neighbor objects, and
// culprit allocation-site candidate. Nil without DetectCanaries.
func (h *Heap) DetectionReport() *DetectionReport {
	if h.det == nil {
		return nil
	}
	return h.det.Report()
}

// SizeOf reports the usable size of a live allocation.
func (h *Heap) SizeOf(p Ptr) (int, bool) { return h.h.SizeOf(p) }

// Seed returns the seed of the heap's random stream, recorded so any
// run can be reproduced exactly.
func (h *Heap) Seed() uint64 { return h.h.Seed() }

// Stats reports allocator activity counters. On a Concurrent heap the
// snapshot is read atomically, so it is safe while other goroutines
// allocate.
func (h *Heap) Stats() heap.Stats { return h.h.StatsSnapshot() }

// PublishMetrics registers the heap's counters as core.* gauges in the
// registry (DESIGN.md §14); with DetectCanaries the detect.* gauges
// are registered too. Gauges pull atomically from the live Stats, so
// the registry can be snapshot while the heap serves.
func (h *Heap) PublishMetrics(reg *ObsRegistry, labels ...ObsLabel) {
	h.h.PublishMetrics(reg, labels...)
	if h.det != nil {
		h.det.PublishMetrics(reg)
	}
}

// Magazine is a per-worker allocation front end over a lock-free heap:
// it holds pre-claimed slots per hot size class and buffers frees, so
// fast-path Malloc/Free touch no shared cache lines; refills and
// flushes batch the lock-free protocol (DESIGN.md §11). One magazine
// serves one goroutine at a time. Obtain via Heap.NewMagazine (or
// core.ShardedHeap.NewMagazine for the sharded front end); Drain at
// barriers needing exact counters, Close when done.
type Magazine = core.Magazine

// NewMagazine returns a per-worker magazine over this heap. The heap
// must use the default lock-free engine without canary detection:
// batching is incompatible with per-operation audit hooks, and the
// locked engine serializes anyway.
func (h *Heap) NewMagazine() (*Magazine, error) {
	if h.det != nil {
		return nil, errDetectMagazine
	}
	return h.h.NewMagazine()
}

var errDetectMagazine = fmt.Errorf("diehard: magazines cannot batch past canary detection (DetectCanaries)")

// Strcpy is DieHard's checked replacement for strcpy (§4.4): the copy
// is capped at the destination object's remaining capacity, so it can
// never overflow the heap. It returns the number of payload bytes
// copied.
func (h *Heap) Strcpy(dst, src Ptr) (int, error) {
	return libc.SafeStrcpy(h.h, h.Mem(), dst, src)
}

// Strncpy is DieHard's checked replacement for strncpy (§4.4): the
// programmer's length argument is honored only up to the destination
// object's real capacity.
func (h *Heap) Strncpy(dst, src Ptr, n int) (int, error) {
	return libc.SafeStrncpy(h.h, h.Mem(), dst, src, n)
}

// Strcat is DieHard's checked replacement for strcat: the append is
// capped at the destination object's remaining capacity.
func (h *Heap) Strcat(dst, src Ptr) (int, error) {
	return libc.SafeStrcat(h.h, h.Mem(), dst, src)
}

// Strdup allocates a copy of the NUL-terminated string at src.
func (h *Heap) Strdup(src Ptr) (Ptr, error) {
	return libc.Strdup(h.h, h.Mem(), src)
}

// Program is a deterministic application runnable under replication.
// It must write all observable output through ctx.Out.
type Program = replicate.Program

// Context is a replica's view of the world.
type Context = replicate.Context

// RunOptions configures a replicated execution.
type RunOptions struct {
	// Replicas is the number of replicas (1, or at least 3 so the voter
	// can adjudicate). Defaults to 3.
	Replicas int
	// HeapSize and M configure each replica's heap.
	HeapSize int
	M        float64
	// Seed fixes the per-replica seed derivation; 0 draws true
	// randomness.
	Seed uint64
	// SequentialVoter selects the barrier-synchronized reference voter
	// instead of the default pipelined hash-then-vote engine
	// (DESIGN.md §8). Committed output is byte-identical either way;
	// the sequential voter exists as the semantic reference and the
	// baseline the pipelined engine is benchmarked against.
	SequentialVoter bool
	// PipelineDepth is how many 4 KB voting buffers a replica may run
	// ahead of the voter before its writes block (pipelined voter
	// only); 0 selects the default of 4.
	PipelineDepth int
	// MaxRestarts lets the pipelined voter replace killed divergent
	// replicas: a fresh replica with a newly derived seed replays the
	// broadcast input, is checked against the committed output prefix,
	// and rejoins the quorum (DESIGN.md §9). 0 disables restarts.
	MaxRestarts int
	// DetectCanaries gives every replica a canary detection heap
	// instead of the random fill: divergence detection still works, and
	// killed replicas contribute heap-error Evidence to the Result for
	// TriageKilled.
	DetectCanaries bool
}

// Result reports a replicated execution: the voted output, whether
// every committed chunk had a quorum, and whether an uninitialized read
// was detected (all replicas disagreeing).
type Result = replicate.Result

// Run executes prog under the replicated runtime (§5): each replica has
// an independently randomized, randomly-filled heap; input is broadcast;
// output is committed only when replicas agree. A program whose output
// depends on uninitialized memory is detected (Result.UninitSuspected)
// and terminated.
//
// Voting is pipelined by default: replicas stream hash-tagged 4 KB
// buffers and keep executing while the voter adjudicates, so a
// replicated run is not barrier-stalled at every buffer boundary. Set
// RunOptions.SequentialVoter for the paper's lock-step protocol; the
// committed output is byte-identical between the two.
func Run(prog Program, input []byte, opts RunOptions) (*Result, error) {
	voter := replicate.VoterPipelined
	if opts.SequentialVoter {
		voter = replicate.VoterSequential
	}
	return replicate.Run(prog, input, replicate.Options{
		Replicas:      opts.Replicas,
		HeapSize:      opts.HeapSize,
		M:             opts.M,
		Seed:          opts.Seed,
		Voter:         voter,
		PipelineDepth: opts.PipelineDepth,
		MaxRestarts:   opts.MaxRestarts,
		Detect:        opts.DetectCanaries,
	})
}

// OverflowMaskProbability is Theorem 1: the probability that a buffer
// overflow of `objects` object-widths overwrites no live data in at
// least one of k replicas, at the given heap fullness.
func OverflowMaskProbability(fullness float64, objects, replicas int) float64 {
	return analysis.OverflowMaskProb(fullness, objects, replicas)
}

// DanglingMaskProbability is Theorem 2: a lower bound on the
// probability that an object of size `size`, freed `allocs` allocations
// too early, is intact when its real free would occur, given freeBytes
// of free space in its size class and k replicas.
func DanglingMaskProbability(allocs, size, freeBytes, replicas int) float64 {
	return analysis.DanglingMaskProb(allocs, size, freeBytes, replicas)
}

// UninitDetectProbability is Theorem 3: the probability that k replicas
// detect an uninitialized read of `bits` bits.
func UninitDetectProbability(bits, replicas int) float64 {
	return analysis.UninitDetectProb(bits, replicas)
}

// WriteString stores a Go string into simulated memory, NUL-terminated.
func WriteString(m Memory, dst Ptr, s string) error { return libc.WriteString(m, dst, s) }

// ReadString reads a NUL-terminated string from simulated memory.
func ReadString(m Memory, src Ptr, maxLen int) (string, error) {
	return libc.ReadString(m, src, maxLen)
}

var _ io.Writer = (*nullWriter)(nil)

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }

// Discard is an io.Writer that drops output; convenient for programs
// run only for their side effects in examples and tests.
var Discard io.Writer = nullWriter{}

// The unified telemetry plane (DESIGN.md §14): one metrics registry
// every layer publishes typed counters, pull-gauges, and latency
// histograms into, and one flight recorder of per-worker lock-free
// trace rings merged on demand into a stamp-ordered timeline. All
// handles are nil-safe — a nil registry or ring disables telemetry at
// the cost of one predictable branch per instrumented site.
type (
	// ObsRegistry is the metric tree; build with NewObsRegistry.
	ObsRegistry = obs.Registry
	// ObsLabel is one name=value metric dimension.
	ObsLabel = obs.Label
	// ObsRecorder owns the Lamport stamp counter and the trace rings;
	// build with NewRecorder.
	ObsRecorder = obs.Recorder
	// ObsRing is one worker's trace ring, obtained from a recorder.
	ObsRing = obs.Ring
	// ObsEvent is one decoded trace record of the merged timeline.
	ObsEvent = obs.Event
	// ObsHistogram is the shared fixed-bucket log-scale histogram.
	ObsHistogram = obs.Histogram
)

// NewObsRegistry returns an empty metrics registry.
func NewObsRegistry() *ObsRegistry { return obs.NewRegistry() }

// NewRecorder builds a flight recorder whose per-worker rings hold
// ringSlots events each (rounded up to a power of two, minimum 16).
func NewRecorder(ringSlots int) *ObsRecorder { return obs.NewRecorder(ringSlots) }

// ObjectRecord is one live object's identity and contents hash in a
// heap snapshot.
type ObjectRecord = core.ObjectRecord

// Divergence reports one object whose state differs between two
// snapshots.
type Divergence = core.Divergence

// Snapshot records every live object's location and contents hash. Two
// identically seeded heaps running the same deterministic program
// produce identical snapshots; see DiffSnapshots.
func (h *Heap) Snapshot() ([]ObjectRecord, error) { return h.h.Snapshot() }

// DiffSnapshots compares snapshots from identically seeded heaps and
// returns the objects that diverge, pinpointing memory corruption — the
// heap-differencing debugger the paper sketches in §9 ("report these as
// part of a crash dump without the crash").
func DiffSnapshots(a, b []ObjectRecord) []Divergence { return core.DiffSnapshots(a, b) }

// Evidence is one detected heap violation (DetectCanaries): kind, audit
// point, damaged page/offset/span, the nearest neighbor objects, and
// the culprit allocation-site candidate.
type Evidence = detect.Evidence

// DetectionReport is a detection heap's evidence snapshot.
type DetectionReport = detect.Report

// DetectKind classifies detected errors.
type DetectKind = detect.Kind

// Detected error kinds. KindStaleFree and KindStaleAccess are the
// generation tier's deterministic findings (GenTags heaps).
const (
	KindOverflow    = detect.KindOverflow
	KindDangling    = detect.KindDangling
	KindUninit      = detect.KindUninit
	KindStaleFree   = detect.KindStaleFree
	KindStaleAccess = detect.KindStaleAccess
)

// TriageResult is the cross-layout culprit adjudication.
type TriageResult = detect.TriageResult

// Triage intersects detection evidence of one kind across reports from
// independently seeded heaps running the same deterministic program,
// and localizes the culprit allocation site: the true culprit's site is
// layout-invariant, while coincidentally damaged neighbors re-randomize
// away (Exterminator's insight, applied to the DieHard substrate).
func Triage(kind DetectKind, reports []*DetectionReport) *TriageResult {
	return detect.Triage(kind, reports)
}

// EvidenceAccumulator is the streaming, goroutine-safe counterpart of
// Triage: it ingests evidence windows as a long-running service produces
// them and answers culprit verdicts at any moment. Mergeable across
// campaign replicas with byte-identical results at any worker count.
type EvidenceAccumulator = detect.Accumulator

// HealSchedule is a planned fault schedule for the self-healing
// supervisor: cyclic allocation sites with a planted overflow culprit
// and a planted dangling-write culprit.
type HealSchedule = heal.Schedule

// HealConfig configures a supervised run (DESIGN.md §13).
type HealConfig = heal.Config

// HealResult is one supervised run's grade sheet: MTBF, the onset →
// countermeasure timeline, verdicts, and the installed pad/quarantine
// tables.
type HealResult = heal.Result

// HealCampaignResult aggregates replicated supervised runs with a
// deterministic verdict hash.
type HealCampaignResult = heal.CampaignResult

// Heal runs the self-healing supervisor: a detection heap cycles
// through the schedule's allocation program, triage evidence
// accumulates across heap-check barriers and epoch restarts, and when a
// culprit site crosses the confidence bar a live countermeasure —
// per-site overallocation padding for overflow culprits, per-site free
// quarantine for dangling culprits — is installed without a restart.
func Heal(cfg HealConfig) (*HealResult, error) { return heal.Run(cfg) }

// HealCampaign runs replicated supervised runs with derived seeds on a
// worker pool and merges their verdicts; the result (including its
// VerdictHash) is byte-identical at any worker count.
func HealCampaign(cfg HealConfig, replicas, workers int) (*HealCampaignResult, error) {
	return heal.RunCampaign(cfg, replicas, workers)
}
