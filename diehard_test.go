package diehard

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
)

func TestPublicHeapLifecycle(t *testing.T) {
	h, err := NewHeap(HeapOptions{HeapSize: 12 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Mem().Store64(p, 42); err != nil {
		t.Fatal(err)
	}
	v, err := h.Mem().Load64(p)
	if err != nil || v != 42 {
		t.Fatalf("round trip %d %v", v, err)
	}
	if size, ok := h.SizeOf(p); !ok || size != 64 {
		t.Fatalf("SizeOf %d %v", size, ok)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil { // double free: ignored
		t.Fatal(err)
	}
	st := h.Stats()
	if st.IgnoredFrees != 1 {
		t.Fatalf("IgnoredFrees = %d", st.IgnoredFrees)
	}
}

func TestPublicMagazine(t *testing.T) {
	h, err := NewHeap(HeapOptions{HeapSize: 12 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := h.NewMagazine()
	if err != nil {
		t.Fatal(err)
	}
	live := make([]Ptr, 0, 100)
	for i := 0; i < 100; i++ {
		p, err := m.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Mem().Store64(p, uint64(i)); err != nil {
			t.Fatal(err)
		}
		live = append(live, p)
	}
	for i, p := range live {
		if v, err := h.Mem().Load64(p); err != nil || v != uint64(i) {
			t.Fatalf("object %d: round trip %d %v", i, v, err)
		}
		if err := m.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Free(live[0]); err != nil { // double free through the magazine
		t.Fatal(err)
	}
	m.Close()
	st := h.Stats()
	if st.Mallocs != 100 || st.Frees != 100 || st.LiveObjects != 0 {
		t.Fatalf("drained stats: Mallocs=%d Frees=%d Live=%d, want 100/100/0",
			st.Mallocs, st.Frees, st.LiveObjects)
	}
	if st.IgnoredFrees != 1 {
		t.Fatalf("IgnoredFrees = %d, want 1", st.IgnoredFrees)
	}
	// Magazines refuse detection heaps: batching cannot preserve
	// per-operation canary audit points.
	dh, err := NewHeap(HeapOptions{HeapSize: 12 << 20, Seed: 1, DetectCanaries: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dh.NewMagazine(); err == nil {
		t.Fatal("NewMagazine on a DetectCanaries heap succeeded; want error")
	}
}

func TestPublicCallocRealloc(t *testing.T) {
	h, err := NewHeap(HeapOptions{HeapSize: 12 << 20, Seed: 2, ReplicatedMode: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := h.Calloc(8, 16)
	if err != nil {
		t.Fatal(err)
	}
	v, _ := h.Mem().Load64(p)
	if v != 0 {
		t.Fatalf("calloc not zeroed: %#x", v)
	}
	if err := WriteString(h.Mem(), p, "persist"); err != nil {
		t.Fatal(err)
	}
	q, err := h.Realloc(p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ReadString(h.Mem(), q, 32)
	if err != nil || s != "persist" {
		t.Fatalf("realloc lost data: %q %v", s, err)
	}
}

func TestPublicCheckedStrcpy(t *testing.T) {
	h, err := NewHeap(HeapOptions{HeapSize: 12 << 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	src, _ := h.Malloc(128)
	dst, _ := h.Malloc(16)
	if err := WriteString(h.Mem(), src, strings.Repeat("Z", 100)); err != nil {
		t.Fatal(err)
	}
	n, err := h.Strcpy(dst, src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 15 {
		t.Fatalf("checked strcpy copied %d, want 15", n)
	}
	n, err = h.Strncpy(dst, src, 1000) // wrong length, capped
	if err != nil || n != 15 {
		t.Fatalf("checked strncpy copied %d, %v", n, err)
	}
}

func TestPublicReplicatedRun(t *testing.T) {
	prog := func(ctx *Context) error {
		buf, err := ctx.Alloc.Malloc(len(ctx.Input))
		if err != nil {
			return err
		}
		if err := ctx.Mem.WriteBytes(buf, ctx.Input); err != nil {
			return err
		}
		out := make([]byte, len(ctx.Input))
		if err := ctx.Mem.ReadBytes(buf, out); err != nil {
			return err
		}
		_, err = ctx.Out.Write(out)
		return err
	}
	res, err := Run(prog, []byte("replicated hello"), RunOptions{Replicas: 3, HeapSize: 12 << 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "replicated hello" || !res.Agreed {
		t.Fatalf("%q %+v", res.Output, res)
	}
}

func TestPublicVoterEnginesAgree(t *testing.T) {
	// The facade exposes both voting engines; for the same seed they
	// must commit identical bytes (DESIGN.md §8).
	prog := func(ctx *Context) error {
		for i := 0; i < 2000; i++ {
			if _, err := fmt.Fprintf(ctx.Out, "line %04d\n", i); err != nil {
				return err
			}
		}
		return nil
	}
	pipe, err := Run(prog, nil, RunOptions{Replicas: 3, HeapSize: 12 << 20, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := Run(prog, nil, RunOptions{Replicas: 3, HeapSize: 12 << 20, Seed: 6, SequentialVoter: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pipe.Output, seq.Output) || pipe.Rounds != seq.Rounds {
		t.Fatalf("engines diverge: pipelined %d bytes/%d rounds, sequential %d bytes/%d rounds",
			len(pipe.Output), pipe.Rounds, len(seq.Output), seq.Rounds)
	}
	if pipe.Rounds < 4 {
		t.Fatalf("expected a multi-round run, got %d rounds", pipe.Rounds)
	}
}

func TestPublicUninitDetection(t *testing.T) {
	prog := func(ctx *Context) error {
		p, err := ctx.Alloc.Malloc(64)
		if err != nil {
			return err
		}
		v, err := ctx.Mem.Load64(p) // uninitialized read
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(ctx.Out, "%d", v)
		return err
	}
	res, err := Run(prog, nil, RunOptions{Replicas: 3, HeapSize: 12 << 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.UninitSuspected {
		t.Fatal("uninitialized read not detected")
	}
}

func TestPublicTheorems(t *testing.T) {
	if p := OverflowMaskProbability(1.0/8, 1, 1); math.Abs(p-0.875) > 1e-12 {
		t.Fatalf("Theorem 1: %v", p)
	}
	if p := DanglingMaskProbability(10000, 8, (384<<20)/12/2, 1); p <= 0.995 {
		t.Fatalf("Theorem 2 worked example: %v", p)
	}
	if p := UninitDetectProbability(4, 3); math.Abs(p-0.8203) > 0.001 {
		t.Fatalf("Theorem 3: %v", p)
	}
}

func TestSeedReproducesLayout(t *testing.T) {
	a, _ := NewHeap(HeapOptions{HeapSize: 12 << 20, Seed: 7})
	b, _ := NewHeap(HeapOptions{HeapSize: 12 << 20, Seed: a.Seed()})
	for i := 0; i < 50; i++ {
		pa, _ := a.Malloc(32)
		pb, _ := b.Malloc(32)
		if pa != pb {
			t.Fatal("recorded seed did not reproduce layout")
		}
	}
}

// TestLockedHeapEngineMatchesDefault: the facade's LockedHeap option
// selects the per-class-mutex reference engine, and for the same seed a
// single goroutine gets byte-identical placement from either engine
// (DESIGN.md §10).
func TestLockedHeapEngineMatchesDefault(t *testing.T) {
	lf, err := NewHeap(HeapOptions{HeapSize: 12 << 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	lk, err := NewHeap(HeapOptions{HeapSize: 12 << 20, Seed: 7, LockedHeap: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		size := 8 + (i*29)%2000
		pa, errA := lf.Malloc(size)
		pb, errB := lk.Malloc(size)
		if errA != nil || errB != nil {
			t.Fatal(errA, errB)
		}
		if pa != pb {
			t.Fatalf("alloc %d: lock-free engine placed %#x, locked engine %#x", i, pa, pb)
		}
		if i%3 == 0 {
			if err := lf.Free(pa); err != nil {
				t.Fatal(err)
			}
			if err := lk.Free(pb); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestDiscardWriter(t *testing.T) {
	n, err := Discard.Write([]byte("ignored"))
	if err != nil || n != 7 {
		t.Fatalf("%d %v", n, err)
	}
}

func TestPublicHeapDifferencing(t *testing.T) {
	build := func(h *Heap) Ptr {
		var last Ptr
		for i := 0; i < 50; i++ {
			p, err := h.Malloc(64)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Mem().Store64(p, uint64(i)); err != nil {
				t.Fatal(err)
			}
			last = p
		}
		return last
	}
	a, _ := NewHeap(HeapOptions{HeapSize: 12 << 20, Seed: 0xD1FF})
	b, _ := NewHeap(HeapOptions{HeapSize: 12 << 20, Seed: 0xD1FF})
	build(a)
	victim := build(b)
	// The "incorrect execution" scribbles on one object.
	if err := b.Mem().Store64(victim, 0xBAD); err != nil {
		t.Fatal(err)
	}
	sa, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	diffs := DiffSnapshots(sa, sb)
	if len(diffs) != 1 || diffs[0].Ptr != victim {
		t.Fatalf("differencing did not pinpoint the corruption: %v", diffs)
	}
}

func TestPublicStrcatStrdup(t *testing.T) {
	h, _ := NewHeap(HeapOptions{HeapSize: 12 << 20, Seed: 6})
	dst, _ := h.Malloc(16)
	src, _ := h.Malloc(64)
	if err := WriteString(h.Mem(), dst, "prob"); err != nil {
		t.Fatal(err)
	}
	if err := WriteString(h.Mem(), src, strings.Repeat("y", 50)); err != nil {
		t.Fatal(err)
	}
	n, err := h.Strcat(dst, src)
	if err != nil {
		t.Fatal(err)
	}
	if n != 11 { // 16-byte object: "prob" + 11 + NUL
		t.Fatalf("checked strcat appended %d, want 11", n)
	}
	dup, err := h.Strdup(dst)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := ReadString(h.Mem(), dup, 32)
	if s != "prob"+strings.Repeat("y", 11) {
		t.Fatalf("strdup got %q", s)
	}
}

func TestFacadeDetection(t *testing.T) {
	h, err := NewHeap(HeapOptions{HeapSize: 12 << 20, Seed: 7, DetectCanaries: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := h.Malloc(56)
	if err != nil {
		t.Fatal(err)
	}
	// An uninitialized read through the checked view...
	if _, err := h.Memory().Load64(p); err != nil {
		t.Fatal(err)
	}
	// ...then a 4-byte overflow, audited when the object is freed.
	if err := h.Memory().Memset(p, 'A', 60); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	rep := h.DetectionReport()
	if rep == nil {
		t.Fatal("no detection report from a DetectCanaries heap")
	}
	var kinds []DetectKind
	for _, ev := range rep.Evidence {
		kinds = append(kinds, ev.Kind)
	}
	if len(kinds) != 2 || kinds[0] != KindUninit || kinds[1] != KindOverflow {
		t.Fatalf("evidence kinds = %v, want [uninit, overflow]", kinds)
	}
	if n := h.HeapCheck(); n != 0 {
		t.Errorf("post-free HeapCheck found %d records on an already-audited heap", n)
	}
	// Triage across seeded layouts through the facade.
	var reports []*DetectionReport
	for seed := uint64(1); seed <= 4; seed++ {
		hh, err := NewHeap(HeapOptions{HeapSize: 12 << 20, Seed: seed, DetectCanaries: true})
		if err != nil {
			t.Fatal(err)
		}
		q, err := hh.Malloc(56)
		if err != nil {
			t.Fatal(err)
		}
		if err := hh.Memory().Memset(q, 'B', 60); err != nil {
			t.Fatal(err)
		}
		if err := hh.Free(q); err != nil {
			t.Fatal(err)
		}
		reports = append(reports, hh.DetectionReport())
	}
	tri := Triage(KindOverflow, reports)
	if tri.Culprit != 0 || tri.Detected != 4 {
		t.Fatalf("triage = %+v, want culprit site 0 detected in all 4 layouts", tri)
	}
	// A detection-less heap answers benignly.
	plain, err := NewHeap(HeapOptions{HeapSize: 12 << 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if plain.DetectionReport() != nil || plain.HeapCheck() != 0 {
		t.Error("plain heap pretends to detect")
	}
}

func TestFacadeRemoteFreeRing(t *testing.T) {
	// The public remote-free surface: frees enqueued from another
	// goroutine are deferred but exactly-once, and the option rejects
	// configurations the ring cannot batch past.
	h, err := NewHeap(HeapOptions{HeapSize: 12 << 20, Seed: 5, Concurrent: true, RemoteFreeRing: true})
	if err != nil {
		t.Fatal(err)
	}
	// Fill class 64 to its 1/M threshold, so every further malloc can
	// succeed only by draining queued remote frees.
	var ptrs []Ptr
	for {
		p, err := h.Malloc(64)
		if err != nil {
			break
		}
		ptrs = append(ptrs, p)
	}
	const n = 200
	victims := ptrs[:n]
	done := make(chan error, 1)
	go func() {
		for _, p := range victims {
			if err := h.RemoteFree(p); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// The heap is at threshold and the frees are parked on the ring:
	// these mallocs succeed only because the malloc miss drains it.
	for i := 0; i < n; i++ {
		if _, err := h.Malloc(64); err != nil {
			t.Fatalf("malloc %d at threshold with %d queued remote frees: %v", i, n, err)
		}
	}
	st := h.Stats()
	if st.Frees != n || st.RemoteFrees != n {
		t.Fatalf("Frees = %d, RemoteFrees = %d; want both %d (drained exactly once)", st.Frees, st.RemoteFrees, n)
	}
	for _, bad := range []HeapOptions{
		{HeapSize: 12 << 20, Seed: 5, RemoteFreeRing: true},                                     // not Concurrent
		{HeapSize: 12 << 20, Seed: 5, Concurrent: true, LockedHeap: true, RemoteFreeRing: true}, // locked engine
		{HeapSize: 12 << 20, Seed: 5, DetectCanaries: true, RemoteFreeRing: true},               // canary hooks
	} {
		if _, err := NewHeap(bad); err == nil {
			t.Fatalf("options %+v accepted with RemoteFreeRing", bad)
		}
	}
	// Without the ring, RemoteFree degrades to Free.
	plain, err := NewHeap(HeapOptions{HeapSize: 12 << 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p, err := plain.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.RemoteFree(p); err != nil {
		t.Fatal(err)
	}
	if st := plain.Stats(); st.Frees != 1 || st.RemoteFrees != 0 {
		t.Fatalf("ring-less RemoteFree: Frees = %d, RemoteFrees = %d; want 1, 0", st.Frees, st.RemoteFrees)
	}
}

func TestFacadeGenTags(t *testing.T) {
	// Plain gen-tagged heap: fat allocation, deterministic stale-free
	// rejection, temporal validity check.
	h, err := NewHeap(HeapOptions{HeapSize: 12 << 20, Seed: 7, GenTags: true})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := h.MallocFat(64)
	if err != nil {
		t.Fatal(err)
	}
	if !h.CheckGen(fp) {
		t.Fatal("fresh fat pointer not current")
	}
	if ok, err := h.FreeFat(fp); !ok || err != nil {
		t.Fatalf("FreeFat = %v, %v", ok, err)
	}
	if h.CheckGen(fp) {
		t.Fatal("dead fat pointer still validates")
	}
	if ok, _ := h.FreeFat(fp); ok {
		t.Fatal("double free accepted on a gen-tagged heap")
	}
	if st := h.Stats(); st.StaleFrees != 1 {
		t.Fatalf("StaleFrees = %d; want 1", st.StaleFrees)
	}
	if h.GenMemory() != nil {
		t.Fatal("GenMemory non-nil without DetectCanaries")
	}

	// Detection + gen tags: the generation-checked view reports stale
	// accesses as evidence alongside the canary engine.
	dh, err := NewHeap(HeapOptions{HeapSize: 12 << 20, Seed: 8, GenTags: true, DetectCanaries: true})
	if err != nil {
		t.Fatal(err)
	}
	gm := dh.GenMemory()
	if gm == nil {
		t.Fatal("GenMemory nil on a DetectCanaries+GenTags heap")
	}
	fp2, err := dh.MallocFat(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := dh.Memory().Memset(fp2.Addr, 0x11, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := gm.Load64(fp2, 0); err != nil {
		t.Fatal(err)
	}
	if ok, err := dh.FreeFat(fp2); !ok || err != nil {
		t.Fatalf("FreeFat = %v, %v", ok, err)
	}
	if _, err := gm.Load64(fp2, 0); err != nil {
		t.Fatal(err)
	}
	if ok, _ := dh.FreeFat(fp2); ok {
		t.Fatal("stale free accepted")
	}
	rep := dh.DetectionReport()
	var stale, access int
	for _, ev := range rep.Evidence {
		switch ev.Kind {
		case KindStaleFree:
			stale++
		case KindStaleAccess:
			access++
		}
	}
	if access == 0 {
		t.Fatalf("no stale-access evidence after a dead load: %+v", rep.Evidence)
	}
	_ = stale // the (addr, gen) dedup may fold the free into the access record
}
