// Command probplot prints the data series of the paper's probability
// figures: Figure 4(a) (masking buffer overflows), Figure 4(b) (masking
// dangling pointers), and the §6.3 uninitialized-read detection curves,
// each with the closed-form value, the abstract Monte Carlo estimate,
// and (where cheap) the measurement on the real allocator.
//
// Usage:
//
//	probplot -fig 4a
//	probplot -fig 4b
//	probplot -fig uninit
package main

import (
	"flag"
	"fmt"
	"os"

	"diehard/internal/analysis"
	"diehard/internal/exps"
)

func main() {
	fig := flag.String("fig", "4a", "figure to print: 4a, 4b, uninit")
	trials := flag.Int("trials", 20000, "Monte Carlo trials per point")
	flag.Parse()

	switch *fig {
	case "4a":
		fig4a(*trials)
	case "4b":
		fig4b(*trials)
	case "uninit":
		uninit(*trials)
	default:
		fmt.Fprintf(os.Stderr, "probplot: unknown figure %q\n", *fig)
		os.Exit(2)
	}
}

func fig4a(trials int) {
	fmt.Println("# Figure 4(a): probability of masking a single-object buffer overflow")
	fmt.Println("# fullness replicas theorem1 montecarlo empirical(real allocator)")
	for _, f := range []float64{1.0 / 8, 1.0 / 4, 1.0 / 2} {
		for _, k := range []int{1, 3, 4, 5, 6} {
			formula := analysis.OverflowMaskProb(f, 1, k)
			mc := analysis.SimOverflowMask(trials, 4096, 1, k, f, 42)
			emp, err := exps.EmpiricalOverflowMask(f, k, trials/10, 3<<20, 7)
			if err != nil {
				fmt.Fprintf(os.Stderr, "probplot: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%-8.3f %-8d %-9.4f %-10.4f %-9.4f\n", f, k, formula, mc, emp)
		}
	}
}

func fig4b(trials int) {
	fmt.Println("# Figure 4(b): probability of masking a dangling pointer error")
	fmt.Println("# (stand-alone DieHard, default configuration: 384MB heap, M=2)")
	fmt.Println("# size allocs theorem2 montecarlo")
	for _, a := range []int{100, 1000, 10000} {
		for _, s := range []int{8, 16, 32, 64, 128, 256} {
			formula := analysis.DanglingMaskProb(a, s, analysis.DefaultClassFreeBytes, 1)
			q := analysis.DefaultClassFreeBytes / s
			mc := analysis.SimDanglingMask(trials, q, a, 1, 11)
			fmt.Printf("%-5d %-7d %-9.5f %-9.5f\n", s, a, formula, mc)
		}
	}
}

func uninit(trials int) {
	fmt.Println("# Theorem 3: probability of detecting an uninitialized read of B bits")
	fmt.Println("# bits replicas theorem3 montecarlo")
	for _, k := range []int{3, 4, 5} {
		for _, b := range []int{1, 2, 4, 8, 16} {
			formula := analysis.UninitDetectProb(b, k)
			mc := analysis.SimUninitDetect(trials, b, k, 13)
			fmt.Printf("%-5d %-8d %-9.5f %-9.5f\n", b, k, formula, mc)
		}
	}
}
