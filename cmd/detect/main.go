// Command detect runs the probabilistic heap-error detection campaign:
// the canary engine (internal/detect) graded against planned fault
// injection, per error type and heap multiplier, with Exterminator-style
// cross-layout triage of the overflow culprits.
//
// Usage:
//
//	detect                          # default campaign (16 trials, 16 layouts)
//	detect -trials 8 -layouts 8     # smaller sweep
//	detect -multipliers 2,4,8       # extra heap expansion factors
//	detect -workers 8               # fan trials out; same table bytes
//	detect -selftest                # tiny run asserting the acceptance bars
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"diehard/internal/exps"
)

func main() {
	var (
		trials   = flag.Int("trials", 0, "trials per cell (0 = default 16; half injected, half clean)")
		layouts  = flag.Int("layouts", 0, "seeded layouts per triaged overflow trial (0 = default 16)")
		mults    = flag.String("multipliers", "", "comma-separated heap multipliers M (default 2,4)")
		workers  = flag.Int("workers", 0, "campaign worker goroutines (0 = GOMAXPROCS); output is identical for any value")
		heapSize = flag.Int("heap", 0, "per-trial heap size in bytes (0 = default 2 MB)")
		seed     = flag.Uint64("seed", 0, "campaign seed (0 = default)")
		selftest = flag.Bool("selftest", false, "run a tiny campaign and fail unless the acceptance bars hold")
	)
	flag.Parse()

	params := exps.DetectParams{
		Trials:   *trials,
		Layouts:  *layouts,
		HeapSize: *heapSize,
		Seed:     *seed,
	}
	if *mults != "" {
		for _, f := range strings.Split(*mults, ",") {
			m, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fatal(fmt.Errorf("bad multiplier %q: %w", f, err))
			}
			params.Multipliers = append(params.Multipliers, m)
		}
	}
	if *selftest {
		params.Trials = 8
		params.Layouts = 8
		params.Multipliers = []float64{2}
	}

	table, err := exps.RunDetectionTable(params, *workers)
	if err != nil {
		fatal(err)
	}

	fmt.Println("# Canary detection campaign: precision/recall vs planned fault injection")
	fmt.Printf("# %d trials/cell (half injected), triage over %d seeded layouts\n",
		table.Params.Trials, table.Params.Layouts)
	fmt.Printf("%-10s %-5s %-5s %-5s %-10s %-8s %-10s %-10s %s\n",
		"error", "M", "inj", "det", "precision", "recall", "triage", "ovflw-len", "hash")
	for _, c := range table.Cells {
		triage := "-"
		if c.TriageTrials > 0 {
			triage = fmt.Sprintf("%d/%d", c.TriageLocalized, c.TriageTrials)
		}
		length := "-"
		if c.MeanOverflowLen > 0 {
			length = fmt.Sprintf("%.1fB", c.MeanOverflowLen)
		}
		fmt.Printf("%-10s %-5g %-5d %-5d %-10.3f %-8.3f %-10s %-10s %016x\n",
			c.Error, c.Multiplier, c.Injected, c.TruePos+c.FalsePos,
			c.Precision, c.Recall, triage, length, c.OutputHash)
	}

	if *selftest {
		failed := false
		report := func(format string, args ...any) {
			failed = true
			fmt.Fprintf(os.Stderr, "selftest: "+format+"\n", args...)
		}
		for _, c := range table.Cells {
			if c.Error == exps.DetectOverflow {
				if c.Precision < 0.99 {
					report("overflow precision %.3f < 0.99", c.Precision)
				}
				if c.Recall < 0.9 {
					report("overflow recall %.3f < 0.9", c.Recall)
				}
				if c.TriageTrials == 0 {
					report("no overflow trials reached triage")
				} else if rate := float64(c.TriageLocalized) / float64(c.TriageTrials); rate < 0.9 {
					report("triage localized only %.3f of detected overflow trials", rate)
				}
			}
			if c.Error == exps.DetectUninit && c.Recall < 0.99 {
				report("uninit recall %.3f < 0.99", c.Recall)
			}
		}
		if failed {
			os.Exit(1)
		}
		fmt.Println("selftest ok")
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "detect: %v\n", err)
	os.Exit(1)
}
