// Command detect runs the heap-error detection campaign across the
// three policy tiers (DESIGN.md §15): the probabilistic canary engine
// (internal/detect) graded against planned fault injection with
// Exterminator-style cross-layout triage of the overflow culprits, the
// deterministic generation-tag tier on dangling errors, and the
// replicated random-fill divergence vote on uninitialized reads.
//
// Usage:
//
//	detect                          # default campaign (16 trials, 16 layouts)
//	detect -trials 8 -layouts 8     # smaller sweep
//	detect -multipliers 2,4,8       # extra heap expansion factors
//	detect -workers 8               # fan trials out; same table bytes
//	detect -selftest                # tiny run asserting the acceptance bars
//	detect -out BENCH_vmem.json     # merge per-cell precision/recall into the baseline file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"diehard/internal/exps"
)

// benchRun and benchFile mirror cmd/vmembench's BENCH_vmem.json schema
// (Run/File there): the detection campaign merges its per-cell grades
// into the same baseline file under their own label, so one JSON
// carries both the perf trajectory and the detection-quality
// trajectory.
type benchRun struct {
	Date    string             `json:"date"`
	Go      string             `json:"go"`
	CPUs    int                `json:"cpus,omitempty"`
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

type benchFile struct {
	PageSize int                 `json:"pagesize"`
	Runs     map[string]benchRun `json:"runs"`
}

func main() {
	var (
		trials   = flag.Int("trials", 0, "trials per cell (0 = default 16; half injected, half clean)")
		layouts  = flag.Int("layouts", 0, "seeded layouts per triaged overflow trial (0 = default 16)")
		mults    = flag.String("multipliers", "", "comma-separated heap multipliers M (default 2,4)")
		workers  = flag.Int("workers", 0, "campaign worker goroutines (0 = GOMAXPROCS); output is identical for any value")
		heapSize = flag.Int("heap", 0, "per-trial heap size in bytes (0 = default 2 MB)")
		seed     = flag.Uint64("seed", 0, "campaign seed (0 = default)")
		selftest = flag.Bool("selftest", false, "run a tiny campaign and fail unless the acceptance bars hold")
		out      = flag.String("out", "", "merge per-cell precision/recall into this BENCH_vmem.json-format file under label \"detect\" (default: don't write)")
	)
	flag.Parse()

	params := exps.DetectParams{
		Trials:   *trials,
		Layouts:  *layouts,
		HeapSize: *heapSize,
		Seed:     *seed,
	}
	if *mults != "" {
		for _, f := range strings.Split(*mults, ",") {
			m, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				fatal(fmt.Errorf("bad multiplier %q: %w", f, err))
			}
			params.Multipliers = append(params.Multipliers, m)
		}
	}
	if *selftest {
		params.Trials = 8
		params.Layouts = 8
		params.Multipliers = []float64{2}
	}

	table, err := exps.RunDetectionTable(params, *workers)
	if err != nil {
		fatal(err)
	}

	fmt.Println("# Detection campaign: precision/recall vs planned fault injection, per policy tier")
	fmt.Printf("# %d trials/cell (half injected), triage over %d seeded layouts\n",
		table.Params.Trials, table.Params.Layouts)
	fmt.Printf("%-14s %-10s %-5s %-5s %-5s %-10s %-8s %-10s %-10s %s\n",
		"policy", "error", "M", "inj", "det", "precision", "recall", "triage", "ovflw-len", "hash")
	for _, c := range table.Cells {
		triage := "-"
		if c.TriageTrials > 0 {
			triage = fmt.Sprintf("%d/%d", c.TriageLocalized, c.TriageTrials)
		}
		length := "-"
		if c.MeanOverflowLen > 0 {
			length = fmt.Sprintf("%.1fB", c.MeanOverflowLen)
		}
		fmt.Printf("%-14s %-10s %-5g %-5d %-5d %-10.3f %-8.3f %-10s %-10s %016x\n",
			c.Policy, c.Error, c.Multiplier, c.Injected, c.TruePos+c.FalsePos,
			c.Precision, c.Recall, triage, length, c.OutputHash)
	}

	if *out != "" {
		if err := record(*out, table); err != nil {
			fatal(err)
		}
		fmt.Printf("recorded as %q in %s\n", "detect", *out)
	}

	if *selftest {
		failed := false
		report := func(format string, args ...any) {
			failed = true
			fmt.Fprintf(os.Stderr, "selftest: "+format+"\n", args...)
		}
		for _, c := range table.Cells {
			switch c.Policy {
			case exps.PolicyGenTag:
				// The deterministic temporal tier: exact identities, not
				// thresholds — any miss is a protocol bug.
				if c.Precision != 1.0 || c.Recall != 1.0 {
					report("gentag %s precision %.3f recall %.3f; want exactly 1.0",
						c.Error, c.Precision, c.Recall)
				}
				continue
			case exps.PolicyReplicated:
				if c.Precision != 1.0 || c.Recall != 1.0 {
					report("replicated %s precision %.3f recall %.3f; want 1.0",
						c.Error, c.Precision, c.Recall)
				}
				continue
			}
			if c.Error == exps.DetectOverflow {
				if c.Precision < 0.99 {
					report("overflow precision %.3f < 0.99", c.Precision)
				}
				if c.Recall < 0.9 {
					report("overflow recall %.3f < 0.9", c.Recall)
				}
				if c.TriageTrials == 0 {
					report("no overflow trials reached triage")
				} else if rate := float64(c.TriageLocalized) / float64(c.TriageTrials); rate < 0.9 {
					report("triage localized only %.3f of detected overflow trials", rate)
				}
			}
			if c.Error == exps.DetectUninit && c.Recall < 0.99 {
				report("uninit recall %.3f < 0.99", c.Recall)
			}
		}
		if failed {
			os.Exit(1)
		}
		fmt.Println("selftest ok")
	}
}

// record merges the table's per-cell precision/recall (plus the triage
// localization rate of overflow cells) into the BENCH_vmem.json-format
// baseline under label "detect". Keys are
// detect_<policy>_<error>_<metric>_m<multiplier>, so the file carries
// one scalar per cell metric alongside the perf series.
func record(path string, table *exps.DetectionTable) error {
	var file benchFile
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &file); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	vals := map[string]float64{}
	for _, c := range table.Cells {
		key := fmt.Sprintf("detect_%s_%s", c.Policy, c.Error)
		suffix := fmt.Sprintf("_m%g", c.Multiplier)
		vals[key+"_precision"+suffix] = c.Precision
		vals[key+"_recall"+suffix] = c.Recall
		if c.TriageTrials > 0 {
			vals[key+"_triage"+suffix] = float64(c.TriageLocalized) / float64(c.TriageTrials)
		}
	}
	if file.Runs == nil {
		file.Runs = map[string]benchRun{}
	}
	file.Runs["detect"] = benchRun{
		Date:    time.Now().UTC().Format("2006-01-02"),
		Go:      runtime.Version(),
		CPUs:    runtime.NumCPU(),
		NsPerOp: vals,
	}
	enc, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "detect: %v\n", err)
	os.Exit(1)
}
