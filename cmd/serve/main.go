// Command serve runs the allocator-as-a-service soak (internal/serve)
// and records its grade — sustained sessions/sec and p50/p99/p999
// session latency — into a JSON baseline keyed by label:
//
//	go run ./cmd/serve -label serve -out BENCH_serve.json
//
// Three soaks are recorded: closed-loop saturation with synchronous
// cross-worker frees, the same with remote-free rings, and an open-loop
// Poisson+burst run at roughly half the measured saturation throughput
// (so the tail percentiles grade queueing behavior, not just service
// time). With -smoke it instead runs a seconds-long deterministic soak
// in both free modes, asserts zero invariant violations and a generous
// p99 ceiling, and writes nothing — safe for 1-CPU CI hosts, whose
// numbers must never overwrite a multicore recording (the same
// provenance guard cmd/vmembench uses).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"time"

	"diehard/internal/obs"
	"diehard/internal/serve"
)

// Run is one labeled soak set. CPUs records the host parallelism the
// numbers were measured under — tail latency on a 1-CPU host grades
// scheduler queueing, not the allocator.
type Run struct {
	Date    string             `json:"date"`
	Go      string             `json:"go"`
	CPUs    int                `json:"cpus,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
}

// File is the on-disk schema of BENCH_serve.json.
type File struct {
	Runs map[string]Run `json:"runs"`
}

func main() {
	var (
		label    = flag.String("label", "serve", "label for this measurement set")
		out      = flag.String("out", "BENCH_serve.json", "output file (merged in place)")
		force    = flag.Bool("force", false, "allow a 1-CPU rerun to overwrite an entry recorded on a multicore host")
		smoke    = flag.Bool("smoke", false, "run the seconds-long CI soak (both free modes, zero-violation + p99 gate) and write nothing")
		sessions = flag.Int64("sessions", 400_000, "sessions per recorded soak")
		shards   = flag.Int("shards", 8, "heap shards")
		workers  = flag.Int("workers", 8, "worker goroutines")
		withObs  = flag.Bool("obs", false, "attach the telemetry plane (metrics registry + flight recorder) and dump a JSON snapshot to stdout; with -smoke, also gate the acceptance shape")
		httpAddr = flag.String("http", "", "serve /metrics, /trace, and /debug/pprof on this address while the soaks run (implies -obs)")
	)
	flag.Parse()

	var (
		reg *obs.Registry
		rec *obs.Recorder
	)
	if *withObs || *httpAddr != "" {
		reg = obs.NewRegistry()
		rec = obs.NewRecorder(4096)
	}
	if *httpAddr != "" {
		go serveHTTP(*httpAddr, reg, rec)
	}

	if *smoke {
		runSmoke(reg, rec)
		return
	}

	file, err := readFile(*out)
	if err != nil && !os.IsNotExist(err) {
		fatal(fmt.Errorf("%s: %w", *out, err))
	}
	if run, ok := file.Runs[*label]; ok && run.CPUs > 1 && runtime.NumCPU() == 1 && !*force {
		fatal(fmt.Errorf("label %q in %s was recorded with %d CPUs; rerunning on 1 CPU would overwrite the multicore numbers (pass -force to do it anyway)",
			*label, *out, run.CPUs))
	}

	base := serve.Config{
		Shards:   *shards,
		Workers:  *workers,
		Sessions: *sessions,
		Seed:     0x5e44e,
		Obs:      reg,
		Trace:    rec,
	}
	metrics := map[string]float64{}
	record := func(name string, res *serve.Result) {
		metrics[name+"_sessions_per_sec"] = res.SessionsPerSec
		metrics[name+"_p50_ns"] = float64(res.P50)
		metrics[name+"_p99_ns"] = float64(res.P99)
		metrics[name+"_p999_ns"] = float64(res.P999)
		metrics[name+"_fullness_drift"] = res.FullnessEnd
		metrics[name+"_cas_retries"] = float64(res.Stats.CASRetries)
		fmt.Printf("%-22s %10.0f sessions/s  p50 %8dns  p99 %8dns  p999 %8dns\n",
			name, res.SessionsPerSec, res.P50, res.P99, res.P999)
	}

	cfg := base
	cfg.FreeMode = serve.FreeSync
	sync, err := serve.Run(cfg)
	if err != nil {
		fatal(err)
	}
	record("serve_soak_sat_sync", sync)

	cfg = base
	cfg.FreeMode = serve.FreeRemote
	remote, err := serve.Run(cfg)
	if err != nil {
		fatal(err)
	}
	record("serve_soak_sat_remote", remote)
	metrics["serve_soak_remote_frees"] = float64(remote.Stats.RemoteFrees)
	metrics["serve_soak_remote_drains"] = float64(remote.Stats.RemoteDrains)

	// Open loop at ~50% of the just-measured saturation throughput,
	// with bursts: the percentiles now include queueing delay from the
	// scheduled Poisson arrivals.
	cfg = base
	cfg.FreeMode = serve.FreeRemote
	cfg.Rate = remote.SessionsPerSec * 0.5
	cfg.BurstProb = 0.02
	cfg.BurstLen = 64
	open, err := serve.Run(cfg)
	if err != nil {
		fatal(err)
	}
	record("serve_soak_open_burst", open)

	if file.Runs == nil {
		file.Runs = map[string]Run{}
	}
	file.Runs[*label] = Run{
		Date:    time.Now().UTC().Format("2006-01-02"),
		Go:      runtime.Version(),
		CPUs:    runtime.NumCPU(),
		Metrics: metrics,
	}
	enc, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("recorded as %q in %s\n", *label, *out)
	if reg != nil {
		dumpObs(reg, rec)
	}
}

// serveHTTP exposes the live telemetry plane while the soaks run:
// /metrics and /trace render the registry and the merged flight-
// recorder timeline as JSON, /debug/pprof the usual Go profiles. The
// process exits with the soaks; point a scraper at it during long
// recorded runs.
func serveHTTP(addr string, reg *obs.Registry, rec *obs.Recorder) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc, err := json.Marshal(reg.Snapshot())
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(enc)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc, err := rec.TraceJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(enc)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if err := http.ListenAndServe(addr, mux); err != nil {
		fmt.Fprintf(os.Stderr, "serve: http: %v\n", err)
	}
}

// obsDoc is the -obs stdout dump: the full metric tree plus the tail
// of the merged trace timeline.
type obsDoc struct {
	Metrics []obs.MetricPoint `json:"metrics"`
	Trace   []obs.Event       `json:"trace"`
}

func dumpObs(reg *obs.Registry, rec *obs.Recorder) {
	doc := obsDoc{Metrics: reg.Snapshot().Metrics, Trace: rec.Tail(256)}
	if doc.Trace == nil {
		doc.Trace = []obs.Event{}
	}
	enc, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(append(enc, '\n'))
}

// runSmoke is the CI gate: a deterministic seconds-long soak in each
// free mode must complete with zero invariant violations (serve.Run
// fails otherwise), zero leftover fullness, and a p99 under a ceiling
// generous enough for a loaded 1-CPU runner yet low enough to catch a
// pathological drain stall (seconds-scale tail).
func runSmoke(reg *obs.Registry, rec *obs.Recorder) {
	const p99Ceiling = 250 * time.Millisecond
	for _, mode := range []struct {
		name string
		fm   serve.FreeMode
	}{
		{"sync", serve.FreeSync},
		{"remote", serve.FreeRemote},
	} {
		res, err := serve.Run(serve.Config{
			Shards:   4,
			Workers:  4,
			Sessions: 120_000,
			Seed:     0x5e44e,
			FreeMode: mode.fm,
		})
		if err != nil {
			fatal(fmt.Errorf("smoke %s: %w", mode.name, err))
		}
		fmt.Printf("smoke %-6s %10.0f sessions/s  p50 %8dns  p99 %8dns  p999 %8dns\n",
			mode.name, res.SessionsPerSec, res.P50, res.P99, res.P999)
		if res.FullnessEnd != 0 {
			fatal(fmt.Errorf("smoke %s: leaked %v fullness", mode.name, res.FullnessEnd))
		}
		if res.P99 > p99Ceiling.Nanoseconds() {
			fatal(fmt.Errorf("smoke %s: p99 %v exceeds %v", mode.name, time.Duration(res.P99), p99Ceiling))
		}
		if mode.fm == serve.FreeRemote && res.Stats.RemoteFrees == 0 {
			fatal(fmt.Errorf("smoke remote: ring never used"))
		}
	}
	if reg != nil {
		smokeObs(reg, rec)
	}
	fmt.Println("serve smoke passed")
}

// smokeObs is the telemetry acceptance gate: a short mitigated
// fault-scheduled soak with the full plane attached must leave live
// metrics from at least four layers (vmem, core, serve, heal) in the
// registry and a non-empty, stamp-ordered merged trace — then the
// snapshot is dumped so CI logs carry the evidence.
func smokeObs(reg *obs.Registry, rec *obs.Recorder) {
	plan := &serve.FaultPlan{
		OverflowObject: 3, OverflowReach: 24, OverflowEvery: 2,
		DanglingObject: 9, DanglingEvery: 2,
	}
	_, err := serve.Run(serve.Config{
		Shards:   2,
		Workers:  2,
		HeapSize: 2 << 20,
		Sessions: 4000,
		Seed:     0x5e44e,
		FreeMode: serve.FreeRemote,
		Faults:   plan,
		Mitigate: serve.StaticMitigator(
			map[int]int{plan.OverflowObject: plan.OverflowReach + 8},
			map[int]bool{plan.DanglingObject: true},
		),
		Obs:   reg,
		Trace: rec,
	})
	if err != nil {
		fatal(fmt.Errorf("smoke obs: %w", err))
	}
	for _, m := range []string{"vmem.loads", "core.mallocs", "serve.sessions", "heal.quarantined_frees"} {
		v, ok := reg.Get(m)
		if !ok {
			fatal(fmt.Errorf("smoke obs: metric %s missing from registry", m))
		}
		if v == 0 && m != "heal.corruptions" {
			fatal(fmt.Errorf("smoke obs: metric %s reads 0 after the soak", m))
		}
	}
	evs := rec.Snapshot()
	if len(evs) == 0 {
		fatal(fmt.Errorf("smoke obs: flight recorder captured nothing"))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i-1].Seq >= evs[i].Seq {
			fatal(fmt.Errorf("smoke obs: merged trace out of order at %d", i))
		}
	}
	dumpObs(reg, rec)
	fmt.Printf("smoke obs    %d metrics, %d trace events, timeline ordered\n",
		len(reg.Snapshot().Metrics), len(evs))
}

func readFile(path string) (File, error) {
	f := File{Runs: map[string]Run{}}
	raw, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		return f, err
	}
	return f, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "serve: %v\n", err)
	os.Exit(1)
}
