// Command heal runs the self-healing supervisor (internal/heal) under
// the standard planned fault schedule and records the grade — MTBF with
// healing off vs on — into the same JSON baseline cmd/serve writes:
//
//	go run ./cmd/heal -label heal -out BENCH_serve.json
//
// Two pairs are recorded: the supervisor's own restart-cycle campaign
// (cycles between invariant failures, unhealed vs healed) and the
// serve-embedded fault soak (sessions between token corruptions,
// unmitigated vs mitigated by the countermeasures a healed supervisor
// converged to). With -smoke it instead runs a tiny deterministic
// schedule, asserts the healed MTBF is at least 2x the unhealed
// baseline with both culprits convicted exactly, and writes nothing —
// safe for 1-CPU CI hosts, whose numbers must never overwrite a
// multicore recording (the provenance guard cmd/serve uses).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"diehard/internal/heal"
	"diehard/internal/obs"
	"diehard/internal/serve"
)

// Run is one labeled measurement set, schema-compatible with cmd/serve
// so both commands merge into one BENCH_serve.json.
type Run struct {
	Date    string             `json:"date"`
	Go      string             `json:"go"`
	CPUs    int                `json:"cpus,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
}

// File is the on-disk schema of BENCH_serve.json.
type File struct {
	Runs map[string]Run `json:"runs"`
}

// schedule is the standard planted fault schedule: site 7 overflows 24
// bytes past its 48-byte object every 3rd cycle, site 29 is freed
// prematurely and written through the stale pointer every 4th.
func schedule() heal.Schedule {
	return heal.Schedule{
		Sites:        48,
		ObjectSize:   48,
		OverflowSite: 7, OverflowReach: 24, OverflowEvery: 3,
		DanglingSite: 29, DanglingEvery: 4,
	}
}

func main() {
	var (
		label   = flag.String("label", "heal", "label for this measurement set")
		out     = flag.String("out", "BENCH_serve.json", "output file (merged in place)")
		force   = flag.Bool("force", false, "allow a 1-CPU rerun to overwrite an entry recorded on a multicore host")
		smoke   = flag.Bool("smoke", false, "run the tiny CI schedule (healed MTBF >= 2x unhealed, exact culprits) and write nothing")
		cycles  = flag.Int("cycles", 960, "supervisor cycles per run")
		withObs = flag.Bool("obs", false, "attach the telemetry plane to the healed run and dump its metric tree and trace tail as JSON to stdout")
	)
	flag.Parse()

	var (
		reg *obs.Registry
		rec *obs.Recorder
	)
	if *withObs {
		reg = obs.NewRegistry()
		rec = obs.NewRecorder(4096)
	}

	if *smoke {
		runSmoke(reg, rec)
		return
	}

	file, err := readFile(*out)
	if err != nil && !os.IsNotExist(err) {
		fatal(fmt.Errorf("%s: %w", *out, err))
	}
	if run, ok := file.Runs[*label]; ok && run.CPUs > 1 && runtime.NumCPU() == 1 && !*force {
		fatal(fmt.Errorf("label %q in %s was recorded with %d CPUs; rerunning on 1 CPU would overwrite the multicore numbers (pass -force to do it anyway)",
			*label, *out, run.CPUs))
	}

	cfg := heal.Config{
		Seed:        0x4EA1,
		Schedule:    schedule(),
		Cycles:      *cycles,
		EpochCycles: 80,
	}
	base, err := heal.Run(cfg)
	if err != nil {
		fatal(err)
	}
	cfg.Heal = true
	cfg.Obs, cfg.Trace = reg, rec
	healed, err := heal.Run(cfg)
	if err != nil {
		fatal(err)
	}
	metrics := map[string]float64{
		"heal_mtbf_before":          base.MTBF,
		"heal_mtbf_after":           healed.MTBF,
		"heal_mtbf_ratio":           healed.MTBF / base.MTBF,
		"heal_failures_before":      float64(base.Failures),
		"heal_failures_after":       float64(healed.Failures),
		"heal_onset_cycle":          float64(healed.OnsetCycle),
		"heal_mitigated_cycle":      float64(healed.MitigatedCycle),
		"heal_restarts_to_mitigate": float64(healed.RestartsOnsetToMitigation),
		"heal_quarantined_frees":    float64(healed.Quarantined),
		"heal_min_check_cadence":    float64(healed.MinCadence),
	}
	fmt.Printf("supervisor MTBF  unhealed %8.1f cycles (%d failures)  healed %8.1f cycles (%d failures)  ratio %.1fx\n",
		base.MTBF, base.Failures, healed.MTBF, healed.Failures, healed.MTBF/base.MTBF)
	fmt.Printf("timeline: onset cycle %d, mitigated cycle %d, %d restarts between (live countermeasures)\n",
		healed.OnsetCycle, healed.MitigatedCycle, healed.RestartsOnsetToMitigation)

	// The serve embedding: the same fault geometry in the open-loop
	// soak's session loop, mitigated by the countermeasures the healed
	// supervisor converged to.
	sch := schedule()
	plan := &serve.FaultPlan{
		ObjectSize:     sch.ObjectSize,
		OverflowObject: 3, OverflowReach: sch.OverflowReach, OverflowEvery: 2,
		DanglingObject: 9, DanglingEvery: 2,
	}
	scfg := serve.Config{
		Shards:   1,
		Workers:  1, // injected writes race any concurrent slot owner by design
		HeapSize: 1 << 20,
		Sessions: 50_000,
		Seed:     0x4EA1,
		Faults:   plan,
	}
	sbase, err := serve.Run(scfg)
	if err != nil {
		fatal(err)
	}
	scfg.Mitigate = mitFromHealed(healed, plan)
	smit, err := serve.Run(scfg)
	if err != nil {
		fatal(err)
	}
	metrics["heal_serve_mtbf_sessions_before"] = sbase.MTBFSessions
	metrics["heal_serve_mtbf_sessions_after"] = smit.MTBFSessions
	metrics["heal_serve_corruptions_before"] = float64(sbase.Corruptions)
	metrics["heal_serve_corruptions_after"] = float64(smit.Corruptions)
	metrics["heal_serve_quarantined_frees"] = float64(smit.QuarantinedFrees)
	fmt.Printf("serve MTBF       unmitigated %6.1f sessions (%d corruptions)  mitigated %8.1f sessions (%d corruptions)\n",
		sbase.MTBFSessions, sbase.Corruptions, smit.MTBFSessions, smit.Corruptions)

	if file.Runs == nil {
		file.Runs = map[string]Run{}
	}
	file.Runs[*label] = Run{
		Date:    time.Now().UTC().Format("2006-01-02"),
		Go:      runtime.Version(),
		CPUs:    runtime.NumCPU(),
		Metrics: metrics,
	}
	enc, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("recorded as %q in %s\n", *label, *out)
	if reg != nil {
		dumpObs(reg, rec)
	}
}

// obsDoc is the -obs stdout dump, the same shape cmd/serve emits: the
// full metric tree plus the tail of the merged trace timeline.
type obsDoc struct {
	Metrics []obs.MetricPoint `json:"metrics"`
	Trace   []obs.Event       `json:"trace"`
}

func dumpObs(reg *obs.Registry, rec *obs.Recorder) {
	doc := obsDoc{Metrics: reg.Snapshot().Metrics, Trace: rec.Tail(256)}
	if doc.Trace == nil {
		doc.Trace = []obs.Event{}
	}
	enc, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(append(enc, '\n'))
}

// serveMit adapts the supervisor's converged countermeasures to the
// serve soak's object-index site space.
type serveMit struct {
	pads map[int]int
	quar map[int]bool
}

func (m serveMit) Pad(site int) int          { return m.pads[site] }
func (m serveMit) Quarantined(site int) bool { return m.quar[site] }

// mitFromHealed translates the healed run's verdict into the fault
// soak's site space: the supervisor convicted cyclic allocation sites,
// the soak plants the same bug classes at fixed object indices, so the
// pad learned for the overflow culprit moves to the soak's overflow
// object and likewise for the quarantine.
func mitFromHealed(res *heal.Result, plan *serve.FaultPlan) serve.Mitigator {
	m := serveMit{pads: map[int]int{}, quar: map[int]bool{}}
	if res.Overflow != nil {
		if pad := res.PadTable[res.Overflow.Culprit]; pad > 0 {
			m.pads[plan.OverflowObject] = pad
		}
	}
	if res.Dangling != nil && len(res.QuarantineSites) > 0 {
		m.quar[plan.DanglingObject] = true
	}
	return m
}

// runSmoke is the CI gate: a tiny deterministic schedule must convict
// exactly the planted culprits, apply both countermeasures without a
// restart in between, and at least double the MTBF. Writes nothing.
func runSmoke(reg *obs.Registry, rec *obs.Recorder) {
	cfg := heal.Config{
		Seed:        0x4EA1,
		Schedule:    schedule(),
		Cycles:      240,
		EpochCycles: 80,
	}
	base, err := heal.Run(cfg)
	if err != nil {
		fatal(fmt.Errorf("smoke baseline: %w", err))
	}
	cfg.Heal = true
	cfg.Obs, cfg.Trace = reg, rec
	healed, err := heal.Run(cfg)
	if err != nil {
		fatal(fmt.Errorf("smoke healed: %w", err))
	}
	fmt.Printf("smoke MTBF unhealed %.1f (%d failures) -> healed %.1f (%d failures)\n",
		base.MTBF, base.Failures, healed.MTBF, healed.Failures)
	if base.Failures == 0 {
		fatal(fmt.Errorf("smoke: baseline never failed; schedule is not biting"))
	}
	if healed.MTBF < 2*base.MTBF {
		fatal(fmt.Errorf("smoke: healed MTBF %.1f < 2x unhealed %.1f", healed.MTBF, base.MTBF))
	}
	sch := schedule()
	if healed.Overflow == nil || healed.Overflow.Culprit != sch.OverflowSite {
		fatal(fmt.Errorf("smoke: overflow culprit %+v, want site %d", healed.Overflow, sch.OverflowSite))
	}
	if healed.Dangling == nil || healed.Dangling.Culprit != sch.DanglingSite {
		fatal(fmt.Errorf("smoke: dangling culprit %+v, want site %d", healed.Dangling, sch.DanglingSite))
	}
	if healed.RestartsOnsetToMitigation != 0 {
		fatal(fmt.Errorf("smoke: %d restarts between onset and mitigation; countermeasures must be live",
			healed.RestartsOnsetToMitigation))
	}
	if reg != nil {
		for _, m := range []string{"detect.canary_audits", "heal.evidence_windows", "heal.cycle_ns"} {
			if v, ok := reg.Get(m); !ok || v == 0 {
				fatal(fmt.Errorf("smoke obs: metric %s missing or zero (v=%v ok=%v)", m, v, ok))
			}
		}
		evs := rec.Snapshot()
		if len(evs) == 0 {
			fatal(fmt.Errorf("smoke obs: flight recorder captured nothing"))
		}
		seen := map[string]bool{}
		for i, e := range evs {
			if i > 0 && evs[i-1].Seq >= e.Seq {
				fatal(fmt.Errorf("smoke obs: trace out of order at %d", i))
			}
			seen[e.Kind] = true
		}
		for _, k := range []string{"evidence", "barrier", "countermeasure"} {
			if !seen[k] {
				fatal(fmt.Errorf("smoke obs: no %q events in the supervisor trace", k))
			}
		}
		dumpObs(reg, rec)
	}
	fmt.Println("heal smoke passed")
}

func readFile(path string) (File, error) {
	f := File{Runs: map[string]Run{}}
	raw, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		return f, err
	}
	return f, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "heal: %v\n", err)
	os.Exit(1)
}
