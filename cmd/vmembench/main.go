// Command vmembench records the repository's memory-system performance
// baseline: raw load/store latency through vmem.Space, bulk throughput,
// and the DieHard malloc/free steady state that BenchmarkMallocProbes
// measures. Results are merged into a JSON file keyed by label, so the
// file accumulates the perf trajectory across implementations:
//
//	go run ./cmd/vmembench -label radix -out BENCH_vmem.json
//
// The Makefile target `make bench-baseline` does exactly that.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"diehard/internal/core"
	"diehard/internal/detect"
	"diehard/internal/exps"
	"diehard/internal/heap"
	"diehard/internal/obs"
	"diehard/internal/replicate"
	"diehard/internal/rng"
	"diehard/internal/vmem"
)

// Run is one labeled measurement set. CPUs records the host parallelism
// the concurrent numbers were measured under — a w8 result on a 1-CPU
// host measures overhead, not scaling.
type Run struct {
	Date    string             `json:"date"`
	Go      string             `json:"go"`
	CPUs    int                `json:"cpus,omitempty"`
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// File is the on-disk schema of BENCH_vmem.json.
type File struct {
	PageSize int            `json:"pagesize"`
	Runs     map[string]Run `json:"runs"`
}

func bench(f func(b *testing.B)) float64 {
	r := testing.Benchmark(f)
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

// benchWorkers measures aggregate throughput: `workers` goroutines each
// run fn(worker) ops times; the result is wall nanoseconds per operation
// across all workers (lower = more total throughput). With more workers
// than cores this degenerates to time-sliced overhead measurement, which
// is why the recorded Run carries the CPU count.
func benchWorkers(workers, ops int, fn func(worker, i int) error) (float64, error) {
	var wg sync.WaitGroup
	errs := make([]error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				if err := fn(w, i); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	return float64(wall.Nanoseconds()) / float64(workers*ops), nil
}

func main() {
	var (
		label = flag.String("label", "current", "label for this measurement set")
		out   = flag.String("out", "BENCH_vmem.json", "output file (merged in place)")
		force = flag.Bool("force", false, "allow a 1-CPU rerun to overwrite an entry recorded on a multicore host")
		smoke = flag.Bool("smoke", false, "run only the malloc-pair pair (locked baseline vs lock-free w1), assert the lock-free engine is within 15% of the locked one, and exit without writing the baseline file")
	)
	flag.Parse()

	if *smoke {
		runSmoke()
		return
	}

	// Read the baseline once: the provenance guard decides from it and
	// the final merge writes into it, so both see the same contents.
	file, err := readFile(*out)
	if err != nil && !os.IsNotExist(err) {
		fatal(fmt.Errorf("%s: %w", *out, err))
	}

	// Provenance guard: the concurrent and pipeline numbers only mean
	// something on the host class they were recorded on. A 1-CPU rerun
	// silently replacing a multicore recording would erase the scaling
	// curves the ROADMAP asks to capture, so it requires -force.
	if run, ok := file.Runs[*label]; ok && run.CPUs > 1 && runtime.NumCPU() == 1 && !*force {
		fatal(fmt.Errorf("label %q in %s was recorded with %d CPUs; rerunning on 1 CPU would overwrite the multicore scaling numbers (pass -force to do it anyway)",
			*label, *out, run.CPUs))
	}

	results := map[string]float64{}

	// Raw word access, one page per access: the pattern of a randomized
	// allocator, where translation cost cannot hide behind page locality.
	{
		s := vmem.NewSpace()
		base, err := s.Map(1024*vmem.PageSize, vmem.ProtRW)
		if err != nil {
			fatal(err)
		}
		for p := uint64(0); p < 1024; p++ {
			if err := s.Store64(base+p*vmem.PageSize, p); err != nil {
				fatal(err)
			}
		}
		results["raw_load64_strided"] = bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = s.Load64(base + uint64(i%1024)*vmem.PageSize + uint64(i%512)*8)
			}
		})
		results["raw_store64_strided"] = bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = s.Store64(base+uint64(i%1024)*vmem.PageSize+uint64(i%512)*8, uint64(i))
			}
		})
		results["raw_store64_sequential"] = bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = s.Store64(base+uint64(i%(1<<19)), uint64(i))
			}
		})
		buf := make([]byte, vmem.PageSize)
		results["read_bytes_page"] = bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = s.ReadBytes(base+uint64(i%1023)*vmem.PageSize+128, buf)
			}
		})
	}

	// DieHard steady-state free/malloc pair at the 1/M threshold: the
	// repository-level BenchmarkMallocProbes, reproduced here so the
	// baseline file captures it without the testing harness. Since the
	// lock-free engine landed, this entry pins Options.LockedHeap so the
	// series keeps measuring the same per-class-mutex reference path it
	// always has; lockfree_malloc_pair_w1 is the CAS engine's number on
	// the identical workload.
	results["malloc_free_pair_64B"] = benchMallocPairLocked()

	// Lock-free malloc/free pairs at the 1/M threshold, w workers
	// hammering the same size class of one heap: w1 against
	// malloc_free_pair_64B is the price of CAS over an uncontended
	// mutex (the acceptance bound is +15%); w4/w8 measure the contended
	// path, which the per-class mutex serialized before. The series is
	// kept as the no-magazine reference the magazine numbers are
	// differenced against.
	for _, w := range []int{1, 4, 8} {
		ns, err := benchMallocPairLockFree(w)
		if err != nil {
			fatal(err)
		}
		results[fmt.Sprintf("lockfree_malloc_pair_w%d", w)] = ns
	}

	// The same threshold workload through per-worker magazines
	// (DESIGN.md §11): fast-path malloc pops a pre-claimed slot and free
	// buffers locally, so the shared atomics are touched once per batch
	// instead of once per operation. w1 against lockfree_malloc_pair_w1
	// is the batching dividend uncontended (the -smoke gate holds it to
	// +10% in the worst case); w4/w8 measure the contended win.
	for _, w := range []int{1, 4, 8} {
		ns, err := benchMallocPairMagazine(w)
		if err != nil {
			fatal(err)
		}
		results[fmt.Sprintf("magazine_malloc_pair_w%d", w)] = ns
	}

	// Flight-recorder overhead (internal/obs): the magazine threshold
	// workload with the trace ring detached (off — the disabled path is
	// one nil-check branch per instrumented site, gated against the
	// plain magazine number by -smoke) and attached (on — two atomic
	// adds plus three plain stores per event, the full tracing price).
	for _, on := range []bool{false, true} {
		ns, err := benchMallocPairObs(on)
		if err != nil {
			fatal(err)
		}
		name := "obs_malloc_pair_off"
		if on {
			name = "obs_malloc_pair_on"
		}
		results[name] = ns
	}

	// Cross-worker free churn, synchronous vs remote-free rings
	// (DESIGN.md §12): a ring of workers each allocating batches
	// through its magazine and freeing the previous worker's batch —
	// every free is foreign, the worst case for owner-bitmap CAS
	// traffic. The sync series CAS-clears the owner's bitmap from the
	// freeing worker; the remote series enqueues on the owner's ring
	// and lets the owner batch the clears at its next drain. Both are
	// measured in the same process run so the ratio is host-honest;
	// the -smoke gate holds remote w4 at-or-under sync w4.
	for _, w := range []int{1, 4, 8} {
		for _, remote := range []bool{false, true} {
			ns, err := benchCrossFreePair(w, remote)
			if err != nil {
				fatal(err)
			}
			name := fmt.Sprintf("syncfree_pair_w%d", w)
			if remote {
				name = fmt.Sprintf("remotefree_pair_w%d", w)
			}
			results[name] = ns
		}
	}

	// Canary-detection overhead (internal/detect): the same steady-state
	// free/malloc churn on a detection heap — every free audits 16 slack
	// bytes and re-arms 64 canary bytes, every reuse audits the slot —
	// plus the cost of a heap-check barrier over the populated heap.
	// Compare detect_overhead_malloc_pair_48B against malloc_free_pair_64B
	// for the detection tax on the allocator hot path.
	{
		dh, err := detect.New(core.Options{HeapSize: 48 << 20, Seed: 1}, detect.Options{})
		if err != nil {
			fatal(err)
		}
		_, maxInUse := dh.ClassSlots(core.ClassFor(48))
		ptrs := make([]heap.Ptr, maxInUse)
		for i := range ptrs {
			p, err := dh.Malloc(48) // class 64: 16 bytes of audited slack
			if err != nil {
				fatal(err)
			}
			ptrs[i] = p
		}
		r := rng.NewSeeded(2)
		results["detect_overhead_malloc_pair_48B"] = bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				j := r.Intn(len(ptrs))
				_ = dh.Free(ptrs[j])
				p, err := dh.Malloc(48)
				if err != nil {
					b.Fatal(err)
				}
				ptrs[j] = p
			}
		})
		results["detect_overhead_heapcheck"] = bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if n := dh.Detector().HeapCheck(); n != 0 {
					b.Fatalf("bench heap reported %d violations", n)
				}
			}
		})
	}

	// Generation-tag overhead (DESIGN.md §15): the same steady-state
	// churn through the fat-pointer API on a GenTags detection heap —
	// every free CASes the slot's generation odd→even before the bitmap
	// clear, every malloc bumps it even→odd after the claim, on top of
	// the full canary audit work above. Compare
	// gentag_overhead_malloc_pair_48B against
	// detect_overhead_malloc_pair_48B for the temporal-safety tax over
	// the canary tier alone.
	{
		ns, err := benchDetectPair(true)
		if err != nil {
			fatal(err)
		}
		results["gentag_overhead_malloc_pair_48B"] = ns
	}

	// Concurrent load/store throughput through one shared space: the
	// lock-free radix path under StatsShared accounting, workers on
	// disjoint page ranges.
	for _, w := range []int{1, 4, 8} {
		s := vmem.NewSpace()
		s.SetStatsMode(vmem.StatsShared)
		const pagesPerWorker = 256
		base, err := s.Map(8*pagesPerWorker*vmem.PageSize, vmem.ProtRW)
		if err != nil {
			fatal(err)
		}
		for p := uint64(0); p < 8*pagesPerWorker; p++ {
			if err := s.Store64(base+p*vmem.PageSize, p); err != nil {
				fatal(err)
			}
		}
		const ops = 400_000
		ns, err := benchWorkers(w, ops, func(worker, i int) error {
			addr := base + uint64(worker*pagesPerWorker+i%pagesPerWorker)*vmem.PageSize + uint64(i%500)*8
			_, err := s.Load64(addr)
			return err
		})
		if err != nil {
			fatal(err)
		}
		results[fmt.Sprintf("conc_load64_w%d", w)] = ns
		ns, err = benchWorkers(w, ops, func(worker, i int) error {
			addr := base + uint64(worker*pagesPerWorker+i%pagesPerWorker)*vmem.PageSize + uint64(i%500)*8
			return s.Store64(addr, uint64(i))
		})
		if err != nil {
			fatal(err)
		}
		results[fmt.Sprintf("conc_store64_w%d", w)] = ns
	}

	// Sharded malloc/free throughput: one pinned DieHard shard per
	// worker over a shared space (the Hoard-style front end), and the
	// same workload routed through the occupancy-aware stealing front
	// door (sharded_steal_pair: every malloc reads the per-shard
	// occupancy estimates and lands on the emptiest shard, every free
	// routes to the owner).
	for _, w := range []int{1, 4, 8} {
		for _, routed := range []bool{false, true} {
			sh, err := core.NewSharded(w, core.Options{HeapSize: w * 12 << 20, Seed: 3})
			if err != nil {
				fatal(err)
			}
			const slotsPerWorker = 1024
			ptrs := make([][]heap.Ptr, w)
			for i := range ptrs {
				ptrs[i] = make([]heap.Ptr, slotsPerWorker)
			}
			const ops = 100_000
			ns, err := benchWorkers(w, ops, func(worker, i int) error {
				var alloc heap.Allocator = sh
				if !routed {
					alloc = sh.Shard(worker)
				}
				slot := i % slotsPerWorker
				if p := ptrs[worker][slot]; p != heap.Null {
					if err := alloc.Free(p); err != nil {
						return err
					}
				}
				p, err := alloc.Malloc(64)
				if err != nil {
					return err
				}
				ptrs[worker][slot] = p
				return nil
			})
			if err != nil {
				fatal(err)
			}
			name := fmt.Sprintf("sharded_malloc_pair_64B_w%d", w)
			if routed {
				name = fmt.Sprintf("sharded_steal_pair_64B_w%d", w)
			}
			results[name] = ns
		}
	}

	// Replica voting, sequential barrier voter vs pipelined
	// hash-then-vote (DESIGN.md §8): one deterministic program doing
	// real heap work per 4 KB voting buffer, run at k=2/4/8 replicas
	// under both engines. Recorded as total run nanoseconds; the
	// committed output is byte-identical between engines by
	// construction (internal/replicate TestPipelinedMatchesSequential).
	{
		const rounds = 32
		prog := func(ctx *replicate.Context) error {
			line := make([]byte, replicate.DefaultBufferSize)
			for r := 0; r < rounds; r++ {
				p, err := ctx.Alloc.Malloc(replicate.DefaultBufferSize)
				if err != nil {
					return err
				}
				if err := ctx.Mem.Memset(p, byte(r), replicate.DefaultBufferSize); err != nil {
					return err
				}
				if err := ctx.Mem.ReadBytes(p, line); err != nil {
					return err
				}
				if err := ctx.Alloc.Free(p); err != nil {
					return err
				}
				if _, err := ctx.Out.Write(line); err != nil {
					return err
				}
			}
			return nil
		}
		for _, k := range []int{2, 4, 8} {
			for _, eng := range []struct {
				name  string
				voter replicate.VoterMode
			}{
				{"seq", replicate.VoterSequential},
				{"pipe", replicate.VoterPipelined},
			} {
				start := time.Now()
				res, err := replicate.Run(prog, nil, replicate.Options{
					Replicas: k, HeapSize: 16 << 20, Seed: 0xd1e, Voter: eng.voter,
				})
				if err != nil {
					fatal(err)
				}
				if res.Survivors != k || !res.Agreed {
					fatal(fmt.Errorf("replicated bench k=%d %s: %d survivors, agreed=%v",
						k, eng.name, res.Survivors, res.Agreed))
				}
				results[fmt.Sprintf("replicated_pipeline_%s_k%d", eng.name, k)] =
					float64(time.Since(start).Nanoseconds())
			}
		}
	}

	// The Figure-6-style error-table campaign, sequential vs fanned out:
	// the acceptance metric for the parallel experiment engine. Recorded
	// as total campaign nanoseconds; the outputs are byte-identical by
	// construction (see internal/exps TestErrorTableParallelDeterminism).
	for _, w := range []int{1, 8} {
		start := time.Now()
		if _, err := exps.RunErrorTable(w); err != nil {
			fatal(err)
		}
		results[fmt.Sprintf("errortable_campaign_w%d", w)] = float64(time.Since(start).Nanoseconds())
	}

	if file.Runs == nil {
		file.Runs = map[string]Run{}
	}
	file.PageSize = vmem.PageSize
	file.Runs[*label] = Run{
		Date:    time.Now().UTC().Format("2006-01-02"),
		Go:      runtime.Version(),
		CPUs:    runtime.NumCPU(),
		NsPerOp: results,
	}
	enc, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fatal(err)
	}
	for name, ns := range results {
		fmt.Printf("%-24s %8.2f ns/op\n", name, ns)
	}
	fmt.Printf("recorded as %q in %s\n", *label, *out)
}

// benchMallocPairLocked measures the steady-state free/malloc pair at
// the 1/M threshold on the per-class-mutex reference engine
// (core.Options.LockedHeap) — the series BENCH_vmem.json has carried
// since the radix rewrite, and the baseline the lock-free engine is
// graded against.
func benchMallocPairLocked() float64 {
	h, err := core.New(core.Options{HeapSize: 48 << 20, Seed: 1, LockedHeap: true})
	if err != nil {
		fatal(err)
	}
	_, maxInUse := h.ClassSlots(core.ClassFor(64))
	ptrs := make([]heap.Ptr, maxInUse)
	for i := range ptrs {
		p, err := h.Malloc(64)
		if err != nil {
			fatal(err)
		}
		ptrs[i] = p
	}
	r := rng.NewSeeded(2)
	return bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j := r.Intn(len(ptrs))
			_ = h.Free(ptrs[j])
			p, err := h.Malloc(64)
			if err != nil {
				b.Fatal(err)
			}
			ptrs[j] = p
		}
	})
}

// benchMallocPairLockFree is the identical threshold workload on the
// default lock-free CAS engine, fanned across `workers` goroutines
// hammering the same size class: the region is pre-filled to its 1/M
// threshold, partitioned across workers, and each operation frees one
// slot and CAS-claims a replacement.
func benchMallocPairLockFree(workers int) (float64, error) {
	h, err := core.New(core.Options{HeapSize: 48 << 20, Seed: 1, Concurrent: workers > 1})
	if err != nil {
		return 0, err
	}
	_, maxInUse := h.ClassSlots(core.ClassFor(64))
	per := maxInUse / workers
	ptrs := make([][]heap.Ptr, workers)
	for w := range ptrs {
		ptrs[w] = make([]heap.Ptr, per)
		for i := range ptrs[w] {
			p, err := h.Malloc(64)
			if err != nil {
				return 0, err
			}
			ptrs[w][i] = p
		}
	}
	// Top up to the exact threshold so the probe fullness matches the
	// locked baseline's workload.
	for i := workers * per; i < maxInUse; i++ {
		if _, err := h.Malloc(64); err != nil {
			return 0, err
		}
	}
	seeds := make([]*rng.MWC, workers)
	for w := range seeds {
		seeds[w] = rng.NewSeeded(uint64(w) + 2)
	}
	const ops = 200_000
	return benchWorkers(workers, ops, func(worker, i int) error {
		mine := ptrs[worker]
		j := seeds[worker].Intn(len(mine))
		if err := h.Free(mine[j]); err != nil {
			return err
		}
		p, err := h.Malloc(64)
		if err != nil {
			return err
		}
		mine[j] = p
		return nil
	})
}

// benchMallocPairMagazine is the threshold workload served through
// per-worker magazines over one lock-free heap: each worker owns a
// magazine, frees one of its slots, and mallocs a replacement, so the
// steady state exercises the batched refill/flush protocol at the same
// fullness as the unbatched series. The prefill leaves one batch of
// headroom per worker below the 1/M threshold: a magazine may hold up
// to MagazineMaxCap pre-claimed slots plus MagazineMaxCap buffered
// frees of apparent occupancy beyond its live objects, and a refill at
// the exact threshold would spuriously fail.
func benchMallocPairMagazine(workers int) (float64, error) {
	h, err := core.New(core.Options{HeapSize: 48 << 20, Seed: 1, Concurrent: workers > 1})
	if err != nil {
		return 0, err
	}
	_, maxInUse := h.ClassSlots(core.ClassFor(64))
	per := (maxInUse - workers*2*core.MagazineMaxCap) / workers
	mags := make([]*core.Magazine, workers)
	ptrs := make([][]heap.Ptr, workers)
	for w := range mags {
		if mags[w], err = h.NewMagazine(); err != nil {
			return 0, err
		}
		ptrs[w] = make([]heap.Ptr, per)
		for i := range ptrs[w] {
			p, err := mags[w].Malloc(64)
			if err != nil {
				return 0, err
			}
			ptrs[w][i] = p
		}
	}
	seeds := make([]*rng.MWC, workers)
	for w := range seeds {
		seeds[w] = rng.NewSeeded(uint64(w) + 2)
	}
	const ops = 200_000
	return benchWorkers(workers, ops, func(worker, i int) error {
		mine := ptrs[worker]
		j := seeds[worker].Intn(len(mine))
		if err := mags[worker].Free(mine[j]); err != nil {
			return err
		}
		p, err := mags[worker].Malloc(64)
		if err != nil {
			return err
		}
		mine[j] = p
		return nil
	})
}

// benchMallocPairObs is benchMallocPairMagazine's single-worker
// workload with the flight recorder wired: enabled=false sets a nil
// ring on both the heap and the magazine — the zero-value disabled
// recorder, whose entire hot-path cost is one predictable branch per
// instrumented site — and enabled=true attaches a real 4096-slot ring,
// so the pair prices the seqlock emit protocol itself. Same heap
// geometry, seed, and op count as the magazine series, so the three
// numbers difference cleanly.
func benchMallocPairObs(enabled bool) (float64, error) {
	var ring *obs.Ring
	if enabled {
		ring = obs.NewRecorder(4096).Ring(0)
	}
	h, err := core.New(core.Options{HeapSize: 48 << 20, Seed: 1, Trace: ring})
	if err != nil {
		return 0, err
	}
	_, maxInUse := h.ClassSlots(core.ClassFor(64))
	per := maxInUse - 2*core.MagazineMaxCap
	mag, err := h.NewMagazine()
	if err != nil {
		return 0, err
	}
	mag.SetTrace(ring)
	ptrs := make([]heap.Ptr, per)
	for i := range ptrs {
		if ptrs[i], err = mag.Malloc(64); err != nil {
			return 0, err
		}
	}
	r := rng.NewSeeded(2)
	const ops = 200_000
	return benchWorkers(1, ops, func(_, i int) error {
		j := r.Intn(len(ptrs))
		if err := mag.Free(ptrs[j]); err != nil {
			return err
		}
		p, err := mag.Malloc(64)
		if err != nil {
			return err
		}
		ptrs[j] = p
		return nil
	})
}

// benchCrossFreePair measures the cross-worker free protocol: workers
// form a ring over one sharded heap with remote-free rings enabled;
// each round a worker allocates a batch of 64 B objects through its
// magazine, hands the batch to the next worker, and frees the batch it
// receives from the previous one — through ShardedHeap.Free (the
// freeing worker CAS-clears the owner shard's bitmap) or
// ShardedHeap.RemoteFree (one ring enqueue; the owner batches the
// clears at its next drain). The reported number is wall nanoseconds
// per malloc+free pair across all workers. The heap is identical
// between the two series, so within one process run the sync/remote
// ratio isolates the free-protocol cost.
func benchCrossFreePair(workers int, remote bool) (float64, error) {
	sh, err := core.NewSharded(workers, core.Options{
		HeapSize: workers * 12 << 20, Seed: 7, Concurrent: true, RemoteRing: true,
	})
	if err != nil {
		return 0, err
	}
	const (
		batch  = 64
		rounds = 2000
	)
	chans := make([]chan []heap.Ptr, workers)
	for i := range chans {
		chans[i] = make(chan []heap.Ptr, 2)
	}
	mags := make([]*core.Magazine, workers)
	for w := range mags {
		if mags[w], err = sh.NewMagazine(); err != nil {
			return 0, err
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				ptrs := make([]heap.Ptr, batch)
				for i := range ptrs {
					p, err := mags[w].Malloc(64)
					if err != nil {
						errs[w] = err
						return
					}
					ptrs[i] = p
				}
				chans[(w+1)%workers] <- ptrs
				for _, p := range <-chans[w] {
					var err error
					if remote {
						err = sh.RemoteFree(p)
					} else {
						err = sh.Free(p)
					}
					if err != nil {
						errs[w] = err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, err
		}
	}
	for _, m := range mags {
		m.Close()
	}
	if err := sh.CheckInvariants(); err != nil {
		return 0, fmt.Errorf("cross-free bench (remote=%v, w=%d): %w", remote, workers, err)
	}
	return float64(wall.Nanoseconds()) / float64(workers*rounds*batch), nil
}

// benchDetectPair measures the steady-state free/malloc pair on a
// detection heap filled to the class-64 threshold with 48 B requests
// (16 bytes of audited slack per free). gen=false is the canary tier:
// thin pointers through Free/Malloc, slack audit plus canary re-arm per
// free, audit-on-reuse per malloc. gen=true runs the identical churn on
// a GenTags heap through the fat-pointer API, so each pair additionally
// pays the generation CAS on free, the tag bump on claim, and the
// side-array read that validates the fat pointer. Same geometry, seed,
// and request size, so the two numbers difference into the
// temporal-safety tax.
func benchDetectPair(gen bool) (float64, error) {
	dh, err := detect.New(core.Options{HeapSize: 48 << 20, Seed: 1, GenTags: gen}, detect.Options{})
	if err != nil {
		return 0, err
	}
	_, maxInUse := dh.ClassSlots(core.ClassFor(48))
	r := rng.NewSeeded(2)
	if gen {
		fps := make([]heap.FatPtr, maxInUse)
		for i := range fps {
			fp, err := dh.MallocFat(48)
			if err != nil {
				return 0, err
			}
			fps[i] = fp
		}
		return bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				j := r.Intn(len(fps))
				ok, err := dh.FreeFat(fps[j])
				if err != nil {
					b.Fatal(err)
				}
				if !ok {
					b.Fatal("live fat pointer rejected")
				}
				fp, err := dh.MallocFat(48)
				if err != nil {
					b.Fatal(err)
				}
				fps[j] = fp
			}
		}), nil
	}
	ptrs := make([]heap.Ptr, maxInUse)
	for i := range ptrs {
		p, err := dh.Malloc(48)
		if err != nil {
			return 0, err
		}
		ptrs[i] = p
	}
	return bench(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			j := r.Intn(len(ptrs))
			_ = dh.Free(ptrs[j])
			p, err := dh.Malloc(48)
			if err != nil {
				b.Fatal(err)
			}
			ptrs[j] = p
		}
	}), nil
}

// runSmoke is the CI perf gate: the lock-free engine's single-worker
// malloc pair must stay within 15% of the locked reference engine, and
// the magazine front end within 10% of the raw lock-free path, on the
// identical workload. It writes nothing, so the provenance guard on
// BENCH_vmem.json (multicore entries vs 1-CPU reruns) is never at risk
// from CI hosts.
func runSmoke() {
	locked := benchMallocPairLocked()
	lockfree, err := benchMallocPairLockFree(1)
	if err != nil {
		fatal(err)
	}
	magazine, err := benchMallocPairMagazine(1)
	if err != nil {
		fatal(err)
	}
	ratio := lockfree / locked
	magRatio := magazine / lockfree
	fmt.Printf("malloc_free_pair_64B (locked)   %8.2f ns/op\n", locked)
	fmt.Printf("lockfree_malloc_pair_w1         %8.2f ns/op\n", lockfree)
	fmt.Printf("magazine_malloc_pair_w1         %8.2f ns/op\n", magazine)
	fmt.Printf("ratio lockfree/locked           %8.3f (bound 1.15)\n", ratio)
	fmt.Printf("ratio magazine/lockfree         %8.3f (bound 1.10)\n", magRatio)
	if ratio > 1.15 {
		fatal(fmt.Errorf("lock-free malloc fast path is %.1f%% slower than the locked baseline (bound: 15%%)", (ratio-1)*100))
	}
	if magRatio > 1.10 {
		fatal(fmt.Errorf("magazine malloc fast path is %.1f%% slower than the raw lock-free path (bound: 10%%)", (magRatio-1)*100))
	}
	// Remote-free rings must not lose to synchronous cross-worker frees
	// on the contended 4-worker churn, measured back-to-back in this
	// same process so the comparison is host-honest. Best-of-3 damps
	// scheduler noise on loaded CI runners; the bound allows 5% to keep
	// a 1-CPU host (where contention wins shrink to batching wins) from
	// flaking the gate.
	best := func(remote bool) float64 {
		bestNs := math.Inf(1)
		for i := 0; i < 3; i++ {
			ns, err := benchCrossFreePair(4, remote)
			if err != nil {
				fatal(err)
			}
			if ns < bestNs {
				bestNs = ns
			}
		}
		return bestNs
	}
	syncNs := best(false)
	remoteNs := best(true)
	crossRatio := remoteNs / syncNs
	fmt.Printf("syncfree_pair_w4                %8.2f ns/op\n", syncNs)
	fmt.Printf("remotefree_pair_w4              %8.2f ns/op\n", remoteNs)
	fmt.Printf("ratio remote/sync cross-free    %8.3f (bound 1.05)\n", crossRatio)
	if crossRatio > 1.05 {
		fatal(fmt.Errorf("remote-free cross-worker churn is %.1f%% slower than synchronous frees (bound: 5%%)", (crossRatio-1)*100))
	}
	// The telemetry plane must be free when disabled: the magazine hot
	// path with a nil trace ring — every instrumented site reduced to
	// one predictable branch — must stay within 2% of the plain
	// magazine number. Best-of-5 back to back in this process; on a
	// ~20 ns op the bound is sub-nanosecond, so only a real hot-path
	// regression (an allocation, a call, an atomic) can trip it.
	bestOf := func(n int, f func() (float64, error)) float64 {
		bestNs := math.Inf(1)
		for i := 0; i < n; i++ {
			ns, err := f()
			if err != nil {
				fatal(err)
			}
			if ns < bestNs {
				bestNs = ns
			}
		}
		return bestNs
	}
	magBest := bestOf(5, func() (float64, error) { return benchMallocPairMagazine(1) })
	obsOff := bestOf(5, func() (float64, error) { return benchMallocPairObs(false) })
	obsOn := bestOf(3, func() (float64, error) { return benchMallocPairObs(true) })
	obsRatio := obsOff / magBest
	fmt.Printf("obs_malloc_pair_off             %8.2f ns/op\n", obsOff)
	fmt.Printf("obs_malloc_pair_on              %8.2f ns/op\n", obsOn)
	fmt.Printf("ratio obs-off/magazine          %8.3f (bound 1.02)\n", obsRatio)
	if obsRatio > 1.02 {
		fatal(fmt.Errorf("disabled flight recorder costs %.1f%% on the magazine hot path (bound: 2%%)", (obsRatio-1)*100))
	}
	// Generation-tag tax, informational only (DESIGN.md §15): the
	// gen-checked fat-pointer pair against the canary-checked pair on
	// the identical 48 B threshold churn. Printed so CI logs track the
	// trend; deliberately ungated — the deterministic temporal tier is
	// priced, not bounded, and nothing is written.
	canaryNs := bestOf(3, func() (float64, error) { return benchDetectPair(false) })
	genNs := bestOf(3, func() (float64, error) { return benchDetectPair(true) })
	fmt.Printf("detect_overhead_malloc_pair_48B %8.2f ns/op\n", canaryNs)
	fmt.Printf("gentag_overhead_malloc_pair_48B %8.2f ns/op\n", genNs)
	fmt.Printf("ratio gen-checked/canary-checked %7.3f (informational, no bound)\n", genNs/canaryNs)
}

// readFile loads an existing baseline file; a missing file returns the
// os.IsNotExist error and an empty File.
func readFile(path string) (File, error) {
	f := File{PageSize: vmem.PageSize, Runs: map[string]Run{}}
	raw, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		return f, err
	}
	return f, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "vmembench: %v\n", err)
	os.Exit(1)
}
