// Command vmembench records the repository's memory-system performance
// baseline: raw load/store latency through vmem.Space, bulk throughput,
// and the DieHard malloc/free steady state that BenchmarkMallocProbes
// measures. Results are merged into a JSON file keyed by label, so the
// file accumulates the perf trajectory across implementations:
//
//	go run ./cmd/vmembench -label radix -out BENCH_vmem.json
//
// The Makefile target `make bench-baseline` does exactly that.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"diehard/internal/core"
	"diehard/internal/heap"
	"diehard/internal/rng"
	"diehard/internal/vmem"
)

// Run is one labeled measurement set.
type Run struct {
	Date    string             `json:"date"`
	Go      string             `json:"go"`
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// File is the on-disk schema of BENCH_vmem.json.
type File struct {
	PageSize int            `json:"pagesize"`
	Runs     map[string]Run `json:"runs"`
}

func bench(f func(b *testing.B)) float64 {
	r := testing.Benchmark(f)
	return float64(r.T.Nanoseconds()) / float64(r.N)
}

func main() {
	var (
		label = flag.String("label", "current", "label for this measurement set")
		out   = flag.String("out", "BENCH_vmem.json", "output file (merged in place)")
	)
	flag.Parse()

	results := map[string]float64{}

	// Raw word access, one page per access: the pattern of a randomized
	// allocator, where translation cost cannot hide behind page locality.
	{
		s := vmem.NewSpace()
		base, err := s.Map(1024*vmem.PageSize, vmem.ProtRW)
		if err != nil {
			fatal(err)
		}
		for p := uint64(0); p < 1024; p++ {
			if err := s.Store64(base+p*vmem.PageSize, p); err != nil {
				fatal(err)
			}
		}
		results["raw_load64_strided"] = bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _ = s.Load64(base + uint64(i%1024)*vmem.PageSize + uint64(i%512)*8)
			}
		})
		results["raw_store64_strided"] = bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = s.Store64(base+uint64(i%1024)*vmem.PageSize+uint64(i%512)*8, uint64(i))
			}
		})
		results["raw_store64_sequential"] = bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = s.Store64(base+uint64(i%(1<<19)), uint64(i))
			}
		})
		buf := make([]byte, vmem.PageSize)
		results["read_bytes_page"] = bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = s.ReadBytes(base+uint64(i%1023)*vmem.PageSize+128, buf)
			}
		})
	}

	// DieHard steady-state free/malloc pair at the 1/M threshold: the
	// repository-level BenchmarkMallocProbes, reproduced here so the
	// baseline file captures it without the testing harness.
	{
		h, err := core.New(core.Options{HeapSize: 48 << 20, Seed: 1})
		if err != nil {
			fatal(err)
		}
		_, maxInUse := h.ClassSlots(core.ClassFor(64))
		ptrs := make([]heap.Ptr, maxInUse)
		for i := range ptrs {
			p, err := h.Malloc(64)
			if err != nil {
				fatal(err)
			}
			ptrs[i] = p
		}
		r := rng.NewSeeded(2)
		results["malloc_free_pair_64B"] = bench(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				j := r.Intn(len(ptrs))
				_ = h.Free(ptrs[j])
				p, err := h.Malloc(64)
				if err != nil {
					b.Fatal(err)
				}
				ptrs[j] = p
			}
		})
	}

	file := File{PageSize: vmem.PageSize, Runs: map[string]Run{}}
	if raw, err := os.ReadFile(*out); err == nil {
		if err := json.Unmarshal(raw, &file); err != nil {
			fatal(fmt.Errorf("%s: %w", *out, err))
		}
	}
	if file.Runs == nil {
		file.Runs = map[string]Run{}
	}
	file.PageSize = vmem.PageSize
	file.Runs[*label] = Run{
		Date:    time.Now().UTC().Format("2006-01-02"),
		Go:      runtime.Version(),
		NsPerOp: results,
	}
	enc, err := json.MarshalIndent(&file, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fatal(err)
	}
	for name, ns := range results {
		fmt.Printf("%-24s %8.2f ns/op\n", name, ns)
	}
	fmt.Printf("recorded as %q in %s\n", *label, *out)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "vmembench: %v\n", err)
	os.Exit(1)
}
