// Command diehard runs a benchmark application under the replicated
// DieHard runtime, mirroring the paper's `diehard <replicas> <app>`
// launcher (§5): input is broadcast to every replica, each replica gets
// an independently randomized heap, and output is committed only when
// replicas agree.
//
// Usage:
//
//	diehard -app espresso -replicas 3 [-scale 1] [-seed 0] [-heap 402653184]
//	diehard -list
package main

import (
	"flag"
	"fmt"
	"os"

	"diehard/internal/apps"
	"diehard/internal/replicate"
)

func main() {
	var (
		appName  = flag.String("app", "espresso", "benchmark application to run (see -list)")
		replicas = flag.Int("replicas", 3, "number of replicas (1 or >= 3)")
		scale    = flag.Int("scale", 1, "input scale factor")
		seed     = flag.Uint64("seed", 0, "master seed (0 = true random)")
		heapSize = flag.Int("heap", 0, "per-replica heap size in bytes (0 = paper default 384 MB)")
		list     = flag.Bool("list", false, "list available applications")
	)
	flag.Parse()

	if *list {
		for _, a := range apps.Registry() {
			fmt.Printf("%-14s %s\n", a.Name, a.Kind)
		}
		return
	}
	app, ok := apps.Get(*appName)
	if !ok {
		fmt.Fprintf(os.Stderr, "diehard: unknown app %q (use -list)\n", *appName)
		os.Exit(2)
	}
	input := app.Input(*scale)
	prog := func(ctx *replicate.Context) error {
		rt := &apps.Runtime{Alloc: ctx.Alloc, Mem: ctx.Mem, Input: ctx.Input, Out: ctx.Out}
		return app.Run(rt)
	}
	res, err := replicate.Run(prog, input, replicate.Options{
		Replicas: *replicas,
		HeapSize: *heapSize,
		Seed:     *seed,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "diehard: %v\n", err)
		os.Exit(1)
	}
	os.Stdout.Write(res.Output)
	fmt.Fprintf(os.Stderr, "diehard: replicas=%d survivors=%d agreed=%v rounds=%d\n",
		*replicas, res.Survivors, res.Agreed, res.Rounds)
	for i, r := range res.Replicas {
		status := "completed"
		switch {
		case r.Killed:
			status = "killed (disagreed)"
		case r.Err != nil:
			status = fmt.Sprintf("crashed: %v", r.Err)
		}
		fmt.Fprintf(os.Stderr, "  replica %d seed=%#x %s\n", i, r.Seed, status)
	}
	if res.UninitSuspected {
		fmt.Fprintln(os.Stderr, "diehard: uninitialized read detected: no two replicas agree; terminated")
		os.Exit(1)
	}
	if res.Survivors == 0 {
		os.Exit(1)
	}
}
