// Command errortable reproduces Table 1: how each runtime system
// handles each class of memory error. Every cell is measured by running
// an error scenario under the corresponding system and classifying the
// observed behaviour (correct, undefined, abort).
//
// Usage:
//
//	errortable
//	errortable -workers 8   # fan cells across 8 goroutines; same table
package main

import (
	"flag"
	"fmt"
	"os"

	"diehard/internal/exps"
)

func main() {
	workers := flag.Int("workers", 0, "campaign worker goroutines (0 = GOMAXPROCS); output is identical for any value")
	flag.Parse()
	table, err := exps.RunErrorTable(*workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "errortable: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("# Table 1: memory-safety error handling across systems (measured)")
	fmt.Printf("%-26s", "Error")
	for _, sys := range table.Systems {
		fmt.Printf(" %-18s", sys)
	}
	fmt.Println()
	for _, class := range table.Classes {
		fmt.Printf("%-26s", class)
		for _, sys := range table.Systems {
			cell := string(table.Cell[class][sys])
			if cell == "correct" {
				cell = "OK"
			}
			fmt.Printf(" %-18s", cell)
		}
		fmt.Println()
	}
	fmt.Println("\n# OK = correct execution; DieHard's overflow/dangling cells are")
	fmt.Println("# probabilistic majorities over seeds; its uninitialized-read cell")
	fmt.Println("# runs replicated, where detection terminates execution (abort).")
}
