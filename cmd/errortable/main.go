// Command errortable reproduces Table 1: how each runtime system
// handles each class of memory error. Every cell is measured by running
// an error scenario under the corresponding system and classifying the
// observed behaviour (correct, undefined, abort).
//
// Usage:
//
//	errortable
package main

import (
	"fmt"
	"os"

	"diehard/internal/exps"
)

func main() {
	table, err := exps.RunErrorTable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "errortable: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("# Table 1: memory-safety error handling across systems (measured)")
	fmt.Printf("%-26s", "Error")
	for _, sys := range table.Systems {
		fmt.Printf(" %-18s", sys)
	}
	fmt.Println()
	for _, class := range table.Classes {
		fmt.Printf("%-26s", class)
		for _, sys := range table.Systems {
			cell := string(table.Cell[class][sys])
			if cell == "correct" {
				cell = "OK"
			}
			fmt.Printf(" %-18s", cell)
		}
		fmt.Println()
	}
	fmt.Println("\n# OK = correct execution; DieHard's overflow/dangling cells are")
	fmt.Println("# probabilistic majorities over seeds; its uninitialized-read cell")
	fmt.Println("# runs replicated, where detection terminates execution (abort).")
}
