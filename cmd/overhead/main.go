// Command overhead reproduces Figure 5 (normalized runtime across the
// benchmark suites) and the §7.2.3 replicated-scaling measurement.
//
// Usage:
//
//	overhead -platform linux     # Figure 5(a): malloc vs GC vs DieHard
//	overhead -platform windows   # Figure 5(b): default heap vs DieHard
//	overhead -replicas 16 -app espresso   # §7.2.3 scaling
package main

import (
	"flag"
	"fmt"
	"os"

	"diehard/internal/apps"
	"diehard/internal/exps"
)

func main() {
	var (
		platform = flag.String("platform", "linux", "figure 5 platform: linux or windows")
		scale    = flag.Int("scale", 1, "input scale factor")
		seed     = flag.Uint64("seed", 0x5eed, "DieHard seed")
		replicas = flag.Int("replicas", 0, "run the replicated-scaling experiment at this count instead")
		appName  = flag.String("app", "espresso", "application for the scaling experiment")
		workers  = flag.Int("workers", 0, "campaign worker goroutines (0 = GOMAXPROCS for figure 5, 1 for scaling); cycle figures and voted outputs are identical for any value")
	)
	flag.Parse()

	if *replicas > 0 {
		// Sweep points fan out across -workers goroutines; the voted
		// outputs are identical for any worker count, but wall ratios
		// co-schedule, so wall measurements want -workers 1 (the
		// default here, unlike the Figure 5 grid).
		w := *workers
		if w == 0 {
			w = 1
		}
		points, err := exps.RunReplicatedScaling(*appName, []int{1, *replicas}, *scale, 0, *seed, w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "overhead: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("# §7.2.3 replicated scaling: %s (sweep workers=%d)\n", *appName, w)
		fmt.Println("# replicas wall survivors agreed relative-to-one output-hash")
		for _, p := range points {
			fmt.Printf("%-9d %-12v %-9d %-6v %-15s %#016x\n",
				p.Replicas, p.Wall.Round(1e6), p.Survivors, p.Agreed,
				fmt.Sprintf("%.2fx", p.RelativeToOne), p.OutputHash)
		}
		return
	}

	report, err := exps.RunOverhead(exps.Platform(*platform), *scale, 0, *seed, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "overhead: %v\n", err)
		os.Exit(1)
	}
	kinds := exps.Platform(*platform).Allocators()
	fmt.Printf("# Figure 5 (%s): normalized runtime (baseline = %s)\n", *platform, kinds[0])
	fmt.Printf("%-14s %-16s", "benchmark", "suite")
	for _, k := range kinds {
		fmt.Printf(" %10s", k)
	}
	fmt.Println()
	for _, row := range report.Rows {
		fmt.Printf("%-14s %-16s", row.Benchmark, row.Kind)
		for _, k := range kinds {
			fmt.Printf(" %10.3f", row.Normalized[k])
		}
		fmt.Println()
	}
	for _, suite := range []string{"alloc-intensive", "general-purpose"} {
		fmt.Printf("%-14s %-16s", "GEOMEAN", suite)
		for _, k := range kinds {
			fmt.Printf(" %10.3f", report.GeoMean[suite+"/"+k])
		}
		fmt.Println()
	}
	_ = apps.Registry
}
