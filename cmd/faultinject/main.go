// Command faultinject reproduces the §7.3 error-avoidance experiments:
// dangling-pointer and buffer-overflow injection into espresso
// (§7.3.1), and the Squid web-cache overflow ("Real Faults").
//
// Usage:
//
//	faultinject -error dangling   # 50% of objects freed 10 allocations early
//	faultinject -error overflow   # 1% of requests >= 32B under-allocated by 4
//	faultinject -error squid      # ill-formed input against the buggy cache
package main

import (
	"flag"
	"fmt"
	"os"

	"diehard/internal/exps"
)

func main() {
	var (
		kind    = flag.String("error", "dangling", "experiment: dangling, overflow, squid")
		trials  = flag.Int("trials", 10, "runs per allocator")
		app     = flag.String("app", "espresso", "target application for injection")
		scale   = flag.Int("scale", 3, "input scale factor")
		workers = flag.Int("workers", 0, "campaign worker goroutines (0 = GOMAXPROCS); results are identical for any value")
	)
	flag.Parse()

	switch *kind {
	case "dangling", "overflow":
		params := exps.InjectionParams{Kind: exps.InjectionKind(*kind)}
		fmt.Printf("# §7.3.1 %s injection into %s (%d trials)\n", *kind, *app, *trials)
		if *kind == "dangling" {
			fmt.Println("# frequency 50%, distance 10 (paper settings)")
		} else {
			fmt.Println("# rate 1%, requests >= 32 bytes under-allocated by 4 (paper settings)")
		}
		fmt.Println("# allocator correct crashed wrong-output hung injected")
		for _, alloc := range []string{exps.KindMalloc, exps.KindDieHard} {
			heapSize := 0
			if alloc == exps.KindMalloc {
				heapSize = 64 << 20
			}
			res, err := exps.RunFaultInjection(*app, alloc, params, *trials, *scale, heapSize, *workers)
			if err != nil {
				fmt.Fprintf(os.Stderr, "faultinject: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("%-10s %-7d %-7d %-12d %-5d %d\n",
				alloc, res.Correct, res.Crashed, res.WrongOutput, res.Hung, res.Injected)
		}
	case "squid":
		fmt.Printf("# §7.3 Real Faults: buggy web cache on ill-formed input (%d trials)\n", *trials)
		fmt.Println("# allocator survived crashed")
		results, err := exps.RunSquidExperiment(
			[]string{exps.KindMalloc, exps.KindGC, exps.KindDieHard}, *trials, 900, 24<<20, *workers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultinject: %v\n", err)
			os.Exit(1)
		}
		for _, r := range results {
			fmt.Printf("%-10s %-8d %d\n", r.Allocator, r.Survived, r.Crashed)
		}
	default:
		fmt.Fprintf(os.Stderr, "faultinject: unknown experiment %q\n", *kind)
		os.Exit(2)
	}
}
