module diehard

go 1.21
