package core

import (
	"sync"
	"testing"

	"diehard/internal/heap"
	"diehard/internal/obs"
	"diehard/internal/rng"
)

// TestObsTracePlacementUnchanged pins the flight recorder's zero-cost
// contract on the allocation protocol: tracing draws nothing from the
// placement RNG, so a traced heap and an untraced heap with the same
// seed produce byte-identical layouts.
func TestObsTracePlacementUnchanged(t *testing.T) {
	rec := obs.NewRecorder(1 << 12)
	traced := testHeap(t, Options{Seed: 0xD1FF, Trace: rec.Ring(7)})
	plain := testHeap(t, Options{Seed: 0xD1FF})
	buildWorkload(t, traced)
	buildWorkload(t, plain)
	sa, err := traced.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := plain.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if d := DiffSnapshots(sa, sb); len(d) != 0 {
		t.Fatalf("tracing perturbed placement: %v", d)
	}

	evs := rec.Snapshot()
	if len(evs) == 0 {
		t.Fatal("recorder captured nothing")
	}
	kinds := map[string]int{}
	for i, e := range evs {
		if e.Worker != 7 {
			t.Fatalf("event %d on worker %d, ring is 7", i, e.Worker)
		}
		if i > 0 && evs[i-1].Seq >= e.Seq {
			t.Fatalf("stamps not strictly increasing at %d", i)
		}
		kinds[e.Kind]++
	}
	st := traced.StatsSnapshot()
	if uint64(kinds["malloc"]) != st.Mallocs {
		t.Errorf("traced %d mallocs, stats say %d", kinds["malloc"], st.Mallocs)
	}
	if uint64(kinds["free"]) != st.Frees {
		t.Errorf("traced %d frees, stats say %d", kinds["free"], st.Frees)
	}
}

// TestObsTraceMagazineRemoteEvents drives the batched front ends with
// rings attached and asserts each protocol layer shows up in the merged
// timeline under its own event kind.
func TestObsTraceMagazineRemoteEvents(t *testing.T) {
	rec := obs.NewRecorder(1 << 12)
	sh, err := NewSharded(2, Options{HeapSize: 2 << 20, Seed: 41, RemoteRing: true})
	if err != nil {
		t.Fatal(err)
	}
	sh.AttachRecorder(rec, 100)
	mag, err := sh.NewMagazine()
	if err != nil {
		t.Fatal(err)
	}
	mag.SetTrace(rec.Ring(0))

	var ptrs []heap.Ptr
	for i := 0; i < 256; i++ {
		p, err := mag.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	for i, p := range ptrs {
		if i%2 == 0 {
			if err := sh.RemoteFree(p); err != nil {
				t.Fatal(err)
			}
		} else if err := mag.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	mag.Close()
	if err := sh.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	kinds := map[string]int{}
	for _, e := range rec.Snapshot() {
		kinds[e.Kind]++
	}
	for _, k := range []string{"malloc", "free", "refill", "flush", "remote_free", "drain", "barrier"} {
		if kinds[k] == 0 {
			t.Errorf("no %q events in the timeline (saw %v)", k, kinds)
		}
	}
	if kinds["remote_free"] != len(ptrs)/2 {
		t.Errorf("traced %d remote frees, enqueued %d", kinds["remote_free"], len(ptrs)/2)
	}
}

// TestObsTraceRaceBattery is the acceptance battery: eight workers
// hammer a traced sharded heap through magazines and the remote-free
// rings while a reader goroutine continuously merges the rings, then
// the final Snapshot must still be stamp-ordered and CheckInvariants
// must hold.
func TestObsTraceRaceBattery(t *testing.T) {
	const (
		workers = 8
		rounds  = 60
		batch   = 24
	)
	rec := obs.NewRecorder(512)
	sh, err := NewSharded(4, Options{HeapSize: 4 << 20, Seed: 43, RemoteRing: true})
	if err != nil {
		t.Fatal(err)
	}
	sh.AttachRecorder(rec, 100)

	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			evs := rec.Snapshot()
			for i := 1; i < len(evs); i++ {
				if evs[i-1].Seq >= evs[i].Seq {
					t.Errorf("live snapshot out of order at %d", i)
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mag, err := sh.NewMagazine()
			if err != nil {
				errs[w] = err
				return
			}
			defer mag.Close()
			mag.SetTrace(rec.Ring(w))
			r := rng.NewSeeded(uint64(2000 + w))
			for round := 0; round < rounds; round++ {
				ptrs := make([]heap.Ptr, batch)
				for i := range ptrs {
					p, err := mag.Malloc(16 << (r.Intn(3) * 2))
					if err != nil {
						errs[w] = err
						return
					}
					ptrs[i] = p
				}
				for _, p := range ptrs {
					if r.Intn(2) == 0 {
						err = sh.RemoteFree(p)
					} else {
						err = mag.Free(p)
					}
					if err != nil {
						errs[w] = err
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	reader.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if err := sh.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	evs := rec.Snapshot()
	if len(evs) == 0 {
		t.Fatal("battery left no trace")
	}
	for i := 1; i < len(evs); i++ {
		if evs[i-1].Seq >= evs[i].Seq {
			t.Fatalf("final snapshot out of order at %d", i)
		}
	}
}

// TestObsStatsSnapshotRace scrapes StatsSnapshot (and the registry
// gauges built on it) continuously while workers allocate — the racy
// *h.Stats() copy this satellite replaced would trip the race detector
// here.
func TestObsStatsSnapshotRace(t *testing.T) {
	h := testHeap(t, Options{HeapSize: 1 << 20, Seed: 47, Concurrent: true})
	reg := obs.NewRegistry()
	h.PublishMetrics(reg)

	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := h.StatsSnapshot()
			if st.Frees > st.Mallocs {
				t.Errorf("snapshot tore: frees %d > mallocs %d", st.Frees, st.Mallocs)
				return
			}
			reg.Snapshot()
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				p, err := h.Malloc(32)
				if err != nil {
					t.Error(err)
					return
				}
				if err := h.Free(p); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	reader.Wait()

	if v, ok := reg.Get("core.mallocs"); !ok || v != 1600 {
		t.Fatalf("core.mallocs gauge = %v (ok=%v), want 1600", v, ok)
	}
}
