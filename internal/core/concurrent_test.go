package core

import (
	"sync"
	"testing"

	"diehard/internal/heap"
	"diehard/internal/rng"
	"diehard/internal/vmem"
)

// Concurrency stress tests for the goroutine-safe allocator (DESIGN.md
// §7): many goroutines malloc, access, and free against one heap, then
// the segregated metadata is verified against itself. Run under
// `go test -race` in CI.

// stressWorker churns allocations of mixed classes, writing and reading
// back a sentinel through the shared space, and frees everything it
// allocated. Returns the first error encountered.
func stressWorker(h heap.Allocator, mem *vmem.Space, worker, rounds int) error {
	r := rng.NewSeeded(uint64(worker)*0x9E3779B9 + 1)
	sizes := []int{8, 24, 64, 300, 2048, MaxObjectSize + 500}
	live := make([]heap.Ptr, 0, 64)
	for i := 0; i < rounds; i++ {
		size := sizes[r.Intn(len(sizes))]
		p, err := h.Malloc(size)
		if err != nil {
			return err
		}
		want := uint64(worker)<<32 | uint64(i)
		if err := mem.Store64(p, want); err != nil {
			return err
		}
		got, err := mem.Load64(p)
		if err != nil {
			return err
		}
		if got != want {
			return &heap.CorruptionError{Detail: "sentinel read back wrong"}
		}
		live = append(live, p)
		if len(live) > 32 {
			victim := r.Intn(len(live))
			if err := h.Free(live[victim]); err != nil {
				return err
			}
			live[victim] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		// Exercise the ignore paths concurrently too: double free and
		// wild free must never corrupt metadata (§4.3).
		if i%17 == 0 {
			if err := h.Free(p + 1); err != nil { // misaligned interior
				return err
			}
		}
	}
	for _, p := range live {
		if err := h.Free(p); err != nil {
			return err
		}
	}
	return nil
}

func TestConcurrentHeapStress(t *testing.T) {
	const workers = 8
	const rounds = 400

	// Both engines stay raced: the default lock-free CAS path and the
	// retained LockedHeap reference engine (DESIGN.md §10).
	for _, tc := range []struct {
		name   string
		locked bool
	}{
		{"lockfree", false},
		{"locked", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h, err := New(Options{HeapSize: 48 << 20, Seed: 42, Concurrent: true, LockedHeap: tc.locked})
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			errs := make([]error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					errs[w] = stressWorker(h, h.Mem(), w, rounds)
				}(w)
			}
			wg.Wait()
			for w, err := range errs {
				if err != nil {
					t.Fatalf("worker %d: %v", w, err)
				}
			}
			if err := h.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			st := h.Stats()
			if st.Mallocs != workers*rounds {
				t.Errorf("Mallocs = %d, want %d", st.Mallocs, workers*rounds)
			}
			if st.Frees != st.Mallocs {
				t.Errorf("Frees = %d != Mallocs %d after full teardown", st.Frees, st.Mallocs)
			}
			if st.LiveObjects != 0 || st.LiveBytes != 0 {
				t.Errorf("live accounting nonzero after teardown: %d objects, %d bytes", st.LiveObjects, st.LiveBytes)
			}
			if st.IgnoredFrees == 0 {
				t.Error("misaligned frees were not exercised")
			}
			if h.LargeObjects() != 0 {
				t.Errorf("%d large objects leaked", h.LargeObjects())
			}
		})
	}
}

// TestConcurrentAdaptiveGrowth races mallocs in many classes of an
// adaptive heap, forcing subregion growth (and page-index republication)
// under contention.
func TestConcurrentAdaptiveGrowth(t *testing.T) {
	const workers = 6
	const rounds = 300

	h, err := New(Options{
		HeapSize: 48 << 20, Seed: 7, Adaptive: true,
		AdaptiveInitial: 8 << 10, Concurrent: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = stressWorker(h, h.Mem(), w, rounds)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestShardedHeapStress(t *testing.T) {
	const shards = 4
	const workers = 8
	const rounds = 300

	sh, err := NewSharded(shards, Options{HeapSize: 96 << 20, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	// Half the workers allocate through a pinned shard (the scalable
	// pattern), half through the round-robin front door; everyone frees
	// through the router, so cross-shard routing is exercised.
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var alloc heap.Allocator = sh
			if w%2 == 0 {
				alloc = pinnedShard{sh: sh, shard: sh.Shard(w)}
			}
			errs[w] = stressWorker(alloc, sh.Mem(), w, rounds)
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if err := sh.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := sh.Stats()
	if st.Mallocs != workers*rounds {
		t.Errorf("aggregate Mallocs = %d, want %d", st.Mallocs, workers*rounds)
	}
	if st.LiveObjects != 0 {
		t.Errorf("aggregate LiveObjects = %d after teardown", st.LiveObjects)
	}
}

// pinnedShard allocates from one shard but frees through the sharded
// router, the worker-pinned usage pattern.
type pinnedShard struct {
	sh    *ShardedHeap
	shard *Heap
}

func (p pinnedShard) Malloc(size int) (heap.Ptr, error) { return p.shard.Malloc(size) }
func (p pinnedShard) Free(ptr heap.Ptr) error           { return p.sh.Free(ptr) }
func (p pinnedShard) SizeOf(ptr heap.Ptr) (int, bool)   { return p.sh.SizeOf(ptr) }
func (p pinnedShard) Mem() *vmem.Space                  { return p.sh.Mem() }
func (p pinnedShard) Stats() *heap.Stats                { return p.sh.Stats() }
func (p pinnedShard) Name() string                      { return "pinned-" + p.shard.Name() }

// TestShardedRouting checks cross-shard pointer resolution: an object
// allocated in any shard is sized, bounded, and freed correctly through
// the router, and foreign pointers are ignored.
func TestShardedRouting(t *testing.T) {
	sh, err := NewSharded(3, Options{HeapSize: 36 << 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var ptrs []heap.Ptr
	for i := 0; i < sh.Shards(); i++ {
		p, err := sh.Shard(i).Malloc(100)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	// Large object from the last shard.
	lp, err := sh.Shard(2).Malloc(MaxObjectSize + 1)
	if err != nil {
		t.Fatal(err)
	}
	ptrs = append(ptrs, lp)

	for _, p := range ptrs {
		if sz, ok := sh.SizeOf(p); !ok || sz < 100 {
			t.Errorf("SizeOf(%#x) = %d, %v", p, sz, ok)
		}
		if start, _, ok := sh.ObjectBounds(p + 8); !ok || start != p {
			t.Errorf("ObjectBounds(%#x+8) = %#x, %v", p, start, ok)
		}
	}
	// Distinct addresses across shards (one shared address space).
	seen := map[heap.Ptr]bool{}
	for _, p := range ptrs {
		if seen[p] {
			t.Fatalf("duplicate address %#x across shards", p)
		}
		seen[p] = true
	}
	before := sh.Stats().Mallocs
	for _, p := range ptrs {
		if err := sh.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if sh.Stats().Mallocs != before {
		t.Error("frees changed malloc count")
	}
	if live := sh.Stats().LiveObjects; live != 0 {
		t.Errorf("LiveObjects = %d after freeing everything", live)
	}
	// Double frees and wild pointers: ignored, never corrupting.
	for _, p := range ptrs {
		if err := sh.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := sh.Free(0xDEAD0000); err != nil {
		t.Fatal(err)
	}
	if sh.Stats().IgnoredFrees == 0 {
		t.Error("double/wild frees not counted as ignored")
	}
	if err := sh.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedRejectsSequentialModes documents the unsupported option
// combinations.
func TestShardedRejectsSequentialModes(t *testing.T) {
	if _, err := NewSharded(2, Options{RandomFill: true}); err == nil {
		t.Error("RandomFill accepted by NewSharded")
	}
	if _, err := NewSharded(2, Options{EnableTLB: true}); err == nil {
		t.Error("EnableTLB accepted by NewSharded")
	}
	if _, err := NewSharded(0, Options{}); err == nil {
		t.Error("zero shards accepted")
	}
	if _, err := New(Options{EnableTLB: true, Concurrent: true}); err == nil {
		t.Error("TLB+Concurrent accepted by New")
	}
}

// TestIndexPublicationOutOfOrder pins the regression where a page-index
// publication for a lower address range truncated coverage already
// published for a higher one — the interleaving concurrent adaptive
// growth can produce when the class that mapped lower addresses
// publishes second.
func TestIndexPublicationOutOfOrder(t *testing.T) {
	h, err := New(Options{HeapSize: 12 << 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	idx := h.pageIdx.Load()
	end := (idx.basePn + uint64(len(idx.subs))) * vmem.PageSize

	// Two synthetic subregions beyond current coverage, lower-address
	// one indexed after the higher-address one.
	cl := &h.classes[0]
	low := &subregion{base: end + 4*vmem.PageSize, slots: 512, cl: cl, shift: cl.shift}
	high := &subregion{base: end + 16*vmem.PageSize, slots: 512, cl: cl, shift: cl.shift}
	h.indexSubregion(high, high.base, uint64(high.slots)<<high.shift)
	h.indexSubregion(low, low.base, uint64(low.slots)<<low.shift)

	if _, sub, _ := h.find(high.base); sub != high {
		t.Fatal("late lower-address publication truncated higher-address index entries")
	}
	if _, sub, _ := h.find(low.base); sub != low {
		t.Fatal("lower-address publication not indexed")
	}
}

// TestConcurrentSeedDeterminism: a fixed seed fully determines each
// class's probe stream, so the same per-goroutine allocation sequences
// produce the same addresses regardless of cross-class interleaving.
func TestConcurrentSeedDeterminism(t *testing.T) {
	run := func() map[int][]heap.Ptr {
		h, err := New(Options{HeapSize: 24 << 20, Seed: 1234, Concurrent: true})
		if err != nil {
			t.Fatal(err)
		}
		sizes := []int{16, 128, 1024}
		out := make(map[int][]heap.Ptr)
		var mu sync.Mutex
		var wg sync.WaitGroup
		for i, size := range sizes {
			wg.Add(1)
			go func(i, size int) {
				defer wg.Done()
				var ps []heap.Ptr
				for k := 0; k < 200; k++ {
					p, err := h.Malloc(size)
					if err != nil {
						t.Error(err)
						return
					}
					ps = append(ps, p)
				}
				mu.Lock()
				out[i] = ps
				mu.Unlock()
			}(i, size)
		}
		wg.Wait()
		return out
	}
	a, b := run(), run()
	for i := range a {
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				t.Fatalf("class worker %d alloc %d: %#x vs %#x — per-class streams not deterministic",
					i, k, a[i][k], b[i][k])
			}
		}
	}
}
