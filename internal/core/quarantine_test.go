package core

import (
	"math"
	"testing"

	"diehard/internal/analysis"
	"diehard/internal/heap"
	"diehard/internal/rng"
)

// TestSizeAdjustPadsAllocation: the SizeAdjust hook grows the served
// request, so a padded allocation lands in a larger class and the
// overflow reach the pad was sized for stays inside the object's slot.
func TestSizeAdjustPadsAllocation(t *testing.T) {
	pad := 0
	h := testHeap(t, Options{SizeAdjust: func(size int) int { return size + pad }})

	p, err := h.Malloc(48)
	if err != nil {
		t.Fatal(err)
	}
	if _, size, _ := h.ObjectBounds(p); size != 64 {
		t.Fatalf("unpadded 48B request served from %dB slot, want 64", size)
	}

	pad = 24 // 48+24 = 72 rounds to the 128B class
	q, err := h.Malloc(48)
	if err != nil {
		t.Fatal(err)
	}
	if _, size, _ := h.ObjectBounds(q); size != 128 {
		t.Fatalf("padded 48B request served from %dB slot, want 128", size)
	}
	// The pad is invisible to the caller but real to the accounting:
	// Free accepts the pointer and the byte counters saw the padded size.
	if err := h.Free(q); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestSizeAdjustNeverShrinks: a hook returning less than the request
// must not shrink the allocation (a countermeasure may only add slack).
func TestSizeAdjustNeverShrinks(t *testing.T) {
	h := testHeap(t, Options{SizeAdjust: func(size int) int { return size / 2 }})
	p, err := h.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if _, size, _ := h.ObjectBounds(p); size != 128 {
		t.Fatalf("shrinking SizeAdjust honored: 100B request in %dB slot, want 128", size)
	}
}

// TestQuarantineLifecycle walks a held slot through divert -> hold ->
// release: the bit stays set and the occupancy unit stays reserved while
// held (so the probe stream cannot re-issue the slot), and the normal
// free accounting fires only at release.
func TestQuarantineLifecycle(t *testing.T) {
	on := false
	h := testHeap(t, Options{FreeFilter: func(p heap.Ptr, slotSize int) bool { return on }})

	const n = 10
	ptrs := make([]heap.Ptr, n)
	for i := range ptrs {
		p, err := h.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		ptrs[i] = p
	}
	on = true
	for _, p := range ptrs {
		if err := h.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	st := h.Stats()
	if st.Quarantined != n || h.QuarantineLen() != n {
		t.Fatalf("held %d/%d after %d filtered frees", st.Quarantined, h.QuarantineLen(), n)
	}
	if st.Frees != 0 || st.LiveObjects != n {
		t.Fatalf("divert leaked into free accounting: frees=%d live=%d", st.Frees, st.LiveObjects)
	}
	popcountVsInUse(t, h) // bits still set, occupancy still reserved

	// Held slots are out of the probe stream: new allocations may not
	// receive any quarantined address.
	held := make(map[heap.Ptr]bool, n)
	for _, p := range ptrs {
		held[p] = true
	}
	on = false
	fresh := make([]heap.Ptr, 0, 3*n)
	for i := 0; i < 3*n; i++ {
		p, err := h.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if held[p] {
			t.Fatalf("allocation %d reissued quarantined slot %#x", i, p)
		}
		fresh = append(fresh, p)
	}

	if got := h.FlushQuarantine(); got != n {
		t.Fatalf("flush released %d, want %d", got, n)
	}
	st = h.Stats()
	if st.QuarantineOut != n || st.Frees != n {
		t.Fatalf("release accounting: out=%d frees=%d, want %d", st.QuarantineOut, st.Frees, n)
	}
	if h.QuarantineLen() != 0 {
		t.Fatalf("quarantine not empty after flush: %d", h.QuarantineLen())
	}
	for _, p := range fresh {
		if err := h.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st := h.Stats(); st.LiveObjects != 0 {
		t.Fatalf("LiveObjects = %d after teardown", st.LiveObjects)
	}
}

// TestQuarantineDoubleFreeOneWinner: duplicate frees of a quarantined
// slot re-enqueue it, and the deferred arbitration at release time lets
// exactly one release win the clear — §4.3's exactly-one-winner free
// survives the deferral.
func TestQuarantineDoubleFreeOneWinner(t *testing.T) {
	h := testHeap(t, Options{FreeFilter: func(heap.Ptr, int) bool { return true }})
	p, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err) // bit still set: the filter diverts the duplicate too
	}
	st := h.Stats()
	if st.Quarantined != 2 || h.QuarantineLen() != 2 {
		t.Fatalf("duplicate enqueue: quarantined=%d len=%d, want 2", st.Quarantined, h.QuarantineLen())
	}
	if got := h.FlushQuarantine(); got != 1 {
		t.Fatalf("flush released %d, want exactly 1 winner", got)
	}
	st = h.Stats()
	if st.QuarantineOut != 1 || st.Frees != 1 || st.IgnoredFrees != 1 {
		t.Fatalf("out=%d frees=%d ignored=%d, want 1/1/1", st.QuarantineOut, st.Frees, st.IgnoredFrees)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestQuarantineCapEviction: the FIFO holds at most QuarantineCap slots;
// pushing past the cap releases the oldest, keeping the occupancy debt
// bounded. A long churn also exercises the consumed-prefix compaction.
func TestQuarantineCapEviction(t *testing.T) {
	const cap = 4
	h := testHeap(t, Options{
		QuarantineCap: cap,
		FreeFilter:    func(heap.Ptr, int) bool { return true },
	})
	const n = 200
	for i := 0; i < n; i++ {
		p, err := h.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Free(p); err != nil {
			t.Fatal(err)
		}
		if got := h.QuarantineLen(); got > cap {
			t.Fatalf("hold %d: quarantine grew to %d, cap %d", i, got, cap)
		}
	}
	st := h.Stats()
	if st.Quarantined != n {
		t.Fatalf("Quarantined = %d, want %d", st.Quarantined, n)
	}
	if st.QuarantineOut != n-cap {
		t.Fatalf("evictions released %d, want %d", st.QuarantineOut, n-cap)
	}
	if got := h.FlushQuarantine(); got != cap {
		t.Fatalf("final flush released %d, want %d", got, cap)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st := h.Stats(); st.LiveObjects != 0 {
		t.Fatalf("LiveObjects = %d after flush", st.LiveObjects)
	}
}

// TestIdleHooksPreserveLayout is the unit-level half of the golden-hash
// guard: hooks that are installed but idle (identity SizeAdjust, always-
// false FreeFilter) must reproduce the hook-free heap's exact allocation
// sequence, so healing-off runs stay byte-identical to the recordings.
func TestIdleHooksPreserveLayout(t *testing.T) {
	plain := testHeap(t, Options{})
	hooked := testHeap(t, Options{
		SizeAdjust: func(size int) int { return size },
		FreeFilter: func(heap.Ptr, int) bool { return false },
	})
	r := rng.NewSeeded(99)
	var livePlain, liveHooked []heap.Ptr
	for i := 0; i < 2000; i++ {
		if len(livePlain) > 0 && r.Intn(3) == 0 {
			j := r.Intn(len(livePlain))
			if err := plain.Free(livePlain[j]); err != nil {
				t.Fatal(err)
			}
			if err := hooked.Free(liveHooked[j]); err != nil {
				t.Fatal(err)
			}
			livePlain[j] = livePlain[len(livePlain)-1]
			livePlain = livePlain[:len(livePlain)-1]
			liveHooked[j] = liveHooked[len(liveHooked)-1]
			liveHooked = liveHooked[:len(liveHooked)-1]
			continue
		}
		size := 8 << r.Intn(8)
		p1, err := plain.Malloc(size)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := hooked.Malloc(size)
		if err != nil {
			t.Fatal(err)
		}
		if p1 != p2 {
			t.Fatalf("op %d: idle hooks perturbed placement: %#x vs %#x", i, p1, p2)
		}
		livePlain = append(livePlain, p1)
		liveHooked = append(liveHooked, p2)
	}
	if hooked.Stats().Quarantined != 0 {
		t.Fatalf("idle FreeFilter quarantined %d frees", hooked.Stats().Quarantined)
	}
}

// TestFreeFilterRequiresLockFree: the quarantine's deferred-clear
// arbitration is written against the CAS engine; the locked/RandomFill
// engines must refuse the option instead of silently racing.
func TestFreeFilterRequiresLockFree(t *testing.T) {
	filter := func(heap.Ptr, int) bool { return true }
	if _, err := New(Options{HeapSize: 12 << 20, LockedHeap: true, FreeFilter: filter}); err == nil {
		t.Error("LockedHeap + FreeFilter accepted")
	}
	if _, err := New(Options{HeapSize: 12 << 20, RandomFill: true, FreeFilter: filter}); err == nil {
		t.Error("RandomFill + FreeFilter accepted")
	}
}

// TestQuarantineProbeShiftBracket brackets the measured probe-cost ratio
// of a quarantine-laden class against analysis.QuarantineFullnessShift:
// holding Q slots raises effective fullness by Q/total at the same live
// load, and at the quarantined class's capacity the ratio is exactly
// 1 + MQ/(total(M-1)).
func TestQuarantineProbeShiftBracket(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical bracket, skipped in -short")
	}
	const size = 64
	const trials = 30000
	mkHeap := func(on *bool) *Heap {
		return testHeap(t, Options{
			HeapSize:      3 << 20,
			Seed:          4242,
			QuarantineCap: 1 << 20, // never evict during setup
			FreeFilter:    func(heap.Ptr, int) bool { return *on },
		})
	}
	measure := func(h *Heap, ptrs []heap.Ptr, r *rng.MWC) float64 {
		before := h.Stats().Probes
		for i := 0; i < trials; i++ {
			j := r.Intn(len(ptrs))
			if err := h.Free(ptrs[j]); err != nil {
				t.Fatal(err)
			}
			p, err := h.Malloc(size)
			if err != nil {
				t.Fatal(err)
			}
			ptrs[j] = p
		}
		return float64(h.Stats().Probes-before) / trials
	}

	var on bool
	h := mkHeap(&on)
	total, maxInUse := h.ClassSlots(ClassFor(size))
	q := maxInUse / 4
	live := maxInUse - q

	// Quarantined class at capacity: live objects + q held slots.
	ptrs := make([]heap.Ptr, maxInUse)
	for i := range ptrs {
		p, err := h.Malloc(size)
		if err != nil {
			t.Fatal(err)
		}
		ptrs[i] = p
	}
	on = true
	for _, p := range ptrs[live:] {
		if err := h.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	on = false
	if h.QuarantineLen() != q {
		t.Fatalf("held %d, want %d", h.QuarantineLen(), q)
	}
	withQ := measure(h, ptrs[:live], rng.NewSeeded(17))

	// Baseline class at the same live load, no quarantine.
	var off bool
	h2 := mkHeap(&off)
	ptrs2 := make([]heap.Ptr, live)
	for i := range ptrs2 {
		p, err := h2.Malloc(size)
		if err != nil {
			t.Fatal(err)
		}
		ptrs2[i] = p
	}
	without := measure(h2, ptrs2, rng.NewSeeded(23))

	want := analysis.QuarantineFullnessShift(total, h.M(), q)
	got := withQ / without
	t.Logf("probes with quarantine %.3f, without %.3f: shift %.3f, predicted %.3f (total=%d q=%d)",
		withQ, without, got, want, total, q)
	if math.Abs(got-want) > 0.08 {
		t.Errorf("measured shift %.3f, predicted %.3f", got, want)
	}
}
