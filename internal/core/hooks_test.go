package core

import (
	"testing"

	"diehard/internal/heap"
)

// Tests for the allocator observation hooks and the slot-resolution
// primitives the detection engine (internal/detect) is built on.

func TestAllocFreeHooks(t *testing.T) {
	type ev struct {
		p         heap.Ptr
		req, slot int
		free      bool
	}
	var events []ev
	h, err := New(Options{
		HeapSize: 12 << 20,
		Seed:     11,
		OnAlloc:  func(p heap.Ptr, req, slot int) { events = append(events, ev{p, req, slot, false}) },
		OnFree:   func(p heap.Ptr, slot int) { events = append(events, ev{p: p, slot: slot, free: true}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := h.Malloc(48)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	// Invalid and double frees must not fire the hook.
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p + 4); err != nil {
		t.Fatal(err)
	}
	// Large objects fire with page-rounded slot sizes.
	lp, err := h.Malloc(MaxObjectSize + 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(lp); err != nil {
		t.Fatal(err)
	}
	want := []ev{
		{p, 48, 64, false},
		{p: p, slot: 64, free: true},
		{lp, MaxObjectSize + 100, 5 * 4096, false},
		{p: lp, slot: 5 * 4096, free: true},
	}
	if len(events) != len(want) {
		t.Fatalf("got %d hook events %+v, want %d", len(events), events, len(want))
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
}

func TestSlotAt(t *testing.T) {
	h, err := New(Options{HeapSize: 12 << 20, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	p, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// Interior pointers resolve to the slot base; live must be true.
	base, size, live, ok := h.SlotAt(p + 17)
	if !ok || base != p || size != 64 || !live {
		t.Fatalf("SlotAt(p+17) = (%#x, %d, %v, %v), want (%#x, 64, true, true)", base, size, live, ok, p)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	_, _, live, ok = h.SlotAt(p)
	if !ok || live {
		t.Fatalf("SlotAt after free: live=%v ok=%v, want live=false ok=true", live, ok)
	}
	// Outside the small-object regions.
	if _, _, _, ok := h.SlotAt(0x10); ok {
		t.Error("SlotAt resolved an unmapped address")
	}
}

func TestFreeSlotsWalk(t *testing.T) {
	h, err := New(Options{HeapSize: 12 << 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	c := ClassFor(64)
	total, _ := h.ClassSlots(c)
	live := map[heap.Ptr]bool{}
	for i := 0; i < 10; i++ {
		p, err := h.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		live[p] = true
	}
	seen := 0
	prev := heap.Ptr(0)
	h.FreeSlots(c, func(p heap.Ptr) bool {
		if live[p] {
			t.Fatalf("FreeSlots yielded live slot %#x", p)
		}
		if p <= prev {
			t.Fatalf("FreeSlots out of order: %#x after %#x", p, prev)
		}
		prev = p
		seen++
		return true
	})
	if seen != total-10 {
		t.Fatalf("FreeSlots yielded %d slots, want %d", seen, total-10)
	}
	// Early termination.
	n := 0
	h.FreeSlots(c, func(p heap.Ptr) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early-terminated walk visited %d slots, want 3", n)
	}
}
