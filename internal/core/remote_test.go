package core

// The remote-free ring battery (DESIGN.md §12): the ring must hand
// frees between workers without losing, duplicating, or blocking;
// queued entries must keep every invariant intact (bit set + occupancy
// held until the drain applies them); and §4.3's exactly-one-winner
// double-free semantics must survive any interleaving of rings,
// magazines, and synchronous frees. TestRemote* runs repeatedly under
// the race detector in CI.

import (
	"sync"
	"sync/atomic"
	"testing"

	"diehard/internal/heap"
	"diehard/internal/rng"
)

// TestRemoteRingUnit exercises the bare ring: FIFO order, the full ring
// refusing (not blocking, not overwriting), recycling after drain, and
// the unlocked empty check.
func TestRemoteRingUnit(t *testing.T) {
	r := newFreeRing(8)
	if !r.empty() {
		t.Fatal("fresh ring not empty")
	}
	for i := uint64(0); i < 8; i++ {
		if !r.enqueue(0x1000+i, 0) {
			t.Fatalf("enqueue %d refused below capacity", i)
		}
	}
	if r.enqueue(0xdead, 0) {
		t.Fatal("enqueue accepted into a full ring")
	}
	if r.empty() {
		t.Fatal("full ring reported empty")
	}
	for i := uint64(0); i < 8; i++ {
		addr, _, ok := r.dequeue()
		if !ok {
			t.Fatalf("dequeue %d found empty ring", i)
		}
		if addr != 0x1000+i {
			t.Fatalf("dequeue %d = %#x; want FIFO %#x", i, addr, 0x1000+i)
		}
	}
	if _, _, ok := r.dequeue(); ok {
		t.Fatal("dequeue from drained ring succeeded")
	}
	// A second lap reuses recycled cells; generation tags ride along.
	for i := uint64(0); i < 8; i++ {
		if !r.enqueue(0x2000+i, 2*i+1) {
			t.Fatalf("lap-2 enqueue %d refused", i)
		}
	}
	if addr, gen, ok := r.dequeue(); !ok || addr != 0x2000 || gen != 1 {
		t.Fatalf("lap-2 dequeue = %#x, gen %d, %v; want %#x, 1, true", addr, gen, ok, 0x2000)
	}
}

// TestRemoteFreeDeferral pins the deferral contract: a RemoteFree
// leaves the slot bitmap-live and its occupancy reserved (so invariants
// hold with entries in flight and FreeSlots does not resurface the
// slot), and the CheckInvariants barrier drains the ring, restoring
// exact counters.
func TestRemoteFreeDeferral(t *testing.T) {
	h, err := New(Options{HeapSize: 48 << 20, Seed: 5, Concurrent: true, RemoteRing: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	ptrs := make([]heap.Ptr, n)
	for i := range ptrs {
		if ptrs[i], err = h.Malloc(64); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range ptrs {
		if err := h.RemoteFree(p); err != nil {
			t.Fatal(err)
		}
	}
	st := h.Stats()
	if st.Frees != 0 {
		t.Fatalf("Frees = %d before any drain; want 0 (deferred)", st.Frees)
	}
	c := ClassFor(64)
	if use := h.ClassInUse(c); use != n {
		t.Fatalf("occupancy %d with frees in flight; want %d (still reserved)", use, n)
	}
	popcountVsInUse(t, h) // bits still set, counter still high: consistent
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st.Frees != n || st.LiveObjects != 0 {
		t.Fatalf("after barrier: Frees = %d, LiveObjects = %d; want %d, 0", st.Frees, st.LiveObjects, n)
	}
	if st.RemoteFrees != n {
		t.Fatalf("RemoteFrees = %d; want %d", st.RemoteFrees, n)
	}
	if st.RemoteDrains == 0 {
		t.Fatal("RemoteDrains = 0 after a non-empty drain")
	}
	if use := h.ClassInUse(c); use != 0 {
		t.Fatalf("occupancy %d after drain; want 0", use)
	}
}

// TestRemoteFreeDoubleFreeRace races many frees of the same pointers
// through every route at once — RemoteFree and synchronous Free — and
// requires §4.3's exactly-one-winner outcome: per object, one counted
// free, the rest detected and ignored, no matter which path the winner
// took.
func TestRemoteFreeDoubleFreeRace(t *testing.T) {
	const objects = 64
	const racers = 6
	h, err := New(Options{HeapSize: 48 << 20, Seed: 11, Concurrent: true, RemoteRing: true})
	if err != nil {
		t.Fatal(err)
	}
	ptrs := make([]heap.Ptr, objects)
	for i := range ptrs {
		if ptrs[i], err = h.Malloc(256); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < racers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, p := range ptrs {
				if w%2 == 0 {
					_ = h.RemoteFree(p)
				} else {
					_ = h.Free(p)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.Frees != objects {
		t.Errorf("Frees = %d; want exactly one winner per object (%d)", st.Frees, objects)
	}
	if st.Frees+st.IgnoredFrees != objects*racers {
		t.Errorf("Frees + IgnoredFrees = %d + %d; want every attempt accounted (%d)",
			st.Frees, st.IgnoredFrees, objects*racers)
	}
	if st.LiveObjects != 0 {
		t.Errorf("LiveObjects = %d; want 0", st.LiveObjects)
	}
	popcountVsInUse(t, h)
}

// TestRemoteFreeFullRingFallsBack overflows the ring with no consumer
// running: the overflow must be applied synchronously — never blocked,
// never lost — and the final accounting must cover every free.
func TestRemoteFreeFullRingFallsBack(t *testing.T) {
	h, err := New(Options{HeapSize: 96 << 20, Seed: 3, Concurrent: true, RemoteRing: true})
	if err != nil {
		t.Fatal(err)
	}
	n := remoteRingSize + 100
	ptrs := make([]heap.Ptr, n)
	for i := range ptrs {
		if ptrs[i], err = h.Malloc(16); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range ptrs {
		if err := h.RemoteFree(p); err != nil {
			t.Fatal(err)
		}
	}
	st := h.Stats()
	if st.Frees != 100 {
		t.Errorf("synchronous fallback applied %d frees; want the 100 overflow", st.Frees)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if st.Frees != uint64(n) || st.LiveObjects != 0 {
		t.Errorf("after barrier: Frees = %d, LiveObjects = %d; want %d, 0", st.Frees, st.LiveObjects, n)
	}
	if st.RemoteFrees != remoteRingSize {
		t.Errorf("RemoteFrees = %d; want ring capacity %d", st.RemoteFrees, remoteRingSize)
	}
}

// TestRemoteFreeThresholdDrain pins the malloc-miss drain: a class at
// its 1/M threshold whose room is sitting in the ring must serve the
// next malloc by draining, not fail it — on both the unbatched reserve
// path and the magazine's batched reserve.
func TestRemoteFreeThresholdDrain(t *testing.T) {
	for _, batched := range []bool{false, true} {
		name := "reserve"
		if batched {
			name = "reserveBatch"
		}
		t.Run(name, func(t *testing.T) {
			h, err := New(Options{HeapSize: 12 << 20, Seed: 23, Concurrent: true, RemoteRing: true})
			if err != nil {
				t.Fatal(err)
			}
			c := ClassFor(64)
			_, maxInUse := h.ClassSlots(c)
			ptrs := make([]heap.Ptr, maxInUse)
			for i := range ptrs {
				if ptrs[i], err = h.Malloc(64); err != nil {
					t.Fatal(err)
				}
			}
			// The class is at threshold and all its room is queued.
			for _, p := range ptrs[:16] {
				if err := h.RemoteFree(p); err != nil {
					t.Fatal(err)
				}
			}
			if batched {
				mag, err := h.NewMagazine()
				if err != nil {
					t.Fatal(err)
				}
				if _, err := mag.Malloc(64); err != nil {
					t.Fatalf("magazine malloc at threshold with queued room: %v", err)
				}
				mag.Close()
			} else {
				if _, err := h.Malloc(64); err != nil {
					t.Fatalf("malloc at threshold with queued room: %v", err)
				}
			}
			if h.Stats().RemoteDrains == 0 {
				t.Fatal("threshold miss did not drain the ring")
			}
			if err := h.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRemoteRingValidation pins the construction contract: a remote
// ring needs real concurrency (atomic counters), the lock-free engine,
// and no per-operation observation hooks.
func TestRemoteRingValidation(t *testing.T) {
	if _, err := New(Options{RemoteRing: true}); err == nil {
		t.Error("RemoteRing without Concurrent accepted")
	}
	if _, err := New(Options{RemoteRing: true, Concurrent: true, LockedHeap: true}); err == nil {
		t.Error("RemoteRing with LockedHeap accepted")
	}
	if _, err := New(Options{RemoteRing: true, Concurrent: true,
		OnFree: func(heap.Ptr, int) {}}); err == nil {
		t.Error("RemoteRing with an OnFree hook accepted")
	}
	if _, err := New(Options{RemoteRing: true, Concurrent: true}); err != nil {
		t.Errorf("valid RemoteRing heap refused: %v", err)
	}
}

// TestRemoteRingPlacementUnchanged pins the w1 contract: enabling the
// ring without using it changes nothing — a heap with RemoteRing set
// places every object at exactly the addresses the plain concurrent
// heap places them, through an interleaved malloc/free churn.
func TestRemoteRingPlacementUnchanged(t *testing.T) {
	opts := Options{HeapSize: 48 << 20, Seed: 77, Concurrent: true}
	plain, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.RemoteRing = true
	ringed, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewSeeded(42)
	live := make([]heap.Ptr, 0, 512)
	for i := 0; i < 4000; i++ {
		if len(live) > 0 && r.Intn(3) == 0 {
			k := r.Intn(len(live))
			p := live[k]
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			if err := plain.Free(p); err != nil {
				t.Fatal(err)
			}
			if err := ringed.Free(p); err != nil {
				t.Fatal(err)
			}
			continue
		}
		size := 8 << r.Intn(8)
		a, err1 := plain.Malloc(size)
		b, err2 := ringed.Malloc(size)
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if a != b {
			t.Fatalf("op %d: placement diverged %#x vs %#x with the ring merely enabled", i, a, b)
		}
		live = append(live, a)
	}
}

// TestRemoteCrossFreeRaceBattery is the N-worker producer-consumer
// soak: workers allocate through per-worker sharded magazines, hand
// their batches to the next worker in the ring, and that worker frees
// them through RemoteFree — with racing double frees and wild frees
// (forged in-heap addresses and foreign pointers) layered on top. The
// battery ends at the full barrier stack: magazines closed, invariants
// checked (which drains every shard's ring), and bitmap popcount
// compared against occupancy on every shard.
func TestRemoteCrossFreeRaceBattery(t *testing.T) {
	const (
		workers = 4
		shards  = 4
		rounds  = 120
		batch   = 32
	)
	sh, err := NewSharded(shards, Options{HeapSize: shards * 12 << 20, Seed: 31, RemoteRing: true})
	if err != nil {
		t.Fatal(err)
	}
	chans := make([]chan []heap.Ptr, workers)
	for i := range chans {
		chans[i] = make(chan []heap.Ptr, 4)
	}
	var doubles, wilds atomic.Uint64
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mag, err := sh.NewMagazine()
			if err != nil {
				errs[w] = err
				return
			}
			defer mag.Close()
			r := rng.NewSeeded(uint64(1000 + w))
			sizes := []int{16, 64, 64, 256, 1024}
			for round := 0; round < rounds; round++ {
				// Produce a batch and hand it to the next worker.
				ptrs := make([]heap.Ptr, batch)
				for i := range ptrs {
					p, err := mag.Malloc(sizes[r.Intn(len(sizes))])
					if err != nil {
						errs[w] = err
						return
					}
					ptrs[i] = p
				}
				chans[(w+1)%workers] <- ptrs
				// Consume a batch from the previous worker via the ring,
				// with fault injection racing the legitimate frees.
				for _, p := range <-chans[w] {
					if err := sh.RemoteFree(p); err != nil {
						errs[w] = err
						return
					}
					switch r.Intn(16) {
					case 0: // racing double free (remote and sync routes)
						doubles.Add(1)
						_ = sh.RemoteFree(p)
						_ = sh.Free(p)
					case 1: // wild in-heap free: misaligned interior pointer
						wilds.Add(1)
						_ = sh.RemoteFree(p + 3)
					case 2: // foreign pointer: owned by no shard
						wilds.Add(1)
						_ = sh.RemoteFree(0xdead0000 + uint64(r.Intn(1<<12)))
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if err := sh.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < shards; i++ {
		popcountVsInUse(t, sh.Shard(i))
	}
	st := sh.Stats()
	// Counter tolerance — UNTAGGED heaps only (§12 caveat): exactly-one-
	// winner holds per set-epoch of a bit, but an injected double free
	// that straddles a reallocation (first free drained, slot re-claimed,
	// second free lands on the new occupant — or on a magazine pre-claim)
	// is indistinguishable from a valid free, in this allocator as in the
	// paper's. Each injected double can therefore skew the app-level
	// Frees and LiveObjects counters by at most one; the metadata
	// invariants above (CheckInvariants, popcount == inUse) are exact
	// regardless. Generation-tagged heaps (§15) close exactly this gap —
	// TestRemoteCrossFreeFatBatteryExact below runs the same battery with
	// zero tolerance.
	tol := doubles.Load()
	if live := int64(st.LiveObjects); live < -int64(tol) || live > int64(tol) {
		t.Errorf("LiveObjects = %d after all batches freed; want |live| <= %d doubles", live, tol)
	}
	want := uint64(workers * rounds * batch)
	if st.Frees < want-tol || st.Frees > want+tol {
		t.Errorf("Frees = %d; want one winner per object (%d) within %d doubles", st.Frees, want, tol)
	}
	if st.RemoteFrees == 0 {
		t.Error("RemoteFrees = 0: the battery never exercised the ring")
	}
	if st.IgnoredFrees < doubles.Load() {
		t.Errorf("IgnoredFrees = %d < %d injected double frees", st.IgnoredFrees, doubles.Load())
	}
	t.Logf("remote frees %d over %d drains (mean batch %.1f), %d doubles, %d wilds, ignored %d",
		st.RemoteFrees, st.RemoteDrains,
		float64(st.RemoteFrees)/float64(max(st.RemoteDrains, 1)),
		doubles.Load(), wilds.Load(), st.IgnoredFrees)
}

// TestRemoteCrossFreeFatBatteryExact is the gen-tagged (§15) twin of the
// battery above with ZERO counter tolerance: the generation word
// arbitrates every free, so an injected double that straddles a
// reallocation — the case the untagged battery must tolerate — is a
// deterministic StaleFrees rejection. Every counter is asserted exactly:
// one accepted free per fat pointer, two stale rejections per injected
// double (of the three racing attempts on one incarnation, exactly one
// wins the generation CAS), one IgnoredFrees per misaligned wild, one
// StaleFrees per foreign fat pointer.
func TestRemoteCrossFreeFatBatteryExact(t *testing.T) {
	const (
		workers = 4
		shards  = 4
		rounds  = 120
		batch   = 32
	)
	sh, err := NewSharded(shards, Options{
		HeapSize: shards * 12 << 20, Seed: 31, RemoteRing: true, GenTags: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	chans := make([]chan []heap.FatPtr, workers)
	for i := range chans {
		chans[i] = make(chan []heap.FatPtr, 4)
	}
	var doubles, misaligned, foreign atomic.Uint64
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.NewSeeded(uint64(2000 + w))
			sizes := []int{16, 64, 64, 256, 1024}
			for round := 0; round < rounds; round++ {
				fps := make([]heap.FatPtr, batch)
				for i := range fps {
					fp, err := sh.MallocFat(sizes[r.Intn(len(sizes))])
					if err != nil {
						errs[w] = err
						return
					}
					fps[i] = fp
				}
				chans[(w+1)%workers] <- fps
				for _, fp := range <-chans[w] {
					if _, err := sh.RemoteFreeFat(fp); err != nil {
						errs[w] = err
						return
					}
					switch r.Intn(16) {
					case 0: // racing double free: remote and sync routes at once
						doubles.Add(1)
						_, _ = sh.RemoteFreeFat(fp)
						_, _ = sh.FreeFat(fp)
					case 1: // wild in-heap free: misaligned interior pointer
						misaligned.Add(1)
						_, _ = sh.RemoteFreeFat(heap.FatPtr{Addr: fp.Addr + 3, Gen: fp.Gen})
					case 2: // foreign fat pointer: owned by no shard
						foreign.Add(1)
						_, _ = sh.FreeFat(heap.FatPtr{
							Addr: 0xdead0000 + uint64(r.Intn(1<<12)), Gen: 0x99,
						})
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if err := sh.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < shards; i++ {
		popcountVsInUse(t, sh.Shard(i))
	}
	st := sh.Stats()
	want := uint64(workers * rounds * batch)
	if st.Frees != want {
		t.Errorf("Frees = %d; want exactly %d (one accepted free per fat pointer, no tolerance)",
			st.Frees, want)
	}
	if st.LiveObjects != 0 {
		t.Errorf("LiveObjects = %d; want exactly 0", st.LiveObjects)
	}
	// Each double adds two losing attempts on an incarnation with one
	// winner; each foreign fat free resolves to no live object. Both are
	// temporal errors: stale, with evidence — never silently absorbed.
	if wantStale := 2*doubles.Load() + foreign.Load(); st.StaleFrees != wantStale {
		t.Errorf("StaleFrees = %d; want exactly %d (2×%d doubles + %d foreign)",
			st.StaleFrees, wantStale, doubles.Load(), foreign.Load())
	}
	// Misaligned interior pointers are spatial errors and keep the plain
	// §4.3 ignore — also exact on a tagged heap.
	if st.IgnoredFrees != misaligned.Load() {
		t.Errorf("IgnoredFrees = %d; want exactly %d misaligned wilds",
			st.IgnoredFrees, misaligned.Load())
	}
	if st.Retired != 0 {
		t.Errorf("Retired = %d; want 0 (generations nowhere near the ceiling)", st.Retired)
	}
	if st.RemoteFrees == 0 {
		t.Error("RemoteFrees = 0: the battery never exercised the ring")
	}
	t.Logf("exact battery: %d frees, %d stale, %d ignored over %d remote drains",
		st.Frees, st.StaleFrees, st.IgnoredFrees, st.RemoteDrains)
}
