package core

import (
	"testing"

	"diehard/internal/heap"
)

// buildWorkload runs a deterministic allocation pattern and returns the
// live pointers, so two identically seeded heaps end up with identical
// layouts.
func buildWorkload(t *testing.T, h *Heap) []heap.Ptr {
	t.Helper()
	var live []heap.Ptr
	for i := 0; i < 200; i++ {
		p, err := h.Malloc(16 + (i%4)*48)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Mem().Store64(p, uint64(i)); err != nil {
			t.Fatal(err)
		}
		live = append(live, p)
		if i%3 == 2 {
			victim := live[i/2]
			if victim != heap.Null {
				if err := h.Free(victim); err != nil {
					t.Fatal(err)
				}
				live[i/2] = heap.Null
			}
		}
	}
	return live
}

func TestSnapshotIdenticalRunsAgree(t *testing.T) {
	a := testHeap(t, Options{Seed: 0xD1FF})
	b := testHeap(t, Options{Seed: 0xD1FF})
	buildWorkload(t, a)
	buildWorkload(t, b)
	sa, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(sa) == 0 {
		t.Fatal("empty snapshot")
	}
	if d := DiffSnapshots(sa, sb); len(d) != 0 {
		t.Fatalf("identical runs diverge: %v", d)
	}
}

func TestDiffPinpointsCorruption(t *testing.T) {
	// §9: differencing the heaps of a correct and an incorrect execution
	// pinpoints the exact objects a stray write hit.
	a := testHeap(t, Options{Seed: 0xD1FF})
	b := testHeap(t, Options{Seed: 0xD1FF})
	liveA := buildWorkload(t, a)
	liveB := buildWorkload(t, b)
	_ = liveA

	// The "incorrect execution": one stray 24-byte overflow from a live
	// object in run b.
	var src heap.Ptr
	for _, p := range liveB {
		if p != heap.Null {
			src = p
			break
		}
	}
	size, _ := b.SizeOf(src)
	if err := b.Mem().Memset(src+uint64(size), 0xEE, 24); err != nil {
		t.Fatal(err)
	}

	sa, err := a.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	diffs := DiffSnapshots(sa, sb)
	// The stray write hit at most a couple of neighboring slots; if it
	// landed entirely on free space there is nothing to report, which is
	// itself DieHard's masking in action — re-run pointing at a live
	// neighbor to make the test deterministic: overwrite a live object
	// directly.
	if len(diffs) == 0 {
		victim := liveB[len(liveB)-1]
		if err := b.Mem().Store64(victim, 0xBAD); err != nil {
			t.Fatal(err)
		}
		sb, err = b.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		diffs = DiffSnapshots(sa, sb)
	}
	if len(diffs) == 0 {
		t.Fatal("corruption not detected by heap differencing")
	}
	if len(diffs) > 3 {
		t.Fatalf("divergence not localized: %d objects flagged", len(diffs))
	}
	for _, d := range diffs {
		if d.Kind != "contents" {
			t.Fatalf("unexpected divergence kind: %v", d)
		}
		if d.String() == "" {
			t.Fatal("empty divergence description")
		}
	}
}

func TestDiffReportsAllocationDrift(t *testing.T) {
	a := testHeap(t, Options{Seed: 5})
	b := testHeap(t, Options{Seed: 5})
	pa, _ := a.Malloc(64)
	pb, _ := b.Malloc(64)
	if pa != pb {
		t.Fatal("identical seeds should place identically")
	}
	// Run b allocates one extra object: it shows up as only-in-b.
	extra, _ := b.Malloc(64)
	_ = extra
	sa, _ := a.Snapshot()
	sb, _ := b.Snapshot()
	diffs := DiffSnapshots(sa, sb)
	if len(diffs) != 1 || diffs[0].Kind != "only-in-b" {
		t.Fatalf("drift not reported: %v", diffs)
	}
	// And symmetrically.
	diffs = DiffSnapshots(sb, sa)
	if len(diffs) != 1 || diffs[0].Kind != "only-in-a" {
		t.Fatalf("reverse drift not reported: %v", diffs)
	}
}

func TestSnapshotIncludesLargeObjects(t *testing.T) {
	h := testHeap(t, Options{Seed: 9})
	p, err := h.Malloc(50_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Mem().Store64(p, 7); err != nil {
		t.Fatal(err)
	}
	snap, err := h.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range snap {
		if r.Class == -1 && r.Ptr == p && r.Size == 50_000 {
			found = true
		}
	}
	if !found {
		t.Fatal("large object missing from snapshot")
	}
}
