package core

// Generation-tagged slots (Options.GenTags, DESIGN.md §15): the
// deterministic temporal-safety tier.
//
// Every small-object slot carries a 32-bit generation word in a side
// array next to the allocation bitmap — segregated metadata, so heap
// writes cannot reach it and placement is byte-identical to an untagged
// heap. The word's parity encodes liveness: odd = allocated, even =
// free. Every transition bumps the word by one:
//
//   - a claim (malloc probe win, magazine refill) bumps even→odd
//     *after* winning its bitmap CAS — no CAS needed, because frees
//     reject even words and claims only follow a cleared bit, so the
//     word is quiescent between the bitmap win and the bump;
//   - a free CASes odd→even *before* the bitmap clear. On tagged heaps
//     this CAS, not the bitmap bit, is the single §4.3 arbiter: of any
//     set of racing frees of one incarnation — synchronous, magazine-
//     flushed, quarantine-diverted, or remote-ring-drained — exactly
//     one wins the transition, and the winner's bit-clear can never
//     fail or land on a reallocated slot.
//
// MallocFat returns a fat pointer (addr, generation); FreeFat rejects
// any fat pointer whose generation no longer matches the slot — which
// makes the double free that straddles a reallocation, provably
// invisible to a pure bitmap allocator (§12), a deterministic
// Stats.StaleFrees rejection with an OnStaleFree evidence callback.
//
// Wraparound cannot produce a false "valid": a free that would push the
// 32-bit word into the ceiling band instead CASes it to the retirement
// sentinel — the slot keeps its bit and its occupancy unit forever, is
// never re-issued, and counts in Stats.Retired (not Frees, so
// Mallocs − Frees == LiveObjects still balances). The aliasing
// probability a *wrapping* tag would admit is quantified in
// internal/analysis (GenTagAliasProb); this implementation's answer to
// it is exactly zero. Large objects carry a 64-bit monotonic counter
// that cannot wrap on any physical timescale.

import (
	"errors"
	"sync/atomic"

	"diehard/internal/heap"
	"diehard/internal/obs"
)

const (
	// genRetired is the retirement sentinel: odd (so the slot reads as
	// allocated-parity forever) and never issued as a tag.
	genRetired = ^uint32(0) // 0xFFFFFFFF
	// genRetireAt is the retirement band: a free of a slot whose word is
	// at or above it retires the slot instead of recycling it. The
	// largest tag ever issued is therefore genRetireAt+1 = 0xFFFFFFF1
	// (the claim after the last even word below the band), strictly
	// below genRetired — no uint32 addition on any path can wrap.
	genRetireAt = uint32(0xFFFFFFF0)
)

// ErrNotGenTagged is returned by the fat-pointer API on heaps built
// without Options.GenTags.
var ErrNotGenTagged = errors.New("diehard: heap built without Options.GenTags")

// genOutcome is the result of a generation free-transition attempt.
type genOutcome int

const (
	genWin       genOutcome = iota // transition won: caller owns the release
	genLose                        // stale or double free: reject
	genRetireOut                   // slot retired at the generation ceiling
)

// genClaim bumps the slot's generation even→odd after a won bitmap
// claim. No-op on untagged heaps (one nil check on the malloc path).
func (h *Heap) genClaim(sub *subregion, local int) {
	if sub.gens == nil {
		return
	}
	if h.atomicStats {
		atomic.AddUint32(&sub.gens[local], 1)
	} else {
		sub.gens[local]++
	}
}

// genFreePlain arbitrates an untagged free of slot local on a tagged
// heap: CAS the word odd→even (or into retirement at the ceiling).
// genLose means the slot is already free, retired, or lost to a racing
// free — the §4.3 ignore.
func (h *Heap) genFreePlain(sub *subregion, local int) genOutcome {
	g := &sub.gens[local]
	if !h.atomicStats {
		cur := *g
		switch {
		case cur&1 == 0 || cur == genRetired:
			return genLose
		case cur >= genRetireAt:
			*g = genRetired
			return genRetireOut
		default:
			*g = cur + 1
			return genWin
		}
	}
	for {
		cur := atomic.LoadUint32(g)
		if cur&1 == 0 || cur == genRetired {
			return genLose
		}
		if cur >= genRetireAt {
			if atomic.CompareAndSwapUint32(g, cur, genRetired) {
				return genRetireOut
			}
			continue
		}
		if atomic.CompareAndSwapUint32(g, cur, cur+1) {
			return genWin
		}
	}
}

// genFreeFat arbitrates a fat free: the transition additionally demands
// the slot's word equal the fat pointer's tag, so a stale pointer —
// freed, reallocated, quarantined, or retired since issue — loses
// deterministically. want has been validated odd and below genRetired.
func (h *Heap) genFreeFat(sub *subregion, local int, want uint32) genOutcome {
	g := &sub.gens[local]
	if !h.atomicStats {
		cur := *g
		switch {
		case cur != want:
			return genLose
		case cur >= genRetireAt:
			*g = genRetired
			return genRetireOut
		default:
			*g = cur + 1
			return genWin
		}
	}
	for {
		cur := atomic.LoadUint32(g)
		if cur != want {
			return genLose
		}
		if cur >= genRetireAt {
			if atomic.CompareAndSwapUint32(g, cur, genRetired) {
				return genRetireOut
			}
			continue
		}
		if atomic.CompareAndSwapUint32(g, cur, cur+1) {
			return genWin
		}
	}
}

// genFinishFree applies the release a won free transition granted: the
// bit-clear cannot fail (clears only follow won transitions, and claims
// need a cleared bit first), so no arbitration remains.
func (h *Heap) genFinishFree(cl *sizeClass, sub *subregion, local int, p heap.Ptr) {
	if h.atomicStats {
		sub.casClear(local)
		atomic.AddInt64(&cl.inUse, -1)
	} else {
		sub.clear(local)
		cl.inUse--
	}
	h.addStat(&h.stats.WorkUnits, heap.WorkBitmap)
	h.countFree(cl.size)
	if h.trace != nil {
		h.trace.Emit(obs.EvFree, p)
	}
	if h.opts.OnFree != nil {
		h.opts.OnFree(p, cl.size)
	}
}

// noteStaleFree records a rejected stale free: counter, trace event,
// and the OnStaleFree evidence hook.
func (h *Heap) noteStaleFree(p heap.Ptr, gen uint64) {
	h.addStat(&h.stats.StaleFrees, 1)
	if h.trace != nil {
		h.trace.Emit(obs.EvStaleFree, p)
	}
	if h.opts.OnStaleFree != nil {
		h.opts.OnStaleFree(p, gen)
	}
}

// genValidTag reports whether g could ever have been issued as a tag:
// odd, nonzero, below the retirement sentinel, and within 32 bits for
// small objects. Anything else is stale by construction.
func genValidTag(g uint64) bool {
	return g&1 == 1 && g == uint64(uint32(g)) && uint32(g) != genRetired
}

// GenTagged reports whether the heap issues generation-tagged pointers.
func (h *Heap) GenTagged() bool { return h.opts.GenTags }

// GenOf returns the current generation of the slot or large object
// containing p. ok is false on untagged heaps and for addresses outside
// the heap. A free slot reports its (even) resting generation — which is
// exactly what makes CheckGen on a stale fat pointer return false.
func (h *Heap) GenOf(p heap.Ptr) (uint64, bool) {
	_, sub, local := h.find(p)
	if sub != nil {
		if sub.gens == nil {
			return 0, false
		}
		if h.atomicStats {
			return uint64(atomic.LoadUint32(&sub.gens[local])), true
		}
		return uint64(sub.gens[local]), true
	}
	if !h.opts.GenTags {
		return 0, false
	}
	h.largeMu.Lock()
	lo, ok := h.large[p]
	h.largeMu.Unlock()
	if !ok {
		return 0, false
	}
	return lo.gen, true
}

// CheckGen reports whether fp is current: its tag equals the containing
// slot's generation word right now, and that word is a live (odd,
// unretired) tag the allocator could have issued — so a forged even tag
// cannot validate against a free slot, and the retirement sentinel
// validates nothing. This is the deterministic temporal validity test
// the generation-checked memory view (internal/detect) runs on every
// access.
func (h *Heap) CheckGen(fp heap.FatPtr) bool {
	g, ok := h.GenOf(fp.Addr)
	if !ok || g != fp.Gen || g&1 != 1 {
		return false
	}
	// Small-object words are 32-bit; only their sentinel is excluded
	// (large-object generations are 64-bit monotonic and never retire).
	if g == uint64(uint32(g)) && uint32(g) == genRetired {
		_, sub, _ := h.find(fp.Addr)
		if sub != nil {
			return false
		}
	}
	return true
}

// SetGen overwrites the generation word of the small-object slot at p —
// a test seam for wraparound and retirement drills (the analysis-layer
// bracket tests drive a slot to the ceiling without 2³¹ free/malloc
// round trips). gen must be a tag the allocator could have issued (odd,
// not the retirement sentinel); the slot must be a live, aligned,
// tagged small object. Returns the fat pointer carrying the new tag.
func (h *Heap) SetGen(p heap.Ptr, gen uint32) (heap.FatPtr, bool) {
	if gen&1 == 0 || gen == genRetired {
		return heap.FatPtr{}, false
	}
	cl, sub, local := h.find(p)
	if cl == nil || sub.gens == nil || (p-sub.base)&cl.mask != 0 {
		return heap.FatPtr{}, false
	}
	if h.atomicStats {
		atomic.StoreUint32(&sub.gens[local], gen)
	} else {
		sub.gens[local] = gen
	}
	return heap.FatPtr{Addr: p, Gen: uint64(gen)}, true
}

// MallocFat allocates like Malloc and returns the fat pointer carrying
// the slot's freshly bumped generation. The read is race-free: the
// address has not escaped yet, so nothing can free (and re-bump) it.
func (h *Heap) MallocFat(size int) (heap.FatPtr, error) {
	if !h.opts.GenTags {
		return heap.FatPtr{}, ErrNotGenTagged
	}
	p, err := h.Malloc(size)
	if err != nil {
		return heap.FatPtr{}, err
	}
	g, _ := h.GenOf(p)
	return heap.FatPtr{Addr: p, Gen: g}, nil
}

// FreeFat releases a generation-tagged allocation. accepted reports
// whether this call won the release (or retired the slot): a stale tag
// — the slot freed, reallocated, quarantined, or retired since fp was
// issued — is rejected with accepted == false, counted in
// Stats.StaleFrees, and reported through OnStaleFree. Of racing FreeFat
// calls with the same fat pointer, exactly one is accepted: the
// generation CAS arbitrates, deterministically, even when the loser
// arrives after the slot was reallocated — the case a pure bitmap free
// cannot distinguish (§12). Misaligned interior pointers keep the plain
// §4.3 ignore (Stats.IgnoredFrees): they are spatial, not temporal,
// errors.
func (h *Heap) FreeFat(fp heap.FatPtr) (accepted bool, err error) {
	if !h.opts.GenTags {
		return false, ErrNotGenTagged
	}
	p := fp.Addr
	if p == heap.Null {
		return true, nil // free(NULL) is a no-op in C
	}
	cl, sub, local := h.find(p)
	if cl == nil {
		// Large object, or nothing at all. A fat pointer resolving to no
		// live object is stale by construction (fat pointers are only
		// issued by MallocFat): the freed-large-object double free lands
		// here deterministically.
		h.largeMu.Lock()
		lo, ok := h.large[p]
		if !ok || lo.gen != fp.Gen {
			h.largeMu.Unlock()
			h.noteStaleFree(p, fp.Gen)
			return false, nil
		}
		delete(h.large, p) // delete-first: exactly one racing free wins
		h.largeMu.Unlock()
		return true, h.finishLargeFree(p, lo)
	}
	if (p-sub.base)&cl.mask != 0 {
		h.addStat(&h.stats.IgnoredFrees, 1) // misaligned interior pointer: ignore
		return false, nil
	}
	if !genValidTag(fp.Gen) {
		h.noteStaleFree(p, fp.Gen)
		return false, nil
	}
	switch h.genFreeFat(sub, local, uint32(fp.Gen)) {
	case genLose:
		h.noteStaleFree(p, fp.Gen)
		return false, nil
	case genRetireOut:
		h.addStat(&h.stats.Retired, 1)
		return true, nil
	}
	if h.opts.FreeFilter != nil && h.opts.FreeFilter(p, cl.size) {
		// Quarantine divert after the won transition: the held slot sits
		// bit-set with an even generation, so stale accesses and stale
		// frees during the hold are detected, and the eventual release
		// is the slot's sole bit-clearer.
		h.quarantineHold(p)
		return true, nil
	}
	h.genFinishFree(cl, sub, local, p)
	return true, nil
}

// RemoteFreeFat releases fp through the remote-free ring, carrying the
// generation in the ring cell so the owner's drain runs the same
// gen-checked arbitration FreeFat does — a stale fat pointer is
// rejected (Stats.StaleFrees) at drain time, after any reallocation the
// deferral allowed. Everything the ring cannot defer falls back to the
// synchronous FreeFat. accepted == true for an enqueued free means
// "queued": the verdict lands in the owner's counters at its next
// drain.
func (h *Heap) RemoteFreeFat(fp heap.FatPtr) (accepted bool, err error) {
	if !h.opts.GenTags {
		return false, ErrNotGenTagged
	}
	if fp.Addr == heap.Null {
		return true, nil
	}
	r := h.remote
	if r == nil {
		return h.FreeFat(fp)
	}
	cl, sub, _ := h.find(fp.Addr)
	if cl == nil || (fp.Addr-sub.base)&cl.mask != 0 {
		return h.FreeFat(fp) // large, foreign, or interior: the unbatched path decides
	}
	if !r.enqueue(fp.Addr, fp.Gen) {
		return h.FreeFat(fp) // owner is behind; apply in place rather than wait
	}
	if h.trace != nil {
		h.trace.Emit(obs.EvRemoteFree, fp.Addr)
	}
	return true, nil
}

// MallocFat allocates from the emptiest shard (the Malloc routing) and
// returns the fat pointer with the owning shard's generation.
func (sh *ShardedHeap) MallocFat(size int) (heap.FatPtr, error) {
	p, err := sh.Malloc(size)
	if err != nil {
		return heap.FatPtr{}, err
	}
	s := sh.owner(p)
	if s == nil || !s.opts.GenTags {
		return heap.FatPtr{}, ErrNotGenTagged
	}
	g, _ := s.GenOf(p)
	return heap.FatPtr{Addr: p, Gen: g}, nil
}

// FreeFat routes fp to its owning shard's gen-checked free. A fat
// pointer owned by no shard is stale by construction (its large object
// was already freed) and rejected.
func (sh *ShardedHeap) FreeFat(fp heap.FatPtr) (bool, error) {
	if fp.Addr == heap.Null {
		return true, nil
	}
	if s := sh.owner(fp.Addr); s != nil {
		return s.FreeFat(fp)
	}
	atomic.AddUint64(&sh.stats.StaleFrees, 1)
	return false, nil
}

// RemoteFreeFat routes fp to its owning shard's ring with the
// generation attached, exactly as ShardedHeap.RemoteFree routes plain
// pointers.
func (sh *ShardedHeap) RemoteFreeFat(fp heap.FatPtr) (bool, error) {
	if fp.Addr == heap.Null {
		return true, nil
	}
	if s := sh.owner(fp.Addr); s != nil {
		return s.RemoteFreeFat(fp)
	}
	atomic.AddUint64(&sh.stats.StaleFrees, 1)
	return false, nil
}

// GenOf resolves p's current generation through its owning shard.
func (sh *ShardedHeap) GenOf(p heap.Ptr) (uint64, bool) {
	if s := sh.owner(p); s != nil {
		return s.GenOf(p)
	}
	return 0, false
}

// CheckGen reports whether fp is current in its owning shard.
func (sh *ShardedHeap) CheckGen(fp heap.FatPtr) bool {
	if s := sh.owner(fp.Addr); s != nil {
		return s.CheckGen(fp)
	}
	return false
}
