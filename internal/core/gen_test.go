package core

// Unit and race batteries for the generation-tagged tier (DESIGN.md
// §15): parity bookkeeping across every free route (synchronous,
// quarantine-diverted, magazine-flushed, remote-ring-drained), the
// deterministic stale-free rejection that closes §12's straddling-
// reallocation gap, retirement at the tag ceiling, and the
// placement-identical contract that keeps the probabilistic tier's
// golden hashes untouched. TestFatPtrLifecycleRace runs under the race
// detector in CI.

import (
	"sync"
	"sync/atomic"
	"testing"

	"diehard/internal/heap"
	"diehard/internal/rng"
)

// TestGenTagBasics pins the single-heap fat-pointer contract: the first
// claim of a slot issues generation 1 (odd = allocated), an accepted
// free bumps it even, a second free of the same fat pointer is a
// deterministic StaleFrees rejection with the OnStaleFree evidence
// callback, misaligned interior pointers keep the spatial §4.3 ignore,
// and forged tags (even, zero, oversized) never validate.
func TestGenTagBasics(t *testing.T) {
	var evAddr heap.Ptr
	var evGen uint64
	var evCount int
	h, err := New(Options{
		HeapSize: 12 << 20, Seed: 7, GenTags: true,
		OnStaleFree: func(p heap.Ptr, gen uint64) { evAddr, evGen = p, gen; evCount++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !h.GenTagged() {
		t.Fatal("GenTagged() = false on a GenTags heap")
	}
	fp, err := h.MallocFat(64)
	if err != nil {
		t.Fatal(err)
	}
	if fp.Gen != 1 {
		t.Fatalf("first claim issued generation %d; want 1", fp.Gen)
	}
	if !h.CheckGen(fp) {
		t.Fatal("CheckGen(live fat pointer) = false")
	}
	if ok, err := h.FreeFat(fp); !ok || err != nil {
		t.Fatalf("FreeFat(live) = %v, %v; want accepted", ok, err)
	}
	if g, ok := h.GenOf(fp.Addr); !ok || g != 2 {
		t.Fatalf("generation after free = %d, %v; want 2 (even = free)", g, ok)
	}
	if h.CheckGen(fp) {
		t.Fatal("CheckGen(freed fat pointer) = true: stale use undetected")
	}
	// The double free: rejected, counted, and reported as evidence.
	if ok, err := h.FreeFat(fp); ok || err != nil {
		t.Fatalf("double FreeFat = %v, %v; want rejected, nil", ok, err)
	}
	if evCount != 1 || evAddr != fp.Addr || evGen != fp.Gen {
		t.Fatalf("OnStaleFree saw (%#x, %d) ×%d; want (%#x, %d) ×1",
			evAddr, evGen, evCount, fp.Addr, fp.Gen)
	}
	if st := h.Stats(); st.StaleFrees != 1 {
		t.Fatalf("StaleFrees = %d; want 1", st.StaleFrees)
	}
	// Reallocation bumps back to odd and the new fat pointer validates.
	fp2, err := h.MallocFat(64)
	if err != nil {
		t.Fatal(err)
	}
	if fp2.Gen&1 != 1 {
		t.Fatalf("reissued generation %d is even", fp2.Gen)
	}
	// Misaligned interior pointer: spatial, not temporal — ignored.
	if ok, _ := h.FreeFat(heap.FatPtr{Addr: fp2.Addr + 3, Gen: fp2.Gen}); ok {
		t.Fatal("misaligned FreeFat accepted")
	}
	if st := h.Stats(); st.IgnoredFrees != 1 || st.StaleFrees != 1 {
		t.Fatalf("IgnoredFrees, StaleFrees = %d, %d; want 1, 1 (misalignment is not stale)",
			st.IgnoredFrees, st.StaleFrees)
	}
	// Forged tags can never have been issued: rejected before the CAS.
	for _, g := range []uint64{0, 2, 1 << 33, uint64(genRetired)} {
		if ok, _ := h.FreeFat(heap.FatPtr{Addr: fp2.Addr, Gen: g}); ok {
			t.Errorf("forged tag %#x accepted", g)
		}
	}
	if !h.CheckGen(fp2) {
		t.Fatal("live object invalidated by rejected forgeries")
	}
	// free(NULL) stays a no-op.
	if ok, err := h.FreeFat(heap.FatPtr{}); !ok || err != nil {
		t.Fatalf("FreeFat(null) = %v, %v; want true, nil", ok, err)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The fat API demands a tagged heap.
	un, err := New(Options{HeapSize: 12 << 20, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := un.MallocFat(64); err != ErrNotGenTagged {
		t.Fatalf("MallocFat on untagged heap: %v; want ErrNotGenTagged", err)
	}
	if _, err := un.FreeFat(heap.FatPtr{Addr: 1, Gen: 1}); err != ErrNotGenTagged {
		t.Fatalf("FreeFat on untagged heap: %v; want ErrNotGenTagged", err)
	}
}

// TestGenTagStaleAcrossRealloc pins the tentpole fix: a double free that
// straddles a reallocation — undetectable by the pure bitmap protocol
// (§12's tolerated skew) — is rejected deterministically, and the new
// incarnation survives it untouched.
func TestGenTagStaleAcrossRealloc(t *testing.T) {
	h, err := New(Options{HeapSize: 12 << 20, Seed: 13, GenTags: true})
	if err != nil {
		t.Fatal(err)
	}
	old, err := h.MallocFat(4096)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := h.FreeFat(old); !ok || err != nil {
		t.Fatalf("FreeFat = %v, %v", ok, err)
	}
	// Churn until random placement reissues the same slot.
	var cur heap.FatPtr
	for i := 0; ; i++ {
		if i == 100000 {
			t.Fatal("slot never reissued in 100k probes")
		}
		fp, err := h.MallocFat(4096)
		if err != nil {
			t.Fatal(err)
		}
		if fp.Addr == old.Addr {
			cur = fp
			break
		}
		if ok, err := h.FreeFat(fp); !ok || err != nil {
			t.Fatalf("churn free = %v, %v", ok, err)
		}
	}
	if cur.Gen != old.Gen+2 {
		t.Fatalf("reissued generation %d; want %d (one free + one claim past %d)",
			cur.Gen, old.Gen+2, old.Gen)
	}
	staleBefore := h.Stats().StaleFrees
	// The straddling double free: same address, dead generation.
	if ok, _ := h.FreeFat(old); ok {
		t.Fatal("stale free across reallocation accepted — the §12 gap is open")
	}
	if got := h.Stats().StaleFrees; got != staleBefore+1 {
		t.Fatalf("StaleFrees = %d; want %d", got, staleBefore+1)
	}
	if !h.CheckGen(cur) {
		t.Fatal("new incarnation invalidated by the rejected stale free")
	}
	if ok, err := h.FreeFat(cur); !ok || err != nil {
		t.Fatalf("legitimate free of the new incarnation = %v, %v", ok, err)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGenTagQuarantine pins the unified quarantine contract: the
// generation transition runs before the FreeFilter consult, so the held
// slot sits bit-set with an even word — stale frees and stale uses
// during the hold are detected, the FIFO never holds duplicates, and
// the release is the slot's sole bit-clearer.
func TestGenTagQuarantine(t *testing.T) {
	h, err := New(Options{
		HeapSize: 12 << 20, Seed: 17, GenTags: true,
		FreeFilter: func(heap.Ptr, int) bool { return true },
	})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := h.MallocFat(128)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := h.FreeFat(fp); !ok || err != nil {
		t.Fatalf("FreeFat into quarantine = %v, %v; want accepted", ok, err)
	}
	if n := h.QuarantineLen(); n != 1 {
		t.Fatalf("QuarantineLen = %d; want 1", n)
	}
	if h.CheckGen(fp) {
		t.Fatal("stale use of a quarantined slot validated")
	}
	// A second free during the hold is stale — it must NOT enqueue a
	// duplicate (the duplicate's release would race the reallocated
	// slot's bit).
	if ok, _ := h.FreeFat(fp); ok {
		t.Fatal("double free into quarantine accepted")
	}
	if n := h.QuarantineLen(); n != 1 {
		t.Fatalf("QuarantineLen = %d after rejected double; want 1 (no duplicate held)", n)
	}
	if st := h.Stats(); st.StaleFrees != 1 || st.Frees != 0 {
		t.Fatalf("StaleFrees, Frees = %d, %d during hold; want 1, 0 (free counted at release)",
			st.StaleFrees, st.Frees)
	}
	if n := h.FlushQuarantine(); n != 1 {
		t.Fatalf("FlushQuarantine released %d; want 1", n)
	}
	if st := h.Stats(); st.Frees != 1 || st.QuarantineOut != 1 {
		t.Fatalf("Frees, QuarantineOut = %d, %d after flush; want 1, 1", st.Frees, st.QuarantineOut)
	}
	if g, ok := h.GenOf(fp.Addr); !ok || g != fp.Gen+1 {
		t.Fatalf("generation after release = %d; want %d", g, fp.Gen+1)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestGenTagMagazineFlush pins the batched routes: magazine refills bump
// claims, flushed frees run the generation arbitration, and a duplicate
// free queued through the magazine loses exactly like a synchronous one.
func TestGenTagMagazineFlush(t *testing.T) {
	h, err := New(Options{HeapSize: 24 << 20, Seed: 19, Concurrent: true, GenTags: true})
	if err != nil {
		t.Fatal(err)
	}
	mag, err := h.NewMagazine()
	if err != nil {
		t.Fatal(err)
	}
	const n = 48
	ptrs := make([]heap.Ptr, n)
	for i := range ptrs {
		p, err := mag.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if g, ok := h.GenOf(p); !ok || g&1 != 1 {
			t.Fatalf("magazine-refilled slot %#x has generation %d; want odd (claimed)", p, g)
		}
		ptrs[i] = p
	}
	for _, p := range ptrs {
		if err := mag.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	// A duplicate queued behind the legitimate free: the flush's
	// generation arbitration must reject it.
	if err := mag.Free(ptrs[0]); err != nil {
		t.Fatal(err)
	}
	mag.Close()
	st := h.Stats()
	if st.Frees != n {
		t.Errorf("Frees = %d after flush; want %d", st.Frees, n)
	}
	if st.IgnoredFrees != 1 {
		t.Errorf("IgnoredFrees = %d; want 1 (the queued duplicate, untagged route)", st.IgnoredFrees)
	}
	if st.LiveObjects != 0 {
		t.Errorf("LiveObjects = %d; want 0", st.LiveObjects)
	}
	for _, p := range ptrs {
		if g, ok := h.GenOf(p); !ok || g&1 != 0 {
			t.Fatalf("flushed slot %#x has generation %d; want even (free)", p, g)
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	popcountVsInUse(t, h)
}

// TestGenTagRemoteDrainStale pins the deferred route: a duplicate fat
// free queued in the remote ring is rejected at drain time by the same
// generation arbitration, even though both entries were queued while the
// slot was still live.
func TestGenTagRemoteDrainStale(t *testing.T) {
	h, err := New(Options{
		HeapSize: 24 << 20, Seed: 23, Concurrent: true, RemoteRing: true, GenTags: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := h.MallocFat(256)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if ok, err := h.RemoteFreeFat(fp); !ok || err != nil {
			t.Fatalf("RemoteFreeFat #%d = %v, %v; want queued", i, ok, err)
		}
	}
	if st := h.Stats(); st.Frees != 0 || st.StaleFrees != 0 {
		t.Fatalf("verdict before drain: Frees=%d StaleFrees=%d; want deferral", st.Frees, st.StaleFrees)
	}
	if err := h.CheckInvariants(); err != nil { // barrier drains the ring
		t.Fatal(err)
	}
	st := h.Stats()
	if st.Frees != 1 || st.StaleFrees != 1 || st.LiveObjects != 0 {
		t.Fatalf("after drain: Frees=%d StaleFrees=%d Live=%d; want 1, 1, 0",
			st.Frees, st.StaleFrees, st.LiveObjects)
	}
	if st.RemoteFrees != 2 {
		t.Fatalf("RemoteFrees = %d; want 2", st.RemoteFrees)
	}
}

// TestGenTagRetirement pins the wraparound answer: a free at the tag
// ceiling retires the slot — sentinel word, bit and occupancy held
// forever, counted in Retired (not Frees) so conservation still
// balances — and no later free or use of it can ever validate.
func TestGenTagRetirement(t *testing.T) {
	h, err := New(Options{HeapSize: 12 << 20, Seed: 29, GenTags: true})
	if err != nil {
		t.Fatal(err)
	}
	fp, err := h.MallocFat(64)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the slot to the ceiling without 2³¹ round trips.
	ceiling, ok := h.SetGen(fp.Addr, genRetireAt+1)
	if !ok {
		t.Fatal("SetGen refused a live tagged slot")
	}
	if ok, err := h.FreeFat(ceiling); !ok || err != nil {
		t.Fatalf("retiring free = %v, %v; want accepted", ok, err)
	}
	st := h.Stats()
	if st.Retired != 1 || st.Frees != 0 {
		t.Fatalf("Retired, Frees = %d, %d; want 1, 0 (retirement is not a recycle)",
			st.Retired, st.Frees)
	}
	if g, _ := h.GenOf(fp.Addr); g != uint64(genRetired) {
		t.Fatalf("retired word = %#x; want sentinel %#x", g, genRetired)
	}
	// Nothing validates against a retired slot: not the ceiling tag, not
	// the sentinel, not any forgery.
	for _, g := range []uint64{ceiling.Gen, uint64(genRetired), 1, uint64(genRetireAt) + 3} {
		if ok, _ := h.FreeFat(heap.FatPtr{Addr: fp.Addr, Gen: g}); ok {
			t.Errorf("free with tag %#x accepted on a retired slot", g)
		}
		if h.CheckGen(heap.FatPtr{Addr: fp.Addr, Gen: g}) {
			t.Errorf("CheckGen with tag %#x validated on a retired slot", g)
		}
	}
	// The slot keeps its occupancy unit: still one in-use in its class,
	// and the invariant walk accepts the held bit.
	if use := h.ClassInUse(ClassFor(64)); use != 1 {
		t.Fatalf("ClassInUse = %d after retirement; want 1 (unit held forever)", use)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	popcountVsInUse(t, h)
	// SetGen refuses tags the allocator could never issue.
	if _, ok := h.SetGen(fp.Addr, 4); ok {
		t.Error("SetGen accepted an even tag")
	}
	if _, ok := h.SetGen(fp.Addr, genRetired); ok {
		t.Error("SetGen accepted the retirement sentinel")
	}
}

// TestGenTagPlacementUnchanged pins the zero-perturbation contract that
// keeps the probabilistic tier's golden hashes valid: the side array is
// segregated metadata, so a tagged heap places every object at exactly
// the addresses its untagged twin does, through an interleaved
// malloc/free churn on both engines' stat modes.
func TestGenTagPlacementUnchanged(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		name := "sequential"
		if concurrent {
			name = "concurrent"
		}
		t.Run(name, func(t *testing.T) {
			opts := Options{HeapSize: 48 << 20, Seed: 77, Concurrent: concurrent}
			plain, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.GenTags = true
			tagged, err := New(opts)
			if err != nil {
				t.Fatal(err)
			}
			r := rng.NewSeeded(42)
			live := make([]heap.FatPtr, 0, 512)
			for i := 0; i < 4000; i++ {
				if len(live) > 0 && r.Intn(3) == 0 {
					k := r.Intn(len(live))
					fp := live[k]
					live[k] = live[len(live)-1]
					live = live[:len(live)-1]
					if err := plain.Free(fp.Addr); err != nil {
						t.Fatal(err)
					}
					if ok, err := tagged.FreeFat(fp); !ok || err != nil {
						t.Fatalf("tagged free = %v, %v", ok, err)
					}
					continue
				}
				size := 8 << r.Intn(8)
				a, err1 := plain.Malloc(size)
				b, err2 := tagged.MallocFat(size)
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				if a != b.Addr {
					t.Fatalf("op %d: placement diverged %#x vs %#x with tags merely enabled",
						i, a, b.Addr)
				}
				live = append(live, b)
			}
		})
	}
}

// TestGenTagValidation pins the construction contract: the tagged tier
// needs the lock-free engine (the generation protocol leans on its
// claim/clear ordering).
func TestGenTagValidation(t *testing.T) {
	if _, err := New(Options{GenTags: true, LockedHeap: true}); err == nil {
		t.Error("GenTags with LockedHeap accepted")
	}
	if _, err := New(Options{GenTags: true, RandomFill: true}); err == nil {
		t.Error("GenTags with RandomFill accepted")
	}
	if _, err := New(Options{GenTags: true}); err != nil {
		t.Errorf("valid sequential GenTags heap refused: %v", err)
	}
	if _, err := New(Options{GenTags: true, Concurrent: true, RemoteRing: true}); err != nil {
		t.Errorf("valid concurrent GenTags heap refused: %v", err)
	}
}

// TestFatPtrLifecycleRace is the §15 race battery: eight goroutines
// racing malloc, legitimate frees, and stale frees of the same fat
// pointers across every route at once — synchronous FreeFat, the remote
// ring's deferred drain, magazine refill/flush churn, and quarantine
// hold/release — ending at the full barrier stack with exactly-one-
// winner asserted per fat pointer and exact global conservation. Runs
// under the race detector in CI (×3).
func TestFatPtrLifecycleRace(t *testing.T) {
	const (
		goroutines = 8
		raced      = 64 // fat pointers every goroutine races to free
		rounds     = 60
		perRound   = 16
	)
	h, err := New(Options{
		HeapSize: 96 << 20, Seed: 41, Concurrent: true, RemoteRing: true, GenTags: true,
		// Quarantine the 16-byte class: its frees divert to the FIFO and
		// release through the eviction/flush path.
		FreeFilter:    func(_ heap.Ptr, slotSize int) bool { return slotSize == 16 },
		QuarantineCap: 32,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase A — the winner race: every goroutine tries to FreeFat every
	// shared fat pointer; the generation CAS must elect exactly one.
	shared := make([]heap.FatPtr, raced)
	for i := range shared {
		if shared[i], err = h.MallocFat(64); err != nil {
			t.Fatal(err)
		}
	}
	winners := make([]atomic.Int32, raced)
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i, fp := range shared {
				ok, err := h.FreeFat(fp)
				if err != nil {
					errs[w] = err
					return
				}
				if ok {
					winners[i].Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("phase A worker %d: %v", w, err)
		}
	}
	for i := range winners {
		if n := winners[i].Load(); n != 1 {
			t.Fatalf("fat pointer %d: %d accepted frees; want exactly one winner", i, n)
		}
	}

	// Phase B — lifecycle churn: each goroutine allocates through the
	// fat API and a magazine at once, frees its objects through rotating
	// routes, replays every fat pointer once more (a guaranteed-stale
	// free that must be rejected), and checks stale uses never validate.
	var staleAttempts, staleAccepted atomic.Uint64
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mag, err := h.NewMagazine()
			if err != nil {
				errs[w] = err
				return
			}
			defer mag.Close()
			r := rng.NewSeeded(uint64(3000 + w))
			sizes := []int{16, 64, 256, 1024}
			for round := 0; round < rounds; round++ {
				fat := make([]heap.FatPtr, 0, perRound)
				for i := 0; i < perRound; i++ {
					if i%4 == 3 {
						// Magazine route: plain pointers churn the
						// refill/flush claims alongside the fat traffic.
						p, err := mag.Malloc(sizes[r.Intn(len(sizes))])
						if err != nil {
							errs[w] = err
							return
						}
						if err := mag.Free(p); err != nil {
							errs[w] = err
							return
						}
						continue
					}
					fp, err := h.MallocFat(sizes[r.Intn(len(sizes))])
					if err != nil {
						errs[w] = err
						return
					}
					fat = append(fat, fp)
				}
				for i, fp := range fat {
					if i%3 == 0 {
						if _, err := h.RemoteFreeFat(fp); err != nil {
							errs[w] = err
							return
						}
					} else {
						if _, err := h.FreeFat(fp); err != nil {
							errs[w] = err
							return
						}
					}
				}
				// Stale replay. A tag freed synchronously is dead right
				// now — even if the slot was since reallocated, the
				// replay is mismatched — so its rejection is asserted
				// immediately. A tag handed to the ring has its verdict
				// at the owner's drain (the replay is queued behind the
				// legitimate entry and loses there); the barrier's exact
				// conservation asserts cover those.
				for i, fp := range fat {
					staleAttempts.Add(1)
					if i%3 == 0 {
						if _, err := h.RemoteFreeFat(fp); err != nil {
							errs[w] = err
							return
						}
						continue
					}
					ok, err := h.FreeFat(fp)
					if err != nil {
						errs[w] = err
						return
					}
					if ok {
						staleAccepted.Add(1)
					}
					if h.CheckGen(fp) {
						staleAccepted.Add(1) // stale use validated: also a bug
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("phase B worker %d: %v", w, err)
		}
	}

	// A replayed tag may meet its slot freed, quarantined, or already
	// reallocated by another goroutine — mismatched in every case. An
	// accepted replay (or a validated stale use) is the §12 gap reopened.
	if n := staleAccepted.Load(); n != 0 {
		t.Errorf("%d of %d stale replays accepted; want 0", n, staleAttempts.Load())
	}

	// Barrier stack: flush the quarantine, drain every ring, audit.
	h.FlushQuarantine()
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	popcountVsInUse(t, h)
	st := h.StatsSnapshot()
	if st.LiveObjects != 0 {
		t.Errorf("LiveObjects = %d after every route drained; want exactly 0 (no §12 tolerance)",
			st.LiveObjects)
	}
	if st.Mallocs != st.Frees+st.Retired {
		t.Errorf("conservation: Mallocs %d != Frees %d + Retired %d",
			st.Mallocs, st.Frees, st.Retired)
	}
	if st.StaleFrees < uint64(raced)*(goroutines-1) {
		t.Errorf("StaleFrees = %d; want at least the %d phase-A losers",
			st.StaleFrees, raced*(goroutines-1))
	}
	t.Logf("race battery: %d mallocs, %d frees, %d stale rejections (%d replayed), %d quarantined, %d retired",
		st.Mallocs, st.Frees, st.StaleFrees, staleAttempts.Load(), st.Quarantined, st.Retired)
}
