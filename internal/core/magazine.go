package core

// The per-worker allocation magazine (DESIGN.md §11): the Hoard/
// tcmalloc-style front end that makes the lock-free malloc path scale
// instead of merely exist. PR 5 removed the locks but left every malloc
// touching three shared atomics (occupancy CAS, probe-stream CAS,
// bitmap CAS) and every free two more; under contention the losers
// replay whole probe sequences. A Magazine amortizes all of that: it
// holds a small store of pre-claimed slots per hot size class, refilled
// by ONE batched CAS occupancy reservation plus a batched draw of the
// class probe stream (a contiguous prefix of the per-class MWC
// sequence, published with a single CAS), and a local free buffer whose
// bitmap clears, occupancy decrements, and statistics publish in
// batches. A malloc on the fast path pops a pre-claimed slot and a free
// pushes into the local buffer — zero shared cache lines touched.
//
// The randomized-placement guarantees behind Theorem 1 survive batching
// by construction: a refill consumes exactly the prefix of the class
// draw stream that the same number of back-to-back unbatched mallocs
// would have consumed, against the same bitmap state (claims are made
// slot-by-slot as drawn, so each draw sees its predecessors exactly as
// the unbatched probe loop does). At one goroutine the publication CAS
// never loses, so a magazine-fed sequential workload places every
// object at the address the unbatched engine places it — the prefix
// property TestMagazinePrefixPlacement pins, which is what keeps the
// golden campaign OutputHash recordings meaningful as the ground truth.

import (
	"errors"
	"fmt"
	"sync/atomic"

	"diehard/internal/heap"
	"diehard/internal/obs"
	"diehard/internal/rng"
)

const (
	// magInitialCap is a fresh magazine's per-class capacity; each
	// refill doubles it up to MagazineMaxCap, so one-shot classes stay
	// nearly batch-free while hot classes earn full batching.
	magInitialCap = 8
	// MagazineMaxCap is the largest per-class magazine: the bound on
	// slots a worker can hold pre-claimed (and on frees it can buffer)
	// per class, and therefore on how far a magazine-held class's
	// apparent occupancy can lead its true live count between drains.
	MagazineMaxCap = 64
	// minObjectShift is log2(MinObjectSize): subregion shifts map to
	// class indices by subtracting it.
	minObjectShift = 3
)

// magFree is one locally buffered free: the slot stays bitmap-live (so
// probes and double frees keep treating it exactly like a live object)
// until the flush publishes the clear. shard indexes the owning shard
// for sharded magazines (always 0 in single-heap mode); the struct
// carries one pointer so buffering a free costs one write barrier.
type magFree struct {
	sub   *subregion
	local int32
	shard int32
}

// classMagazine is one size class's local state: pre-claimed slots in
// draw order, pending (unpublished) malloc counters, and the free
// buffer. scratch is the refill's claim-undo buffer (class-wide slot
// indexes), reused across refills so the hot loop allocates nothing.
type classMagazine struct {
	owner          *Heap      // shard the claimed slots and pending stats belong to
	slots          []heap.Ptr // pre-claimed slots, FIFO in stream draw order
	next           int        // pop cursor into slots
	cap            int        // current refill batch size (adaptive)
	pendingMallocs int        // popped slots not yet published to owner stats
	pendingReq     uint64     // requested bytes of those pops
	free           []magFree  // buffered frees awaiting batch publication
	scratch        []int32    // refill claim indexes, for undo on CAS loss
}

// Magazine is a per-worker allocation front end over a lock-free
// DieHard heap (or a ShardedHeap, where each refill re-routes to the
// emptiest shard for the class — the occupancy hysteresis of DESIGN.md
// §11: shard occupancy is re-read once per magazine lifetime instead of
// once per malloc). A Magazine is owned by exactly one goroutine at a
// time; the backing heap remains safe for any number of magazines plus
// unbatched callers concurrently. Create with Heap.NewMagazine or
// ShardedHeap.NewMagazine; call Drain at barriers where exact counters
// or an exact free-slot view are needed, and Close when done.
//
// Invalid frees keep DieHard's §4.3 semantics with one batching-shaped
// shift: a pre-claimed (not yet served) slot is bitmap-live, so a wild
// free forging its address is accepted the way a wild free of any live
// object always was, where the unbatched engine would have ignored it
// (the slot would still have been free). The exposure is bounded by
// MagazineMaxCap slots per class per magazine.
type Magazine struct {
	h       *Heap        // single-heap mode: the pinned heap
	sh      *ShardedHeap // sharded mode: refills re-route by occupancy
	classes [NumClasses]classMagazine

	// trace is the worker's flight-recorder ring (SetTrace): magazine
	// mallocs, frees, refills, and flushes emit stamped events. The
	// magazine's single-owner contract makes the ring effectively
	// single-producer, so its timeline is strictly ordered. Nil = one
	// predictable branch per operation, the disabled-path contract.
	trace *obs.Ring
}

// SetTrace installs (or removes, with nil) the flight-recorder ring
// for this magazine's events. Call from the owner goroutine.
func (m *Magazine) SetTrace(r *obs.Ring) { m.trace = r }

// NewMagazine returns a per-worker magazine over this heap. The heap
// must run the lock-free engine (LockedHeap and RandomFill heaps
// serialize on the class mutex anyway, so batching would buy nothing)
// and must not have observation hooks installed: a detection engine
// audits canaries at every alloc and free boundary, which is exactly
// the per-operation precision batching gives up.
func (h *Heap) NewMagazine() (*Magazine, error) {
	if !h.lockfree {
		return nil, fmt.Errorf("diehard: magazines require the lock-free engine (not LockedHeap/RandomFill)")
	}
	if h.opts.OnAlloc != nil || h.opts.OnFree != nil {
		return nil, fmt.Errorf("diehard: magazines cannot batch past per-operation observation hooks")
	}
	m := &Magazine{h: h}
	m.init()
	h.registerMagazine(m)
	return m, nil
}

// NewMagazine returns a per-worker magazine over the sharded heap: the
// registration handle workers use instead of pinning a shard. Each
// class refill routes to the shard whose class occupancy is lowest at
// refill time (falling over to the others if it is at its threshold),
// so routing reads amortize across a whole magazine instead of every
// malloc; frees route to the owning shard by page index as always.
func (sh *ShardedHeap) NewMagazine() (*Magazine, error) {
	if s := sh.shards[0]; s.opts.OnAlloc != nil || s.opts.OnFree != nil {
		return nil, fmt.Errorf("diehard: magazines cannot batch past per-operation observation hooks")
	}
	m := &Magazine{sh: sh}
	m.init()
	sh.registerMagazine(m)
	return m, nil
}

func (m *Magazine) init() {
	for c := range m.classes {
		m.classes[c].cap = magInitialCap
	}
}

// backing is the allocator behind this magazine, for the paths that
// bypass batching (large objects, foreign and misaligned pointers).
func (m *Magazine) backing() heap.Allocator {
	if m.sh != nil {
		return m.sh
	}
	return m.h
}

// Malloc serves size bytes from the magazine: the common case pops a
// pre-claimed slot and touches only magazine-local memory. An empty
// class refills through the batched lock-free protocol; large objects
// fall through to the backing allocator unbatched.
func (m *Magazine) Malloc(size int) (heap.Ptr, error) {
	if size > MaxObjectSize || size < 0 {
		return m.backing().Malloc(size)
	}
	if size == 0 {
		size = 1 // malloc(0) returns a distinct pointer, as in C
	}
	c := ClassFor(size)
	cm := &m.classes[c]
	if cm.next == len(cm.slots) {
		if err := m.refill(c, cm); err != nil {
			return heap.Null, err
		}
	}
	p := cm.slots[cm.next]
	cm.next++
	cm.pendingMallocs++
	cm.pendingReq += uint64(size)
	if m.trace != nil {
		m.trace.Emit(obs.EvMalloc, p)
	}
	return p, nil
}

// Free releases p: a small object of the backing heap is buffered
// locally and published in a batch (its bitmap bit stays set until
// then, so the slot keeps reading as live everywhere); everything else
// — large objects, foreign pointers, misaligned interior pointers —
// takes the backing allocator's unbatched path, which already counts
// the §4.3 ignores.
func (m *Magazine) Free(p heap.Ptr) error {
	if p == heap.Null {
		return nil
	}
	var (
		sub   *subregion
		local int
		shard int32
	)
	if m.sh == nil {
		_, sub, local = m.h.find(p)
	} else {
		for i, s := range m.sh.shards {
			if _, sub, local = s.find(p); sub != nil {
				shard = int32(i)
				break
			}
		}
	}
	if sub == nil {
		return m.backing().Free(p)
	}
	if (p-sub.base)&sub.cl.mask != 0 {
		return m.backing().Free(p) // misaligned interior pointer: ignored there
	}
	c := int(sub.shift) - minObjectShift
	cm := &m.classes[c]
	cm.free = append(cm.free, magFree{sub: sub, local: int32(local), shard: shard})
	if m.trace != nil {
		m.trace.Emit(obs.EvFree, p)
	}
	if len(cm.free) >= cm.cap {
		m.flushFrees(c, cm, false)
	}
	return nil
}

// refill restocks class c: pending malloc stats are published to the
// outgoing owner, buffered frees are recycled first (their occupancy
// must be visible before reserving more, or a heap at its 1/M threshold
// would refuse a refill its own buffer has already paid for), and then
// one batched reservation plus one batched stream draw claims the next
// stretch of slots. In sharded mode the refill lands on the emptiest
// shard for the class, falling over to the others at its threshold —
// the same steal order ShardedHeap.Malloc uses, amortized to once per
// magazine.
func (m *Magazine) refill(c int, cm *classMagazine) error {
	m.publishMallocs(c, cm)
	m.flushFrees(c, cm, false)
	want := cm.cap
	if cm.cap < MagazineMaxCap {
		cm.cap *= 2
	}
	owner := m.h
	if m.sh != nil {
		owner = m.sh.refillShard(c)
	}
	got, err := owner.magazineRefill(c, want, &cm.slots, &cm.scratch)
	if err != nil && m.sh != nil && errors.Is(err, heap.ErrOutOfMemory) {
		tried := map[*Heap]bool{owner: true}
		for len(tried) < len(m.sh.shards) {
			next, _ := m.sh.emptiest(m.sh.classLoad(c), tried)
			if got, err = next.magazineRefill(c, want, &cm.slots, &cm.scratch); err == nil {
				owner = next
				break
			}
			if !errors.Is(err, heap.ErrOutOfMemory) {
				return err
			}
			tried[next] = true
		}
	}
	if err != nil {
		return err
	}
	cm.owner = owner
	cm.slots = cm.slots[:got]
	cm.next = 0
	if m.trace != nil {
		m.trace.Emit(obs.EvRefill, uint64(got))
	}
	return nil
}

// publishMallocs pushes the class's served-malloc counters to the owner
// the slots came from, in one batched stats update.
func (m *Magazine) publishMallocs(c int, cm *classMagazine) {
	if cm.pendingMallocs == 0 {
		return
	}
	owner := cm.owner
	alloc := uint64(cm.pendingMallocs) * uint64(ClassSize(c))
	if owner.atomicStats {
		heap.CountMallocBatchAtomic(&owner.stats, cm.pendingMallocs, cm.pendingReq, alloc)
	} else {
		heap.CountMallocBatch(&owner.stats, cm.pendingMallocs, cm.pendingReq, alloc)
	}
	cm.pendingMallocs = 0
	cm.pendingReq = 0
}

// flushFrees publishes the class's buffered frees: one bitmap clear per
// slot (CAS on concurrent heaps — of racing frees of one pointer,
// exactly one wins, preserving §4.3 double-free detection across
// magazines) and then, per owning shard, one occupancy decrement and
// one batched stats update for all the winners together.
//
// On a sharded heap with remote rings, an incremental flush (sync ==
// false) hands frees of *foreign* shards — any shard other than the one
// this magazine currently refills from — to that shard's ring instead
// of CAS-ing its bitmap from here; the owner applies them at its own
// drain points. Barrier flushes (sync == true, from Drain) apply
// everything in place, so the drain contract stays as strong as rings
// allow: after Drain plus the owners' ring drains (which
// CheckInvariants performs), every counter is exact.
func (m *Magazine) flushFrees(c int, cm *classMagazine, sync bool) {
	if len(cm.free) == 0 {
		return
	}
	if m.trace != nil {
		m.trace.Emit(obs.EvFlush, uint64(len(cm.free)))
	}
	if m.sh == nil {
		// Single-heap magazines have exactly one owner: count wins and
		// §4.3 ignores straight through, no per-shard accounting. On
		// tagged heaps (DESIGN.md §15) the generation word arbitrates
		// each buffered free before its bit-clear, exactly as the
		// synchronous path does.
		wins, ignored, retired := 0, 0, 0
		for _, e := range cm.free {
			local := int(e.local)
			if e.sub.gens != nil {
				switch m.h.genFreePlain(e.sub, local) {
				case genWin:
					if m.h.atomicStats {
						e.sub.casClear(local)
					} else {
						e.sub.clear(local)
					}
					wins++
				case genRetireOut:
					retired++
				default:
					ignored++
				}
				continue
			}
			if m.h.atomicStats {
				if e.sub.casClear(local) {
					wins++
				} else {
					ignored++
				}
			} else if e.sub.get(local) {
				e.sub.clear(local)
				wins++
			} else {
				ignored++
			}
		}
		m.h.finishBatchedFrees(c, wins, ignored)
		if retired > 0 {
			m.h.addStat(&m.h.stats.Retired, uint64(retired))
		}
		cm.free = cm.free[:0]
		return
	}
	wins := make([]int, len(m.sh.shards))
	ignored := make([]int, len(m.sh.shards))
	var retired []int
	for _, e := range cm.free {
		if !sync {
			if s := m.sh.shards[e.shard]; s != cm.owner && s.remote != nil &&
				s.remote.enqueue(e.sub.base+uint64(e.local)<<e.sub.shift, 0) {
				continue // the foreign owner will clear it at its next drain
			}
		}
		local := int(e.local)
		if e.sub.gens != nil {
			switch m.sh.shards[e.shard].genFreePlain(e.sub, local) {
			case genWin:
				e.sub.casClear(local)
				wins[e.shard]++
			case genRetireOut:
				if retired == nil {
					retired = make([]int, len(m.sh.shards))
				}
				retired[e.shard]++
			default:
				ignored[e.shard]++
			}
			continue
		}
		if e.sub.casClear(local) { // shards are always concurrent
			wins[e.shard]++
		} else {
			ignored[e.shard]++
		}
	}
	for i, s := range m.sh.shards {
		if wins[i] != 0 || ignored[i] != 0 {
			s.finishBatchedFrees(c, wins[i], ignored[i])
		}
		if retired != nil && retired[i] != 0 {
			s.addStat(&s.stats.Retired, uint64(retired[i]))
		}
	}
	cm.free = cm.free[:0]
}

// Drain publishes everything the magazine holds back: pending malloc
// statistics, buffered frees (applied in place, never rerouted to remote
// rings), and every unconsumed pre-claimed slot (returned to its heap:
// bit cleared, occupancy released — they were never served, so no free
// is counted). After a drain the backing heap's counters, bitmaps, and
// FreeSlots walks are exact up to frees earlier incremental flushes
// handed to remote-free rings; CheckInvariants drains magazines and then
// the rings, restoring full exactness at that barrier (heaps without
// Options.RemoteRing are exact after Drain alone, as before). The
// magazine remains usable; the next malloc simply refills.
func (m *Magazine) Drain() {
	for c := range m.classes {
		cm := &m.classes[c]
		m.publishMallocs(c, cm)
		m.flushFrees(c, cm, true)
		m.returnClaims(c, cm)
	}
}

// returnClaims hands unconsumed pre-claimed slots back to their owner.
func (m *Magazine) returnClaims(c int, cm *classMagazine) {
	if cm.next == len(cm.slots) {
		cm.slots = cm.slots[:0]
		cm.next = 0
		return
	}
	owner := cm.owner
	cl := &owner.classes[c]
	wins := 0
	retired := 0
	for _, p := range cm.slots[cm.next:] {
		_, sub, local := owner.find(p)
		if sub.gens != nil {
			// Tagged heap: the refill's claim bumped the slot odd, so the
			// return is a normal generation free-transition. A wild free
			// that stole the slot already transitioned it (and gave the
			// unit back); the lose branch skips it exactly as the
			// bit-test does below.
			switch owner.genFreePlain(sub, local) {
			case genWin:
				if owner.atomicStats {
					sub.casClear(local)
				} else {
					sub.clear(local)
				}
				wins++
			case genRetireOut:
				retired++
			}
			continue
		}
		if owner.atomicStats {
			if sub.casClear(local) {
				wins++
			}
		} else if sub.get(local) {
			sub.clear(local)
			wins++
		}
	}
	if retired > 0 {
		// Retired slots keep their bit and their occupancy unit forever;
		// they were never served, so nothing else is counted.
		owner.addStat(&owner.stats.Retired, uint64(retired))
	}
	// Only winners release occupancy: a pre-claimed slot stolen by a
	// wild free already gave its unit back at that free's flush.
	if wins > 0 {
		if owner.atomicStats {
			atomic.AddInt64(&cl.inUse, -int64(wins))
		} else {
			cl.inUse -= int64(wins)
		}
	}
	cm.slots = cm.slots[:0]
	cm.next = 0
}

// Close drains the magazine and unregisters it from its heap's drain
// barrier. The magazine must not be used afterwards.
func (m *Magazine) Close() {
	m.Drain()
	if m.sh != nil {
		m.sh.unregisterMagazine(m)
	} else {
		m.h.unregisterMagazine(m)
	}
}

// registerMagazine adds m to the heap's drain barrier.
func (h *Heap) registerMagazine(m *Magazine) {
	h.magMu.Lock()
	if h.magazines == nil {
		h.magazines = make(map[*Magazine]struct{})
	}
	h.magazines[m] = struct{}{}
	h.magMu.Unlock()
}

func (h *Heap) unregisterMagazine(m *Magazine) {
	h.magMu.Lock()
	delete(h.magazines, m)
	h.magMu.Unlock()
}

// DrainMagazines drains every magazine registered on this heap: the
// drain barrier detection audits and invariant checks run behind. Like
// the quiescent-exactness contract of CheckInvariants itself, the
// magazines' owner goroutines must not be mid-operation.
func (h *Heap) DrainMagazines() {
	h.magMu.Lock()
	mags := make([]*Magazine, 0, len(h.magazines))
	for m := range h.magazines {
		mags = append(mags, m)
	}
	h.magMu.Unlock()
	for _, m := range mags {
		m.Drain()
	}
}

// finishBatchedFrees publishes a flush batch's outcome for this heap:
// wins release occupancy and count as frees in one shot; losers are the
// §4.3 double frees, detected (their CAS found the bit already clear)
// and ignored.
func (h *Heap) finishBatchedFrees(c, wins, ignored int) {
	if wins > 0 {
		cl := &h.classes[c]
		if h.atomicStats {
			atomic.AddInt64(&cl.inUse, -int64(wins))
		} else {
			cl.inUse -= int64(wins)
		}
		h.addStat(&h.stats.WorkUnits, uint64(wins)*heap.WorkBitmap)
		if h.atomicStats {
			heap.CountFreeBatchAtomic(&h.stats, wins, uint64(wins)*uint64(cl.size))
		} else {
			heap.CountFreeBatch(&h.stats, wins, uint64(wins)*uint64(cl.size))
		}
	}
	if ignored > 0 {
		h.addStat(&h.stats.IgnoredFrees, uint64(ignored))
	}
}

// reserveBatch claims up to want units of class occupancy (at least
// one) with one bounded CAS increment — the batched analog of reserve:
// the threshold test and the whole batch increment are one atomic step,
// so the 1/M invariant holds at every instant. At the threshold it
// takes whatever partial batch remains, grows (adaptive heaps), or
// reports out of memory.
func (h *Heap) reserveBatch(c, want int) (int, error) {
	cl := &h.classes[c]
	replays := 0
	for {
		cur := atomic.LoadInt64(&cl.inUse)
		if avail := cl.maxInUse.Load() - cur; avail > 0 {
			take := int64(want)
			if take > avail {
				take = avail
			}
			if !h.atomicStats {
				cl.inUse = cur + take
				return int(take), nil
			}
			if atomic.CompareAndSwapInt64(&cl.inUse, cur, cur+take) {
				if replays > 0 {
					h.addStat(&h.stats.CASRetries, uint64(replays))
				}
				return int(take), nil
			}
			replays++
			backoffSpin(replays, uint32(cur))
			continue
		}
		// At threshold: absorb queued remote frees before growing or
		// failing, exactly as reserve does (DESIGN.md §12).
		if h.remote != nil && h.drainRemote(c) > 0 {
			continue
		}
		if !h.opts.Adaptive {
			return 0, heap.ErrOutOfMemory
		}
		if err := h.growClass(c); err != nil {
			return 0, err
		}
	}
}

// magazineRefill claims up to want slots of class c for a magazine:
// one batched occupancy reservation, then slots drawn and claimed
// one-by-one against a register-resident copy of the class stream
// (rng.Batch) — each draw seeing its batch predecessors' bits exactly
// as the unbatched probe loop would — and the whole advance published
// with a single CAS. If that CAS loses, a racing consumer advanced the
// stream first: the claims are undone and the refill replays from the
// fresh state (with backoff; losses surface in Stats.CASRetries), so a
// committed refill is always a contiguous prefix of the class stream.
// At one goroutine the CAS never loses, which makes the sequence of
// claimed slots bit-identical to want back-to-back unbatched mallocs.
func (h *Heap) magazineRefill(c, want int, out *[]heap.Ptr, scratch *[]int32) (int, error) {
	// Refill is the owner's natural housekeeping point: apply whatever
	// the remote-free ring has accumulated (opportunistically — if
	// another goroutine is mid-drain, skip) before reserving occupancy,
	// so queued frees keep feeding the classes being refilled.
	h.tryDrainRemote()
	cl := &h.classes[c]
	got, err := h.reserveBatch(c, want)
	if err != nil {
		h.addStat(&h.stats.FailedMallocs, 1)
		return 0, err
	}
	// idxs remembers each claim's class-wide slot index for undo on a
	// lost publication CAS; slots accumulates the handed-out addresses
	// in draw order. Both live in caller-owned scratch (idxs holds no
	// pointers), so a steady-state refill allocates nothing.
	idxs := (*scratch)[:0]
	slots := (*out)[:0]
	probes := 0
	replays := 0
	for {
		regs := cl.regions.Load()
		n := uint32(regs.totalSlots)
		single := len(regs.subs) == 1
		rejectBelow := -n % n
		b := rng.StartBatch(atomic.LoadUint64(&cl.randState))
		idxs = idxs[:0]
		slots = slots[:0]
		overflowed := false
		probeCap := 64*regs.totalSlots + 64
		if single && !h.atomicStats {
			// Every non-adaptive sequential heap: one subregion, no
			// fences — the bitmap words are addressed directly and the
			// whole claim loop runs register-to-register, mirroring
			// mallocLocked's specialized inner loop.
			sub := regs.subs[0]
			bitsW := sub.bits
			gensW := sub.gens
			base, shift := sub.base, cl.shift
			for len(idxs) < got {
				if probes >= probeCap {
					overflowed = true
					break
				}
				probes++
				// Lemire multiply-shift with rejection on the batch
				// cursor: the identical draw stream to the unbatched
				// probe loops (b.Next inlines to rng.Step).
				m := uint64(b.Next()) * uint64(n)
				for uint32(m) < rejectBelow {
					m = uint64(b.Next()) * uint64(n)
				}
				local := int(m >> 32)
				w, bit := local>>6, uint64(1)<<(local&63)
				if bitsW[w]&bit != 0 {
					continue
				}
				// Claim as drawn, so each draw probes the bitmap state
				// its unbatched twin would see.
				bitsW[w] |= bit
				if gensW != nil {
					gensW[local]++ // tagged claim bump, sequential engine
				}
				idxs = append(idxs, int32(local))
				slots = append(slots, base+uint64(local)<<shift)
			}
		} else {
			for len(idxs) < got {
				if probes >= probeCap {
					overflowed = true
					break
				}
				probes++
				m := uint64(b.Next()) * uint64(n)
				for uint32(m) < rejectBelow {
					m = uint64(b.Next()) * uint64(n)
				}
				idx := int(m >> 32)
				sub, local := regs.subs[0], idx
				if !single {
					sub, local = regs.locate(idx)
				}
				if h.atomicStats {
					if !sub.casSet(local) {
						continue
					}
				} else {
					if sub.get(local) {
						continue
					}
					sub.set(local)
				}
				h.genClaim(sub, local)
				idxs = append(idxs, int32(idx))
				slots = append(slots, sub.base+uint64(local)<<cl.shift)
			}
		}
		if overflowed {
			// Metadata-accounting failure (the same astronomically
			// unlikely guard the unbatched loop carries): undo and
			// release everything this refill holds. Claims that retired
			// at undo keep their occupancy unit.
			retired := h.undoClaims(regs, idxs)
			if h.atomicStats {
				atomic.AddInt64(&cl.inUse, -int64(got-retired))
			} else {
				cl.inUse -= int64(got - retired)
			}
			return 0, &heap.CorruptionError{Detail: "diehard: no free slot found below fill threshold"}
		}
		if !h.atomicStats {
			cl.randState = b.State()
			cl.mallocs += uint64(got)
			break
		}
		if atomic.CompareAndSwapUint64(&cl.randState, b.Start(), b.State()) {
			atomic.AddUint64(&cl.mallocs, uint64(got))
			break
		}
		// A racing consumer advanced the stream: this batch's draws are
		// no longer the stream prefix, so un-claim and replay. A claim
		// that retired at undo keeps its unit; shrink the batch so the
		// replay's claims still balance the original reservation.
		got -= h.undoClaims(regs, idxs)
		replays++
		backoffSpin(replays, uint32(b.State()))
	}
	if replays > 0 {
		h.addStat(&h.stats.CASRetries, uint64(replays))
	}
	*out = slots
	*scratch = idxs
	h.addStat(&h.stats.Probes, uint64(probes))
	h.addStat(&h.stats.WorkUnits,
		uint64(got)*(heap.WorkSizeClass+heap.WorkBitmap)+uint64(probes)*heap.WorkProbe)
	return got, nil
}

// undoClaims releases the bitmap bits of an abandoned refill attempt,
// resolving each claim's class-wide index against the region list the
// claims were made under. On tagged heaps each undo is a generation
// free-transition (the claim bumped the slot odd): a wild free that
// stole the claim in the meantime already transitioned it, and a slot
// at the generation ceiling retires — the returned count tells the
// caller how many occupancy units stay permanently consumed.
func (h *Heap) undoClaims(regs *classRegions, idxs []int32) int {
	single := len(regs.subs) == 1
	retired := 0
	for _, idx := range idxs {
		sub, local := regs.subs[0], int(idx)
		if !single {
			sub, local = regs.locate(int(idx))
		}
		if sub.gens != nil {
			switch h.genFreePlain(sub, local) {
			case genWin:
				if h.atomicStats {
					sub.casClear(local)
				} else {
					sub.clear(local)
				}
			case genRetireOut:
				retired++
			}
			continue
		}
		if h.atomicStats {
			sub.casClear(local)
		} else {
			sub.clear(local)
		}
	}
	if retired > 0 {
		h.addStat(&h.stats.Retired, uint64(retired))
	}
	return retired
}
