// Package core implements the DieHard randomized memory allocator, the
// primary contribution of Berger & Zorn, "DieHard: Probabilistic Memory
// Safety for Unsafe Languages" (PLDI 2006), §4.
//
// The allocator approximates an infinite heap: the heap is M times larger
// than the maximum live size, objects are placed uniformly at random
// within power-of-two size-class regions, and all heap metadata (one bit
// per object plus counters) is completely segregated from the heap
// itself. The resulting guarantees are probabilistic and quantified in
// internal/analysis:
//
//   - buffer overflows land on free space with probability (F/H)^O
//     (Theorem 1);
//   - a prematurely freed object survives A intervening allocations with
//     probability at least 1 - A/(F/S) (Theorem 2);
//   - invalid and double frees are detected and ignored outright;
//   - heap metadata cannot be overwritten by heap writes at all.
//
// In replicated mode (Options.RandomFill) the heap and every allocated
// object are filled with values from the replica's private random stream,
// which is what lets the voter in internal/replicate detect uninitialized
// reads (§3.2, Theorem 3).
//
// Concurrency (DESIGN.md §7): allocator metadata operations are
// goroutine-safe. Each size class carries its own mutex and its own
// random stream, so mallocs in different classes never contend, and the
// page index that resolves pointers for Free/SizeOf/ObjectBounds is read
// lock-free. Concurrent use requires Options.Concurrent, which switches
// the aggregate Stats and the space's access accounting to atomic
// updates; heaps built without it keep unsynchronized counters and must
// be confined to one goroutine at a time, as the sequential experiment
// trials are. The structural metadata — bitmaps, occupancy, the random
// streams — is guarded by the per-class locks unconditionally.
package core

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"diehard/internal/heap"
	"diehard/internal/rng"
	"diehard/internal/vmem"
)

const (
	// NumClasses is the number of size-class regions: powers of two from
	// 8 bytes to 16 kilobytes (§4.1).
	NumClasses = 12
	// MinObjectSize is the smallest size class.
	MinObjectSize = 8
	// MaxObjectSize is the largest size served from the randomized
	// regions; larger requests are mmap'd directly with guard pages.
	MaxObjectSize = 16 * 1024
	// DefaultHeapSize matches the paper's evaluation configuration: a
	// 384 MB heap of which up to 1/M is available for allocation (§7.1).
	DefaultHeapSize = 384 << 20
	// DefaultM is the default heap expansion factor.
	DefaultM = 2.0
)

// Options configures a DieHard heap. The zero value selects the paper's
// defaults (384 MB heap, M = 2, stand-alone mode, entropy seed).
type Options struct {
	// HeapSize is the total size of the small-object heap, divided
	// evenly into NumClasses regions. Defaults to DefaultHeapSize.
	HeapSize int
	// M is the heap expansion factor: each region may become at most
	// 1/M full. Must be greater than 1. Defaults to DefaultM.
	M float64
	// Seed seeds the allocator's random stream; 0 draws a true random
	// seed, as the paper does from /dev/urandom. Replicas record their
	// seeds so failures are reproducible.
	Seed uint64
	// RandomFill enables replicated-mode semantics: the heap and every
	// allocated object are filled with random values (§4.1, §4.2).
	RandomFill bool
	// Adaptive enables the paper's future-work extension (§9): regions
	// start small and double on demand up to the per-class cap, trading
	// early error-masking probability for reserved address space.
	Adaptive bool
	// AdaptiveInitial is the initial per-class region size in bytes when
	// Adaptive is set. Defaults to 256 KB.
	AdaptiveInitial int
	// EnableTLB turns on TLB simulation in the underlying address space,
	// used by the Figure 5 cost model. TLB accounting models a single
	// hardware context; it is incompatible with Concurrent.
	EnableTLB bool
	// Concurrent prepares the heap for use by multiple goroutines at
	// once: allocator statistics are maintained atomically and the
	// underlying space counts accesses atomically (vmem.StatsShared).
	// Structural metadata is lock-guarded regardless; Concurrent is
	// about the counters, and sequential heaps skip its atomics.
	Concurrent bool
	// OnAlloc, when non-nil, is invoked after every successful
	// allocation with the object's address, the requested size, and the
	// size of the backing slot (the size-class object size, or the
	// page-rounded usable size for large objects). It runs on the
	// allocating goroutine, outside the class locks, before the pointer
	// is returned — so a detection engine (internal/detect) can audit
	// and re-arm canaries before the program can touch the object. The
	// heap does not synchronize hook invocations; heaps with hooks
	// installed must be confined to one goroutine at a time.
	OnAlloc func(p heap.Ptr, reqSize, slotSize int)
	// OnFree, when non-nil, is invoked after every successful free
	// (ignored invalid and double frees do not fire it) with the freed
	// object's address and slot size. For large objects the backing
	// mapping has already been unmapped when the hook runs; the hook can
	// tell them apart because their OnAlloc reported reqSize >
	// MaxObjectSize.
	OnFree func(p heap.Ptr, slotSize int)
}

func (o *Options) withDefaults() Options {
	v := *o
	if v.HeapSize == 0 {
		v.HeapSize = DefaultHeapSize
	}
	if v.M == 0 {
		v.M = DefaultM
	}
	if v.AdaptiveInitial == 0 {
		v.AdaptiveInitial = 256 << 10
	}
	return v
}

// subregion is one mapped stretch of a size class. Non-adaptive heaps
// have exactly one subregion per class; adaptive heaps append doubled
// subregions as demand grows. The class back-pointer and the shift
// duplicate (log2 of the class's object size) let a pointer-to-
// subregion resolved through the page index compute its slot without a
// second indirection. The bitmap is guarded by the owning class's
// mutex; base, slots, and shift are immutable after construction.
type subregion struct {
	base  uint64
	slots int
	bits  []uint64 // allocation bitmap: one bit per slot, segregated metadata
	cl    *sizeClass
	shift uint
}

func (s *subregion) get(i int) bool { return s.bits[i>>6]&(1<<(i&63)) != 0 }
func (s *subregion) set(i int)      { s.bits[i>>6] |= 1 << (i & 63) }
func (s *subregion) clear(i int)    { s.bits[i>>6] &^= 1 << (i & 63) }

// sizeClass holds the segregated metadata for one power-of-two region.
// Each class is an independent lock domain: its mutex guards the bitmap,
// the occupancy counters, and the class's private random stream, so
// concurrent mallocs in different classes proceed without contention —
// the fine-grained analog of Hoard's per-heap locks.
type sizeClass struct {
	mu      sync.Mutex
	rand    rng.MWC // per-class probe/fill stream; under mu
	fillBuf []byte  // RandomFill staging; under mu

	size       int
	shift      uint   // log2(size), for divisions on the hot path
	mask       uint64 // size - 1, for alignment checks on the hot path
	subs       []*subregion
	totalSlots int
	inUse      int
	maxInUse   int // threshold: floor(totalSlots / M)
	capSlots   int // adaptive growth stops here
	mallocs    uint64
}

// largeObject records an mmap'd allocation (> MaxObjectSize), which lives
// outside the main heap behind guard pages.
type largeObject struct {
	size      int    // requested (usable) size
	mapBase   uint64 // start of the guarded mapping
	mapLength int    // total mapped length including guard pages
}

// pageIndex resolves a page number to its subregion in O(1): the
// allocator-level analog of the vmem radix table. Entry (pn - basePn)
// points at the subregion owning that page, or is nil for pages that
// belong to no small-object subregion (holes, guards, large objects).
// The table is immutable once published; growth publishes a copy, so
// Free, SizeOf, ObjectBounds, and InHeap read it lock-free.
type pageIndex struct {
	basePn uint64
	subs   []*subregion
}

// Heap is a DieHard heap. Metadata operations are safe for concurrent
// use by multiple goroutines; see Options.Concurrent for concurrent data
// access. Each simulated process still typically owns its own Heap, just
// as each DieHard replica owns its own randomized allocator.
type Heap struct {
	opts        Options
	space       *vmem.Space
	seed        uint64
	atomicStats bool // Concurrent heaps maintain stats atomically
	classes     [NumClasses]sizeClass
	stats       heap.Stats

	largeMu   sync.Mutex
	large     map[heap.Ptr]largeObject
	largeRand rng.MWC // fill stream for large objects; under largeMu
	largeBuf  []byte  // under largeMu

	idxMu   sync.Mutex // serializes pageIdx publication
	pageIdx atomic.Pointer[pageIndex]
}

var _ heap.Allocator = (*Heap)(nil)

// addStat bumps a stats counter: atomically for Concurrent heaps, with a
// plain add otherwise — sequential trials keep their unsynchronized
// speed, concurrent heaps stay exact under -race.
func (h *Heap) addStat(p *uint64, n uint64) {
	if h.atomicStats {
		atomic.AddUint64(p, n)
	} else {
		*p += n
	}
}

func (h *Heap) countMalloc(size, rounded int) {
	if h.atomicStats {
		heap.CountMallocAtomic(&h.stats, size, rounded)
	} else {
		heap.CountMalloc(&h.stats, size, rounded)
	}
}

func (h *Heap) countFree(rounded int) {
	if h.atomicStats {
		heap.CountFreeAtomic(&h.stats, rounded)
	} else {
		heap.CountFree(&h.stats, rounded)
	}
}

// New creates a DieHard heap with the given options.
func New(opts Options) (*Heap, error) {
	return newHeap(opts, nil)
}

// newHeap builds a heap, either with its own address space (space ==
// nil) or inside a caller-provided shared space (ShardedHeap), whose
// stats mode and fillers the caller manages.
func newHeap(opts Options, space *vmem.Space) (*Heap, error) {
	o := opts.withDefaults()
	if o.M <= 1 {
		return nil, fmt.Errorf("diehard: M must exceed 1, got %v", o.M)
	}
	if o.EnableTLB && o.Concurrent {
		return nil, fmt.Errorf("diehard: TLB simulation is sequential and cannot be combined with Concurrent")
	}
	perClass := o.HeapSize / NumClasses
	perClass -= perClass % vmem.PageSize
	if perClass < vmem.PageSize {
		return nil, fmt.Errorf("diehard: heap size %d too small for %d regions", o.HeapSize, NumClasses)
	}
	h := &Heap{
		opts:        o,
		space:       space,
		atomicStats: o.Concurrent,
		large:       make(map[heap.Ptr]largeObject),
	}
	if h.space == nil {
		h.space = vmem.NewSpace()
		if o.Concurrent {
			h.space.SetStatsMode(vmem.StatsShared)
		}
		if o.EnableTLB {
			h.space.EnableTLB()
		}
	}
	master := rng.NewSeeded(o.Seed)
	if o.Seed == 0 {
		master = rng.New()
	}
	h.seed = master.Seed()
	if o.RandomFill && space == nil {
		// Realize "fill the heap with random values" (§4.1) lazily:
		// every page instantiated in this replica's address space is
		// pre-filled from a stream derived from the allocator seed.
		fillRNG := master.Split()
		h.space.SetPageFiller(func(b []byte) {
			for i := 0; i+4 <= len(b); i += 4 {
				binary.LittleEndian.PutUint32(b[i:], fillRNG.Next())
			}
		})
	}

	for c := 0; c < NumClasses; c++ {
		size := MinObjectSize << c
		capSlots := perClass / size
		cl := &h.classes[c]
		cl.size = size
		cl.shift = uint(bits.TrailingZeros(uint(size)))
		cl.mask = uint64(size - 1)
		cl.capSlots = capSlots
		// Every class draws from its own stream, deterministically
		// derived from the master seed, so the probe sequence of one
		// class is independent of activity in the others — the property
		// that keeps per-class locking deterministic per allocation
		// sequence.
		cl.rand = *master.Split()
		initial := capSlots
		if o.Adaptive {
			initial = o.AdaptiveInitial / size
			if initial < 1 {
				initial = 1
			}
			if initial > capSlots {
				initial = capSlots
			}
		}
		if err := h.addSubregion(c, initial); err != nil {
			return nil, err
		}
	}
	h.largeRand = *master.Split()
	return h, nil
}

// addSubregion maps a new stretch of slots for class c, recomputes the
// 1/M threshold, and registers the new pages in the page index. The
// caller holds the class mutex (or is the constructor).
func (h *Heap) addSubregion(c, slots int) error {
	cl := &h.classes[c]
	bytes := slots * cl.size
	if bytes < vmem.PageSize {
		bytes = vmem.PageSize
		slots = bytes / cl.size
	}
	base, err := h.space.MapGuarded(bytes)
	if err != nil {
		return err
	}
	h.addStat(&h.stats.WorkUnits, heap.WorkMmap)
	sub := &subregion{
		base:  base,
		slots: slots,
		bits:  make([]uint64, (slots+63)/64),
		cl:    cl,
		shift: cl.shift,
	}
	cl.subs = append(cl.subs, sub)
	cl.totalSlots += slots
	cl.maxInUse = int(float64(cl.totalSlots) / h.opts.M)
	h.indexSubregion(sub, base, uint64(slots)<<cl.shift)
	return nil
}

// indexSubregion records every page of [base, base+bytes) in the page
// index. The published table is immutable; this builds and publishes a
// copy, serialized by idxMu so concurrent growth in different classes
// cannot lose updates. Subregion bases are handed out in increasing
// address order, so the table only ever grows at the high end; pages
// mapped in between for other purposes (guards, large objects) stay nil.
func (h *Heap) indexSubregion(sub *subregion, base, bytes uint64) {
	h.idxMu.Lock()
	defer h.idxMu.Unlock()
	startPn := base / vmem.PageSize
	endPn := (base + bytes + vmem.PageSize - 1) / vmem.PageSize
	cur := h.pageIdx.Load()
	next := &pageIndex{basePn: startPn}
	if cur != nil {
		next.basePn = cur.basePn
	}
	// The new table must cover both the new subregion and everything
	// already published: under concurrent adaptive growth, the class
	// that mapped the lower addresses may publish after the one that
	// mapped the higher ones, so endPn alone can be short of the
	// current coverage.
	need := endPn - next.basePn
	if cur != nil && uint64(len(cur.subs)) > need {
		need = uint64(len(cur.subs))
	}
	grown := make([]*subregion, need)
	if cur != nil {
		copy(grown, cur.subs)
	}
	next.subs = grown
	for pn := startPn; pn < endPn; pn++ {
		next.subs[pn-next.basePn] = sub
	}
	h.pageIdx.Store(next)
}

// ClassFor returns the size-class index for a request: ceil(log2(size))-3
// (§4.2), with requests below MinObjectSize rounded up to class 0.
func ClassFor(size int) int {
	if size <= MinObjectSize {
		return 0
	}
	return bits.Len(uint(size-1)) - 3
}

// ClassSize returns the object size of class c.
func ClassSize(c int) int { return MinObjectSize << c }

// Malloc allocates size bytes, placing the object uniformly at random
// within its size class region (DieHardMalloc, Figure 2 of the paper).
// Safe for concurrent use; mallocs in different size classes do not
// contend.
func (h *Heap) Malloc(size int) (heap.Ptr, error) {
	if size < 0 {
		h.addStat(&h.stats.FailedMallocs, 1)
		return heap.Null, fmt.Errorf("diehard: negative allocation size %d", size)
	}
	if size == 0 {
		size = 1 // malloc(0) returns a distinct pointer, as in C
	}
	if size > MaxObjectSize {
		return h.allocateLargeObject(size)
	}
	c := ClassFor(size)
	cl := &h.classes[c]
	cl.mu.Lock()
	if cl.inUse >= cl.maxInUse {
		if h.opts.Adaptive && cl.totalSlots < cl.capSlots {
			grow := cl.totalSlots
			if cl.totalSlots+grow > cl.capSlots {
				grow = cl.capSlots - cl.totalSlots
			}
			if err := h.addSubregion(c, grow); err != nil {
				cl.mu.Unlock()
				h.addStat(&h.stats.FailedMallocs, 1)
				return heap.Null, err
			}
		} else {
			// At threshold: no more memory (Figure 2, line 6).
			cl.mu.Unlock()
			h.addStat(&h.stats.FailedMallocs, 1)
			return heap.Null, heap.ErrOutOfMemory
		}
	}
	// Probe for a free slot. The region is at most 1/M full, so the
	// expected number of probes is 1/(1 - 1/M): two for M = 2 (§4.2).
	// The cap guards against metadata-accounting bugs, not against bad
	// luck; it is astronomically unlikely to trigger when invariants
	// hold. The single-subregion case (every non-adaptive heap) runs a
	// specialized loop; probes are accounted in bulk afterwards.
	probeCap := 64*cl.totalSlots + 64
	n := uint32(cl.totalSlots)
	sub := cl.subs[0]
	var local int
	probes := 0
	if len(cl.subs) == 1 {
		// Single-subregion fast loop: generator state in a local so the
		// probe iterations run register-to-register; the reduction is
		// the same Lemire multiply-shift-with-rejection as rng.Uint32n,
		// so the draw stream is identical.
		rr := cl.rand
		rejectBelow := -n % n
		for {
			if probes == probeCap {
				cl.rand = rr
				cl.mu.Unlock()
				return heap.Null, &heap.CorruptionError{Detail: "diehard: no free slot found below fill threshold"}
			}
			probes++
			m := uint64(rr.Next()) * uint64(n)
			for uint32(m) < rejectBelow {
				m = uint64(rr.Next()) * uint64(n)
			}
			local = int(m >> 32)
			if sub.bits[local>>6]&(1<<(local&63)) == 0 {
				break
			}
		}
		cl.rand = rr
	} else {
		for {
			if probes == probeCap {
				cl.mu.Unlock()
				return heap.Null, &heap.CorruptionError{Detail: "diehard: no free slot found below fill threshold"}
			}
			probes++
			sub, local = cl.locate(int(cl.rand.Uint32n(n)))
			if !sub.get(local) {
				break
			}
		}
	}
	sub.set(local)
	cl.inUse++
	cl.mallocs++
	ptr := sub.base + uint64(local)<<cl.shift
	var fillErr error
	if h.opts.RandomFill {
		// Fill under the class lock, from the class stream: each
		// class's sequence of fill values is deterministic in its own
		// allocation order (Figure 2, DieHardMalloc lines 18-20).
		fillErr = h.fillRandom(&cl.rand, &cl.fillBuf, ptr, cl.size)
	}
	cl.mu.Unlock()
	if fillErr != nil {
		return heap.Null, fillErr
	}
	h.addStat(&h.stats.Probes, uint64(probes))
	h.addStat(&h.stats.WorkUnits,
		heap.WorkSizeClass+uint64(probes)*heap.WorkProbe+heap.WorkBitmap)
	h.countMalloc(size, cl.size)
	if h.opts.OnAlloc != nil {
		h.opts.OnAlloc(ptr, size, cl.size)
	}
	return ptr, nil
}

// locate maps a class-wide slot index to its subregion and local index.
// Non-adaptive heaps always hit the single-subregion fast path.
func (cl *sizeClass) locate(idx int) (*subregion, int) {
	if idx < cl.subs[0].slots {
		return cl.subs[0], idx
	}
	idx -= cl.subs[0].slots
	for i := 1; i < len(cl.subs); i++ {
		if idx < cl.subs[i].slots {
			return cl.subs[i], idx
		}
		idx -= cl.subs[i].slots
	}
	panic("diehard: slot index out of range") // unreachable when invariants hold
}

// fillRandom fills an allocated object with random values drawn from the
// given stream (Figure 2, DieHardMalloc lines 18-20). The caller holds
// the lock guarding r and buf.
func (h *Heap) fillRandom(r *rng.MWC, buf *[]byte, ptr heap.Ptr, n int) error {
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	b := (*buf)[:n]
	for i := 0; i+4 <= n; i += 4 {
		binary.LittleEndian.PutUint32(b[i:], r.Next())
	}
	for i := n &^ 3; i < n; i++ {
		b[i] = byte(r.Next())
	}
	h.addStat(&h.stats.WorkUnits, uint64(n/8+1)*heap.WorkRandomFill)
	return h.space.WriteBytes(ptr, b)
}

// allocateLargeObject serves requests above MaxObjectSize from a
// dedicated guarded mapping and records it for validity checking by Free
// (§4.1, §4.3).
func (h *Heap) allocateLargeObject(size int) (heap.Ptr, error) {
	npages := (size + vmem.PageSize - 1) / vmem.PageSize
	h.largeMu.Lock()
	base, err := h.space.MapGuarded(size)
	if err != nil {
		h.largeMu.Unlock()
		h.addStat(&h.stats.FailedMallocs, 1)
		return heap.Null, err
	}
	h.large[base] = largeObject{
		size:      size,
		mapBase:   base - vmem.PageSize,
		mapLength: (npages + 2) * vmem.PageSize,
	}
	var fillErr error
	if h.opts.RandomFill {
		fillErr = h.fillRandom(&h.largeRand, &h.largeBuf, base, size)
	}
	h.largeMu.Unlock()
	if fillErr != nil {
		return heap.Null, fillErr
	}
	h.addStat(&h.stats.WorkUnits, heap.WorkMmap)
	h.countMalloc(size, npages*vmem.PageSize)
	if h.opts.OnAlloc != nil {
		h.opts.OnAlloc(base, size, npages*vmem.PageSize)
	}
	return base, nil
}

// Free releases an allocation (DieHardFree, Figure 2). Invalid and double
// frees are detected and silently ignored: the offset must be an exact
// multiple of the object size, and the object must currently be marked
// allocated. Free never fails. Safe for concurrent use.
func (h *Heap) Free(p heap.Ptr) error {
	if p == heap.Null {
		return nil // free(NULL) is a no-op in C
	}
	cl, sub, local := h.find(p)
	if cl == nil {
		h.largeMu.Lock()
		if lo, ok := h.large[p]; ok {
			if err := h.space.Unmap(lo.mapBase, lo.mapLength); err != nil {
				h.largeMu.Unlock()
				return err // cannot happen unless internal state is corrupt
			}
			delete(h.large, p)
			h.largeMu.Unlock()
			h.addStat(&h.stats.WorkUnits, heap.WorkMmap)
			h.countFree((lo.mapLength/vmem.PageSize - 2) * vmem.PageSize)
			if h.opts.OnFree != nil {
				h.opts.OnFree(p, (lo.mapLength/vmem.PageSize-2)*vmem.PageSize)
			}
			return nil
		}
		h.largeMu.Unlock()
		h.addStat(&h.stats.IgnoredFrees, 1) // not our pointer: ignore (§4.3)
		return nil
	}
	if (p-sub.base)&cl.mask != 0 {
		h.addStat(&h.stats.IgnoredFrees, 1) // misaligned interior pointer: ignore
		return nil
	}
	cl.mu.Lock()
	if !sub.get(local) {
		cl.mu.Unlock()
		h.addStat(&h.stats.IgnoredFrees, 1) // double free: ignore
		return nil
	}
	sub.clear(local)
	cl.inUse--
	cl.mu.Unlock()
	h.addStat(&h.stats.WorkUnits, heap.WorkBitmap)
	h.countFree(cl.size)
	if h.opts.OnFree != nil {
		h.opts.OnFree(p, cl.size)
	}
	return nil
}

// find locates the size class, subregion, and slot index containing p in
// O(1) through the page index, which is read lock-free. The slot index
// is the floor of the offset; the caller checks alignment.
func (h *Heap) find(p heap.Ptr) (*sizeClass, *subregion, int) {
	idx := h.pageIdx.Load()
	if idx == nil {
		return nil, nil, 0
	}
	pn := p/vmem.PageSize - idx.basePn
	if pn >= uint64(len(idx.subs)) { // also catches p below the heap (wraps)
		return nil, nil, 0
	}
	sub := idx.subs[pn]
	if sub == nil {
		return nil, nil, 0
	}
	off := p - sub.base
	if off >= uint64(sub.slots)<<sub.shift {
		// Tail of the subregion's last page: mapped, but no slot.
		return nil, nil, 0
	}
	return sub.cl, sub, int(off >> sub.shift)
}

// SizeOf reports the usable size of the allocated object starting exactly
// at p.
func (h *Heap) SizeOf(p heap.Ptr) (int, bool) {
	h.largeMu.Lock()
	if lo, ok := h.large[p]; ok {
		h.largeMu.Unlock()
		return lo.size, true
	}
	h.largeMu.Unlock()
	cl, sub, local := h.find(p)
	if cl == nil || (p-sub.base)&cl.mask != 0 {
		return 0, false
	}
	cl.mu.Lock()
	live := sub.get(local)
	cl.mu.Unlock()
	if !live {
		return 0, false
	}
	return cl.size, true
}

// ObjectBounds resolves any pointer into the heap (including interior
// pointers) to the containing allocated object's start and size. This is
// the primitive behind DieHard's checked replacements for strcpy and
// strncpy (§4.4): the available space from a destination pointer to the
// end of its object bounds the copy length.
func (h *Heap) ObjectBounds(p heap.Ptr) (start heap.Ptr, size int, ok bool) {
	h.largeMu.Lock()
	for base, lo := range h.large {
		if p >= base && p < base+uint64(lo.size) {
			h.largeMu.Unlock()
			return base, lo.size, true
		}
	}
	h.largeMu.Unlock()
	cl, sub, local := h.find(p)
	if cl == nil {
		return 0, 0, false
	}
	cl.mu.Lock()
	live := sub.get(local)
	cl.mu.Unlock()
	if !live {
		return 0, 0, false
	}
	return sub.base + uint64(local)<<cl.shift, cl.size, true
}

// SlotAt resolves any address inside the small-object heap to its
// containing slot: the slot's base address, its size-class object size,
// and whether it currently holds a live object. This is the O(1)
// page-index primitive behind the detection engine's neighbor lookups
// (internal/detect): evidence records name the nearest live and free
// slots around a damaged byte. ok is false for addresses outside the
// small-object subregions (holes, guards, large objects).
func (h *Heap) SlotAt(addr heap.Ptr) (base heap.Ptr, size int, live, ok bool) {
	cl, sub, local := h.find(addr)
	if cl == nil {
		return 0, 0, false, false
	}
	cl.mu.Lock()
	live = sub.get(local)
	cl.mu.Unlock()
	return sub.base + uint64(local)<<cl.shift, cl.size, live, true
}

// FreeSlots calls fn with the base address of every currently free slot
// of class c, in ascending address order, until fn returns false. The
// class bitmaps are snapshotted under the class lock and walked outside
// it, so fn may access heap memory freely; the snapshot is a consistent
// point-in-time view. The detection engine's full-heap canary sweep is
// built on this walk.
func (h *Heap) FreeSlots(c int, fn func(p heap.Ptr) bool) {
	cl := &h.classes[c]
	cl.mu.Lock()
	type snap struct {
		base  uint64
		slots int
		bits  []uint64
	}
	snaps := make([]snap, len(cl.subs))
	for i, sub := range cl.subs {
		snaps[i] = snap{base: sub.base, slots: sub.slots, bits: append([]uint64(nil), sub.bits...)}
	}
	shift := cl.shift
	cl.mu.Unlock()
	for _, s := range snaps {
		for i := 0; i < s.slots; i++ {
			if s.bits[i>>6]&(1<<(i&63)) == 0 {
				if !fn(s.base + uint64(i)<<shift) {
					return
				}
			}
		}
	}
}

// InHeap reports whether p lies within the small-object heap regions,
// the first test of the checked library functions (§4.4). Lock-free.
func (h *Heap) InHeap(p heap.Ptr) bool {
	cl, _, _ := h.find(p)
	return cl != nil
}

// ownsLarge reports whether p is a live large object of this heap,
// used by ShardedHeap to route frees to the owning shard.
func (h *Heap) ownsLarge(p heap.Ptr) bool {
	h.largeMu.Lock()
	_, ok := h.large[p]
	h.largeMu.Unlock()
	return ok
}

// Mem returns the simulated address space backing this heap.
func (h *Heap) Mem() *vmem.Space { return h.space }

// Stats returns the allocator counters, updated in place (atomically
// when the heap is Concurrent); under concurrent use, read them only at
// quiescence.
func (h *Heap) Stats() *heap.Stats { return &h.stats }

// Name identifies the allocator in experiment reports.
func (h *Heap) Name() string {
	if h.opts.RandomFill {
		return "diehard-r"
	}
	return "diehard"
}

// Seed returns the seed of the allocator's random stream, recorded so any
// run can be reproduced exactly.
func (h *Heap) Seed() uint64 { return h.seed }

// M returns the configured heap expansion factor.
func (h *Heap) M() float64 { return h.opts.M }

// ClassSlots returns the total and maximum-usable slot counts of class c,
// exposed for the analytical validation experiments.
func (h *Heap) ClassSlots(c int) (total, maxInUse int) {
	cl := &h.classes[c]
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.totalSlots, cl.maxInUse
}

// ClassInUse returns the number of live objects in class c.
func (h *Heap) ClassInUse(c int) int {
	cl := &h.classes[c]
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.inUse
}

// ClassMallocs returns the cumulative allocation count of class c,
// exposed for workload-characterization experiments (e.g. verifying the
// wide size mix of the 300.twolf analog).
func (h *Heap) ClassMallocs(c int) uint64 {
	cl := &h.classes[c]
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.mallocs
}

// ClassBase returns the base address of the first subregion of class c,
// exposed for tests that aim overflow writes at precise heap locations.
func (h *Heap) ClassBase(c int) heap.Ptr {
	cl := &h.classes[c]
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.subs[0].base
}

// LargeObjects returns the number of live large objects.
func (h *Heap) LargeObjects() int {
	h.largeMu.Lock()
	defer h.largeMu.Unlock()
	return len(h.large)
}

// CheckInvariants verifies the segregated metadata against itself: per-
// class live counts match bitmap population, thresholds are respected,
// and subregion accounting is consistent. Property tests call this after
// randomized (including concurrent) workloads; each class is checked
// under its own lock.
func (h *Heap) CheckInvariants() error {
	for c := range h.classes {
		cl := &h.classes[c]
		cl.mu.Lock()
		err := cl.checkLocked(c)
		cl.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

func (cl *sizeClass) checkLocked(c int) error {
	pop := 0
	slots := 0
	for s := range cl.subs {
		sub := cl.subs[s]
		slots += sub.slots
		for _, w := range sub.bits {
			pop += bits.OnesCount64(w)
		}
		// Bits beyond the slot count must be zero.
		if tail := sub.slots & 63; tail != 0 {
			last := sub.bits[len(sub.bits)-1]
			if last>>uint(tail) != 0 {
				return fmt.Errorf("class %d: bitmap bits set beyond slot count", c)
			}
		}
	}
	if slots != cl.totalSlots {
		return fmt.Errorf("class %d: totalSlots %d != sum of subregions %d", c, cl.totalSlots, slots)
	}
	if pop != cl.inUse {
		return fmt.Errorf("class %d: inUse %d != bitmap population %d", c, cl.inUse, pop)
	}
	if cl.inUse > cl.maxInUse {
		return fmt.Errorf("class %d: inUse %d exceeds threshold %d", c, cl.inUse, cl.maxInUse)
	}
	if cl.totalSlots > cl.capSlots {
		return fmt.Errorf("class %d: totalSlots %d exceeds cap %d", c, cl.totalSlots, cl.capSlots)
	}
	return nil
}
