// Package core implements the DieHard randomized memory allocator, the
// primary contribution of Berger & Zorn, "DieHard: Probabilistic Memory
// Safety for Unsafe Languages" (PLDI 2006), §4.
//
// The allocator approximates an infinite heap: the heap is M times larger
// than the maximum live size, objects are placed uniformly at random
// within power-of-two size-class regions, and all heap metadata (one bit
// per object plus counters) is completely segregated from the heap
// itself. The resulting guarantees are probabilistic and quantified in
// internal/analysis:
//
//   - buffer overflows land on free space with probability (F/H)^O
//     (Theorem 1);
//   - a prematurely freed object survives A intervening allocations with
//     probability at least 1 - A/(F/S) (Theorem 2);
//   - invalid and double frees are detected and ignored outright;
//   - heap metadata cannot be overwritten by heap writes at all.
//
// In replicated mode (Options.RandomFill) the heap and every allocated
// object are filled with values from the replica's private random stream,
// which is what lets the voter in internal/replicate detect uninitialized
// reads (§3.2, Theorem 3).
//
// Concurrency (DESIGN.md §7, §10): allocator metadata operations are
// goroutine-safe, and malloc is lock-free in the common case. The probe
// loop draws from a per-class random stream kept in an atomic word
// (advanced by compare-and-swap, so one goroutine preserves the exact
// seeded sequence) and claims slots by CASing the allocation bitmap
// word directly; occupancy is an atomic counter reserved with a bounded
// CAS increment, so the 1/M threshold can never be overshot. The
// per-class mutex survives only for adaptive region growth — and, with
// Options.LockedHeap, as the retained lock-per-malloc reference engine
// the lock-free engine is differenced against (placement is
// byte-identical between the two at one goroutine). Pointer resolution
// for Free/SizeOf/ObjectBounds reads the page index lock-free.
// Concurrent use requires Options.Concurrent, which switches the
// aggregate Stats and the space's access accounting to atomic updates;
// heaps built without it keep unsynchronized counters and must be
// confined to one goroutine at a time, as the sequential experiment
// trials are.
package core

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"runtime"
	"sync"
	"sync/atomic"

	"diehard/internal/heap"
	"diehard/internal/obs"
	"diehard/internal/rng"
	"diehard/internal/vmem"
)

const (
	// NumClasses is the number of size-class regions: powers of two from
	// 8 bytes to 16 kilobytes (§4.1).
	NumClasses = 12
	// MinObjectSize is the smallest size class.
	MinObjectSize = 8
	// MaxObjectSize is the largest size served from the randomized
	// regions; larger requests are mmap'd directly with guard pages.
	MaxObjectSize = 16 * 1024
	// DefaultHeapSize matches the paper's evaluation configuration: a
	// 384 MB heap of which up to 1/M is available for allocation (§7.1).
	DefaultHeapSize = 384 << 20
	// DefaultM is the default heap expansion factor.
	DefaultM = 2.0
	// DefaultQuarantineCap is the quarantine FIFO bound when
	// Options.FreeFilter is set without an explicit QuarantineCap.
	DefaultQuarantineCap = 64
)

// Options configures a DieHard heap. The zero value selects the paper's
// defaults (384 MB heap, M = 2, stand-alone mode, entropy seed).
type Options struct {
	// HeapSize is the total size of the small-object heap, divided
	// evenly into NumClasses regions. Defaults to DefaultHeapSize.
	HeapSize int
	// M is the heap expansion factor: each region may become at most
	// 1/M full. Must be greater than 1. Defaults to DefaultM.
	M float64
	// Seed seeds the allocator's random stream; 0 draws a true random
	// seed, as the paper does from /dev/urandom. Replicas record their
	// seeds so failures are reproducible.
	Seed uint64
	// RandomFill enables replicated-mode semantics: the heap and every
	// allocated object are filled with random values (§4.1, §4.2).
	RandomFill bool
	// Adaptive enables the paper's future-work extension (§9): regions
	// start small and double on demand up to the per-class cap, trading
	// early error-masking probability for reserved address space.
	Adaptive bool
	// AdaptiveInitial is the initial per-class region size in bytes when
	// Adaptive is set. Defaults to 256 KB.
	AdaptiveInitial int
	// EnableTLB turns on TLB simulation in the underlying address space,
	// used by the Figure 5 cost model. TLB accounting models a single
	// hardware context; it is incompatible with Concurrent.
	EnableTLB bool
	// Concurrent prepares the heap for use by multiple goroutines at
	// once: allocator statistics are maintained atomically and the
	// underlying space counts accesses atomically (vmem.StatsShared).
	// Structural metadata is goroutine-safe regardless (lock-free CAS,
	// or per-class locks with LockedHeap); Concurrent is about the
	// counters, and sequential heaps skip its atomics.
	Concurrent bool
	// RemoteRing attaches a bounded multi-producer free ring to the heap
	// (DESIGN.md §12): RemoteFree enqueues the address with one atomic
	// ticket and the owner applies the clears in batches at its drain
	// points (magazine refill, threshold miss, CheckInvariants), so
	// cross-worker frees stop contending on the owner's bitmap and
	// occupancy cache lines. Sharded heaps propagate the option to every
	// shard. Requires Concurrent and the lock-free engine; incompatible
	// with observation hooks (hooked heaps are confined to one goroutine,
	// which is exactly what a remote producer is not).
	RemoteRing bool
	// LockedHeap selects the per-class-mutex malloc engine (the PR-2
	// design) instead of the default lock-free CAS engine: every probe
	// and bitmap update runs under the size class's lock. The engine is
	// retained as the semantic reference the lock-free path is
	// differenced against — with the same seed and one goroutine the two
	// engines place every object at the same address (DESIGN.md §10) —
	// and as the baseline vmembench compares malloc latency to.
	// RandomFill heaps always use it: the object fill draws from the
	// same per-class stream the probes do, which only stays cheap under
	// the class lock, and replicated-mode heaps are per-replica
	// sequential anyway.
	LockedHeap bool
	// GenTags attaches a generation counter to every small-object slot
	// (DESIGN.md §15): a per-subregion side array next to the bitmap, so
	// — like every other piece of DieHard metadata — tags live outside
	// user memory and object placement is byte-identical to an untagged
	// heap. The counter's parity encodes liveness (odd = allocated, even
	// = free): every claim bumps even→odd after winning its bitmap CAS,
	// and every free arbitrates by CAS-ing the counter odd→even *before*
	// clearing the bit, which makes the generation word — not the bitmap
	// bit — the single §4.3 arbiter of racing frees on tagged heaps.
	// MallocFat issues fat pointers (addr, generation) and FreeFat
	// rejects any whose generation is stale, turning the double free that
	// straddles a reallocation — undetectable in any pure bitmap
	// allocator (§12) — into a deterministic Stats.StaleFrees rejection.
	// A slot reaching the generation ceiling is retired (bit held set
	// forever, counted in Stats.Retired) so the 32-bit tag can never wrap
	// into a false "valid". Requires the lock-free engine.
	GenTags bool
	// OnAlloc, when non-nil, is invoked after every successful
	// allocation with the object's address, the requested size, and the
	// size of the backing slot (the size-class object size, or the
	// page-rounded usable size for large objects). It runs on the
	// allocating goroutine, outside the class locks, before the pointer
	// is returned — so a detection engine (internal/detect) can audit
	// and re-arm canaries before the program can touch the object. The
	// heap does not synchronize hook invocations; heaps with hooks
	// installed must be confined to one goroutine at a time.
	OnAlloc func(p heap.Ptr, reqSize, slotSize int)
	// OnFree, when non-nil, is invoked on every successful free (ignored
	// invalid and double frees do not fire it) with the freed object's
	// address and slot size. For large objects the hook runs *before*
	// the guarded mapping is unmapped, so a detection engine can audit
	// the trailing-page slack that the unmap destroys; the hook can tell
	// them apart because their OnAlloc reported reqSize > MaxObjectSize.
	// On the lock-free engine the hooks fire exactly once per CAS
	// winner: the goroutine that set (or cleared) the slot's bit is the
	// one that runs the hook, outside any lock.
	OnFree func(p heap.Ptr, slotSize int)
	// OnStaleFree, when non-nil, is invoked whenever a generation-tagged
	// free (FreeFat) is rejected because the pointer's generation no
	// longer matches the slot's — the deterministic temporal-safety
	// signal a detection engine records as evidence. Like OnAlloc/OnFree
	// it runs unsynchronized on the freeing goroutine; hooked heaps are
	// confined to one goroutine and cannot combine with RemoteRing.
	OnStaleFree func(p heap.Ptr, gen uint64)
	// SizeAdjust, when non-nil, is consulted at the top of every Malloc
	// with the (normalized, positive) requested size and may return a
	// larger size to allocate instead — the per-site overallocation-
	// padding hook of the self-healing supervisor (internal/heal,
	// DESIGN.md §13). Returns smaller than the request are ignored: the
	// program was promised at least what it asked for. The adjusted size
	// is what the allocator serves, counts, and reports to OnAlloc, so a
	// padded object's slack is canary-audited like any other. The
	// callback runs on every allocating goroutine with no synchronization
	// from the heap; concurrent heaps must install a goroutine-safe
	// callback (e.g. one reading an atomically published table). Nil
	// costs one pointer check per Malloc.
	SizeAdjust func(size int) int
	// FreeFilter, when non-nil, is consulted on every Free of a live,
	// correctly aligned small-object slot. Returning true diverts the
	// free into the heap's quarantine FIFO — the delayed-reuse
	// countermeasure for dangling-pointer culprits (DESIGN.md §13): the
	// slot keeps its bitmap bit and its occupancy reservation, so the
	// probe stream never re-issues it, and stale writes land on memory no
	// new owner holds. Quarantined slots are actually released — bit
	// cleared, counters updated, OnFree fired — when the FIFO exceeds
	// QuarantineCap (oldest first) or at FlushQuarantine. Exactly-one-
	// winner free semantics are preserved: the release's CAS-clear
	// remains the single arbiter, so racing frees of a quarantined
	// pointer just enqueue twice and all but one release counts an
	// IgnoredFree. Requires the lock-free engine. Magazine-buffered and
	// remote-ring frees bypass the filter (they batch past per-pointer
	// interception); callers route quarantinable frees through Heap.Free
	// or ShardedHeap.Free. Like SizeAdjust, the callback itself must be
	// goroutine-safe on concurrent heaps; nil costs one pointer check per
	// Free.
	FreeFilter func(p heap.Ptr, slotSize int) bool
	// QuarantineCap bounds the quarantine FIFO (default 64): pushing past
	// the cap releases the oldest held slot. Larger caps hold freed slots
	// out of reuse longer at the cost of occupancy — the fullness shift
	// analysis.QuarantineFullnessShift prices.
	QuarantineCap int
	// Trace, when non-nil, is the heap's flight-recorder ring
	// (internal/obs): malloc, free, remote-free tickets, ring drains,
	// quarantine holds, and invariant barriers emit one fixed-size
	// stamped event each. Tracing observes the engine without steering
	// it — no RNG draw is consumed and no placement changes, so golden
	// campaign hashes are byte-identical with tracing on. Nil (the zero
	// value) costs exactly one pointer check per instrumented site, the
	// same discipline as the TLB hook; unlike OnAlloc/OnFree, the ring
	// is lock-free and multi-producer, so traced heaps may stay
	// Concurrent and keep RemoteRing.
	Trace *obs.Ring
}

func (o *Options) withDefaults() Options {
	v := *o
	if v.HeapSize == 0 {
		v.HeapSize = DefaultHeapSize
	}
	if v.M == 0 {
		v.M = DefaultM
	}
	if v.AdaptiveInitial == 0 {
		v.AdaptiveInitial = 256 << 10
	}
	if v.QuarantineCap <= 0 {
		v.QuarantineCap = DefaultQuarantineCap
	}
	return v
}

// subregion is one mapped stretch of a size class. Non-adaptive heaps
// have exactly one subregion per class; adaptive heaps append doubled
// subregions as demand grows. The class back-pointer and the shift
// duplicate (log2 of the class's object size) let a pointer-to-
// subregion resolved through the page index compute its slot without a
// second indirection. Bitmap access follows the engine's discipline
// (DESIGN.md §10): the locked engine uses the plain accessors, always
// under the class mutex (readers included); a concurrent lock-free heap
// claims and releases bits by CAS and reads them with atomic loads; a
// sequential (non-Concurrent) lock-free heap is confined to one
// goroutine, where the plain accessors are exact without any fence. On
// amd64 an atomic load is an ordinary MOV, so the read paths use atomic
// loads wherever an engine might race — the cost shows up only in
// stores, which Go compiles to XCHG. base, slots, and shift are
// immutable after construction.
type subregion struct {
	base  uint64
	slots int
	bits  []uint64 // allocation bitmap: one bit per slot, segregated metadata
	// gens is the per-slot generation word (Options.GenTags, DESIGN.md
	// §15), nil on untagged heaps. Parity encodes liveness (odd =
	// allocated): claims bump after winning the bitmap CAS, frees CAS
	// odd→even before clearing the bit — on tagged heaps this word, not
	// the bit, arbitrates racing frees. Segregated metadata like the
	// bitmap: heap writes cannot reach it, and placement is unchanged.
	gens  []uint32
	cl    *sizeClass
	shift uint
}

func (s *subregion) get(i int) bool { return s.bits[i>>6]&(1<<(i&63)) != 0 }
func (s *subregion) set(i int)      { s.bits[i>>6] |= 1 << (i & 63) }
func (s *subregion) clear(i int)    { s.bits[i>>6] &^= 1 << (i & 63) }

func (s *subregion) getAtomic(i int) bool {
	return atomic.LoadUint64(&s.bits[i>>6])&(1<<(i&63)) != 0
}

// casSet claims slot i on the lock-free path: it retries until either
// this goroutine's CAS sets the bit (true — the caller owns the slot) or
// the bit is observed already set (false — a racing winner or an
// existing allocation holds it; the caller redraws). Retries only happen
// when a concurrent operation changed another bit of the same word, so
// the loop is lock-free: every failed CAS means someone else progressed.
func (s *subregion) casSet(i int) bool {
	w := &s.bits[i>>6]
	bit := uint64(1) << (i & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&bit != 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old|bit) {
			return true
		}
	}
}

// casClear releases slot i on the lock-free path; false means the bit
// was already clear (a double free, detected exactly as §4.3 requires —
// of two racing frees of the same pointer, exactly one clears the bit).
func (s *subregion) casClear(i int) bool {
	w := &s.bits[i>>6]
	bit := uint64(1) << (i & 63)
	for {
		old := atomic.LoadUint64(w)
		if old&bit == 0 {
			return false
		}
		if atomic.CompareAndSwapUint64(w, old, old&^bit) {
			return true
		}
	}
}

// classRegions is a size class's immutable subregion list plus its slot
// total, published as one unit behind an atomic pointer so the lock-free
// probe loop always sees a slot count consistent with the subregions it
// indexes into. Adaptive growth publishes a copy; non-adaptive classes
// publish exactly once, at construction.
type classRegions struct {
	subs       []*subregion
	totalSlots int
}

// locate maps a class-wide slot index to its subregion and local index.
// Non-adaptive heaps always hit the single-subregion fast path.
func (r *classRegions) locate(idx int) (*subregion, int) {
	if idx < r.subs[0].slots {
		return r.subs[0], idx
	}
	idx -= r.subs[0].slots
	for i := 1; i < len(r.subs); i++ {
		if idx < r.subs[i].slots {
			return r.subs[i], idx
		}
		idx -= r.subs[i].slots
	}
	panic("diehard: slot index out of range") // unreachable when invariants hold
}

// sizeClass holds the segregated metadata for one power-of-two region.
// On the default lock-free engine the mutex is touched only by adaptive
// growth: probing draws from randState (the packed rng.Step stream),
// slots are claimed by bitmap CAS, and occupancy is reserved with a
// bounded CAS increment on inUse so the 1/M threshold holds at every
// instant, not just at quiescence — with the CAS machinery engaged only
// when Options.Concurrent declares real multi-goroutine use; sequential
// lock-free heaps run the same protocol fence-free. With
// Options.LockedHeap the mutex guards the whole malloc/free path, the
// fine-grained analog of Hoard's per-heap locks that PR 2 shipped; both
// engines share this storage, differing only in how they serialize
// access to it (plain fields + sync/atomic function calls, so each
// engine pays only for the ordering it needs).
type sizeClass struct {
	mu        sync.Mutex // adaptive growth; the whole path under LockedHeap
	randState uint64     // packed MWC probe/fill stream (rng.Step)
	fillBuf   []byte     // RandomFill staging; under mu (locked engine only)

	size     int
	shift    uint                         // log2(size), for divisions on the hot path
	mask     uint64                       // size - 1, for alignment checks on the hot path
	regions  atomic.Pointer[classRegions] // subregions + slot total, copy-on-write
	inUse    int64                        // live slots; never exceeds maxInUse
	maxInUse atomic.Int64                 // threshold: floor(totalSlots / M)
	capSlots int                          // adaptive growth stops here
	mallocs  uint64
}

// largeObject records an mmap'd allocation (> MaxObjectSize), which lives
// outside the main heap behind guard pages.
type largeObject struct {
	size      int    // requested (usable) size
	mapBase   uint64 // start of the guarded mapping
	mapLength int    // total mapped length including guard pages
	gen       uint64 // GenTags: per-heap monotonic issue counter (odd, never wraps)
}

// pageIndex resolves a page number to its subregion in O(1): the
// allocator-level analog of the vmem radix table. Entry (pn - basePn)
// points at the subregion owning that page, or is nil for pages that
// belong to no small-object subregion (holes, guards, large objects).
// The table is immutable once published; growth publishes a copy, so
// Free, SizeOf, ObjectBounds, and InHeap read it lock-free.
type pageIndex struct {
	basePn uint64
	subs   []*subregion
}

// Heap is a DieHard heap. Metadata operations are safe for concurrent
// use by multiple goroutines; see Options.Concurrent for concurrent data
// access. Each simulated process still typically owns its own Heap, just
// as each DieHard replica owns its own randomized allocator.
type Heap struct {
	opts        Options
	space       *vmem.Space
	seed        uint64
	atomicStats bool // Concurrent heaps maintain stats atomically
	lockfree    bool // CAS malloc engine; false = LockedHeap/RandomFill
	classes     [NumClasses]sizeClass
	stats       heap.Stats

	largeMu   sync.Mutex
	large     map[heap.Ptr]largeObject
	largeRand rng.MWC // fill stream for large objects; under largeMu
	largeBuf  []byte  // under largeMu
	largeGen  uint64  // GenTags issue counter for large objects; under largeMu

	idxMu   sync.Mutex // serializes pageIdx publication
	pageIdx atomic.Pointer[pageIndex]

	magMu     sync.Mutex // guards the magazine registry, not the magazines
	magazines map[*Magazine]struct{}

	remote  *freeRing  // remote-free ring (Options.RemoteRing), nil otherwise
	drainMu sync.Mutex // serializes ring drains: the single-consumer side

	// Quarantine FIFO (Options.FreeFilter): held slots keep their bitmap
	// bit and occupancy reservation until released oldest-first. The
	// mutex guards only the FIFO bookkeeping — releases run the normal
	// lock-free clear outside it. quarHead indexes the logical front;
	// the backing array is compacted when the dead prefix dominates.
	quarMu     sync.Mutex
	quarantine []heap.Ptr
	quarHead   int

	// trace is the flight-recorder ring (Options.Trace, or installed
	// later via SetTrace). Nil = disabled; every emit site guards with
	// its own nil check so the disabled hot path is one branch.
	trace *obs.Ring
}

var _ heap.Allocator = (*Heap)(nil)

// addStat bumps a stats counter: atomically for Concurrent heaps, with a
// plain add otherwise — sequential trials keep their unsynchronized
// speed, concurrent heaps stay exact under -race.
func (h *Heap) addStat(p *uint64, n uint64) {
	if h.atomicStats {
		atomic.AddUint64(p, n)
	} else {
		*p += n
	}
}

func (h *Heap) countMalloc(size, rounded int) {
	if h.atomicStats {
		heap.CountMallocAtomic(&h.stats, size, rounded)
	} else {
		heap.CountMalloc(&h.stats, size, rounded)
	}
}

func (h *Heap) countFree(rounded int) {
	if h.atomicStats {
		heap.CountFreeAtomic(&h.stats, rounded)
	} else {
		heap.CountFree(&h.stats, rounded)
	}
}

// New creates a DieHard heap with the given options.
func New(opts Options) (*Heap, error) {
	return newHeap(opts, nil)
}

// newHeap builds a heap, either with its own address space (space ==
// nil) or inside a caller-provided shared space (ShardedHeap), whose
// stats mode and fillers the caller manages.
func newHeap(opts Options, space *vmem.Space) (*Heap, error) {
	o := opts.withDefaults()
	if o.M <= 1 {
		return nil, fmt.Errorf("diehard: M must exceed 1, got %v", o.M)
	}
	if o.EnableTLB && o.Concurrent {
		return nil, fmt.Errorf("diehard: TLB simulation is sequential and cannot be combined with Concurrent")
	}
	perClass := o.HeapSize / NumClasses
	perClass -= perClass % vmem.PageSize
	if perClass < vmem.PageSize {
		return nil, fmt.Errorf("diehard: heap size %d too small for %d regions", o.HeapSize, NumClasses)
	}
	h := &Heap{
		opts:        o,
		space:       space,
		atomicStats: o.Concurrent,
		lockfree:    !o.LockedHeap && !o.RandomFill,
		large:       make(map[heap.Ptr]largeObject),
		trace:       o.Trace,
	}
	if o.RemoteRing {
		if !o.Concurrent {
			return nil, fmt.Errorf("diehard: RemoteRing is a cross-goroutine free path and requires Concurrent")
		}
		if !h.lockfree {
			return nil, fmt.Errorf("diehard: RemoteRing requires the lock-free engine (not LockedHeap/RandomFill)")
		}
		if o.OnAlloc != nil || o.OnFree != nil || o.OnStaleFree != nil {
			return nil, fmt.Errorf("diehard: RemoteRing cannot batch past per-operation observation hooks")
		}
		h.remote = newFreeRing(remoteRingSize)
	}
	if o.FreeFilter != nil && !h.lockfree {
		return nil, fmt.Errorf("diehard: FreeFilter quarantine requires the lock-free engine (not LockedHeap/RandomFill)")
	}
	if o.GenTags && !h.lockfree {
		return nil, fmt.Errorf("diehard: GenTags requires the lock-free engine (not LockedHeap/RandomFill)")
	}
	if h.space == nil {
		h.space = vmem.NewSpace()
		if o.Concurrent {
			h.space.SetStatsMode(vmem.StatsShared)
		}
		if o.EnableTLB {
			h.space.EnableTLB()
		}
	}
	master := rng.NewSeeded(o.Seed)
	if o.Seed == 0 {
		master = rng.New()
	}
	h.seed = master.Seed()
	if o.RandomFill && space == nil {
		// Realize "fill the heap with random values" (§4.1) lazily:
		// every page instantiated in this replica's address space is
		// pre-filled from a stream derived from the allocator seed.
		fillRNG := master.Split()
		h.space.SetPageFiller(func(b []byte) {
			for i := 0; i+4 <= len(b); i += 4 {
				binary.LittleEndian.PutUint32(b[i:], fillRNG.Next())
			}
		})
	}

	for c := 0; c < NumClasses; c++ {
		size := MinObjectSize << c
		capSlots := perClass / size
		cl := &h.classes[c]
		cl.size = size
		cl.shift = uint(bits.TrailingZeros(uint(size)))
		cl.mask = uint64(size - 1)
		cl.capSlots = capSlots
		// Every class draws from its own stream, deterministically
		// derived from the master seed, so the probe sequence of one
		// class is independent of activity in the others — the property
		// that keeps placement deterministic per class allocation
		// sequence on either engine.
		cl.randState = master.Split().Seed()
		initial := capSlots
		if o.Adaptive {
			initial = o.AdaptiveInitial / size
			if initial < 1 {
				initial = 1
			}
			if initial > capSlots {
				initial = capSlots
			}
		}
		if err := h.addSubregion(c, initial); err != nil {
			return nil, err
		}
	}
	h.largeRand = *master.Split()
	return h, nil
}

// addSubregion maps a new stretch of slots for class c, recomputes the
// 1/M threshold, and registers the new pages in the page index. The
// caller holds the class mutex (or is the constructor). Publication
// order matters for the lock-free engine's unlocked readers: the page
// index is extended first (so any pointer handed out of the new
// subregion resolves), then the region list (so probes can land there),
// and the threshold is raised last (so no occupancy is reserved for
// slots that are not yet probe-visible).
func (h *Heap) addSubregion(c, slots int) error {
	cl := &h.classes[c]
	bytes := slots * cl.size
	if bytes < vmem.PageSize {
		bytes = vmem.PageSize
		slots = bytes / cl.size
	}
	base, err := h.space.MapGuarded(bytes)
	if err != nil {
		return err
	}
	h.addStat(&h.stats.WorkUnits, heap.WorkMmap)
	sub := &subregion{
		base:  base,
		slots: slots,
		bits:  make([]uint64, (slots+63)/64),
		cl:    cl,
		shift: cl.shift,
	}
	if h.opts.GenTags {
		sub.gens = make([]uint32, slots)
	}
	h.indexSubregion(sub, base, uint64(slots)<<cl.shift)
	next := &classRegions{totalSlots: slots}
	if cur := cl.regions.Load(); cur != nil {
		next.subs = append(next.subs, cur.subs...)
		next.totalSlots += cur.totalSlots
	}
	next.subs = append(next.subs, sub)
	cl.regions.Store(next)
	cl.maxInUse.Store(int64(float64(next.totalSlots) / h.opts.M))
	return nil
}

// indexSubregion records every page of [base, base+bytes) in the page
// index. The published table is immutable; this builds and publishes a
// copy, serialized by idxMu so concurrent growth in different classes
// cannot lose updates. Subregion bases are handed out in increasing
// address order, so the table only ever grows at the high end; pages
// mapped in between for other purposes (guards, large objects) stay nil.
func (h *Heap) indexSubregion(sub *subregion, base, bytes uint64) {
	h.idxMu.Lock()
	defer h.idxMu.Unlock()
	startPn := base / vmem.PageSize
	endPn := (base + bytes + vmem.PageSize - 1) / vmem.PageSize
	cur := h.pageIdx.Load()
	next := &pageIndex{basePn: startPn}
	if cur != nil {
		next.basePn = cur.basePn
	}
	// The new table must cover both the new subregion and everything
	// already published: under concurrent adaptive growth, the class
	// that mapped the lower addresses may publish after the one that
	// mapped the higher ones, so endPn alone can be short of the
	// current coverage.
	need := endPn - next.basePn
	if cur != nil && uint64(len(cur.subs)) > need {
		need = uint64(len(cur.subs))
	}
	grown := make([]*subregion, need)
	if cur != nil {
		copy(grown, cur.subs)
	}
	next.subs = grown
	for pn := startPn; pn < endPn; pn++ {
		next.subs[pn-next.basePn] = sub
	}
	h.pageIdx.Store(next)
}

// ClassFor returns the size-class index for a request: ceil(log2(size))-3
// (§4.2), with requests below MinObjectSize rounded up to class 0.
func ClassFor(size int) int {
	if size <= MinObjectSize {
		return 0
	}
	return bits.Len(uint(size-1)) - 3
}

// ClassSize returns the object size of class c.
func ClassSize(c int) int { return MinObjectSize << c }

// Malloc allocates size bytes, placing the object uniformly at random
// within its size class region (DieHardMalloc, Figure 2 of the paper).
// Safe for concurrent use; on the default engine the small-object path
// is lock-free (DESIGN.md §10), and on the LockedHeap reference engine
// mallocs in different size classes do not contend.
func (h *Heap) Malloc(size int) (heap.Ptr, error) {
	if size < 0 {
		h.addStat(&h.stats.FailedMallocs, 1)
		return heap.Null, fmt.Errorf("diehard: negative allocation size %d", size)
	}
	if size == 0 {
		size = 1 // malloc(0) returns a distinct pointer, as in C
	}
	if h.opts.SizeAdjust != nil {
		if padded := h.opts.SizeAdjust(size); padded > size {
			size = padded
		}
	}
	if size > MaxObjectSize {
		return h.allocateLargeObject(size)
	}
	c := ClassFor(size)
	if h.lockfree {
		return h.mallocLockFree(c, size)
	}
	return h.mallocLocked(c, size)
}

// mallocLockFree is the default small-object malloc: a bounded CAS
// increment reserves occupancy below the 1/M threshold, then the probe
// loop draws slots from the class stream and claims the first free one
// by CASing its bitmap word (DESIGN.md §10). No mutex is touched unless
// the class must grow. Exactly one goroutine wins each slot, so the
// observation hooks fire exactly once per allocation.
//
// The stream advance is batched: the whole probe sequence draws against
// a register-resident copy of the packed state, and one CAS publishes
// the consumed draws. If the CAS fails a racing malloc advanced the
// stream first; the probe sequence replays from the fresh state (its
// candidate slot was never claimed, so nothing needs undoing). A lone
// goroutine therefore consumes exactly the draw sequence the locked
// engine would — the determinism the campaign recordings pin — at one
// RMW instead of one per draw.
func (h *Heap) mallocLockFree(c, size int) (heap.Ptr, error) {
	cl := &h.classes[c]
	if err := h.reserve(c); err != nil {
		h.addStat(&h.stats.FailedMallocs, 1)
		return heap.Null, err
	}
	// Probe for a free slot. The region is at most 1/M full, so the
	// expected number of probes is 1/(1 - 1/M): two for M = 2 (§4.2).
	// The cap guards against metadata-accounting bugs, not against bad
	// luck; it is astronomically unlikely to trigger when invariants
	// hold. The region list is reloaded every replay so a probe
	// sequence spanning adaptive growth sees the fresh slots.
	// probes accumulates across replays: an abandoned attempt's probes
	// were work actually performed (and draws actually consumed by the
	// racing winner's stream advance notwithstanding, ours were real
	// bitmap examinations), so they are charged to Stats like the locked
	// engine charges every probe it runs.
	var (
		sub     *subregion
		local   int
		probes  int
		replays int
	)
	for {
		st0 := atomic.LoadUint64(&cl.randState)
		st := st0
		regs := cl.regions.Load()
		n := uint32(regs.totalSlots)
		single := len(regs.subs) == 1
		rejectBelow := -n % n
		for {
			if probes >= 64*regs.totalSlots+64 {
				h.releaseReservation(cl)
				return heap.Null, &heap.CorruptionError{Detail: "diehard: no free slot found below fill threshold"}
			}
			probes++
			// Lemire multiply-shift with rejection: the identical draw
			// stream to the locked engine's probe loop.
			var v uint32
			st, v = rng.Step(st)
			m := uint64(v) * uint64(n)
			for uint32(m) < rejectBelow {
				st, v = rng.Step(st)
				m = uint64(v) * uint64(n)
			}
			if single {
				sub, local = regs.subs[0], int(m>>32)
			} else {
				sub, local = regs.locate(int(m >> 32))
			}
			if !sub.getAtomic(local) {
				break
			}
		}
		if !h.atomicStats {
			// Single-goroutine contract: no stream racer, no slot racer —
			// commit plainly and claim without fences.
			cl.randState = st
			sub.set(local)
			h.genClaim(sub, local)
			cl.mallocs++
			break
		}
		if !atomic.CompareAndSwapUint64(&cl.randState, st0, st) {
			// Draws consumed by a racing malloc: replay. A class losing
			// repeatedly is contended — back off (bounded exponential +
			// jitter from the already-consumed local draw state) so the
			// losers stop replaying whole probe sequences against each
			// other; replays surface in Stats.CASRetries.
			replays++
			backoffSpin(replays, uint32(st)^uint32(st0>>32))
			continue
		}
		if sub.casSet(local) {
			// The generation bump needs no CAS: the slot's word is only
			// ever advanced even→odd by its casSet winner (us), and frees
			// reject even words, so the word is quiescent until we bump.
			h.genClaim(sub, local)
			atomic.AddUint64(&cl.mallocs, 1)
			break
		}
		// The observed-free slot was claimed between the stream commit
		// and the bitmap CAS; draw again from the advanced stream.
	}
	ptr := sub.base + uint64(local)<<cl.shift
	h.addStat(&h.stats.Probes, uint64(probes))
	if replays > 0 {
		h.addStat(&h.stats.CASRetries, uint64(replays))
	}
	h.addStat(&h.stats.WorkUnits,
		heap.WorkSizeClass+uint64(probes)*heap.WorkProbe+heap.WorkBitmap)
	h.countMalloc(size, cl.size)
	if h.trace != nil {
		h.trace.Emit(obs.EvMalloc, ptr)
	}
	if h.opts.OnAlloc != nil {
		h.opts.OnAlloc(ptr, size, cl.size)
	}
	return ptr, nil
}

// backoffSink absorbs the spin loop below so the compiler cannot
// eliminate it; the store is atomic only to stay clean under -race.
var backoffSink atomic.Uint64

// backoffSpin delays a CAS replay loop that keeps losing: bounded
// exponential spin (capped at 64 iterations) plus jitter, yielding the
// processor once the class is severely contended. The jitter is derived
// from state the loser already holds — a consumed draw value or an
// observed counter — never from a fresh draw, so the shared per-class
// probe stream is untouched and placement stays seed-deterministic. At
// one goroutine a CAS never loses, so this path never runs and the
// sequential engines are bit-for-bit unaffected; the first loss retries
// immediately (the common transient), and only repeat losers pay.
func backoffSpin(attempt int, jitter uint32) {
	if attempt < 2 {
		return
	}
	exp := uint(attempt)
	if exp > 6 {
		exp = 6
	}
	spins := 1<<exp + int(jitter&uint32(1<<exp-1))
	acc := uint64(0)
	for i := 0; i < spins; i++ {
		acc += uint64(i)
	}
	backoffSink.Store(acc)
	if attempt > 3 {
		// Heavily contended (or oversubscribed cores): hand the CPU to
		// the racing winner instead of spinning against it.
		runtime.Gosched()
	}
}

// reserve claims one unit of class occupancy with a bounded CAS
// increment: the threshold test and the increment are one atomic step,
// so inUse can never overshoot maxInUse even mid-race. At the threshold
// it falls into the growth engine (the one surviving use of the class
// mutex) and retries; non-adaptive heaps fail immediately (Figure 2,
// line 6). Sequential (non-Concurrent) heaps run the same bounded
// increment without the RMW, which their one-goroutine contract makes
// exact.
func (h *Heap) reserve(c int) error {
	cl := &h.classes[c]
	replays := 0
	for {
		cur := atomic.LoadInt64(&cl.inUse)
		if cur < cl.maxInUse.Load() {
			if !h.atomicStats {
				cl.inUse = cur + 1
				return nil
			}
			if atomic.CompareAndSwapInt64(&cl.inUse, cur, cur+1) {
				if replays > 0 {
					h.addStat(&h.stats.CASRetries, uint64(replays))
				}
				return nil
			}
			replays++
			backoffSpin(replays, uint32(cur))
			continue
		}
		// At threshold: the queued remote frees may be exactly the room
		// this class needs — drain them before growing or failing (the
		// mandatory malloc-miss drain of DESIGN.md §12). Retrying is
		// productive only if the drain won frees for *this* class.
		if h.remote != nil && h.drainRemote(c) > 0 {
			continue
		}
		if !h.opts.Adaptive {
			return heap.ErrOutOfMemory
		}
		if err := h.growClass(c); err != nil {
			return err
		}
	}
}

// releaseReservation hands back an occupancy unit on a failed lock-free
// malloc.
func (h *Heap) releaseReservation(cl *sizeClass) {
	if h.atomicStats {
		atomic.AddInt64(&cl.inUse, -1)
	} else {
		cl.inUse--
	}
}

// growClass doubles class c under its mutex (adaptive heaps only). The
// threshold is re-checked under the lock: if a racing grower or a free
// already made room, the grow is skipped and the caller's reservation
// loop retries.
func (h *Heap) growClass(c int) error {
	cl := &h.classes[c]
	cl.mu.Lock()
	defer cl.mu.Unlock()
	if atomic.LoadInt64(&cl.inUse) < cl.maxInUse.Load() {
		return nil
	}
	regs := cl.regions.Load()
	if regs.totalSlots >= cl.capSlots {
		return heap.ErrOutOfMemory
	}
	grow := regs.totalSlots
	if regs.totalSlots+grow > cl.capSlots {
		grow = cl.capSlots - regs.totalSlots
	}
	return h.addSubregion(c, grow)
}

// mallocLocked is the retained per-class-mutex reference engine
// (Options.LockedHeap, and every RandomFill heap): the PR-2 design,
// byte-identical in placement to the lock-free engine at one goroutine
// because both consume the same per-class draw stream.
func (h *Heap) mallocLocked(c, size int) (heap.Ptr, error) {
	cl := &h.classes[c]
	cl.mu.Lock()
	regs := cl.regions.Load()
	if cl.inUse >= cl.maxInUse.Load() {
		if h.opts.Adaptive && regs.totalSlots < cl.capSlots {
			grow := regs.totalSlots
			if regs.totalSlots+grow > cl.capSlots {
				grow = cl.capSlots - regs.totalSlots
			}
			if err := h.addSubregion(c, grow); err != nil {
				cl.mu.Unlock()
				h.addStat(&h.stats.FailedMallocs, 1)
				return heap.Null, err
			}
			regs = cl.regions.Load()
		} else {
			// At threshold: no more memory (Figure 2, line 6).
			cl.mu.Unlock()
			h.addStat(&h.stats.FailedMallocs, 1)
			return heap.Null, heap.ErrOutOfMemory
		}
	}
	// Probe for a free slot, consuming exactly the draw stream the
	// lock-free engine does, with the class mutex held and the stream
	// state register-resident. The single-subregion case (every
	// non-adaptive heap) runs a specialized loop; probes are accounted
	// in bulk afterwards.
	probeCap := 64*regs.totalSlots + 64
	n := uint32(regs.totalSlots)
	sub := regs.subs[0]
	var local int
	probes := 0
	st := cl.randState
	rejectBelow := -n % n
	if len(regs.subs) == 1 {
		// Single-subregion fast loop: generator state in a local so the
		// probe iterations run register-to-register; the reduction is
		// the same Lemire multiply-shift-with-rejection as rng.Uint32n,
		// so the draw stream is identical.
		for {
			if probes == probeCap {
				cl.randState = st
				cl.mu.Unlock()
				return heap.Null, &heap.CorruptionError{Detail: "diehard: no free slot found below fill threshold"}
			}
			probes++
			var v uint32
			st, v = rng.Step(st)
			m := uint64(v) * uint64(n)
			for uint32(m) < rejectBelow {
				st, v = rng.Step(st)
				m = uint64(v) * uint64(n)
			}
			local = int(m >> 32)
			if sub.bits[local>>6]&(1<<(local&63)) == 0 {
				break
			}
		}
	} else {
		for {
			if probes == probeCap {
				cl.randState = st
				cl.mu.Unlock()
				return heap.Null, &heap.CorruptionError{Detail: "diehard: no free slot found below fill threshold"}
			}
			probes++
			var v uint32
			st, v = rng.Step(st)
			m := uint64(v) * uint64(n)
			for uint32(m) < rejectBelow {
				st, v = rng.Step(st)
				m = uint64(v) * uint64(n)
			}
			sub, local = regs.locate(int(m >> 32))
			if sub.bits[local>>6]&(1<<(local&63)) == 0 {
				break
			}
		}
	}
	cl.randState = st
	sub.set(local)
	cl.inUse++
	cl.mallocs++
	ptr := sub.base + uint64(local)<<cl.shift
	var fillErr error
	if h.opts.RandomFill {
		// Fill under the class lock, from the class stream: each
		// class's sequence of fill values is deterministic in its own
		// allocation order (Figure 2, DieHardMalloc lines 18-20).
		fillErr = h.fillClassRandom(cl, ptr, cl.size)
	}
	cl.mu.Unlock()
	if fillErr != nil {
		return heap.Null, fillErr
	}
	h.addStat(&h.stats.Probes, uint64(probes))
	h.addStat(&h.stats.WorkUnits,
		heap.WorkSizeClass+uint64(probes)*heap.WorkProbe+heap.WorkBitmap)
	h.countMalloc(size, cl.size)
	if h.trace != nil {
		h.trace.Emit(obs.EvMalloc, ptr)
	}
	if h.opts.OnAlloc != nil {
		h.opts.OnAlloc(ptr, size, cl.size)
	}
	return ptr, nil
}

// fillClassRandom fills an allocated object from the class stream,
// round-tripping the packed state through an MWC value. The caller holds
// the class mutex (RandomFill implies the locked engine).
func (h *Heap) fillClassRandom(cl *sizeClass, ptr heap.Ptr, n int) error {
	r := rng.NewSeeded(cl.randState)
	err := h.fillRandom(r, &cl.fillBuf, ptr, n)
	cl.randState = r.Seed()
	return err
}

// fillRandom fills an allocated object with random values drawn from the
// given stream (Figure 2, DieHardMalloc lines 18-20). The caller holds
// the lock guarding r and buf.
func (h *Heap) fillRandom(r *rng.MWC, buf *[]byte, ptr heap.Ptr, n int) error {
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	b := (*buf)[:n]
	for i := 0; i+4 <= n; i += 4 {
		binary.LittleEndian.PutUint32(b[i:], r.Next())
	}
	for i := n &^ 3; i < n; i++ {
		b[i] = byte(r.Next())
	}
	h.addStat(&h.stats.WorkUnits, uint64(n/8+1)*heap.WorkRandomFill)
	return h.space.WriteBytes(ptr, b)
}

// allocateLargeObject serves requests above MaxObjectSize from a
// dedicated guarded mapping and records it for validity checking by Free
// (§4.1, §4.3).
func (h *Heap) allocateLargeObject(size int) (heap.Ptr, error) {
	npages := (size + vmem.PageSize - 1) / vmem.PageSize
	h.largeMu.Lock()
	base, err := h.space.MapGuarded(size)
	if err != nil {
		h.largeMu.Unlock()
		h.addStat(&h.stats.FailedMallocs, 1)
		return heap.Null, err
	}
	lo := largeObject{
		size:      size,
		mapBase:   base - vmem.PageSize,
		mapLength: (npages + 2) * vmem.PageSize,
	}
	if h.opts.GenTags {
		// Large objects carry a 64-bit monotonic generation (always odd,
		// like every issued tag): at one allocation per nanosecond the
		// counter would take centuries to wrap, so large tags need no
		// retirement scheme.
		lo.gen = h.largeGen*2 + 1
		h.largeGen++
	}
	h.large[base] = lo
	var fillErr error
	if h.opts.RandomFill {
		fillErr = h.fillRandom(&h.largeRand, &h.largeBuf, base, size)
	}
	h.largeMu.Unlock()
	if fillErr != nil {
		return heap.Null, fillErr
	}
	h.addStat(&h.stats.WorkUnits, heap.WorkMmap)
	h.countMalloc(size, npages*vmem.PageSize)
	if h.opts.OnAlloc != nil {
		h.opts.OnAlloc(base, size, npages*vmem.PageSize)
	}
	return base, nil
}

// Free releases an allocation (DieHardFree, Figure 2). Invalid and double
// frees are detected and silently ignored: the offset must be an exact
// multiple of the object size, and the object must currently be marked
// allocated. Free never fails. Safe for concurrent use.
func (h *Heap) Free(p heap.Ptr) error {
	if p == heap.Null {
		return nil // free(NULL) is a no-op in C
	}
	cl, sub, local := h.find(p)
	if cl == nil {
		h.largeMu.Lock()
		lo, ok := h.large[p]
		if !ok {
			h.largeMu.Unlock()
			h.addStat(&h.stats.IgnoredFrees, 1) // not our pointer: ignore (§4.3)
			return nil
		}
		delete(h.large, p) // delete-first: exactly one racing free wins
		h.largeMu.Unlock()
		return h.finishLargeFree(p, lo)
	}
	if (p-sub.base)&cl.mask != 0 {
		h.addStat(&h.stats.IgnoredFrees, 1) // misaligned interior pointer: ignore
		return nil
	}
	if sub.gens != nil {
		// Tagged heap (DESIGN.md §15): the generation word is the free
		// arbiter. The transition runs *before* the quarantine filter so
		// that exactly one free per incarnation ever reaches the filter —
		// held slots sit bit-set with an even generation, and duplicate
		// frees lose here (so the quarantine FIFO never holds duplicates
		// on tagged heaps, and a release's bit-clear can never race a
		// reallocated slot).
		switch h.genFreePlain(sub, local) {
		case genLose:
			h.addStat(&h.stats.IgnoredFrees, 1) // double free: ignore
			return nil
		case genRetireOut:
			h.addStat(&h.stats.Retired, 1)
			return nil
		}
		if h.opts.FreeFilter != nil && h.opts.FreeFilter(p, cl.size) {
			h.quarantineHold(p)
			return nil
		}
		h.genFinishFree(cl, sub, local, p)
		return nil
	}
	if h.opts.FreeFilter != nil && sub.getAtomic(local) && h.opts.FreeFilter(p, cl.size) {
		// Quarantine divert: the slot stays marked allocated (bit set,
		// occupancy reserved), so the probe stream cannot re-issue it.
		// The liveness pre-check only filters obviously dead pointers
		// cheaply; the release's CAS-clear remains the one arbiter of
		// racing frees, so a stale read here just enqueues a duplicate
		// that loses (and is counted an IgnoredFree) at release time.
		h.quarantineHold(p)
		return nil
	}
	if h.lockfree {
		if h.atomicStats {
			// CAS release: of any set of racing frees of this pointer,
			// exactly one clears the bit; the rest are double frees.
			if !sub.casClear(local) {
				h.addStat(&h.stats.IgnoredFrees, 1) // double free: ignore
				return nil
			}
			atomic.AddInt64(&cl.inUse, -1)
		} else {
			if !sub.get(local) {
				h.addStat(&h.stats.IgnoredFrees, 1) // double free: ignore
				return nil
			}
			sub.clear(local)
			cl.inUse--
		}
	} else {
		cl.mu.Lock()
		if !sub.get(local) {
			cl.mu.Unlock()
			h.addStat(&h.stats.IgnoredFrees, 1) // double free: ignore
			return nil
		}
		sub.clear(local)
		cl.inUse--
		cl.mu.Unlock()
	}
	h.addStat(&h.stats.WorkUnits, heap.WorkBitmap)
	h.countFree(cl.size)
	if h.trace != nil {
		h.trace.Emit(obs.EvFree, p)
	}
	if h.opts.OnFree != nil {
		h.opts.OnFree(p, cl.size)
	}
	return nil
}

// finishLargeFree completes the free of a large object after the caller
// removed it from the table (delete-first under largeMu, so exactly one
// racing free reaches here): hook, unmap, accounting.
func (h *Heap) finishLargeFree(p heap.Ptr, lo largeObject) error {
	usable := (lo.mapLength/vmem.PageSize - 2) * vmem.PageSize
	if h.opts.OnFree != nil {
		// Fire while the guarded mapping is still live, so a
		// detection hook can audit the trailing-page slack that
		// disappears with the unmap (the large-object canary gap).
		h.opts.OnFree(p, usable)
	}
	if err := h.space.Unmap(lo.mapBase, lo.mapLength); err != nil {
		// Cannot happen unless internal state is corrupt; re-list
		// the object so accounting stays consistent and the free
		// can be retried.
		h.largeMu.Lock()
		h.large[p] = lo
		h.largeMu.Unlock()
		return err
	}
	h.addStat(&h.stats.WorkUnits, heap.WorkMmap)
	h.countFree(usable)
	if h.trace != nil {
		h.trace.Emit(obs.EvFree, p)
	}
	return nil
}

// quarantineHold enqueues a filtered free (Options.FreeFilter) into the
// FIFO, releasing the oldest held slot first when the cap is reached so
// the quarantine's occupancy debt stays bounded at QuarantineCap. Only
// the queue bookkeeping runs under the mutex; the eviction's bit-clear
// happens outside it on the normal lock-free path.
func (h *Heap) quarantineHold(p heap.Ptr) {
	h.addStat(&h.stats.Quarantined, 1)
	if h.trace != nil {
		h.trace.Emit(obs.EvQuarantine, p)
	}
	var evict heap.Ptr
	var evicting bool
	h.quarMu.Lock()
	if len(h.quarantine)-h.quarHead >= h.opts.QuarantineCap {
		evict = h.quarantine[h.quarHead]
		h.quarHead++
		evicting = true
	}
	h.quarantine = append(h.quarantine, p)
	if h.quarHead > 64 && h.quarHead*2 >= len(h.quarantine) {
		// Compact the consumed prefix so the backing array stays
		// proportional to the live queue, amortized O(1) per enqueue.
		n := copy(h.quarantine, h.quarantine[h.quarHead:])
		h.quarantine = h.quarantine[:n]
		h.quarHead = 0
	}
	h.quarMu.Unlock()
	if evicting {
		h.releaseHeld(evict)
	}
}

// releaseHeld performs the deferred free of a quarantined slot: the
// normal clear path of Free, minus the filter (a released slot must not
// re-enter the quarantine it just left). Exactly one release of any set
// of duplicate enqueues wins the CAS-clear; the rest count IgnoredFrees,
// preserving §4.3's double-free accounting across the deferral. OnFree
// fires here — not at divert time — so a detection layer re-arms its
// canary exactly when the slot truly rejoins free space.
func (h *Heap) releaseHeld(p heap.Ptr) bool {
	cl, sub, local := h.find(p)
	if cl == nil {
		// Unreachable for pointers the divert path resolved, kept for
		// defense in depth.
		h.addStat(&h.stats.IgnoredFrees, 1)
		return false
	}
	if h.atomicStats {
		if !sub.casClear(local) {
			h.addStat(&h.stats.IgnoredFrees, 1)
			return false
		}
		atomic.AddInt64(&cl.inUse, -1)
	} else {
		if !sub.get(local) {
			h.addStat(&h.stats.IgnoredFrees, 1)
			return false
		}
		sub.clear(local)
		cl.inUse--
	}
	h.addStat(&h.stats.WorkUnits, heap.WorkBitmap)
	h.addStat(&h.stats.QuarantineOut, 1)
	h.countFree(cl.size)
	if h.trace != nil {
		h.trace.Emit(obs.EvFree, p)
	}
	if h.opts.OnFree != nil {
		h.opts.OnFree(p, cl.size)
	}
	return true
}

// FlushQuarantine releases every held slot oldest-first and returns how
// many actually freed (duplicates of already-released slots are ignored,
// not counted). Callers flush before retiring a FreeFilter or before
// occupancy-sensitive audits that expect quarantined slots returned to
// free space.
func (h *Heap) FlushQuarantine() int {
	released := 0
	for {
		h.quarMu.Lock()
		if h.quarHead >= len(h.quarantine) {
			h.quarantine = h.quarantine[:0]
			h.quarHead = 0
			h.quarMu.Unlock()
			return released
		}
		p := h.quarantine[h.quarHead]
		h.quarHead++
		h.quarMu.Unlock()
		if h.releaseHeld(p) {
			released++
		}
	}
}

// QuarantineLen reports the number of entries currently held in the
// quarantine FIFO (duplicate enqueues included).
func (h *Heap) QuarantineLen() int {
	h.quarMu.Lock()
	n := len(h.quarantine) - h.quarHead
	h.quarMu.Unlock()
	return n
}

// find locates the size class, subregion, and slot index containing p in
// O(1) through the page index, which is read lock-free. The slot index
// is the floor of the offset; the caller checks alignment.
func (h *Heap) find(p heap.Ptr) (*sizeClass, *subregion, int) {
	idx := h.pageIdx.Load()
	if idx == nil {
		return nil, nil, 0
	}
	pn := p/vmem.PageSize - idx.basePn
	if pn >= uint64(len(idx.subs)) { // also catches p below the heap (wraps)
		return nil, nil, 0
	}
	sub := idx.subs[pn]
	if sub == nil {
		return nil, nil, 0
	}
	off := p - sub.base
	if off >= uint64(sub.slots)<<sub.shift {
		// Tail of the subregion's last page: mapped, but no slot.
		return nil, nil, 0
	}
	return sub.cl, sub, int(off >> sub.shift)
}

// SizeOf reports the usable size of the allocated object starting exactly
// at p.
func (h *Heap) SizeOf(p heap.Ptr) (int, bool) {
	h.largeMu.Lock()
	if lo, ok := h.large[p]; ok {
		h.largeMu.Unlock()
		return lo.size, true
	}
	h.largeMu.Unlock()
	cl, sub, local := h.find(p)
	if cl == nil || (p-sub.base)&cl.mask != 0 {
		return 0, false
	}
	if !h.slotLive(cl, sub, local) {
		return 0, false
	}
	return cl.size, true
}

// slotLive reads slot local's bitmap bit under the engine's discipline:
// an unlocked atomic load on the lock-free engine, a mutex-guarded plain
// read on the locked engine (whose writers update words plainly under
// the same mutex).
func (h *Heap) slotLive(cl *sizeClass, sub *subregion, local int) bool {
	if h.lockfree {
		return sub.getAtomic(local)
	}
	cl.mu.Lock()
	live := sub.get(local)
	cl.mu.Unlock()
	return live
}

// ObjectBounds resolves any pointer into the heap (including interior
// pointers) to the containing allocated object's start and size. This is
// the primitive behind DieHard's checked replacements for strcpy and
// strncpy (§4.4): the available space from a destination pointer to the
// end of its object bounds the copy length.
func (h *Heap) ObjectBounds(p heap.Ptr) (start heap.Ptr, size int, ok bool) {
	h.largeMu.Lock()
	for base, lo := range h.large {
		if p >= base && p < base+uint64(lo.size) {
			h.largeMu.Unlock()
			return base, lo.size, true
		}
	}
	h.largeMu.Unlock()
	cl, sub, local := h.find(p)
	if cl == nil {
		return 0, 0, false
	}
	if !h.slotLive(cl, sub, local) {
		return 0, 0, false
	}
	return sub.base + uint64(local)<<cl.shift, cl.size, true
}

// SlotAt resolves any address inside the small-object heap to its
// containing slot: the slot's base address, its size-class object size,
// and whether it currently holds a live object. This is the O(1)
// page-index primitive behind the detection engine's neighbor lookups
// (internal/detect): evidence records name the nearest live and free
// slots around a damaged byte. ok is false for addresses outside the
// small-object subregions (holes, guards, large objects).
func (h *Heap) SlotAt(addr heap.Ptr) (base heap.Ptr, size int, live, ok bool) {
	cl, sub, local := h.find(addr)
	if cl == nil {
		return 0, 0, false, false
	}
	return sub.base + uint64(local)<<cl.shift, cl.size, h.slotLive(cl, sub, local), true
}

// FreeSlots calls fn with the base address of every currently free slot
// of class c, in ascending address order, until fn returns false. The
// class bitmaps are snapshotted under the class lock and walked outside
// it, so fn may access heap memory freely; the snapshot is a consistent
// point-in-time view. The detection engine's full-heap canary sweep is
// built on this walk.
func (h *Heap) FreeSlots(c int, fn func(p heap.Ptr) bool) {
	cl := &h.classes[c]
	cl.mu.Lock()
	type snap struct {
		base  uint64
		slots int
		bits  []uint64
	}
	// The mutex freezes the region list in both engines and the bitmaps
	// in the locked engine; on the lock-free engine bitmap words are
	// copied with atomic loads, so a sweep racing CAS claimants is
	// consistent per word (the callers that need an exact view — the
	// detection engine — are sequential anyway).
	regs := cl.regions.Load()
	snaps := make([]snap, len(regs.subs))
	for i, sub := range regs.subs {
		words := make([]uint64, len(sub.bits))
		for w := range sub.bits {
			words[w] = atomic.LoadUint64(&sub.bits[w])
		}
		snaps[i] = snap{base: sub.base, slots: sub.slots, bits: words}
	}
	shift := cl.shift
	cl.mu.Unlock()
	for _, s := range snaps {
		for i := 0; i < s.slots; i++ {
			if s.bits[i>>6]&(1<<(i&63)) == 0 {
				if !fn(s.base + uint64(i)<<shift) {
					return
				}
			}
		}
	}
}

// InHeap reports whether p lies within the small-object heap regions,
// the first test of the checked library functions (§4.4). Lock-free.
func (h *Heap) InHeap(p heap.Ptr) bool {
	cl, _, _ := h.find(p)
	return cl != nil
}

// ownsLarge reports whether p is a live large object of this heap,
// used by ShardedHeap to route frees to the owning shard.
func (h *Heap) ownsLarge(p heap.Ptr) bool {
	h.largeMu.Lock()
	_, ok := h.large[p]
	h.largeMu.Unlock()
	return ok
}

// Mem returns the simulated address space backing this heap.
func (h *Heap) Mem() *vmem.Space { return h.space }

// Stats returns the allocator counters, updated in place (atomically
// when the heap is Concurrent); under concurrent use, read them only at
// quiescence.
func (h *Heap) Stats() *heap.Stats { return &h.stats }

// Name identifies the allocator in experiment reports.
func (h *Heap) Name() string {
	if h.opts.RandomFill {
		return "diehard-r"
	}
	return "diehard"
}

// Seed returns the seed of the allocator's random stream, recorded so any
// run can be reproduced exactly.
func (h *Heap) Seed() uint64 { return h.seed }

// M returns the configured heap expansion factor.
func (h *Heap) M() float64 { return h.opts.M }

// ClassSlots returns the total and maximum-usable slot counts of class c,
// exposed for the analytical validation experiments.
func (h *Heap) ClassSlots(c int) (total, maxInUse int) {
	cl := &h.classes[c]
	return cl.regions.Load().totalSlots, int(cl.maxInUse.Load())
}

// ClassInUse returns the number of live objects in class c: on the
// lock-free engine an atomic read of the class occupancy counter, cheap
// enough that the sharded front end consults it on every routed malloc.
func (h *Heap) ClassInUse(c int) int {
	cl := &h.classes[c]
	if h.lockfree {
		return int(atomic.LoadInt64(&cl.inUse))
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return int(cl.inUse)
}

// ClassMallocs returns the cumulative allocation count of class c,
// exposed for workload-characterization experiments (e.g. verifying the
// wide size mix of the 300.twolf analog).
func (h *Heap) ClassMallocs(c int) uint64 {
	cl := &h.classes[c]
	if h.lockfree {
		return atomic.LoadUint64(&cl.mallocs)
	}
	cl.mu.Lock()
	defer cl.mu.Unlock()
	return cl.mallocs
}

// ClassBase returns the base address of the first subregion of class c,
// exposed for tests that aim overflow writes at precise heap locations.
func (h *Heap) ClassBase(c int) heap.Ptr {
	return h.classes[c].regions.Load().subs[0].base
}

// LargeObjects returns the number of live large objects.
func (h *Heap) LargeObjects() int {
	h.largeMu.Lock()
	defer h.largeMu.Unlock()
	return len(h.large)
}

// CheckInvariants verifies the segregated metadata against itself: per-
// class live counts match bitmap population, thresholds are respected,
// and subregion accounting is consistent. Property tests call this after
// randomized (including concurrent) workloads; each class is checked
// under its own lock. On the lock-free engine the bitmap-population ==
// inUse comparison is exact only at quiescence — every CAS winner pairs
// its bit with a counter reservation, but the two updates are not one
// atomic step — which is precisely when the stress tests call it. Every
// registered magazine is drained first (the drain barrier of DESIGN.md
// §11), then the remote-free ring (§12) — queued remote frees hold
// their bit and occupancy unit until drained, so they never break the
// popcount comparison, but draining them here restores exact Frees/
// LiveObjects counters and exact FreeSlots walks at the barrier. Like
// the popcount comparison, draining requires the magazines' owner
// goroutines to be quiescent.
func (h *Heap) CheckInvariants() error { return h.checkInvariants(0) }

// CheckInvariantsSlack is CheckInvariants with the documented §12
// allowance for UNTAGGED heaps under deliberate double-free injection:
// a double free whose second half lands after the slot was reallocated
// or magazine-pre-claimed is indistinguishable from a valid free in any
// bitmap allocator, so each such straddle can skew the Mallocs/Frees/
// LiveObjects ledger by one against the (always exact) bitmap
// population. The structural invariants — per-class popcount == inUse,
// bitmap/metadata consistency — take NO slack; only the two aggregate
// stats cross-checks tolerate an absolute skew of at most `slack`
// (callers pass their injected double-free count). Generation-tagged
// heaps never need this: the gens CAS rejects the straddling half as
// stale (DESIGN.md §15), so tagged callers use the exact barrier.
func (h *Heap) CheckInvariantsSlack(slack uint64) error { return h.checkInvariants(slack) }

func (h *Heap) checkInvariants(slack uint64) error {
	h.DrainMagazines()
	h.drainRemote(-1)
	inUse := 0
	for c := range h.classes {
		cl := &h.classes[c]
		cl.mu.Lock()
		err := cl.checkLocked(c)
		cl.mu.Unlock()
		if err != nil {
			return err
		}
		inUse += int(atomic.LoadInt64(&cl.inUse))
	}
	// Counter cross-check (atomic snapshot, not direct field reads — the
	// StatsSnapshot discipline): at a post-drain barrier the aggregate
	// counters must balance exactly. Mallocs − Frees = LiveObjects by
	// construction of every count path, so a torn or unsynchronized
	// update surfaces here; and the bitmap population just verified per
	// class must equal the live small objects plus quarantined holds
	// (held slots keep their bit) when large objects are added in.
	st := h.StatsSnapshot()
	if skew := int64(st.Mallocs-st.Frees) - int64(st.LiveObjects); absSkew(skew) > slack {
		return fmt.Errorf("stats: mallocs %d - frees %d != live objects %d",
			st.Mallocs, st.Frees, st.LiveObjects)
	}
	h.largeMu.Lock()
	large := len(h.large)
	h.largeMu.Unlock()
	if skew := int64(inUse+large) - int64(st.LiveObjects); absSkew(skew) > slack {
		return fmt.Errorf("stats: class occupancy %d + large %d != live objects %d",
			inUse, large, st.LiveObjects)
	}
	if h.trace != nil {
		h.trace.Emit(obs.EvBarrier, st.LiveObjects)
	}
	return nil
}

func absSkew(d int64) uint64 {
	if d < 0 {
		return uint64(-d)
	}
	return uint64(d)
}

// SetTrace installs (or removes, with nil) the flight-recorder ring.
// Install before the heap is shared between goroutines, or at a
// quiescent point: the field itself is not synchronized, by design —
// the disabled path must stay one plain nil check.
func (h *Heap) SetTrace(r *obs.Ring) { h.trace = r }

// StatsSnapshot returns a consistent-at-quiescence copy of the
// counters: atomically loaded for Concurrent heaps (a direct
// `*h.Stats()` copy races with the atomic writers), a plain copy for
// sequential ones.
func (h *Heap) StatsSnapshot() heap.Stats {
	if h.atomicStats {
		return h.stats.SnapshotAtomic()
	}
	return h.stats
}

// PublishMetrics registers the heap's counters as gauges in reg under
// the core.* namespace. Gauges pull atomically at snapshot time, so a
// live scrape of a Concurrent heap is race-free; the usual quiescent-
// exactness contract applies to cross-counter consistency. Labels
// (e.g. shard=N) distinguish multiple heaps in one registry.
func (h *Heap) PublishMetrics(reg *obs.Registry, labels ...obs.Label) {
	if reg == nil {
		return
	}
	type g struct {
		name string
		f    *uint64
	}
	for _, m := range []g{
		{"core.mallocs", &h.stats.Mallocs},
		{"core.frees", &h.stats.Frees},
		{"core.failed_mallocs", &h.stats.FailedMallocs},
		{"core.ignored_frees", &h.stats.IgnoredFrees},
		{"core.live_objects", &h.stats.LiveObjects},
		{"core.live_bytes", &h.stats.LiveBytes},
		{"core.peak_live_bytes", &h.stats.PeakLiveBytes},
		{"core.probes", &h.stats.Probes},
		{"core.cas_retries", &h.stats.CASRetries},
		{"core.remote_frees", &h.stats.RemoteFrees},
		{"core.remote_drains", &h.stats.RemoteDrains},
		{"core.quarantined", &h.stats.Quarantined},
		{"core.quarantine_released", &h.stats.QuarantineOut},
		{"core.stale_frees", &h.stats.StaleFrees},
		{"core.retired_slots", &h.stats.Retired},
	} {
		f := m.f
		reg.Gauge(m.name, func() float64 { return float64(atomic.LoadUint64(f)) }, labels...)
	}
}

func (cl *sizeClass) checkLocked(c int) error {
	pop := 0
	slots := 0
	regs := cl.regions.Load()
	for _, sub := range regs.subs {
		slots += sub.slots
		for w := range sub.bits {
			pop += bits.OnesCount64(atomic.LoadUint64(&sub.bits[w]))
		}
		// Tagged heaps: a clear bit means the slot's generation word is
		// even (free parity) — clears only follow a won odd→even
		// transition, and claims bump back to odd before any free can
		// race. (The converse does not hold: a bit-set slot may carry an
		// even word while quarantined after a won transition, or the odd
		// retirement sentinel.) Exact at quiescence, like the popcount.
		if sub.gens != nil {
			for w := range sub.bits {
				word := atomic.LoadUint64(&sub.bits[w])
				lim := sub.slots - w*64
				if lim > 64 {
					lim = 64
				}
				for b := 0; b < lim; b++ {
					if word&(1<<uint(b)) != 0 {
						continue
					}
					if g := atomic.LoadUint32(&sub.gens[w*64+b]); g&1 != 0 {
						return fmt.Errorf("class %d: free slot %d has odd generation %#x", c, w*64+b, g)
					}
				}
			}
		}
		// Bits beyond the slot count must be zero.
		if tail := sub.slots & 63; tail != 0 {
			last := atomic.LoadUint64(&sub.bits[len(sub.bits)-1])
			if last>>uint(tail) != 0 {
				return fmt.Errorf("class %d: bitmap bits set beyond slot count", c)
			}
		}
	}
	if slots != regs.totalSlots {
		return fmt.Errorf("class %d: totalSlots %d != sum of subregions %d", c, regs.totalSlots, slots)
	}
	inUse := int(atomic.LoadInt64(&cl.inUse))
	maxInUse := int(cl.maxInUse.Load())
	if pop != inUse {
		return fmt.Errorf("class %d: inUse %d != bitmap population %d", c, inUse, pop)
	}
	if inUse > maxInUse {
		return fmt.Errorf("class %d: inUse %d exceeds threshold %d", c, inUse, maxInUse)
	}
	if regs.totalSlots > cl.capSlots {
		return fmt.Errorf("class %d: totalSlots %d exceeds cap %d", c, regs.totalSlots, cl.capSlots)
	}
	return nil
}
