package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"diehard/internal/heap"
	"diehard/internal/rng"
	"diehard/internal/vmem"
)

// ShardedHeap is a Hoard-style scalable front end over N independent
// DieHard heaps (Berger et al., ASPLOS 2000 lineage; here each per-shard
// heap is a full randomized DieHard allocator) — the multi-worker
// malloc path of the concurrency model (DESIGN.md §7). All shards
// allocate out of one shared address space, so a pointer from any shard
// is usable through Mem() like any other pointer, while the randomized
// metadata — bitmaps, counters, probe streams — stays private per
// shard. Throughput scales because concurrent mallocs land on different
// shards (and, within a shard, on different size-class locks).
//
// DieHard's per-heap guarantees are preserved shard-wise: each shard is
// its own M-expanded heap, so Theorem 1/2 masking probabilities hold for
// the objects of each shard exactly as for a stand-alone heap of that
// size. Free routes any pointer to its owning shard in O(shards) worst
// case (O(1) page-index lookup per shard), and invalid or double frees
// are ignored just as §4.3 prescribes.
//
// Unpinned mallocs are routed by occupancy (DESIGN.md §10): the request
// steals a slot from the shard whose target size class is emptiest right
// now, read from the per-shard atomic occupancy counters the lock-free
// engine maintains anyway. Shards are equal-sized, so comparing raw
// counts compares fullness — the slot-granular analog of Hoard stealing
// the emptiest superblock — and skewed worker load can no longer drive
// one shard into its 1/M threshold while its siblings sit empty.
//
// RandomFill (replicated mode) is not supported: replica voting gives
// each replica a private space, which is exactly what sharding gives up.
// TLB simulation is likewise sequential-only.
type ShardedHeap struct {
	space  *vmem.Space
	shards []*Heap
	seed   uint64
	stats  heap.Stats // aggregate snapshot storage is per-call; this holds sharded-level counters (ignored frees)
}

var _ heap.Allocator = (*ShardedHeap)(nil)

// NewSharded creates a sharded DieHard heap with n shards. opts
// configures each shard, except that HeapSize (defaulting to the paper's
// 384 MB) is the total across shards — each shard manages HeapSize/n —
// and per-shard seeds are derived from opts.Seed. RandomFill and
// EnableTLB are rejected.
func NewSharded(n int, opts Options) (*ShardedHeap, error) {
	if n <= 0 {
		return nil, fmt.Errorf("diehard: shard count %d must be positive", n)
	}
	if opts.RandomFill {
		return nil, fmt.Errorf("diehard: RandomFill (replicated mode) requires per-replica spaces, not shards")
	}
	if opts.EnableTLB {
		return nil, fmt.Errorf("diehard: TLB simulation is sequential and cannot be sharded")
	}
	o := opts.withDefaults()
	perShard := o.HeapSize / n
	if perShard/NumClasses < vmem.PageSize {
		return nil, fmt.Errorf("diehard: heap size %d too small for %d shards", o.HeapSize, n)
	}
	master := rng.NewSeeded(o.Seed)
	if o.Seed == 0 {
		master = rng.New()
	}
	sh := &ShardedHeap{
		space: vmem.NewSpace(),
		seed:  master.Seed(),
	}
	sh.space.SetStatsMode(vmem.StatsShared)
	for i := 0; i < n; i++ {
		so := o
		so.HeapSize = perShard
		so.Seed = master.Split().Seed()
		so.Concurrent = true
		// Shards always run the lock-free engine: the router's unlocked
		// occupancy reads are only race-free against atomic writers.
		so.LockedHeap = false
		h, err := newHeap(so, sh.space)
		if err != nil {
			return nil, fmt.Errorf("diehard: shard %d: %w", i, err)
		}
		sh.shards = append(sh.shards, h)
	}
	return sh, nil
}

// Shards returns the number of shards.
func (sh *ShardedHeap) Shards() int { return len(sh.shards) }

// Shard returns shard i as a full DieHard heap sharing this heap's
// address space. Workers that pin themselves to a shard (i = worker
// index mod Shards()) get completely contention-free malloc paths;
// pointers remain freeable through any shard view or the ShardedHeap
// itself.
func (sh *ShardedHeap) Shard(i int) *Heap { return sh.shards[i%len(sh.shards)] }

// Malloc allocates from the emptiest shard for the request's size class
// (ties break to the lowest shard index, so routing is deterministic in
// the observed occupancies). The estimate is one atomic load per shard —
// the same counter the lock-free malloc path reserves against — so
// routing costs O(shards) loads and no locks, and a shard near its 1/M
// threshold stops attracting requests instead of failing them while its
// siblings have room. If the chosen shard still refuses (a reservation
// race at its threshold boundary, or an exact occupancy tie), the
// remaining shards are retried in ascending occupancy, so a routed
// request fails only when every shard is genuinely out of memory.
// Workers that want stable placement should allocate through Shard(i)
// instead.
func (sh *ShardedHeap) Malloc(size int) (heap.Ptr, error) {
	load := func(s *Heap) int64 {
		// Large objects bypass the size classes; balance them by total
		// live bytes instead of class occupancy.
		return int64(atomic.LoadUint64(&s.stats.LiveBytes))
	}
	if size <= MaxObjectSize {
		c := ClassFor(size)
		load = func(s *Heap) int64 { return atomic.LoadInt64(&s.classes[c].inUse) }
	}
	best := sh.emptiest(load, nil)
	p, err := best.Malloc(size)
	if err == nil || !errors.Is(err, heap.ErrOutOfMemory) {
		return p, err
	}
	// Rare: the shard filled between the occupancy read and its
	// reservation. The retry pass allocates its exclusion set off the
	// hot path.
	tried := map[*Heap]bool{best: true}
	for len(tried) < len(sh.shards) {
		next := sh.emptiest(load, tried)
		if p, err = next.Malloc(size); err == nil || !errors.Is(err, heap.ErrOutOfMemory) {
			return p, err
		}
		tried[next] = true
	}
	return heap.Null, err
}

// emptiest returns the non-excluded shard minimizing load, ties to the
// lowest index.
func (sh *ShardedHeap) emptiest(load func(*Heap) int64, excluded map[*Heap]bool) *Heap {
	var best *Heap
	var bestLoad int64
	for _, s := range sh.shards {
		if excluded[s] {
			continue
		}
		if use := load(s); best == nil || use < bestLoad {
			best, bestLoad = s, use
		}
	}
	return best
}

// owner returns the shard owning p, or nil. Small objects resolve via
// each shard's lock-free O(1) page index; large objects via the owning
// shard's table.
func (sh *ShardedHeap) owner(p heap.Ptr) *Heap {
	for _, s := range sh.shards {
		if s.InHeap(p) || s.ownsLarge(p) {
			return s
		}
	}
	return nil
}

// Free routes p to its owning shard; pointers owned by no shard are
// ignored, DieHard's §4.3 semantics.
func (sh *ShardedHeap) Free(p heap.Ptr) error {
	if p == heap.Null {
		return nil
	}
	if s := sh.owner(p); s != nil {
		return s.Free(p)
	}
	atomic.AddUint64(&sh.stats.IgnoredFrees, 1)
	return nil
}

// SizeOf reports the usable size of the allocated object starting
// exactly at p, whichever shard owns it.
func (sh *ShardedHeap) SizeOf(p heap.Ptr) (int, bool) {
	if s := sh.owner(p); s != nil {
		return s.SizeOf(p)
	}
	return 0, false
}

// ObjectBounds resolves any pointer (including interior pointers) to the
// containing allocated object, for the checked libc replacements.
func (sh *ShardedHeap) ObjectBounds(p heap.Ptr) (start heap.Ptr, size int, ok bool) {
	for _, s := range sh.shards {
		if start, size, ok = s.ObjectBounds(p); ok {
			return start, size, ok
		}
	}
	return 0, 0, false
}

// InHeap reports whether p lies within any shard's small-object regions.
func (sh *ShardedHeap) InHeap(p heap.Ptr) bool {
	for _, s := range sh.shards {
		if s.InHeap(p) {
			return true
		}
	}
	return false
}

// Mem returns the shared simulated address space all shards allocate in.
func (sh *ShardedHeap) Mem() *vmem.Space { return sh.space }

// Stats returns an aggregate snapshot of all shard counters (plus frees
// the router ignored). Unlike the single-heap allocators, the returned
// struct is a fresh snapshot, not a live view; PeakLiveBytes is the sum
// of per-shard peaks, an upper bound on the true simultaneous peak.
func (sh *ShardedHeap) Stats() *heap.Stats {
	agg := heap.Stats{
		IgnoredFrees: atomic.LoadUint64(&sh.stats.IgnoredFrees),
	}
	for _, s := range sh.shards {
		st := s.Stats()
		agg.Mallocs += atomic.LoadUint64(&st.Mallocs)
		agg.Frees += atomic.LoadUint64(&st.Frees)
		agg.FailedMallocs += atomic.LoadUint64(&st.FailedMallocs)
		agg.IgnoredFrees += atomic.LoadUint64(&st.IgnoredFrees)
		agg.BytesRequested += atomic.LoadUint64(&st.BytesRequested)
		agg.BytesAllocated += atomic.LoadUint64(&st.BytesAllocated)
		agg.LiveObjects += atomic.LoadUint64(&st.LiveObjects)
		agg.LiveBytes += atomic.LoadUint64(&st.LiveBytes)
		agg.PeakLiveBytes += atomic.LoadUint64(&st.PeakLiveBytes)
		agg.WorkUnits += atomic.LoadUint64(&st.WorkUnits)
		agg.Probes += atomic.LoadUint64(&st.Probes)
	}
	return &agg
}

// Name identifies the allocator in experiment reports.
func (sh *ShardedHeap) Name() string {
	return fmt.Sprintf("diehard-sharded(%d)", len(sh.shards))
}

// Seed returns the master seed the per-shard seeds derive from.
func (sh *ShardedHeap) Seed() uint64 { return sh.seed }

// CheckInvariants verifies every shard's segregated metadata.
func (sh *ShardedHeap) CheckInvariants() error {
	for i, s := range sh.shards {
		if err := s.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}
