package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"diehard/internal/heap"
	"diehard/internal/obs"
	"diehard/internal/rng"
	"diehard/internal/vmem"
)

// ShardedHeap is a Hoard-style scalable front end over N independent
// DieHard heaps (Berger et al., ASPLOS 2000 lineage; here each per-shard
// heap is a full randomized DieHard allocator) — the multi-worker
// malloc path of the concurrency model (DESIGN.md §7). All shards
// allocate out of one shared address space, so a pointer from any shard
// is usable through Mem() like any other pointer, while the randomized
// metadata — bitmaps, counters, probe streams — stays private per
// shard. Throughput scales because concurrent mallocs land on different
// shards (and, within a shard, on different size-class locks).
//
// DieHard's per-heap guarantees are preserved shard-wise: each shard is
// its own M-expanded heap, so Theorem 1/2 masking probabilities hold for
// the objects of each shard exactly as for a stand-alone heap of that
// size. Free routes any pointer to its owning shard in O(shards) worst
// case (O(1) page-index lookup per shard), and invalid or double frees
// are ignored just as §4.3 prescribes.
//
// Unpinned mallocs are routed by occupancy (DESIGN.md §10): the request
// steals a slot from the shard whose target size class is emptiest right
// now, read from the per-shard atomic occupancy counters the lock-free
// engine maintains anyway. Shards are equal-sized, so comparing raw
// counts compares fullness — the slot-granular analog of Hoard stealing
// the emptiest superblock — and skewed worker load can no longer drive
// one shard into its 1/M threshold while its siblings sit empty.
//
// RandomFill (replicated mode) is not supported: replica voting gives
// each replica a private space, which is exactly what sharding gives up.
// TLB simulation is likewise sequential-only.
type ShardedHeap struct {
	space  *vmem.Space
	shards []*Heap
	seed   uint64
	stats  heap.Stats // aggregate snapshot storage is per-call; this holds sharded-level counters (ignored frees)

	// route is the per-class steal-routing hysteresis word (DESIGN.md
	// §11): shard index in the high half, requests remaining in the low.
	// While remaining > 0, Malloc reuses the sticky shard instead of
	// re-reading every shard's occupancy; the counter updates are plain
	// racy stores (lost decrements just stretch or shrink a window — the
	// route is a heuristic, never a correctness input), and a shard that
	// reports out-of-memory zeroes the window so rerouting is immediate.
	route [NumClasses]atomic.Uint64

	magMu     sync.Mutex // guards the magazine registry, not the magazines
	magazines map[*Magazine]struct{}

	// trace is the router's own flight-recorder ring (AttachRecorder):
	// steal-routing decisions emit here, while each shard's engine
	// events go to that shard's ring. Nil = disabled, one branch.
	trace *obs.Ring
}

// routeWindow is how many small-object mallocs reuse one occupancy
// decision before the router re-reads the per-shard counters. Magazines
// make their own routing decision once per refill; this window is the
// equivalent amortization for unbatched callers.
const routeWindow = 32

var _ heap.Allocator = (*ShardedHeap)(nil)

// NewSharded creates a sharded DieHard heap with n shards. opts
// configures each shard, except that HeapSize (defaulting to the paper's
// 384 MB) is the total across shards — each shard manages HeapSize/n —
// and per-shard seeds are derived from opts.Seed. RandomFill and
// EnableTLB are rejected.
func NewSharded(n int, opts Options) (*ShardedHeap, error) {
	if n <= 0 {
		return nil, fmt.Errorf("diehard: shard count %d must be positive", n)
	}
	if opts.RandomFill {
		return nil, fmt.Errorf("diehard: RandomFill (replicated mode) requires per-replica spaces, not shards")
	}
	if opts.EnableTLB {
		return nil, fmt.Errorf("diehard: TLB simulation is sequential and cannot be sharded")
	}
	o := opts.withDefaults()
	perShard := o.HeapSize / n
	if perShard/NumClasses < vmem.PageSize {
		return nil, fmt.Errorf("diehard: heap size %d too small for %d shards", o.HeapSize, n)
	}
	master := rng.NewSeeded(o.Seed)
	if o.Seed == 0 {
		master = rng.New()
	}
	sh := &ShardedHeap{
		space: vmem.NewSpace(),
		seed:  master.Seed(),
	}
	sh.space.SetStatsMode(vmem.StatsShared)
	for i := 0; i < n; i++ {
		so := o
		so.HeapSize = perShard
		so.Seed = master.Split().Seed()
		so.Concurrent = true
		// Shards always run the lock-free engine: the router's unlocked
		// occupancy reads are only race-free against atomic writers.
		so.LockedHeap = false
		h, err := newHeap(so, sh.space)
		if err != nil {
			return nil, fmt.Errorf("diehard: shard %d: %w", i, err)
		}
		sh.shards = append(sh.shards, h)
	}
	return sh, nil
}

// Shards returns the number of shards.
func (sh *ShardedHeap) Shards() int { return len(sh.shards) }

// Shard returns shard i as a full DieHard heap sharing this heap's
// address space. Workers that pin themselves to a shard (i = worker
// index mod Shards()) get completely contention-free malloc paths;
// pointers remain freeable through any shard view or the ShardedHeap
// itself.
func (sh *ShardedHeap) Shard(i int) *Heap { return sh.shards[i%len(sh.shards)] }

// Malloc allocates from the emptiest shard for the request's size class
// (ties break to the lowest shard index, so routing is deterministic in
// the observed occupancies). The estimate is one atomic load per shard —
// the same counter the lock-free malloc path reserves against — so
// routing costs O(shards) loads and no locks, and a shard near its 1/M
// threshold stops attracting requests instead of failing them while its
// siblings have room. If the chosen shard still refuses (a reservation
// race at its threshold boundary, or an exact occupancy tie), the
// remaining shards are retried in ascending occupancy, so a routed
// request fails only when every shard is genuinely out of memory.
// Workers that want stable placement should allocate through Shard(i)
// instead.
func (sh *ShardedHeap) Malloc(size int) (heap.Ptr, error) {
	if size > MaxObjectSize {
		// Large objects bypass the size classes; balance them by total
		// live bytes instead of class occupancy. No hysteresis: large
		// allocations are rare and each shifts the balance materially.
		load := func(s *Heap) int64 {
			return int64(atomic.LoadUint64(&s.stats.LiveBytes))
		}
		best, _ := sh.emptiest(load, nil)
		return sh.mallocRetrying(best, size, load)
	}
	c := ClassFor(size)
	load := sh.classLoad(c)
	// Hysteresis fast path: reuse the last routing decision while its
	// window lasts — one load+store on one shared word instead of a load
	// per shard. The decrement is a plain racy store; a lost update only
	// perturbs the window length.
	if st := sh.route[c].Load(); uint32(st) > 0 {
		s := sh.shards[st>>32]
		cl := &s.classes[c]
		if atomic.LoadInt64(&cl.inUse) >= cl.maxInUse.Load() {
			// The routed *class* hit its 1/M threshold mid-window: drop
			// the sticky shard now, before wasting a malloc on it. Riding
			// the window used to reroute only after an observed
			// out-of-memory — which an adaptive shard never reports while
			// it can still grow, so a full-but-growable shard kept
			// absorbing the whole window while emptier siblings sat idle.
			sh.route[c].Store(0)
		} else {
			sh.route[c].Store(st - 1)
			p, err := s.Malloc(size)
			if err == nil || !errors.Is(err, heap.ErrOutOfMemory) {
				return p, err
			}
			sh.route[c].Store(0) // sticky shard is full: reroute now
		}
	}
	best, idx := sh.emptiest(load, nil)
	p, err := best.Malloc(size)
	if err == nil {
		sh.route[c].Store(uint64(idx)<<32 | (routeWindow - 1))
		if sh.trace != nil {
			// One event per routing decision (not per malloc): the new
			// sticky shard for this class.
			sh.trace.Emit(obs.EvSteal, uint64(idx)<<32|uint64(c))
		}
		return p, nil
	}
	if !errors.Is(err, heap.ErrOutOfMemory) {
		return p, err
	}
	return sh.mallocRetrying(best, size, load)
}

// mallocRetrying runs the slow routing pass after the preferred shard
// refused: the remaining shards in ascending load order, so a routed
// request fails only when every shard is genuinely out of memory. The
// exclusion set is allocated off the hot path.
func (sh *ShardedHeap) mallocRetrying(first *Heap, size int, load func(*Heap) int64) (heap.Ptr, error) {
	p, err := first.Malloc(size)
	if err == nil || !errors.Is(err, heap.ErrOutOfMemory) {
		return p, err
	}
	tried := map[*Heap]bool{first: true}
	for len(tried) < len(sh.shards) {
		next, _ := sh.emptiest(load, tried)
		if p, err = next.Malloc(size); err == nil || !errors.Is(err, heap.ErrOutOfMemory) {
			return p, err
		}
		tried[next] = true
	}
	return heap.Null, err
}

// classLoad returns the routing load function for size class c: the
// shard's class occupancy, one atomic read of the counter the lock-free
// malloc path reserves against.
func (sh *ShardedHeap) classLoad(c int) func(*Heap) int64 {
	return func(s *Heap) int64 { return atomic.LoadInt64(&s.classes[c].inUse) }
}

// refillShard picks the shard a magazine refill of class c should land
// on: the emptiest right now. Magazines re-route once per refill, so
// this read amortizes over the whole batch.
func (sh *ShardedHeap) refillShard(c int) *Heap {
	best, _ := sh.emptiest(sh.classLoad(c), nil)
	return best
}

// emptiest returns the non-excluded shard minimizing load and its
// index, ties to the lowest index.
func (sh *ShardedHeap) emptiest(load func(*Heap) int64, excluded map[*Heap]bool) (*Heap, int) {
	var best *Heap
	var bestLoad int64
	bestIdx := 0
	for i, s := range sh.shards {
		if excluded[s] {
			continue
		}
		if use := load(s); best == nil || use < bestLoad {
			best, bestLoad, bestIdx = s, use, i
		}
	}
	return best, bestIdx
}

// owner returns the shard owning p, or nil. Small objects resolve via
// each shard's lock-free O(1) page index; large objects via the owning
// shard's table.
func (sh *ShardedHeap) owner(p heap.Ptr) *Heap {
	for _, s := range sh.shards {
		if s.InHeap(p) || s.ownsLarge(p) {
			return s
		}
	}
	return nil
}

// Free routes p to its owning shard; pointers owned by no shard are
// ignored, DieHard's §4.3 semantics.
func (sh *ShardedHeap) Free(p heap.Ptr) error {
	if p == heap.Null {
		return nil
	}
	if s := sh.owner(p); s != nil {
		return s.Free(p)
	}
	atomic.AddUint64(&sh.stats.IgnoredFrees, 1)
	return nil
}

// SizeOf reports the usable size of the allocated object starting
// exactly at p, whichever shard owns it.
func (sh *ShardedHeap) SizeOf(p heap.Ptr) (int, bool) {
	if s := sh.owner(p); s != nil {
		return s.SizeOf(p)
	}
	return 0, false
}

// ObjectBounds resolves any pointer (including interior pointers) to the
// containing allocated object, for the checked libc replacements.
func (sh *ShardedHeap) ObjectBounds(p heap.Ptr) (start heap.Ptr, size int, ok bool) {
	for _, s := range sh.shards {
		if start, size, ok = s.ObjectBounds(p); ok {
			return start, size, ok
		}
	}
	return 0, 0, false
}

// InHeap reports whether p lies within any shard's small-object regions.
func (sh *ShardedHeap) InHeap(p heap.Ptr) bool {
	for _, s := range sh.shards {
		if s.InHeap(p) {
			return true
		}
	}
	return false
}

// Mem returns the shared simulated address space all shards allocate in.
func (sh *ShardedHeap) Mem() *vmem.Space { return sh.space }

// Stats returns an aggregate snapshot of all shard counters (plus frees
// the router ignored). Unlike the single-heap allocators, the returned
// struct is a fresh snapshot, not a live view; PeakLiveBytes is the sum
// of per-shard peaks, an upper bound on the true simultaneous peak.
func (sh *ShardedHeap) Stats() *heap.Stats {
	agg := heap.Stats{
		IgnoredFrees: atomic.LoadUint64(&sh.stats.IgnoredFrees),
		StaleFrees:   atomic.LoadUint64(&sh.stats.StaleFrees),
	}
	for _, s := range sh.shards {
		st := s.Stats()
		agg.Mallocs += atomic.LoadUint64(&st.Mallocs)
		agg.Frees += atomic.LoadUint64(&st.Frees)
		agg.FailedMallocs += atomic.LoadUint64(&st.FailedMallocs)
		agg.IgnoredFrees += atomic.LoadUint64(&st.IgnoredFrees)
		agg.BytesRequested += atomic.LoadUint64(&st.BytesRequested)
		agg.BytesAllocated += atomic.LoadUint64(&st.BytesAllocated)
		agg.LiveObjects += atomic.LoadUint64(&st.LiveObjects)
		agg.LiveBytes += atomic.LoadUint64(&st.LiveBytes)
		agg.PeakLiveBytes += atomic.LoadUint64(&st.PeakLiveBytes)
		agg.WorkUnits += atomic.LoadUint64(&st.WorkUnits)
		agg.Probes += atomic.LoadUint64(&st.Probes)
		agg.CASRetries += atomic.LoadUint64(&st.CASRetries)
		agg.RemoteFrees += atomic.LoadUint64(&st.RemoteFrees)
		agg.RemoteDrains += atomic.LoadUint64(&st.RemoteDrains)
		agg.Quarantined += atomic.LoadUint64(&st.Quarantined)
		agg.QuarantineOut += atomic.LoadUint64(&st.QuarantineOut)
		agg.StaleFrees += atomic.LoadUint64(&st.StaleFrees)
		agg.Retired += atomic.LoadUint64(&st.Retired)
	}
	return &agg
}

// StatsSnapshot returns the aggregate counters by value — the same
// atomic aggregation as Stats, under the name the rest of the stack
// uses for race-safe counter reads.
func (sh *ShardedHeap) StatsSnapshot() heap.Stats { return *sh.Stats() }

// AttachRecorder wires the flight recorder through the sharded heap:
// shard i emits its engine events (malloc/free/drain/quarantine/
// barrier) on rec.Ring(base+i), and the router emits steal decisions
// on rec.Ring(base+Shards()). Call before the heap is shared between
// goroutines; a nil recorder detaches everything.
func (sh *ShardedHeap) AttachRecorder(rec *obs.Recorder, base int) {
	for i, s := range sh.shards {
		if rec == nil {
			s.SetTrace(nil)
		} else {
			s.SetTrace(rec.Ring(base + i))
		}
	}
	if rec == nil {
		sh.trace = nil
	} else {
		sh.trace = rec.Ring(base + len(sh.shards))
	}
}

// PublishMetrics registers the aggregate counters as core.* gauges in
// reg, plus a per-shard core.live_objects{shard=N} breakdown. Gauges
// aggregate atomically at snapshot time, so live scrapes are
// race-free.
func (sh *ShardedHeap) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	type g struct {
		name string
		f    func(*heap.Stats) uint64
	}
	for _, m := range []g{
		{"core.mallocs", func(st *heap.Stats) uint64 { return st.Mallocs }},
		{"core.frees", func(st *heap.Stats) uint64 { return st.Frees }},
		{"core.failed_mallocs", func(st *heap.Stats) uint64 { return st.FailedMallocs }},
		{"core.ignored_frees", func(st *heap.Stats) uint64 { return st.IgnoredFrees }},
		{"core.live_objects", func(st *heap.Stats) uint64 { return st.LiveObjects }},
		{"core.live_bytes", func(st *heap.Stats) uint64 { return st.LiveBytes }},
		{"core.probes", func(st *heap.Stats) uint64 { return st.Probes }},
		{"core.cas_retries", func(st *heap.Stats) uint64 { return st.CASRetries }},
		{"core.remote_frees", func(st *heap.Stats) uint64 { return st.RemoteFrees }},
		{"core.remote_drains", func(st *heap.Stats) uint64 { return st.RemoteDrains }},
		{"core.quarantined", func(st *heap.Stats) uint64 { return st.Quarantined }},
		{"core.quarantine_released", func(st *heap.Stats) uint64 { return st.QuarantineOut }},
		{"core.stale_frees", func(st *heap.Stats) uint64 { return st.StaleFrees }},
		{"core.retired_slots", func(st *heap.Stats) uint64 { return st.Retired }},
	} {
		field := m.f
		reg.Gauge(m.name, func() float64 {
			st := sh.StatsSnapshot()
			return float64(field(&st))
		})
	}
	for i, s := range sh.shards {
		shard := s
		reg.Gauge("core.shard_live_objects", func() float64 {
			return float64(atomic.LoadUint64(&shard.stats.LiveObjects))
		}, obs.Label{Name: "shard", Value: fmt.Sprint(i)})
	}
}

// FlushQuarantine releases every shard's quarantined slots (oldest-first
// per shard) and returns the total actually freed.
func (sh *ShardedHeap) FlushQuarantine() int {
	released := 0
	for _, s := range sh.shards {
		released += s.FlushQuarantine()
	}
	return released
}

// QuarantineLen reports the total entries held across all shards'
// quarantine FIFOs.
func (sh *ShardedHeap) QuarantineLen() int {
	n := 0
	for _, s := range sh.shards {
		n += s.QuarantineLen()
	}
	return n
}

// Name identifies the allocator in experiment reports.
func (sh *ShardedHeap) Name() string {
	return fmt.Sprintf("diehard-sharded(%d)", len(sh.shards))
}

// Seed returns the master seed the per-shard seeds derive from.
func (sh *ShardedHeap) Seed() uint64 { return sh.seed }

// registerMagazine adds m to the sharded heap's drain barrier.
func (sh *ShardedHeap) registerMagazine(m *Magazine) {
	sh.magMu.Lock()
	if sh.magazines == nil {
		sh.magazines = make(map[*Magazine]struct{})
	}
	sh.magazines[m] = struct{}{}
	sh.magMu.Unlock()
}

func (sh *ShardedHeap) unregisterMagazine(m *Magazine) {
	sh.magMu.Lock()
	delete(sh.magazines, m)
	sh.magMu.Unlock()
}

// DrainMagazines drains every magazine registered on the sharded heap;
// like Heap.DrainMagazines, the owner goroutines must be quiescent.
func (sh *ShardedHeap) DrainMagazines() {
	sh.magMu.Lock()
	mags := make([]*Magazine, 0, len(sh.magazines))
	for m := range sh.magazines {
		mags = append(mags, m)
	}
	sh.magMu.Unlock()
	for _, m := range mags {
		m.Drain()
	}
}

// CheckInvariants verifies every shard's segregated metadata, draining
// this heap's registered magazines first so pre-claimed slots and
// buffered frees cannot masquerade as live objects.
func (sh *ShardedHeap) CheckInvariants() error { return sh.checkInvariants(0) }

// CheckInvariantsSlack is CheckInvariants with Heap.CheckInvariantsSlack's
// §12 ledger allowance for untagged heaps under double-free injection;
// structural invariants stay exact on every shard. Each shard is granted
// the full allowance — the caller cannot know which shard a straddling
// double landed on.
func (sh *ShardedHeap) CheckInvariantsSlack(slack uint64) error {
	return sh.checkInvariants(slack)
}

func (sh *ShardedHeap) checkInvariants(slack uint64) error {
	sh.DrainMagazines()
	for i, s := range sh.shards {
		if err := s.checkInvariants(slack); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}
