package core

import (
	"math"
	"sync"
	"testing"

	"diehard/internal/analysis"
	"diehard/internal/heap"
	"diehard/internal/rng"
)

// The magazine layer's test battery (DESIGN.md §11): batched refills
// must consume exactly the prefix of the unbatched placement sequence,
// concurrent magazines must drain to exactly consistent metadata,
// double frees must find exactly one winner no matter which magazine
// flushes them, and refill probe counts must match the batched
// expectation the analysis package derives.

// TestMagazinePrefixPlacement is the prefix-placement proof: a magazine
// serving k sequential mallocs hands out exactly the k addresses the
// unbatched engine hands out, in order, for every size class — the
// refill's batched draw is a contiguous prefix of the per-class MWC
// sequence, and claims made as drawn see the identical bitmap states.
// This is the property that keeps the golden campaign recordings
// meaningful with magazines in the stack.
func TestMagazinePrefixPlacement(t *testing.T) {
	const seed = 99
	const perClass = 200 // spans several refills: 8+16+32+64+64+...
	sizes := []int{8, 17, 100, 1000, MaxObjectSize}

	// 96 MB: the 16 KB class needs 200 live slots below its 1/M
	// threshold (200 * 16 KB * 2 * NumClasses = 75 MB minimum).
	plain, err := New(Options{HeapSize: 96 << 20, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	magged, err := New(Options{HeapSize: 96 << 20, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	m, err := magged.NewMagazine()
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range sizes {
		for i := 0; i < perClass; i++ {
			want, err := plain.Malloc(size)
			if err != nil {
				t.Fatal(err)
			}
			got, err := m.Malloc(size)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("size %d malloc %d: magazine placed %#x, unbatched engine %#x",
					size, i, got, want)
			}
		}
	}
	// Frees through the magazine release the same slots the unbatched
	// engine releases, so continued allocation stays in lockstep
	// (magazine frees batch their bitmap clears, but the stream is
	// untouched by frees in both engines).
	m.Drain()
	if err := magged.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMagazineDrainExactness churns a workload through a magazine, then
// drains: every counter, the bitmap population, and FreeSlots walks
// must be exact — served mallocs published, buffered frees flushed,
// unconsumed claims returned.
func TestMagazineDrainExactness(t *testing.T) {
	h, err := New(Options{HeapSize: 48 << 20, Seed: 4242})
	if err != nil {
		t.Fatal(err)
	}
	m, err := h.NewMagazine()
	if err != nil {
		t.Fatal(err)
	}
	r := rng.NewSeeded(7)
	live := make([]heap.Ptr, 0, 512)
	for i := 0; i < 4000; i++ {
		p, err := m.Malloc(8 << (i % 3))
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, p)
		if len(live) > 256 {
			victim := r.Intn(len(live))
			if err := m.Free(live[victim]); err != nil {
				t.Fatal(err)
			}
			live[victim] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	m.Drain()
	popcountVsInUse(t, h)
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.Mallocs != 4000 {
		t.Errorf("drained Mallocs = %d, want 4000", st.Mallocs)
	}
	if st.Frees != 4000-uint64(len(live)) {
		t.Errorf("drained Frees = %d, want %d", st.Frees, 4000-len(live))
	}
	if st.LiveObjects != uint64(len(live)) {
		t.Errorf("drained LiveObjects = %d, want %d", st.LiveObjects, len(live))
	}
	// The magazine stays usable after a drain.
	if _, err := m.Malloc(64); err != nil {
		t.Fatal(err)
	}
	m.Close()
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMagazineRaceBattery is the N-goroutine magazine race test: one
// magazine per goroutine over one concurrent heap, churning overlapping
// size classes (so refills race refills, flushes race flushes, and the
// probe streams are genuinely contended), ending in drain +
// CheckInvariants + bitmap-popcount == inUse. Runs under -race in CI.
func TestMagazineRaceBattery(t *testing.T) {
	const workers = 8
	const rounds = 400

	h, err := New(Options{HeapSize: 48 << 20, Seed: 31337, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	mags := make([]*Magazine, workers)
	for w := 0; w < workers; w++ {
		if mags[w], err = h.NewMagazine(); err != nil {
			t.Fatal(err)
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			m := mags[id]
			r := rng.NewSeeded(uint64(id)*0x9E3779B9 + 11)
			live := make([]heap.Ptr, 0, 64)
			for i := 0; i < rounds; i++ {
				size := 8 << (r.Intn(3)) // everyone shares classes 0..2
				p, err := m.Malloc(size)
				if err != nil {
					errs[id] = err
					return
				}
				live = append(live, p)
				if len(live) > 48 {
					victim := r.Intn(len(live))
					if err := m.Free(live[victim]); err != nil {
						errs[id] = err
						return
					}
					live[victim] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
			for _, p := range live {
				if err := m.Free(p); err != nil {
					errs[id] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", id, err)
		}
	}
	// CheckInvariants drains every registered magazine first (the drain
	// barrier), so popcount == inUse must hold afterwards with nothing
	// still parked in a magazine.
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	popcountVsInUse(t, h)
	st := h.Stats()
	if st.Mallocs != workers*rounds {
		t.Errorf("Mallocs = %d, want %d", st.Mallocs, workers*rounds)
	}
	if st.Frees != workers*rounds {
		t.Errorf("Frees = %d, want %d (every worker freed everything)", st.Frees, workers*rounds)
	}
	if st.LiveObjects != 0 {
		t.Errorf("LiveObjects = %d after full teardown, want 0", st.LiveObjects)
	}
	for _, m := range mags {
		m.Close()
	}
}

// TestMagazineShardedRace drives magazines over a ShardedHeap: refills
// route by occupancy across shards, frees route home by page index, and
// the sharded drain barrier must leave every shard exactly consistent.
func TestMagazineShardedRace(t *testing.T) {
	const workers = 6
	const rounds = 300

	sh, err := NewSharded(3, Options{HeapSize: 48 << 20, Seed: 2718})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		m, err := sh.NewMagazine()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id int, m *Magazine) {
			defer wg.Done()
			defer m.Close()
			r := rng.NewSeeded(uint64(id)*0x6C078965 + 3)
			live := make([]heap.Ptr, 0, 64)
			for i := 0; i < rounds; i++ {
				p, err := m.Malloc(8 << (r.Intn(3)))
				if err != nil {
					errs[id] = err
					return
				}
				live = append(live, p)
				if len(live) > 40 {
					victim := r.Intn(len(live))
					if err := m.Free(live[victim]); err != nil {
						errs[id] = err
						return
					}
					live[victim] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
			for _, p := range live {
				if err := m.Free(p); err != nil {
					errs[id] = err
					return
				}
			}
		}(w, m)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", id, err)
		}
	}
	if err := sh.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := sh.Stats()
	if st.Mallocs != workers*rounds {
		t.Errorf("Mallocs = %d, want %d", st.Mallocs, workers*rounds)
	}
	if st.LiveObjects != 0 {
		t.Errorf("LiveObjects = %d after full teardown, want 0", st.LiveObjects)
	}
}

// TestMagazineDoubleFreeOneWinner aims racing double frees of the same
// pointers through different magazines: across every flush, exactly one
// free per pointer may win (counted in Frees) and every other must be
// detected and ignored (IgnoredFrees) — §4.3 semantics preserved
// through the batching layer.
func TestMagazineDoubleFreeOneWinner(t *testing.T) {
	const dups = 4 // each pointer freed through this many magazines
	const objects = 300

	h, err := New(Options{HeapSize: 48 << 20, Seed: 5150, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	feeder, err := h.NewMagazine()
	if err != nil {
		t.Fatal(err)
	}
	ptrs := make([]heap.Ptr, objects)
	for i := range ptrs {
		if ptrs[i], err = feeder.Malloc(64); err != nil {
			t.Fatal(err)
		}
	}
	feeder.Drain()
	var wg sync.WaitGroup
	errs := make([]error, dups)
	for d := 0; d < dups; d++ {
		m, err := h.NewMagazine()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id int, m *Magazine) {
			defer wg.Done()
			defer m.Close()
			for _, p := range ptrs {
				if err := m.Free(p); err != nil {
					errs[id] = err
					return
				}
			}
		}(d, m)
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("freer %d: %v", id, err)
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.Frees != objects {
		t.Errorf("Frees = %d, want exactly %d (one winner per pointer)", st.Frees, objects)
	}
	if want := uint64(objects * (dups - 1)); st.IgnoredFrees != want {
		t.Errorf("IgnoredFrees = %d, want %d (every duplicate detected)", st.IgnoredFrees, want)
	}
	if st.LiveObjects != 0 {
		t.Errorf("LiveObjects = %d, want 0", st.LiveObjects)
	}
	popcountVsInUse(t, h)
}

// TestMagazineInvalidFrees routes the §4.3 ignore paths through a
// magazine: null, foreign, and misaligned-interior frees must all be
// ignored without perturbing magazine or heap state.
func TestMagazineInvalidFrees(t *testing.T) {
	h, err := New(Options{HeapSize: 48 << 20, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	m, err := h.NewMagazine()
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Malloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Free(heap.Null); err != nil {
		t.Fatal(err)
	}
	if err := m.Free(p + 8); err != nil { // misaligned interior pointer
		t.Fatal(err)
	}
	if err := m.Free(0xDEADBEEF00); err != nil { // foreign
		t.Fatal(err)
	}
	m.Drain()
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.IgnoredFrees != 2 {
		t.Errorf("IgnoredFrees = %d, want 2 (misaligned + foreign; free(NULL) is a no-op)", st.IgnoredFrees)
	}
	if st.LiveObjects != 1 {
		t.Errorf("LiveObjects = %d, want 1", st.LiveObjects)
	}
}

// TestMagazineEngineGates pins the construction gates: magazines refuse
// the locked engine and hooked (detection) heaps.
func TestMagazineEngineGates(t *testing.T) {
	locked, err := New(Options{HeapSize: 48 << 20, Seed: 1, LockedHeap: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := locked.NewMagazine(); err == nil {
		t.Error("NewMagazine on a LockedHeap engine succeeded; want error")
	}
	hooked, err := New(Options{HeapSize: 48 << 20, Seed: 1, OnAlloc: func(heap.Ptr, int, int) {}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hooked.NewMagazine(); err == nil {
		t.Error("NewMagazine on a hooked heap succeeded; want error")
	}
}

// TestMagazineLargeObjects confirms large objects pass through the
// magazine unbatched with their guarded-mapping lifecycle intact.
func TestMagazineLargeObjects(t *testing.T) {
	h, err := New(Options{HeapSize: 48 << 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m, err := h.NewMagazine()
	if err != nil {
		t.Fatal(err)
	}
	p, err := m.Malloc(MaxObjectSize + 1)
	if err != nil {
		t.Fatal(err)
	}
	if h.LargeObjects() != 1 {
		t.Fatalf("LargeObjects = %d, want 1", h.LargeObjects())
	}
	if err := m.Free(p); err != nil {
		t.Fatal(err)
	}
	if h.LargeObjects() != 0 {
		t.Fatalf("LargeObjects = %d after free, want 0", h.LargeObjects())
	}
}

// TestMagazineProbeDistribution brackets empirical refill probe counts
// against analysis.ExpectedBatchProbes at 1/2-full (M = 2) and 5/6-full
// (M = 1.2) steady states: randomized placement's probe-cost model
// survives batching at every intermediate fullness the batch traverses.
func TestMagazineProbeDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical bracket needs full refill volume")
	}
	for _, tc := range []struct {
		name string
		m    float64
	}{
		{"half-full-M2", 2.0},
		{"five-sixths-full-M1.2", 1.2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			h, err := New(Options{HeapSize: 12 << 20, Seed: 9090, M: tc.m})
			if err != nil {
				t.Fatal(err)
			}
			m, err := h.NewMagazine()
			if err != nil {
				t.Fatal(err)
			}
			const c = 3 // 64-byte class
			cm := &m.classes[c]
			cm.cap = MagazineMaxCap // skip warm-up growth: every refill is full-size
			total, maxInUse := h.ClassSlots(c)
			// Fill to the threshold minus exactly one magazine batch
			// through the unbatched path, so every steady-state refill
			// reserves a full batch starting at live = maxInUse - cap.
			for i := 0; i < maxInUse-MagazineMaxCap; i++ {
				if _, err := h.Malloc(64); err != nil {
					t.Fatal(err)
				}
			}
			// Steady churn: each round consumes one whole magazine (cap
			// mallocs → one refill at the target fullness) and frees it
			// back. Probes are read around the refill boundary.
			const rounds = 400
			live := make([]heap.Ptr, 0, MagazineMaxCap)
			var refillProbes uint64
			for r := 0; r < rounds; r++ {
				before := h.Stats().Probes
				for i := 0; i < MagazineMaxCap; i++ {
					p, err := m.Malloc(64)
					if err != nil {
						t.Fatal(err)
					}
					live = append(live, p)
				}
				refillProbes += h.Stats().Probes - before
				for _, p := range live {
					if err := m.Free(p); err != nil {
						t.Fatal(err)
					}
				}
				live = live[:0]
			}
			// Buffered frees keep bits set until the flush, so refills
			// probe against up to cap phantom-live slots; bracket against
			// the worst case (live = maxInUse - cap claimed + cap
			// still-buffered) and best case with ±10% slack.
			meanGot := float64(refillProbes) / rounds
			low := analysis.ExpectedBatchProbes(total, maxInUse-MagazineMaxCap, MagazineMaxCap)
			high := analysis.ExpectedBatchProbes(total, maxInUse, MagazineMaxCap)
			if hi := high * 1.10; meanGot > hi {
				t.Errorf("mean refill probes %.2f above bracket [%.2f, %.2f] (+10%%)",
					meanGot, low, hi)
			}
			if lo := low * 0.90; meanGot < lo {
				t.Errorf("mean refill probes %.2f below bracket [%.2f, %.2f] (-10%%)",
					meanGot, lo, high)
			}
			// Sanity: the bracket itself must contain the single-malloc
			// expectation scaled by the batch, or the test is vacuous.
			single := analysis.ExpectedProbes(float64(maxInUse-MagazineMaxCap)/float64(total)) *
				MagazineMaxCap
			if !(single >= low*0.5 && single <= high*2) {
				t.Fatalf("bracket [%v, %v] implausible vs scaled single expectation %v",
					low, high, single)
			}
			if math.IsNaN(meanGot) {
				t.Fatal("no refills observed")
			}
		})
	}
}
