package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"diehard/internal/heap"
	"diehard/internal/rng"
	"diehard/internal/vmem"
)

// testHeap returns a small deterministic heap suitable for unit tests:
// 12 MB total, 1 MB per class.
func testHeap(t *testing.T, opts Options) *Heap {
	t.Helper()
	if opts.HeapSize == 0 {
		opts.HeapSize = 12 << 20
	}
	if opts.Seed == 0 {
		opts.Seed = 0x5eed
	}
	h, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestMallocFreeRoundTrip(t *testing.T) {
	h := testHeap(t, Options{})
	p, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Mem().Store64(p, 0x1234567890abcdef); err != nil {
		t.Fatal(err)
	}
	v, err := h.Mem().Load64(p)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x1234567890abcdef {
		t.Fatalf("round trip got %#x", v)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.Mallocs != 1 || st.Frees != 1 || st.LiveObjects != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct {
		size, class int
	}{
		{1, 0}, {7, 0}, {8, 0}, {9, 1}, {16, 1}, {17, 2}, {32, 2},
		{33, 3}, {64, 3}, {100, 4}, {128, 4}, {129, 5}, {256, 5},
		{4096, 9}, {8192, 10}, {8193, 11}, {16384, 11},
	}
	for _, c := range cases {
		if got := ClassFor(c.size); got != c.class {
			t.Errorf("ClassFor(%d) = %d, want %d", c.size, got, c.class)
		}
		if ClassSize(c.class) < c.size {
			t.Errorf("ClassSize(%d) = %d smaller than request %d", c.class, ClassSize(c.class), c.size)
		}
	}
}

func TestMallocRoundsToClassSize(t *testing.T) {
	h := testHeap(t, Options{})
	p, err := h.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	size, ok := h.SizeOf(p)
	if !ok || size != 128 {
		t.Fatalf("SizeOf = %d,%v; want 128", size, ok)
	}
}

func TestMallocZeroAndNegative(t *testing.T) {
	h := testHeap(t, Options{})
	p, err := h.Malloc(0)
	if err != nil || p == heap.Null {
		t.Fatalf("malloc(0) = %v, %v", p, err)
	}
	if _, err := h.Malloc(-1); err == nil {
		t.Fatal("malloc(-1) should fail")
	}
}

func TestDistinctPointers(t *testing.T) {
	h := testHeap(t, Options{})
	seen := make(map[heap.Ptr]bool)
	for i := 0; i < 1000; i++ {
		p, err := h.Malloc(16)
		if err != nil {
			t.Fatal(err)
		}
		if seen[p] {
			t.Fatalf("pointer %#x returned twice while live", p)
		}
		seen[p] = true
	}
}

func TestOutOfMemoryAtThreshold(t *testing.T) {
	// Tiny heap: each class gets one page. Class 0 (8-byte objects) has
	// 512 slots, threshold 256 at M=2.
	h := testHeap(t, Options{HeapSize: 12 * vmem.PageSize})
	total, maxInUse := h.ClassSlots(0)
	if total != 512 || maxInUse != 256 {
		t.Fatalf("slots=%d max=%d, want 512/256", total, maxInUse)
	}
	for i := 0; i < maxInUse; i++ {
		if _, err := h.Malloc(8); err != nil {
			t.Fatalf("alloc %d failed below threshold: %v", i, err)
		}
	}
	if _, err := h.Malloc(8); !errors.Is(err, heap.ErrOutOfMemory) {
		t.Fatalf("allocation at threshold returned %v, want ErrOutOfMemory", err)
	}
	// Other classes are unaffected by class 0 exhaustion.
	if _, err := h.Malloc(16); err != nil {
		t.Fatalf("other class should still allocate: %v", err)
	}
}

func TestFreeMakesRoomAgain(t *testing.T) {
	h := testHeap(t, Options{HeapSize: 12 * vmem.PageSize})
	_, maxInUse := h.ClassSlots(0)
	ptrs := make([]heap.Ptr, 0, maxInUse)
	for i := 0; i < maxInUse; i++ {
		p, err := h.Malloc(8)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	if err := h.Free(ptrs[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Malloc(8); err != nil {
		t.Fatalf("allocation after free failed: %v", err)
	}
}

func TestDoubleFreeIgnored(t *testing.T) {
	h := testHeap(t, Options{})
	p, _ := h.Malloc(32)
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		t.Fatalf("double free must be ignored, got %v", err)
	}
	if h.Stats().IgnoredFrees != 1 {
		t.Fatalf("IgnoredFrees = %d, want 1", h.Stats().IgnoredFrees)
	}
	if h.Stats().Frees != 1 {
		t.Fatalf("Frees = %d, want 1", h.Stats().Frees)
	}
}

func TestInvalidFreeIgnored(t *testing.T) {
	h := testHeap(t, Options{})
	for _, p := range []heap.Ptr{0xdead0000, 12345} {
		if err := h.Free(p); err != nil {
			t.Fatalf("invalid free of %#x must be ignored, got %v", p, err)
		}
	}
	if h.Stats().IgnoredFrees != 2 {
		t.Fatalf("IgnoredFrees = %d, want 2", h.Stats().IgnoredFrees)
	}
}

func TestMisalignedFreeIgnored(t *testing.T) {
	h := testHeap(t, Options{})
	p, _ := h.Malloc(64)
	if err := h.Free(p + 4); err != nil {
		t.Fatalf("misaligned free must be ignored, got %v", err)
	}
	if h.Stats().IgnoredFrees != 1 {
		t.Fatal("misaligned free was not counted as ignored")
	}
	// The object must still be allocated.
	if _, ok := h.SizeOf(p); !ok {
		t.Fatal("misaligned free deallocated the object")
	}
}

func TestFreeNull(t *testing.T) {
	h := testHeap(t, Options{})
	if err := h.Free(heap.Null); err != nil {
		t.Fatalf("free(NULL) must be a no-op, got %v", err)
	}
	if h.Stats().IgnoredFrees != 0 {
		t.Fatal("free(NULL) should not count as ignored")
	}
}

func TestLargeObjectLifecycle(t *testing.T) {
	h := testHeap(t, Options{})
	p, err := h.Malloc(100_000)
	if err != nil {
		t.Fatal(err)
	}
	if h.LargeObjects() != 1 {
		t.Fatal("large object not recorded")
	}
	if err := h.Mem().Store64(p+99_992, 7); err != nil {
		t.Fatalf("write near end of large object failed: %v", err)
	}
	size, ok := h.SizeOf(p)
	if !ok || size != 100_000 {
		t.Fatalf("SizeOf large = %d,%v", size, ok)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if h.LargeObjects() != 0 {
		t.Fatal("large object not removed on free")
	}
	if _, err := h.Mem().Load8(p); err == nil {
		t.Fatal("access to freed large object should fault")
	}
	// Second free is an invalid free and must be ignored.
	if err := h.Free(p); err != nil {
		t.Fatalf("double free of large object must be ignored: %v", err)
	}
}

func TestLargeObjectGuardPages(t *testing.T) {
	h := testHeap(t, Options{})
	p, err := h.Malloc(20_000)
	if err != nil {
		t.Fatal(err)
	}
	pages := (20_000 + vmem.PageSize - 1) / vmem.PageSize
	if err := h.Mem().Store8(p+uint64(pages*vmem.PageSize), 1); err == nil {
		t.Fatal("write past large object into guard page should fault")
	}
	if err := h.Mem().Store8(p-1, 1); err == nil {
		t.Fatal("write before large object into guard page should fault")
	}
}

func TestPartitionEndGuard(t *testing.T) {
	h := testHeap(t, Options{HeapSize: 12 * vmem.PageSize})
	total, _ := h.ClassSlots(0)
	end := h.ClassBase(0) + uint64(total*8)
	if err := h.Mem().Store8(end, 1); err == nil {
		t.Fatal("write past end of partition should hit guard page")
	}
}

func TestOverflowWithinPartitionDoesNotFault(t *testing.T) {
	// An overflow of one object width inside a partition lands on heap
	// space (live or free), never on metadata: DieHard's metadata is
	// segregated, so the write succeeds and corrupts nothing structural.
	h := testHeap(t, Options{})
	p, _ := h.Malloc(64)
	if err := h.Mem().Store64(p+64, 0xbad); err != nil {
		t.Fatalf("overflow into neighboring slot should not fault: %v", err)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("metadata corrupted by heap overflow: %v", err)
	}
}

func TestRandomizedPlacement(t *testing.T) {
	a := testHeap(t, Options{Seed: 1})
	b := testHeap(t, Options{Seed: 2})
	differ := false
	for i := 0; i < 50; i++ {
		pa, _ := a.Malloc(64)
		pb, _ := b.Malloc(64)
		if pa != pb {
			differ = true
		}
	}
	if !differ {
		t.Fatal("two differently seeded heaps produced identical layouts")
	}
	// Also: consecutive allocations should not be adjacent in general.
	h := testHeap(t, Options{})
	adjacent := 0
	prev, _ := h.Malloc(64)
	for i := 0; i < 200; i++ {
		p, _ := h.Malloc(64)
		d := int64(p) - int64(prev)
		if d == 64 || d == -64 {
			adjacent++
		}
		prev = p
	}
	if adjacent > 10 {
		t.Fatalf("%d/200 consecutive allocations adjacent; layout not randomized", adjacent)
	}
}

func TestSameSeedSameLayout(t *testing.T) {
	a := testHeap(t, Options{Seed: 99})
	b := testHeap(t, Options{Seed: 99})
	for i := 0; i < 100; i++ {
		pa, _ := a.Malloc(32)
		pb, _ := b.Malloc(32)
		if pa != pb {
			t.Fatalf("same seed diverged at allocation %d", i)
		}
	}
}

func TestRandomFillDiffersAcrossReplicas(t *testing.T) {
	a := testHeap(t, Options{Seed: 1, RandomFill: true})
	b := testHeap(t, Options{Seed: 2, RandomFill: true})
	pa, _ := a.Malloc(256)
	pb, _ := b.Malloc(256)
	bufA := make([]byte, 256)
	bufB := make([]byte, 256)
	if err := a.Mem().ReadBytes(pa, bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.Mem().ReadBytes(pb, bufB); err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range bufA {
		if bufA[i] == bufB[i] {
			same++
		}
	}
	if same == len(bufA) {
		t.Fatal("uninitialized object contents identical across replicas")
	}
	// And not all zero.
	zero := 0
	for _, x := range bufA {
		if x == 0 {
			zero++
		}
	}
	if zero == len(bufA) {
		t.Fatal("RandomFill left object zeroed")
	}
}

func TestStandAloneFreshMemoryIsZero(t *testing.T) {
	h := testHeap(t, Options{})
	p, _ := h.Malloc(128)
	buf := make([]byte, 128)
	if err := h.Mem().ReadBytes(p, buf); err != nil {
		t.Fatal(err)
	}
	for i, x := range buf {
		if x != 0 {
			t.Fatalf("stand-alone heap byte %d = %#x, want 0", i, x)
		}
	}
}

func TestObjectBounds(t *testing.T) {
	h := testHeap(t, Options{})
	p, _ := h.Malloc(128)
	start, size, ok := h.ObjectBounds(p + 57)
	if !ok || start != p || size != 128 {
		t.Fatalf("ObjectBounds interior = %#x,%d,%v; want %#x,128", start, size, ok, p)
	}
	if _, _, ok := h.ObjectBounds(0xdead0000); ok {
		t.Fatal("ObjectBounds of wild pointer should fail")
	}
	// Freed object: bounds no longer resolve.
	_ = h.Free(p)
	if _, _, ok := h.ObjectBounds(p); ok {
		t.Fatal("ObjectBounds of freed object should fail")
	}
	// Large object interior pointer.
	lp, _ := h.Malloc(50_000)
	start, size, ok = h.ObjectBounds(lp + 40_000)
	if !ok || start != lp || size != 50_000 {
		t.Fatalf("large ObjectBounds = %#x,%d,%v", start, size, ok)
	}
}

func TestInHeap(t *testing.T) {
	h := testHeap(t, Options{})
	p, _ := h.Malloc(64)
	if !h.InHeap(p) {
		t.Fatal("allocated pointer not recognized as in-heap")
	}
	lp, _ := h.Malloc(100_000)
	if h.InHeap(lp) {
		t.Fatal("large objects live outside the small-object heap")
	}
	if h.InHeap(0x1234) {
		t.Fatal("wild pointer reported in-heap")
	}
}

func TestAdaptiveGrowth(t *testing.T) {
	h := testHeap(t, Options{
		HeapSize:        12 << 20,
		Adaptive:        true,
		AdaptiveInitial: 64 << 10,
	})
	total0, _ := h.ClassSlots(0)
	if total0 != (64<<10)/8 {
		t.Fatalf("initial adaptive slots = %d", total0)
	}
	// Allocate past the initial threshold; the heap must grow rather
	// than fail.
	n := total0 // more than initial maxInUse = total0/2
	for i := 0; i < n; i++ {
		if _, err := h.Malloc(8); err != nil {
			t.Fatalf("adaptive heap failed at %d: %v", i, err)
		}
	}
	grown, _ := h.ClassSlots(0)
	if grown <= total0 {
		t.Fatalf("adaptive heap did not grow: %d -> %d", total0, grown)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveStopsAtCap(t *testing.T) {
	// Heap of 12 pages: cap is one page (512 slots) per class; start at
	// one page too, so growth is impossible and OOM appears at 256.
	h := testHeap(t, Options{
		HeapSize:        12 * vmem.PageSize,
		Adaptive:        true,
		AdaptiveInitial: vmem.PageSize,
	})
	allocated := 0
	for {
		if _, err := h.Malloc(8); err != nil {
			break
		}
		allocated++
		if allocated > 10000 {
			t.Fatal("adaptive heap grew past its cap")
		}
	}
	if allocated != 256 {
		t.Fatalf("capped adaptive heap allocated %d, want 256", allocated)
	}
}

func TestExpectedProbes(t *testing.T) {
	// §4.2: with the heap 1/M full, expected probes = 1/(1 - 1/M) = 2
	// for M = 2. Hold the class at its threshold and measure the probe
	// count of free/malloc pairs at that steady state.
	h := testHeap(t, Options{HeapSize: 12 * vmem.PageSize, Seed: 42})
	_, maxInUse := h.ClassSlots(0)
	ptrs := make([]heap.Ptr, maxInUse)
	for i := range ptrs {
		p, err := h.Malloc(8)
		if err != nil {
			t.Fatal(err)
		}
		ptrs[i] = p
	}
	r := rng.NewSeeded(7)
	before := h.Stats().Probes
	const trials = 20000
	for i := 0; i < trials; i++ {
		victim := r.Intn(len(ptrs))
		if err := h.Free(ptrs[victim]); err != nil {
			t.Fatal(err)
		}
		p, err := h.Malloc(8)
		if err != nil {
			t.Fatal(err)
		}
		ptrs[victim] = p
	}
	mean := float64(h.Stats().Probes-before) / trials
	// At threshold the fullness alternates between 1/2 and just below,
	// so the expectation is just under 2.
	if math.Abs(mean-2.0) > 0.15 {
		t.Fatalf("mean probes %f, want about 2 (M=2)", mean)
	}
}

func TestStatsAccounting(t *testing.T) {
	h := testHeap(t, Options{})
	p1, _ := h.Malloc(100) // rounds to 128
	p2, _ := h.Malloc(8)
	st := h.Stats()
	if st.BytesRequested != 108 || st.BytesAllocated != 136 {
		t.Fatalf("requested=%d allocated=%d", st.BytesRequested, st.BytesAllocated)
	}
	if st.LiveBytes != 136 || st.PeakLiveBytes != 136 {
		t.Fatalf("live=%d peak=%d", st.LiveBytes, st.PeakLiveBytes)
	}
	_ = h.Free(p1)
	_ = h.Free(p2)
	if st.LiveBytes != 0 || st.PeakLiveBytes != 136 {
		t.Fatalf("after frees live=%d peak=%d", st.LiveBytes, st.PeakLiveBytes)
	}
}

func TestCallocZeroesReplicatedHeap(t *testing.T) {
	h := testHeap(t, Options{RandomFill: true})
	p, err := heap.Calloc(h, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	if err := h.Mem().ReadBytes(p, buf); err != nil {
		t.Fatal(err)
	}
	for i, x := range buf {
		if x != 0 {
			t.Fatalf("calloc byte %d = %#x", i, x)
		}
	}
}

func TestReallocPreservesContents(t *testing.T) {
	h := testHeap(t, Options{})
	p, _ := h.Malloc(32)
	if err := h.Mem().WriteBytes(p, []byte("hello, diehard!!")); err != nil {
		t.Fatal(err)
	}
	np, err := heap.Realloc(h, p, 4096)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if err := h.Mem().ReadBytes(np, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "hello, diehard!!" {
		t.Fatalf("realloc lost contents: %q", buf)
	}
	// Old object must have been freed.
	if _, ok := h.SizeOf(p); ok && p != np {
		t.Fatal("realloc did not free the old object")
	}
}

func TestInvariantsUnderRandomWorkload(t *testing.T) {
	h := testHeap(t, Options{HeapSize: 6 << 20, Seed: 123})
	r := rng.NewSeeded(321)
	live := make([]heap.Ptr, 0, 1024)
	for op := 0; op < 20000; op++ {
		switch {
		case len(live) > 0 && r.Intn(100) < 45:
			i := r.Intn(len(live))
			if err := h.Free(live[i]); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		case r.Intn(100) < 3: // occasional invalid/double free
			_ = h.Free(heap.Ptr(r.Next64()))
		default:
			size := 1 << uint(r.Intn(15)) // 1..16K
			p, err := h.Malloc(size)
			if errors.Is(err, heap.ErrOutOfMemory) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, p)
		}
		if op%2500 == 0 {
			if err := h.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBadOptions(t *testing.T) {
	if _, err := New(Options{M: 1.0}); err == nil {
		t.Fatal("M = 1 must be rejected")
	}
	if _, err := New(Options{M: 0.5}); err == nil {
		t.Fatal("M < 1 must be rejected")
	}
	if _, err := New(Options{HeapSize: 100}); err == nil {
		t.Fatal("tiny heap must be rejected")
	}
}

func TestName(t *testing.T) {
	if testHeap(t, Options{}).Name() != "diehard" {
		t.Fatal("stand-alone name")
	}
	if testHeap(t, Options{RandomFill: true}).Name() != "diehard-r" {
		t.Fatal("replicated name")
	}
}

func BenchmarkMalloc64(b *testing.B) {
	h, err := New(Options{HeapSize: 48 << 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	ptrs := make([]heap.Ptr, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := h.Malloc(64)
		if err != nil {
			// Recycle when the class fills.
			b.StopTimer()
			for _, q := range ptrs {
				_ = h.Free(q)
			}
			ptrs = ptrs[:0]
			b.StartTimer()
			p, _ = h.Malloc(64)
		}
		ptrs = append(ptrs, p)
	}
}

func BenchmarkMallocFreePair(b *testing.B) {
	h, err := New(Options{HeapSize: 48 << 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, _ := h.Malloc(64)
		_ = h.Free(p)
	}
}

// TestDifferentialModel runs a randomized operation sequence against the
// allocator and an independent reference model (a Go map of live objects
// and their contents), verifying after every step that no live object's
// data was disturbed and no two live objects overlap.
func TestDifferentialModel(t *testing.T) {
	h := testHeap(t, Options{HeapSize: 6 << 20, Seed: 0xD1F})
	r := rng.NewSeeded(0xF1D)
	type object struct {
		ptr     heap.Ptr
		size    int
		pattern byte
	}
	live := make(map[heap.Ptr]object)
	checkAll := func(op int) {
		for _, o := range live {
			b := make([]byte, o.size)
			if err := h.Mem().ReadBytes(o.ptr, b); err != nil {
				t.Fatalf("op %d: read of live object failed: %v", op, err)
			}
			for i, x := range b {
				if x != o.pattern {
					t.Fatalf("op %d: object %#x byte %d = %#x, want %#x",
						op, o.ptr, i, x, o.pattern)
				}
			}
		}
	}
	for op := 0; op < 4000; op++ {
		switch {
		case len(live) > 0 && r.Intn(100) < 40:
			// Free a random live object.
			var victim object
			n := r.Intn(len(live))
			for _, o := range live {
				if n == 0 {
					victim = o
					break
				}
				n--
			}
			if err := h.Free(victim.ptr); err != nil {
				t.Fatal(err)
			}
			delete(live, victim.ptr)
		case r.Intn(100) < 5:
			// Hostile input: double/invalid frees must be no-ops.
			_ = h.Free(heap.Ptr(r.Next64()))
			for p := range live {
				_ = h.Free(p + 4) // misaligned
				break
			}
		default:
			size := 1 + r.Intn(200)
			if r.Intn(20) == 0 {
				size = 17000 + r.Intn(30000) // large object
			}
			p, err := h.Malloc(size)
			if errors.Is(err, heap.ErrOutOfMemory) {
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			// Overlap check against every live object.
			for _, o := range live {
				if p < o.ptr+uint64(o.size) && o.ptr < p+uint64(size) {
					t.Fatalf("op %d: %#x+%d overlaps live %#x+%d", op, p, size, o.ptr, o.size)
				}
			}
			pat := byte(r.Next())
			if err := h.Mem().Memset(p, pat, size); err != nil {
				t.Fatal(err)
			}
			live[p] = object{ptr: p, size: size, pattern: pat}
		}
		if op%500 == 0 {
			checkAll(op)
			if err := h.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	checkAll(4000)
}

func TestQuickClassForProperties(t *testing.T) {
	f := func(raw uint16) bool {
		size := int(raw)
		if size == 0 {
			size = 1
		}
		if size > MaxObjectSize {
			size = MaxObjectSize
		}
		c := ClassFor(size)
		if c < 0 || c >= NumClasses {
			return false
		}
		// The class size covers the request...
		if ClassSize(c) < size {
			return false
		}
		// ...and is the smallest class that does (no waste beyond 2x).
		if c > 0 && ClassSize(c-1) >= size {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMallocFreeNeverCorrupts(t *testing.T) {
	// Property: any interleaving of mallocs and frees (valid or not)
	// leaves the metadata self-consistent.
	f := func(seed uint64, script []byte) bool {
		h, err := New(Options{HeapSize: 12 * vmem.PageSize, Seed: seed | 1})
		if err != nil {
			return false
		}
		var live []heap.Ptr
		for _, b := range script {
			switch {
			case b < 120:
				p, err := h.Malloc(1 + int(b)%64)
				if err == nil {
					live = append(live, p)
				}
			case b < 200 && len(live) > 0:
				i := int(b) % len(live)
				if h.Free(live[i]) != nil {
					return false // DieHard frees never error
				}
				live = append(live[:i], live[i+1:]...)
			default:
				_ = h.Free(heap.Ptr(b) * 977) // hostile free
			}
		}
		return h.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeObjectChurn(t *testing.T) {
	h := testHeap(t, Options{})
	var ptrs []heap.Ptr
	for round := 0; round < 20; round++ {
		for i := 0; i < 8; i++ {
			p, err := h.Malloc(17000 + i*4096)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Mem().Store64(p, uint64(round*100+i)); err != nil {
				t.Fatal(err)
			}
			ptrs = append(ptrs, p)
		}
		// Free half each round.
		for i := 0; i < 4 && len(ptrs) > 0; i++ {
			if err := h.Free(ptrs[0]); err != nil {
				t.Fatal(err)
			}
			ptrs = ptrs[1:]
		}
	}
	if h.LargeObjects() != len(ptrs) {
		t.Fatalf("large object count %d != %d tracked", h.LargeObjects(), len(ptrs))
	}
	for _, p := range ptrs {
		if err := h.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if h.LargeObjects() != 0 {
		t.Fatal("large objects leaked")
	}
}

func TestPageIndexResolvesAcrossAdaptiveGrowth(t *testing.T) {
	// The O(1) page index must keep resolving pointers from early
	// subregions after adaptive growth maps later ones, with large
	// objects interleaved in the address space between them.
	h, err := New(Options{
		HeapSize:        24 << 20,
		Adaptive:        true,
		AdaptiveInitial: vmem.PageSize,
		Seed:            7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ptrs []heap.Ptr
	var large []heap.Ptr
	for i := 0; i < 4000; i++ {
		p, err := h.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
		if i%500 == 0 {
			lp, err := h.Malloc(MaxObjectSize + 1)
			if err != nil {
				t.Fatal(err)
			}
			large = append(large, lp)
		}
	}
	for _, p := range ptrs {
		if sz, ok := h.SizeOf(p); !ok || sz != 64 {
			t.Fatalf("SizeOf(%#x) = %d,%v after growth", p, sz, ok)
		}
		// Interior pointers resolve to the containing object.
		start, size, ok := h.ObjectBounds(p + 13)
		if !ok || start != p || size != 64 {
			t.Fatalf("ObjectBounds(%#x+13) = %#x,%d,%v", p, start, size, ok)
		}
	}
	for _, lp := range large {
		if sz, ok := h.SizeOf(lp); !ok || sz != MaxObjectSize+1 {
			t.Fatalf("large SizeOf = %d,%v", sz, ok)
		}
		// Large objects are not part of the small-object heap.
		if h.InHeap(lp) {
			t.Fatalf("InHeap(%#x) true for large object", lp)
		}
	}
	// Guard pages and inter-region holes resolve to nothing.
	if _, ok := h.SizeOf(h.ClassBase(0) - 1); ok {
		t.Fatal("guard-page pointer resolved to an object")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Free everything through the index; double frees must be ignored.
	for _, p := range ptrs {
		if err := h.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	ignored := h.Stats().IgnoredFrees
	if err := h.Free(ptrs[0]); err != nil {
		t.Fatal(err)
	}
	if h.Stats().IgnoredFrees != ignored+1 {
		t.Fatal("double free after growth not detected via page index")
	}
}
