package core

import (
	"errors"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"diehard/internal/analysis"
	"diehard/internal/heap"
	"diehard/internal/rng"
)

// The lock-free malloc engine's test battery (DESIGN.md §10): the CAS
// probe loop must survive contention with its segregated metadata
// exactly consistent, place objects byte-identically to the locked
// reference engine when one goroutine allocates, keep the probe-count
// distribution the randomized-placement analysis predicts, and never
// touch a class mutex on the fast path.

// popcountVsInUse asserts, per class, that the allocation bitmap's
// population equals the atomic occupancy counter — the explicit pairing
// invariant behind every CAS winner (one bit set <=> one reservation).
func popcountVsInUse(t *testing.T, h *Heap) {
	t.Helper()
	for c := range h.classes {
		cl := &h.classes[c]
		pop := 0
		for _, sub := range cl.regions.Load().subs {
			for w := range sub.bits {
				pop += bits.OnesCount64(atomic.LoadUint64(&sub.bits[w]))
			}
		}
		if inUse := int(atomic.LoadInt64(&cl.inUse)); pop != inUse {
			t.Errorf("class %d: bitmap popcount %d != atomic inUse %d", c, pop, inUse)
		}
	}
}

// TestLockFreeMallocStress hammers the CAS fast path: several goroutines
// per size class churn malloc/free (plus the §4.3 ignore paths) against
// one lock-free heap, and the metadata must come out exactly consistent.
// Runs under -race in CI.
func TestLockFreeMallocStress(t *testing.T) {
	const workersPerClass = 4
	const rounds = 500
	classSizes := []int{8, 64, 1024}

	h, err := New(Options{HeapSize: 48 << 20, Seed: 1337, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	if !h.lockfree {
		t.Fatal("default engine is not lock-free")
	}
	var wg sync.WaitGroup
	errs := make([]error, len(classSizes)*workersPerClass)
	for ci, size := range classSizes {
		for w := 0; w < workersPerClass; w++ {
			wg.Add(1)
			go func(id, size, seed int) {
				defer wg.Done()
				r := rng.NewSeeded(uint64(seed)*0x9E3779B9 + 7)
				live := make([]heap.Ptr, 0, 48)
				for i := 0; i < rounds; i++ {
					p, err := h.Malloc(size)
					if err != nil {
						errs[id] = err
						return
					}
					live = append(live, p)
					if len(live) > 32 {
						victim := r.Intn(len(live))
						if err := h.Free(live[victim]); err != nil {
							errs[id] = err
							return
						}
						live[victim] = live[len(live)-1]
						live = live[:len(live)-1]
					}
					if i%13 == 0 {
						// Racing double and misaligned frees must be
						// ignored without ever corrupting the bitmaps.
						_ = h.Free(p + 1)
					}
				}
				for _, p := range live {
					if err := h.Free(p); err != nil {
						errs[id] = err
						return
					}
				}
			}(ci*workersPerClass+w, size, ci*workersPerClass+w)
		}
	}
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", id, err)
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	popcountVsInUse(t, h)
	st := h.Stats()
	if st.Mallocs != uint64(len(classSizes)*workersPerClass*rounds) {
		t.Errorf("Mallocs = %d, want %d", st.Mallocs, len(classSizes)*workersPerClass*rounds)
	}
	if st.Frees != st.Mallocs {
		t.Errorf("Frees = %d != Mallocs %d after full teardown", st.Frees, st.Mallocs)
	}
}

// TestLockFreeDoubleFreeRace frees every pointer from two goroutines at
// once: exactly one CAS clear may win per pointer, so the ignored-free
// count and the occupancy must both come out exact.
func TestLockFreeDoubleFreeRace(t *testing.T) {
	h, err := New(Options{HeapSize: 12 << 20, Seed: 5, Concurrent: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	ptrs := make([]heap.Ptr, n)
	for i := range ptrs {
		p, err := h.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		ptrs[i] = p
	}
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, p := range ptrs {
				_ = h.Free(p)
			}
		}()
	}
	wg.Wait()
	st := h.Stats()
	if st.Frees != n {
		t.Errorf("Frees = %d, want exactly %d (one winner per racing pair)", st.Frees, n)
	}
	if st.IgnoredFrees != n {
		t.Errorf("IgnoredFrees = %d, want %d (one loser per racing pair)", st.IgnoredFrees, n)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	popcountVsInUse(t, h)
}

// TestLockFreeMatchesLockedLayout is the engine-differencing regression:
// with the same seed and one goroutine, the lock-free engine must place
// every object at exactly the address the locked reference engine does —
// both consume the same per-class draw stream — across mixed sizes,
// frees, large objects, and adaptive growth.
func TestLockFreeMatchesLockedLayout(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		run := func(locked bool) []heap.Ptr {
			h, err := New(Options{
				HeapSize: 16 << 20, Seed: 0xD1FF, LockedHeap: locked,
				Adaptive: adaptive, AdaptiveInitial: 16 << 10,
			})
			if err != nil {
				t.Fatal(err)
			}
			if h.lockfree == locked {
				t.Fatalf("engine selection wrong: lockfree=%v for LockedHeap=%v", h.lockfree, locked)
			}
			r := rng.NewSeeded(99)
			sizes := []int{8, 24, 64, 300, 2048, MaxObjectSize + 100}
			var placed []heap.Ptr
			live := make([]heap.Ptr, 0, 512)
			for i := 0; i < 3000; i++ {
				p, err := h.Malloc(sizes[r.Intn(len(sizes))])
				if err != nil {
					t.Fatal(err)
				}
				placed = append(placed, p)
				live = append(live, p)
				if len(live) > 400 {
					victim := r.Intn(len(live))
					if err := h.Free(live[victim]); err != nil {
						t.Fatal(err)
					}
					live[victim] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
			return placed
		}
		lockfree, locked := run(false), run(true)
		for i := range lockfree {
			if lockfree[i] != locked[i] {
				t.Fatalf("adaptive=%v alloc %d: lock-free placed %#x, locked reference placed %#x",
					adaptive, i, lockfree[i], locked[i])
			}
		}
	}
}

// TestLockFreeSnapshotMatchesLocked runs the same deterministic program
// on both engines and diffs the full heap snapshots: not just addresses
// but live contents must be indistinguishable.
func TestLockFreeSnapshotMatchesLocked(t *testing.T) {
	run := func(locked bool) []ObjectRecord {
		h, err := New(Options{HeapSize: 12 << 20, Seed: 0xFEED, LockedHeap: locked})
		if err != nil {
			t.Fatal(err)
		}
		live := make([]heap.Ptr, 0, 128)
		for i := 0; i < 600; i++ {
			p, err := h.Malloc(16 + i%200)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Mem().Store64(p, uint64(i)); err != nil {
				t.Fatal(err)
			}
			live = append(live, p)
			if i%3 == 0 && len(live) > 1 {
				if err := h.Free(live[0]); err != nil {
					t.Fatal(err)
				}
				live = live[1:]
			}
		}
		snap, err := h.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	if div := DiffSnapshots(run(false), run(true)); len(div) != 0 {
		t.Fatalf("lock-free and locked snapshots diverge: %v", div)
	}
}

// TestLockFreeProbeDistribution brackets the CAS probe loop's empirical
// mean probe count against the geometric expectation 1/(1 - fullness)
// (analysis.ExpectedProbes) at half-full and five-sixths-full heaps: the
// statistical witness that the lock-free rewrite preserved uniform
// randomized placement.
func TestLockFreeProbeDistribution(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical reproduction; skipped in -short mode")
	}
	const pairs = 20000
	for _, m := range []float64{2, 1.2} {
		h, err := New(Options{HeapSize: 8 << 20, M: m, Seed: 0xAB5})
		if err != nil {
			t.Fatal(err)
		}
		if !h.lockfree {
			t.Fatal("default engine is not lock-free")
		}
		c := ClassFor(64)
		total, maxInUse := h.ClassSlots(c)
		ptrs := make([]heap.Ptr, maxInUse)
		for i := range ptrs {
			p, err := h.Malloc(64)
			if err != nil {
				t.Fatal(err)
			}
			ptrs[i] = p
		}
		r := rng.NewSeeded(7)
		before := h.Stats().Probes
		for i := 0; i < pairs; i++ {
			j := r.Intn(len(ptrs))
			if err := h.Free(ptrs[j]); err != nil {
				t.Fatal(err)
			}
			p, err := h.Malloc(64)
			if err != nil {
				t.Fatal(err)
			}
			ptrs[j] = p
		}
		mean := float64(h.Stats().Probes-before) / pairs
		// Each steady-state malloc probes with maxInUse-1 slots occupied.
		fullness := float64(maxInUse-1) / float64(total)
		want := analysis.ExpectedProbes(fullness)
		if math.Abs(mean-want)/want > 0.10 {
			t.Errorf("M=%v: mean probes %.3f, geometric expectation %.3f (fullness %.3f)",
				m, mean, want, fullness)
		}
	}
}

// TestLockFreeMallocAvoidsClassMutex is the no-mutex-on-the-fast-path
// acceptance check: with a class's mutex deliberately held, malloc and
// free of that class must still complete on a non-adaptive lock-free
// heap (only adaptive growth may block on the lock).
func TestLockFreeMallocAvoidsClassMutex(t *testing.T) {
	h, err := New(Options{HeapSize: 12 << 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	cl := &h.classes[ClassFor(64)]
	cl.mu.Lock()
	defer cl.mu.Unlock()
	done := make(chan error, 1)
	go func() {
		p, err := h.Malloc(64)
		if err == nil {
			err = h.Free(p)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("malloc/free blocked on the class mutex: fast path is not lock-free")
	}
}

// TestShardedStealRouting pins the occupancy-aware router: with shard
// 0's size class driven to its 1/M threshold, routed mallocs must steal
// from the emptier shards instead of failing — the exact situation where
// round-robin routing trips one shard's threshold early (it would hand
// every len(shards)-th request to the full shard and get ErrOutOfMemory).
func TestShardedStealRouting(t *testing.T) {
	const shards = 4
	sh, err := NewSharded(shards, Options{HeapSize: shards << 20, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	c := ClassFor(64)
	_, maxInUse := sh.Shard(0).ClassSlots(c)
	for i := 0; i < maxInUse; i++ {
		if _, err := sh.Shard(0).Malloc(64); err != nil {
			t.Fatalf("filling shard 0: %v", err)
		}
	}
	// Shard 0 is at threshold: every routed malloc must now succeed by
	// stealing a slot elsewhere.
	for i := 0; i < 3*maxInUse/2; i++ {
		p, err := sh.Malloc(64)
		if err != nil {
			t.Fatalf("routed malloc %d failed with shard 0 full: %v", i, err)
		}
		if sh.Shard(0).InHeap(p) {
			t.Fatalf("routed malloc %d landed in the full shard", i)
		}
	}
	if use := sh.Shard(0).ClassInUse(c); use != maxInUse {
		t.Errorf("shard 0 occupancy changed to %d during steals", use)
	}
	if err := sh.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestShardedStealExhaustion drives the router to genuine exhaustion:
// every shard's class capacity must be usable through sh.Malloc (the
// refused-shard retry pass), and only when all shards are at their 1/M
// thresholds may the router return out-of-memory.
func TestShardedStealExhaustion(t *testing.T) {
	const shards = 3
	sh, err := NewSharded(shards, Options{HeapSize: shards << 20, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	c := ClassFor(64)
	_, maxInUse := sh.Shard(0).ClassSlots(c)
	for i := 0; i < shards*maxInUse; i++ {
		if _, err := sh.Malloc(64); err != nil {
			t.Fatalf("routed malloc %d/%d failed before exhaustion: %v", i, shards*maxInUse, err)
		}
	}
	if _, err := sh.Malloc(64); !errors.Is(err, heap.ErrOutOfMemory) {
		t.Fatalf("past exhaustion: err = %v, want ErrOutOfMemory", err)
	}
	for i := 0; i < shards; i++ {
		if use := sh.Shard(i).ClassInUse(c); use != maxInUse {
			t.Errorf("shard %d occupancy %d != threshold %d at exhaustion", i, use, maxInUse)
		}
	}
}

// TestShardedStealBalancesSkew drives all mallocs through the router and
// checks the per-shard occupancy spread stays tight: emptiest-shard
// stealing is self-balancing, landing each routing decision on a
// least-loaded shard. With routing hysteresis a decision is reused for
// up to routeWindow requests before occupancy is re-read, so the
// max-min spread is bounded by the window, not by one slot.
func TestShardedStealBalancesSkew(t *testing.T) {
	const shards = 4
	sh, err := NewSharded(shards, Options{HeapSize: shards * 12 << 20, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	c := ClassFor(64)
	for i := 0; i < 4000; i++ {
		if _, err := sh.Malloc(64); err != nil {
			t.Fatal(err)
		}
	}
	minUse, maxUse := int(^uint(0)>>1), 0
	for i := 0; i < shards; i++ {
		use := sh.Shard(i).ClassInUse(c)
		if use < minUse {
			minUse = use
		}
		if use > maxUse {
			maxUse = use
		}
	}
	if maxUse-minUse > routeWindow {
		t.Errorf("sequential steal routing spread %d..%d; want within routeWindow (%d) slots",
			minUse, maxUse, routeWindow)
	}
}

// TestShardedRoutingHysteresis pins the hysteresis contract itself: one
// routing decision sticks for exactly routeWindow consecutive
// same-class mallocs (they all land on the chosen shard), and the next
// request re-reads occupancy and routes to the emptiest shard.
func TestShardedRoutingHysteresis(t *testing.T) {
	const shards = 4
	sh, err := NewSharded(shards, Options{HeapSize: shards * 12 << 20, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	c := ClassFor(64)
	occupancy := func() []int {
		use := make([]int, shards)
		for i := range use {
			use[i] = sh.Shard(i).ClassInUse(c)
		}
		return use
	}
	before := occupancy()
	for i := 0; i < routeWindow; i++ {
		if _, err := sh.Malloc(64); err != nil {
			t.Fatal(err)
		}
	}
	after := occupancy()
	changed := -1
	for i := range after {
		if after[i] != before[i] {
			if changed >= 0 {
				t.Fatalf("window of %d mallocs split across shards %d and %d; want one sticky shard",
					routeWindow, changed, i)
			}
			changed = i
			if after[i]-before[i] != routeWindow {
				t.Fatalf("sticky shard %d took %d mallocs; want the full window %d",
					i, after[i]-before[i], routeWindow)
			}
		}
	}
	if changed != 0 {
		t.Fatalf("first window landed on shard %d; want shard 0 (emptiest, ties to lowest index)", changed)
	}
	// The window is spent: the next malloc re-routes to an emptiest
	// shard, which shard 0 (now routeWindow ahead) cannot be.
	if _, err := sh.Malloc(64); err != nil {
		t.Fatal(err)
	}
	if use := sh.Shard(0).ClassInUse(c); use != after[0] {
		t.Errorf("expired window still routed to shard 0 (occupancy %d -> %d); want re-route to an emptier shard",
			after[0], use)
	}
}

// TestShardedRoutingDropsThresholdClass pins the mid-window reroute on
// class fullness: when the sticky shard's routed *class* reaches its
// 1/M threshold, the very next routed malloc must abandon the window
// and land elsewhere — before, only an observed out-of-memory dropped
// the window, which an adaptive shard never reports while it can still
// grow (it grew itself while emptier siblings sat idle) and which a
// non-adaptive shard only reports by burning a failed malloc.
func TestShardedRoutingDropsThresholdClass(t *testing.T) {
	const shards = 2
	c := ClassFor(64)
	for _, tc := range []struct {
		name     string
		adaptive bool
	}{
		{"adaptive-no-self-grow", true},
		{"nonadaptive-no-failed-malloc", false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sh, err := NewSharded(shards, Options{HeapSize: shards * 6 << 20, Seed: 9, Adaptive: tc.adaptive})
			if err != nil {
				t.Fatal(err)
			}
			// Establish a sticky window on shard 0 (emptiest, ties low).
			if _, err := sh.Malloc(64); err != nil {
				t.Fatal(err)
			}
			if use := sh.Shard(0).ClassInUse(c); use != 1 {
				t.Fatalf("window opener landed off shard 0 (occupancy %d)", use)
			}
			// Fill shard 0's class to exactly its threshold behind the
			// router's back, mid-window.
			_, maxInUse := sh.Shard(0).ClassSlots(c)
			for sh.Shard(0).ClassInUse(c) < maxInUse {
				if _, err := sh.Shard(0).Malloc(64); err != nil {
					t.Fatalf("filling shard 0: %v", err)
				}
			}
			slotsBefore, _ := sh.Shard(0).ClassSlots(c)
			// The window has routeWindow-1 requests left, but the routed
			// class is now full: the next routed malloc must reroute.
			p, err := sh.Malloc(64)
			if err != nil {
				t.Fatalf("routed malloc at sticky-shard threshold: %v", err)
			}
			if sh.Shard(0).InHeap(p) {
				t.Fatal("routed malloc landed on the full sticky shard")
			}
			if slotsAfter, _ := sh.Shard(0).ClassSlots(c); slotsAfter != slotsBefore {
				t.Errorf("sticky shard grew itself (%d -> %d slots) instead of reroute",
					slotsBefore, slotsAfter)
			}
			if failed := sh.Stats().FailedMallocs; failed != 0 {
				t.Errorf("reroute burned %d failed mallocs; want 0", failed)
			}
			if err := sh.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
