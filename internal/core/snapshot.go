package core

import (
	"fmt"

	"diehard/internal/heap"
)

// This file implements the heap-differencing debugger sketched in the
// paper's §9: "By differencing the heaps of correct and incorrect
// executions of applications, it may be possible to pinpoint the exact
// locations of memory errors and report these as part of a crash dump
// without the crash."
//
// Two runs of a deterministic program on identically seeded DieHard
// heaps produce identical layouts, so any divergence between their
// snapshots localizes the memory error to the exact objects whose
// contents differ.

// ObjectRecord captures one live object's identity and contents hash in
// a snapshot.
type ObjectRecord struct {
	Class int
	Slot  int
	Ptr   heap.Ptr
	Size  int
	Hash  uint64
}

// Snapshot records every live small object (class, slot, contents
// hash). Large objects are included with Class = -1 and Slot = 0. Each
// class is scanned under its own lock; for a meaningful snapshot the
// heap should be quiescent.
func (h *Heap) Snapshot() ([]ObjectRecord, error) {
	var records []ObjectRecord
	buf := make([]byte, MaxObjectSize)
	for c := range h.classes {
		cl := &h.classes[c]
		cl.mu.Lock()
		slotBase := 0
		regs := cl.regions.Load()
		for s := range regs.subs {
			sub := regs.subs[s]
			for i := 0; i < sub.slots; i++ {
				// Atomic bit read: on the lock-free engine the class
				// mutex no longer excludes CAS claimants, so the scan
				// must load words atomically (the quiescence the doc
				// asks for is what makes the result meaningful).
				if !sub.getAtomic(i) {
					continue
				}
				ptr := sub.base + uint64(i*cl.size)
				if err := h.space.ReadBytes(ptr, buf[:cl.size]); err != nil {
					cl.mu.Unlock()
					return nil, err
				}
				records = append(records, ObjectRecord{
					Class: c,
					Slot:  slotBase + i,
					Ptr:   ptr,
					Size:  cl.size,
					Hash:  hashBytes(buf[:cl.size]),
				})
			}
			slotBase += sub.slots
		}
		cl.mu.Unlock()
	}
	h.largeMu.Lock()
	defer h.largeMu.Unlock()
	for base, lo := range h.large {
		chunk := make([]byte, lo.size)
		if err := h.space.ReadBytes(base, chunk); err != nil {
			return nil, err
		}
		records = append(records, ObjectRecord{
			Class: -1,
			Ptr:   base,
			Size:  lo.size,
			Hash:  hashBytes(chunk),
		})
	}
	return records, nil
}

func hashBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, x := range b {
		h = (h ^ uint64(x)) * 1099511628211
	}
	return h
}

// Divergence reports one object whose state differs between two
// snapshots.
type Divergence struct {
	Class int
	Slot  int
	Ptr   heap.Ptr
	Size  int
	// Kind describes how the snapshots differ for this object.
	Kind string // "contents", "only-in-a", "only-in-b"
}

func (d Divergence) String() string {
	return fmt.Sprintf("class %d slot %d at %#x (%d bytes): %s", d.Class, d.Slot, d.Ptr, d.Size, d.Kind)
}

// DiffSnapshots compares two snapshots taken from identically seeded
// heaps running the same program and returns the objects that diverge —
// the §9 crash-dump-without-the-crash. An empty result means the heaps
// are observably identical.
func DiffSnapshots(a, b []ObjectRecord) []Divergence {
	key := func(r ObjectRecord) [2]int { return [2]int{r.Class, r.Slot} }
	am := make(map[[2]int]ObjectRecord, len(a))
	for _, r := range a {
		am[key(r)] = r
	}
	var out []Divergence
	seen := make(map[[2]int]bool, len(b))
	for _, rb := range b {
		k := key(rb)
		seen[k] = true
		ra, ok := am[k]
		if !ok {
			out = append(out, Divergence{Class: rb.Class, Slot: rb.Slot, Ptr: rb.Ptr, Size: rb.Size, Kind: "only-in-b"})
			continue
		}
		if ra.Hash != rb.Hash {
			out = append(out, Divergence{Class: rb.Class, Slot: rb.Slot, Ptr: rb.Ptr, Size: rb.Size, Kind: "contents"})
		}
	}
	for _, ra := range a {
		if !seen[key(ra)] {
			out = append(out, Divergence{Class: ra.Class, Slot: ra.Slot, Ptr: ra.Ptr, Size: ra.Size, Kind: "only-in-a"})
		}
	}
	return out
}
