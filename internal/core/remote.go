package core

// Remote-free rings (DESIGN.md §12): the producer-consumer free path.
//
// Magazines (§11) batch the frees a worker applies itself, but a free
// still ends in a casClear on the owning shard's bitmap word plus an
// occupancy decrement on its atomic counter — shared cache lines that a
// serve-style workload (objects allocated by one worker, freed by
// another) hammers from the wrong core on every session. A remote-free
// ring turns that into a hand-off: the non-owner enqueues the address
// into the owner's bounded MPSC ring (one CAS ticket plus a slot write,
// touching nothing the owner's malloc path reads), and the owner drains
// the ring on its own schedule — opportunistically at magazine refills,
// mandatorily when a class hits its 1/M threshold (the queued frees may
// be exactly the room it needs) and at the CheckInvariants barrier.
//
// Correctness is unchanged because the ring defers work without
// splitting authority: an enqueued free leaves the slot's bit set and
// its occupancy unit reserved, so every invariant (popcount == inUse,
// threshold bounds) holds with entries in flight, and the drain's
// casClear remains the single arbiter of §4.3 double-free detection —
// of any set of racing frees of one slot, through any mix of rings,
// magazines, and synchronous calls, exactly one clears the bit. A full
// ring falls back to the synchronous path rather than blocking, so
// RemoteFree never waits on the owner.

import (
	"sync/atomic"

	"diehard/internal/heap"
	"diehard/internal/obs"
)

// remoteRingSize is the per-heap ring capacity (a power of two). Sized
// so that a burst of cross-worker frees from many producers fits between
// two owner drains; overflow degrades to the synchronous path, never to
// blocking or loss.
const remoteRingSize = 1024

// freeCell is one ring slot. seq is the Vyukov sequence word that hands
// the cell between producers and the consumer: a producer may claim the
// cell when seq == pos (its ticket), publishes with seq = pos+1, and the
// consumer recycles it with seq = pos+mask+1. addr and gen are plain:
// the seq store/load pair orders them. gen 0 marks an untagged free
// (plain RemoteFree, or any free on an untagged heap — issued tags are
// never 0); a nonzero gen carries a fat pointer's tag to the owner's
// gen-checked drain.
type freeCell struct {
	seq  atomic.Uint64
	addr uint64
	gen  uint64
}

// freeRing is a bounded multi-producer ring with a single locked
// consumer (the owner's drain, serialized by Heap.drainMu). Producers
// claim tickets by CAS on enqPos; enqueue never blocks and reports a
// full ring instead.
type freeRing struct {
	mask   uint64
	cells  []freeCell
	_      [48]byte // keep the producer and consumer cursors apart
	enqPos atomic.Uint64
	_      [56]byte
	deqPos atomic.Uint64
}

func newFreeRing(size int) *freeRing {
	r := &freeRing{
		mask:  uint64(size - 1),
		cells: make([]freeCell, size),
	}
	for i := range r.cells {
		r.cells[i].seq.Store(uint64(i))
	}
	return r
}

// enqueue publishes addr (with its generation tag, or 0 for untagged
// frees) to the ring; false means the ring is full and the caller
// should free synchronously. Lock-free: a failed CAS means a racing
// producer took the ticket and progressed.
func (r *freeRing) enqueue(addr, gen uint64) bool {
	for {
		pos := r.enqPos.Load()
		cell := &r.cells[pos&r.mask]
		switch d := int64(cell.seq.Load()) - int64(pos); {
		case d == 0:
			if r.enqPos.CompareAndSwap(pos, pos+1) {
				cell.addr = addr
				cell.gen = gen
				cell.seq.Store(pos + 1)
				return true
			}
		case d < 0:
			return false // a full lap behind: ring is full
		}
		// d > 0: another producer advanced enqPos under us; reload.
	}
}

// dequeue takes the oldest published entry. Single consumer: the caller
// holds drainMu. false means the ring is empty (or the next producer has
// a ticket but has not published yet — it will be seen next drain).
func (r *freeRing) dequeue() (addr, gen uint64, ok bool) {
	pos := r.deqPos.Load()
	cell := &r.cells[pos&r.mask]
	if int64(cell.seq.Load())-int64(pos+1) < 0 {
		return 0, 0, false
	}
	addr, gen = cell.addr, cell.gen
	cell.seq.Store(pos + r.mask + 1)
	r.deqPos.Store(pos + 1)
	return addr, gen, true
}

// empty is the unlocked fast check drain sites use to skip the mutex:
// two loads, exact enough (an entry published immediately after is
// caught by the next barrier).
func (r *freeRing) empty() bool {
	pos := r.deqPos.Load()
	return int64(r.cells[pos&r.mask].seq.Load())-int64(pos+1) < 0
}

// RemoteFree releases p through the heap's remote-free ring: one atomic
// ticket plus a cell write, touching none of the owner's hot metadata.
// The clear, the occupancy release, and all statistics are applied by
// the owner's next drain (refill, threshold miss, or CheckInvariants
// barrier). Everything the ring cannot defer — heaps built without
// Options.RemoteRing, null/large/foreign/misaligned pointers, a full
// ring — falls back to the synchronous Free, so RemoteFree keeps Free's
// exact §4.3 semantics and never blocks on the owner.
func (h *Heap) RemoteFree(p heap.Ptr) error {
	if p == heap.Null {
		return nil
	}
	r := h.remote
	if r == nil {
		return h.Free(p)
	}
	cl, sub, _ := h.find(p)
	if cl == nil || (p-sub.base)&cl.mask != 0 {
		return h.Free(p) // large, foreign, or interior: the unbatched path decides
	}
	if !r.enqueue(p, 0) {
		return h.Free(p) // owner is behind; apply in place rather than wait
	}
	if h.trace != nil {
		h.trace.Emit(obs.EvRemoteFree, p)
	}
	return nil
}

// RemoteFree routes p to its owning shard's ring (falling back to the
// synchronous path exactly as Heap.RemoteFree does); pointers owned by
// no shard are ignored, DieHard's §4.3 semantics.
func (sh *ShardedHeap) RemoteFree(p heap.Ptr) error {
	if p == heap.Null {
		return nil
	}
	if s := sh.owner(p); s != nil {
		return s.RemoteFree(p)
	}
	atomic.AddUint64(&sh.stats.IgnoredFrees, 1)
	return nil
}

// drainRemote applies everything queued in the remote ring: per entry
// one casClear (the single §4.3 arbiter — a queued double free loses
// here and is counted ignored), then per touched class one batched
// occupancy decrement and one batched stats publication. Returns the
// number of wins for class want (pass -1 when the caller only needs the
// ring emptied). At most one ring's capacity is applied per call so a
// drain racing a fast producer cannot spin forever; the backlog is
// bounded by the fallback-to-synchronous overflow behavior.
func (h *Heap) drainRemote(want int) int {
	r := h.remote
	if r == nil || r.empty() {
		return 0
	}
	h.drainMu.Lock()
	n := h.drainRemoteLocked(want)
	h.drainMu.Unlock()
	return n
}

// tryDrainRemote is the opportunistic drain for the malloc/refill path:
// if the ring has entries and no other goroutine is mid-drain, apply
// them; otherwise do nothing — a barrier drain will catch up.
func (h *Heap) tryDrainRemote() {
	r := h.remote
	if r == nil || r.empty() {
		return
	}
	if !h.drainMu.TryLock() {
		return
	}
	h.drainRemoteLocked(-1)
	h.drainMu.Unlock()
}

func (h *Heap) drainRemoteLocked(want int) int {
	r := h.remote
	var wins, ignored [NumClasses]int32
	stale, retired := 0, 0
	total := 0
	for total <= int(r.mask) {
		addr, gen, ok := r.dequeue()
		if !ok {
			break
		}
		total++
		cl, sub, local := h.find(addr)
		if cl == nil || (addr-sub.base)&cl.mask != 0 {
			// Unreachable via RemoteFree's pre-check; kept so a future
			// producer bug degrades to an ignored free, not corruption.
			h.addStat(&h.stats.IgnoredFrees, 1)
			continue
		}
		c := int(sub.shift) - minObjectShift
		if sub.gens != nil {
			// Tagged heap (DESIGN.md §15): the generation word arbitrates
			// here exactly as it does on the synchronous paths — a fat
			// entry whose tag went stale during the deferral (including
			// across a reallocation) is rejected, not mistaken for the
			// new incarnation's free.
			var out genOutcome
			if gen != 0 {
				if !genValidTag(gen) {
					out = genLose
				} else {
					out = h.genFreeFat(sub, local, uint32(gen))
				}
			} else {
				out = h.genFreePlain(sub, local)
			}
			switch out {
			case genWin:
				sub.casClear(local)
				wins[c]++
			case genRetireOut:
				retired++
			default:
				if gen != 0 {
					stale++
					if h.trace != nil {
						h.trace.Emit(obs.EvStaleFree, addr)
					}
				} else {
					ignored[c]++
				}
			}
			continue
		}
		if sub.casClear(local) {
			wins[c]++
		} else {
			ignored[c]++
		}
	}
	for c := range wins {
		if wins[c] != 0 || ignored[c] != 0 {
			h.finishBatchedFrees(c, int(wins[c]), int(ignored[c]))
		}
	}
	if stale > 0 {
		h.addStat(&h.stats.StaleFrees, uint64(stale))
	}
	if retired > 0 {
		h.addStat(&h.stats.Retired, uint64(retired))
	}
	if total > 0 {
		h.addStat(&h.stats.RemoteFrees, uint64(total))
		h.addStat(&h.stats.RemoteDrains, 1)
		if h.trace != nil {
			h.trace.Emit(obs.EvDrain, uint64(total))
		}
	}
	if want >= 0 {
		return int(wins[want])
	}
	return total
}
