package analysis

// Wraparound math for the generation-tagged tier (DESIGN.md §15): the
// closed-form aliasing probability of a wrapping W-bit tag, bracketed
// against the modular simulation — and the drill that proves the
// implemented tier's answer is exactly zero, because the core retires a
// slot at the tag ceiling instead of wrapping it.

import (
	"testing"

	"diehard/internal/core"
	"diehard/internal/heap"
)

func TestGenTagAliasClosedForm(t *testing.T) {
	// Below one full period no advance can alias.
	if p := GenTagAliasProb(8, 255); p != 0 {
		t.Fatalf("D < 2^W aliased with probability %v; want exactly 0", p)
	}
	// Exact small cases: floor(D/2^W)/D.
	if p := GenTagAliasProb(2, 10); !approx(p, 0.2, 1e-15) {
		t.Fatalf("W=2, D=10: %v, want floor(10/4)/10 = 0.2", p)
	}
	if p := GenTagAliasProb(4, 100); !approx(p, 0.06, 1e-15) {
		t.Fatalf("W=4, D=100: %v, want floor(100/16)/100 = 0.06", p)
	}
	// The asymptote: P -> 2^-W from below as D grows.
	if p := GenTagAliasProb(8, 1<<20); p > 1.0/256 || p < 0.99/256 {
		t.Fatalf("W=8 asymptote: %v, want just below 2^-8", p)
	}
	for d := 1; d < 300; d++ {
		if GenTagAliasProb(8, d) > 1.0/256 {
			t.Fatalf("D=%d exceeds the 2^-W ceiling", d)
		}
	}
	// A wrapping 32-bit tag still admits floor(D/2^32)/D aliasing over a
	// huge window — tiny but NOT zero, which is exactly why the shipped
	// tier retires at the ceiling instead of wrapping (the core drill
	// below proves the implemented probability is identically zero).
	if p := GenTagAliasProb(32, 1<<40); !approx(p, 256.0/(1<<40), 1e-18) {
		t.Fatalf("wrapping 32-bit tag over 2^40 advances: %v, want 2^-32", p)
	}
	if p := GenTagAliasProb(32, 1<<30); p != 0 {
		t.Fatalf("32-bit tag below one period: %v, want exactly 0", p)
	}
	if p := GenTagAliasProb(64, 1<<50); p != 0 {
		t.Fatalf("64-bit tag: %v, want 0 at any representable D", p)
	}
}

func TestGenTagAliasBracket(t *testing.T) {
	// The modular simulation must land on the closed form within Monte
	// Carlo noise, across narrow-tag regimes where aliasing is common
	// enough to measure.
	const trials = 200000
	cases := []struct{ bits, maxAdvance int }{
		{2, 10}, {2, 64}, {3, 50}, {4, 100}, {6, 1000}, {8, 4096},
	}
	for _, c := range cases {
		want := GenTagAliasProb(c.bits, c.maxAdvance)
		got := SimGenTagAlias(trials, c.bits, c.maxAdvance, 0xA11A5)
		if !approx(got, want, 0.01) {
			t.Errorf("W=%d D=%d: sim %v vs closed form %v", c.bits, c.maxAdvance, got, want)
		}
	}
	// Below-period regime: simulation must agree the probability is
	// identically zero, not merely small.
	if got := SimGenTagAlias(trials, 10, 1000, 0xA11A5); got != 0 {
		t.Errorf("D < 2^W simulated %v aliases; want exactly 0", got)
	}
}

// TestGenTagWraparoundNeverValidates is the implementation half: drive a
// slot to the 32-bit tag ceiling (SetGen is the test seam standing in
// for 2^31 free/malloc round trips) and verify the wrap never happens —
// the slot retires, and no historical tag, ceiling tag, or forged tag
// validates against it ever again. The realized aliasing probability of
// the shipped tier is exactly zero, which is the point of retirement.
func TestGenTagWraparoundNeverValidates(t *testing.T) {
	h, err := core.New(core.Options{HeapSize: 12 << 20, Seed: 97, GenTags: true})
	if err != nil {
		t.Fatal(err)
	}
	first, err := h.MallocFat(4096)
	if err != nil {
		t.Fatal(err)
	}
	// Age the slot to just below the retirement band and free it: a
	// normal recycle, leaving the word even at the band's edge.
	aged, ok := h.SetGen(first.Addr, 0xFFFFFFEF)
	if !ok {
		t.Fatal("SetGen refused the live slot")
	}
	if ok, err := h.FreeFat(aged); !ok || err != nil {
		t.Fatalf("free at band edge = %v, %v; want a normal recycle", ok, err)
	}
	// Reallocate until random placement reissues the aged slot: its tag
	// is the largest the allocator ever issues.
	var last heap.FatPtr
	for i := 0; ; i++ {
		if i == 200000 {
			t.Fatal("aged slot never reissued in 200k probes")
		}
		fp, err := h.MallocFat(4096)
		if err != nil {
			t.Fatal(err)
		}
		if fp.Addr == first.Addr {
			last = fp
			break
		}
		if ok, err := h.FreeFat(fp); !ok || err != nil {
			t.Fatalf("churn free = %v, %v", ok, err)
		}
	}
	if last.Gen != 0xFFFFFFF1 {
		t.Fatalf("ceiling tag = %#x; want 0xFFFFFFF1 (the largest issuable)", last.Gen)
	}
	// Freeing the ceiling tag retires the slot instead of wrapping.
	if ok, err := h.FreeFat(last); !ok || err != nil {
		t.Fatalf("retiring free = %v, %v; want accepted", ok, err)
	}
	if st := h.Stats(); st.Retired != 1 {
		t.Fatalf("Retired = %d; want 1", st.Retired)
	}
	// Had the word wrapped to 0, the next claim would reissue tag 1 and
	// the original fat pointer would alias. Retirement forecloses it:
	// nothing ever validates against the slot again.
	for _, fp := range []heap.FatPtr{first, aged, last,
		{Addr: first.Addr, Gen: 1}, {Addr: first.Addr, Gen: 0xFFFFFFFF}} {
		if h.CheckGen(fp) {
			t.Errorf("tag %#x validated against the retired slot — a false valid", fp.Gen)
		}
		if ok, _ := h.FreeFat(fp); ok {
			t.Errorf("free with tag %#x accepted on the retired slot", fp.Gen)
		}
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
