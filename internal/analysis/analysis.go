// Package analysis implements the closed-form probabilistic guarantees
// of DieHard (§6 of the paper: Theorems 1-3) together with Monte Carlo
// estimators that validate them against the abstract model. The Figure 4
// data series are generated here; internal/exps additionally validates
// the formulas against the real allocator.
package analysis

import (
	"fmt"
	"math"

	"diehard/internal/rng"
)

// OverflowMaskProb is Theorem 1: the probability that a buffer overflow
// of objects object-widths is masked (overwrites only free space) in at
// least one of k replicas, when the heap is `fullness` full (L/H).
//
//	P(OverflowedObjects = 0) = 1 - (1 - (F/H)^O)^k
func OverflowMaskProb(fullness float64, objects, replicas int) float64 {
	if fullness < 0 || fullness > 1 {
		panic(fmt.Sprintf("analysis: fullness %v out of [0,1]", fullness))
	}
	if objects < 0 || replicas < 1 {
		panic("analysis: objects must be >= 0 and replicas >= 1")
	}
	free := 1 - fullness
	pOne := math.Pow(free, float64(objects)) // single replica masks
	return 1 - math.Pow(1-pOne, float64(replicas))
}

// DanglingMaskProb is Theorem 2: a lower bound on the probability that
// an object of size size, freed allocs allocations too early, is still
// intact when its real free would have happened, given freeBytes of free
// heap in its size class and k replicas.
//
//	P(Overwrites = 0) >= 1 - (A/(F/S))^k
func DanglingMaskProb(allocs, size, freeBytes, replicas int) float64 {
	if allocs < 0 || size <= 0 || freeBytes <= 0 || replicas < 1 {
		panic("analysis: bad dangling parameters")
	}
	q := float64(freeBytes) / float64(size) // free slots
	frac := float64(allocs) / q
	if frac > 1 {
		frac = 1
	}
	return 1 - math.Pow(frac, float64(replicas))
}

// UninitDetectProb is Theorem 3: the probability that an uninitialized
// read of bits bits is detected by k replicas (k > 2) in a
// non-narrowing, non-widening computation — i.e. that all replicas fill
// the region with pairwise-distinct values.
//
//	P = (2^B)! / ((2^B - k)! * 2^(B*k))
//
// Computed in log space so large B is exact to double precision.
func UninitDetectProb(bits, replicas int) float64 {
	if bits < 1 || replicas < 1 {
		panic("analysis: bad uninit parameters")
	}
	n := math.Pow(2, float64(bits))
	if float64(replicas) > n {
		return 0 // pigeonhole: some pair must collide
	}
	logP := 0.0
	for i := 0; i < replicas; i++ {
		logP += math.Log(n - float64(i))
	}
	logP -= float64(replicas) * float64(bits) * math.Ln2
	return math.Exp(logP)
}

// CanaryOverflowDetectProb is the detection counterpart of Theorem 1
// for the canary engine (internal/detect): an overflow of `objects`
// object-widths past a random live object is detected iff at least one
// of the overwritten slots is free — free space is canary-filled, and
// damaged canaries are caught at the next audit — so at class fullness
// L/H the detection probability is
//
//	P(detect) = 1 - fullness^O = 1 - OverflowMaskProb(1-fullness, O, 1)
//
// Detection and masking are complementary faces of the same randomized
// placement: the same free space that lets a replica mask an overflow
// lets a detector fingerprint it.
func CanaryOverflowDetectProb(fullness float64, objects int) float64 {
	if fullness < 0 || fullness > 1 {
		panic(fmt.Sprintf("analysis: fullness %v out of [0,1]", fullness))
	}
	if objects < 0 {
		panic("analysis: objects must be >= 0")
	}
	return 1 - math.Pow(fullness, float64(objects))
}

// ExpectedProbes is the expected length of the allocator's probe
// sequence at the given heap fullness (§4.2): each probe hits a free
// slot independently with probability 1 - fullness, so the probe count
// is geometric with mean
//
//	E[probes] = 1 / (1 - fullness)
//
// — two at the default M = 2 threshold. The concurrency test battery
// brackets the lock-free CAS probe loop's empirical mean against this
// expectation, pinning that the CAS rewrite preserved the uniform
// randomized placement the Theorems quantify.
func ExpectedProbes(fullness float64) float64 {
	if fullness < 0 || fullness >= 1 {
		panic(fmt.Sprintf("analysis: fullness %v out of [0,1)", fullness))
	}
	return 1 / (1 - fullness)
}

// QuarantineFullnessShift is the probe-cost multiplier the free
// quarantine (DESIGN.md §13) imposes on a size class. Each of the q
// quarantined slots keeps its bitmap bit set and its occupancy unit
// reserved, so the probe stream sees fullness raised by q/slots at any
// live-object load, and the class saturates at slots/M - q live objects
// instead of slots/M. At that capacity load the quarantined class pays
// ExpectedProbes(1/M) = M/(M-1) per allocation where the unquarantined
// class at the same load would pay 1/(1 - 1/M + q/slots); the ratio is
// exactly
//
//	shift = 1 + M·q / (slots·(M-1))
//
// — e.g. holding 16 of 128 slots at M = 2 costs 25% more probes, the
// price of keeping a dangling culprit's slots out of reuse. Panics when
// q exceeds the slots/M occupancy threshold: the quarantine would then
// consume the class's entire allocatable capacity, and the cap must be
// lowered instead.
func QuarantineFullnessShift(slots int, m float64, q int) float64 {
	if slots <= 0 || m <= 1 || q < 0 {
		panic(fmt.Sprintf("analysis: quarantine shift of %d held in %d slots at M=%v out of range", q, slots, m))
	}
	if float64(q) > float64(slots)/m {
		panic(fmt.Sprintf("analysis: %d quarantined slots exceed a %d-slot class's 1/%v occupancy threshold", q, slots, m))
	}
	return 1 + m*float64(q)/(float64(slots)*(m-1))
}

// ExpectedBatchProbes is the expected total probe count of a magazine
// refill that claims batch slots from a class of total slots with live
// already occupied (DESIGN.md §11). Claims are made as drawn, so the
// i-th claim of the batch probes against fullness (live+i)/total and
// its probe count is geometric with mean total/(total-live-i):
//
//	E[probes] = Σ_{i=0}^{batch-1} total / (total - live - i)
//
// With batch = 1 this reduces to ExpectedProbes(live/total). The
// magazine probe-distribution tests bracket empirical refill probe
// counts against this sum, pinning that batching preserved uniform
// randomized placement at every intermediate fullness.
func ExpectedBatchProbes(total, live, batch int) float64 {
	if total <= 0 || live < 0 || batch < 0 || live+batch > total {
		panic(fmt.Sprintf("analysis: batch probes of %d from %d live of %d total out of range",
			batch, live, total))
	}
	sum := 0.0
	for i := 0; i < batch; i++ {
		sum += float64(total) / float64(total-live-i)
	}
	return sum
}

// ExpectedDrainBatch is the expected number of remote frees a shard
// applies per ring drain (DESIGN.md §12). Cross-worker frees arrive on
// the owner's ring at remoteRate frees per owner operation, and the
// owner drains every opsPerDrain of its own operations (its refill /
// malloc-miss cadence), so a drain finds remoteRate × opsPerDrain
// entries in expectation — clamped at the ring capacity, beyond which
// producers fall back to the synchronous path and the batch cannot
// grow:
//
//	E[batch] = min(remoteRate × opsPerDrain, ringCap)
//
// The drain amortizes one occupancy update and one stats update over
// the whole batch, so this is also the batching dividend: the remote
// protocol replaces ~E[batch] bitmap-CAS round trips of foreign-owner
// traffic with E[batch] ring slots and one consumer pass. The ratio
// Stats.RemoteFrees / Stats.RemoteDrains of a steady-state run is the
// empirical counterpart the serve soak reports.
func ExpectedDrainBatch(remoteRate, opsPerDrain float64, ringCap int) float64 {
	if remoteRate < 0 || opsPerDrain < 0 || ringCap <= 0 {
		panic(fmt.Sprintf("analysis: drain batch of rate %v over %v ops, cap %d out of range",
			remoteRate, opsPerDrain, ringCap))
	}
	return math.Min(remoteRate*opsPerDrain, float64(ringCap))
}

// Series is one labeled curve of a figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure4a generates the data of Figure 4(a): probability of masking a
// single-object buffer overflow, for 1, 3, 4, 5, 6 replicas at heap
// fullness 1/8, 1/4, and 1/2.
func Figure4a() []Series {
	replicas := []int{1, 3, 4, 5, 6}
	fullness := []struct {
		label string
		f     float64
	}{
		{"1/8 full", 1.0 / 8},
		{"1/4 full", 1.0 / 4},
		{"1/2 full", 1.0 / 2},
	}
	out := make([]Series, 0, len(fullness))
	for _, fu := range fullness {
		s := Series{Label: fu.label}
		for _, k := range replicas {
			s.X = append(s.X, float64(k))
			s.Y = append(s.Y, OverflowMaskProb(fu.f, 1, k))
		}
		out = append(out, s)
	}
	return out
}

// DefaultClassFreeBytes is the worst-case free space per size class in
// the paper's default configuration (384 MB heap, 12 classes, M = 2):
// each 32 MB region holds at most 16 MB live, leaving F = 16 MB.
const DefaultClassFreeBytes = (384 << 20) / 12 / 2

// Figure4b generates the data of Figure 4(b): probability of masking a
// dangling pointer error with the stand-alone version (k = 1) in the
// default configuration, for object sizes 8..256 and 100/1000/10000
// intervening allocations.
func Figure4b() []Series {
	sizes := []int{8, 16, 32, 64, 128, 256}
	allocs := []struct {
		label string
		a     int
	}{
		{"100 allocs", 100},
		{"1000 allocs", 1000},
		{"10,000 allocs", 10000},
	}
	out := make([]Series, 0, len(allocs))
	for _, al := range allocs {
		s := Series{Label: al.label}
		for _, size := range sizes {
			s.X = append(s.X, float64(size))
			s.Y = append(s.Y, DanglingMaskProb(al.a, size, DefaultClassFreeBytes, 1))
		}
		out = append(out, s)
	}
	return out
}

// UninitSeries generates detection-probability curves for Theorem 3
// (discussed in §6.3): X is the number of uninitialized bits read, one
// series per replica count.
func UninitSeries(maxBits int, replicaCounts []int) []Series {
	out := make([]Series, 0, len(replicaCounts))
	for _, k := range replicaCounts {
		s := Series{Label: fmt.Sprintf("%d replicas", k)}
		for b := 1; b <= maxBits; b++ {
			s.X = append(s.X, float64(b))
			s.Y = append(s.Y, UninitDetectProb(b, k))
		}
		out = append(out, s)
	}
	return out
}

// SimOverflowMask is the Monte Carlo counterpart of Theorem 1 on the
// abstract model: each trial scatters live objects uniformly over slots
// slots at the given fullness in each of k replicas, lands objects
// overflow writes uniformly, and counts the trial masked if at least one
// replica's writes all landed on free slots.
func SimOverflowMask(trials, slots, objects, replicas int, fullness float64, seed uint64) float64 {
	r := rng.NewSeeded(seed)
	liveTarget := int(fullness * float64(slots))
	masked := 0
	for t := 0; t < trials; t++ {
		anyClean := false
		for k := 0; k < replicas && !anyClean; k++ {
			// Uniform random placement means each overflow write hits a
			// live slot independently with probability L/H.
			clean := true
			for o := 0; o < objects; o++ {
				if r.Intn(slots) < liveTarget {
					clean = false
					break
				}
			}
			anyClean = clean
		}
		if anyClean {
			masked++
		}
	}
	return float64(masked) / float64(trials)
}

// SimDanglingMask is the Monte Carlo counterpart of Theorem 2: the
// victim slot is one of q free slots; each of allocs subsequent
// allocations picks a uniformly random free slot (worst case: no
// intervening frees). The trial is masked if no replica's allocations
// hit the victim.
func SimDanglingMask(trials, q, allocs, replicas int, seed uint64) float64 {
	r := rng.NewSeeded(seed)
	masked := 0
	for t := 0; t < trials; t++ {
		surviving := false
		for k := 0; k < replicas && !surviving; k++ {
			hit := false
			// Sampling without replacement over q slots: allocation i
			// has a 1/(q-i) chance of taking the victim among the
			// remaining free slots.
			for i := 0; i < allocs; i++ {
				if r.Intn(q-i) == 0 {
					hit = true
					break
				}
			}
			surviving = !hit
		}
		if surviving {
			masked++
		}
	}
	return float64(masked) / float64(trials)
}

// SimUninitDetect is the Monte Carlo counterpart of Theorem 3: each
// replica fills a B-bit region with a uniform random value; detection
// requires all values pairwise distinct.
func SimUninitDetect(trials, bits, replicas int, seed uint64) float64 {
	r := rng.NewSeeded(seed)
	detected := 0
	n := uint64(1) << uint(bits)
	for t := 0; t < trials; t++ {
		seen := make(map[uint64]bool, replicas)
		distinct := true
		for k := 0; k < replicas; k++ {
			v := r.Uintn(n)
			if seen[v] {
				distinct = false
				break
			}
			seen[v] = true
		}
		if distinct {
			detected++
		}
	}
	return float64(detected) / float64(trials)
}

// GenTagAliasProb is the aliasing probability of a W-bit *wrapping*
// generation tag (DESIGN.md §15): a stale fat pointer falsely validates
// against its recycled slot exactly when the slot's generation word
// advanced by a multiple of 2^W since the tag was issued. Modeling the
// advance d as uniform on [1, D] — D the maximum transitions a slot can
// accumulate over the exposure window — exactly floor(D / 2^W) of those
// advances alias, so
//
//	P[alias] = floor(D / 2^W) / D
//
// — identically zero while D < 2^W, and approaching 2^-W from below as
// D grows. The implemented tier never enters the wrapping regime: a
// free at the 32-bit ceiling retires the slot (sentinel word, never
// reissued, Stats.Retired) instead of wrapping, so its realized
// aliasing probability is exactly zero at any D. This closed form
// quantifies what a narrower tag, or a wrap-permissive implementation,
// would admit; SimGenTagAlias and the bracket test pin it.
func GenTagAliasProb(bits, maxAdvance int) float64 {
	if bits <= 0 || bits > 64 || maxAdvance <= 0 {
		panic(fmt.Sprintf("analysis: gen tag alias with %d bits over %d advances out of range", bits, maxAdvance))
	}
	if bits >= 63 {
		return 0 // 2^W exceeds any representable advance count
	}
	period := int(uint64(1) << uint(bits))
	return float64(maxAdvance/period) / float64(maxAdvance)
}

// SimGenTagAlias is the Monte Carlo counterpart of GenTagAliasProb:
// draw the generation advance uniformly on [1, maxAdvance] and count
// the draws congruent to 0 mod 2^bits — the wrapped-tag collisions.
func SimGenTagAlias(trials, bits, maxAdvance int, seed uint64) float64 {
	if bits <= 0 || bits > 63 || maxAdvance <= 0 {
		panic(fmt.Sprintf("analysis: gen tag alias sim with %d bits over %d advances out of range", bits, maxAdvance))
	}
	r := rng.NewSeeded(seed)
	mask := (uint64(1) << uint(bits)) - 1
	aliased := 0
	for t := 0; t < trials; t++ {
		d := 1 + r.Uintn(uint64(maxAdvance))
		if d&mask == 0 {
			aliased++
		}
	}
	return float64(aliased) / float64(trials)
}
