package analysis

import (
	"math"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestTheorem1PaperNumbers(t *testing.T) {
	// §6.1: "when the heap is no more than 1/8 full, DieHard in
	// stand-alone mode provides an 87.5% chance of masking a
	// single-object overflow, while three replicas avoids such errors
	// with greater than 99% probability."
	if p := OverflowMaskProb(1.0/8, 1, 1); !approx(p, 0.875, 1e-12) {
		t.Fatalf("stand-alone 1/8 full = %v, want 0.875", p)
	}
	if p := OverflowMaskProb(1.0/8, 1, 3); p <= 0.99 {
		t.Fatalf("three replicas 1/8 full = %v, want > 0.99", p)
	}
}

func TestTheorem1Monotonicity(t *testing.T) {
	// More replicas help; fuller heaps hurt; wider overflows hurt.
	for k := 1; k < 6; k++ {
		if OverflowMaskProb(0.25, 1, k+1) < OverflowMaskProb(0.25, 1, k) {
			t.Fatalf("replica monotonicity violated at k=%d", k)
		}
	}
	if OverflowMaskProb(0.5, 1, 1) >= OverflowMaskProb(0.25, 1, 1) {
		t.Fatal("fullness monotonicity violated")
	}
	if OverflowMaskProb(0.25, 3, 1) >= OverflowMaskProb(0.25, 1, 1) {
		t.Fatal("overflow width monotonicity violated")
	}
}

func TestTheorem1EdgeCases(t *testing.T) {
	if p := OverflowMaskProb(0, 1, 1); p != 1 {
		t.Fatalf("empty heap must always mask: %v", p)
	}
	if p := OverflowMaskProb(1, 1, 1); p != 0 {
		t.Fatalf("full heap can never mask: %v", p)
	}
	if p := OverflowMaskProb(0.5, 0, 1); p != 1 {
		t.Fatalf("zero-width overflow is always benign: %v", p)
	}
}

func TestTheorem2WorkedExample(t *testing.T) {
	// §6.2: "the stand-alone version of DieHard has greater than a
	// 99.5% chance of masking an 8-byte object that was freed 10,000
	// allocations too soon" (default configuration).
	p := DanglingMaskProb(10000, 8, DefaultClassFreeBytes, 1)
	if p <= 0.995 {
		t.Fatalf("worked example = %v, want > 0.995", p)
	}
	if p >= 1 {
		t.Fatalf("worked example = %v, should not be certain", p)
	}
}

func TestTheorem2Properties(t *testing.T) {
	if DanglingMaskProb(1000, 8, 1<<20, 3) <= DanglingMaskProb(1000, 8, 1<<20, 1) {
		t.Fatal("replicas must increase dangling masking")
	}
	if DanglingMaskProb(1000, 256, 1<<20, 1) >= DanglingMaskProb(1000, 8, 1<<20, 1) {
		t.Fatal("larger objects must be easier to overwrite")
	}
	if DanglingMaskProb(10000, 8, 1<<20, 1) >= DanglingMaskProb(100, 8, 1<<20, 1) {
		t.Fatal("more intervening allocations must hurt")
	}
	// Saturation: more allocations than free slots cannot give negative
	// probability.
	if p := DanglingMaskProb(1<<30, 8, 1024, 1); p != 0 {
		t.Fatalf("saturated case = %v, want 0", p)
	}
}

func TestTheorem3PaperNumbers(t *testing.T) {
	// §6.3: 4 bits, 3 replicas -> 82%; 4 replicas -> 66.7%;
	// 16 bits: 99.995% (k=3) and 99.99% (k=4).
	if p := UninitDetectProb(4, 3); !approx(p, 0.8203, 0.001) {
		t.Fatalf("B=4,k=3: %v, want ~0.82", p)
	}
	if p := UninitDetectProb(4, 4); !approx(p, 0.6665, 0.001) {
		t.Fatalf("B=4,k=4: %v, want ~0.667", p)
	}
	if p := UninitDetectProb(16, 3); p < 0.9999 {
		t.Fatalf("B=16,k=3: %v, want >= 0.9999", p)
	}
	if p := UninitDetectProb(16, 4); p < 0.9998 {
		t.Fatalf("B=16,k=4: %v", p)
	}
}

func TestTheorem3ReplicaParadox(t *testing.T) {
	// The paper's observation that extra replicas *lower* detection
	// probability for small B (more chances for a birthday collision).
	for b := 1; b <= 8; b++ {
		if UninitDetectProb(b, 4) > UninitDetectProb(b, 3) {
			t.Fatalf("B=%d: 4 replicas should not beat 3", b)
		}
	}
}

func TestTheorem3Pigeonhole(t *testing.T) {
	// k replicas cannot all differ on fewer than log2(k) bits.
	if p := UninitDetectProb(1, 3); p != 0 {
		t.Fatalf("3 replicas over 1 bit: %v, want 0", p)
	}
	if p := UninitDetectProb(2, 5); p != 0 {
		t.Fatalf("5 replicas over 2 bits: %v, want 0", p)
	}
}

func TestFigure4aSeries(t *testing.T) {
	series := Figure4a()
	if len(series) != 3 {
		t.Fatalf("want 3 fullness series, got %d", len(series))
	}
	for _, s := range series {
		if len(s.X) != 5 || len(s.Y) != 5 {
			t.Fatalf("series %q has %d points, want 5", s.Label, len(s.X))
		}
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] < s.Y[i-1] {
				t.Fatalf("series %q not monotone in replicas", s.Label)
			}
		}
	}
	// The 1/8-full series must dominate the 1/2-full series everywhere.
	for i := range series[0].Y {
		if series[0].Y[i] <= series[2].Y[i] {
			t.Fatal("1/8-full does not dominate 1/2-full")
		}
	}
}

func TestFigure4bSeries(t *testing.T) {
	series := Figure4b()
	if len(series) != 3 {
		t.Fatalf("want 3 alloc-count series, got %d", len(series))
	}
	for _, s := range series {
		if len(s.X) != 6 {
			t.Fatalf("series %q has %d sizes", s.Label, len(s.X))
		}
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] > s.Y[i-1] {
				t.Fatalf("series %q: masking should fall with object size", s.Label)
			}
		}
	}
	// All probabilities in the figure are high (top of the chart).
	if series[0].Y[0] < 0.999 {
		t.Fatalf("100 allocs / 8 bytes should be ~1: %v", series[0].Y[0])
	}
}

func TestMonteCarloMatchesTheorem1(t *testing.T) {
	for _, tc := range []struct {
		fullness float64
		objects  int
		k        int
	}{
		{1.0 / 8, 1, 1},
		{1.0 / 4, 1, 3},
		{1.0 / 2, 2, 4},
	} {
		want := OverflowMaskProb(tc.fullness, tc.objects, tc.k)
		got := SimOverflowMask(40000, 4096, tc.objects, tc.k, tc.fullness, 42)
		if !approx(got, want, 0.01) {
			t.Fatalf("fullness=%v O=%d k=%d: sim %v vs formula %v",
				tc.fullness, tc.objects, tc.k, got, want)
		}
	}
}

func TestMonteCarloMatchesTheorem2(t *testing.T) {
	// Theorem 2 is a lower bound; the simulation (sampling without
	// replacement) should sit at or just above it.
	for _, tc := range []struct {
		q, allocs, k int
	}{
		{4096, 100, 1},
		{4096, 1000, 1},
		{4096, 500, 3},
	} {
		bound := 1 - math.Pow(float64(tc.allocs)/float64(tc.q), float64(tc.k))
		got := SimDanglingMask(40000, tc.q, tc.allocs, tc.k, 7)
		if got < bound-0.01 {
			t.Fatalf("q=%d A=%d k=%d: sim %v below bound %v", tc.q, tc.allocs, tc.k, got, bound)
		}
		if got > bound+0.05 {
			t.Fatalf("q=%d A=%d k=%d: sim %v implausibly above bound %v", tc.q, tc.allocs, tc.k, got, bound)
		}
	}
}

func TestMonteCarloMatchesTheorem3(t *testing.T) {
	for _, tc := range []struct{ bits, k int }{
		{4, 3}, {4, 4}, {8, 3},
	} {
		want := UninitDetectProb(tc.bits, tc.k)
		got := SimUninitDetect(40000, tc.bits, tc.k, 11)
		if !approx(got, want, 0.01) {
			t.Fatalf("B=%d k=%d: sim %v vs formula %v", tc.bits, tc.k, got, want)
		}
	}
}

func TestUninitSeriesShape(t *testing.T) {
	series := UninitSeries(16, []int{3, 4, 5})
	if len(series) != 3 {
		t.Fatal("want 3 series")
	}
	for _, s := range series {
		if s.Y[15] < 0.999 {
			t.Fatalf("%s at 16 bits: %v, want near 1", s.Label, s.Y[15])
		}
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	for name, f := range map[string]func(){
		"fullness":  func() { OverflowMaskProb(1.5, 1, 1) },
		"replicas":  func() { OverflowMaskProb(0.5, 1, 0) },
		"dangling":  func() { DanglingMaskProb(-1, 8, 100, 1) },
		"uninit":    func() { UninitDetectProb(0, 3) },
		"uninitRep": func() { UninitDetectProb(4, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestExpectedProbes(t *testing.T) {
	if got := ExpectedProbes(0.5); got != 2 {
		t.Errorf("ExpectedProbes(1/2) = %v, want 2 (§4.2: two probes at M=2)", got)
	}
	if got, want := ExpectedProbes(5.0/6.0), 6.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("ExpectedProbes(5/6) = %v, want %v", got, want)
	}
	if got := ExpectedProbes(0); got != 1 {
		t.Errorf("ExpectedProbes(0) = %v, want 1 (empty heap: first probe hits)", got)
	}
	for _, bad := range []float64{-0.1, 1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ExpectedProbes(%v) did not panic", bad)
				}
			}()
			ExpectedProbes(bad)
		}()
	}
}

func TestQuarantineFullnessShift(t *testing.T) {
	// No held slots: no shift.
	if got := QuarantineFullnessShift(128, 2, 0); got != 1 {
		t.Errorf("QuarantineFullnessShift(128, 2, 0) = %v, want 1", got)
	}
	// DESIGN.md §13 worked example: 16 of 128 slots held at M=2 cost 25%.
	if got, want := QuarantineFullnessShift(128, 2, 16), 1.25; math.Abs(got-want) > 1e-12 {
		t.Errorf("QuarantineFullnessShift(128, 2, 16) = %v, want %v", got, want)
	}
	// The shift is the ratio of the probe expectations at the quarantined
	// class's capacity load: M/(M-1) held vs 1/(1 - 1/M + q/slots) free.
	slots, m, q := 4096, 2.0, 512
	want := ExpectedProbes(1/m) / ExpectedProbes(1/m-float64(q)/float64(slots))
	if got := QuarantineFullnessShift(slots, m, q); math.Abs(got-want) > 1e-12 {
		t.Errorf("QuarantineFullnessShift(%d, %v, %d) = %v, want ratio %v", slots, m, q, got, want)
	}
	// Overprovisioning dilutes the cost: more slack, smaller shift.
	if QuarantineFullnessShift(128, 4, 16) >= QuarantineFullnessShift(128, 2, 16) {
		t.Error("raising M did not shrink the quarantine shift")
	}
	for _, bad := range []struct {
		slots int
		m     float64
		q     int
	}{{0, 2, 1}, {128, 1, 1}, {128, 2, -1}, {128, 2, 65}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("QuarantineFullnessShift(%d, %v, %d) did not panic", bad.slots, bad.m, bad.q)
				}
			}()
			QuarantineFullnessShift(bad.slots, bad.m, bad.q)
		}()
	}
}

func TestExpectedBatchProbes(t *testing.T) {
	// A batch of one is exactly the single-malloc expectation.
	for _, tc := range []struct{ total, live int }{{1000, 500}, {1200, 1000}, {64, 0}} {
		got := ExpectedBatchProbes(tc.total, tc.live, 1)
		want := ExpectedProbes(float64(tc.live) / float64(tc.total))
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("ExpectedBatchProbes(%d, %d, 1) = %v, want ExpectedProbes = %v",
				tc.total, tc.live, got, want)
		}
	}
	// A batch is the sum of its per-claim geometric means: each claim
	// raises the fullness the next one probes against.
	want := 0.0
	for i := 0; i < 8; i++ {
		want += ExpectedProbes(float64(500+i) / 1000)
	}
	if got := ExpectedBatchProbes(1000, 500, 8); math.Abs(got-want) > 1e-12 {
		t.Errorf("ExpectedBatchProbes(1000, 500, 8) = %v, want per-claim sum %v", got, want)
	}
	// An empty batch probes nowhere.
	if got := ExpectedBatchProbes(100, 50, 0); got != 0 {
		t.Errorf("ExpectedBatchProbes(100, 50, 0) = %v, want 0", got)
	}
	// A batch may run exactly to a full heap, but never past it.
	if got := ExpectedBatchProbes(4, 0, 4); math.Abs(got-(1+4.0/3+2+4)) > 1e-12 {
		t.Errorf("ExpectedBatchProbes(4, 0, 4) = %v, want %v", got, 1+4.0/3+2+4)
	}
	for _, bad := range []struct{ total, live, batch int }{
		{0, 0, 1}, {100, -1, 1}, {100, 50, -1}, {100, 99, 2},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ExpectedBatchProbes(%d, %d, %d) did not panic",
						bad.total, bad.live, bad.batch)
				}
			}()
			ExpectedBatchProbes(bad.total, bad.live, bad.batch)
		}()
	}
}

func TestCanaryOverflowDetectProb(t *testing.T) {
	// Complementarity with Theorem 1: detection = 1 - masking with the
	// fullness axis flipped (the overflow is masked from the detector
	// exactly when every overwritten slot is live).
	for _, f := range []float64{0, 0.25, 0.5, 1} {
		for _, o := range []int{0, 1, 3} {
			got := CanaryOverflowDetectProb(f, o)
			want := 1 - OverflowMaskProb(1-f, o, 1)
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("f=%v O=%d: detect %v, 1-mask %v", f, o, got, want)
			}
		}
	}
	// Monotonic: emptier heaps detect more.
	if CanaryOverflowDetectProb(0.25, 1) <= CanaryOverflowDetectProb(0.5, 1) {
		t.Error("detection probability not decreasing in fullness")
	}
	// An overflow of zero objects cannot be detected.
	if CanaryOverflowDetectProb(0.5, 0) != 0 {
		t.Error("zero-width overflow has nonzero detection probability")
	}
}

func TestExpectedDrainBatch(t *testing.T) {
	// Below the ring capacity the batch is the arrival count per drain
	// interval; monotone in both the remote rate and the cadence.
	if got := ExpectedDrainBatch(0.25, 64, 1024); got != 16 {
		t.Errorf("ExpectedDrainBatch(0.25, 64, 1024) = %v, want 16", got)
	}
	if ExpectedDrainBatch(0.5, 64, 1024) <= ExpectedDrainBatch(0.25, 64, 1024) {
		t.Error("batch not monotone in remote rate")
	}
	if ExpectedDrainBatch(0.25, 128, 1024) <= ExpectedDrainBatch(0.25, 64, 1024) {
		t.Error("batch not monotone in drain cadence")
	}
	// The ring capacity clamps: overflow falls back to synchronous
	// frees, so no drain can apply more than the ring holds.
	if got := ExpectedDrainBatch(1, 1<<20, 1024); got != 1024 {
		t.Errorf("ExpectedDrainBatch over capacity = %v, want clamp 1024", got)
	}
	// No remote traffic, no batch.
	if got := ExpectedDrainBatch(0, 64, 1024); got != 0 {
		t.Errorf("ExpectedDrainBatch(0, ...) = %v, want 0", got)
	}
	for _, bad := range []struct {
		rate, ops float64
		cap       int
	}{{-1, 64, 1024}, {0.5, -1, 1024}, {0.5, 64, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ExpectedDrainBatch(%v, %v, %d) did not panic", bad.rate, bad.ops, bad.cap)
				}
			}()
			ExpectedDrainBatch(bad.rate, bad.ops, bad.cap)
		}()
	}
}
