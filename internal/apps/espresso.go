package apps

import (
	"fmt"

	"diehard/internal/heap"
	"diehard/internal/rng"
)

// espresso minimizes a two-level boolean cover by iterated absorption
// and distance-1 merging over a heap-resident linked list of cubes.
// Like the original logic minimizer it is allocation-intensive with
// mixed small object sizes, and it is the injection target of §7.3.1.
//
// Cube encoding: 2 bits per variable in a 64-bit word (01 = literal 0,
// 10 = literal 1, 11 = don't care). Cube object layout:
//
//	+0  bits  (u64)
//	+8  next  (u64 pointer)
//	+16 label (vars+1 bytes: the cube's text form, NUL-terminated)
//
// The label gives cubes the odd, >32-byte request size of the real
// minimizer's objects, which is what §7.3.1's under-allocation fault
// injector targets. The cover's head pointer lives in the kernel's
// globals block so the list is GC-reachable.

const espressoVars = 24

// maxCubeSize bounds a cube allocation: 41 bytes at 24 variables.
// Cubes are sized to their trimmed labels (trailing don't-cares
// dropped), so requests vary continuously between 17 and 41 bytes —
// the odd, varied sizes of the real minimizer's objects, which is what
// lets §7.3.1's 4-byte under-allocation actually shrink a chunk rather
// than vanish into alignment padding.
const maxCubeSize = 16 + espressoVars + 1

func espressoInput(scale int) []byte {
	if scale < 1 {
		scale = 1
	}
	r := rng.NewSeeded(0xE59)
	var out []byte
	out = append(out, []byte(fmt.Sprintf(".v %d\n", espressoVars))...)
	for i := 0; i < 300*scale; i++ {
		// Sparse cubes: a handful of specified literals, the rest don't
		// care — the shape of real PLA inputs, and what makes
		// absorption and merging (and therefore frees) frequent.
		row := make([]byte, espressoVars+1)
		for v := 0; v < espressoVars; v++ {
			row[v] = '-'
		}
		for k := 0; k < 5; k++ {
			v := r.Intn(espressoVars)
			if r.Bool() {
				row[v] = '1'
			} else {
				row[v] = '0'
			}
		}
		row[espressoVars] = '\n'
		out = append(out, row...)
	}
	return out
}

// cube helpers

func cubeBits(rt *Runtime, c heap.Ptr) (uint64, error) { return rt.Mem.Load64(c) }
func cubeNext(rt *Runtime, c heap.Ptr) (heap.Ptr, error) {
	return rt.Mem.Load64(c + 8)
}

// trimLabel drops trailing don't-cares; cube objects are sized to the
// trimmed text.
func trimLabel(label []byte) []byte {
	n := len(label)
	if n > espressoVars {
		n = espressoVars
	}
	for n > 0 && label[n-1] == '-' {
		n--
	}
	return label[:n]
}

func newCube(rt *Runtime, bits uint64, next heap.Ptr, label []byte) (heap.Ptr, error) {
	label = trimLabel(label)
	c, err := rt.Alloc.Malloc(16 + len(label) + 1)
	if err != nil {
		return heap.Null, err
	}
	if err := rt.Mem.Store64(c, bits); err != nil {
		return heap.Null, err
	}
	if err := rt.Mem.Store64(c+8, next); err != nil {
		return heap.Null, err
	}
	if err := rt.Mem.WriteBytes(c+16, label); err != nil {
		return heap.Null, err
	}
	return c, rt.Mem.Store8(c+16+uint64(len(label)), 0)
}

// covers reports whether cube a covers cube b (a's positions are a
// superset at every variable).
func covers(a, b uint64) bool { return a&b == b }

// mergeDistance1 merges two cubes differing in exactly one variable
// position where together they span {0,1}; returns the merged bits.
func mergeDistance1(a, b uint64, vars int) (uint64, bool) {
	diff := a ^ b
	if diff == 0 {
		return a, true // identical
	}
	// Locate the (single) differing variable.
	var pos = -1
	for v := 0; v < vars; v++ {
		if diff>>(2*v)&3 != 0 {
			if pos >= 0 {
				return 0, false // differ in more than one variable
			}
			pos = v
		}
	}
	av := a >> (2 * pos) & 3
	bv := b >> (2 * pos) & 3
	if av|bv != 3 {
		return 0, false
	}
	return a | 3<<(2*pos), true
}

func runEspresso(rt *Runtime) error {
	g, err := newGlobals(rt, 1) // slot 0: cover head
	if err != nil {
		return err
	}
	defer g.release()

	vars := espressoVars
	// Parse: build the cube list in heap.
	i := 0
	in := rt.Input
	for i < len(in) {
		// Find line end.
		j := i
		for j < len(in) && in[j] != '\n' {
			j++
		}
		line := in[i:j]
		i = j + 1
		if len(line) == 0 || line[0] == '.' {
			if len(line) > 2 && line[0] == '.' && line[1] == 'v' {
				fmt.Sscanf(string(line), ".v %d", &vars)
			}
			continue
		}
		var bits uint64
		for v := 0; v < vars && v < len(line); v++ {
			switch line[v] {
			case '0':
				bits |= 1 << (2 * v)
			case '1':
				bits |= 2 << (2 * v)
			default:
				bits |= 3 << (2 * v)
			}
		}
		head, err := g.get(0)
		if err != nil {
			return err
		}
		c, err := newCube(rt, bits, head, line)
		if err != nil {
			return err
		}
		if err := g.set(0, c); err != nil {
			return err
		}
	}

	// Minimize: alternate absorption and distance-1 merging to a fixed
	// point.
	for changed := true; changed; {
		changed = false
		// Absorption: delete any cube covered by another.
		head, err := g.get(0)
		if err != nil {
			return err
		}
		for a := head; a != heap.Null; {
			if err := rt.Step(); err != nil {
				return err
			}
			abits, err := cubeBits(rt, a)
			if err != nil {
				return err
			}
			// Walk b over the list, unlinking covered successors of a.
			prev := a
			b, err := cubeNext(rt, a)
			if err != nil {
				return err
			}
			for b != heap.Null {
				if err := rt.Step(); err != nil {
					return err
				}
				bbits, err := cubeBits(rt, b)
				if err != nil {
					return err
				}
				next, err := cubeNext(rt, b)
				if err != nil {
					return err
				}
				if covers(abits, bbits) {
					if err := rt.Mem.Store64(prev+8, next); err != nil {
						return err
					}
					if err := rt.Alloc.Free(b); err != nil {
						return err
					}
					changed = true
				} else {
					prev = b
				}
				b = next
			}
			a, err = cubeNext(rt, a)
			if err != nil {
				return err
			}
		}

		// Distance-1 merge: combine the first mergeable pair found,
		// repeatedly.
		head, err = g.get(0)
		if err != nil {
			return err
		}
		for a := head; a != heap.Null; {
			if err := rt.Step(); err != nil {
				return err
			}
			abits, err := cubeBits(rt, a)
			if err != nil {
				return err
			}
			prev := a
			b, err := cubeNext(rt, a)
			if err != nil {
				return err
			}
			merged := false
			for b != heap.Null {
				if err := rt.Step(); err != nil {
					return err
				}
				bbits, err := cubeBits(rt, b)
				if err != nil {
					return err
				}
				next, err := cubeNext(rt, b)
				if err != nil {
					return err
				}
				if m, ok := mergeDistance1(abits, bbits, vars); ok {
					// Unlink b, replace a's bits with the merger, and
					// patch a's label at the merged position.
					if err := rt.Mem.Store64(prev+8, next); err != nil {
						return err
					}
					if err := rt.Alloc.Free(b); err != nil {
						return err
					}
					if err := rt.Mem.Store64(a, m); err != nil {
						return err
					}
					// Patch the label at the merged position when the
					// trimmed text still covers it.
					for v := 0; v < vars; v++ {
						if (abits^m)>>(2*v)&3 != 0 {
							lb, err := rt.Mem.Load8(a + 16 + uint64(v))
							if err != nil {
								return err
							}
							if lb == '0' || lb == '1' {
								if err := rt.Mem.Store8(a+16+uint64(v), '-'); err != nil {
									return err
								}
							}
						}
					}
					changed = true
					merged = true
					break
				}
				prev = b
				b = next
			}
			if merged {
				continue // retry the same a with its new bits
			}
			a, err = cubeNext(rt, a)
			if err != nil {
				return err
			}
		}
	}

	// Rebuild the cover, as the original's irredundant pass does: every
	// surviving cube is reallocated with its canonical label and the old
	// cube freed. The interleaved allocation and freeing over a warm
	// heap is where under-allocated cubes (§7.3.1) corrupt live
	// neighbors on inline-metadata allocators.
	head, err := g.get(0)
	if err != nil {
		return err
	}
	var rebuilt heap.Ptr
	label := make([]byte, espressoVars)
	for c := head; c != heap.Null; {
		if err := rt.Step(); err != nil {
			return err
		}
		bits, err := cubeBits(rt, c)
		if err != nil {
			return err
		}
		for k := 0; k < vars && k < espressoVars; k++ {
			switch bits >> (2 * k) & 3 {
			case 1:
				label[k] = '0'
			case 2:
				label[k] = '1'
			default:
				label[k] = '-'
			}
		}
		nc, err := newCube(rt, bits, rebuilt, label[:vars])
		if err != nil {
			return err
		}
		rebuilt = nc
		if err := g.set(0, rebuilt); err != nil {
			return err
		}
		next, err := cubeNext(rt, c)
		if err != nil {
			return err
		}
		if err := rt.Alloc.Free(c); err != nil {
			return err
		}
		c = next
	}

	// Emit the minimized cover's size and checksum.
	hash := uint64(fnvInit)
	count := 0
	head = rebuilt
	for c := head; c != heap.Null; {
		if err := rt.Step(); err != nil {
			return err
		}
		bits, err := cubeBits(rt, c)
		if err != nil {
			return err
		}
		for s := 0; s < 64; s += 8 {
			hash = fnv1a(hash, byte(bits>>s))
		}
		// Bulk-scan the NUL-terminated label instead of one Load8 per
		// byte; FindByte visits exactly the bytes the loop did.
		n, found, err := rt.Mem.FindByte(c+16, 0, espressoVars+1)
		if err != nil {
			return err
		}
		if !found {
			n = espressoVars + 1
		}
		var label [espressoVars + 1]byte
		if err := rt.Mem.ReadBytes(c+16, label[:n]); err != nil {
			return err
		}
		for k := 0; k < n; k++ {
			hash = fnv1a(hash, label[k])
		}
		count++
		next, err := cubeNext(rt, c)
		if err != nil {
			return err
		}
		if err := rt.Alloc.Free(c); err != nil {
			return err
		}
		c = next
	}
	_, err = fmt.Fprintf(rt.Out, "espresso: cubes=%d checksum=%016x\n", count, hash)
	return err
}
