package apps

import (
	"fmt"

	"diehard/internal/heap"
)

// p2c translates a tiny Pascal-like language to C, after the p2c
// translator of the allocation-intensive suite: a lexer allocating a
// token node per lexeme, a recursive-descent parser building heap AST
// nodes, and a code generator that walks and then frees each
// statement's tree.
//
// Token layout: +0 kind, +8 value, +16 next
// AST layout:   +0 op, +8 left (ptr), +16 right (ptr), +24 value

const (
	tokNum = iota
	tokIdent
	tokPlus
	tokMinus
	tokStar
	tokAssign
	tokSemi
	tokLParen
	tokRParen
	tokEOF
)

const (
	opNum = iota // leaf: value
	opVar        // leaf: variable index
	opAdd        // left + right
	opSub        // left - right
	opMul        // left * right
)

func p2cInput(scale int) []byte {
	if scale < 1 {
		scale = 1
	}
	var out []byte
	for i := 0; i < 80*scale; i++ {
		a, b, c := i%7, (i+3)%7, (i+5)%7
		out = append(out, []byte(fmt.Sprintf(
			"v%d := (v%d + %d) * (v%d - %d) + v%d * 3;\n",
			a, b, i%13, c, i%5, b))...)
	}
	return out
}

type p2cState struct {
	rt     *Runtime
	g      *globals // slot 0: token list head, slot 1: current AST root
	tokens heap.Ptr // cursor into the token list
}

func (s *p2cState) newToken(kind, value uint64) (heap.Ptr, error) {
	t, err := s.rt.Alloc.Malloc(24)
	if err != nil {
		return heap.Null, err
	}
	if err := s.rt.Mem.Store64(t, kind); err != nil {
		return heap.Null, err
	}
	if err := s.rt.Mem.Store64(t+8, value); err != nil {
		return heap.Null, err
	}
	return t, s.rt.Mem.Store64(t+16, heap.Null)
}

func (s *p2cState) newNode(op uint64, left, right heap.Ptr, value uint64) (heap.Ptr, error) {
	n, err := s.rt.Alloc.Malloc(32)
	if err != nil {
		return heap.Null, err
	}
	for off, v := range []uint64{op, left, right, value} {
		if err := s.rt.Mem.Store64(n+uint64(8*off), v); err != nil {
			return heap.Null, err
		}
	}
	return n, nil
}

// lex tokenizes one statement (through ';') into a heap token list and
// returns its head.
func (s *p2cState) lex(line []byte) (heap.Ptr, error) {
	var head, tail heap.Ptr
	emit := func(kind, value uint64) error {
		t, err := s.newToken(kind, value)
		if err != nil {
			return err
		}
		if head == heap.Null {
			head = t
			if err := s.g.set(0, head); err != nil {
				return err
			}
		} else if err := s.rt.Mem.Store64(tail+16, t); err != nil {
			return err
		}
		tail = t
		return nil
	}
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c >= '0' && c <= '9':
			v := uint64(0)
			for i < len(line) && line[i] >= '0' && line[i] <= '9' {
				v = v*10 + uint64(line[i]-'0')
				i++
			}
			if err := emit(tokNum, v); err != nil {
				return heap.Null, err
			}
		case c == 'v':
			i++
			v := uint64(0)
			for i < len(line) && line[i] >= '0' && line[i] <= '9' {
				v = v*10 + uint64(line[i]-'0')
				i++
			}
			if err := emit(tokIdent, v); err != nil {
				return heap.Null, err
			}
		case c == ':' && i+1 < len(line) && line[i+1] == '=':
			i += 2
			if err := emit(tokAssign, 0); err != nil {
				return heap.Null, err
			}
		default:
			kind := uint64(tokEOF)
			switch c {
			case '+':
				kind = tokPlus
			case '-':
				kind = tokMinus
			case '*':
				kind = tokStar
			case ';':
				kind = tokSemi
			case '(':
				kind = tokLParen
			case ')':
				kind = tokRParen
			}
			i++
			if err := emit(kind, 0); err != nil {
				return heap.Null, err
			}
		}
	}
	if err := emit(tokEOF, 0); err != nil {
		return heap.Null, err
	}
	return head, nil
}

func (s *p2cState) peek() (uint64, uint64, error) {
	if s.tokens == heap.Null {
		return tokEOF, 0, nil
	}
	kind, err := s.rt.Mem.Load64(s.tokens)
	if err != nil {
		return 0, 0, err
	}
	val, err := s.rt.Mem.Load64(s.tokens + 8)
	return kind, val, err
}

func (s *p2cState) advance() error {
	next, err := s.rt.Mem.Load64(s.tokens + 16)
	if err != nil {
		return err
	}
	s.tokens = next
	return nil
}

// parseExpr parses expr := term (('+'|'-') term)*.
func (s *p2cState) parseExpr() (heap.Ptr, error) {
	left, err := s.parseTerm()
	if err != nil {
		return heap.Null, err
	}
	for {
		if err := s.rt.Step(); err != nil {
			return heap.Null, err
		}
		kind, _, err := s.peek()
		if err != nil {
			return heap.Null, err
		}
		if kind != tokPlus && kind != tokMinus {
			return left, nil
		}
		if err := s.advance(); err != nil {
			return heap.Null, err
		}
		right, err := s.parseTerm()
		if err != nil {
			return heap.Null, err
		}
		op := uint64(opAdd)
		if kind == tokMinus {
			op = opSub
		}
		left, err = s.newNode(op, left, right, 0)
		if err != nil {
			return heap.Null, err
		}
		if err := s.g.set(1, left); err != nil { // keep tree reachable
			return heap.Null, err
		}
	}
}

func (s *p2cState) parseTerm() (heap.Ptr, error) {
	left, err := s.parseFactor()
	if err != nil {
		return heap.Null, err
	}
	for {
		kind, _, err := s.peek()
		if err != nil {
			return heap.Null, err
		}
		if kind != tokStar {
			return left, nil
		}
		if err := s.advance(); err != nil {
			return heap.Null, err
		}
		right, err := s.parseFactor()
		if err != nil {
			return heap.Null, err
		}
		left, err = s.newNode(opMul, left, right, 0)
		if err != nil {
			return heap.Null, err
		}
	}
}

func (s *p2cState) parseFactor() (heap.Ptr, error) {
	kind, val, err := s.peek()
	if err != nil {
		return heap.Null, err
	}
	switch kind {
	case tokNum:
		if err := s.advance(); err != nil {
			return heap.Null, err
		}
		return s.newNode(opNum, heap.Null, heap.Null, val)
	case tokIdent:
		if err := s.advance(); err != nil {
			return heap.Null, err
		}
		return s.newNode(opVar, heap.Null, heap.Null, val)
	case tokLParen:
		if err := s.advance(); err != nil {
			return heap.Null, err
		}
		e, err := s.parseExpr()
		if err != nil {
			return heap.Null, err
		}
		if err := s.advance(); err != nil { // ')'
			return heap.Null, err
		}
		return e, nil
	}
	return heap.Null, fmt.Errorf("p2c: unexpected token %d", kind)
}

// emitC walks the tree, emitting a C expression and hashing it.
func (s *p2cState) emitC(n heap.Ptr, hash *uint64) error {
	if err := s.rt.Step(); err != nil {
		return err
	}
	op, err := s.rt.Mem.Load64(n)
	if err != nil {
		return err
	}
	emitByte := func(b byte) { *hash = fnv1a(*hash, b) }
	switch op {
	case opNum, opVar:
		v, err := s.rt.Mem.Load64(n + 24)
		if err != nil {
			return err
		}
		if op == opVar {
			emitByte('v')
		}
		emitByte(byte('0' + v%10))
	default:
		left, err := s.rt.Mem.Load64(n + 8)
		if err != nil {
			return err
		}
		right, err := s.rt.Mem.Load64(n + 16)
		if err != nil {
			return err
		}
		emitByte('(')
		if err := s.emitC(left, hash); err != nil {
			return err
		}
		emitByte(" +-*"[op-opAdd+1])
		if err := s.emitC(right, hash); err != nil {
			return err
		}
		emitByte(')')
	}
	return nil
}

// freeTree releases an AST.
func (s *p2cState) freeTree(n heap.Ptr) error {
	if n == heap.Null {
		return nil
	}
	op, err := s.rt.Mem.Load64(n)
	if err != nil {
		return err
	}
	if op != opNum && op != opVar {
		left, err := s.rt.Mem.Load64(n + 8)
		if err != nil {
			return err
		}
		right, err := s.rt.Mem.Load64(n + 16)
		if err != nil {
			return err
		}
		if err := s.freeTree(left); err != nil {
			return err
		}
		if err := s.freeTree(right); err != nil {
			return err
		}
	}
	return s.rt.Alloc.Free(n)
}

// freeTokens releases a token list.
func (s *p2cState) freeTokens(head heap.Ptr) error {
	for head != heap.Null {
		next, err := s.rt.Mem.Load64(head + 16)
		if err != nil {
			return err
		}
		if err := s.rt.Alloc.Free(head); err != nil {
			return err
		}
		head = next
	}
	return nil
}

func runP2C(rt *Runtime) error {
	g, err := newGlobals(rt, 2)
	if err != nil {
		return err
	}
	defer g.release()
	s := &p2cState{rt: rt, g: g}
	hash := uint64(fnvInit)
	statements := 0

	i := 0
	in := rt.Input
	for i < len(in) {
		j := i
		for j < len(in) && in[j] != '\n' {
			j++
		}
		line := in[i:j]
		i = j + 1
		if len(line) == 0 {
			continue
		}
		head, err := s.lex(line)
		if err != nil {
			return err
		}
		s.tokens = head
		// Statement: ident ':=' expr ';'
		_, target, err := s.peek()
		if err != nil {
			return err
		}
		if err := s.advance(); err != nil {
			return err
		}
		if err := s.advance(); err != nil { // ':='
			return err
		}
		tree, err := s.parseExpr()
		if err != nil {
			return err
		}
		if err := g.set(1, tree); err != nil {
			return err
		}
		hash = fnv1a(hash, byte('v'))
		hash = fnv1a(hash, byte('0'+target%10))
		hash = fnv1a(hash, byte('='))
		if err := s.emitC(tree, &hash); err != nil {
			return err
		}
		hash = fnv1a(hash, byte(';'))
		statements++
		if err := s.freeTree(tree); err != nil {
			return err
		}
		if err := g.set(1, heap.Null); err != nil {
			return err
		}
		if err := s.freeTokens(head); err != nil {
			return err
		}
		if err := g.set(0, heap.Null); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(rt.Out, "p2c: statements=%d checksum=%016x\n", statements, hash)
	return err
}
