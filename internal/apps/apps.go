// Package apps contains the evaluation applications of the paper's §7:
// the allocation-intensive suite (cfrac, espresso, lindsay, p2c, roboop)
// and analogs of the SPECint2000 benchmarks, all implemented as
// deterministic kernels that allocate, free, read, and write exclusively
// through the simulated heap.
//
// Per DESIGN.md §1, each kernel is matched to its original on the
// properties the paper's experiments rely on: allocation intensity,
// object-size mix, and live-set shape. Outputs are deterministic
// checksums and result lines, so "correct execution" is decidable by
// comparing against a clean run; a *vmem.Fault or allocator corruption
// error is a crash; exceeding the work limit is a hang (one injected run
// in §7.3.1 hangs rather than crashes).
//
// Every kernel follows C discipline for a conservative collector: all
// long-lived pointers are stored in heap-resident structures reachable
// from a registered root (the kernel's "globals" block), never only in
// Go-side variables, so the gcsim baseline genuinely reclaims garbage
// without reclaiming live data.
package apps

import (
	"errors"
	"fmt"
	"io"

	"diehard/internal/heap"
)

// ErrHang reports that a kernel exceeded its work limit, classifying the
// run as hung.
var ErrHang = errors.New("apps: work limit exceeded (hang)")

// DefaultWorkLimit bounds kernel work; reference runs use well under a
// tenth of it.
const DefaultWorkLimit = 200_000_000

// Runtime is the world an application runs in.
type Runtime struct {
	Alloc heap.Allocator
	Mem   heap.Memory
	Input []byte
	Out   io.Writer
	// WorkLimit bounds loop iterations for hang detection; 0 means
	// DefaultWorkLimit.
	WorkLimit uint64

	work uint64
}

// Step charges one unit of loop work and fails once the limit is
// exceeded. Kernels call it in every loop that could be corrupted into
// spinning.
func (rt *Runtime) Step() error {
	rt.work++
	limit := rt.WorkLimit
	if limit == 0 {
		limit = DefaultWorkLimit
	}
	if rt.work > limit {
		return ErrHang
	}
	return nil
}

// Work reports the loop work consumed so far.
func (rt *Runtime) Work() uint64 { return rt.work }

// rootRegistrar is implemented by collectors that need explicit roots
// (gcsim.Heap).
type rootRegistrar interface {
	AddRoot(p heap.Ptr)
	RemoveRoot(p heap.Ptr)
}

// Kind classifies benchmarks as in Figure 5.
type Kind int

const (
	// AllocIntensive marks the cfrac/espresso/lindsay/p2c/roboop suite.
	AllocIntensive Kind = iota
	// GeneralPurpose marks the SPECint2000 analogs.
	GeneralPurpose
)

func (k Kind) String() string {
	if k == AllocIntensive {
		return "alloc-intensive"
	}
	return "general-purpose"
}

// App is one runnable benchmark.
type App struct {
	Name string
	Kind Kind
	// Input produces the deterministic input for a scale factor
	// (1 = the standard experiment size).
	Input func(scale int) []byte
	// Run executes the kernel.
	Run func(rt *Runtime) error
}

// Registry returns all benchmarks in reporting order: the
// allocation-intensive suite first, then the SPEC analogs, matching
// Figure 5(a)'s x-axis.
func Registry() []App {
	return []App{
		{Name: "cfrac", Kind: AllocIntensive, Input: cfracInput, Run: runCfrac},
		{Name: "espresso", Kind: AllocIntensive, Input: espressoInput, Run: runEspresso},
		{Name: "lindsay", Kind: AllocIntensive, Input: lindsayInput, Run: runLindsay},
		{Name: "p2c", Kind: AllocIntensive, Input: p2cInput, Run: runP2C},
		{Name: "roboop", Kind: AllocIntensive, Input: roboopInput, Run: runRoboop},
		{Name: "164.gzip", Kind: GeneralPurpose, Input: gzipInput, Run: runGzip},
		{Name: "175.vpr", Kind: GeneralPurpose, Input: vprInput, Run: runVpr},
		{Name: "176.gcc", Kind: GeneralPurpose, Input: gccInput, Run: runGcc},
		{Name: "181.mcf", Kind: GeneralPurpose, Input: mcfInput, Run: runMcf},
		{Name: "186.crafty", Kind: GeneralPurpose, Input: craftyInput, Run: runCrafty},
		{Name: "197.parser", Kind: GeneralPurpose, Input: parserInput, Run: runParser},
		{Name: "252.eon", Kind: GeneralPurpose, Input: eonInput, Run: runEon},
		{Name: "253.perlbmk", Kind: GeneralPurpose, Input: perlbmkInput, Run: runPerlbmk},
		{Name: "254.gap", Kind: GeneralPurpose, Input: gapInput, Run: runGap},
		{Name: "255.vortex", Kind: GeneralPurpose, Input: vortexInput, Run: runVortex},
		{Name: "256.bzip2", Kind: GeneralPurpose, Input: bzip2Input, Run: runBzip2},
		{Name: "300.twolf", Kind: GeneralPurpose, Input: twolfInput, Run: runTwolf},
	}
}

// Get looks up a benchmark by name.
func Get(name string) (App, bool) {
	for _, a := range Registry() {
		if a.Name == name {
			return a, true
		}
	}
	return App{}, false
}

// globals is a heap-resident array of word slots registered as a GC
// root: the application's statics. Long-lived pointers must be parked
// here (or be reachable from here) to survive conservative collection.
type globals struct {
	rt   *Runtime
	base heap.Ptr
	n    int
}

func newGlobals(rt *Runtime, n int) (*globals, error) {
	base, err := rt.Alloc.Malloc(8 * n)
	if err != nil {
		return nil, err
	}
	if err := rt.Mem.Memset(base, 0, 8*n); err != nil {
		return nil, err
	}
	if reg, ok := rt.Alloc.(rootRegistrar); ok {
		reg.AddRoot(base)
	}
	return &globals{rt: rt, base: base, n: n}, nil
}

func (g *globals) set(i int, v uint64) error {
	if i < 0 || i >= g.n {
		return fmt.Errorf("apps: globals index %d out of %d", i, g.n)
	}
	return g.rt.Mem.Store64(g.base+uint64(8*i), v)
}

func (g *globals) get(i int) (uint64, error) {
	if i < 0 || i >= g.n {
		return 0, fmt.Errorf("apps: globals index %d out of %d", i, g.n)
	}
	return g.rt.Mem.Load64(g.base + uint64(8*i))
}

// release unregisters and frees the globals block at program exit.
func (g *globals) release() {
	if reg, ok := g.rt.Alloc.(rootRegistrar); ok {
		reg.RemoveRoot(g.base)
	}
	_ = g.rt.Alloc.Free(g.base)
}

// fnv1a updates a 64-bit FNV-1a hash with one byte.
func fnv1a(h uint64, b byte) uint64 {
	const prime = 1099511628211
	return (h ^ uint64(b)) * prime
}

// fnvInit is the FNV-1a offset basis.
const fnvInit = 14695981039346656037
