package apps

import (
	"fmt"

	"diehard/internal/heap"
)

// cfrac factors a list of semiprimes by trial division over heap-
// resident bignums. Like the original continued-fraction factoring
// benchmark, it performs an enormous number of small, short-lived
// allocations (every division allocates a quotient, every parsed digit
// an intermediate), making it the most allocation-intensive kernel in
// the suite.

// cfracPrimes are the factor pool for input generation (all prime).
var cfracPrimes = []uint64{10007, 10501, 11003, 12007, 13001, 14009, 15013, 16033}

func cfracInput(scale int) []byte {
	if scale < 1 {
		scale = 1
	}
	var out []byte
	for i := 0; i < 4*scale; i++ {
		p := cfracPrimes[i%len(cfracPrimes)]
		q := cfracPrimes[(i+3)%len(cfracPrimes)]
		out = append(out, []byte(fmt.Sprintf("%d\n", p*q))...)
	}
	return out
}

func runCfrac(rt *Runtime) error {
	g, err := newGlobals(rt, 2)
	if err != nil {
		return err
	}
	defer g.release()
	hash := uint64(fnvInit)
	factored := 0

	line := make([]byte, 0, 32)
	flush := func() error {
		if len(line) == 0 {
			return nil
		}
		n, err := bnParseDecimal(rt, line)
		line = line[:0]
		if err != nil {
			return err
		}
		// Park the current number in the globals so it survives any
		// collection while temporaries churn.
		if err := g.set(0, n); err != nil {
			return err
		}
		for d := uint64(3); ; d += 2 {
			if err := rt.Step(); err != nil {
				return err
			}
			one, err := bnIsOne(rt, n)
			if err != nil {
				return err
			}
			zero, err := bnIsZero(rt, n)
			if err != nil {
				return err
			}
			if one || zero {
				break
			}
			rem, err := bnModSmall(rt, n, d)
			if err != nil {
				return err
			}
			if rem != 0 {
				continue
			}
			// Found a factor: divide it out (allocates the quotient).
			q, err := bnDivSmall(rt, n, d)
			if err != nil {
				return err
			}
			if err := g.set(0, q); err != nil {
				return err
			}
			if err := rt.Alloc.Free(n); err != nil {
				return err
			}
			n = q
			hash = fnv1a(hash, byte(d))
			hash = fnv1a(hash, byte(d>>8))
			factored++
			d -= 2 // retry the same divisor for repeated factors
		}
		if err := g.set(0, heap.Null); err != nil {
			return err
		}
		return rt.Alloc.Free(n)
	}

	for _, b := range rt.Input {
		if b == '\n' {
			if err := flush(); err != nil {
				return err
			}
			continue
		}
		line = append(line, b)
	}
	if err := flush(); err != nil {
		return err
	}
	_, err = fmt.Fprintf(rt.Out, "cfrac: factors=%d checksum=%016x\n", factored, hash)
	return err
}
