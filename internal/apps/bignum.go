package apps

import "diehard/internal/heap"

// Heap-resident arbitrary-precision naturals, used by the cfrac and gap
// kernels. Layout: one word holding the limb count, followed by 32-bit
// little-endian limbs in 4-byte cells. Every arithmetic operation
// allocates its result as a fresh heap object, which is precisely the
// allocation behaviour that makes cfrac allocation-intensive.

const bnHeader = 8

// bnNew allocates a bignum with the given limb capacity, length zero.
func bnNew(rt *Runtime, limbs int) (heap.Ptr, error) {
	p, err := rt.Alloc.Malloc(bnHeader + 4*limbs)
	if err != nil {
		return heap.Null, err
	}
	if err := rt.Mem.Store64(p, 0); err != nil {
		return heap.Null, err
	}
	return p, nil
}

func bnLen(rt *Runtime, p heap.Ptr) (int, error) {
	n, err := rt.Mem.Load64(p)
	return int(n), err
}

func bnLimb(rt *Runtime, p heap.Ptr, i int) (uint32, error) {
	return rt.Mem.Load32(p + bnHeader + uint64(4*i))
}

func bnSetLimb(rt *Runtime, p heap.Ptr, i int, v uint32) error {
	return rt.Mem.Store32(p+bnHeader+uint64(4*i), v)
}

// bnFromU64 allocates a bignum holding v.
func bnFromU64(rt *Runtime, v uint64) (heap.Ptr, error) {
	p, err := bnNew(rt, 2)
	if err != nil {
		return heap.Null, err
	}
	n := 0
	for v != 0 {
		if err := bnSetLimb(rt, p, n, uint32(v)); err != nil {
			return heap.Null, err
		}
		v >>= 32
		n++
	}
	return p, rt.Mem.Store64(p, uint64(n))
}

// bnIsZero reports whether the value is zero.
func bnIsZero(rt *Runtime, p heap.Ptr) (bool, error) {
	n, err := bnLen(rt, p)
	return n == 0, err
}

// bnIsOne reports whether the value is one.
func bnIsOne(rt *Runtime, p heap.Ptr) (bool, error) {
	n, err := bnLen(rt, p)
	if err != nil || n != 1 {
		return false, err
	}
	l, err := bnLimb(rt, p, 0)
	return l == 1, err
}

// bnMulAddSmall returns a freshly allocated x*mul + add.
func bnMulAddSmall(rt *Runtime, x heap.Ptr, mul, add uint64) (heap.Ptr, error) {
	n, err := bnLen(rt, x)
	if err != nil {
		return heap.Null, err
	}
	out, err := bnNew(rt, n+2)
	if err != nil {
		return heap.Null, err
	}
	carry := add
	for i := 0; i < n; i++ {
		limb, err := bnLimb(rt, x, i)
		if err != nil {
			return heap.Null, err
		}
		v := uint64(limb)*mul + carry
		if err := bnSetLimb(rt, out, i, uint32(v)); err != nil {
			return heap.Null, err
		}
		carry = v >> 32
	}
	outLen := n
	for carry != 0 {
		if err := bnSetLimb(rt, out, outLen, uint32(carry)); err != nil {
			return heap.Null, err
		}
		carry >>= 32
		outLen++
	}
	return out, rt.Mem.Store64(out, uint64(outLen))
}

// bnModSmall returns x mod m without allocating.
func bnModSmall(rt *Runtime, x heap.Ptr, m uint64) (uint64, error) {
	n, err := bnLen(rt, x)
	if err != nil {
		return 0, err
	}
	var rem uint64
	for i := n - 1; i >= 0; i-- {
		limb, err := bnLimb(rt, x, i)
		if err != nil {
			return 0, err
		}
		rem = (rem<<32 | uint64(limb)) % m
	}
	return rem, nil
}

// bnDivSmall returns a freshly allocated floor(x / d).
func bnDivSmall(rt *Runtime, x heap.Ptr, d uint64) (heap.Ptr, error) {
	n, err := bnLen(rt, x)
	if err != nil {
		return heap.Null, err
	}
	out, err := bnNew(rt, n)
	if err != nil {
		return heap.Null, err
	}
	var rem uint64
	outLen := 0
	for i := n - 1; i >= 0; i-- {
		limb, err := bnLimb(rt, x, i)
		if err != nil {
			return heap.Null, err
		}
		cur := rem<<32 | uint64(limb)
		q := cur / d
		rem = cur % d
		if err := bnSetLimb(rt, out, i, uint32(q)); err != nil {
			return heap.Null, err
		}
		if q != 0 && outLen == 0 {
			outLen = i + 1
		}
	}
	return out, rt.Mem.Store64(out, uint64(outLen))
}

// bnParseDecimal builds a bignum from ASCII digits, one multiply-add per
// digit — the allocation storm of cfrac's input handling. Every
// intermediate value is freed as soon as it is superseded.
func bnParseDecimal(rt *Runtime, digits []byte) (heap.Ptr, error) {
	acc, err := bnFromU64(rt, 0)
	if err != nil {
		return heap.Null, err
	}
	for _, d := range digits {
		if d < '0' || d > '9' {
			continue
		}
		next, err := bnMulAddSmall(rt, acc, 10, uint64(d-'0'))
		if err != nil {
			return heap.Null, err
		}
		if err := rt.Alloc.Free(acc); err != nil {
			return heap.Null, err
		}
		acc = next
	}
	return acc, nil
}

// bnHash folds the value into an FNV hash for output checksums.
func bnHash(rt *Runtime, p heap.Ptr, h uint64) (uint64, error) {
	n, err := bnLen(rt, p)
	if err != nil {
		return 0, err
	}
	for i := 0; i < n; i++ {
		limb, err := bnLimb(rt, p, i)
		if err != nil {
			return 0, err
		}
		for s := 0; s < 32; s += 8 {
			h = fnv1a(h, byte(limb>>s))
		}
	}
	return h, nil
}
