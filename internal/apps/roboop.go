package apps

import (
	"fmt"
	"math"

	"diehard/internal/heap"
)

// roboop computes forward kinematics for a six-joint robot arm over a
// trajectory, after the RoboOp robotics library benchmark: chains of
// 4x4 homogeneous-transform multiplications where every intermediate
// matrix is a freshly allocated heap object, freed as soon as it is
// consumed. Compute per allocation is high (64 multiply-adds), giving
// the suite's lower-allocation-intensity end.
//
// Matrix layout: 16 float64 values stored row-major via Float64bits.

func roboopInput(scale int) []byte {
	if scale < 1 {
		scale = 1
	}
	return []byte(fmt.Sprintf("%d\n", 600*scale))
}

func matNew(rt *Runtime) (heap.Ptr, error) {
	return rt.Alloc.Malloc(16 * 8)
}

func matSet(rt *Runtime, m heap.Ptr, r, c int, v float64) error {
	return rt.Mem.Store64(m+uint64(8*(4*r+c)), math.Float64bits(v))
}

func matGet(rt *Runtime, m heap.Ptr, r, c int) (float64, error) {
	bits, err := rt.Mem.Load64(m + uint64(8*(4*r+c)))
	return math.Float64frombits(bits), err
}

// matDH builds the Denavit-Hartenberg transform for joint parameters.
func matDH(rt *Runtime, theta, d, a, alpha float64) (heap.Ptr, error) {
	m, err := matNew(rt)
	if err != nil {
		return heap.Null, err
	}
	ct, st := math.Cos(theta), math.Sin(theta)
	ca, sa := math.Cos(alpha), math.Sin(alpha)
	rows := [4][4]float64{
		{ct, -st * ca, st * sa, a * ct},
		{st, ct * ca, -ct * sa, a * st},
		{0, sa, ca, d},
		{0, 0, 0, 1},
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			if err := matSet(rt, m, r, c, rows[r][c]); err != nil {
				return heap.Null, err
			}
		}
	}
	return m, nil
}

// matMul allocates and returns a*b.
func matMul(rt *Runtime, a, b heap.Ptr) (heap.Ptr, error) {
	out, err := matNew(rt)
	if err != nil {
		return heap.Null, err
	}
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			sum := 0.0
			for k := 0; k < 4; k++ {
				av, err := matGet(rt, a, r, k)
				if err != nil {
					return heap.Null, err
				}
				bv, err := matGet(rt, b, k, c)
				if err != nil {
					return heap.Null, err
				}
				sum += av * bv
			}
			if err := matSet(rt, out, r, c, sum); err != nil {
				return heap.Null, err
			}
		}
	}
	return out, nil
}

// puma560 is the classic test arm's DH parameter table (d, a, alpha).
var puma560 = [6][3]float64{
	{0.6718, 0, math.Pi / 2},
	{0, 0.4318, 0},
	{0.15005, 0.0203, -math.Pi / 2},
	{0.4318, 0, math.Pi / 2},
	{0, 0, -math.Pi / 2},
	{0.0563, 0, 0},
}

func runRoboop(rt *Runtime) error {
	g, err := newGlobals(rt, 2) // slot 0: accumulated transform
	if err != nil {
		return err
	}
	defer g.release()
	steps := 0
	fmt.Sscanf(string(rt.Input), "%d", &steps)
	if steps <= 0 {
		steps = 600
	}
	hash := uint64(fnvInit)

	for s := 0; s < steps; s++ {
		if err := rt.Step(); err != nil {
			return err
		}
		// Joint angles along a smooth trajectory.
		base := float64(s) * 0.01
		acc, err := matDH(rt, base, puma560[0][0], puma560[0][1], puma560[0][2])
		if err != nil {
			return err
		}
		if err := g.set(0, acc); err != nil {
			return err
		}
		for j := 1; j < 6; j++ {
			theta := base * float64(j+1)
			joint, err := matDH(rt, theta, puma560[j][0], puma560[j][1], puma560[j][2])
			if err != nil {
				return err
			}
			next, err := matMul(rt, acc, joint)
			if err != nil {
				return err
			}
			if err := g.set(0, next); err != nil {
				return err
			}
			if err := rt.Alloc.Free(acc); err != nil {
				return err
			}
			if err := rt.Alloc.Free(joint); err != nil {
				return err
			}
			acc = next
		}
		// Fold the end-effector position into the checksum.
		for r := 0; r < 3; r++ {
			v, err := matGet(rt, acc, r, 3)
			if err != nil {
				return err
			}
			bits := math.Float64bits(v)
			for sh := 0; sh < 64; sh += 8 {
				hash = fnv1a(hash, byte(bits>>sh))
			}
		}
		if err := rt.Alloc.Free(acc); err != nil {
			return err
		}
		if err := g.set(0, heap.Null); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(rt.Out, "roboop: steps=%d checksum=%016x\n", steps, hash)
	return err
}
