package apps

import (
	"fmt"
	"math"

	"diehard/internal/heap"
	"diehard/internal/rng"
)

// 175.vpr analog: simulated-annealing standard-cell placement. Cells
// and nets live in heap arrays; each iteration proposes a swap and
// evaluates half-perimeter wirelength deltas. Memory-access heavy,
// allocation-light.

func vprInput(scale int) []byte {
	if scale < 1 {
		scale = 1
	}
	return []byte(fmt.Sprintf("%d %d\n", 160, 2200*scale))
}

func runVpr(rt *Runtime) error {
	g, err := newGlobals(rt, 3)
	if err != nil {
		return err
	}
	defer g.release()
	var cells, iters int
	fmt.Sscanf(string(rt.Input), "%d %d", &cells, &iters)
	grid := 32
	r := rng.NewSeeded(0x471)

	// cellPos: (x,y) packed per cell. nets: pairs of cell ids.
	pos, err := rt.Alloc.Malloc(8 * cells)
	if err != nil {
		return err
	}
	if err := g.set(0, pos); err != nil {
		return err
	}
	for i := 0; i < cells; i++ {
		x, y := uint64(r.Intn(grid)), uint64(r.Intn(grid))
		if err := rt.Mem.Store64(pos+uint64(8*i), x<<32|y); err != nil {
			return err
		}
	}
	nNets := cells * 2
	nets, err := rt.Alloc.Malloc(8 * nNets)
	if err != nil {
		return err
	}
	if err := g.set(1, nets); err != nil {
		return err
	}
	for i := 0; i < nNets; i++ {
		a, b := uint64(r.Intn(cells)), uint64(r.Intn(cells))
		if err := rt.Mem.Store64(nets+uint64(8*i), a<<32|b); err != nil {
			return err
		}
	}
	netCost := func(i int) (int64, error) {
		v, err := rt.Mem.Load64(nets + uint64(8*i))
		if err != nil {
			return 0, err
		}
		a, b := int(v>>32), int(uint32(v))
		pa, err := rt.Mem.Load64(pos + uint64(8*a))
		if err != nil {
			return 0, err
		}
		pb, err := rt.Mem.Load64(pos + uint64(8*b))
		if err != nil {
			return 0, err
		}
		dx := int64(pa>>32) - int64(pb>>32)
		dy := int64(uint32(pa)) - int64(uint32(pb))
		if dx < 0 {
			dx = -dx
		}
		if dy < 0 {
			dy = -dy
		}
		return dx + dy, nil
	}
	total := int64(0)
	for i := 0; i < nNets; i++ {
		c, err := netCost(i)
		if err != nil {
			return err
		}
		total += c
	}
	accepted := 0
	for it := 0; it < iters; it++ {
		if err := rt.Step(); err != nil {
			return err
		}
		c := r.Intn(cells)
		old, err := rt.Mem.Load64(pos + uint64(8*c))
		if err != nil {
			return err
		}
		// Cost of nets touching c before the move: scan all nets (the
		// original walks per-cell net lists; a scan keeps the access
		// pattern similarly wide).
		before := int64(0)
		touching := make([]int, 0, 8)
		for i := 0; i < nNets; i++ {
			v, err := rt.Mem.Load64(nets + uint64(8*i))
			if err != nil {
				return err
			}
			if int(v>>32) == c || int(uint32(v)) == c {
				w, err := netCost(i)
				if err != nil {
					return err
				}
				before += w
				touching = append(touching, i)
			}
		}
		nx, ny := uint64(r.Intn(grid)), uint64(r.Intn(grid))
		if err := rt.Mem.Store64(pos+uint64(8*c), nx<<32|ny); err != nil {
			return err
		}
		after := int64(0)
		for _, i := range touching {
			w, err := netCost(i)
			if err != nil {
				return err
			}
			after += w
		}
		// Annealing acceptance: accept uphill moves early in the
		// schedule (deterministic threshold decreasing over time).
		threshold := int64((iters - it) / (it/4 + 1))
		if after-before <= threshold {
			total += after - before
			accepted++
		} else if err := rt.Mem.Store64(pos+uint64(8*c), old); err != nil {
			return err
		}
	}
	_ = rt.Alloc.Free(pos)
	_ = rt.Alloc.Free(nets)
	_, err = fmt.Fprintf(rt.Out, "vpr: cells=%d accepted=%d cost=%d\n", cells, accepted, total)
	return err
}

// 181.mcf analog: repeated Bellman-Ford shortest paths with flow
// augmentation on a heap-resident sparse graph — the pointer-chasing,
// cache-hostile profile of the original vehicle scheduler.

func mcfInput(scale int) []byte {
	if scale < 1 {
		scale = 1
	}
	return []byte(fmt.Sprintf("%d %d\n", 600, 18*scale))
}

func runMcf(rt *Runtime) error {
	g, err := newGlobals(rt, 4)
	if err != nil {
		return err
	}
	defer g.release()
	var nodes, rounds int
	fmt.Sscanf(string(rt.Input), "%d %d", &nodes, &rounds)
	r := rng.NewSeeded(0x3CF)
	nEdges := nodes * 4
	// Edge arrays: from, to, weight, flow (parallel u64 arrays).
	edges, err := rt.Alloc.Malloc(8 * nEdges * 3)
	if err != nil {
		return err
	}
	if err := g.set(0, edges); err != nil {
		return err
	}
	for i := 0; i < nEdges; i++ {
		from := uint64(r.Intn(nodes))
		to := uint64(r.Intn(nodes))
		w := uint64(1 + r.Intn(100))
		if err := rt.Mem.Store64(edges+uint64(8*(3*i)), from); err != nil {
			return err
		}
		if err := rt.Mem.Store64(edges+uint64(8*(3*i+1)), to); err != nil {
			return err
		}
		if err := rt.Mem.Store64(edges+uint64(8*(3*i+2)), w); err != nil {
			return err
		}
	}
	dist, err := rt.Alloc.Malloc(8 * nodes)
	if err != nil {
		return err
	}
	if err := g.set(1, dist); err != nil {
		return err
	}
	const inf = uint64(1) << 62
	totalCost := uint64(0)
	for round := 0; round < rounds; round++ {
		src := round % nodes
		for i := 0; i < nodes; i++ {
			v := inf
			if i == src {
				v = 0
			}
			if err := rt.Mem.Store64(dist+uint64(8*i), v); err != nil {
				return err
			}
		}
		for pass := 0; pass < nodes; pass++ {
			if err := rt.Step(); err != nil {
				return err
			}
			changed := false
			for i := 0; i < nEdges; i++ {
				from, err := rt.Mem.Load64(edges + uint64(8*(3*i)))
				if err != nil {
					return err
				}
				df, err := rt.Mem.Load64(dist + 8*from)
				if err != nil {
					return err
				}
				if df == inf {
					continue
				}
				to, err := rt.Mem.Load64(edges + uint64(8*(3*i+1)))
				if err != nil {
					return err
				}
				w, err := rt.Mem.Load64(edges + uint64(8*(3*i+2)))
				if err != nil {
					return err
				}
				dt, err := rt.Mem.Load64(dist + 8*to)
				if err != nil {
					return err
				}
				if df+w < dt {
					if err := rt.Mem.Store64(dist+8*to, df+w); err != nil {
						return err
					}
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		// Augment: add the farthest reachable distance to the cost and
		// bump that path's first edge weight (rough flow saturation).
		far := uint64(0)
		for i := 0; i < nodes; i++ {
			d, err := rt.Mem.Load64(dist + uint64(8*i))
			if err != nil {
				return err
			}
			if d != inf && d > far {
				far = d
			}
		}
		totalCost += far
	}
	_ = rt.Alloc.Free(edges)
	_ = rt.Alloc.Free(dist)
	_, err = fmt.Fprintf(rt.Out, "mcf: nodes=%d rounds=%d cost=%d\n", nodes, rounds, totalCost)
	return err
}

// 186.crafty analog: alpha-beta game-tree search with a heap-resident
// transposition table over a deterministic synthetic game.

func craftyInput(scale int) []byte {
	if scale < 1 {
		scale = 1
	}
	return []byte(fmt.Sprintf("%d\n", 7+scale))
}

func runCrafty(rt *Runtime) error {
	g, err := newGlobals(rt, 2)
	if err != nil {
		return err
	}
	defer g.release()
	depth := 8
	fmt.Sscanf(string(rt.Input), "%d", &depth)
	const ttSize = 1 << 14
	tt, err := rt.Alloc.Malloc(16 * ttSize) // key, value pairs
	if err != nil {
		return err
	}
	if err := g.set(0, tt); err != nil {
		return err
	}
	if err := rt.Mem.Memset(tt, 0, 16*ttSize); err != nil {
		return err
	}
	var nodes uint64

	// The game: state is a 64-bit hash; moves derive children by
	// mixing; leaf value is a deterministic function of the state.
	var search func(state uint64, depth int, alpha, beta int64) (int64, error)
	search = func(state uint64, depth int, alpha, beta int64) (int64, error) {
		if err := rt.Step(); err != nil {
			return 0, err
		}
		nodes++
		if depth == 0 {
			return int64(int16(state)), nil
		}
		slot := state % ttSize
		key, err := rt.Mem.Load64(tt + 16*slot)
		if err != nil {
			return 0, err
		}
		if key == state {
			v, err := rt.Mem.Load64(tt + 16*slot + 8)
			if err != nil {
				return 0, err
			}
			return int64(v), nil
		}
		best := int64(math.MinInt64 + 1)
		for mv := uint64(1); mv <= 6; mv++ {
			child := state*6364136223846793005 + mv*1442695040888963407
			v, err := search(child, depth-1, -beta, -alpha)
			if err != nil {
				return 0, err
			}
			v = -v
			if v > best {
				best = v
			}
			if v > alpha {
				alpha = v
			}
			if alpha >= beta {
				break
			}
		}
		if err := rt.Mem.Store64(tt+16*slot, state); err != nil {
			return 0, err
		}
		if err := rt.Mem.Store64(tt+16*slot+8, uint64(best)); err != nil {
			return 0, err
		}
		return best, nil
	}
	score, err := search(0x9E3779B97F4A7C15, depth, math.MinInt64+1, math.MaxInt64-1)
	if err != nil {
		return err
	}
	_ = rt.Alloc.Free(tt)
	_, err = fmt.Fprintf(rt.Out, "crafty: depth=%d nodes=%d score=%d\n", depth, nodes, score)
	return err
}

// 252.eon analog: a small ray tracer (spheres, one light, diffuse
// shading) allocating a ray record per pixel, after the probabilistic
// ray tracer of SPEC. Mostly floating-point compute.

func eonInput(scale int) []byte {
	if scale < 1 {
		scale = 1
	}
	side := 48 * scale
	return []byte(fmt.Sprintf("%d %d\n", side, side))
}

func runEon(rt *Runtime) error {
	g, err := newGlobals(rt, 2)
	if err != nil {
		return err
	}
	defer g.release()
	var w, h int
	fmt.Sscanf(string(rt.Input), "%d %d", &w, &h)

	// Scene: spheres as (cx, cy, cz, r) float64 quadruples in heap.
	spheres := [][4]float64{
		{0, 0, -5, 1.6},
		{2, 1, -7, 1.0},
		{-2.2, -0.8, -4, 0.7},
		{0.5, -2, -6, 1.2},
	}
	scene, err := rt.Alloc.Malloc(32 * len(spheres))
	if err != nil {
		return err
	}
	if err := g.set(0, scene); err != nil {
		return err
	}
	for i, s := range spheres {
		for j, v := range s {
			if err := rt.Mem.Store64(scene+uint64(32*i+8*j), math.Float64bits(v)); err != nil {
				return err
			}
		}
	}
	hash := uint64(fnvInit)
	lit := 0
	// One reusable ray record, overwritten per pixel (the original's
	// rays live on the stack; it allocates scene objects, not rays).
	ray, err := rt.Alloc.Malloc(48)
	if err != nil {
		return err
	}
	if err := g.set(1, ray); err != nil {
		return err
	}
	for py := 0; py < h; py++ {
		for px := 0; px < w; px++ {
			if err := rt.Step(); err != nil {
				return err
			}
			dx := (float64(px)/float64(w) - 0.5) * 2
			dy := (float64(py)/float64(h) - 0.5) * 2
			norm := math.Sqrt(dx*dx + dy*dy + 1)
			for j, v := range []float64{0, 0, 0, dx / norm, dy / norm, -1 / norm} {
				if err := rt.Mem.Store64(ray+uint64(8*j), math.Float64bits(v)); err != nil {
					return err
				}
			}
			// Intersect all spheres.
			bestT := math.Inf(1)
			for i := range spheres {
				var c [4]float64
				for j := 0; j < 4; j++ {
					bits, err := rt.Mem.Load64(scene + uint64(32*i+8*j))
					if err != nil {
						return err
					}
					c[j] = math.Float64frombits(bits)
				}
				// Ray-sphere: |o + t*d - c|^2 = r^2 with o = 0.
				b := -2 * (dx/norm*c[0] + dy/norm*c[1] + (-1/norm)*c[2])
				cc := c[0]*c[0] + c[1]*c[1] + c[2]*c[2] - c[3]*c[3]
				disc := b*b - 4*cc
				if disc < 0 {
					continue
				}
				t := (-b - math.Sqrt(disc)) / 2
				if t > 0 && t < bestT {
					bestT = t
				}
			}
			var shade byte
			if !math.IsInf(bestT, 1) {
				shade = byte(255 / (1 + bestT))
				lit++
			}
			hash = fnv1a(hash, shade)
		}
	}
	_ = rt.Alloc.Free(ray)
	_ = rt.Alloc.Free(scene)
	_, err = fmt.Fprintf(rt.Out, "eon: pixels=%d lit=%d checksum=%016x\n", w*h, lit, hash)
	return err
}

// 300.twolf analog: standard-cell place-and-route touching structures
// of deliberately many different sizes. Under DieHard the wide size mix
// spreads the working set across many size-class partitions — the
// mechanism behind the paper's TLB-miss outlier (§7.2.1).

func twolfInput(scale int) []byte {
	if scale < 1 {
		scale = 1
	}
	// 160 cells: under a contiguous allocator the working set fits the
	// 64-entry TLB; under DieHard it spans every size-class partition.
	return []byte(fmt.Sprintf("%d %d\n", 160, 9000*scale))
}

func runTwolf(rt *Runtime) error {
	g, err := newGlobals(rt, 1)
	if err != nil {
		return err
	}
	defer g.release()
	var nCells, iters int
	fmt.Sscanf(string(rt.Input), "%d %d", &nCells, &iters)
	r := rng.NewSeeded(0x7201F)

	// Cell records of widely varying sizes (the defining property):
	// header (x, y, size) plus a payload of 16..8192 bytes. A directory
	// object holds all cell pointers.
	dir, err := rt.Alloc.Malloc(8 * nCells)
	if err != nil {
		return err
	}
	if err := g.set(0, dir); err != nil {
		return err
	}
	sizes := []int{16, 24, 48, 96, 160, 320, 640, 1280, 2560, 5120, 8192}
	for i := 0; i < nCells; i++ {
		payload := sizes[r.Intn(len(sizes))]
		c, err := rt.Alloc.Malloc(24 + payload)
		if err != nil {
			return err
		}
		if err := rt.Mem.Store64(c, uint64(r.Intn(256))); err != nil { // x
			return err
		}
		if err := rt.Mem.Store64(c+8, uint64(r.Intn(256))); err != nil { // y
			return err
		}
		if err := rt.Mem.Store64(c+16, uint64(payload)); err != nil {
			return err
		}
		if err := rt.Mem.Store64(dir+uint64(8*i), c); err != nil {
			return err
		}
	}
	cost := uint64(0)
	for it := 0; it < iters; it++ {
		if err := rt.Step(); err != nil {
			return err
		}
		// Visit a pseudo-random pair of cells, touch their payloads
		// (scattered accesses across size classes), and swap their
		// positions if that reduces the pairwise distance to their
		// index-neighbors.
		a := r.Intn(nCells)
		b := r.Intn(nCells)
		ca, err := rt.Mem.Load64(dir + uint64(8*a))
		if err != nil {
			return err
		}
		cb, err := rt.Mem.Load64(dir + uint64(8*b))
		if err != nil {
			return err
		}
		for _, c := range []uint64{ca, cb} {
			sz, err := rt.Mem.Load64(c + 16)
			if err != nil {
				return err
			}
			// Touch one spot in the payload.
			off := (24 + sz/2) &^ 7
			v, err := rt.Mem.Load64(c + off)
			if err != nil {
				return err
			}
			if err := rt.Mem.Store64(c+off, v+1); err != nil {
				return err
			}
		}
		xa, err := rt.Mem.Load64(ca)
		if err != nil {
			return err
		}
		xb, err := rt.Mem.Load64(cb)
		if err != nil {
			return err
		}
		if (xa > xb) == (a < b) {
			if err := rt.Mem.Store64(ca, xb); err != nil {
				return err
			}
			if err := rt.Mem.Store64(cb, xa); err != nil {
				return err
			}
			cost++
		}
	}
	// Free everything.
	for i := 0; i < nCells; i++ {
		c, err := rt.Mem.Load64(dir + uint64(8*i))
		if err != nil {
			return err
		}
		if err := rt.Alloc.Free(c); err != nil {
			return err
		}
	}
	_ = rt.Alloc.Free(dir)
	_, err = fmt.Fprintf(rt.Out, "twolf: cells=%d swaps=%d\n", nCells, cost)
	return err
}

var _ = heap.Null
