package apps

import (
	"fmt"

	"diehard/internal/heap"
	"diehard/internal/rng"
)

// lindsay simulates message routing on a hypercube, after the Lindsay
// benchmark of the allocation-intensive suite. Every hop allocates a
// hop-record and frees the previous one, so the allocation rate is
// enormous relative to compute.
//
// Faithfully to the paper, this kernel contains a genuine uninitialized
// read: hop records carry a `tag` field that is never written, and the
// final statistics fold one tag value into the output. Under the
// stand-alone allocator the output is deterministic per allocator; under
// the replicated runtime the randomized fill makes the replicas disagree
// and the voter detects it — which is why §7.2.3 excludes lindsay from
// the replicated measurements.
//
// Node layout:  +0 received (u64), +8 spare (u64, never written)
// Hop layout:   +0 current node (u64), +8 hops so far (u64),
//               +16 prev record (ptr, freed on arrival), +24 tag (u64,
//               NEVER WRITTEN: the uninitialized read)

const lindsayDim = 6 // 64 nodes

func lindsayInput(scale int) []byte {
	if scale < 1 {
		scale = 1
	}
	r := rng.NewSeeded(0x11D)
	var out []byte
	n := 1 << lindsayDim
	for i := 0; i < 1200*scale; i++ {
		out = append(out, []byte(fmt.Sprintf("%d %d\n", r.Intn(n), r.Intn(n)))...)
	}
	return out
}

func runLindsay(rt *Runtime) error {
	nodes := 1 << lindsayDim
	g, err := newGlobals(rt, nodes+1) // per-node pointer + scratch
	if err != nil {
		return err
	}
	defer g.release()

	// Allocate node records.
	for i := 0; i < nodes; i++ {
		n, err := rt.Alloc.Malloc(16)
		if err != nil {
			return err
		}
		if err := rt.Mem.Store64(n, 0); err != nil { // received count
			return err
		}
		// NOTE: the spare field at n+8 is deliberately left
		// uninitialized, mirroring the original benchmark's bug.
		if err := g.set(i, n); err != nil {
			return err
		}
	}

	var totalHops, delivered uint64
	uninitStat := uint64(0)

	// Parse "src dst" pairs and route each message.
	parseInt := func(s []byte, pos int) (int, int) {
		v := 0
		for pos < len(s) && s[pos] >= '0' && s[pos] <= '9' {
			v = v*10 + int(s[pos]-'0')
			pos++
		}
		return v, pos
	}
	i := 0
	in := rt.Input
	for i < len(in) {
		var src, dst int
		src, i = parseInt(in, i)
		i++ // space
		dst, i = parseInt(in, i)
		i++ // newline
		src &= nodes - 1
		dst &= nodes - 1

		// Route by correcting one differing dimension per hop; each hop
		// allocates a fresh record carrying a pointer to the previous
		// one, which is freed on arrival of the next.
		rec, err := rt.Alloc.Malloc(32)
		if err != nil {
			return err
		}
		if err := rt.Mem.Store64(rec, uint64(src)); err != nil {
			return err
		}
		if err := rt.Mem.Store64(rec+8, 0); err != nil {
			return err
		}
		if err := rt.Mem.Store64(rec+16, heap.Null); err != nil {
			return err
		}
		if err := g.set(nodes, rec); err != nil { // keep reachable
			return err
		}
		cur := src
		for cur != dst {
			if err := rt.Step(); err != nil {
				return err
			}
			diff := uint(cur ^ dst)
			var bit int
			for bit = 0; bit < lindsayDim; bit++ {
				if diff>>bit&1 == 1 {
					break
				}
			}
			cur ^= 1 << bit
			hops, err := rt.Mem.Load64(rec + 8)
			if err != nil {
				return err
			}
			next, err := rt.Alloc.Malloc(32)
			if err != nil {
				return err
			}
			if err := rt.Mem.Store64(next, uint64(cur)); err != nil {
				return err
			}
			if err := rt.Mem.Store64(next+8, hops+1); err != nil {
				return err
			}
			if err := rt.Mem.Store64(next+16, rec); err != nil {
				return err
			}
			if err := g.set(nodes, next); err != nil {
				return err
			}
			// Free the superseded record.
			if err := rt.Alloc.Free(rec); err != nil {
				return err
			}
			rec = next
		}
		hops, err := rt.Mem.Load64(rec + 8)
		if err != nil {
			return err
		}
		totalHops += hops
		delivered++
		// The destination node counts the arrival.
		nptr, err := g.get(dst)
		if err != nil {
			return err
		}
		recv, err := rt.Mem.Load64(nptr)
		if err != nil {
			return err
		}
		if err := rt.Mem.Store64(nptr, recv+1); err != nil {
			return err
		}
		// THE UNINITIALIZED READ: every 97th delivery folds the
		// never-written tag field of the final hop record into the
		// statistics, and the statistic is printed below.
		if delivered%97 == 0 {
			tag, err := rt.Mem.Load64(rec + 24)
			if err != nil {
				return err
			}
			uninitStat ^= tag
		}
		if err := rt.Alloc.Free(rec); err != nil {
			return err
		}
		if err := g.set(nodes, heap.Null); err != nil {
			return err
		}
	}

	// Receive-count checksum.
	hash := uint64(fnvInit)
	for i := 0; i < nodes; i++ {
		nptr, err := g.get(i)
		if err != nil {
			return err
		}
		recv, err := rt.Mem.Load64(nptr)
		if err != nil {
			return err
		}
		hash = fnv1a(hash, byte(recv))
		if err := rt.Alloc.Free(nptr); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(rt.Out, "lindsay: delivered=%d hops=%d checksum=%016x tagstat=%016x\n",
		delivered, totalHops, hash, uninitStat)
	return err
}
