package apps

import (
	"fmt"

	"diehard/internal/heap"
	"diehard/internal/rng"
)

// 176.gcc analog: an expression compiler — parse arithmetic statements,
// constant-fold the ASTs, and emit stack-machine code. Reuses the p2c
// front end (translator and compiler front ends genuinely share this
// shape) but performs the compiler-specific middle end: folding and
// code generation. Allocation of many small nodes, freed per function.

func gccInput(scale int) []byte {
	if scale < 1 {
		scale = 1
	}
	var out []byte
	for i := 0; i < 140*scale; i++ {
		out = append(out, []byte(fmt.Sprintf(
			"v%d := (%d + %d) * v%d - (%d * %d) + v%d * (v%d + %d);\n",
			i%9, i%17, (i+5)%23, (i+1)%9, i%7, (i+2)%11, (i+3)%9, (i+4)%9, i%29))...)
	}
	return out
}

func runGcc(rt *Runtime) error {
	g, err := newGlobals(rt, 2)
	if err != nil {
		return err
	}
	defer g.release()
	s := &p2cState{rt: rt, g: g}
	hash := uint64(fnvInit)
	folded, emitted := 0, 0

	// fold constant-folds the tree bottom-up in place, freeing subsumed
	// children.
	var fold func(n heap.Ptr) error
	fold = func(n heap.Ptr) error {
		if err := rt.Step(); err != nil {
			return err
		}
		op, err := rt.Mem.Load64(n)
		if err != nil {
			return err
		}
		if op == opNum || op == opVar {
			return nil
		}
		left, err := rt.Mem.Load64(n + 8)
		if err != nil {
			return err
		}
		right, err := rt.Mem.Load64(n + 16)
		if err != nil {
			return err
		}
		if err := fold(left); err != nil {
			return err
		}
		if err := fold(right); err != nil {
			return err
		}
		lop, err := rt.Mem.Load64(left)
		if err != nil {
			return err
		}
		rop, err := rt.Mem.Load64(right)
		if err != nil {
			return err
		}
		if lop == opNum && rop == opNum {
			lv, err := rt.Mem.Load64(left + 24)
			if err != nil {
				return err
			}
			rv, err := rt.Mem.Load64(right + 24)
			if err != nil {
				return err
			}
			var v uint64
			switch op {
			case opAdd:
				v = lv + rv
			case opSub:
				v = lv - rv
			case opMul:
				v = lv * rv
			}
			// Rewrite this node as a leaf and free the children.
			if err := rt.Mem.Store64(n, opNum); err != nil {
				return err
			}
			if err := rt.Mem.Store64(n+24, v); err != nil {
				return err
			}
			if err := rt.Alloc.Free(left); err != nil {
				return err
			}
			if err := rt.Alloc.Free(right); err != nil {
				return err
			}
			folded++
		}
		return nil
	}

	// emit generates stack-machine code, hashing the instruction
	// stream.
	var emit func(n heap.Ptr) error
	emit = func(n heap.Ptr) error {
		op, err := rt.Mem.Load64(n)
		if err != nil {
			return err
		}
		switch op {
		case opNum:
			v, err := rt.Mem.Load64(n + 24)
			if err != nil {
				return err
			}
			hash = fnv1a(hash, 'P')
			hash = fnv1a(hash, byte(v))
		case opVar:
			v, err := rt.Mem.Load64(n + 24)
			if err != nil {
				return err
			}
			hash = fnv1a(hash, 'L')
			hash = fnv1a(hash, byte(v))
		default:
			left, err := rt.Mem.Load64(n + 8)
			if err != nil {
				return err
			}
			right, err := rt.Mem.Load64(n + 16)
			if err != nil {
				return err
			}
			if err := emit(left); err != nil {
				return err
			}
			if err := emit(right); err != nil {
				return err
			}
			hash = fnv1a(hash, "ASM"[op-opAdd])
		}
		emitted++
		return nil
	}

	i := 0
	in := rt.Input
	for i < len(in) {
		j := i
		for j < len(in) && in[j] != '\n' {
			j++
		}
		line := in[i:j]
		i = j + 1
		if len(line) == 0 {
			continue
		}
		head, err := s.lex(line)
		if err != nil {
			return err
		}
		s.tokens = head
		if err := s.advance(); err != nil { // target
			return err
		}
		if err := s.advance(); err != nil { // ':='
			return err
		}
		tree, err := s.parseExpr()
		if err != nil {
			return err
		}
		if err := g.set(1, tree); err != nil {
			return err
		}
		if err := fold(tree); err != nil {
			return err
		}
		if err := emit(tree); err != nil {
			return err
		}
		if err := s.freeTree(tree); err != nil {
			return err
		}
		if err := g.set(1, heap.Null); err != nil {
			return err
		}
		if err := s.freeTokens(head); err != nil {
			return err
		}
		if err := g.set(0, heap.Null); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(rt.Out, "gcc: folded=%d emitted=%d checksum=%016x\n", folded, emitted, hash)
	return err
}

// 197.parser analog: CYK chart parsing of a CNF grammar over generated
// sentences. The chart is a heap-resident n x n table of nonterminal
// bitmasks; cells are written and combined quadratically.

func parserInput(scale int) []byte {
	if scale < 1 {
		scale = 1
	}
	r := rng.NewSeeded(0x9A55)
	words := "dnvap" // determiner, noun, verb, adjective, preposition
	var out []byte
	for s := 0; s < 60*scale; s++ {
		n := 8 + r.Intn(10)
		for w := 0; w < n; w++ {
			out = append(out, words[r.Intn(len(words))], ' ')
		}
		out = append(out, '\n')
	}
	return out
}

// Grammar nonterminals (bit positions): S, NP, VP, PP, N', plus
// preterminals D, N, V, A, P mapped from input letters.
const (
	ntS = 1 << iota
	ntNP
	ntVP
	ntPP
	ntNbar
	ntD
	ntN
	ntV
	ntA
	ntP
)

// cnfRules are the binary rules: left, right -> parent.
var cnfRules = [][3]uint64{
	{ntNP, ntVP, ntS},
	{ntD, ntNbar, ntNP},
	{ntA, ntNbar, ntNbar},
	{ntV, ntNP, ntVP},
	{ntVP, ntPP, ntVP},
	{ntP, ntNP, ntPP},
	{ntNP, ntPP, ntNP},
}

func runParser(rt *Runtime) error {
	g, err := newGlobals(rt, 1)
	if err != nil {
		return err
	}
	defer g.release()
	hash := uint64(fnvInit)
	parses := 0

	i := 0
	in := rt.Input
	for i < len(in) {
		j := i
		for j < len(in) && in[j] != '\n' {
			j++
		}
		line := in[i:j]
		i = j + 1
		var sentence []byte
		for _, c := range line {
			if c != ' ' {
				sentence = append(sentence, c)
			}
		}
		n := len(sentence)
		if n == 0 {
			continue
		}
		chart, err := rt.Alloc.Malloc(8 * n * n)
		if err != nil {
			return err
		}
		if err := g.set(0, chart); err != nil {
			return err
		}
		cell := func(a, b int) heap.Ptr { return chart + uint64(8*(a*n+b)) }
		for w, c := range sentence {
			var nt uint64
			switch c {
			case 'd':
				nt = ntD
			case 'n':
				nt = ntN | ntNbar
			case 'v':
				nt = ntV
			case 'a':
				nt = ntA
			case 'p':
				nt = ntP
			}
			if err := rt.Mem.Store64(cell(w, w), nt); err != nil {
				return err
			}
		}
		for span := 2; span <= n; span++ {
			for a := 0; a+span <= n; a++ {
				if err := rt.Step(); err != nil {
					return err
				}
				b := a + span - 1
				var mask uint64
				for mid := a; mid < b; mid++ {
					lv, err := rt.Mem.Load64(cell(a, mid))
					if err != nil {
						return err
					}
					rv, err := rt.Mem.Load64(cell(mid+1, b))
					if err != nil {
						return err
					}
					for _, rule := range cnfRules {
						if lv&rule[0] != 0 && rv&rule[1] != 0 {
							mask |= rule[2]
						}
					}
				}
				if err := rt.Mem.Store64(cell(a, b), mask); err != nil {
					return err
				}
			}
		}
		root, err := rt.Mem.Load64(cell(0, n-1))
		if err != nil {
			return err
		}
		if root&ntS != 0 {
			parses++
		}
		hash = fnv1a(hash, byte(root))
		if err := rt.Alloc.Free(chart); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(rt.Out, "parser: parses=%d checksum=%016x\n", parses, hash)
	return err
}

// 253.perlbmk analog: a string-processing interpreter executing a
// generated script of concat/reverse/upper/hash operations over
// heap-allocated strings. Like the original, it spends a large share of
// its time in allocation (every string operation allocates the result).

func perlbmkInput(scale int) []byte {
	if scale < 1 {
		scale = 1
	}
	r := rng.NewSeeded(0x9E71)
	ops := []string{"cat", "rev", "up", "hash"}
	var out []byte
	for i := 0; i < 2600*scale; i++ {
		op := ops[r.Intn(len(ops))]
		out = append(out, []byte(fmt.Sprintf("%s %d %d\n", op, r.Intn(16), r.Intn(16)))...)
	}
	return out
}

func runPerlbmk(rt *Runtime) error {
	const nVars = 16
	g, err := newGlobals(rt, nVars) // string variables: ptr or null
	if err != nil {
		return err
	}
	defer g.release()

	// Heap string layout: +0 length (u64), +8 bytes.
	newString := func(b []byte) (heap.Ptr, error) {
		p, err := rt.Alloc.Malloc(8 + len(b))
		if err != nil {
			return heap.Null, err
		}
		if err := rt.Mem.Store64(p, uint64(len(b))); err != nil {
			return heap.Null, err
		}
		return p, rt.Mem.WriteBytes(p+8, b)
	}
	readString := func(p heap.Ptr) ([]byte, error) {
		n, err := rt.Mem.Load64(p)
		if err != nil {
			return nil, err
		}
		if n > 1<<20 {
			return nil, &heap.CorruptionError{Detail: "perlbmk: implausible string length"}
		}
		b := make([]byte, n)
		return b, rt.Mem.ReadBytes(p+8, b)
	}
	setVar := func(i int, p heap.Ptr) error {
		old, err := g.get(i)
		if err != nil {
			return err
		}
		if err := g.set(i, p); err != nil {
			return err
		}
		if old != heap.Null {
			return rt.Alloc.Free(old)
		}
		return nil
	}
	// Seed the variables.
	for i := 0; i < nVars; i++ {
		p, err := newString([]byte(fmt.Sprintf("var%02d-initial-value", i)))
		if err != nil {
			return err
		}
		if err := g.set(i, p); err != nil {
			return err
		}
	}

	hash := uint64(fnvInit)
	executed := 0
	i := 0
	in := rt.Input
	for i < len(in) {
		j := i
		for j < len(in) && in[j] != '\n' {
			j++
		}
		line := string(in[i:j])
		i = j + 1
		var op string
		var a, b int
		if _, err := fmt.Sscanf(line, "%s %d %d", &op, &a, &b); err != nil {
			continue
		}
		if err := rt.Step(); err != nil {
			return err
		}
		a, b = a%nVars, b%nVars
		pa, err := g.get(a)
		if err != nil {
			return err
		}
		sa, err := readString(pa)
		if err != nil {
			return err
		}
		switch op {
		case "cat":
			pb, err := g.get(b)
			if err != nil {
				return err
			}
			sb, err := readString(pb)
			if err != nil {
				return err
			}
			joined := append(sa, sb...)
			if len(joined) > 512 {
				joined = joined[:512] // bound growth deterministically
			}
			p, err := newString(joined)
			if err != nil {
				return err
			}
			if err := setVar(a, p); err != nil {
				return err
			}
		case "rev":
			for x, y := 0, len(sa)-1; x < y; x, y = x+1, y-1 {
				sa[x], sa[y] = sa[y], sa[x]
			}
			p, err := newString(sa)
			if err != nil {
				return err
			}
			if err := setVar(a, p); err != nil {
				return err
			}
		case "up":
			for x := range sa {
				if sa[x] >= 'a' && sa[x] <= 'z' {
					sa[x] -= 32
				}
			}
			p, err := newString(sa)
			if err != nil {
				return err
			}
			if err := setVar(a, p); err != nil {
				return err
			}
		case "hash":
			for _, c := range sa {
				hash = fnv1a(hash, c)
			}
		}
		executed++
	}
	_, err = fmt.Fprintf(rt.Out, "perlbmk: ops=%d checksum=%016x\n", executed, hash)
	return err
}

// 254.gap analog: computer algebra — polynomial multiplication and
// evaluation with bignum coefficients over the heap bignum kernel.

func gapInput(scale int) []byte {
	if scale < 1 {
		scale = 1
	}
	return []byte(fmt.Sprintf("%d %d\n", 24, 10*scale))
}

func runGap(rt *Runtime) error {
	g, err := newGlobals(rt, 3)
	if err != nil {
		return err
	}
	defer g.release()
	var degree, rounds int
	fmt.Sscanf(string(rt.Input), "%d %d", &degree, &rounds)

	// Polynomial: heap array of u64 coefficients (mod a prime to bound
	// growth); bignums used for the evaluation step.
	const prime = 1_000_000_007
	newPoly := func(n int) (heap.Ptr, error) {
		p, err := rt.Alloc.Malloc(8 * n)
		if err != nil {
			return heap.Null, err
		}
		return p, rt.Mem.Memset(p, 0, 8*n)
	}
	hash := uint64(fnvInit)
	for round := 0; round < rounds; round++ {
		a, err := newPoly(degree + 1)
		if err != nil {
			return err
		}
		if err := g.set(0, a); err != nil {
			return err
		}
		for i := 0; i <= degree; i++ {
			c := uint64(i+round+1) * 2654435761 % prime
			if err := rt.Mem.Store64(a+uint64(8*i), c); err != nil {
				return err
			}
		}
		// Square the polynomial.
		sq, err := newPoly(2*degree + 1)
		if err != nil {
			return err
		}
		if err := g.set(1, sq); err != nil {
			return err
		}
		for i := 0; i <= degree; i++ {
			if err := rt.Step(); err != nil {
				return err
			}
			ai, err := rt.Mem.Load64(a + uint64(8*i))
			if err != nil {
				return err
			}
			for j := 0; j <= degree; j++ {
				aj, err := rt.Mem.Load64(a + uint64(8*j))
				if err != nil {
					return err
				}
				k := uint64(8 * (i + j))
				cur, err := rt.Mem.Load64(sq + k)
				if err != nil {
					return err
				}
				if err := rt.Mem.Store64(sq+k, (cur+ai*aj)%prime); err != nil {
					return err
				}
			}
		}
		// Evaluate at x = 3 with bignum Horner (allocation-heavy).
		acc, err := bnFromU64(rt, 0)
		if err != nil {
			return err
		}
		if err := g.set(2, acc); err != nil {
			return err
		}
		for i := 2 * degree; i >= 0; i-- {
			c, err := rt.Mem.Load64(sq + uint64(8*i))
			if err != nil {
				return err
			}
			next, err := bnMulAddSmall(rt, acc, 3, c)
			if err != nil {
				return err
			}
			if err := g.set(2, next); err != nil {
				return err
			}
			if err := rt.Alloc.Free(acc); err != nil {
				return err
			}
			acc = next
		}
		hash, err = bnHash(rt, acc, hash)
		if err != nil {
			return err
		}
		if err := rt.Alloc.Free(acc); err != nil {
			return err
		}
		if err := rt.Alloc.Free(a); err != nil {
			return err
		}
		if err := rt.Alloc.Free(sq); err != nil {
			return err
		}
	}
	_, err = fmt.Fprintf(rt.Out, "gap: rounds=%d checksum=%016x\n", rounds, hash)
	return err
}

// 255.vortex analog: an object database — records of varying sizes in a
// heap-resident chained hash table under a mixed insert/lookup/delete
// workload.

func vortexInput(scale int) []byte {
	if scale < 1 {
		scale = 1
	}
	r := rng.NewSeeded(0x0DB)
	var out []byte
	for i := 0; i < 5000*scale; i++ {
		switch r.Intn(10) {
		case 0, 1, 2, 3:
			out = append(out, []byte(fmt.Sprintf("ins %d %d\n", r.Intn(1024), 16+r.Intn(200)))...)
		case 4, 5, 6, 7, 8:
			out = append(out, []byte(fmt.Sprintf("get %d 0\n", r.Intn(1024)))...)
		default:
			out = append(out, []byte(fmt.Sprintf("del %d 0\n", r.Intn(1024)))...)
		}
	}
	return out
}

func runVortex(rt *Runtime) error {
	const buckets = 256
	g, err := newGlobals(rt, buckets)
	if err != nil {
		return err
	}
	defer g.release()

	// Record layout: +0 key, +8 next, +16 size, +24.. payload.
	hash := uint64(fnvInit)
	var inserts, hits, deletes int
	i := 0
	in := rt.Input
	for i < len(in) {
		j := i
		for j < len(in) && in[j] != '\n' {
			j++
		}
		line := string(in[i:j])
		i = j + 1
		var op string
		var key, size int
		if _, err := fmt.Sscanf(line, "%s %d %d", &op, &key, &size); err != nil {
			continue
		}
		if err := rt.Step(); err != nil {
			return err
		}
		b := key % buckets
		head, err := g.get(b)
		if err != nil {
			return err
		}
		switch op {
		case "ins":
			rec, err := rt.Alloc.Malloc(24 + size)
			if err != nil {
				return err
			}
			if err := rt.Mem.Store64(rec, uint64(key)); err != nil {
				return err
			}
			if err := rt.Mem.Store64(rec+8, head); err != nil {
				return err
			}
			if err := rt.Mem.Store64(rec+16, uint64(size)); err != nil {
				return err
			}
			if err := rt.Mem.Memset(rec+24, byte(key), size); err != nil {
				return err
			}
			if err := g.set(b, rec); err != nil {
				return err
			}
			inserts++
		case "get":
			for cur := head; cur != heap.Null; {
				if err := rt.Step(); err != nil {
					return err
				}
				k, err := rt.Mem.Load64(cur)
				if err != nil {
					return err
				}
				next, err := rt.Mem.Load64(cur + 8)
				if err != nil {
					return err
				}
				if int(k) == key {
					sz, err := rt.Mem.Load64(cur + 16)
					if err != nil {
						return err
					}
					v, err := rt.Mem.Load8(cur + 24 + sz/2)
					if err != nil {
						return err
					}
					hash = fnv1a(hash, v)
					hits++
					break
				}
				cur = next
			}
		case "del":
			var prev heap.Ptr
			for cur := head; cur != heap.Null; {
				if err := rt.Step(); err != nil {
					return err
				}
				k, err := rt.Mem.Load64(cur)
				if err != nil {
					return err
				}
				next, err := rt.Mem.Load64(cur + 8)
				if err != nil {
					return err
				}
				if int(k) == key {
					if prev == heap.Null {
						if err := g.set(b, next); err != nil {
							return err
						}
					} else if err := rt.Mem.Store64(prev+8, next); err != nil {
						return err
					}
					if err := rt.Alloc.Free(cur); err != nil {
						return err
					}
					deletes++
					break
				}
				prev, cur = cur, next
			}
		}
	}
	_, err = fmt.Fprintf(rt.Out, "vortex: ins=%d hits=%d dels=%d checksum=%016x\n",
		inserts, hits, deletes, hash)
	return err
}
