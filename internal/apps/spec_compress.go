package apps

import (
	"fmt"

	"diehard/internal/heap"
	"diehard/internal/rng"
)

// 164.gzip analog: LZ77 compression with hash-chain match finding, all
// buffers and tables heap-resident. Like the original: few allocations,
// heavy sequential and hashed memory traffic.

func gzipInput(scale int) []byte {
	if scale < 1 {
		scale = 1
	}
	r := rng.NewSeeded(0x6219)
	words := []string{"the", "compression", "of", "repeated", "tokens", "is", "profitable", "entropy"}
	var out []byte
	for len(out) < 96*1024*scale {
		out = append(out, words[r.Intn(len(words))]...)
		out = append(out, ' ')
	}
	return out
}

func runGzip(rt *Runtime) error {
	g, err := newGlobals(rt, 3)
	if err != nil {
		return err
	}
	defer g.release()
	n := len(rt.Input)
	src, err := rt.Alloc.Malloc(n)
	if err != nil {
		return err
	}
	if err := g.set(0, src); err != nil {
		return err
	}
	if err := rt.Mem.WriteBytes(src, rt.Input); err != nil {
		return err
	}
	const hashSize = 1 << 13
	table, err := rt.Alloc.Malloc(8 * hashSize) // last position per hash
	if err != nil {
		return err
	}
	if err := g.set(1, table); err != nil {
		return err
	}
	if err := rt.Mem.Memset(table, 0xFF, 8*hashSize); err != nil {
		return err
	}

	hash := uint64(fnvInit)
	var literals, matches, outBits int
	i := 0
	for i+3 < n {
		if err := rt.Step(); err != nil {
			return err
		}
		b0, err := rt.Mem.Load8(src + uint64(i))
		if err != nil {
			return err
		}
		b1, err := rt.Mem.Load8(src + uint64(i+1))
		if err != nil {
			return err
		}
		b2, err := rt.Mem.Load8(src + uint64(i+2))
		if err != nil {
			return err
		}
		h := (uint64(b0)<<16 | uint64(b1)<<8 | uint64(b2)) * 2654435761 % hashSize
		candidate, err := rt.Mem.Load64(table + 8*h)
		if err != nil {
			return err
		}
		if err := rt.Mem.Store64(table+8*h, uint64(i)); err != nil {
			return err
		}
		matchLen := 0
		if candidate != ^uint64(0) && int(candidate) < i && i-int(candidate) < 32768 {
			// Extend the match.
			for matchLen < 258 && i+matchLen < n {
				a, err := rt.Mem.Load8(src + candidate + uint64(matchLen))
				if err != nil {
					return err
				}
				b, err := rt.Mem.Load8(src + uint64(i+matchLen))
				if err != nil {
					return err
				}
				if a != b {
					break
				}
				matchLen++
			}
		}
		if matchLen >= 4 {
			matches++
			outBits += 24 // distance/length token
			hash = fnv1a(hash, byte(matchLen))
			hash = fnv1a(hash, byte(i-int(candidate)))
			i += matchLen
		} else {
			literals++
			outBits += 9
			hash = fnv1a(hash, b0)
			i++
		}
	}
	if err := rt.Alloc.Free(src); err != nil {
		return err
	}
	if err := rt.Alloc.Free(table); err != nil {
		return err
	}
	_, err = fmt.Fprintf(rt.Out, "gzip: in=%d lits=%d matches=%d bits=%d checksum=%016x\n",
		n, literals, matches, outBits, hash)
	return err
}

// 256.bzip2 analog: block-sorting compression — a Burrows-Wheeler
// transform over fixed-size blocks (naive rotation sort, as costly as
// the original's worst case), move-to-front coding, and run-length
// counting. Block buffers and the rotation index are heap objects
// allocated and freed per block.

func bzip2Input(scale int) []byte {
	if scale < 1 {
		scale = 1
	}
	r := rng.NewSeeded(0xB219)
	var out []byte
	for len(out) < 10*1024*scale {
		c := byte('a' + r.Intn(26))
		out = append(out, c)
		if r.Intn(8) == 0 { // occasional short runs
			out = append(out, c, c)
		}
	}
	return out
}

const bzBlock = 128

func runBzip2(rt *Runtime) error {
	g, err := newGlobals(rt, 3)
	if err != nil {
		return err
	}
	defer g.release()
	hash := uint64(fnvInit)
	blocks := 0
	var runs int

	for off := 0; off < len(rt.Input); off += bzBlock {
		end := off + bzBlock
		if end > len(rt.Input) {
			end = len(rt.Input)
		}
		blockLen := end - off
		block, err := rt.Alloc.Malloc(blockLen)
		if err != nil {
			return err
		}
		if err := g.set(0, block); err != nil {
			return err
		}
		if err := rt.Mem.WriteBytes(block, rt.Input[off:end]); err != nil {
			return err
		}
		// BWT: sort rotations (insertion sort over a heap-resident
		// index of 32-bit rotation starts).
		idx, err := rt.Alloc.Malloc(4 * blockLen)
		if err != nil {
			return err
		}
		if err := g.set(1, idx); err != nil {
			return err
		}
		for i := 0; i < blockLen; i++ {
			if err := rt.Mem.Store32(idx+uint64(4*i), uint32(i)); err != nil {
				return err
			}
		}
		rotLess := func(a, b uint32) (bool, error) {
			for k := 0; k < blockLen; k++ {
				ca, err := rt.Mem.Load8(block + uint64((int(a)+k)%blockLen))
				if err != nil {
					return false, err
				}
				cb, err := rt.Mem.Load8(block + uint64((int(b)+k)%blockLen))
				if err != nil {
					return false, err
				}
				if ca != cb {
					return ca < cb, nil
				}
			}
			return false, nil
		}
		for i := 1; i < blockLen; i++ {
			if err := rt.Step(); err != nil {
				return err
			}
			cur, err := rt.Mem.Load32(idx + uint64(4*i))
			if err != nil {
				return err
			}
			j := i - 1
			for j >= 0 {
				prev, err := rt.Mem.Load32(idx + uint64(4*j))
				if err != nil {
					return err
				}
				less, err := rotLess(cur, prev)
				if err != nil {
					return err
				}
				if !less {
					break
				}
				if err := rt.Mem.Store32(idx+uint64(4*(j+1)), prev); err != nil {
					return err
				}
				j--
			}
			if err := rt.Mem.Store32(idx+uint64(4*(j+1)), cur); err != nil {
				return err
			}
		}
		// Last column + MTF + RLE accounting.
		var mtf [256]byte
		for i := range mtf {
			mtf[i] = byte(i)
		}
		var prevSym byte = 0xFF
		for i := 0; i < blockLen; i++ {
			rot, err := rt.Mem.Load32(idx + uint64(4*i))
			if err != nil {
				return err
			}
			c, err := rt.Mem.Load8(block + uint64((int(rot)+blockLen-1)%blockLen))
			if err != nil {
				return err
			}
			// Move-to-front position of c.
			pos := 0
			for mtf[pos] != c {
				pos++
			}
			copy(mtf[1:pos+1], mtf[:pos])
			mtf[0] = c
			sym := byte(pos)
			if sym != prevSym {
				runs++
				prevSym = sym
			}
			hash = fnv1a(hash, sym)
		}
		if err := rt.Alloc.Free(idx); err != nil {
			return err
		}
		if err := rt.Alloc.Free(block); err != nil {
			return err
		}
		blocks++
	}
	_, err = fmt.Fprintf(rt.Out, "bzip2: blocks=%d runs=%d checksum=%016x\n", blocks, runs, hash)
	return err
}

var _ = heap.Null
