package apps

import (
	"bytes"
	"strings"
	"testing"

	"diehard/internal/core"
	"diehard/internal/gcsim"
	"diehard/internal/heap"
	"diehard/internal/leaalloc"
	"diehard/internal/winalloc"
)

const testHeapSize = 24 << 20

func runOn(t *testing.T, app App, alloc heap.Allocator, scale int) (string, *Runtime) {
	t.Helper()
	var out bytes.Buffer
	rt := &Runtime{
		Alloc: alloc,
		Mem:   alloc.Mem(),
		Input: app.Input(scale),
		Out:   &out,
	}
	if err := app.Run(rt); err != nil {
		t.Fatalf("%s on %s: %v", app.Name, alloc.Name(), err)
	}
	return out.String(), rt
}

func dieHeap(t *testing.T, seed uint64) *core.Heap {
	t.Helper()
	h, err := core.New(core.Options{HeapSize: testHeapSize, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestAllAppsRunOnDieHard(t *testing.T) {
	for _, app := range Registry() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			out, rt := runOn(t, app, dieHeap(t, 0xD1E), 1)
			if !strings.Contains(out, "checksum=") && !strings.Contains(out, "cost=") &&
				!strings.Contains(out, "score=") && !strings.Contains(out, "swaps=") {
				t.Fatalf("output carries no result: %q", out)
			}
			if rt.Alloc.Stats().Mallocs == 0 {
				t.Fatal("app performed no allocations")
			}
		})
	}
}

func TestDeterministicAcrossSeeds(t *testing.T) {
	// DieHard randomizes placement, not semantics: two differently
	// seeded stand-alone heaps must yield identical output.
	for _, app := range Registry() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			out1, _ := runOn(t, app, dieHeap(t, 111), 1)
			out2, _ := runOn(t, app, dieHeap(t, 222), 1)
			if out1 != out2 {
				t.Fatalf("output depends on heap layout:\n%s\n%s", out1, out2)
			}
		})
	}
}

func TestAppsRunOnAllAllocators(t *testing.T) {
	// Every benchmark must complete on every baseline, and all
	// allocators must agree on the output — except lindsay, whose
	// uninitialized read legitimately reflects stale heap contents.
	for _, app := range Registry() {
		app := app
		t.Run(app.Name, func(t *testing.T) {
			ref, _ := runOn(t, app, dieHeap(t, 5), 1)

			lea, err := leaalloc.New(leaalloc.Options{HeapSize: testHeapSize})
			if err != nil {
				t.Fatal(err)
			}
			leaOut, _ := runOn(t, app, lea, 1)

			gc, err := gcsim.New(gcsim.Options{HeapSize: 96 << 20})
			if err != nil {
				t.Fatal(err)
			}
			gcOut, _ := runOn(t, app, gc, 1)

			win, err := winalloc.New(winalloc.Options{HeapSize: testHeapSize})
			if err != nil {
				t.Fatal(err)
			}
			winOut, _ := runOn(t, app, win, 1)

			if app.Name == "lindsay" {
				// Compare everything except the uninitialized-read
				// statistic (the final field).
				trim := func(s string) string {
					i := strings.LastIndex(s, "tagstat=")
					return s[:i]
				}
				ref, leaOut, gcOut, winOut = trim(ref), trim(leaOut), trim(gcOut), trim(winOut)
			}
			if leaOut != ref {
				t.Errorf("lea output differs:\nwant %q\ngot  %q", ref, leaOut)
			}
			if gcOut != ref {
				t.Errorf("gc output differs:\nwant %q\ngot  %q", ref, gcOut)
			}
			if winOut != ref {
				t.Errorf("win output differs:\nwant %q\ngot  %q", ref, winOut)
			}
		})
	}
}

func TestLindsayUninitReadIsReal(t *testing.T) {
	// On a stand-alone DieHard heap fresh memory is zero, so the
	// uninitialized statistic is 0. On the boundary-tag baseline the
	// same field holds recycled allocator metadata — direct evidence
	// the read truly reaches uninitialized memory.
	app, _ := Get("lindsay")
	ref, _ := runOn(t, app, dieHeap(t, 5), 1)
	if !strings.Contains(ref, "tagstat=0000000000000000") {
		t.Fatalf("stand-alone DieHard should see zeros: %q", ref)
	}
}

func TestAllocationIntensityOrdering(t *testing.T) {
	// The property Figure 5 relies on: the alloc-intensive suite
	// allocates far more per unit of memory traffic than the SPEC
	// analogs do on (geometric) average.
	intensity := func(app App) float64 {
		h := dieHeap(t, 7)
		runOn(t, app, h, 1)
		accesses := h.Mem().Stats().Accesses()
		if accesses == 0 {
			t.Fatalf("%s made no accesses", app.Name)
		}
		return float64(h.Stats().Mallocs) / float64(accesses)
	}
	var allocSide, specSide []float64
	for _, app := range Registry() {
		v := intensity(app)
		if app.Kind == AllocIntensive {
			allocSide = append(allocSide, v)
		} else {
			specSide = append(specSide, v)
		}
	}
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(allocSide) < 2*mean(specSide) {
		t.Fatalf("alloc-intensive mean %.5f not clearly above SPEC mean %.5f",
			mean(allocSide), mean(specSide))
	}
}

func TestTwolfUsesWideSizeMix(t *testing.T) {
	// 300.twolf must touch many size classes (the TLB outlier
	// mechanism).
	h := dieHeap(t, 9)
	app, _ := Get("300.twolf")
	runOn(t, app, h, 1)
	classes := 0
	for c := 0; c < core.NumClasses; c++ {
		if h.ClassMallocs(c) > 0 {
			classes++
		}
	}
	if classes < 6 {
		t.Fatalf("twolf touched only %d size classes", classes)
	}
	// Contrast: the mcf analog concentrates in very few classes.
	h2 := dieHeap(t, 9)
	mcf, _ := Get("181.mcf")
	runOn(t, mcf, h2, 1)
	mcfClasses := 0
	for c := 0; c < core.NumClasses; c++ {
		if h2.ClassMallocs(c) > 0 {
			mcfClasses++
		}
	}
	if mcfClasses >= classes {
		t.Fatalf("twolf (%d classes) should exceed mcf (%d)", classes, mcfClasses)
	}
}

func TestHangDetection(t *testing.T) {
	app, _ := Get("espresso")
	var out bytes.Buffer
	h := dieHeap(t, 1)
	rt := &Runtime{
		Alloc:     h,
		Mem:       h.Mem(),
		Input:     app.Input(1),
		Out:       &out,
		WorkLimit: 50, // absurdly small: must trip
	}
	if err := app.Run(rt); err != ErrHang {
		t.Fatalf("expected ErrHang, got %v", err)
	}
}

func TestRegistryLookups(t *testing.T) {
	if len(Registry()) != 17 {
		t.Fatalf("registry has %d apps, want 17 (5 alloc-intensive + 12 SPEC)", len(Registry()))
	}
	if _, ok := Get("cfrac"); !ok {
		t.Fatal("cfrac missing")
	}
	if _, ok := Get("nonesuch"); ok {
		t.Fatal("bogus app found")
	}
	ai := 0
	for _, a := range Registry() {
		if a.Kind == AllocIntensive {
			ai++
		}
	}
	if ai != 5 {
		t.Fatalf("%d alloc-intensive apps, want 5", ai)
	}
}

func TestGlobalsHelpers(t *testing.T) {
	h := dieHeap(t, 3)
	rt := &Runtime{Alloc: h, Mem: h.Mem()}
	g, err := newGlobals(rt, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.set(2, 0xabc); err != nil {
		t.Fatal(err)
	}
	v, err := g.get(2)
	if err != nil || v != 0xabc {
		t.Fatalf("got %v %v", v, err)
	}
	if err := g.set(4, 1); err == nil {
		t.Fatal("out-of-range set accepted")
	}
	if _, err := g.get(-1); err == nil {
		t.Fatal("out-of-range get accepted")
	}
	g.release()
}

func TestInputScaling(t *testing.T) {
	for _, app := range Registry() {
		small := len(app.Input(1))
		if small == 0 {
			t.Fatalf("%s has empty input", app.Name)
		}
		// Scale 0 and negative clamp to 1.
		if len(app.Input(0)) != small {
			t.Fatalf("%s: scale 0 not clamped", app.Name)
		}
	}
	// At least the data-driven apps scale up.
	for _, name := range []string{"cfrac", "espresso", "164.gzip", "255.vortex"} {
		app, _ := Get(name)
		if len(app.Input(2)) <= len(app.Input(1)) {
			t.Fatalf("%s input does not scale", name)
		}
	}
}
