// Package policies implements the comparator runtimes of Table 1 that
// are not plain allocators: the fail-stop safe-C runtime (CCured-like),
// failure-oblivious computing, and Rx-style rollback recovery.
//
// Each runtime is reproduced at the level of its observable policy, per
// DESIGN.md §1: what happens on each class of memory error. The checked
// runtimes interpose on application memory accesses through the
// heap.Memory interface; Rx interposes on execution (re-running a
// deterministic program with an allergen-avoiding allocator after a
// crash).
package policies

import (
	"fmt"

	"diehard/internal/gcsim"
	"diehard/internal/heap"
	"diehard/internal/vmem"
)

// FailStop models a safe-C runtime in the CCured mold: every access is
// dynamically checked against live-object bounds, reads of uninitialized
// heap bytes are detected, and any violation aborts the program
// (heap.AbortError). Deallocation is handled by a conservative collector
// exactly as CCured relies on BDW-GC, which is why invalid, double, and
// dangling frees are tolerated (Table 1).
type FailStop struct {
	base    *gcsim.Heap
	objects *objTable
	inited  map[heap.Ptr][]bool // per-object byte-initialization map
	stats   heap.Stats
}

var _ heap.Allocator = (*FailStop)(nil)

// NewFailStop creates a fail-stop runtime with the given heap budget.
func NewFailStop(heapSize int) (*FailStop, error) {
	base, err := gcsim.New(gcsim.Options{HeapSize: heapSize})
	if err != nil {
		return nil, err
	}
	// The bounds table holds every object the program can still name;
	// the collector must not sweep behind it. (CCured's pointers are
	// visible to its collector; the simulated collector cannot see this
	// runtime's table, so pinning is the faithful choice.)
	base.SetDisableSweep(true)
	return &FailStop{
		base:    base,
		objects: newObjTable(),
		inited:  make(map[heap.Ptr][]bool),
	}, nil
}

// Malloc allocates and registers bounds and initialization metadata.
func (f *FailStop) Malloc(size int) (heap.Ptr, error) {
	f.stats.WorkUnits += heap.WorkCheck
	p, err := f.base.Malloc(size)
	if err != nil {
		f.stats.FailedMallocs++
		return heap.Null, err
	}
	if size == 0 {
		size = 1
	}
	f.objects.add(p, size)
	f.inited[p] = make([]bool, size)
	heap.CountMalloc(&f.stats, size, size)
	return p, nil
}

// Free is checked but garbage-collected: like CCured on BDW-GC, the
// object is not reused until unreachable, so double and invalid frees
// are harmless and dangling accesses still see the object.
func (f *FailStop) Free(p heap.Ptr) error {
	f.stats.WorkUnits += heap.WorkCheck
	f.stats.IgnoredFrees++
	return f.base.Free(p)
}

// SizeOf reports the registered size of a live object.
func (f *FailStop) SizeOf(p heap.Ptr) (int, bool) {
	start, size, ok := f.objects.find(p)
	if !ok || start != p {
		return 0, false
	}
	return size, true
}

// Mem returns the underlying simulated address space (unchecked); use
// Memory for application accesses.
func (f *FailStop) Mem() *vmem.Space { return f.base.Mem() }

// Stats returns the runtime's counters.
func (f *FailStop) Stats() *heap.Stats { return &f.stats }

// Name identifies the runtime in experiment reports.
func (f *FailStop) Name() string { return "ccured" }

// Collector exposes the underlying collector for root registration.
func (f *FailStop) Collector() *gcsim.Heap { return f.base }

// Memory returns the dynamically checked view of memory that application
// code must use under this runtime.
func (f *FailStop) Memory() heap.Memory {
	return &checkedMem{rt: f}
}

// checkedMem enforces spatial (bounds) and read-before-write checks on
// every access, aborting on violation.
type checkedMem struct {
	rt *FailStop
}

var _ heap.Memory = (*checkedMem)(nil)

func (m *checkedMem) check(addr heap.Ptr, n int, isWrite bool) error {
	m.rt.stats.WorkUnits += heap.WorkCheck
	start, size, ok := m.rt.objects.find(addr)
	if !ok || addr+uint64(n) > start+uint64(size) {
		op := "read"
		if isWrite {
			op = "write"
		}
		return &heap.AbortError{Reason: fmt.Sprintf("bounds check failed: %s of %d bytes at %#x", op, n, addr)}
	}
	init := m.rt.inited[start]
	off := int(addr - start)
	if isWrite {
		for i := 0; i < n; i++ {
			init[off+i] = true
		}
		return nil
	}
	for i := 0; i < n; i++ {
		if !init[off+i] {
			return &heap.AbortError{Reason: fmt.Sprintf("read of uninitialized byte at %#x", addr+uint64(i))}
		}
	}
	return nil
}

func (m *checkedMem) Load8(addr uint64) (byte, error) {
	if err := m.check(addr, 1, false); err != nil {
		return 0, err
	}
	return m.rt.base.Mem().Load8(addr)
}

func (m *checkedMem) Store8(addr uint64, v byte) error {
	if err := m.check(addr, 1, true); err != nil {
		return err
	}
	return m.rt.base.Mem().Store8(addr, v)
}

func (m *checkedMem) Load32(addr uint64) (uint32, error) {
	if err := m.check(addr, 4, false); err != nil {
		return 0, err
	}
	return m.rt.base.Mem().Load32(addr)
}

func (m *checkedMem) Store32(addr uint64, v uint32) error {
	if err := m.check(addr, 4, true); err != nil {
		return err
	}
	return m.rt.base.Mem().Store32(addr, v)
}

func (m *checkedMem) Load64(addr uint64) (uint64, error) {
	if err := m.check(addr, 8, false); err != nil {
		return 0, err
	}
	return m.rt.base.Mem().Load64(addr)
}

func (m *checkedMem) Store64(addr uint64, v uint64) error {
	if err := m.check(addr, 8, true); err != nil {
		return err
	}
	return m.rt.base.Mem().Store64(addr, v)
}

func (m *checkedMem) ReadBytes(addr uint64, b []byte) error {
	if err := m.check(addr, len(b), false); err != nil {
		return err
	}
	return m.rt.base.Mem().ReadBytes(addr, b)
}

func (m *checkedMem) WriteBytes(addr uint64, b []byte) error {
	if err := m.check(addr, len(b), true); err != nil {
		return err
	}
	return m.rt.base.Mem().WriteBytes(addr, b)
}

func (m *checkedMem) Memset(addr uint64, v byte, n int) error {
	if err := m.check(addr, n, true); err != nil {
		return err
	}
	return m.rt.base.Mem().Memset(addr, v, n)
}

// FindByte scans byte by byte: each examined byte must pass the same
// bounds and initialization checks a Load8 loop would perform, so the
// fail-stop runtime gets no unchecked fast path.
func (m *checkedMem) FindByte(addr uint64, c byte, limit int) (int, bool, error) {
	for i := 0; i < limit; i++ {
		b, err := m.Load8(addr + uint64(i))
		if err != nil {
			return i, false, err
		}
		if b == c {
			return i, true, nil
		}
	}
	return limit, false, nil
}

func (m *checkedMem) MemMove(dst, src uint64, n int) error {
	if err := m.check(src, n, false); err != nil {
		return err
	}
	if err := m.check(dst, n, true); err != nil {
		return err
	}
	return m.rt.base.Mem().MemMove(dst, src, n)
}
