package policies

import (
	"sort"

	"diehard/internal/heap"
)

// objTable tracks live object extents for the access-checking runtimes
// (CCured-like and failure-oblivious). It corresponds to the metadata a
// safe-C compiler maintains alongside each pointer; it lives outside the
// simulated heap, as the real systems' metadata effectively does.
type objTable struct {
	starts []heap.Ptr // sorted
	sizes  map[heap.Ptr]int
}

func newObjTable() *objTable {
	return &objTable{sizes: make(map[heap.Ptr]int)}
}

func (t *objTable) add(start heap.Ptr, size int) {
	i := sort.Search(len(t.starts), func(i int) bool { return t.starts[i] >= start })
	t.starts = append(t.starts, 0)
	copy(t.starts[i+1:], t.starts[i:])
	t.starts[i] = start
	t.sizes[start] = size
}

func (t *objTable) remove(start heap.Ptr) bool {
	if _, ok := t.sizes[start]; !ok {
		return false
	}
	delete(t.sizes, start)
	i := sort.Search(len(t.starts), func(i int) bool { return t.starts[i] >= start })
	t.starts = append(t.starts[:i], t.starts[i+1:]...)
	return true
}

// find resolves addr to the live object containing it.
func (t *objTable) find(addr heap.Ptr) (start heap.Ptr, size int, ok bool) {
	i := sort.Search(len(t.starts), func(i int) bool { return t.starts[i] > addr })
	if i == 0 {
		return 0, 0, false
	}
	start = t.starts[i-1]
	size = t.sizes[start]
	if addr < start+uint64(size) {
		return start, size, true
	}
	return 0, 0, false
}

// contains reports whether the byte range [addr, addr+n) lies entirely
// within one live object.
func (t *objTable) contains(addr heap.Ptr, n int) bool {
	start, size, ok := t.find(addr)
	return ok && addr+uint64(n) <= start+uint64(size)
}
