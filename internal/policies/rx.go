package policies

import (
	"diehard/internal/heap"
	"diehard/internal/leaalloc"
	"diehard/internal/vmem"
)

// RxOptions are the allergen-avoiding environment changes Rx applies to
// the allocator when re-executing after a crash (Qin et al., SOSP 2005):
// padding object requests, zero-filling buffers, delaying frees, and
// ignoring double frees.
type RxOptions struct {
	Pad              int  // extra bytes added to every request
	ZeroFill         bool // zero newly allocated buffers
	DeferFrees       int  // hold this many frees before releasing
	IgnoreDoubleFree bool // drop frees of already-freed pointers
}

// RxAlloc wraps a standard allocator with RxOptions applied.
type RxAlloc struct {
	base  *leaalloc.Heap
	opts  RxOptions
	freed map[heap.Ptr]bool
	queue []heap.Ptr
	stats heap.Stats
}

var _ heap.Allocator = (*RxAlloc)(nil)

// NewRxAlloc creates a standard heap with Rx's environment changes.
func NewRxAlloc(heapSize int, opts RxOptions) (*RxAlloc, error) {
	base, err := leaalloc.New(leaalloc.Options{HeapSize: heapSize})
	if err != nil {
		return nil, err
	}
	return &RxAlloc{base: base, opts: opts, freed: make(map[heap.Ptr]bool)}, nil
}

// Malloc allocates with padding and optional zero fill.
func (r *RxAlloc) Malloc(size int) (heap.Ptr, error) {
	p, err := r.base.Malloc(size + r.opts.Pad)
	if err != nil {
		r.stats.FailedMallocs++
		return heap.Null, err
	}
	if r.opts.ZeroFill {
		if err := r.base.Mem().Memset(p, 0, size+r.opts.Pad); err != nil {
			return heap.Null, err
		}
	}
	delete(r.freed, p)
	heap.CountMalloc(&r.stats, size, size+r.opts.Pad)
	return p, nil
}

// Free applies double-free suppression and free deferral before handing
// the pointer to the underlying allocator.
func (r *RxAlloc) Free(p heap.Ptr) error {
	if p == heap.Null {
		return nil
	}
	if r.opts.IgnoreDoubleFree {
		if r.freed[p] {
			r.stats.IgnoredFrees++
			return nil
		}
		r.freed[p] = true
	}
	heap.CountFree(&r.stats, 1)
	if r.opts.DeferFrees > 0 {
		r.queue = append(r.queue, p)
		if len(r.queue) <= r.opts.DeferFrees {
			return nil
		}
		p = r.queue[0]
		r.queue = r.queue[1:]
	}
	return r.base.Free(p)
}

// Flush releases all deferred frees. RunRx calls it when the program
// completes: deferral delays frees, it does not cancel them, so a crash
// hiding in the queue still surfaces.
func (r *RxAlloc) Flush() error {
	for _, p := range r.queue {
		if err := r.base.Free(p); err != nil {
			r.queue = nil
			return err
		}
	}
	r.queue = nil
	return nil
}

// SizeOf reports the underlying chunk capacity.
func (r *RxAlloc) SizeOf(p heap.Ptr) (int, bool) { return r.base.SizeOf(p) }

// Mem returns the simulated address space.
func (r *RxAlloc) Mem() *vmem.Space { return r.base.Mem() }

// Stats returns the runtime's counters.
func (r *RxAlloc) Stats() *heap.Stats { return &r.stats }

// Name identifies the runtime in experiment reports.
func (r *RxAlloc) Name() string { return "rx" }

// RxEscalation is the default sequence of increasingly aggressive
// environment changes Rx tries across re-executions.
var RxEscalation = []RxOptions{
	{}, // first run: unmodified environment
	{IgnoreDoubleFree: true, ZeroFill: true},
	{IgnoreDoubleFree: true, ZeroFill: true, Pad: 32},
	{IgnoreDoubleFree: true, ZeroFill: true, Pad: 128, DeferFrees: 256},
}

// RxResult reports how an Rx-supervised execution ended.
type RxResult struct {
	// Attempts is the number of executions performed (1 = no recovery
	// was needed).
	Attempts int
	// Err is the error of the final attempt; nil means the program
	// completed.
	Err error
	// Recovered reports whether a crash was survived via rollback and
	// re-execution.
	Recovered bool
}

// RunRx executes a deterministic program under Rx supervision:
// checkpoint (trivially, the program's initial state), run, and on a
// crash roll back and re-execute with escalating environment changes.
// Crashes are the only failures Rx can see; silently wrong executions
// complete "successfully", which is exactly the unsoundness §8
// attributes to it.
func RunRx(heapSize int, prog func(a heap.Allocator) error) RxResult {
	res := RxResult{}
	for _, opts := range RxEscalation {
		res.Attempts++
		alloc, err := NewRxAlloc(heapSize, opts)
		if err != nil {
			res.Err = err
			return res
		}
		err = prog(alloc)
		if err == nil {
			err = alloc.Flush() // deferred frees still happen eventually
		}
		res.Err = err
		if err == nil {
			res.Recovered = res.Attempts > 1
			return res
		}
		if !heap.IsCrash(err) {
			// Not a crash: Rx has nothing to roll back from.
			return res
		}
	}
	return res
}
