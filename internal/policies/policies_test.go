package policies

import (
	"errors"
	"testing"

	"diehard/internal/heap"
	"diehard/internal/libc"
)

const testHeapSize = 4 << 20

// --- FailStop (CCured-like) ---

func TestFailStopNormalExecution(t *testing.T) {
	f, err := NewFailStop(testHeapSize)
	if err != nil {
		t.Fatal(err)
	}
	m := f.Memory()
	p, err := f.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Store64(p, 123); err != nil {
		t.Fatal(err)
	}
	v, err := m.Load64(p)
	if err != nil || v != 123 {
		t.Fatalf("round trip: %d, %v", v, err)
	}
}

func TestFailStopAbortsOnOverflow(t *testing.T) {
	f, _ := NewFailStop(testHeapSize)
	m := f.Memory()
	p, _ := f.Malloc(16)
	err := m.Store64(p+16, 1)
	if !heap.IsAbort(err) {
		t.Fatalf("overflow write returned %v, want abort", err)
	}
	// Write that straddles the boundary also aborts.
	err = m.Store64(p+12, 1)
	if !heap.IsAbort(err) {
		t.Fatalf("straddling write returned %v, want abort", err)
	}
}

func TestFailStopAbortsOnUninitializedRead(t *testing.T) {
	f, _ := NewFailStop(testHeapSize)
	m := f.Memory()
	p, _ := f.Malloc(64)
	if _, err := m.Load64(p); !heap.IsAbort(err) {
		t.Fatal("read of uninitialized memory must abort")
	}
	if err := m.Store64(p, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Load64(p); err != nil {
		t.Fatalf("initialized read failed: %v", err)
	}
	// Partially initialized: reading the uninitialized tail aborts.
	if _, err := m.Load64(p + 4); !heap.IsAbort(err) {
		t.Fatal("partially uninitialized read must abort")
	}
}

func TestFailStopToleratesBadFrees(t *testing.T) {
	f, _ := NewFailStop(testHeapSize)
	m := f.Memory()
	p, _ := f.Malloc(32)
	if err := m.Store64(p, 9); err != nil {
		t.Fatal(err)
	}
	if err := f.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := f.Free(p); err != nil { // double free
		t.Fatal(err)
	}
	if err := f.Free(0xdeadbeef); err != nil { // invalid free
		t.Fatal(err)
	}
	// Dangling access still sees the object (GC semantics).
	v, err := m.Load64(p)
	if err != nil || v != 9 {
		t.Fatalf("dangling read under GC base: %d, %v", v, err)
	}
}

func TestFailStopWildRead(t *testing.T) {
	f, _ := NewFailStop(testHeapSize)
	if _, err := f.Memory().Load8(0x42424242); !heap.IsAbort(err) {
		t.Fatal("wild read must abort")
	}
}

// --- FailOblivious ---

func TestFailObliviousNormalExecution(t *testing.T) {
	f, err := NewFailOblivious(testHeapSize)
	if err != nil {
		t.Fatal(err)
	}
	m := f.Memory()
	p, _ := f.Malloc(64)
	if err := m.Store64(p, 55); err != nil {
		t.Fatal(err)
	}
	v, err := m.Load64(p)
	if err != nil || v != 55 {
		t.Fatalf("round trip: %d, %v", v, err)
	}
}

func TestFailObliviousDropsIllegalWrites(t *testing.T) {
	f, _ := NewFailOblivious(testHeapSize)
	m := f.Memory()
	a, _ := f.Malloc(16)
	b, _ := f.Malloc(16)
	if err := m.Store64(b, 0x600d); err != nil {
		t.Fatal(err)
	}
	// Overflow from a toward b: dropped, b intact, execution continues.
	if err := m.Store64(a+16, 0xbad); err != nil {
		t.Fatalf("failure-oblivious write must not fail: %v", err)
	}
	if f.DroppedWrites == 0 {
		t.Fatal("illegal write was not counted as dropped")
	}
	v, _ := m.Load64(b)
	if v != 0x600d {
		t.Fatalf("neighbor corrupted despite dropped write: %#x", v)
	}
}

func TestFailObliviousManufacturesReads(t *testing.T) {
	f, _ := NewFailOblivious(testHeapSize)
	m := f.Memory()
	p, _ := f.Malloc(16)
	v, err := m.Load64(p + 100) // far out of bounds
	if err != nil {
		t.Fatalf("failure-oblivious read must not fail: %v", err)
	}
	if v > 7 {
		t.Fatalf("manufactured value %d outside documented cycle", v)
	}
	if f.ManufacturedReads == 0 {
		t.Fatal("illegal read not counted")
	}
	// Manufactured values vary, breaking comparison loops.
	v2, _ := m.Load64(p + 100)
	if v == v2 {
		v3, _ := m.Load64(p + 100)
		if v2 == v3 {
			t.Fatal("manufactured values do not vary")
		}
	}
}

func TestFailObliviousDanglingBecomesOblivious(t *testing.T) {
	f, _ := NewFailOblivious(testHeapSize)
	m := f.Memory()
	p, _ := f.Malloc(32)
	if err := m.Store64(p, 1); err != nil {
		t.Fatal(err)
	}
	if err := f.Free(p); err != nil {
		t.Fatal(err)
	}
	// After free the object is out of the bounds table: writes dropped,
	// reads manufactured; execution continues obliviously.
	if err := m.Store64(p, 2); err != nil {
		t.Fatalf("dangling write must be dropped, not fail: %v", err)
	}
	if _, err := m.Load64(p); err != nil {
		t.Fatalf("dangling read must be manufactured, not fail: %v", err)
	}
}

// --- Rx ---

func TestRxRecoversFromMetadataOverwrite(t *testing.T) {
	// A small overflow smashes the next chunk's boundary tag; the first
	// run crashes, re-execution with padded requests absorbs the
	// overflow.
	prog := func(a heap.Allocator) error {
		m := a.Mem()
		p, err := a.Malloc(24)
		if err != nil {
			return err
		}
		q, err := a.Malloc(24)
		if err != nil {
			return err
		}
		if err := m.Memset(p, 0x41, 32); err != nil { // 8-byte overflow
			return err
		}
		if err := a.Free(q); err != nil {
			return err
		}
		_, err = a.Malloc(24)
		return err
	}
	res := RunRx(testHeapSize, prog)
	if res.Err != nil {
		t.Fatalf("Rx failed to recover: %+v", res.Err)
	}
	if !res.Recovered || res.Attempts < 2 {
		t.Fatalf("expected recovery after rollback, got %+v", res)
	}
}

func TestRxRecoversFromDoubleFree(t *testing.T) {
	prog := func(a heap.Allocator) error {
		p, err := a.Malloc(64)
		if err != nil {
			return err
		}
		if _, err := a.Malloc(64); err != nil { // barrier
			return err
		}
		if err := a.Free(p); err != nil {
			return err
		}
		if err := a.Free(p); err != nil { // double free
			return err
		}
		if _, err := a.Malloc(64); err != nil {
			return err
		}
		_, err = a.Malloc(64)
		return err
	}
	res := RunRx(testHeapSize, prog)
	if res.Err != nil {
		t.Fatalf("Rx failed to recover from double free: %v", res.Err)
	}
	if !res.Recovered {
		t.Fatalf("expected recovery, got %+v", res)
	}
}

func TestRxCannotRecoverFromHugeOverflow(t *testing.T) {
	// An overflow far larger than any padding level destroys neighbor
	// data. The corruption is detected by the program itself as wrong
	// output — not a crash — so Rx has nothing to roll back from:
	// undefined, as Table 1 records.
	wrongOutput := errors.New("wrong output")
	prog := func(a heap.Allocator) error {
		m := a.Mem()
		p, err := a.Malloc(24)
		if err != nil {
			return err
		}
		q, err := a.Malloc(24)
		if err != nil {
			return err
		}
		if err := m.Store64(q, 0x5e471e1); err != nil {
			return err
		}
		if err := m.Memset(p, 0x41, 600); err != nil { // 576-byte overflow
			return err
		}
		v, err := m.Load64(q)
		if err != nil {
			return err
		}
		if v != 0x5e471e1 {
			return wrongOutput
		}
		if err := a.Free(q); err != nil {
			return err
		}
		_, err = a.Malloc(24)
		return err
	}
	res := RunRx(testHeapSize, prog)
	if res.Err == nil {
		t.Fatal("huge overflow unexpectedly recovered")
	}
	if res.Recovered {
		t.Fatalf("Rx claimed recovery from silent corruption: %+v", res)
	}
}

func TestRxInvalidFreePersistsAcrossRetries(t *testing.T) {
	// Rx's environment changes do not include dropping invalid frees;
	// the crash recurs on every re-execution until Rx gives up.
	prog := func(a heap.Allocator) error {
		p, err := a.Malloc(64)
		if err != nil {
			return err
		}
		return a.Free(p + 4) // interior pointer
	}
	res := RunRx(testHeapSize, prog)
	if res.Err == nil || !heap.IsCrash(res.Err) {
		t.Fatalf("invalid free should keep crashing: %+v", res)
	}
	if res.Attempts != len(RxEscalation) {
		t.Fatalf("expected all %d attempts, got %d", len(RxEscalation), res.Attempts)
	}
}

func TestRxBlindToSilentCorruption(t *testing.T) {
	// Rx only reacts to crashes: a run that completes with wrong output
	// is invisible to it (§8's unsoundness).
	ran := 0
	prog := func(a heap.Allocator) error {
		ran++
		p, _ := a.Malloc(64)
		_ = a.Mem().Store64(p, 1)
		return nil // silently wrong result, no crash
	}
	res := RunRx(testHeapSize, prog)
	if res.Err != nil || res.Attempts != 1 || ran != 1 {
		t.Fatalf("Rx should run once and accept: %+v ran=%d", res, ran)
	}
}

func TestRxAllocDeferredFrees(t *testing.T) {
	a, err := NewRxAlloc(testHeapSize, RxOptions{DeferFrees: 4})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := a.Malloc(64)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	// Deferred: the chunk is not yet reusable, so a fresh malloc gets
	// different memory.
	q, _ := a.Malloc(64)
	if q == p {
		t.Fatal("deferred free released the chunk immediately")
	}
}

func TestRxAllocZeroFill(t *testing.T) {
	a, err := NewRxAlloc(testHeapSize, RxOptions{ZeroFill: true})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := a.Malloc(64)
	if err := a.Mem().Memset(p, 0xFF, 64); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	q, _ := a.Malloc(64)
	v, _ := a.Mem().Load64(q)
	if v != 0 {
		t.Fatalf("zero-fill missing: %#x", v)
	}
}

// --- objTable ---

func TestObjTable(t *testing.T) {
	tab := newObjTable()
	tab.add(100, 50)
	tab.add(300, 10)
	tab.add(200, 20)
	if s, sz, ok := tab.find(120); !ok || s != 100 || sz != 50 {
		t.Fatalf("find(120) = %d,%d,%v", s, sz, ok)
	}
	if _, _, ok := tab.find(150); ok {
		t.Fatal("find(150) should miss")
	}
	if _, _, ok := tab.find(99); ok {
		t.Fatal("find(99) should miss")
	}
	if !tab.contains(200, 20) || tab.contains(200, 21) {
		t.Fatal("contains boundary wrong")
	}
	if !tab.remove(200) {
		t.Fatal("remove failed")
	}
	if tab.remove(200) {
		t.Fatal("second remove should fail")
	}
	if _, _, ok := tab.find(205); ok {
		t.Fatal("removed object still found")
	}
	if s, _, ok := tab.find(305); !ok || s != 300 {
		t.Fatal("unrelated object lost after removal")
	}
}

func TestLibcStringOpsPreservePolicySemantics(t *testing.T) {
	// The libc string functions must keep byte-at-a-time semantics on
	// policy memories: their per-access, object-granular checks are the
	// behavior under study, and page-sized bulk chunks would read or
	// write past object ends that a C byte loop never touches.
	f, err := NewFailStop(testHeapSize)
	if err != nil {
		t.Fatal(err)
	}
	mem := f.Memory()
	newStr := func(s string) heap.Ptr {
		p, err := f.Malloc(len(s) + 1)
		if err != nil {
			t.Fatal(err)
		}
		if err := libc.WriteString(mem, p, s); err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Strcmp of equal strings exactly filling their objects must not
	// scan past the terminator (a bulk chunk would abort on bounds).
	a, b := newStr("hello"), newStr("hello")
	if cmp, err := libc.Strcmp(mem, a, b); err != nil || cmp != 0 {
		t.Fatalf("Strcmp under fail-stop: %d, %v", cmp, err)
	}
	// Strchr for an absent character must stop at the NUL, not abort
	// scanning beyond the object.
	if at, err := libc.Strchr(mem, a, 'q'); err != nil || at != heap.Null {
		t.Fatalf("Strchr under fail-stop: %#x, %v", at, err)
	}
	// Strlen/Strcpy within bounds work through the checked memory.
	dst, err := f.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := libc.Strcpy(mem, dst, a); err != nil {
		t.Fatalf("in-bounds Strcpy under fail-stop: %v", err)
	}
	if got, err := libc.ReadString(mem, dst, 16); err != nil || got != "hello" {
		t.Fatalf("ReadString under fail-stop: %q, %v", got, err)
	}

	// Failure-oblivious: an overflowing Strcpy must write the in-bounds
	// prefix and drop only the out-of-bounds tail, byte by byte — not
	// drop the whole copy as a single bulk write would.
	fo, err := NewFailOblivious(testHeapSize)
	if err != nil {
		t.Fatal(err)
	}
	fmem := fo.Memory()
	src, err := fo.Malloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := libc.WriteString(fmem, src, "0123456789abcdef"); err != nil {
		t.Fatal(err)
	}
	small, err := fo.Malloc(8)
	if err != nil {
		t.Fatal(err)
	}
	dropsBefore := fo.DroppedWrites
	if err := libc.Strcpy(fmem, small, src); err != nil {
		t.Fatalf("overflowing Strcpy under failure-oblivious: %v", err)
	}
	if fo.DroppedWrites == dropsBefore {
		t.Fatal("overflow tail was not dropped")
	}
	prefix := make([]byte, 8)
	if err := fmem.ReadBytes(small, prefix); err != nil {
		t.Fatal(err)
	}
	if string(prefix) != "01234567" {
		t.Fatalf("in-bounds prefix not written byte-wise: %q", prefix)
	}
}
