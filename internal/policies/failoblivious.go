package policies

import (
	"diehard/internal/heap"
	"diehard/internal/leaalloc"
	"diehard/internal/vmem"
)

// FailOblivious models failure-oblivious computing (Rinard et al.): a
// bounds-checking compiler that, instead of aborting on a violation,
// silently drops illegal writes and manufactures values for illegal
// reads so the program keeps running. Execution never stops on a memory
// error, but nothing guarantees the computation is still meaningful —
// the "undefined" entries in its Table 1 column.
//
// Deallocation goes to the standard allocator unchecked; after a free
// the object leaves the bounds table, so dangling accesses become
// "illegal" and are dropped/manufactured rather than served.
type FailOblivious struct {
	base    *leaalloc.Heap
	objects *objTable
	stats   heap.Stats

	// DroppedWrites and ManufacturedReads count the failure-oblivious
	// interventions, observable for experiments.
	DroppedWrites     uint64
	ManufacturedReads uint64

	// manufactureCounter cycles small integers for manufactured reads,
	// following the paper's strategy of returning a varied sequence so
	// loops that compare against a single value terminate.
	manufactureCounter uint64
}

var _ heap.Allocator = (*FailOblivious)(nil)

// NewFailOblivious creates a failure-oblivious runtime over a standard
// Lea-style heap.
func NewFailOblivious(heapSize int) (*FailOblivious, error) {
	base, err := leaalloc.New(leaalloc.Options{HeapSize: heapSize})
	if err != nil {
		return nil, err
	}
	return &FailOblivious{base: base, objects: newObjTable()}, nil
}

// Malloc allocates from the standard heap and registers bounds.
func (f *FailOblivious) Malloc(size int) (heap.Ptr, error) {
	f.stats.WorkUnits += heap.WorkCheck
	p, err := f.base.Malloc(size)
	if err != nil {
		f.stats.FailedMallocs++
		return heap.Null, err
	}
	if size == 0 {
		size = 1
	}
	f.objects.add(p, size)
	heap.CountMalloc(&f.stats, size, size)
	return p, nil
}

// Free removes the bounds entry and forwards to the standard allocator;
// invalid and double frees are exactly as undefined as they are under
// GNU libc.
func (f *FailOblivious) Free(p heap.Ptr) error {
	f.stats.WorkUnits += heap.WorkCheck
	if f.objects.remove(p) {
		heap.CountFree(&f.stats, 1)
	}
	return f.base.Free(p)
}

// SizeOf reports the registered size of a live object.
func (f *FailOblivious) SizeOf(p heap.Ptr) (int, bool) {
	start, size, ok := f.objects.find(p)
	if !ok || start != p {
		return 0, false
	}
	return size, true
}

// Mem returns the underlying simulated address space (unchecked); use
// Memory for application accesses.
func (f *FailOblivious) Mem() *vmem.Space { return f.base.Mem() }

// Stats returns the runtime's counters.
func (f *FailOblivious) Stats() *heap.Stats { return &f.stats }

// Name identifies the runtime in experiment reports.
func (f *FailOblivious) Name() string { return "failure-oblivious" }

// Memory returns the failure-oblivious view of memory.
func (f *FailOblivious) Memory() heap.Memory { return &obliviousMem{rt: f} }

// obliviousMem drops out-of-bounds writes and manufactures values for
// out-of-bounds reads.
type obliviousMem struct {
	rt *FailOblivious
}

var _ heap.Memory = (*obliviousMem)(nil)

func (m *obliviousMem) inBounds(addr heap.Ptr, n int) bool {
	m.rt.stats.WorkUnits += heap.WorkCheck
	return m.rt.objects.contains(addr, n)
}

func (m *obliviousMem) manufacture() uint64 {
	m.rt.ManufacturedReads++
	// Cycle 0,1,2,...,7: varied enough to break value-comparison loops.
	v := m.rt.manufactureCounter & 7
	m.rt.manufactureCounter++
	return v
}

func (m *obliviousMem) Load8(addr uint64) (byte, error) {
	if !m.inBounds(addr, 1) {
		return byte(m.manufacture()), nil
	}
	return m.rt.base.Mem().Load8(addr)
}

func (m *obliviousMem) Store8(addr uint64, v byte) error {
	if !m.inBounds(addr, 1) {
		m.rt.DroppedWrites++
		return nil
	}
	return m.rt.base.Mem().Store8(addr, v)
}

func (m *obliviousMem) Load32(addr uint64) (uint32, error) {
	if !m.inBounds(addr, 4) {
		return uint32(m.manufacture()), nil
	}
	return m.rt.base.Mem().Load32(addr)
}

func (m *obliviousMem) Store32(addr uint64, v uint32) error {
	if !m.inBounds(addr, 4) {
		m.rt.DroppedWrites++
		return nil
	}
	return m.rt.base.Mem().Store32(addr, v)
}

func (m *obliviousMem) Load64(addr uint64) (uint64, error) {
	if !m.inBounds(addr, 8) {
		return m.manufacture(), nil
	}
	return m.rt.base.Mem().Load64(addr)
}

func (m *obliviousMem) Store64(addr uint64, v uint64) error {
	if !m.inBounds(addr, 8) {
		m.rt.DroppedWrites++
		return nil
	}
	return m.rt.base.Mem().Store64(addr, v)
}

func (m *obliviousMem) ReadBytes(addr uint64, b []byte) error {
	if !m.inBounds(addr, len(b)) {
		for i := range b {
			b[i] = byte(m.manufacture())
		}
		return nil
	}
	return m.rt.base.Mem().ReadBytes(addr, b)
}

func (m *obliviousMem) WriteBytes(addr uint64, b []byte) error {
	if !m.inBounds(addr, len(b)) {
		m.rt.DroppedWrites++
		return nil
	}
	return m.rt.base.Mem().WriteBytes(addr, b)
}

func (m *obliviousMem) Memset(addr uint64, v byte, n int) error {
	if !m.inBounds(addr, n) {
		m.rt.DroppedWrites++
		return nil
	}
	return m.rt.base.Mem().Memset(addr, v, n)
}

// FindByte scans byte by byte so out-of-bounds portions of the scan
// manufacture values exactly as a Load8 loop would.
func (m *obliviousMem) FindByte(addr uint64, c byte, limit int) (int, bool, error) {
	for i := 0; i < limit; i++ {
		b, err := m.Load8(addr + uint64(i))
		if err != nil {
			return i, false, err
		}
		if b == c {
			return i, true, nil
		}
	}
	return limit, false, nil
}

func (m *obliviousMem) MemMove(dst, src uint64, n int) error {
	buf := make([]byte, n)
	if err := m.ReadBytes(src, buf); err != nil {
		return err
	}
	return m.WriteBytes(dst, buf)
}
