package detect

import "sort"

// Exterminator-style triage: detection says *that* memory was damaged;
// triage says *which allocation site did it*. One randomized layout
// cannot: an escaped overflow damages whichever slot chance placed after
// the culprit, so per-layout evidence carries candidate sites that are
// partly coincidental. But the true culprit is a property of the
// program, not the layout — its allocation index recurs in the evidence
// of every independently seeded heap that detected the error, while
// coincidental neighbors are re-randomized away. Intersecting candidate
// sites across N layouts therefore isolates the culprit with
// exponentially growing confidence in N.

// TriageResult is the cross-layout adjudication for one error kind.
type TriageResult struct {
	// Kind is the error kind triaged.
	Kind Kind
	// Trials is the number of layout reports examined; Detected how many
	// carried at least one matching-kind evidence record with a culprit
	// candidate.
	Trials   int
	Detected int
	// Votes maps each candidate allocation site to the number of
	// detected layouts whose evidence names it.
	Votes map[int]int
	// Culprit is the localized allocation site: the candidate named by a
	// strict majority of detected layouts (ties broken to the smallest
	// site, so triage is deterministic). -1 when no candidate reaches a
	// majority.
	Culprit int
	// Confidence is Votes[Culprit]/Detected (0 when unresolved).
	Confidence float64
	// OverflowLen is the largest inferred error extent among the
	// evidence that named the culprit: for overflows, the reach past the
	// culprit object's requested end.
	OverflowLen int
}

// Triage intersects evidence of one kind across independently seeded
// layout reports and localizes the culprit allocation site.
func Triage(kind Kind, reports []*Report) *TriageResult {
	res := &TriageResult{Kind: kind, Votes: make(map[int]int), Culprit: -1}
	lengths := make(map[int]int) // site -> max inferred extent
	for _, r := range reports {
		res.Trials++
		sites := make(map[int]bool)
		for _, ev := range r.Evidence {
			if ev.Kind != kind || ev.AllocSite < 0 {
				continue
			}
			sites[ev.AllocSite] = true
			if ev.Length > lengths[ev.AllocSite] {
				lengths[ev.AllocSite] = ev.Length
			}
		}
		if len(sites) == 0 {
			continue
		}
		res.Detected++
		for s := range sites {
			res.Votes[s]++
		}
	}
	if res.Detected == 0 {
		return res
	}
	// Deterministic winner: most votes, smallest site on ties.
	cands := make([]int, 0, len(res.Votes))
	for s := range res.Votes {
		cands = append(cands, s)
	}
	sort.Ints(cands)
	best, bestVotes := -1, 0
	for _, s := range cands {
		if res.Votes[s] > bestVotes {
			best, bestVotes = s, res.Votes[s]
		}
	}
	if 2*bestVotes > res.Detected {
		res.Culprit = best
		res.Confidence = float64(bestVotes) / float64(res.Detected)
		res.OverflowLen = lengths[best]
	}
	return res
}
