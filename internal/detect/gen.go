package detect

// The generation-tagged tier's evidence plumbing (DESIGN.md §15).
//
// The canary engine in detect.go is probabilistic: an error is caught
// when it damages a fingerprint, with the closed-form rates the
// analysis package quotes. The generation tier is the deterministic
// complement for *temporal* errors: the core rejects a stale free
// outright (FreeFat, the remote drain) and reports it through the
// OnStaleFree hook, and the GenMemory view checks the tag on EVERY
// accessor — including the 8-bit and bulk paths that motivated the
// satellite fixes in detect.go — so a use-after-free is evidence at the
// access itself, not a fingerprint found some audits later.
//
// Both feeds land in the same Evidence log with Kind = KindStaleFree /
// KindStaleAccess and Audit = AuditGen, carrying the former owner's
// allocation site when the slot is still tracked. Downstream nothing is
// special-cased: Triage and the streaming Accumulator adjudicate the
// new kinds with the same cross-window majority vote, so the healing
// supervisor (internal/heal) can arm countermeasures against a
// stale-free culprit exactly as it does for overflows — except that
// here a single window's testimony is already deterministic.

import (
	"diehard/internal/heap"
)

// onStaleFree is the core OnStaleFree hook: a generation-checked free
// was rejected. Deduplicated per (address, generation): replaying the
// same dead fat pointer is one program error, while the same address
// dying under a later tag is a fresh one.
func (d *Detector) onStaleFree(p heap.Ptr, gen uint64) {
	k := genKey{addr: p, gen: gen}
	if d.genSeen[k] {
		return
	}
	d.genSeen[k] = true
	site := -1
	slot := 0
	if base, size, _, ok := d.h.SlotAt(p); ok {
		slot = size
		if fr, tracked := d.freed[base]; tracked {
			site = fr.site
		}
	}
	nl, nd := d.neighbors(p)
	d.record(Evidence{
		Kind: KindStaleFree, Audit: AuditGen,
		Addr: p, Span: 0,
		Object: p, ObjectSize: slot,
		AllocSite: site, Length: 0,
		NeighborLive: nl, NeighborDead: nd,
	})
}

// noteStaleAccess records a load or store through a dead fat pointer,
// observed by the GenMemory view. Same dedup key as stale frees: one
// record per dead incarnation.
func (d *Detector) noteStaleAccess(fp heap.FatPtr, addr heap.Ptr, span int) {
	k := genKey{addr: fp.Addr, gen: fp.Gen}
	if d.genSeen[k] {
		return
	}
	d.genSeen[k] = true
	site := -1
	slot := 0
	if base, size, _, ok := d.h.SlotAt(fp.Addr); ok {
		slot = size
		if fr, tracked := d.freed[base]; tracked {
			site = fr.site
		}
	}
	nl, nd := d.neighbors(addr)
	d.record(Evidence{
		Kind: KindStaleAccess, Audit: AuditGen,
		Addr: addr, Span: span,
		Object: fp.Addr, ObjectSize: slot,
		AllocSite: site, Length: span,
		NeighborLive: nl, NeighborDead: nd,
	})
}

// noteDanglingStore is the checked view's store-path test: a store
// whose destination lies in a tracked freed slot is a dangling write,
// recorded at the store (AuditStore) instead of waiting for the reuse
// audit to find the fingerprint. Deduplicated per address until the
// slot changes hands (forgetUninit clears the entry on reuse).
func (d *Detector) noteDanglingStore(addr heap.Ptr, span int) {
	if d.stored[addr] {
		return
	}
	base, _, live, ok := d.h.SlotAt(addr)
	if !ok || live {
		return // live object or foreign memory: not a dangling write
	}
	fr, tracked := d.freed[base]
	if !tracked {
		return // virgin space: the HeapCheckFull sweep owns it
	}
	d.stored[addr] = true
	nl, nd := d.neighbors(addr)
	d.record(Evidence{
		Kind: KindDangling, Audit: AuditStore,
		Addr: addr, Span: span,
		Object: base, ObjectSize: fr.slot,
		AllocSite: fr.site, Length: span,
		NeighborLive: nl, NeighborDead: nd,
	})
}

// rangeIsCanary reports whether [addr, addr+n) is entirely intact
// canary — the bulk-path analog of the word compares in Load32/Load64.
// Unlike audit it leaves the audit counter alone: it runs on ordinary
// reads, not on the detector's own scan schedule.
func (d *Detector) rangeIsCanary(addr heap.Ptr, n int) bool {
	if cap(d.buf) < n {
		d.buf = make([]byte, n)
	}
	b := d.buf[:n]
	if err := d.space.ReadBytes(addr, b); err != nil {
		return false
	}
	for i := range b {
		if b[i] != d.pat[(addr+heap.Ptr(i))&7] {
			return false
		}
	}
	return true
}

// GenMemory is the generation-checked memory view over a tagged
// detection heap: every accessor — word, byte, and bulk alike, the full
// heap.Memory surface — first verifies that the fat pointer's tag still
// matches its slot, records KindStaleAccess evidence when it does not,
// and then forwards to the canary-checked view, so the probabilistic
// checks keep running underneath the deterministic one.
// Tolerate-and-report, like the rest of the engine: the access proceeds
// (the memory is still mapped), the evidence is the product.
type GenMemory struct {
	h   *Heap
	mem heap.Memory
}

// GenMemory returns the generation-checked view. The heap must have
// been built with core.Options.GenTags (CheckGen reports every access
// stale otherwise, which is loud enough to catch the misconfiguration
// in any test).
func (h *Heap) GenMemory() *GenMemory {
	return &GenMemory{h: h, mem: h.Memory()}
}

// check verifies fp against its slot and records a stale access of span
// bytes at fp.Addr+off when the tag is dead.
func (g *GenMemory) check(fp heap.FatPtr, off uint64, span int) {
	if !g.h.CheckGen(fp) {
		g.h.det.noteStaleAccess(fp, fp.Addr+off, span)
	}
}

func (g *GenMemory) Load8(fp heap.FatPtr, off uint64) (byte, error) {
	g.check(fp, off, 1)
	return g.mem.Load8(fp.Addr + off)
}

func (g *GenMemory) Store8(fp heap.FatPtr, off uint64, v byte) error {
	g.check(fp, off, 1)
	return g.mem.Store8(fp.Addr+off, v)
}

func (g *GenMemory) Load32(fp heap.FatPtr, off uint64) (uint32, error) {
	g.check(fp, off, 4)
	return g.mem.Load32(fp.Addr + off)
}

func (g *GenMemory) Store32(fp heap.FatPtr, off uint64, v uint32) error {
	g.check(fp, off, 4)
	return g.mem.Store32(fp.Addr+off, v)
}

func (g *GenMemory) Load64(fp heap.FatPtr, off uint64) (uint64, error) {
	g.check(fp, off, 8)
	return g.mem.Load64(fp.Addr + off)
}

func (g *GenMemory) Store64(fp heap.FatPtr, off uint64, v uint64) error {
	g.check(fp, off, 8)
	return g.mem.Store64(fp.Addr+off, v)
}

func (g *GenMemory) ReadBytes(fp heap.FatPtr, off uint64, b []byte) error {
	g.check(fp, off, len(b))
	return g.mem.ReadBytes(fp.Addr+off, b)
}

func (g *GenMemory) WriteBytes(fp heap.FatPtr, off uint64, b []byte) error {
	g.check(fp, off, len(b))
	return g.mem.WriteBytes(fp.Addr+off, b)
}

func (g *GenMemory) Memset(fp heap.FatPtr, off uint64, v byte, n int) error {
	g.check(fp, off, n)
	return g.mem.Memset(fp.Addr+off, v, n)
}

// MemMove moves n bytes between two offsets of the same object — both
// ends are covered by fp's single validity check.
func (g *GenMemory) MemMove(fp heap.FatPtr, dstOff, srcOff uint64, n int) error {
	g.check(fp, srcOff, n)
	return g.mem.MemMove(fp.Addr+dstOff, fp.Addr+srcOff, n)
}

func (g *GenMemory) FindByte(fp heap.FatPtr, off uint64, c byte, limit int) (int, bool, error) {
	g.check(fp, off, limit)
	return g.mem.FindByte(fp.Addr+off, c, limit)
}
