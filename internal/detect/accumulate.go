package detect

import (
	"sort"
	"sync"
)

// Accumulator is the streaming, goroutine-safe counterpart of Triage:
// where Triage adjudicates a fixed slice of per-layout reports after the
// fact, an Accumulator ingests evidence *windows* as a long-running
// service produces them — one window per heap-check barrier interval,
// restart cycle, or campaign replica — and answers "which allocation
// site is the culprit, and with what confidence?" at any moment. The
// statistics are identical: within one window a site counts once per
// kind no matter how many records name it (a window is one randomized
// layout's testimony, not one vote per damaged byte), a window counts as
// detected for a kind when any record of that kind carries a candidate,
// and Verdict applies Triage's strict-majority rule with the same
// smallest-site tie-break — so a culprit that merely recurs because the
// layout never changed cannot outvote the cross-layout consensus.
//
// The supervisor (internal/heal) holds one Accumulator across restart
// cycles and countermeasure applications; campaign replicas each fill a
// private Accumulator and Merge them, which is order-independent (sums
// and maxes), so replicated verdicts are byte-identical at any worker
// count.
type Accumulator struct {
	mu    sync.Mutex
	kinds map[Kind]*kindAcc
}

// kindAcc is one error kind's running tally.
type kindAcc struct {
	windows int         // windows that carried a candidate of this kind
	votes   map[int]int // site -> windows naming it
	maxLen  map[int]int // site -> max inferred extent
}

// Observe ingests one evidence window (sites mod > 0 fold allocation
// indices onto a cyclic site space — the identity that survives restart
// cycles when every cycle replays the same allocation program). Records
// without a candidate site are skipped; empty windows (no candidates of
// a kind) leave that kind's detected count untouched, exactly as an
// evidence-free report does in Triage.
func (a *Accumulator) Observe(evs []Evidence, mod int) {
	type agg struct {
		seen   map[int]bool
		maxLen map[int]int
	}
	local := map[Kind]*agg{}
	for _, ev := range evs {
		if ev.AllocSite < 0 {
			continue
		}
		site := ev.AllocSite
		if mod > 0 {
			site %= mod
		}
		k := local[ev.Kind]
		if k == nil {
			k = &agg{seen: map[int]bool{}, maxLen: map[int]int{}}
			local[ev.Kind] = k
		}
		k.seen[site] = true
		if ev.Length > k.maxLen[site] {
			k.maxLen[site] = ev.Length
		}
	}
	if len(local) == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for kind, k := range local {
		ka := a.kind(kind)
		ka.windows++
		for site := range k.seen {
			ka.votes[site]++
			if k.maxLen[site] > ka.maxLen[site] {
				ka.maxLen[site] = k.maxLen[site]
			}
		}
	}
}

// kind returns (creating if needed) the tally for one kind. Caller holds
// the mutex.
func (a *Accumulator) kind(kind Kind) *kindAcc {
	if a.kinds == nil {
		a.kinds = map[Kind]*kindAcc{}
	}
	ka := a.kinds[kind]
	if ka == nil {
		ka = &kindAcc{votes: map[int]int{}, maxLen: map[int]int{}}
		a.kinds[kind] = ka
	}
	return ka
}

// Merge folds another accumulator's tallies into this one. Sums and
// maxes commute, so merging replicas in any order yields the same state.
func (a *Accumulator) Merge(b *Accumulator) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock()
	defer a.mu.Unlock()
	for kind, kb := range b.kinds {
		ka := a.kind(kind)
		ka.windows += kb.windows
		for site, v := range kb.votes {
			ka.votes[site] += v
		}
		for site, l := range kb.maxLen {
			if l > ka.maxLen[site] {
				ka.maxLen[site] = l
			}
		}
	}
}

// Verdict adjudicates one kind with Triage's rule: the culprit is the
// site named by a strict majority of detected windows AND by at least
// bar windows in absolute terms (the supervisor's confidence bar —
// majority alone would convict on a single window). Ties break to the
// smallest site. The result reuses TriageResult: Trials/Detected are
// both the detected-window count (an accumulator never sees evidence-
// free windows), Votes is a copy, and OverflowLen is the largest extent
// among the winner's evidence — the pad size an overflow countermeasure
// needs.
func (a *Accumulator) Verdict(kind Kind, bar int) *TriageResult {
	a.mu.Lock()
	defer a.mu.Unlock()
	res := &TriageResult{Kind: kind, Votes: map[int]int{}, Culprit: -1}
	ka := a.kinds[kind]
	if ka == nil || ka.windows == 0 {
		return res
	}
	res.Trials = ka.windows
	res.Detected = ka.windows
	cands := make([]int, 0, len(ka.votes))
	for site, v := range ka.votes {
		res.Votes[site] = v
		cands = append(cands, site)
	}
	sort.Ints(cands)
	best, bestVotes := -1, 0
	for _, s := range cands {
		if ka.votes[s] > bestVotes {
			best, bestVotes = s, ka.votes[s]
		}
	}
	if bestVotes >= bar && 2*bestVotes > res.Detected {
		res.Culprit = best
		res.Confidence = float64(bestVotes) / float64(res.Detected)
		res.OverflowLen = ka.maxLen[best]
	}
	return res
}

// Windows reports how many detected windows a kind has accumulated.
func (a *Accumulator) Windows(kind Kind) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	if ka := a.kinds[kind]; ka != nil {
		return ka.windows
	}
	return 0
}
