// Package detect turns DieHard's randomized heap from an error
// *tolerator* into a probabilistic error *detector*, in the lineage the
// paper sketches in §9 and that DieFast/Exterminator realized: because
// objects are placed randomly in a partially empty heap, filling all
// free space with a known canary pattern makes illegal writes leave
// fingerprints that legal executions cannot.
//
// The engine layers on internal/core through the allocator observation
// hooks (core.Options.OnAlloc/OnFree) and the lazy page filler:
//
//   - every fresh heap page is instantiated pre-filled with a seeded
//     8-byte canary pattern, aligned to absolute addresses, so all
//     never-allocated space is canary;
//   - Free audits the freed object's slack — the bytes between the
//     requested size and the size-class slot size (for large objects,
//     the trailing-page slack of the guarded mapping, audited before
//     the unmap destroys it), canary since allocation — and classifies
//     damage there as a buffer overflow by that object (the culprit
//     allocation site is exact);
//   - Free then refills the whole slot with canary and tracks it, so a
//     write through a stale pointer lands on canary;
//   - Malloc audits a reused tracked slot before the program can touch
//     it, classifying damage as a dangling write (culprit: the former
//     owner's allocation site) or, when the damage starts at the slot
//     base and the adjacent preceding slot is live, as a candidate
//     overflow by that neighbor;
//   - HeapCheck is the barrier audit over every tracked freed slot and
//     every live object's slack; HeapCheckFull additionally sweeps all
//     free slots of every size class through the class bitmaps
//     (core.FreeSlots), catching strays in virgin space at the price of
//     instantiating their pages;
//   - the checked Memory view audits 32/64-bit loads: a word that still
//     holds the canary inside a live object's requested bytes is an
//     uninitialized read (false-positive probability 2^-32 / 2^-64 per
//     load, the closed-form side of Theorem 3's detection story).
//
// Every finding is an Evidence record: page and offset of the first
// damaged byte, the damaged span, the owning slot, the nearest live and
// free neighbor slots resolved through the core heap's O(1) page index,
// and a culprit allocation-site candidate. Detection is probabilistic
// exactly as the paper's masking guarantees are: an overflow that lands
// only on live neighbors leaves no canary damage, with probability
// fullness^O per Theorem 1's complement (analysis.CanaryOverflowDetectProb).
//
// Triage (triage.go) is the cross-run half: N independently seeded
// heaps run the same deterministic program, and the culprit allocation
// site — a layout-invariant property — is the site whose evidence
// survives intersection across the randomized layouts.
//
// The engine is sequential: audits and canary refills are not
// synchronized with concurrent mallocs, so detection heaps reject
// core.Options.Concurrent. Campaigns parallelize across heaps
// (exps.RunDetectionTable), never within one.
package detect

import (
	"fmt"
	"sort"

	"diehard/internal/core"
	"diehard/internal/heap"
	"diehard/internal/obs"
	"diehard/internal/vmem"
)

// CanaryBytes is the width of the repeating canary pattern. Audited
// slack regions are at least this wide whenever the slot leaves room,
// and the acceptance experiments quote detection rates "with 8 canary
// bytes".
const CanaryBytes = 8

// Kind classifies the memory error an Evidence record witnesses.
type Kind string

const (
	// KindOverflow is a write past an object's requested size.
	KindOverflow Kind = "buffer overflow"
	// KindDangling is a write through a pointer to freed memory.
	KindDangling Kind = "dangling write"
	// KindUninit is a read of never-written allocated memory.
	KindUninit Kind = "uninitialized read"
	// KindStaleFree is a free of a generation-tagged pointer whose tag no
	// longer matches its slot — a double or dangling free, rejected
	// deterministically by the core (DESIGN.md §15).
	KindStaleFree Kind = "stale free"
	// KindStaleAccess is a load or store through a generation-tagged
	// pointer whose tag no longer matches its slot: a temporal-safety
	// violation caught at the access, deterministically, before (or
	// without) any canary fingerprint.
	KindStaleAccess Kind = "stale access"
)

// AuditPoint names where the detector observed the damage.
type AuditPoint string

const (
	// AuditFree is the slack audit when an object is freed.
	AuditFree AuditPoint = "free"
	// AuditReuse is the full-slot audit when a freed slot is reallocated.
	AuditReuse AuditPoint = "reuse"
	// AuditHeapCheck is a barrier audit (HeapCheck / HeapCheckFull).
	AuditHeapCheck AuditPoint = "heapcheck"
	// AuditLoad is the canary-match check on the checked Memory view.
	AuditLoad AuditPoint = "load"
	// AuditStore is the freed-slot check on the checked Memory view's
	// store paths: a byte stored into a tracked freed slot is a dangling
	// write caught as it happens, not at the next reuse audit.
	AuditStore AuditPoint = "store"
	// AuditGen is the generation-tag check (DESIGN.md §15): the core's
	// stale-free rejection and the generation-checked memory view's
	// per-access validity test both report here.
	AuditGen AuditPoint = "gencheck"
)

// Evidence is one detected violation with enough context to debug it:
// the paper's "crash dump without the crash", per damaged region.
type Evidence struct {
	Kind  Kind
	Audit AuditPoint
	// Addr is the first damaged (or, for uninitialized reads, the read)
	// byte; Page and Offset are its page number and in-page offset.
	Addr   heap.Ptr
	Page   uint64
	Offset int
	// Span is the length in bytes of the damaged region.
	Span int
	// Object is the base of the slot holding the damage and ObjectSize
	// its slot size.
	Object     heap.Ptr
	ObjectSize int
	// AllocSite is the culprit candidate: the allocation index (in
	// program allocation order, which is layout-invariant) of the object
	// the damage is attributed to. -1 when no candidate exists.
	AllocSite int
	// Length is the inferred error extent: for overflows, how far past
	// the culprit object's end the damage reaches; for dangling writes
	// and uninitialized reads, the damaged/read span.
	Length int
	// NeighborLive and NeighborDead are the nearest live and free slot
	// bases around the damage, resolved through the core page index;
	// zero when none was found within the scan radius.
	NeighborLive heap.Ptr
	NeighborDead heap.Ptr
}

// Options configures a Detector.
type Options struct {
	// Seed seeds the canary pattern; 0 derives it from the heap's own
	// layout seed, so differently seeded heaps also carry different
	// canaries (what makes replicated detection replicas diverge on
	// uninitialized reads).
	Seed uint64
	// HeapCheckEvery, when positive, runs an automatic HeapCheck every
	// that many allocations — the heap-check barrier of the engine.
	HeapCheckEvery int
	// HeapCheckMin, when positive (and below HeapCheckEvery), makes the
	// barrier cadence adaptive (DESIGN.md §13): a barrier that finds
	// fresh evidence tightens the interval to HeapCheckMin — errors
	// cluster, and a tight cadence localizes damage to a narrow
	// allocation window — and every clean barrier doubles it until it
	// relaxes back to HeapCheckEvery. Zero keeps the fixed cadence;
	// with a fixed cadence the barrier schedule is exactly the modulo
	// schedule of PR 4, so recorded campaign hashes are unaffected.
	HeapCheckMin int
	// MaxEvidence caps the evidence log (default 1024); further findings
	// are counted in Report.Dropped.
	MaxEvidence int
	// Trace, when non-nil, is the detector's flight-recorder ring
	// (internal/obs): every recorded Evidence emits one stamped
	// EvEvidence event carrying the culprit allocation site, and every
	// heap-check barrier emits an EvBarrier, so corruption shows up on
	// the same merged timeline as the allocator events around it. Nil
	// (the zero value) costs one pointer check per site.
	Trace *obs.Ring
}

// objRec tracks one live allocation.
type objRec struct {
	site  int // allocation index, program order
	req   int // requested bytes
	slot  int // backing slot bytes
	large bool
}

// freedRec tracks a canary-filled freed slot awaiting audit.
type freedRec struct {
	slot int
	site int // allocation site of the former owner
}

// Detector holds the canary state and the evidence log for one heap.
type Detector struct {
	h     *core.Heap
	space *vmem.Space
	opts  Options

	pat       [CanaryBytes]byte
	words     [CanaryBytes]uint64 // canary64 for each addr&7 phase
	clock     int
	objects   map[heap.Ptr]objRec
	freed     map[heap.Ptr]freedRec
	evidence  []Evidence
	dropped   int
	checks    int
	audits    int               // cumulative canary audits performed (free/reuse/barrier scans)
	found     int               // cumulative evidence ever recorded (survives TakeEvidence)
	lastFound int               // found at the previous automatic barrier
	cadence   int               // current barrier interval (= HeapCheckEvery when fixed)
	nextCheck int               // clock value that triggers the next automatic barrier
	seen      map[heap.Ptr]bool // uninit dedup by address
	stored    map[heap.Ptr]bool // dangling-store dedup by address
	genSeen   map[genKey]bool   // stale free/access dedup by (addr, generation)
	buf       []byte            // audit/refill scratch
}

// genKey dedups generation evidence per incarnation: a second stale
// free or a second stale access through the same fat pointer is the
// same program error, but the same address under a *new* dead tag is a
// fresh one.
type genKey struct {
	addr heap.Ptr
	gen  uint64
}

// Heap couples a DieHard core heap with its attached Detector. The
// embedded core heap provides the full allocator interface; Malloc and
// Free fire the detector through the core hooks.
type Heap struct {
	*core.Heap
	det *Detector
}

var _ heap.Allocator = (*Heap)(nil)

// New builds a DieHard heap with canary detection attached. The core
// options must not request Concurrent (detection is sequential) or
// RandomFill (the canary pattern is the fill).
func New(copts core.Options, dopts Options) (*Heap, error) {
	if copts.Concurrent {
		return nil, fmt.Errorf("detect: canary detection is sequential; Concurrent heaps are not supported")
	}
	if copts.RandomFill {
		return nil, fmt.Errorf("detect: RandomFill and canary fill are mutually exclusive")
	}
	if dopts.MaxEvidence == 0 {
		dopts.MaxEvidence = 1024
	}
	if dopts.HeapCheckMin < 0 || (dopts.HeapCheckMin > 0 && dopts.HeapCheckMin > dopts.HeapCheckEvery) {
		// The second clause also rejects a floor without a ceiling
		// (HeapCheckEvery = 0): there is no schedule to adapt.
		return nil, fmt.Errorf("detect: HeapCheckMin %d must lie in [0, HeapCheckEvery=%d]", dopts.HeapCheckMin, dopts.HeapCheckEvery)
	}
	d := &Detector{
		opts:      dopts,
		cadence:   dopts.HeapCheckEvery,
		nextCheck: dopts.HeapCheckEvery,
		objects:   make(map[heap.Ptr]objRec),
		freed:     make(map[heap.Ptr]freedRec),
		seen:      make(map[heap.Ptr]bool),
		stored:    make(map[heap.Ptr]bool),
		genSeen:   make(map[genKey]bool),
	}
	copts.OnAlloc = d.onAlloc
	copts.OnFree = d.onFree
	copts.OnStaleFree = d.onStaleFree
	h, err := core.New(copts)
	if err != nil {
		return nil, err
	}
	d.h = h
	d.space = h.Mem()
	seed := dopts.Seed
	if seed == 0 {
		seed = h.Seed()
	}
	d.pat = canaryPattern(seed)
	for phase := 0; phase < CanaryBytes; phase++ {
		var w uint64
		for i := 0; i < 8; i++ {
			w |= uint64(d.pat[(phase+i)&7]) << (8 * i)
		}
		d.words[phase] = w
	}
	// Every page the heap ever instantiates starts as canary: the
	// detection analog of replicated mode's random fill, realized
	// through the same lazy page filler. Page frames are page-aligned,
	// so filling from the frame start keeps the pattern aligned to
	// absolute addresses.
	d.space.SetPageFiller(func(b []byte) {
		for i := range b {
			b[i] = d.pat[i&7]
		}
	})
	return &Heap{Heap: h, det: d}, nil
}

// Detector returns the attached detector.
func (h *Heap) Detector() *Detector { return h.det }

// Name identifies the allocator in experiment reports.
func (h *Heap) Name() string { return "diehard-detect" }

// Memory returns the canary-checking view of the heap's address space:
// 32- and 64-bit loads that return the canary word for their address,
// from within a live object's requested bytes, are recorded as
// uninitialized-read evidence. All other operations forward unchanged.
func (h *Heap) Memory() heap.Memory { return &checkedMem{s: h.det.space, d: h.det} }

// canaryPattern derives the 8-byte pattern from a seed with a SplitMix64
// finalizer. Zero bytes are remapped: zero is by far the most common
// legitimate memory value, and an audit cannot distinguish "program
// wrote the canary byte" from intact canary, so every pattern byte is
// kept nonzero to keep that collision rare.
func canaryPattern(seed uint64) [CanaryBytes]byte {
	z := seed + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	var pat [CanaryBytes]byte
	for i := range pat {
		b := byte(z >> (8 * i))
		if b == 0 {
			b = 0xA5 ^ byte(i)
		}
		pat[i] = b
	}
	return pat
}

// canary64 returns the canary word a correctly aligned 8-byte load at
// addr would observe.
func (d *Detector) canary64(addr heap.Ptr) uint64 { return d.words[addr&7] }

// canary32 is the 32-bit analog.
func (d *Detector) canary32(addr heap.Ptr) uint32 { return uint32(d.words[addr&7]) }

// record appends evidence, respecting the cap.
func (d *Detector) record(ev Evidence) {
	d.found++
	if d.opts.Trace != nil {
		d.opts.Trace.Emit(obs.EvEvidence, uint64(ev.AllocSite))
	}
	if len(d.evidence) >= d.opts.MaxEvidence {
		d.dropped++
		return
	}
	ev.Page = ev.Addr / vmem.PageSize
	ev.Offset = int(ev.Addr % vmem.PageSize)
	d.evidence = append(d.evidence, ev)
}

// forgetUninit clears the uninit-read dedup entries inside [p, p+n):
// once a slot changes hands, a canary match there is a fresh violation
// by the new owner, not a repeat of the old one. The dedup map only
// ever holds flagged addresses (bugs are rare), so the sweep is cheap.
func (d *Detector) forgetUninit(p heap.Ptr, n int) {
	for addr := range d.seen {
		if addr >= p && addr < p+heap.Ptr(n) {
			delete(d.seen, addr)
		}
	}
	for addr := range d.stored {
		if addr >= p && addr < p+heap.Ptr(n) {
			delete(d.stored, addr)
		}
	}
}

// refill restores the canary over [p, p+n).
func (d *Detector) refill(p heap.Ptr, n int) {
	if cap(d.buf) < n {
		d.buf = make([]byte, n)
	}
	b := d.buf[:n]
	for i := range b {
		b[i] = d.pat[(p+heap.Ptr(i))&7]
	}
	// The slot belongs to the heap and is mapped read-write; a write
	// failure would mean corrupted allocator metadata, which core's own
	// invariants guard against.
	_ = d.space.WriteBytes(p, b)
}

// audit scans [p, p+n) for canary damage and returns the first damaged
// offset and the damaged span (first to last damaged byte, inclusive).
// ok is false when the region is intact or unreadable.
func (d *Detector) audit(p heap.Ptr, n int) (first, span int, ok bool) {
	d.audits++
	if cap(d.buf) < n {
		d.buf = make([]byte, n)
	}
	b := d.buf[:n]
	if err := d.space.ReadBytes(p, b); err != nil {
		return 0, 0, false
	}
	first = -1
	last := -1
	for i := range b {
		if b[i] != d.pat[(p+heap.Ptr(i))&7] {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		return 0, 0, false
	}
	return first, last - first + 1, true
}

// neighbors resolves the nearest live and free slot bases around addr
// through the core page index, scanning up to four slots each way
// (nearest first, below before above). Zero means none found.
func (d *Detector) neighbors(addr heap.Ptr) (live, dead heap.Ptr) {
	base, size, _, ok := d.h.SlotAt(addr)
	if !ok {
		return 0, 0
	}
	for k := 1; k <= 4 && (live == 0 || dead == 0); k++ {
		step := heap.Ptr(k * size)
		for _, cand := range []heap.Ptr{base - step, base + step} {
			b, _, lv, ok := d.h.SlotAt(cand)
			if !ok || b != cand {
				continue // different class or off the subregion
			}
			if lv && live == 0 {
				live = b
			}
			if !lv && dead == 0 {
				dead = b
			}
		}
	}
	return live, dead
}

// onAlloc is the core OnAlloc hook: audit-on-reuse, then (re)arm the
// slot's canary and register the allocation.
func (d *Detector) onAlloc(p heap.Ptr, req, slot int) {
	site := d.clock
	d.clock++
	large := req > core.MaxObjectSize
	if !large {
		if fr, ok := d.freed[p]; ok {
			d.auditFreedSlot(p, fr, AuditReuse)
			delete(d.freed, p)
			// Hand the program a clean canary slot regardless of what the
			// audit found, so uninitialized reads of recycled memory are
			// detected exactly like reads of virgin memory — including
			// clearing the uninit dedup for the recycled addresses.
			d.refill(p, fr.slot)
			d.forgetUninit(p, fr.slot)
		}
	}
	d.objects[p] = objRec{site: site, req: req, slot: slot, large: large}
	if d.opts.HeapCheckEvery > 0 && d.clock >= d.nextCheck {
		// With a fixed cadence this fires at exactly the modulo schedule
		// (clock = k·HeapCheckEvery): the clock advances one allocation
		// at a time and barriers never allocate, so clock == nextCheck
		// whenever the guard passes.
		d.HeapCheck()
		if d.opts.HeapCheckMin > 0 {
			// Adapt on evidence from *any* audit point since the last
			// barrier — free, reuse, load, or this barrier itself. Errors
			// cluster, so fresh evidence anywhere argues for tighter
			// barriers; a clean interval argues for backing off.
			if d.found > d.lastFound {
				d.cadence = d.opts.HeapCheckMin
			} else if d.cadence < d.opts.HeapCheckEvery {
				d.cadence *= 2
				if d.cadence > d.opts.HeapCheckEvery {
					d.cadence = d.opts.HeapCheckEvery
				}
			}
		}
		d.lastFound = d.found
		d.nextCheck = d.clock + d.cadence
	}
}

// onFree is the core OnFree hook: audit the slack, then arm the freed
// slot.
func (d *Detector) onFree(p heap.Ptr, slot int) {
	rec, ok := d.objects[p]
	if !ok {
		return
	}
	delete(d.objects, p)
	if rec.large {
		// Core fires OnFree for large objects *before* the guarded
		// mapping is unmapped, so the trailing-page slack — canary since
		// the page filler instantiated it — gets its audit here, at
		// free, not only at heap-check barriers while the object lived
		// (the PR-4 gap). There is nothing to re-arm or track: the
		// mapping disappears as soon as this hook returns.
		d.auditSlack(p, rec, AuditFree)
		return
	}
	d.auditSlack(p, rec, AuditFree)
	d.refill(p, rec.slot)
	d.freed[p] = freedRec{slot: rec.slot, site: rec.site}
}

// auditSlack audits a live object's slack bytes [req, slot) and records
// damage as an overflow by that object — the one case where the culprit
// is exact without triage.
func (d *Detector) auditSlack(p heap.Ptr, rec objRec, at AuditPoint) {
	if rec.req >= rec.slot {
		return
	}
	start := p + heap.Ptr(rec.req)
	first, span, damaged := d.audit(start, rec.slot-rec.req)
	if !damaged {
		return
	}
	live, dead := d.neighbors(start)
	d.record(Evidence{
		Kind: KindOverflow, Audit: at,
		Addr: start + heap.Ptr(first), Span: span,
		Object: p, ObjectSize: rec.slot,
		AllocSite: rec.site,
		// Damage extent past the object's requested end.
		Length:       first + span,
		NeighborLive: live, NeighborDead: dead,
	})
	if at == AuditHeapCheck {
		// Re-arm so the same damage is not re-reported every barrier.
		d.refill(start, rec.slot-rec.req)
	}
}

// auditFreedSlot audits a canary-armed freed slot. Damage is a dangling
// write through a stale pointer to the former owner — unless it starts
// at the very base of the slot while the adjacent preceding slot holds
// a live object, in which case an overflow by that neighbor is equally
// consistent and both interpretations are recorded as candidates; the
// cross-layout intersection (Triage) separates them, because the true
// culprit's allocation site recurs in every randomized layout.
func (d *Detector) auditFreedSlot(p heap.Ptr, fr freedRec, at AuditPoint) bool {
	first, span, damaged := d.audit(p, fr.slot)
	if !damaged {
		return false
	}
	addr := p + heap.Ptr(first)
	live, dead := d.neighbors(addr)
	d.record(Evidence{
		Kind: KindDangling, Audit: at,
		Addr: addr, Span: span,
		Object: p, ObjectSize: fr.slot,
		AllocSite: fr.site, Length: span,
		NeighborLive: live, NeighborDead: dead,
	})
	d.recordNeighborOverflow(p, first, span, fr.slot, at, live, dead)
	if at == AuditHeapCheck {
		d.refill(p, fr.slot)
	}
	return true
}

// recordNeighborOverflow records the overflow-candidate reading of
// free-slot damage: when the damage starts at the very base of the slot
// and the adjacent preceding slot holds a live tracked object, an
// overflow by that neighbor is equally consistent with a dangling
// write, so a second Evidence record names it — the cross-layout
// intersection (Triage) separates the two interpretations. Shared by
// every free-slot audit path so the attribution and extent rules cannot
// drift apart.
func (d *Detector) recordNeighborOverflow(p heap.Ptr, first, span, slotSize int, at AuditPoint, live, dead heap.Ptr) {
	if first != 0 {
		return
	}
	prev, _, lv, ok := d.h.SlotAt(p - 1)
	if !ok || !lv {
		return
	}
	rec, tracked := d.objects[prev]
	if !tracked {
		return
	}
	d.record(Evidence{
		Kind: KindOverflow, Audit: at,
		Addr: p, Span: span,
		Object: p, ObjectSize: slotSize,
		AllocSite: rec.site,
		// Extent past the neighbor's requested end: its own slack plus
		// the damage reach into this slot.
		Length:       (rec.slot - rec.req) + span,
		NeighborLive: live, NeighborDead: dead,
	})
}

// noteUninit records an uninitialized read observed by the checked
// Memory view.
func (d *Detector) noteUninit(addr heap.Ptr, span int) {
	if d.seen[addr] {
		return
	}
	base, _, live, ok := d.h.SlotAt(addr)
	if !ok || !live {
		return // free space or foreign memory: not an uninitialized read
	}
	rec, tracked := d.objects[base]
	if !tracked || int(addr-base)+span > rec.req {
		return // slack or untracked: audited elsewhere
	}
	d.seen[addr] = true
	nl, nd := d.neighbors(addr)
	d.record(Evidence{
		Kind: KindUninit, Audit: AuditLoad,
		Addr: addr, Span: span,
		Object: base, ObjectSize: rec.slot,
		AllocSite: rec.site, Length: span,
		NeighborLive: nl, NeighborDead: nd,
	})
}

// sortedPtrs returns map keys in ascending address order, the
// deterministic iteration order of the barrier audits.
func sortedPtrs[V any](m map[heap.Ptr]V) []heap.Ptr {
	ps := make([]heap.Ptr, 0, len(m))
	for p := range m {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return ps
}

// HeapCheck is the barrier audit: every tracked freed slot and every
// live object's slack, in address order. It returns the number of new
// evidence records. Damage found at a barrier is re-armed so the same
// bytes are reported once.
func (d *Detector) HeapCheck() int {
	before := len(d.evidence) + d.dropped
	d.checks++
	if d.opts.Trace != nil {
		d.opts.Trace.Emit(obs.EvBarrier, uint64(d.clock))
	}
	for _, p := range sortedPtrs(d.freed) {
		d.auditFreedSlot(p, d.freed[p], AuditHeapCheck)
	}
	for _, p := range sortedPtrs(d.objects) {
		// Large objects are audited here too: their slack (requested size
		// to the end of the last mapped page) is canary while they live.
		// Their final audit happens at free, just before the unmap.
		d.auditSlack(p, d.objects[p], AuditHeapCheck)
	}
	return len(d.evidence) + d.dropped - before
}

// HeapCheckFull extends HeapCheck with a sweep of every free slot of
// every size class through the class bitmaps, catching stray writes
// into virgin never-allocated space. Auditing a virgin slot
// instantiates its page (as canary), so a full sweep of a large,
// mostly-untouched heap is expensive; campaigns run it on deliberately
// small heaps.
func (d *Detector) HeapCheckFull() int {
	n := d.HeapCheck()
	before := len(d.evidence) + d.dropped
	for c := 0; c < core.NumClasses; c++ {
		size := core.ClassSize(c)
		d.h.FreeSlots(c, func(p heap.Ptr) bool {
			if _, tracked := d.freed[p]; tracked {
				return true // already audited by HeapCheck
			}
			first, span, damaged := d.audit(p, size)
			if !damaged {
				return true
			}
			addr := p + heap.Ptr(first)
			live, dead := d.neighbors(addr)
			d.record(Evidence{
				Kind: KindDangling, Audit: AuditHeapCheck,
				Addr: addr, Span: span,
				Object: p, ObjectSize: size,
				AllocSite: -1, Length: span,
				NeighborLive: live, NeighborDead: dead,
			})
			d.recordNeighborOverflow(p, first, span, size, AuditHeapCheck, live, dead)
			d.refill(p, size)
			return true
		})
	}
	return n + len(d.evidence) + d.dropped - before
}

// Report is a snapshot of a detector's findings.
type Report struct {
	// Seed is the heap's layout seed; evidence is only comparable across
	// reports from different seeds (that is the whole point of triage).
	Seed uint64
	// Allocs and Checks count allocations observed and barrier audits
	// run; Dropped counts evidence lost to the MaxEvidence cap.
	Allocs  int
	Checks  int
	Dropped int
	// Evidence is the log in detection order.
	Evidence []Evidence
}

// Report snapshots the detector's state.
func (d *Detector) Report() *Report {
	return &Report{
		Seed:     d.h.Seed(),
		Allocs:   d.clock,
		Checks:   d.checks,
		Dropped:  d.dropped,
		Evidence: append([]Evidence(nil), d.evidence...),
	}
}

// TakeEvidence drains the evidence log: the accumulated records (and the
// overflow count the MaxEvidence cap dropped) are returned and the log
// resets. This is the supervisor's export path (internal/heal): evidence
// streams out window by window into an Accumulator instead of growing —
// and saturating — one per-detector log across a long-running service.
func (d *Detector) TakeEvidence() (evs []Evidence, dropped int) {
	evs = d.evidence
	dropped = d.dropped
	d.evidence = nil
	d.dropped = 0
	return evs, dropped
}

// Cadence reports the current automatic barrier interval: HeapCheckEvery
// when the cadence is fixed, and the adaptive interval in
// [HeapCheckMin, HeapCheckEvery] when HeapCheckMin engages it.
func (d *Detector) Cadence() int { return d.cadence }

// Clock reports the allocation index the next allocation will receive —
// the detector's site-numbering clock.
func (d *Detector) Clock() int { return d.clock }

// Audits reports the cumulative number of canary audits performed
// (free-time, reuse-time, and barrier scans).
func (d *Detector) Audits() int { return d.audits }

// Found reports the cumulative evidence ever recorded, surviving
// TakeEvidence drains (unlike len(Report().Evidence)).
func (d *Detector) Found() int { return d.found }

// PublishMetrics registers the detector's counters as detect.* gauges
// in the registry. The detection engine is sequential by contract, so
// the gauges read plain fields; scrape from the detector's own
// goroutine or at quiescence (the supervisor does both).
func (d *Detector) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	reg.Gauge("detect.canary_audits", func() float64 { return float64(d.audits) })
	reg.Gauge("detect.heap_checks", func() float64 { return float64(d.checks) })
	reg.Gauge("detect.evidence", func() float64 { return float64(d.found) })
	reg.Gauge("detect.evidence_dropped", func() float64 { return float64(d.dropped) })
	reg.Gauge("detect.cadence", func() float64 { return float64(d.cadence) })
	reg.Gauge("detect.allocs", func() float64 { return float64(d.clock) })
}

// checkedMem is the canary-auditing Memory view.
type checkedMem struct {
	s *vmem.Space
	d *Detector
}

var _ heap.Memory = (*checkedMem)(nil)

// Load8 audits the loaded byte: a canary-byte match inside a live
// object's requested bytes is an uninitialized read. The per-byte
// false-positive probability is 2^-8 — far weaker than the word checks,
// but the alternative is the gap this closes: byte-wise parsers (the
// most common real access pattern for string data) previously bypassed
// detection entirely.
func (m *checkedMem) Load8(addr uint64) (byte, error) {
	v, err := m.s.Load8(addr)
	if err == nil && v == m.d.pat[addr&7] {
		m.d.noteUninit(addr, 1)
	}
	return v, err
}

// Store8 checks the destination before writing: a store into a tracked
// freed slot is a dangling write, reported at the store itself (the
// reuse audit would find only the fingerprint, one owner later).
func (m *checkedMem) Store8(addr uint64, v byte) error {
	m.d.noteDanglingStore(addr, 1)
	return m.s.Store8(addr, v)
}

// Load32 audits the loaded word: a 32-bit canary match inside a live
// object is an uninitialized read with false-positive probability 2^-32.
func (m *checkedMem) Load32(addr uint64) (uint32, error) {
	v, err := m.s.Load32(addr)
	if err == nil && v == m.d.canary32(addr) {
		m.d.noteUninit(addr, 4)
	}
	return v, err
}

func (m *checkedMem) Store32(addr uint64, v uint32) error { return m.s.Store32(addr, v) }

// Load64 audits the loaded word against the canary (false-positive
// probability 2^-64).
func (m *checkedMem) Load64(addr uint64) (uint64, error) {
	v, err := m.s.Load64(addr)
	if err == nil && v == m.d.canary64(addr) {
		m.d.noteUninit(addr, 8)
	}
	return v, err
}

func (m *checkedMem) Store64(addr uint64, v uint64) error { return m.s.Store64(addr, v) }

// ReadBytes audits the copied range as a whole: a bulk read whose every
// byte is still intact canary is a value use of never-written memory
// (a partially written range is not flagged — the word loads that
// follow a staging copy audit those exactly, without double counting).
func (m *checkedMem) ReadBytes(addr uint64, b []byte) error {
	err := m.s.ReadBytes(addr, b)
	if err == nil && len(b) > 0 && m.d.rangeIsCanary(addr, len(b)) {
		m.d.noteUninit(addr, len(b))
	}
	return err
}

func (m *checkedMem) WriteBytes(addr uint64, b []byte) error { return m.s.WriteBytes(addr, b) }

func (m *checkedMem) Memset(addr uint64, v byte, n int) error { return m.s.Memset(addr, v, n) }

// MemMove audits the source before the copy runs (an overlapping move
// may destroy it): a wholly-canary source inside a live object means
// the program is propagating uninitialized bytes.
func (m *checkedMem) MemMove(dst, src uint64, n int) error {
	if n > 0 && m.d.rangeIsCanary(src, n) {
		m.d.noteUninit(src, n)
	}
	return m.s.MemMove(dst, src, n)
}

// FindByte audits the bytes the scan actually visited — a libc-style
// strlen/memchr over memory that is all still canary is a read of
// uninitialized string data, the byte-wise sweep the word checks could
// never see.
func (m *checkedMem) FindByte(addr uint64, c byte, limit int) (int, bool, error) {
	n, found, err := m.s.FindByte(addr, c, limit)
	if err == nil {
		visited := limit
		if found {
			visited = n + 1
		}
		if visited > 0 && m.d.rangeIsCanary(addr, visited) {
			m.d.noteUninit(addr, visited)
		}
	}
	return n, found, err
}
