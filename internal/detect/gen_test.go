package detect

// Regression tests for the byte-wise/bulk canary paths (the satellite
// fixes in detect.go's checked view) and for the generation tier's
// evidence plumbing (gen.go): stale frees and stale accesses must
// become Evidence deterministically, on every accessor.

import (
	"testing"

	"diehard/internal/core"
	"diehard/internal/heap"
)

func newGenHeap(t *testing.T, seed uint64) *Heap {
	t.Helper()
	h, err := New(core.Options{HeapSize: 12 << 20, Seed: seed, GenTags: true}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestUninitByteReadDetected pins the Load8 gap: a single-byte read of
// never-written memory must produce uninitialized-read evidence — the
// byte-wise parsers that previously bypassed the word checks entirely.
func TestUninitByteReadDetected(t *testing.T) {
	h := newDetectHeap(t, 51)
	mem := h.Memory()
	p, err := h.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Load8(p + 3); err != nil {
		t.Fatal(err)
	}
	evs := evidenceOf(h.Detector().Report(), KindUninit)
	if len(evs) != 1 {
		t.Fatalf("got %d uninit evidence records after a 1-byte read, want 1: %+v", len(evs), evs)
	}
	if ev := evs[0]; ev.Audit != AuditLoad || ev.Addr != p+3 || ev.Span != 1 {
		t.Errorf("evidence = %+v; want load-audit at %#x span 1", ev, p+3)
	}
	// A written byte reads back clean.
	if err := mem.Store8(p+4, 0x7F); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Load8(p + 4); err != nil {
		t.Fatal(err)
	}
	if n := len(evidenceOf(h.Detector().Report(), KindUninit)); n != 1 {
		t.Errorf("initialized byte read produced evidence (total %d)", n)
	}
}

// TestByteSweepOverCanaryDetected pins the bulk gaps: a FindByte scan, a
// ReadBytes copy, and a MemMove whose source is wholly canary are all
// value uses of uninitialized memory and must each leave evidence.
func TestByteSweepOverCanaryDetected(t *testing.T) {
	h := newDetectHeap(t, 52)
	mem := h.Memory()

	// FindByte: a strlen-style sweep over a never-written buffer. The
	// canary pattern is nonzero by construction, so the terminator is
	// never found and the scan visits the whole range.
	p, err := h.Malloc(16)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := mem.FindByte(p, 0, 16); err != nil {
		t.Fatal(err)
	}
	evs := evidenceOf(h.Detector().Report(), KindUninit)
	if len(evs) != 1 || evs[0].Addr != p || evs[0].Span != 16 {
		t.Fatalf("FindByte sweep: evidence = %+v; want one record at %#x span 16", evs, p)
	}

	// ReadBytes: a bulk copy out of never-written memory.
	q, err := h.Malloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.ReadBytes(q, make([]byte, 8)); err != nil {
		t.Fatal(err)
	}
	// MemMove: propagating never-written bytes within an object.
	r, err := h.Malloc(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.MemMove(r+16, r, 8); err != nil {
		t.Fatal(err)
	}
	evs = evidenceOf(h.Detector().Report(), KindUninit)
	if len(evs) != 3 {
		t.Fatalf("got %d uninit records after sweep+copy+move, want 3: %+v", len(evs), evs)
	}
	if evs[1].Addr != q || evs[1].Span != 8 || evs[2].Addr != r || evs[2].Span != 8 {
		t.Errorf("copy/move evidence = %+v, %+v; want %#x and %#x span 8", evs[1], evs[2], q, r)
	}

	// A partially initialized range is NOT flagged: the word loads that
	// follow a staging copy own that audit.
	if err := mem.Store8(q+8, 1); err != nil {
		t.Fatal(err)
	}
	if err := mem.ReadBytes(q+8, make([]byte, 4)); err != nil {
		t.Fatal(err)
	}
	if n := len(evidenceOf(h.Detector().Report(), KindUninit)); n != 3 {
		t.Errorf("partially written range flagged (total %d records)", n)
	}
}

// TestDanglingStoreDetected pins the Store8 path: a byte stored into a
// tracked freed slot is dangling-write evidence at the store itself.
func TestDanglingStoreDetected(t *testing.T) {
	h := newDetectHeap(t, 53)
	mem := h.Memory()
	p, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Memset(p, 0x11, 64); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := mem.Store8(p+5, 0xAB); err != nil {
		t.Fatal(err)
	}
	evs := evidenceOf(h.Detector().Report(), KindDangling)
	if len(evs) != 1 {
		t.Fatalf("got %d dangling records after a stale store, want 1: %+v", len(evs), evs)
	}
	ev := evs[0]
	if ev.Audit != AuditStore || ev.Addr != p+5 || ev.Object != p || ev.AllocSite != 0 {
		t.Errorf("evidence = %+v; want store-audit at %#x, object %#x, site 0", ev, p+5, p)
	}
	// Same address again: one program error, one record.
	if err := mem.Store8(p+5, 0xCD); err != nil {
		t.Fatal(err)
	}
	if n := len(evidenceOf(h.Detector().Report(), KindDangling)); n != 1 {
		t.Errorf("duplicate stale store re-reported (total %d)", n)
	}
}

// TestStaleFreeEvidence pins the core→detect hook: a generation-checked
// double free is rejected by the allocator AND lands in the evidence
// log as KindStaleFree with the former owner's allocation site, once
// per dead incarnation.
func TestStaleFreeEvidence(t *testing.T) {
	h := newGenHeap(t, 61)
	fp, err := h.MallocFat(64)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := h.FreeFat(fp); !ok || err != nil {
		t.Fatalf("FreeFat = %v, %v", ok, err)
	}
	for i := 0; i < 3; i++ { // replay thrice: one record
		if ok, _ := h.FreeFat(fp); ok {
			t.Fatal("stale free accepted")
		}
	}
	evs := evidenceOf(h.Detector().Report(), KindStaleFree)
	if len(evs) != 1 {
		t.Fatalf("got %d stale-free records, want 1 (dedup per incarnation): %+v", len(evs), evs)
	}
	ev := evs[0]
	if ev.Audit != AuditGen || ev.Addr != fp.Addr || ev.AllocSite != 0 {
		t.Errorf("evidence = %+v; want gencheck at %#x naming site 0", ev, fp.Addr)
	}
	if h.Stats().StaleFrees != 3 {
		t.Errorf("StaleFrees = %d; want 3 (the counter is per attempt, the evidence per error)",
			h.Stats().StaleFrees)
	}
}

// TestGenMemoryChecksEveryAccessor drives each accessor of the
// generation-checked view through a dead fat pointer and demands
// evidence from every one — word, byte, and bulk alike. Each round uses
// a fresh incarnation, so the (addr, gen) dedup cannot mask a missing
// check.
func TestGenMemoryChecksEveryAccessor(t *testing.T) {
	h := newGenHeap(t, 62)
	gm := h.GenMemory()
	mem := h.Memory()
	accessors := []struct {
		name string
		op   func(fp heap.FatPtr) error
	}{
		{"Load8", func(fp heap.FatPtr) error { _, err := gm.Load8(fp, 0); return err }},
		{"Store8", func(fp heap.FatPtr) error { return gm.Store8(fp, 0, 1) }},
		{"Load32", func(fp heap.FatPtr) error { _, err := gm.Load32(fp, 0); return err }},
		{"Store32", func(fp heap.FatPtr) error { return gm.Store32(fp, 0, 1) }},
		{"Load64", func(fp heap.FatPtr) error { _, err := gm.Load64(fp, 0); return err }},
		{"Store64", func(fp heap.FatPtr) error { return gm.Store64(fp, 0, 1) }},
		{"ReadBytes", func(fp heap.FatPtr) error { return gm.ReadBytes(fp, 0, make([]byte, 8)) }},
		{"WriteBytes", func(fp heap.FatPtr) error { return gm.WriteBytes(fp, 0, make([]byte, 8)) }},
		{"Memset", func(fp heap.FatPtr) error { return gm.Memset(fp, 0, 0x55, 8) }},
		{"MemMove", func(fp heap.FatPtr) error { return gm.MemMove(fp, 8, 0, 8) }},
		{"FindByte", func(fp heap.FatPtr) error { _, _, err := gm.FindByte(fp, 0, 0x55, 8); return err }},
	}
	for i, a := range accessors {
		fp, err := h.MallocFat(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := mem.Memset(fp.Addr, 0x55, 64); err != nil {
			t.Fatal(err)
		}
		// Live access: no evidence through any accessor.
		if err := a.op(fp); err != nil {
			t.Fatalf("%s on live object: %v", a.name, err)
		}
		if n := len(evidenceOf(h.Detector().Report(), KindStaleAccess)); n != i {
			t.Fatalf("%s on a LIVE object produced stale-access evidence (%d records before free)",
				a.name, n)
		}
		if ok, err := h.FreeFat(fp); !ok || err != nil {
			t.Fatalf("FreeFat = %v, %v", ok, err)
		}
		// Dead access: tolerated, reported.
		if err := a.op(fp); err != nil {
			t.Fatalf("%s on dead object: %v (the view tolerates and reports)", a.name, err)
		}
		evs := evidenceOf(h.Detector().Report(), KindStaleAccess)
		if len(evs) != i+1 {
			t.Fatalf("%s through a dead fat pointer left no evidence (%d records, want %d)",
				a.name, len(evs), i+1)
		}
		ev := evs[i]
		if ev.Audit != AuditGen || ev.Object != fp.Addr || ev.AllocSite < 0 {
			t.Errorf("%s evidence = %+v; want gencheck on object %#x with a culprit site",
				a.name, ev, fp.Addr)
		}
		// Replay through the same dead pointer: same error, one record.
		if err := a.op(fp); err != nil {
			t.Fatal(err)
		}
		if n := len(evidenceOf(h.Detector().Report(), KindStaleAccess)); n != i+1 {
			t.Errorf("%s replay re-reported (%d records)", a.name, n)
		}
	}
}

// TestGenEvidenceFeedsAccumulator pins the heal-plane hand-off: stale
// free/access evidence streams into the cross-window Accumulator and
// convicts a culprit with the standard majority rule — nothing
// downstream special-cases the new kinds.
func TestGenEvidenceFeedsAccumulator(t *testing.T) {
	acc := &Accumulator{}
	for w := 0; w < 3; w++ { // three windows, independently seeded layouts
		h := newGenHeap(t, uint64(70+w))
		// Allocation site 0 is the bug: freed once, then replayed.
		fp, err := h.MallocFat(64)
		if err != nil {
			t.Fatal(err)
		}
		if ok, err := h.FreeFat(fp); !ok || err != nil {
			t.Fatalf("FreeFat = %v, %v", ok, err)
		}
		if ok, _ := h.FreeFat(fp); ok {
			t.Fatal("stale free accepted")
		}
		evs, _ := h.Detector().TakeEvidence()
		acc.Observe(evs, 0)
	}
	v := acc.Verdict(KindStaleFree, 2)
	if v.Culprit != 0 || v.Confidence != 1.0 {
		t.Fatalf("verdict = culprit %d confidence %.2f; want site 0 at 1.0 (deterministic tier)",
			v.Culprit, v.Confidence)
	}
}
