package detect

import (
	"testing"

	"diehard/internal/core"
	"diehard/internal/heap"
)

// synthetic builds a report with overflow candidates at the given sites.
func synthetic(seed uint64, sites ...int) *Report {
	r := &Report{Seed: seed}
	for _, s := range sites {
		r.Evidence = append(r.Evidence, Evidence{
			Kind: KindOverflow, AllocSite: s, Length: 4 + s%3,
		})
	}
	return r
}

func TestTriageIntersectsCandidates(t *testing.T) {
	// Site 7 recurs in every layout; the coincidental neighbors differ.
	reports := []*Report{
		synthetic(1, 7, 12),
		synthetic(2, 7, 31),
		synthetic(3, 7),
		synthetic(4, 7, 5),
	}
	res := Triage(KindOverflow, reports)
	if res.Trials != 4 || res.Detected != 4 {
		t.Fatalf("trials/detected = %d/%d, want 4/4", res.Trials, res.Detected)
	}
	if res.Culprit != 7 {
		t.Fatalf("culprit = %d, want 7 (votes %v)", res.Culprit, res.Votes)
	}
	if res.Confidence != 1 {
		t.Errorf("confidence = %v, want 1", res.Confidence)
	}
}

func TestTriageUnresolvedWithoutMajority(t *testing.T) {
	reports := []*Report{
		synthetic(1, 3),
		synthetic(2, 4),
		synthetic(3, 5),
		synthetic(4, 6),
	}
	res := Triage(KindOverflow, reports)
	if res.Culprit != -1 {
		t.Fatalf("culprit = %d, want unresolved (-1)", res.Culprit)
	}
	// Undetected layouts do not dilute the vote.
	reports = append(reports, &Report{Seed: 9}, &Report{Seed: 10})
	res = Triage(KindOverflow, reports)
	if res.Detected != 4 {
		t.Fatalf("detected = %d, want 4 (empty reports excluded)", res.Detected)
	}
}

func TestTriageTieBreaksToSmallestSite(t *testing.T) {
	reports := []*Report{
		synthetic(1, 3, 9),
		synthetic(2, 3, 9),
		synthetic(3, 3, 9),
	}
	res := Triage(KindOverflow, reports)
	if res.Culprit != 3 {
		t.Fatalf("culprit = %d, want deterministic tie-break to 3", res.Culprit)
	}
}

// TestTriageLocalizesEscapedOverflow is the end-to-end intersection
// story on real heaps: the same program commits the same escaped
// overflow under N independently seeded layouts, and the intersection
// pins the culprit even though each layout's damaged neighbor differs.
func TestTriageLocalizesEscapedOverflow(t *testing.T) {
	const layouts = 8
	const culpritIdx = 10
	var reports []*Report
	for l := 0; l < layouts; l++ {
		h, err := New(core.Options{HeapSize: 12 << 20, Seed: uint64(100 + l)}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var ptrs []heap.Ptr
		for i := 0; i < 30; i++ {
			p, err := h.Malloc(64)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Mem().Memset(p, byte(0x41+i%8), 64); err != nil {
				t.Fatal(err)
			}
			ptrs = append(ptrs, p)
		}
		// The culprit writes 24 bytes past its slot into whatever the
		// layout placed there.
		if err := h.Mem().Memset(ptrs[culpritIdx]+64, 0x77, 24); err != nil {
			t.Fatal(err)
		}
		h.Detector().HeapCheckFull()
		reports = append(reports, h.Detector().Report())
	}
	res := Triage(KindOverflow, reports)
	if res.Detected < layouts/2 {
		t.Fatalf("only %d/%d layouts detected the escaped overflow", res.Detected, layouts)
	}
	if res.Culprit != culpritIdx {
		t.Fatalf("culprit = %d (votes %v), want %d", res.Culprit, res.Votes, culpritIdx)
	}
}
