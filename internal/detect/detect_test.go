package detect

import (
	"reflect"
	"testing"

	"diehard/internal/core"
	"diehard/internal/fault"
	"diehard/internal/heap"
)

func newDetectHeap(t *testing.T, seed uint64) *Heap {
	t.Helper()
	h, err := New(core.Options{HeapSize: 12 << 20, Seed: seed}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// evidenceOf filters a report by kind.
func evidenceOf(r *Report, k Kind) []Evidence {
	var out []Evidence
	for _, ev := range r.Evidence {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

func TestOverflowDetectedAtFree(t *testing.T) {
	h := newDetectHeap(t, 42)
	p, err := h.Malloc(56) // class 64: 8 slack canary bytes
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Mem().Memset(p, 'X', 60); err != nil { // 4 bytes past the request
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	evs := evidenceOf(h.Detector().Report(), KindOverflow)
	if len(evs) != 1 {
		t.Fatalf("got %d overflow evidence records, want 1: %+v", len(evs), evs)
	}
	ev := evs[0]
	if ev.Audit != AuditFree || ev.Object != p || ev.Addr != p+56 || ev.Span != 4 || ev.Length != 4 {
		t.Errorf("evidence = %+v, want free-audit damage at %#x span 4 length 4", ev, p+56)
	}
	if ev.AllocSite != 0 {
		t.Errorf("culprit site = %d, want 0 (first allocation)", ev.AllocSite)
	}
	if ev.Page != (p+56)/4096 || ev.Offset != int((p+56)%4096) {
		t.Errorf("page/offset = %d/%d inconsistent with addr %#x", ev.Page, ev.Offset, p+56)
	}
}

func TestCleanRunProducesNoEvidence(t *testing.T) {
	h := newDetectHeap(t, 7)
	mem := h.Memory()
	var ptrs []heap.Ptr
	for i := 0; i < 200; i++ {
		size := 16 + (i*13)%48
		p, err := h.Malloc(size)
		if err != nil {
			t.Fatal(err)
		}
		if err := mem.Memset(p, byte(0x30+i%10), size); err != nil {
			t.Fatal(err)
		}
		if _, err := mem.Load64(p); err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
		if i%3 == 0 {
			j := (i * 7) % len(ptrs)
			if ptrs[j] != 0 {
				if err := h.Free(ptrs[j]); err != nil {
					t.Fatal(err)
				}
				ptrs[j] = 0
			}
		}
	}
	h.Detector().HeapCheck()
	if r := h.Detector().Report(); len(r.Evidence) != 0 {
		t.Fatalf("clean workload produced evidence: %+v", r.Evidence)
	}
}

func TestDanglingDetectedAtReuseAndHeapCheck(t *testing.T) {
	// A tiny heap (64 slots in class 64) so the churn below recycles the
	// victim slot quickly.
	h, err := New(core.Options{HeapSize: 12 << 12, Seed: 9}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Mem().Memset(p, 'A', 64); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	// Write through the stale pointer into canary-armed freed space.
	if err := h.Mem().Store64(p+8, 0xDEAD); err != nil {
		t.Fatal(err)
	}
	// A heap-check barrier catches it without waiting for reuse.
	if n := h.Detector().HeapCheck(); n != 1 {
		t.Fatalf("HeapCheck found %d new records, want 1", n)
	}
	evs := evidenceOf(h.Detector().Report(), KindDangling)
	if len(evs) != 1 {
		t.Fatalf("got %d dangling records, want 1: %+v", len(evs), evs)
	}
	ev := evs[0]
	if ev.Audit != AuditHeapCheck || ev.Object != p || ev.Addr != p+8 || ev.AllocSite != 0 {
		t.Errorf("evidence = %+v, want heapcheck damage at %#x blaming site 0", ev, p+8)
	}
	// The barrier re-armed the canary: a second check is quiet.
	if n := h.Detector().HeapCheck(); n != 0 {
		t.Fatalf("second HeapCheck found %d records, want 0", n)
	}

	// Damage again and let slot reuse catch it this time.
	if err := h.Mem().Store64(p+16, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ { // churn until the slot is reallocated
		q, err := h.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if q == p {
			break
		}
		if err := h.Free(q); err != nil {
			t.Fatal(err)
		}
	}
	evs = evidenceOf(h.Detector().Report(), KindDangling)
	found := false
	for _, ev := range evs {
		if ev.Audit == AuditReuse && ev.Addr == p+16 {
			found = true
		}
	}
	if !found {
		t.Fatalf("reuse audit missed the dangling write: %+v", evs)
	}
}

func TestUninitReadDetectedOnLoad(t *testing.T) {
	h := newDetectHeap(t, 3)
	mem := h.Memory()
	p, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Load64(p + 8); err != nil { // never written
		t.Fatal(err)
	}
	evs := evidenceOf(h.Detector().Report(), KindUninit)
	if len(evs) != 1 {
		t.Fatalf("got %d uninit records, want 1: %+v", len(evs), evs)
	}
	if ev := evs[0]; ev.Addr != p+8 || ev.AllocSite != 0 || ev.Audit != AuditLoad || ev.Span != 8 {
		t.Errorf("evidence = %+v, want load-audit at %#x blaming site 0", ev, p+8)
	}
	// Re-reading the same address reports once.
	if _, err := mem.Load64(p + 8); err != nil {
		t.Fatal(err)
	}
	if got := len(evidenceOf(h.Detector().Report(), KindUninit)); got != 1 {
		t.Fatalf("duplicate uninit evidence: %d records", got)
	}
	// Initialized data does not trip the check.
	q, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Store64(q, 0x1234); err != nil {
		t.Fatal(err)
	}
	if _, err := mem.Load64(q); err != nil {
		t.Fatal(err)
	}
	if got := len(evidenceOf(h.Detector().Report(), KindUninit)); got != 1 {
		t.Fatalf("initialized read reported as uninit: %d records", got)
	}
}

func TestUninitReadOfRecycledSlot(t *testing.T) {
	// A recycled slot must look exactly like virgin memory: the reuse
	// path re-arms the canary, so uninitialized reads of recycled
	// allocations are detected too (the DieFast property).
	h, err := New(core.Options{HeapSize: 12 << 12, Seed: 21}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mem := h.Memory()
	p, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// Read the first owner uninitialized too: the dedup must be per
	// owner, not per address, so the recycled read below still reports.
	if _, err := mem.Load64(p); err != nil {
		t.Fatal(err)
	}
	if err := mem.Memset(p, 0xEE, 64); err != nil { // dirty it
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	var q heap.Ptr
	for i := 0; i < 5000; i++ {
		q, err = h.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if q == p {
			break
		}
		if err := h.Free(q); err != nil {
			t.Fatal(err)
		}
	}
	if q != p {
		t.Skip("slot not recycled within the churn budget")
	}
	if _, err := mem.Load64(q); err != nil {
		t.Fatal(err)
	}
	if got := len(evidenceOf(h.Detector().Report(), KindUninit)); got != 2 {
		t.Fatalf("recycled uninit read: %d records, want 2 (one per owner)", got)
	}
}

func TestHeapCheckFullCatchesStrayWriteInVirginSpace(t *testing.T) {
	h := newDetectHeap(t, 17)
	p, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// A wild write far past the object, into never-allocated space.
	stray := p + 64*10
	if err := h.Mem().Store64(stray, 0xBAD); err != nil {
		t.Fatal(err)
	}
	if n := h.Detector().HeapCheck(); n != 0 {
		t.Fatalf("plain HeapCheck should not see virgin space, found %d", n)
	}
	if n := h.Detector().HeapCheckFull(); n == 0 {
		t.Fatal("HeapCheckFull missed the stray write")
	}
	var hit *Evidence
	for i, ev := range h.Detector().Report().Evidence {
		if ev.Addr == stray {
			hit = &h.Detector().Report().Evidence[i]
		}
	}
	if hit == nil {
		t.Fatalf("no evidence at %#x: %+v", stray, h.Detector().Report().Evidence)
	}
	// The sweep re-armed the canary: a second full check is quiet.
	if n := h.Detector().HeapCheckFull(); n != 0 {
		t.Fatalf("second HeapCheckFull found %d records, want 0", n)
	}
}

func TestAutomaticHeapCheckBarrier(t *testing.T) {
	h, err := New(core.Options{HeapSize: 12 << 20, Seed: 5}, Options{HeapCheckEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	p, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Mem().Store64(p, 0xF00D); err != nil { // dangling write
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ { // cross the every-10 barrier
		q, err := h.Malloc(8)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Free(q); err != nil {
			t.Fatal(err)
		}
	}
	r := h.Detector().Report()
	if r.Checks == 0 {
		t.Fatal("no automatic heap check ran")
	}
	if len(evidenceOf(r, KindDangling)) == 0 {
		t.Fatal("automatic barrier missed the dangling write")
	}
}

// TestAdaptiveHeapCheckCadence: with HeapCheckMin set, a barrier that
// follows fresh evidence tightens the cadence to the floor, and clean
// barrier intervals double it back toward HeapCheckEvery.
func TestAdaptiveHeapCheckCadence(t *testing.T) {
	h, err := New(core.Options{HeapSize: 12 << 20, Seed: 5},
		Options{HeapCheckEvery: 16, HeapCheckMin: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Detector().Cadence(); got != 16 {
		t.Fatalf("initial cadence %d, want HeapCheckEvery", got)
	}
	p, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Mem().Store64(p, 0xF00D); err != nil { // dangling write
		t.Fatal(err)
	}
	churn := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			q, err := h.Malloc(8)
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Free(q); err != nil {
				t.Fatal(err)
			}
		}
	}
	churn(16) // cross the first barrier with the evidence on the books
	if got := h.Detector().Cadence(); got != 2 {
		t.Fatalf("cadence after evidence = %d, want floor 2", got)
	}
	// Clean intervals: exponential backoff 2 -> 4 -> 8 -> 16, capped.
	churn(64)
	if got := h.Detector().Cadence(); got != 16 {
		t.Fatalf("cadence after clean churn = %d, want back at HeapCheckEvery", got)
	}
	// The tightened stretch ran MORE barriers than the fixed schedule
	// would have over the same clock span.
	if checks := h.Detector().Report().Checks; checks <= 80/16 {
		t.Fatalf("only %d checks over ~80 allocations; cadence never tightened", checks)
	}
}

// TestFixedCadenceUnchanged: HeapCheckMin = 0 preserves the exact PR-4
// modulo schedule — one barrier per HeapCheckEvery allocations, evidence
// or not — so recorded golden output hashes cannot move.
func TestFixedCadenceUnchanged(t *testing.T) {
	h, err := New(core.Options{HeapSize: 12 << 20, Seed: 5}, Options{HeapCheckEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 35; i++ {
		q, err := h.Malloc(8)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Free(q); err != nil {
			t.Fatal(err)
		}
	}
	if checks := h.Detector().Report().Checks; checks != 3 {
		t.Fatalf("%d barriers over 35 allocations, want exactly 3 (clock 10, 20, 30)", checks)
	}
	if got := h.Detector().Cadence(); got != 10 {
		t.Fatalf("fixed cadence drifted to %d", got)
	}
}

// TestHeapCheckMinValidation pins the option's rejection surface.
func TestHeapCheckMinValidation(t *testing.T) {
	if _, err := New(core.Options{HeapSize: 12 << 20}, Options{HeapCheckMin: -1}); err == nil {
		t.Error("negative HeapCheckMin accepted")
	}
	if _, err := New(core.Options{HeapSize: 12 << 20}, Options{HeapCheckEvery: 8, HeapCheckMin: 9}); err == nil {
		t.Error("HeapCheckMin above HeapCheckEvery accepted")
	}
	if _, err := New(core.Options{HeapSize: 12 << 20}, Options{HeapCheckMin: 4}); err == nil {
		// A floor without a ceiling has no schedule to adapt.
		t.Error("HeapCheckMin without HeapCheckEvery accepted")
	}
}

func TestLargeObjectLifecycle(t *testing.T) {
	h := newDetectHeap(t, 13)
	p, err := h.Malloc(core.MaxObjectSize + 1000)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Mem().Memset(p, 1, core.MaxObjectSize+1000); err != nil {
		t.Fatal(err)
	}
	h.Detector().HeapCheck() // audits the large slack while live
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	h.Detector().HeapCheck()
	if r := h.Detector().Report(); len(r.Evidence) != 0 {
		t.Fatalf("clean large-object lifecycle produced evidence: %+v", r.Evidence)
	}
}

// TestLargeObjectOverflowCaughtAtFree closes the PR-4 gap: an overflow
// into a large object's trailing-page slack is audited at free — core
// fires OnFree before the guarded mapping is unmapped — not only at
// heap-check barriers while the object lives. The overflow is planned
// (fault.PlanOverflow), so the culprit allocation site is known ground
// truth and the evidence must name it exactly.
func TestLargeObjectOverflowCaughtAtFree(t *testing.T) {
	const largeReq = core.MaxObjectSize + 1000
	// The program: a few small warm-up objects, then one large object
	// written at its full intended size, then freed.
	program := func(alloc heap.Allocator, mem heap.Memory) error {
		for i := 0; i < 4; i++ {
			p, err := alloc.Malloc(64)
			if err != nil {
				return err
			}
			if err := mem.Memset(p, 'a', 64); err != nil {
				return err
			}
			if err := alloc.Free(p); err != nil {
				return err
			}
		}
		p, err := alloc.Malloc(largeReq)
		if err != nil {
			return err
		}
		if err := mem.Memset(p, 'L', largeReq); err != nil {
			return err
		}
		return alloc.Free(p)
	}

	// Trace run: record the allocation log the plan draws from.
	th, err := core.New(core.Options{HeapSize: 12 << 20, Seed: 0xACE})
	if err != nil {
		t.Fatal(err)
	}
	tracer := fault.NewTracer(th)
	if err := program(tracer, th.Mem()); err != nil {
		t.Fatal(err)
	}
	// Only the large allocation is eligible: the plan's victim set is
	// exactly it, which makes the expected culprit site unambiguous.
	plan := fault.PlanOverflow(tracer.Trace(), 1, core.MaxObjectSize+1, 8, 0xBEEF)
	victims := plan.Victims()
	if len(victims) != 1 || victims[0] != 4 {
		t.Fatalf("planned victims = %v, want exactly the large allocation (site 4)", victims)
	}

	// Injection run: the under-allocated large object's full-size write
	// runs 8 bytes into the trailing-page slack.
	dh := newDetectHeap(t, 77)
	inj := fault.NewPlannedOverflowInjector(dh, plan)
	if err := program(inj, dh.Mem()); err != nil {
		t.Fatal(err)
	}
	evs := evidenceOf(dh.Detector().Report(), KindOverflow)
	if len(evs) != 1 {
		t.Fatalf("got %d overflow evidence records, want 1: %+v", len(evs), evs)
	}
	ev := evs[0]
	if ev.Audit != AuditFree {
		t.Errorf("audit point = %s, want %s (caught at free, no barrier ran)", ev.Audit, AuditFree)
	}
	if ev.AllocSite != victims[0] {
		t.Errorf("culprit site = %d, want planned victim %d", ev.AllocSite, victims[0])
	}
	if ev.Span != plan.Delta {
		t.Errorf("damage span = %d, want the injected %d bytes", ev.Span, plan.Delta)
	}
}

func TestDetectorDeterministicForSeed(t *testing.T) {
	run := func() *Report {
		h := newDetectHeap(t, 1234)
		mem := h.Memory()
		var ptrs []heap.Ptr
		for i := 0; i < 150; i++ {
			size := 24 + (i*13)%40
			p, err := h.Malloc(size)
			if err != nil {
				t.Fatal(err)
			}
			if i != 37 { // one uninitialized object
				if err := mem.Memset(p, byte(i), size); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := mem.Load64(p); err != nil {
				t.Fatal(err)
			}
			ptrs = append(ptrs, p)
			if i%2 == 1 {
				victim := ptrs[i-1]
				if victim != 0 {
					if err := mem.Memset(victim, 0xCC, 70); err != nil { // overflowing write
						t.Fatal(err)
					}
					if err := h.Free(victim); err != nil {
						t.Fatal(err)
					}
					ptrs[i-1] = 0
				}
			}
		}
		h.Detector().HeapCheck()
		return h.Detector().Report()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical seed and program produced different reports")
	}
	if len(a.Evidence) == 0 {
		t.Fatal("workload with injected errors produced no evidence")
	}
}

func TestRejectsConcurrentAndRandomFill(t *testing.T) {
	if _, err := New(core.Options{Concurrent: true}, Options{}); err == nil {
		t.Error("Concurrent accepted")
	}
	if _, err := New(core.Options{RandomFill: true}, Options{}); err == nil {
		t.Error("RandomFill accepted")
	}
}

func TestEvidenceCap(t *testing.T) {
	h, err := New(core.Options{HeapSize: 12 << 20, Seed: 2}, Options{MaxEvidence: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		p, err := h.Malloc(56)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Mem().Memset(p, 'Z', 60); err != nil {
			t.Fatal(err)
		}
		if err := h.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	r := h.Detector().Report()
	if len(r.Evidence) != 3 || r.Dropped != 5 {
		t.Fatalf("cap: %d records, %d dropped; want 3 and 5", len(r.Evidence), r.Dropped)
	}
}
