package obs

import (
	"math"
	"sort"
	"sync"
	"testing"

	"diehard/internal/rng"
)

func TestObsHistogramBuckets(t *testing.T) {
	// Bucket boundaries are monotone and exhaustive: every value maps
	// into a bucket whose [low, next-low) range contains it.
	for _, v := range []uint64{0, 1, 15, 16, 17, 255, 256, 1 << 20, 1<<20 + 3, 1 << 40, math.MaxInt64} {
		i := bucketOf(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range", v, i)
		}
		if lo := bucketLow(i); lo > v {
			t.Fatalf("bucketLow(%d) = %d > value %d", i, lo, v)
		}
		if i+1 < histBuckets {
			if hi := bucketLow(i + 1); v >= hi {
				t.Fatalf("value %d at bucket %d crosses next boundary %d", v, i, hi)
			}
		}
	}
	for i := 1; i < histBuckets; i++ {
		if bucketLow(i) < bucketLow(i-1) {
			t.Fatalf("bucket lows not monotone at %d", i)
		}
	}
}

func TestObsHistogramQuantiles(t *testing.T) {
	// Against an exact sorted sample: every quantile must land within
	// one sub-bucket's relative error of the true order statistic.
	r := rng.NewSeeded(7)
	var h Histogram
	samples := make([]int64, 20000)
	for i := range samples {
		v := int64(r.Intn(1_000_000)) + int64(r.Intn(1000))*int64(r.Intn(1000))
		samples[i] = v
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	if h.Count() != uint64(len(samples)) {
		t.Fatalf("count %d, want %d", h.Count(), len(samples))
	}
	if h.Max() != samples[len(samples)-1] {
		t.Fatalf("max %d, want %d", h.Max(), samples[len(samples)-1])
	}
	for _, q := range []float64{0.10, 0.50, 0.90, 0.99, 0.999} {
		got := h.Quantile(q)
		want := samples[int(q*float64(len(samples)))]
		if want == 0 {
			continue
		}
		rel := math.Abs(float64(got)-float64(want)) / float64(want)
		if rel > 1.0/histSub+0.01 {
			t.Fatalf("q%.3f: got %d, want %d (rel err %.3f)", q, got, want, rel)
		}
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("q1 %d != max %d", h.Quantile(1), h.Max())
	}
	var a, b Histogram
	for i, v := range samples {
		if i%2 == 0 {
			a.Record(v)
		} else {
			b.Record(v)
		}
	}
	a.Merge(&b)
	if a.Count() != h.Count() || a.Max() != h.Max() || a.Quantile(0.5) != h.Quantile(0.5) {
		t.Fatal("merge does not reproduce the unified histogram")
	}
	var empty Histogram
	if empty.Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile not 0")
	}
}

func TestObsHistogramEmptyMerge(t *testing.T) {
	// Merging histograms of workers that served nothing (a quota split
	// can starve trailing workers on tiny runs) must be an exact no-op.
	var a, b Histogram
	a.Merge(&b)
	if a.Count() != 0 || a.Max() != 0 || a.Quantile(0.5) != 0 {
		t.Fatal("empty-into-empty merge produced samples")
	}
	a.Record(100)
	a.Record(200)
	before := [3]int64{a.Quantile(0.5), a.Quantile(0.999), a.Max()}
	a.Merge(&b)
	if a.Count() != 2 {
		t.Fatalf("count %d after empty merge, want 2", a.Count())
	}
	if after := [3]int64{a.Quantile(0.5), a.Quantile(0.999), a.Max()}; after != before {
		t.Fatalf("empty merge moved quantiles: %v -> %v", before, after)
	}
	// And the mirror: folding a populated histogram into a zero-value
	// one (the driver's merge loop starts from an empty Result.Hist).
	b.Merge(&a)
	if b.Count() != 2 || b.Max() != 200 {
		t.Fatalf("populated-into-empty merge lost samples: count %d max %d", b.Count(), b.Max())
	}
}

func TestObsHistogramTopOverflowBucket(t *testing.T) {
	// The largest representable samples land in the top buckets and are
	// counted, not dropped; the exact max survives quantization.
	var h Histogram
	huge := []int64{math.MaxInt64, math.MaxInt64 - 1, math.MaxInt64 / 2, 1}
	for _, v := range huge {
		h.Record(v)
	}
	if h.Count() != uint64(len(huge)) {
		t.Fatalf("count %d, want %d", h.Count(), len(huge))
	}
	if h.Max() != math.MaxInt64 {
		t.Fatalf("max %d, want MaxInt64", h.Max())
	}
	if got := h.Quantile(1); got != math.MaxInt64 {
		t.Fatalf("q1 = %d, want exact MaxInt64", got)
	}
	if got := h.Quantile(0.99); got != math.MaxInt64 {
		t.Fatalf("q.99 of 4 samples = %d, want the exact max (rank lands on the final sample)", got)
	}
	// A sum over the counters must see every recorded sample — the top
	// bucket is a real bucket, not an overflow discard.
	var sum uint64
	for _, c := range h.counts {
		sum += c
	}
	if sum != h.Count() {
		t.Fatalf("bucket sum %d != count %d", sum, h.Count())
	}
}

func TestObsHistogramSparseHighQuantiles(t *testing.T) {
	// With fewer than 1/(1-q) samples the q-quantile IS the maximum;
	// the histogram must report it exactly (it tracks max un-quantized),
	// not as a log-bucket midpoint that can sit ~6% off.
	var h Histogram
	// 500 samples: p999 rank = floor(0.999*500) = 499 = the last sample.
	for i := int64(1); i <= 499; i++ {
		h.Record(i * 1000)
	}
	h.Record(123_456_789) // a max that is NOT a bucket boundary
	if got := h.Quantile(0.999); got != 123_456_789 {
		t.Fatalf("sparse p999 = %d, want exact max 123456789", got)
	}
	// Two samples: the p50 rank lands on the larger one — exact, again.
	var two Histogram
	two.Record(10)
	two.Record(999_999)
	if got := two.Quantile(0.5); got != 999_999 {
		t.Fatalf("two-sample p50 = %d, want exact 999999", got)
	}
	// Dense case unaffected: with 2000 samples p50 stays a bucket
	// estimate within the documented relative error.
	var dense Histogram
	for i := int64(1); i <= 2000; i++ {
		dense.Record(i)
	}
	got, want := dense.Quantile(0.5), int64(1000)
	if rel := math.Abs(float64(got-want)) / float64(want); rel > 1.0/histSub+0.01 {
		t.Fatalf("dense p50 = %d, want ~%d", got, want)
	}
}

func TestObsHistogramConcurrentRecord(t *testing.T) {
	// The promoted histogram is atomic: concurrent recorders plus a
	// snapshotting reader must neither lose samples nor trip the race
	// detector, since /metrics scrapes histograms mid-run.
	const workers, per = 8, 5000
	var h Histogram
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				h.Summary() // live scrape while recording
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(int64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	if h.Count() != workers*per {
		t.Fatalf("count %d, want %d", h.Count(), workers*per)
	}
	if h.Max() != workers*per-1 {
		t.Fatalf("max %d, want %d", h.Max(), workers*per-1)
	}
	s := h.Summary()
	if s.Count != workers*per || s.P50 > s.P99 || s.P99 > s.P999 || s.P999 > s.Max {
		t.Fatalf("summary inconsistent: %+v", s)
	}
}
