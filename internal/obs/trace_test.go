package obs

import (
	"sync"
	"testing"
)

func TestObsTraceWraparound(t *testing.T) {
	// A full ring overwrites its oldest events: after 3x the capacity,
	// the snapshot holds exactly the capacity's worth of events and
	// they are the most recent ones, still stamp-sorted.
	rec := NewRecorder(64)
	ring := rec.Ring(0)
	const n = 3 * 64
	for i := 0; i < n; i++ {
		ring.Emit(EvMalloc, uint64(i))
	}
	evs := rec.Snapshot()
	if len(evs) != 64 {
		t.Fatalf("snapshot holds %d events after wrap, want 64", len(evs))
	}
	for i, ev := range evs {
		if want := uint64(n - 64 + i); ev.Arg != want {
			t.Fatalf("event %d arg %d, want %d (oldest must be overwritten)", i, ev.Arg, want)
		}
		if i > 0 && evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("stamps not strictly increasing at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
		if ev.Kind != "malloc" || ev.Worker != 0 {
			t.Fatalf("event decoded wrong: %+v", ev)
		}
	}
	if ring.Len() != 64 {
		t.Fatalf("ring len %d, want 64", ring.Len())
	}
}

func TestObsTraceMergeOrdering(t *testing.T) {
	// Interleaved emits from several workers merge into one timeline
	// that is globally stamp-sorted and monotone per worker, with each
	// worker's own event order preserved as a subsequence.
	rec := NewRecorder(256)
	rings := []*Ring{rec.Ring(1), rec.Ring(2), rec.Ring(7)}
	kinds := []Kind{EvMalloc, EvFree, EvSteal}
	for i := 0; i < 100; i++ {
		for w, r := range rings {
			r.Emit(kinds[w], uint64(i))
		}
	}
	evs := rec.Snapshot()
	if len(evs) != 300 {
		t.Fatalf("merged %d events, want 300", len(evs))
	}
	lastSeq := uint64(0)
	lastArg := map[int]uint64{}
	for _, ev := range evs {
		if ev.Seq <= lastSeq {
			t.Fatalf("global order violated: seq %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		if prev, ok := lastArg[ev.Worker]; ok && ev.Arg != prev+1 {
			t.Fatalf("worker %d events out of order: arg %d after %d", ev.Worker, ev.Arg, prev)
		}
		lastArg[ev.Worker] = ev.Arg
	}
	for _, w := range []int{1, 2, 7} {
		if lastArg[w] != 99 {
			t.Fatalf("worker %d timeline truncated at %d", w, lastArg[w])
		}
	}
	// Arg packing: 48 bits survive, beyond truncates.
	r := rec.Ring(3)
	r.Emit(EvBarrier, 1<<48-1)
	r.Emit(EvBarrier, 1<<48+5)
	tail := rec.Tail(2)
	if tail[0].Arg != 1<<48-1 || tail[1].Arg != 5 {
		t.Fatalf("arg packing wrong: %+v", tail)
	}
}

func TestObsTraceRaceBattery(t *testing.T) {
	// 8 goroutines hammer their own rings (plus one shared ring) while
	// a reader snapshots continuously; under -race this exercises the
	// seqlock protocol. The final quiescent snapshot must be complete
	// per the wraparound rule and stamp-sorted.
	const workers = 8
	const perWorker = 4096
	rec := NewRecorder(512)
	shared := rec.Ring(99)
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				evs := rec.Snapshot()
				for i := 1; i < len(evs); i++ {
					if evs[i].Seq <= evs[i-1].Seq {
						t.Errorf("live snapshot out of order at %d", i)
						return
					}
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ring := rec.Ring(w)
			for i := 0; i < perWorker; i++ {
				ring.Emit(EvMalloc, uint64(i))
				if i%64 == 0 {
					shared.Emit(EvDrain, uint64(w))
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readers.Wait()

	evs := rec.Snapshot()
	// Quiescent: every ring is full (perWorker > ring size), so the
	// timeline holds exactly (workers+1) full rings.
	if want := (workers + 1) * 512; len(evs) != want {
		t.Fatalf("final snapshot %d events, want %d", len(evs), want)
	}
	perRing := map[int]int{}
	for i, ev := range evs {
		if i > 0 && evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("final snapshot out of order at %d", i)
		}
		perRing[ev.Worker]++
	}
	for w := 0; w < workers; w++ {
		if perRing[w] != 512 {
			t.Fatalf("worker %d holds %d events, want full ring 512", w, perRing[w])
		}
	}
}

func TestObsTraceDisabledPath(t *testing.T) {
	// The disabled recorder is a nil pointer all the way down: rings
	// are nil, Emit is one branch, Snapshot is empty — and none of it
	// allocates.
	var rec *Recorder
	ring := rec.Ring(0)
	if ring != nil {
		t.Fatal("nil recorder handed out a ring")
	}
	allocs := testing.AllocsPerRun(100, func() {
		ring.Emit(EvMalloc, 42)
	})
	if allocs != 0 {
		t.Fatalf("disabled Emit allocates %v per op", allocs)
	}
	if evs := rec.Snapshot(); evs != nil {
		t.Fatalf("nil recorder snapshot: %v", evs)
	}
	if rec.Tail(5) != nil {
		t.Fatal("nil recorder tail not empty")
	}
	if ring.Len() != 0 {
		t.Fatal("nil ring has length")
	}
	// Enabled Emit does not allocate either (fixed slots, no boxing).
	live := NewRecorder(64).Ring(1)
	allocs = testing.AllocsPerRun(100, func() {
		live.Emit(EvFree, 7)
	})
	if allocs != 0 {
		t.Fatalf("enabled Emit allocates %v per op", allocs)
	}
}
