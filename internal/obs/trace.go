package obs

import (
	"encoding/json"
	"sort"
	"sync"
	"sync/atomic"
)

// The flight recorder: per-worker lock-free ring buffers of fixed-size
// binary trace events, merged on demand into one stamp-ordered
// timeline, so a corruption or latency spike can be replayed backwards
// to its cause.
//
// # Slot layout and seqlock protocol
//
// Each slot is 16 bytes — two uint64 words:
//
//	seq  — a globally unique Lamport stamp drawn from the recorder's
//	       atomic counter; 0 means empty or mid-write.
//	word — arg(48 bits) | kind(8 bits) | worker(8 bits), packed.
//
// A writer claims a stamp (one atomic add on the recorder), claims a
// slot position (one atomic add on the ring), then publishes with a
// per-slot seqlock: store seq=0 (release), store word, store
// seq=stamp (release). A reader loads seq, word, seq again (acquire)
// and accepts the slot only when both seq reads agree and are
// non-zero. Because stamps are globally unique and never reused, the
// classic seqlock ABA (a slot rewritten to the same version between
// the two reads) cannot validate: a torn read always sees either 0 or
// two different stamps. A reader that loses the race simply skips the
// slot — the recorder is a diagnostic tail, deliberately lossy at the
// margin, never blocking a writer.
//
// # Ordering model
//
// "Time-ordered" means Lamport-stamp-ordered: the stamp counter is a
// single atomic, so the merged timeline is a total order consistent
// with the real event order at each worker (one goroutine's emits get
// strictly increasing stamps) and with cross-worker causality through
// the counter itself. No clock reads on the hot path.
//
// # Disabled path
//
// The zero value of every handle is off. Emit on a nil *Ring returns
// immediately; instrumented call sites additionally guard with their
// own nil check so the disabled hot path is exactly one predictable
// branch — the same discipline as the vmem TLB hook, benchmarked by
// vmembench's obs_malloc_pair_off gate.

// Kind is the event type, one byte in the packed word.
type Kind uint8

const (
	EvNone Kind = iota
	EvMalloc
	EvFree
	EvRemoteFree
	EvDrain
	EvSteal
	EvRefill
	EvFlush
	EvBarrier
	EvEvidence
	EvCountermeasure
	EvQuarantine
	EvSession
	EvFault
	EvStaleFree
)

var kindNames = [...]string{
	EvNone:           "none",
	EvMalloc:         "malloc",
	EvFree:           "free",
	EvRemoteFree:     "remote_free",
	EvDrain:          "drain",
	EvSteal:          "steal",
	EvRefill:         "refill",
	EvFlush:          "flush",
	EvBarrier:        "barrier",
	EvEvidence:       "evidence",
	EvCountermeasure: "countermeasure",
	EvQuarantine:     "quarantine",
	EvSession:        "session",
	EvFault:          "fault",
	EvStaleFree:      "stale_free",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

const argMask = (uint64(1) << 48) - 1

// slot is one 16-byte trace record (see the seqlock protocol above).
type slot struct {
	seq  uint64
	word uint64
}

// Ring is one worker's trace ring. Writers never block and never
// allocate; a full ring overwrites its oldest events. Multiple
// goroutines may share a ring (position claims are atomic), though
// the natural grain is one ring per worker.
type Ring struct {
	rec    *Recorder
	worker uint8
	mask   uint64
	pos    uint64 // next slot index, claimed by atomic add
	slots  []slot
}

// Emit records one event. Nil-safe: a nil ring is the disabled
// recorder and returns after one branch. arg is truncated to 48 bits
// (heap addresses, counts, and site indices all fit).
func (r *Ring) Emit(kind Kind, arg uint64) {
	if r == nil {
		return
	}
	stamp := atomic.AddUint64(&r.rec.stamp, 1)
	i := (atomic.AddUint64(&r.pos, 1) - 1) & r.mask
	s := &r.slots[i]
	word := (arg & argMask) | uint64(kind)<<48 | uint64(r.worker)<<56
	atomic.StoreUint64(&s.seq, 0)
	atomic.StoreUint64(&s.word, word)
	atomic.StoreUint64(&s.seq, stamp)
}

// Len returns the number of live events in the ring (capped at its
// size once wrapped).
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	n := atomic.LoadUint64(&r.pos)
	if n > r.mask+1 {
		n = r.mask + 1
	}
	return int(n)
}

// Event is one decoded trace record.
type Event struct {
	Seq    uint64 `json:"seq"`
	Worker int    `json:"worker"`
	Kind   string `json:"kind"`
	Arg    uint64 `json:"arg"`
}

// Recorder owns the stamp counter and the rings. The zero value of
// *Recorder (nil) is the disabled recorder: Ring returns nil, Emit on
// that nil ring is one branch, Snapshot is empty.
type Recorder struct {
	stamp uint64 // Lamport clock; pad-separated from the ring map below
	_     [7]uint64

	mu    sync.Mutex
	size  int
	rings map[int]*Ring
}

// NewRecorder builds a recorder whose rings hold ringSlots events
// each (rounded up to a power of two; minimum 16).
func NewRecorder(ringSlots int) *Recorder {
	size := 16
	for size < ringSlots {
		size <<= 1
	}
	return &Recorder{size: size, rings: map[int]*Ring{}}
}

// Ring returns the ring for this worker id (0..255), creating it on
// first use. Returns nil on a nil recorder, so callers can hold the
// result unconditionally and rely on Emit's nil check.
func (rec *Recorder) Ring(worker int) *Ring {
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if r, ok := rec.rings[worker]; ok {
		return r
	}
	r := &Ring{
		rec:    rec,
		worker: uint8(worker),
		mask:   uint64(rec.size) - 1,
		slots:  make([]slot, rec.size),
	}
	rec.rings[worker] = r
	return r
}

// Snapshot collects every valid slot from every ring and returns the
// merged timeline sorted by stamp — a total order, monotone per
// worker. Safe concurrently with writers: slots mid-write fail the
// seqlock check and are skipped. Returns nil on a nil recorder.
func (rec *Recorder) Snapshot() []Event {
	if rec == nil {
		return nil
	}
	rec.mu.Lock()
	rings := make([]*Ring, 0, len(rec.rings))
	for _, r := range rec.rings {
		rings = append(rings, r)
	}
	rec.mu.Unlock()

	var evs []Event
	for _, r := range rings {
		for i := range r.slots {
			s := &r.slots[i]
			seq1 := atomic.LoadUint64(&s.seq)
			if seq1 == 0 {
				continue
			}
			word := atomic.LoadUint64(&s.word)
			seq2 := atomic.LoadUint64(&s.seq)
			if seq1 != seq2 {
				continue
			}
			evs = append(evs, Event{
				Seq:    seq1,
				Worker: int(word >> 56),
				Kind:   Kind(word >> 48 & 0xFF).String(),
				Arg:    word & argMask,
			})
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Seq < evs[j].Seq })
	return evs
}

// Tail returns the last n events of the merged timeline.
func (rec *Recorder) Tail(n int) []Event {
	evs := rec.Snapshot()
	if len(evs) > n {
		evs = evs[len(evs)-n:]
	}
	return evs
}

// TraceJSON marshals the merged timeline (an empty recorder renders
// as [], not null).
func (rec *Recorder) TraceJSON() ([]byte, error) {
	evs := rec.Snapshot()
	if evs == nil {
		evs = []Event{}
	}
	return json.Marshal(evs)
}
