package obs

import (
	"encoding/json"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// The metrics registry: one tree every layer publishes into, snapshot
// as JSON. Names are dotted layer-qualified ("core.mallocs",
// "vmem.faults", "serve.session_ns"); labels distinguish instances of
// the same metric ("core.live_objects{shard=2}"). Registration is
// idempotent per full name: asking for an existing counter returns
// the same counter, re-registering a gauge replaces its reader — so
// epoch-restarting supervisors can re-publish a fresh heap under the
// same names without leaking dead entries.
//
// Three metric kinds cover the stack:
//
//   - Counter: a monotone atomic uint64 the instrumented code adds to.
//     Nil-safe (Add on a nil *Counter is a no-op), so layers can hold
//     one unconditionally and only pay when a registry wired it.
//   - Gauge: a pull — a func() float64 evaluated at snapshot time,
//     used to project existing Stats structs (which the layers already
//     maintain atomically) into the tree without double-counting.
//   - Histogram: a *Histogram published by reference; the snapshot
//     records its Summary.

// Label is one name=value metric dimension.
type Label struct {
	Name  string
	Value string
}

// Counter is a monotone atomic counter. The zero value is usable; a
// nil *Counter is silently inert so instrumented code never needs to
// know whether telemetry is wired.
type Counter struct {
	v uint64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		atomic.AddUint64(&c.v, n)
	}
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return atomic.LoadUint64(&c.v)
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHist
)

type metric struct {
	name    string // full name with encoded labels — the map key
	base    string
	labels  []Label
	kind    metricKind
	counter *Counter
	gauge   func() float64
	hist    *Histogram
}

// Registry is the metric tree. The zero value is not usable — build
// with NewRegistry — but a nil *Registry is: every registration
// method on nil returns an inert handle, so wiring code can pass an
// optional registry straight through.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
	order   []string // registration order, for stable snapshots
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

// fullName encodes name plus sorted labels into the canonical key:
// name{k1=v1,k2=v2}.
func fullName(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) register(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.metrics[m.name]; ok {
		if old.kind == m.kind {
			// Idempotent: counters return the existing instance,
			// gauges and histograms rebind to the new source.
			if m.kind != kindCounter {
				old.gauge, old.hist = m.gauge, m.hist
			}
			return old
		}
		// Kind changed under the same name: replace outright.
		r.metrics[m.name] = m
		return m
	}
	r.metrics[m.name] = m
	r.order = append(r.order, m.name)
	return m
}

// Counter registers (or retrieves) the counter with this name+labels.
// Returns nil — an inert counter — on a nil registry.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(&metric{
		name: fullName(name, labels), base: name, labels: labels,
		kind: kindCounter, counter: &Counter{},
	})
	return m.counter
}

// Gauge registers fn as a pull gauge, evaluated at each snapshot.
// fn must be safe to call from the snapshotting goroutine (read its
// sources atomically if they are written concurrently). No-op on a
// nil registry.
func (r *Registry) Gauge(name string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(&metric{
		name: fullName(name, labels), base: name, labels: labels,
		kind: kindGauge, gauge: fn,
	})
}

// Histogram registers h under this name+labels. No-op on a nil
// registry or nil histogram.
func (r *Registry) Histogram(name string, h *Histogram, labels ...Label) {
	if r == nil || h == nil {
		return
	}
	r.register(&metric{
		name: fullName(name, labels), base: name, labels: labels,
		kind: kindHist, hist: h,
	})
}

// MetricPoint is one snapshot entry. Exactly one of Value (counters
// and gauges) or Hist is populated.
type MetricPoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  *float64          `json:"value,omitempty"`
	Hist   *HistSummary      `json:"hist,omitempty"`
}

// Snapshot is a point-in-time copy of the whole tree, ordered by
// registration. Counters and histograms are read atomically; gauges
// are pulled. JSON-marshals to {"metrics": [...]}.
type Snapshot struct {
	Metrics []MetricPoint `json:"metrics"`
}

// Snapshot reads every metric. Safe to call while the instrumented
// code runs; per-metric values are torn-free, cross-metric skew is
// bounded by the walk (the documented consistency model). Returns an
// empty snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{Metrics: []MetricPoint{}}
	}
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.order))
	for _, name := range r.order {
		ms = append(ms, r.metrics[name])
	}
	r.mu.Unlock()

	snap := Snapshot{Metrics: make([]MetricPoint, 0, len(ms))}
	for _, m := range ms {
		p := MetricPoint{Name: m.base}
		if len(m.labels) > 0 {
			p.Labels = make(map[string]string, len(m.labels))
			for _, l := range m.labels {
				p.Labels[l.Name] = l.Value
			}
		}
		switch m.kind {
		case kindCounter:
			v := float64(m.counter.Value())
			p.Value = &v
		case kindGauge:
			v := m.gauge()
			p.Value = &v
		case kindHist:
			s := m.hist.Summary()
			p.Hist = &s
		}
		snap.Metrics = append(snap.Metrics, p)
	}
	return snap
}

// Get returns the snapshot value of the named metric (labels encoded
// as in fullName) and whether it exists. Histograms report their
// count. Mostly a test and smoke-gate convenience.
func (r *Registry) Get(name string, labels ...Label) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	m, ok := r.metrics[fullName(name, labels)]
	r.mu.Unlock()
	if !ok {
		return 0, false
	}
	switch m.kind {
	case kindCounter:
		return float64(m.counter.Value()), true
	case kindGauge:
		return m.gauge(), true
	default:
		return float64(m.hist.Count()), true
	}
}

// MarshalJSON renders the snapshot; the zero snapshot renders as an
// empty metric list, not null.
func (s Snapshot) MarshalJSON() ([]byte, error) {
	type alias Snapshot
	a := alias(s)
	if a.Metrics == nil {
		a.Metrics = []MetricPoint{}
	}
	return json.Marshal(a)
}
