package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestObsRegistrySnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("core.mallocs")
	c.Add(41)
	c.Inc()
	reg.Gauge("vmem.pages_mapped", func() float64 { return 12 })
	var h Histogram
	h.Record(100)
	h.Record(1000)
	reg.Histogram("serve.session_ns", &h, Label{"worker", "3"})
	reg.Counter("core.live_objects", Label{"shard", "0"}).Add(7)

	snap := reg.Snapshot()
	if len(snap.Metrics) != 4 {
		t.Fatalf("snapshot holds %d metrics, want 4", len(snap.Metrics))
	}
	// Registration order is preserved.
	if snap.Metrics[0].Name != "core.mallocs" || *snap.Metrics[0].Value != 42 {
		t.Fatalf("metric 0 = %+v, want core.mallocs=42", snap.Metrics[0])
	}
	if snap.Metrics[1].Name != "vmem.pages_mapped" || *snap.Metrics[1].Value != 12 {
		t.Fatalf("metric 1 = %+v, want vmem.pages_mapped=12", snap.Metrics[1])
	}
	if snap.Metrics[2].Hist == nil || snap.Metrics[2].Hist.Count != 2 {
		t.Fatalf("metric 2 = %+v, want histogram with 2 samples", snap.Metrics[2])
	}
	if snap.Metrics[2].Labels["worker"] != "3" {
		t.Fatalf("labels = %v, want worker=3", snap.Metrics[2].Labels)
	}

	// The snapshot round-trips through JSON.
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back struct {
		Metrics []MetricPoint `json:"metrics"`
	}
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Metrics) != 4 || back.Metrics[3].Labels["shard"] != "0" {
		t.Fatalf("round-trip lost metrics: %s", raw)
	}

	// Get resolves by name+labels.
	if v, ok := reg.Get("core.live_objects", Label{"shard", "0"}); !ok || v != 7 {
		t.Fatalf("Get(core.live_objects{shard=0}) = %v,%v", v, ok)
	}
	if _, ok := reg.Get("core.live_objects", Label{"shard", "9"}); ok {
		t.Fatal("Get found a label set never registered")
	}
}

func TestObsRegistryIdempotentAndNilSafe(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("heal.failures")
	b := reg.Counter("heal.failures")
	if a != b {
		t.Fatal("re-registering a counter returned a different instance")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("aliased counters diverged")
	}
	// Gauge re-registration rebinds (epoch restart republishes a fresh
	// heap under the same name) without duplicating the entry.
	reg.Gauge("detect.evidence", func() float64 { return 1 })
	reg.Gauge("detect.evidence", func() float64 { return 2 })
	if v, _ := reg.Get("detect.evidence"); v != 2 {
		t.Fatalf("rebound gauge reads %v, want 2", v)
	}
	if n := len(reg.Snapshot().Metrics); n != 2 {
		t.Fatalf("snapshot holds %d metrics, want 2", n)
	}

	// A nil registry hands out inert handles: nothing panics, nothing
	// records — the disabled telemetry path for every layer.
	var nilReg *Registry
	c := nilReg.Counter("x")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatal("nil-registry counter recorded")
	}
	nilReg.Gauge("y", func() float64 { return 1 })
	nilReg.Histogram("z", &Histogram{})
	if s := nilReg.Snapshot(); len(s.Metrics) != 0 {
		t.Fatal("nil registry produced metrics")
	}
	if _, ok := nilReg.Get("x"); ok {
		t.Fatal("nil registry resolved a metric")
	}
}

func TestObsRegistryConcurrent(t *testing.T) {
	// Registration, counting, and snapshotting from many goroutines:
	// the registry must stay consistent and race-free (the /metrics
	// endpoint snapshots while workers publish).
	reg := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("shared.counter")
			for i := 0; i < 1000; i++ {
				c.Inc()
				if i%100 == 0 {
					reg.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	if v, _ := reg.Get("shared.counter"); v != 8000 {
		t.Fatalf("shared counter %v, want 8000", v)
	}
}
