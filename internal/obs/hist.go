// Package obs is the telemetry plane shared by every layer of the
// stack: a metrics registry of named counters, gauges, and histograms
// snapshot-able as one JSON tree (registry.go), and a flight recorder
// of per-worker lock-free trace rings merged into one stamped timeline
// (trace.go). It imports nothing but the standard library, so vmem,
// core, detect, replicate, serve, and heal can all publish into it
// without layering cycles. Everything here follows the TLB-hook
// discipline: the zero value is off, and "off" costs exactly one nil
// check on the hot path — no allocation, no atomic, no call.
package obs

import (
	"math/bits"
	"sync/atomic"
)

// Fixed-bucket log-scale histogram (promoted from internal/serve).
// Recording a sample is one bits.Len64 and a handful of atomic adds —
// no allocation, no locking — so the measurement cost cannot distort
// the tail it is measuring. All mutation and all reads are atomic:
// a histogram being recorded into by worker goroutines can be
// snapshot mid-run (the /metrics endpoint does) without tearing and
// without tripping the race detector. The cross-field snapshot is
// best-effort — counts and total may be offset by in-flight samples —
// which is the documented consistency model for live scrapes;
// quiescent reads (after workers join) are exact.
//
// Buckets are logarithmic with histSubBits bits of sub-bucket
// resolution: values below 2^histSubBits get exact buckets, and every
// power-of-two decade above splits into 2^histSubBits sub-buckets, so
// the relative quantization error is bounded by 2^-histSubBits
// (~6% at 4 bits) at every magnitude — tight enough to grade p50/p99/
// p999 in nanoseconds from microseconds to minutes with one fixed
// 8 KB counter array.

const (
	histSubBits = 4
	histSub     = 1 << histSubBits
	histBuckets = (64 - histSubBits + 1) * histSub
)

// Histogram counts non-negative int64 samples (typically latencies in
// nanoseconds). The zero value is ready to use.
type Histogram struct {
	counts [histBuckets]uint64
	total  uint64
	max    int64
}

// bucketOf maps a sample to its bucket index.
func bucketOf(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(v) - 1 - histSubBits
	mantissa := v >> uint(exp) // in [histSub, 2*histSub)
	return int(uint64(exp+1)*histSub + (mantissa - histSub))
}

// bucketLow is the smallest sample value mapping to bucket i.
func bucketLow(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	exp := i/histSub - 1
	return uint64(histSub+i%histSub) << uint(exp)
}

// Record adds one sample. Negative samples (a clock anomaly the
// monotonic reading should preclude) clamp to zero rather than
// corrupting a bucket index.
func (h *Histogram) Record(ns int64) {
	if ns < 0 {
		ns = 0
	}
	atomic.AddUint64(&h.counts[bucketOf(uint64(ns))], 1)
	atomic.AddUint64(&h.total, 1)
	for {
		cur := atomic.LoadInt64(&h.max)
		if ns <= cur || atomic.CompareAndSwapInt64(&h.max, cur, ns) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return atomic.LoadUint64(&h.total) }

// Max returns the largest recorded sample exactly (not quantized).
func (h *Histogram) Max() int64 { return atomic.LoadInt64(&h.max) }

// Merge folds other's samples into h. Both histograms are read and
// written atomically, so merging a still-live histogram is safe
// (samples recorded during the merge may or may not be included).
func (h *Histogram) Merge(other *Histogram) {
	var moved uint64
	for i := range other.counts {
		if c := atomic.LoadUint64(&other.counts[i]); c != 0 {
			atomic.AddUint64(&h.counts[i], c)
			moved += c
		}
	}
	atomic.AddUint64(&h.total, moved)
	om := atomic.LoadInt64(&other.max)
	for {
		cur := atomic.LoadInt64(&h.max)
		if om <= cur || atomic.CompareAndSwapInt64(&h.max, cur, om) {
			return
		}
	}
}

// Quantile returns the sample value at quantile q in [0, 1] — the
// midpoint of the bucket holding the q-th sample, so the result is
// within one sub-bucket width of the true order statistic. An empty
// histogram returns 0; q=1 (and more generally the rank of the last
// sample) returns the exact max — on sparse runs (fewer than 1/(1-q)
// samples, e.g. p999 of a short soak) every high quantile degenerates
// to the final order statistic and the bucket midpoint would
// misreport it.
func (h *Histogram) Quantile(q float64) int64 {
	total := atomic.LoadUint64(&h.total)
	if total == 0 {
		return 0
	}
	max := atomic.LoadInt64(&h.max)
	if q >= 1 {
		return max
	}
	if q < 0 {
		q = 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	if rank == total-1 {
		// The rank-th order statistic IS the largest sample, which is
		// tracked exactly.
		return max
	}
	var seen uint64
	for i := range h.counts {
		seen += atomic.LoadUint64(&h.counts[i])
		if seen > rank {
			lo := bucketLow(i)
			hi := lo
			if i+1 < histBuckets {
				hi = bucketLow(i+1) - 1
			}
			mid := lo + (hi-lo)/2
			if int64(mid) > max {
				return max
			}
			return int64(mid)
		}
	}
	return max
}

// Summary condenses a histogram for a metrics snapshot.
type HistSummary struct {
	Count uint64  `json:"count"`
	Max   int64   `json:"max"`
	P50   int64   `json:"p50"`
	P99   int64   `json:"p99"`
	P999  int64   `json:"p999"`
	Mean  float64 `json:"mean"`
}

// Summary computes the snapshot quantiles. Like Quantile, reads are
// atomic and best-effort consistent when the histogram is live.
func (h *Histogram) Summary() HistSummary {
	s := HistSummary{
		Count: h.Count(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
	if s.Count > 0 {
		var sum float64
		for i := range h.counts {
			if c := atomic.LoadUint64(&h.counts[i]); c != 0 {
				lo := bucketLow(i)
				hi := lo
				if i+1 < histBuckets {
					hi = bucketLow(i+1) - 1
				}
				sum += float64(c) * float64(lo+(hi-lo)/2)
			}
		}
		s.Mean = sum / float64(s.Count)
	}
	return s
}
