package leaalloc

import (
	"errors"
	"testing"

	"diehard/internal/heap"
	"diehard/internal/rng"
	"diehard/internal/vmem"
)

func newHeap(t *testing.T, size int) *Heap {
	t.Helper()
	if size == 0 {
		size = 4 << 20
	}
	h, err := New(Options{HeapSize: size})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestMallocFreeRoundTrip(t *testing.T) {
	h := newHeap(t, 0)
	p, err := h.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Mem().Store64(p, 0xfeedface); err != nil {
		t.Fatal(err)
	}
	v, _ := h.Mem().Load64(p)
	if v != 0xfeedface {
		t.Fatalf("got %#x", v)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
}

func TestHeaderIsAdjacentToPayload(t *testing.T) {
	// The defining hazard of the Lea layout: the boundary tag lives at
	// p-8, reachable by a one-byte underflow or a previous chunk's
	// overflow.
	h := newHeap(t, 0)
	p, _ := h.Malloc(24)
	hdr, err := h.Mem().Load64(p - 8)
	if err != nil {
		t.Fatalf("header must be in addressable heap memory: %v", err)
	}
	if hdr&flagInUse == 0 {
		t.Fatal("header does not mark chunk in use")
	}
	if int(hdr&^flagMask) != 32 { // align8(24+8)
		t.Fatalf("header size = %d, want 32", hdr&^flagMask)
	}
}

func TestFreedMemoryIsReusedSoon(t *testing.T) {
	// LIFO-ish reuse is what makes dangling pointers deadly with this
	// allocator: the very next same-size malloc gets the freed chunk.
	h := newHeap(t, 0)
	p, _ := h.Malloc(64)
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	q, _ := h.Malloc(64)
	if p != q {
		t.Fatalf("freed chunk not reused: %#x then %#x", p, q)
	}
}

func TestSplitAndCoalesce(t *testing.T) {
	h := newHeap(t, 0)
	p, _ := h.Malloc(1000)
	barrier, _ := h.Malloc(16) // keeps p away from the wilderness
	used := h.ArenaUsed()
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	// Two smaller allocations should be carved from the freed chunk
	// without growing the arena.
	a, _ := h.Malloc(400)
	b, _ := h.Malloc(400)
	if h.ArenaUsed() != used {
		t.Fatalf("arena grew from %d to %d despite a free chunk fitting both", used, h.ArenaUsed())
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(b); err != nil {
		t.Fatal(err)
	}
	// After coalescing, the original large allocation must fit again.
	q, err := h.Malloc(1000)
	if err != nil {
		t.Fatal(err)
	}
	if h.ArenaUsed() != used {
		t.Fatalf("coalescing failed: arena %d -> %d", used, h.ArenaUsed())
	}
	if q != p {
		t.Fatalf("coalesced chunk at %#x, originally %#x", q, p)
	}
	_ = barrier
}

func TestBackwardCoalesce(t *testing.T) {
	h := newHeap(t, 0)
	a, _ := h.Malloc(100)
	b, _ := h.Malloc(100)
	c, _ := h.Malloc(100) // keeps b away from the wilderness
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(b); err != nil { // must merge backward into a
		t.Fatal(err)
	}
	// A 200-byte request fits only in the merged chunk.
	q, err := h.Malloc(200)
	if err != nil {
		t.Fatal(err)
	}
	if q != a {
		t.Fatalf("merged chunk should start at a=%#x, got %#x", a, q)
	}
	_ = c
}

func TestOutOfMemory(t *testing.T) {
	h := newHeap(t, 16*vmem.PageSize)
	var last error
	for i := 0; i < 10000; i++ {
		if _, err := h.Malloc(4096); err != nil {
			last = err
			break
		}
	}
	if !errors.Is(last, heap.ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", last)
	}
}

func TestSizeOf(t *testing.T) {
	h := newHeap(t, 0)
	p, _ := h.Malloc(100)
	size, ok := h.SizeOf(p)
	if !ok || size < 100 {
		t.Fatalf("SizeOf = %d,%v", size, ok)
	}
	if _, ok := h.SizeOf(0xdeadbeef); ok {
		t.Fatal("SizeOf of wild pointer should fail")
	}
	_ = h.Free(p)
	if _, ok := h.SizeOf(p); ok {
		t.Fatal("SizeOf of freed chunk should fail")
	}
}

func TestOverflowSmashesNextHeader(t *testing.T) {
	// Table 1, "buffer overflows x GNU libc = undefined": writing past
	// an object corrupts the next boundary tag, and the allocator
	// eventually dies on it.
	h := newHeap(t, 0)
	a, _ := h.Malloc(24)
	b, _ := h.Malloc(24)
	// Overflow a by 16 bytes: wrecks b's header.
	if err := h.Mem().Memset(a, 0x41, 40); err != nil {
		t.Fatalf("the overflow itself must not fault: %v", err)
	}
	err := h.Free(b)
	if err == nil {
		// Depending on layout the corruption may surface at the next
		// malloc instead.
		_, err = h.Malloc(24)
	}
	if err == nil {
		t.Fatal("corrupted boundary tag went completely unnoticed")
	}
	if !heap.IsCrash(err) {
		t.Fatalf("expected crash-class error, got %v", err)
	}
}

func TestDoubleFreeCorrupts(t *testing.T) {
	// Table 1, "double frees x GNU libc = undefined": the chunk enters
	// the bin twice; subsequent mallocs hand out overlapping memory or
	// the allocator trips over the cycle.
	h := newHeap(t, 0)
	p, _ := h.Malloc(64)
	if _, err := h.Malloc(64); err != nil { // barrier: keep p binned, not wilderness-absorbed
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		if heap.IsCrash(err) {
			return // detected corruption: also an authentic outcome
		}
		t.Fatalf("double free returned unexpected error class: %v", err)
	}
	a, err1 := h.Malloc(64)
	b, err2 := h.Malloc(64)
	if err1 == nil && err2 == nil && a == b {
		return // overlapping allocations: the classic undefined outcome
	}
	if heap.IsCrash(err1) || heap.IsCrash(err2) {
		return // or the allocator crashed on its corrupted list
	}
	t.Fatalf("double free had no observable consequence: a=%#x b=%#x err1=%v err2=%v", a, b, err1, err2)
}

func TestInvalidFreeCrashes(t *testing.T) {
	h := newHeap(t, 0)
	p, _ := h.Malloc(64)
	err := h.Free(p + 4) // interior pointer: garbage header
	if err == nil {
		t.Fatal("invalid free went unnoticed")
	}
	if !heap.IsCrash(err) {
		t.Fatalf("expected crash-class error, got %v", err)
	}
	if err := h.Free(0xdeadbee0); err == nil {
		t.Fatal("wild free went unnoticed")
	}
}

func TestFreeNull(t *testing.T) {
	h := newHeap(t, 0)
	if err := h.Free(heap.Null); err != nil {
		t.Fatalf("free(NULL) must be a no-op: %v", err)
	}
}

func TestDanglingWriteCorruptsFreeList(t *testing.T) {
	// A write through a dangling pointer lands on the free chunk's
	// fd/bk links; the next unlink follows the corrupted link.
	h := newHeap(t, 0)
	p, _ := h.Malloc(64)
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	// Dangling write wrecks fd and bk.
	if err := h.Mem().Store64(p, 0xdead0000dead0000); err != nil {
		t.Fatal(err)
	}
	if err := h.Mem().Store64(p+8, 0xbeef0000beef0000); err != nil {
		t.Fatal(err)
	}
	// Force a bin search that must traverse/unlink the wrecked chunk.
	var sawError bool
	for i := 0; i < 4; i++ {
		if _, err := h.Malloc(64); err != nil {
			sawError = true
			break
		}
	}
	if !sawError {
		t.Skip("corrupted links not exercised by this layout") // defensive; should not happen
	}
}

func TestChecksumIntegrityUnderRandomWorkload(t *testing.T) {
	// Correctness under heavy churn: every live object holds a pattern
	// derived from its id; no two live objects may overlap.
	h := newHeap(t, 8<<20)
	r := rng.NewSeeded(99)
	type obj struct {
		p    heap.Ptr
		id   uint64
		size int
	}
	var live []obj
	check := func(o obj) {
		v, err := h.Mem().Load64(o.p)
		if err != nil {
			t.Fatal(err)
		}
		if v != o.id {
			t.Fatalf("object %d at %#x corrupted: %#x", o.id, o.p, v)
		}
	}
	for op := uint64(0); op < 30000; op++ {
		if len(live) > 0 && r.Intn(100) < 48 {
			i := r.Intn(len(live))
			check(live[i])
			if err := h.Free(live[i].p); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		size := 8 + r.Intn(500)
		p, err := h.Malloc(size)
		if errors.Is(err, heap.ErrOutOfMemory) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Mem().Store64(p, op); err != nil {
			t.Fatal(err)
		}
		live = append(live, obj{p: p, id: op, size: size})
	}
	for _, o := range live {
		check(o)
	}
}

func TestTinyHeapRejected(t *testing.T) {
	if _, err := New(Options{HeapSize: 100}); err == nil {
		t.Fatal("tiny heap must be rejected")
	}
}

func BenchmarkMallocFreePair(b *testing.B) {
	h, err := New(Options{HeapSize: 32 << 20})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, _ := h.Malloc(64)
		_ = h.Free(p)
	}
}
