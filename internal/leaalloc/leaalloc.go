// Package leaalloc implements a Lea-style (dlmalloc/GNU libc) memory
// allocator over simulated memory: boundary tags adjacent to payloads,
// segregated free-list bins threaded through the free chunks themselves,
// and coalescing of neighbors.
//
// This is the paper's primary baseline ("malloc" in Figure 5, "GNU libc"
// in Table 1), and it is implemented to be faithfully corruptible: the
// 8-byte chunk header sits immediately before each payload, and free
// chunks carry their list links and size footer in user-reachable memory.
// A one-byte overflow really smashes the next chunk's boundary tag; a
// double free really threads a chunk into a bin twice; a dangling write
// really corrupts whatever chunk reuses the memory. The allocator
// detects blatant inconsistencies the way glibc's assertions do — by
// failing with a heap-corruption error, the moral equivalent of
// "malloc(): corrupted size" followed by abort — and otherwise behaves
// as undefined as the original.
package leaalloc

import (
	"fmt"
	"math/bits"

	"diehard/internal/heap"
	"diehard/internal/vmem"
)

const (
	headerSize = 8
	// minChunk holds header + fd + bk + footer.
	minChunk = 32
	// flagInUse marks the chunk itself allocated.
	flagInUse = 1
	// flagPrevInUse marks the physically preceding chunk allocated.
	flagPrevInUse = 2
	flagMask      = 7
	// numBins segregates free chunks by size.
	numBins = 64
	// walkCap bounds free-list walks; a longer walk means the list has
	// been corrupted into a cycle (e.g. by a double free), which the
	// real allocator would eventually crash on too.
	walkCap = 100000
)

// DefaultHeapSize matches the budget given to DieHard in the paper's
// experiments so baselines and DieHard manage the same arena size.
const DefaultHeapSize = 384 << 20

// Options configures the allocator.
type Options struct {
	// HeapSize is the arena size; defaults to DefaultHeapSize.
	HeapSize int
	// EnableTLB turns on TLB simulation in the underlying address space.
	EnableTLB bool
}

// Heap is a Lea-style allocator instance. Not safe for concurrent use.
type Heap struct {
	space      *vmem.Space
	arenaStart uint64
	arenaEnd   uint64
	top        uint64 // wilderness pointer: first never-carved byte
	topPrev    bool   // is the chunk physically below top in use?
	bins       [numBins]heap.Ptr
	stats      heap.Stats
}

var _ heap.Allocator = (*Heap)(nil)

// New creates a Lea-style heap.
func New(opts Options) (*Heap, error) {
	size := opts.HeapSize
	if size == 0 {
		size = DefaultHeapSize
	}
	if size < 16*vmem.PageSize {
		return nil, fmt.Errorf("leaalloc: heap size %d too small", size)
	}
	space := vmem.NewSpace()
	if opts.EnableTLB {
		space.EnableTLB()
	}
	base, err := space.Map(size, vmem.ProtRW)
	if err != nil {
		return nil, err
	}
	return &Heap{
		space:      space,
		arenaStart: base,
		arenaEnd:   base + uint64(size),
		top:        base,
		topPrev:    true,
	}, nil
}

func align8(n int) int { return (n + 7) &^ 7 }

// binIndex buckets chunk sizes: exact 8-byte bins below 512 bytes, then
// logarithmic bins, like dlmalloc's small/large split.
func binIndex(size int) int {
	if size < 512 {
		return size >> 4 // 32..511 -> bins 2..31
	}
	i := 26 + bits.Len(uint(size))
	if i >= numBins {
		i = numBins - 1
	}
	return i
}

// chunk header helpers; every access goes through simulated memory, so
// smashed tags are read back as smashed.

func (h *Heap) readHeader(c uint64) (size int, inUse, prevInUse bool, err error) {
	v, err := h.space.Load64(c)
	if err != nil {
		return 0, false, false, err
	}
	h.stats.WorkUnits += heap.WorkHeader
	return int(v &^ flagMask), v&flagInUse != 0, v&flagPrevInUse != 0, nil
}

func (h *Heap) writeHeader(c uint64, size int, inUse, prevInUse bool) error {
	v := uint64(size)
	if inUse {
		v |= flagInUse
	}
	if prevInUse {
		v |= flagPrevInUse
	}
	h.stats.WorkUnits += heap.WorkHeader
	return h.space.Store64(c, v)
}

// validChunk applies the sanity conditions glibc asserts on: alignment,
// plausible size, and containment in the arena.
func (h *Heap) validChunk(c uint64, size int) bool {
	return c >= h.arenaStart && c%8 == 0 &&
		size >= minChunk && size%8 == 0 &&
		c+uint64(size) <= h.top
}

// Malloc allocates size bytes: first fit from the segregated bins, then
// the wilderness.
func (h *Heap) Malloc(size int) (heap.Ptr, error) {
	if size < 0 {
		h.stats.FailedMallocs++
		return heap.Null, fmt.Errorf("leaalloc: negative allocation size %d", size)
	}
	need := align8(size + headerSize)
	if need < minChunk {
		need = minChunk
	}
	for b := binIndex(need); b < numBins; b++ {
		c, csize, err := h.searchBin(b, need)
		if err != nil {
			h.stats.FailedMallocs++
			return heap.Null, err
		}
		if c != 0 {
			p, err := h.carveChunk(c, csize, need)
			if err != nil {
				h.stats.FailedMallocs++
				return heap.Null, err
			}
			heap.CountMalloc(&h.stats, size, need-headerSize)
			return p, nil
		}
	}
	// Wilderness.
	if h.top+uint64(need) > h.arenaEnd {
		h.stats.FailedMallocs++
		return heap.Null, heap.ErrOutOfMemory
	}
	c := h.top
	if err := h.writeHeader(c, need, true, h.topPrev); err != nil {
		return heap.Null, err
	}
	h.top += uint64(need)
	h.topPrev = true
	heap.CountMalloc(&h.stats, size, need-headerSize)
	return c + headerSize, nil
}

// searchBin walks bin b for the first chunk of at least need bytes and
// unlinks it. Returns chunk 0 when the bin has no fit.
func (h *Heap) searchBin(b, need int) (c uint64, size int, err error) {
	cur := h.bins[b]
	for steps := 0; cur != 0; steps++ {
		if steps > walkCap {
			return 0, 0, &heap.CorruptionError{Detail: "leaalloc: free list cycle"}
		}
		h.stats.WorkUnits += heap.WorkFreelistStep
		csize, inUse, _, err := h.readHeader(cur)
		if err != nil {
			return 0, 0, err
		}
		if inUse || !h.validChunk(cur, csize) {
			// A free-list entry that claims to be in use or has an
			// absurd size means the heap has been smashed.
			return 0, 0, &heap.CorruptionError{Detail: "leaalloc: corrupted chunk on free list"}
		}
		if csize >= need {
			if err := h.unlink(b, cur); err != nil {
				return 0, 0, err
			}
			return cur, csize, nil
		}
		cur, err = h.space.Load64(cur + 8) // fd
		if err != nil {
			return 0, 0, err
		}
	}
	return 0, 0, nil
}

// unlink removes chunk c from bin b using the fd/bk links stored inside
// the chunk — the classic dlmalloc unlink, writes and all. Corrupted
// links produce writes through corrupted addresses, exactly the behavior
// heap exploits rely on.
func (h *Heap) unlink(b int, c uint64) error {
	fd, err := h.space.Load64(c + 8)
	if err != nil {
		return err
	}
	bk, err := h.space.Load64(c + 16)
	if err != nil {
		return err
	}
	h.stats.WorkUnits += 2 * heap.WorkFreelistStep
	if bk == 0 {
		h.bins[b] = fd
	} else if err := h.space.Store64(bk+8, fd); err != nil {
		return err
	}
	if fd != 0 {
		if err := h.space.Store64(fd+16, bk); err != nil {
			return err
		}
	}
	return nil
}

// linkIn pushes free chunk c of the given size onto its bin and writes
// the in-chunk metadata: fd, bk, and the size footer used for backward
// coalescing.
func (h *Heap) linkIn(c uint64, size int) error {
	b := binIndex(size)
	head := h.bins[b]
	if err := h.space.Store64(c+8, head); err != nil { // fd
		return err
	}
	if err := h.space.Store64(c+16, 0); err != nil { // bk
		return err
	}
	if head != 0 {
		if err := h.space.Store64(head+16, c); err != nil {
			return err
		}
	}
	if err := h.space.Store64(c+uint64(size)-8, uint64(size)); err != nil { // footer
		return err
	}
	h.stats.WorkUnits += 3 * heap.WorkFreelistStep
	h.bins[b] = c
	return nil
}

// carveChunk turns free chunk c (csize bytes) into an allocated chunk of
// need bytes, splitting off the remainder when it is large enough.
func (h *Heap) carveChunk(c uint64, csize, need int) (heap.Ptr, error) {
	_, _, prevInUse, err := h.readHeader(c)
	if err != nil {
		return heap.Null, err
	}
	if csize-need >= minChunk {
		rem := c + uint64(need)
		if err := h.writeHeader(rem, csize-need, false, true); err != nil {
			return heap.Null, err
		}
		if err := h.linkIn(rem, csize-need); err != nil {
			return heap.Null, err
		}
		if err := h.writeHeader(c, need, true, prevInUse); err != nil {
			return heap.Null, err
		}
		return c + headerSize, nil
	}
	if err := h.writeHeader(c, csize, true, prevInUse); err != nil {
		return heap.Null, err
	}
	if err := h.setNextPrevInUse(c, csize, true); err != nil {
		return heap.Null, err
	}
	return c + headerSize, nil
}

// setNextPrevInUse updates the prev-in-use flag of the chunk physically
// after (c, size), when such a chunk exists.
func (h *Heap) setNextPrevInUse(c uint64, size int, inUse bool) error {
	next := c + uint64(size)
	if next >= h.top {
		if next == h.top {
			h.topPrev = inUse
		}
		return nil
	}
	v, err := h.space.Load64(next)
	if err != nil {
		return err
	}
	if inUse {
		v |= flagPrevInUse
	} else {
		v &^= flagPrevInUse
	}
	h.stats.WorkUnits += heap.WorkHeader
	return h.space.Store64(next, v)
}

// Free releases the chunk at p, coalescing with free neighbors. Like the
// real allocator it trusts the boundary tags it reads back: smashed tags
// lead to corruption errors (the analogue of glibc's abort) or to silent
// mis-linking, and a double free threads the chunk into its bin twice.
func (h *Heap) Free(p heap.Ptr) error {
	if p == heap.Null {
		return nil
	}
	c := p - headerSize
	size, inUse, prevInUse, err := h.readHeader(c)
	if err != nil {
		return err
	}
	if !h.validChunk(c, size) {
		return &heap.CorruptionError{Detail: "leaalloc: free of invalid pointer"}
	}
	if !inUse {
		// Double free: old dlmalloc did not detect this. The chunk is
		// threaded into a bin a second time, producing the classic
		// duplicated-allocation corruption downstream.
		h.stats.Frees++
		return h.linkIn(c, size)
	}

	heap.CountFree(&h.stats, size-headerSize)

	// Coalesce backward.
	if !prevInUse {
		footer, err := h.space.Load64(c - 8)
		if err != nil {
			return err
		}
		psize := int(footer &^ flagMask)
		prev := c - uint64(psize)
		if !h.validChunk(prev, psize) {
			return &heap.CorruptionError{Detail: "leaalloc: corrupted size vs. prev_size"}
		}
		if err := h.unlink(binIndex(psize), prev); err != nil {
			return err
		}
		_, _, prevPrev, err := h.readHeader(prev)
		if err != nil {
			return err
		}
		c, size, prevInUse = prev, size+psize, prevPrev
	}

	// Coalesce forward, merging into the wilderness when adjacent.
	next := c + uint64(size)
	if next == h.top {
		h.top = c
		h.topPrev = prevInUse
		return nil
	}
	nsize, nInUse, _, err := h.readHeader(next)
	if err != nil {
		return err
	}
	if !nInUse {
		if !h.validChunk(next, nsize) {
			return &heap.CorruptionError{Detail: "leaalloc: corrupted forward chunk"}
		}
		if err := h.unlink(binIndex(nsize), next); err != nil {
			return err
		}
		size += nsize
		if c+uint64(size) == h.top {
			h.top = c
			h.topPrev = prevInUse
			return nil
		}
	}

	if err := h.writeHeader(c, size, false, prevInUse); err != nil {
		return err
	}
	if err := h.setNextPrevInUse(c, size, false); err != nil {
		return err
	}
	return h.linkIn(c, size)
}

// SizeOf reports the payload capacity of the allocated chunk at p, as
// the boundary tag describes it.
func (h *Heap) SizeOf(p heap.Ptr) (int, bool) {
	if p < h.arenaStart+headerSize || p >= h.top {
		return 0, false
	}
	c := p - headerSize
	size, inUse, _, err := h.readHeader(c)
	if err != nil || !inUse || !h.validChunk(c, size) {
		return 0, false
	}
	return size - headerSize, true
}

// Mem returns the simulated address space backing this heap.
func (h *Heap) Mem() *vmem.Space { return h.space }

// Stats returns the allocator counters.
func (h *Heap) Stats() *heap.Stats { return &h.stats }

// Name identifies the allocator in experiment reports.
func (h *Heap) Name() string { return "libc" }

// ArenaUsed reports how many bytes of the arena have ever been carved,
// a fragmentation measure used by the space experiments.
func (h *Heap) ArenaUsed() int { return int(h.top - h.arenaStart) }
