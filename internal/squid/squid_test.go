package squid

import (
	"bytes"
	"strings"
	"testing"

	"diehard/internal/apps"
	"diehard/internal/core"
	"diehard/internal/gcsim"
	"diehard/internal/heap"
	"diehard/internal/leaalloc"
)

const heapSize = 24 << 20

func serve(t *testing.T, alloc heap.Allocator, input []byte, opts Options) (string, error) {
	t.Helper()
	var out bytes.Buffer
	rt := &apps.Runtime{
		Alloc: alloc,
		Mem:   alloc.Mem(),
		Input: input,
		Out:   &out,
	}
	err := Run(rt, opts)
	return out.String(), err
}

func dieHeap(t *testing.T, seed uint64) *core.Heap {
	t.Helper()
	h, err := core.New(core.Options{HeapSize: heapSize, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func leaHeap(t *testing.T) *leaalloc.Heap {
	t.Helper()
	h, err := leaalloc.New(leaalloc.Options{HeapSize: heapSize})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func gcHeap(t *testing.T) *gcsim.Heap {
	t.Helper()
	h, err := gcsim.New(gcsim.Options{HeapSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestWellFormedTrafficEverywhere(t *testing.T) {
	input := GoodInput(800)
	ref, err := serve(t, dieHeap(t, 1), input, Options{})
	if err != nil {
		t.Fatalf("diehard: %v", err)
	}
	if !strings.Contains(ref, "hits=") || strings.Contains(ref, "hits=0 ") {
		t.Fatalf("no cache hits in %q", ref)
	}
	leaOut, err := serve(t, leaHeap(t), input, Options{})
	if err != nil {
		t.Fatalf("lea: %v", err)
	}
	gcOut, err := serve(t, gcHeap(t), input, Options{})
	if err != nil {
		t.Fatalf("gc: %v", err)
	}
	if leaOut != ref || gcOut != ref {
		t.Fatalf("allocators disagree on well-formed traffic:\n%q\n%q\n%q", ref, leaOut, gcOut)
	}
}

func TestIllFormedInputCrashesLea(t *testing.T) {
	// §7.3 "Real Faults": with the GNU libc allocator, Squid crashes
	// with a segmentation fault.
	_, err := serve(t, leaHeap(t), IllFormedInput(900), Options{})
	if err == nil {
		t.Fatal("ill-formed input did not crash the boundary-tag allocator")
	}
	if !heap.IsCrash(err) && err != apps.ErrHang {
		t.Fatalf("unexpected failure class: %v", err)
	}
}

func TestIllFormedInputCrashesGC(t *testing.T) {
	// ... and also with the Boehm-Demers-Weiser collector.
	h := gcHeap(t)
	_, err := serve(t, h, IllFormedInput(900), Options{})
	if err == nil {
		t.Fatal("ill-formed input did not crash the collector baseline")
	}
	if !heap.IsCrash(err) && err != apps.ErrHang {
		t.Fatalf("unexpected failure class: %v", err)
	}
}

func TestIllFormedInputSurvivesDieHard(t *testing.T) {
	// "Using DieHard in stand-alone mode, the overflow has no effect."
	// Probabilistic: verify across seeds that survival is the norm.
	survived := 0
	const trials = 20
	for seed := uint64(1); seed <= trials; seed++ {
		out, err := serve(t, dieHeap(t, seed), IllFormedInput(900), Options{})
		if err == nil && strings.Contains(out, "squid:") {
			survived++
		}
	}
	if survived < trials*8/10 {
		t.Fatalf("DieHard survived only %d/%d runs", survived, trials)
	}
}

func TestSafeCopyDefusesTheBugDeterministically(t *testing.T) {
	// §4.4: with the checked strcpy interposed, the overflow is
	// truncated at the object boundary on every run.
	for seed := uint64(1); seed <= 10; seed++ {
		out, err := serve(t, dieHeap(t, seed), IllFormedInput(900), Options{UseSafeCopy: true})
		if err != nil {
			t.Fatalf("seed %d: checked copy still failed: %v", seed, err)
		}
		if !strings.Contains(out, "squid:") {
			t.Fatalf("seed %d: missing stats line", seed)
		}
	}
}

func TestSafeCopyRequiresBounds(t *testing.T) {
	if _, err := serve(t, leaHeap(t), GoodInput(10), Options{UseSafeCopy: true}); err == nil {
		t.Fatal("safe copy should be rejected without bounds support")
	}
}

func TestPurgeActuallyRemoves(t *testing.T) {
	input := []byte("GET http://a/x\nGET http://a/x\nPURGE http://a/x\nGET http://a/x\n")
	out, err := serve(t, dieHeap(t, 3), input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "hits=1 misses=2 purges=1") {
		t.Fatalf("purge semantics wrong: %q", out)
	}
}

func TestMalformedLinesIgnored(t *testing.T) {
	input := []byte("\nGARBAGE\nGET http://a/x\n\nBADLINE NOURL MORE\nGET http://a/x\n")
	out, err := serve(t, dieHeap(t, 3), input, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "hits=1 misses=1") {
		t.Fatalf("malformed lines mishandled: %q", out)
	}
}
