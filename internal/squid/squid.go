// Package squid implements a miniature web-cache server with the buffer
// overflow of Squid 2.3s5 that §7.3 of the paper uses as its real-fault
// case study: an ill-formed request whose URL exceeds the cache entry's
// fixed key buffer is copied in with an unchecked strcpy.
//
// The entry layout places the 64-byte key buffer at the end of the
// 88-byte entry, as the original effectively did. The consequences then
// fall out of each allocator's geometry, with no per-allocator code:
//
//   - GNU-libc baseline: the overflow runs past the chunk payload and
//     smashes the next boundary tag; the allocator dies on a subsequent
//     malloc or free — the crash the paper observed.
//   - BDW-GC baseline: the overflow runs into the neighboring object in
//     the same block, corrupting another entry's chain pointer; the
//     next traversal of that bucket chases a wild pointer and faults —
//     also as observed.
//   - DieHard: the entry occupies a 128-byte class slot; the spill
//     lands on the following slot, which is free with high probability
//     in a heap at most 1/M full, so "the overflow has no effect".
//
// Run with UseSafeCopy to interpose DieHard's checked strcpy (§4.4),
// which truncates the copy at the object boundary and defuses the bug
// deterministically.
package squid

import (
	"fmt"

	"diehard/internal/apps"
	"diehard/internal/heap"
	"diehard/internal/libc"
	"diehard/internal/vmem"
)

const (
	// keySize is the fixed URL buffer inside a cache entry; URLs longer
	// than keySize-1 bytes overflow it.
	keySize = 64
	// entrySize is hash(8) + next(8) + hits(8) + meta ptr(8) + key
	// buffer. The key buffer is the LAST field, so an overflow runs off
	// the end of the entry object.
	entrySize = 32 + keySize
	// metaSize is the companion metadata object: content pointer,
	// content length, checksum, padding. Entries and metas share a size
	// class and are allocated back to back, as the original's structs
	// effectively were.
	metaSize = 96
	// buckets is the hash-table width.
	buckets = 64
)

// Options control a server run.
type Options struct {
	// UseSafeCopy replaces the unchecked strcpy with DieHard's checked
	// replacement; requires the allocator to implement libc.Bounds.
	UseSafeCopy bool
}

// Run processes the request stream in rt.Input: lines of
// "GET <url>" or "PURGE <url>", writing one response line per request
// and a final statistics line.
func Run(rt *apps.Runtime, opts Options) error {
	g, err := newTable(rt)
	if err != nil {
		return err
	}
	defer g.release()

	var bounds libc.Bounds
	if opts.UseSafeCopy {
		b, ok := rt.Alloc.(libc.Bounds)
		if !ok {
			return fmt.Errorf("squid: allocator %s cannot resolve bounds for safe copy", rt.Alloc.Name())
		}
		bounds = b
	}

	var hits, misses, purges uint64
	respHash := uint64(14695981039346656037)
	respond := func(s string) {
		for i := 0; i < len(s); i++ {
			respHash = (respHash ^ uint64(s[i])) * 1099511628211
		}
	}

	in := rt.Input
	i := 0
	for i < len(in) {
		j := i
		for j < len(in) && in[j] != '\n' {
			j++
		}
		line := in[i:j]
		i = j + 1
		if err := rt.Step(); err != nil {
			return err
		}
		var method, url []byte
		for k := 0; k < len(line); k++ {
			if line[k] == ' ' {
				method, url = line[:k], line[k+1:]
				break
			}
		}
		if len(method) == 0 || len(url) == 0 {
			continue
		}
		// Per-request connection state and request buffer, as a real
		// proxy allocates; freed when the request completes. This churn
		// is also what drives the conservative collector's cycles.
		conn, err := rt.Alloc.Malloc(256)
		if err != nil {
			return err
		}
		if err := rt.Mem.Store64(conn, uint64(hits+misses+purges)); err != nil {
			return err
		}
		req, err := rt.Alloc.Malloc(len(url) + 1)
		if err != nil {
			return err
		}
		if err := rt.Mem.WriteBytes(req, url); err != nil {
			return err
		}
		if err := rt.Mem.Store8(req+uint64(len(url)), 0); err != nil {
			return err
		}
		switch string(method) {
		case "GET":
			found, err := g.lookup(url)
			if err != nil {
				return err
			}
			if found {
				hits++
				respond("HIT\n")
			} else {
				if err := g.insert(url, req, bounds); err != nil {
					return err
				}
				misses++
				respond("MISS\n")
			}
		case "PURGE":
			removed, err := g.purge(url)
			if err != nil {
				return err
			}
			if removed {
				purges++
			}
			respond("PURGED\n")
		}
		if err := rt.Alloc.Free(req); err != nil {
			return err
		}
		if err := rt.Alloc.Free(conn); err != nil {
			return err
		}
	}
	// Shutdown statistics: walk the entire cache, dereferencing each
	// entry's metadata and body. A corrupted meta or chain pointer
	// anywhere in the cache surfaces here at the latest.
	entries, bytesCached, sweepHash, err := g.sweepStats()
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(rt.Out,
		"squid: hits=%d misses=%d purges=%d entries=%d bytes=%d responses=%016x sweep=%016x\n",
		hits, misses, purges, entries, bytesCached, respHash, sweepHash)
	return err
}

// sweepStats traverses every bucket chain, following each entry's meta
// pointer to its cached body.
func (t *table) sweepStats() (entries int, bytesCached uint64, hash uint64, err error) {
	hash = 14695981039346656037
	for b := 0; b < buckets; b++ {
		cur, err := t.rt.Mem.Load64(t.base + uint64(8*b))
		if err != nil {
			return 0, 0, 0, err
		}
		for cur != heap.Null {
			if err := t.rt.Step(); err != nil {
				return 0, 0, 0, err
			}
			meta, err := t.rt.Mem.Load64(cur + 24)
			if err != nil {
				return 0, 0, 0, err
			}
			content, err := t.rt.Mem.Load64(meta)
			if err != nil {
				return 0, 0, 0, err
			}
			clen, err := t.rt.Mem.Load64(meta + 8)
			if err != nil {
				return 0, 0, 0, err
			}
			first, err := t.rt.Mem.Load8(content)
			if err != nil {
				return 0, 0, 0, err
			}
			last, err := t.rt.Mem.Load8(content + clen - 1)
			if err != nil {
				return 0, 0, 0, err
			}
			hash = (hash ^ uint64(first)) * 1099511628211
			hash = (hash ^ uint64(last)) * 1099511628211
			entries++
			bytesCached += clen
			cur, err = t.rt.Mem.Load64(cur + 8)
			if err != nil {
				return 0, 0, 0, err
			}
		}
	}
	return entries, bytesCached, hash, nil
}

// table is the heap-resident cache: a bucket array of entry-chain heads.
type table struct {
	rt   *apps.Runtime
	base heap.Ptr // bucket array: buckets * 8 bytes
}

type rootRegistrar interface {
	AddRoot(p heap.Ptr)
	RemoveRoot(p heap.Ptr)
}

func newTable(rt *apps.Runtime) (*table, error) {
	base, err := rt.Alloc.Malloc(8 * buckets)
	if err != nil {
		return nil, err
	}
	if err := rt.Mem.Memset(base, 0, 8*buckets); err != nil {
		return nil, err
	}
	if reg, ok := rt.Alloc.(rootRegistrar); ok {
		reg.AddRoot(base)
	}
	return &table{rt: rt, base: base}, nil
}

func (t *table) release() {
	if reg, ok := t.rt.Alloc.(rootRegistrar); ok {
		reg.RemoveRoot(t.base)
	}
	_ = t.rt.Alloc.Free(t.base)
}

func urlHash(url []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range url {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return h
}

func (t *table) head(url []byte) heap.Ptr {
	return t.base + 8*(urlHash(url)%buckets)
}

// keyEqual compares the stored key at entry e with url: the url bytes
// must match and be followed by the terminator. The comparison reads
// page-bounded chunks through the bulk path, touching exactly the pages
// a byte-at-a-time loop would touch.
func (t *table) keyEqual(e heap.Ptr, url []byte) (bool, error) {
	key := e + 32
	n := len(url) + 1
	var buf [keySize + 1]byte
	for off := 0; off < n; {
		chunk := vmem.PageSize - int((key+uint64(off))&(vmem.PageSize-1))
		if chunk > n-off {
			chunk = n - off
		}
		if chunk > len(buf) {
			chunk = len(buf)
		}
		if err := t.rt.Mem.ReadBytes(key+uint64(off), buf[:chunk]); err != nil {
			return false, err
		}
		for i := 0; i < chunk; i++ {
			k := off + i
			if k == len(url) {
				return buf[i] == 0, nil
			}
			if buf[i] != url[k] {
				return false, nil
			}
		}
		off += chunk
	}
	return false, nil
}

// lookup walks the bucket chain for url, counting a hit on the entry.
func (t *table) lookup(url []byte) (bool, error) {
	headAddr := t.head(url)
	cur, err := t.rt.Mem.Load64(headAddr)
	if err != nil {
		return false, err
	}
	for cur != heap.Null {
		if err := t.rt.Step(); err != nil {
			return false, err
		}
		eq, err := t.keyEqual(cur, url)
		if err != nil {
			return false, err
		}
		if eq {
			hitsVal, err := t.rt.Mem.Load64(cur + 16)
			if err != nil {
				return false, err
			}
			return true, t.rt.Mem.Store64(cur+16, hitsVal+1)
		}
		cur, err = t.rt.Mem.Load64(cur + 8)
		if err != nil {
			return false, err
		}
	}
	return false, nil
}

// insert allocates a cache entry and copies the URL into its fixed-size
// key buffer. THE BUG: the copy is an unchecked strcpy; a URL longer
// than the buffer overflows the entry, exactly like Squid 2.3s5 on its
// ill-formed input. With bounds != nil, DieHard's checked replacement
// caps the copy at the object's real size (§4.4).
func (t *table) insert(url []byte, req heap.Ptr, bounds libc.Bounds) error {
	e, err := t.rt.Alloc.Malloc(entrySize)
	if err != nil {
		return err
	}
	// Companion metadata and the cached body, allocated right after the
	// entry as a real cache populates an object on a miss.
	meta, err := t.rt.Alloc.Malloc(metaSize)
	if err != nil {
		return err
	}
	contentLen := 200 + int(urlHash(url)%600)
	content, err := t.rt.Alloc.Malloc(contentLen)
	if err != nil {
		return err
	}
	if err := t.rt.Mem.Memset(content, byte(urlHash(url)), contentLen); err != nil {
		return err
	}
	if err := t.rt.Mem.Store64(meta, content); err != nil {
		return err
	}
	if err := t.rt.Mem.Store64(meta+8, uint64(contentLen)); err != nil {
		return err
	}
	if err := t.rt.Mem.Store64(meta+16, urlHash(url)); err != nil {
		return err
	}

	headAddr := t.head(url)
	oldHead, err := t.rt.Mem.Load64(headAddr)
	if err != nil {
		return err
	}
	if err := t.rt.Mem.Store64(e, urlHash(url)); err != nil {
		return err
	}
	if err := t.rt.Mem.Store64(e+8, oldHead); err != nil {
		return err
	}
	if err := t.rt.Mem.Store64(e+16, 0); err != nil { // hit count
		return err
	}
	if err := t.rt.Mem.Store64(e+24, meta); err != nil {
		return err
	}
	// Copy the staged URL into the fixed key field.
	if bounds != nil {
		if _, err := libc.SafeStrcpy(bounds, t.rt.Mem, e+32, req); err != nil {
			return err
		}
	} else if err := libc.Strcpy(t.rt.Mem, e+32, req); err != nil {
		return err
	}
	return t.rt.Mem.Store64(headAddr, e)
}

// purge unlinks and frees the entry for url.
func (t *table) purge(url []byte) (bool, error) {
	headAddr := t.head(url)
	cur, err := t.rt.Mem.Load64(headAddr)
	if err != nil {
		return false, err
	}
	var prev heap.Ptr
	for cur != heap.Null {
		if err := t.rt.Step(); err != nil {
			return false, err
		}
		eq, err := t.keyEqual(cur, url)
		if err != nil {
			return false, err
		}
		next, err := t.rt.Mem.Load64(cur + 8)
		if err != nil {
			return false, err
		}
		if eq {
			if prev == heap.Null {
				if err := t.rt.Mem.Store64(headAddr, next); err != nil {
					return false, err
				}
			} else if err := t.rt.Mem.Store64(prev+8, next); err != nil {
				return false, err
			}
			// Release the body, metadata, and entry.
			meta, err := t.rt.Mem.Load64(cur + 24)
			if err != nil {
				return false, err
			}
			content, err := t.rt.Mem.Load64(meta)
			if err != nil {
				return false, err
			}
			if err := t.rt.Alloc.Free(content); err != nil {
				return false, err
			}
			if err := t.rt.Alloc.Free(meta); err != nil {
				return false, err
			}
			return true, t.rt.Alloc.Free(cur)
		}
		prev, cur = cur, next
	}
	return false, nil
}

// GoodInput generates n well-formed requests (URLs within the key
// buffer), mixing fresh URLs, repeat GETs, and occasional purges.
func GoodInput(n int) []byte {
	var out []byte
	for i := 0; i < n; i++ {
		url := fmt.Sprintf("http://origin-%02d.example/path/%d", i%17, i%787)
		out = append(out, []byte("GET "+url+"\n")...)
		if i%3 == 2 { // repeat GET: cache hit and a chain traversal
			out = append(out, []byte("GET "+url+"\n")...)
		}
		if i%11 == 10 {
			out = append(out, []byte("PURGE "+url+"\n")...)
		}
	}
	return out
}

// IllFormedInput is a realistic session with the killer request spliced
// in near the end: a URL long enough to overflow the key buffer, the
// slot padding, and the neighboring heap object. The preceding traffic
// warms the cache (and, under a collector, drives at least one
// collection cycle so freed slots have been recycled); the following
// traffic re-walks the cache chains, which is where the corrupted
// pointers bite on the baseline allocators.
func IllFormedInput(n int) []byte {
	warm := n * 9 / 10
	out := GoodInput(warm)
	// A purge immediately before the attack makes the killer entry
	// recycle an interior slot with live neighbors on reuse-eagerly
	// allocators.
	out = append(out, []byte("PURGE http://origin-03.example/path/3\n")...)
	long := "GET http://attacker.example/"
	for len(long) < 220 {
		long += "AAAAAAAA"
	}
	out = append(out, []byte(long+"\n")...)
	out = append(out, GoodInput(n-warm)...)
	return out
}
