// Package winalloc models the Windows XP default heap allocator used as
// the baseline of Figure 5(b): a correct but substantially slower
// allocator than the Lea allocator.
//
// The paper attributes DieHard's competitive Windows results to the
// default allocator's cost ("the default Windows XP allocator is
// substantially slower than the Lea allocator"). This model reproduces
// that property structurally: a single address-ordered first-fit free
// list walked linearly on every allocation and every free, plus a flat
// per-operation charge standing in for the heap lock and lookaside
// bookkeeping of the real thing. Metadata is boundary-tag style inside
// the heap, so it corrupts like the real allocator's.
package winalloc

import (
	"fmt"

	"diehard/internal/heap"
	"diehard/internal/vmem"
)

const (
	headerSize = 8
	minChunk   = 24 // header + next link + footer room
	flagInUse  = 1
	flagMask   = 7
	walkCap    = 1 << 20
)

// DefaultHeapSize matches the budget given to the other allocators.
const DefaultHeapSize = 384 << 20

// Options configures the allocator.
type Options struct {
	// HeapSize is the arena size; defaults to DefaultHeapSize.
	HeapSize int
	// EnableTLB turns on TLB simulation in the underlying address space.
	EnableTLB bool
}

// Heap is a Windows-XP-default-heap-style allocator. Not safe for
// concurrent use.
type Heap struct {
	space      *vmem.Space
	arenaStart uint64
	arenaEnd   uint64
	top        uint64
	freeHead   heap.Ptr // address-ordered singly linked free list
	stats      heap.Stats
}

var _ heap.Allocator = (*Heap)(nil)

// New creates a Windows-style heap.
func New(opts Options) (*Heap, error) {
	size := opts.HeapSize
	if size == 0 {
		size = DefaultHeapSize
	}
	if size < 16*vmem.PageSize {
		return nil, fmt.Errorf("winalloc: heap size %d too small", size)
	}
	space := vmem.NewSpace()
	if opts.EnableTLB {
		space.EnableTLB()
	}
	base, err := space.Map(size, vmem.ProtRW)
	if err != nil {
		return nil, err
	}
	return &Heap{
		space:      space,
		arenaStart: base,
		arenaEnd:   base + uint64(size),
		top:        base,
	}, nil
}

func align8(n int) int { return (n + 7) &^ 7 }

func (h *Heap) readHeader(c uint64) (size int, inUse bool, err error) {
	v, err := h.space.Load64(c)
	if err != nil {
		return 0, false, err
	}
	h.stats.WorkUnits += heap.WorkHeader
	return int(v &^ flagMask), v&flagInUse != 0, nil
}

func (h *Heap) writeHeader(c uint64, size int, inUse bool) error {
	v := uint64(size)
	if inUse {
		v |= flagInUse
	}
	h.stats.WorkUnits += heap.WorkHeader
	return h.space.Store64(c, v)
}

func (h *Heap) valid(c uint64, size int) bool {
	return c >= h.arenaStart && c%8 == 0 && size >= minChunk && size%8 == 0 && c+uint64(size) <= h.top
}

// Malloc walks the free list first-fit, splitting oversized chunks.
func (h *Heap) Malloc(size int) (heap.Ptr, error) {
	h.stats.WorkUnits += heap.WorkLockWalk // heap lock + lookaside consult
	if size < 0 {
		h.stats.FailedMallocs++
		return heap.Null, fmt.Errorf("winalloc: negative allocation size %d", size)
	}
	need := align8(size + headerSize)
	if need < minChunk {
		need = minChunk
	}
	var prev heap.Ptr
	cur := h.freeHead
	for steps := 0; cur != 0; steps++ {
		if steps > walkCap {
			h.stats.FailedMallocs++
			return heap.Null, &heap.CorruptionError{Detail: "winalloc: free list cycle"}
		}
		h.stats.WorkUnits += heap.WorkFreelistStep
		csize, inUse, err := h.readHeader(cur)
		if err != nil {
			h.stats.FailedMallocs++
			return heap.Null, err
		}
		if inUse || !h.valid(cur, csize) {
			h.stats.FailedMallocs++
			return heap.Null, &heap.CorruptionError{Detail: "winalloc: corrupted free list entry"}
		}
		next, err := h.space.Load64(cur + 8)
		if err != nil {
			h.stats.FailedMallocs++
			return heap.Null, err
		}
		if csize >= need {
			if csize-need >= minChunk {
				rem := cur + uint64(need)
				if err := h.writeHeader(rem, csize-need, false); err != nil {
					return heap.Null, err
				}
				if err := h.space.Store64(rem+8, next); err != nil {
					return heap.Null, err
				}
				h.setNext(prev, rem)
			} else {
				need = csize
				h.setNext(prev, next)
			}
			if err := h.writeHeader(cur, need, true); err != nil {
				return heap.Null, err
			}
			heap.CountMalloc(&h.stats, size, need-headerSize)
			return cur + headerSize, nil
		}
		prev, cur = cur, next
	}
	// Wilderness.
	if h.top+uint64(need) > h.arenaEnd {
		h.stats.FailedMallocs++
		return heap.Null, heap.ErrOutOfMemory
	}
	c := h.top
	if err := h.writeHeader(c, need, true); err != nil {
		return heap.Null, err
	}
	h.top += uint64(need)
	heap.CountMalloc(&h.stats, size, need-headerSize)
	return c + headerSize, nil
}

// setNext updates prev's link (or the list head) to point at target.
func (h *Heap) setNext(prev, target heap.Ptr) {
	if prev == 0 {
		h.freeHead = target
		return
	}
	_ = h.space.Store64(prev+8, target)
	h.stats.WorkUnits += heap.WorkFreelistStep
}

// Free inserts the chunk into the address-ordered free list, merging
// with physically adjacent free neighbors found during the walk.
func (h *Heap) Free(p heap.Ptr) error {
	h.stats.WorkUnits += heap.WorkLockWalk
	if p == heap.Null {
		return nil
	}
	c := p - headerSize
	size, inUse, err := h.readHeader(c)
	if err != nil {
		return err
	}
	if !h.valid(c, size) {
		return &heap.CorruptionError{Detail: "winalloc: free of invalid pointer"}
	}
	if !inUse {
		// Double free: relink the chunk anyway (undefined behaviour,
		// like the original).
		h.stats.Frees++
		return h.insert(c, size)
	}
	heap.CountFree(&h.stats, size-headerSize)
	return h.insert(c, size)
}

// insert places free chunk c into the address-ordered list and coalesces
// with its list neighbors when physically adjacent.
func (h *Heap) insert(c uint64, size int) error {
	var prev heap.Ptr
	cur := h.freeHead
	for steps := 0; cur != 0 && cur < c; steps++ {
		if steps > walkCap {
			return &heap.CorruptionError{Detail: "winalloc: free list cycle"}
		}
		h.stats.WorkUnits += heap.WorkFreelistStep
		next, err := h.space.Load64(cur + 8)
		if err != nil {
			return err
		}
		prev, cur = cur, next
	}
	// Merge forward with cur.
	if cur != 0 && c+uint64(size) == cur {
		csize, _, err := h.readHeader(cur)
		if err != nil {
			return err
		}
		next, err := h.space.Load64(cur + 8)
		if err != nil {
			return err
		}
		size += csize
		cur = next
	}
	// Merge backward with prev.
	if prev != 0 {
		psize, _, err := h.readHeader(prev)
		if err != nil {
			return err
		}
		if prev+uint64(psize) == c {
			if err := h.writeHeader(prev, psize+size, false); err != nil {
				return err
			}
			return h.space.Store64(prev+8, cur)
		}
	}
	if err := h.writeHeader(c, size, false); err != nil {
		return err
	}
	if err := h.space.Store64(c+8, cur); err != nil {
		return err
	}
	h.setNext(prev, c)
	return nil
}

// SizeOf reports the payload capacity of the allocated chunk at p.
func (h *Heap) SizeOf(p heap.Ptr) (int, bool) {
	if p < h.arenaStart+headerSize || p >= h.top {
		return 0, false
	}
	size, inUse, err := h.readHeader(p - headerSize)
	if err != nil || !inUse || !h.valid(p-headerSize, size) {
		return 0, false
	}
	return size - headerSize, true
}

// Mem returns the simulated address space backing this heap.
func (h *Heap) Mem() *vmem.Space { return h.space }

// Stats returns the allocator counters.
func (h *Heap) Stats() *heap.Stats { return &h.stats }

// Name identifies the allocator in experiment reports.
func (h *Heap) Name() string { return "win-default" }
