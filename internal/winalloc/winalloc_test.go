package winalloc

import (
	"errors"
	"testing"

	"diehard/internal/heap"
	"diehard/internal/leaalloc"
	"diehard/internal/rng"
	"diehard/internal/vmem"
)

func newHeap(t *testing.T, size int) *Heap {
	t.Helper()
	if size == 0 {
		size = 4 << 20
	}
	h, err := New(Options{HeapSize: size})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestMallocFreeRoundTrip(t *testing.T) {
	h := newHeap(t, 0)
	p, err := h.Malloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Mem().Store64(p, 0xabcdef); err != nil {
		t.Fatal(err)
	}
	v, _ := h.Mem().Load64(p)
	if v != 0xabcdef {
		t.Fatalf("got %#x", v)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
}

func TestReuseAndCoalesce(t *testing.T) {
	h := newHeap(t, 0)
	a, _ := h.Malloc(100)
	b, _ := h.Malloc(100)
	if _, err := h.Malloc(100); err != nil { // barrier
		t.Fatal(err)
	}
	if err := h.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(b); err != nil {
		t.Fatal(err)
	}
	// a and b coalesce; a 200-byte request fits at a.
	q, err := h.Malloc(200)
	if err != nil {
		t.Fatal(err)
	}
	if q != a {
		t.Fatalf("coalesced chunk at %#x, want %#x", q, a)
	}
}

func TestOutOfMemory(t *testing.T) {
	h := newHeap(t, 16*vmem.PageSize)
	var last error
	for i := 0; i < 10000; i++ {
		if _, err := h.Malloc(4096); err != nil {
			last = err
			break
		}
	}
	if !errors.Is(last, heap.ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", last)
	}
}

func TestInvalidFreeCrashes(t *testing.T) {
	h := newHeap(t, 0)
	p, _ := h.Malloc(64)
	if err := h.Free(p + 4); err == nil || !heap.IsCrash(err) {
		t.Fatalf("invalid free: %v", err)
	}
}

func TestOverflowCorruptsMetadata(t *testing.T) {
	h := newHeap(t, 0)
	a, _ := h.Malloc(24)
	b, _ := h.Malloc(24)
	if err := h.Mem().Memset(a, 0xFF, 40); err != nil {
		t.Fatal(err)
	}
	err := h.Free(b)
	if err == nil {
		_, err = h.Malloc(24)
	}
	if err == nil || !heap.IsCrash(err) {
		t.Fatalf("smashed header unnoticed: %v", err)
	}
}

func TestSlowerThanLea(t *testing.T) {
	// The property Figure 5(b) depends on: the default Windows heap
	// costs substantially more work per operation than the Lea
	// allocator under the same churn.
	win := newHeap(t, 8<<20)
	lea, err := leaalloc.New(leaalloc.Options{HeapSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	churn := func(a heap.Allocator) uint64 {
		r := rng.NewSeeded(5)
		var live []heap.Ptr
		for i := 0; i < 5000; i++ {
			if len(live) > 32 {
				idx := r.Intn(len(live))
				if err := a.Free(live[idx]); err != nil {
					t.Fatal(err)
				}
				live[idx] = live[len(live)-1]
				live = live[:len(live)-1]
			}
			p, err := a.Malloc(16 + r.Intn(256))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, p)
		}
		return a.Stats().WorkUnits
	}
	w := churn(win)
	l := churn(lea)
	if w < 2*l {
		t.Fatalf("winalloc work %d not substantially above lea %d", w, l)
	}
}

func TestIntegrityUnderRandomWorkload(t *testing.T) {
	h := newHeap(t, 8<<20)
	r := rng.NewSeeded(31)
	type obj struct {
		p  heap.Ptr
		id uint64
	}
	var live []obj
	for op := uint64(0); op < 15000; op++ {
		if len(live) > 0 && r.Intn(100) < 48 {
			i := r.Intn(len(live))
			v, err := h.Mem().Load64(live[i].p)
			if err != nil {
				t.Fatal(err)
			}
			if v != live[i].id {
				t.Fatalf("object %d corrupted", live[i].id)
			}
			if err := h.Free(live[i].p); err != nil {
				t.Fatal(err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		p, err := h.Malloc(8 + r.Intn(300))
		if errors.Is(err, heap.ErrOutOfMemory) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Mem().Store64(p, op); err != nil {
			t.Fatal(err)
		}
		live = append(live, obj{p, op})
	}
}

func BenchmarkMallocFreePair(b *testing.B) {
	h, err := New(Options{HeapSize: 32 << 20})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, _ := h.Malloc(64)
		_ = h.Free(p)
	}
}
