// Package gcsim implements a Boehm-Demers-Weiser-style conservative
// mark-sweep collector over simulated memory, the paper's second baseline
// ("GC" in Figure 5(a), "BDW GC" in Table 1).
//
// Like the real collector used as a malloc replacement, it ignores calls
// to free entirely — which is what makes it immune to invalid frees,
// double frees, and dangling pointers — and reclaims memory by
// conservatively tracing from a root set: any word in a reachable object
// whose value looks like a pointer into the heap keeps the target object
// alive, interior pointers included.
//
// Substitution notes (DESIGN.md §1): the collector cannot scan the Go
// stack of a simulated application, so the root set is (a) explicitly
// registered roots — each evaluation workload keeps its top-level
// pointers in a "globals" object it registers, exactly as a C program's
// statics would be scanned — and (b) every object allocated since the
// previous collection, which conservatively models pointers held in
// registers and stack frames. Objects reachable from neither are
// genuinely reclaimed. Block descriptors, free lists, and mark bits live
// outside the simulated heap; a heap overflow therefore corrupts
// neighboring objects (undefined results) rather than collector state,
// matching the observable BDW row of Table 1.
package gcsim

import (
	"fmt"
	"sort"

	"diehard/internal/heap"
	"diehard/internal/vmem"
)

const (
	// blockSize is the carving granularity, one page as in BDW.
	blockSize = vmem.PageSize
	// numClasses spans 8 B .. 2 KB in powers of two; larger objects get
	// whole-block ("big") treatment.
	numClasses = 9
	// maxSmall is the largest small-object size.
	maxSmall = 8 << (numClasses - 1) // 2048
	// DefaultHeapSize matches the budget given to the other allocators.
	DefaultHeapSize = 384 << 20
	// minGCThreshold is the smallest allocation volume between
	// collections, after BDW's free-space-divisor policy (the real
	// collector starts with a small heap and collects often).
	minGCThreshold = 32 << 10
)

// Options configures the collector.
type Options struct {
	// HeapSize is the arena size; defaults to DefaultHeapSize.
	HeapSize int
	// EnableTLB turns on TLB simulation in the underlying address space.
	EnableTLB bool
}

// block is the out-of-line descriptor of one carved page.
type block struct {
	base  uint64
	class int // -1 for a multi-block ("big") object
	nobj  int
	alloc []uint64 // allocation bitmap
	mark  []uint64 // mark bitmap, valid during collection
	nblks int      // block count for big objects
}

// Heap is a conservative-GC allocation arena. Not safe for concurrent
// use.
type Heap struct {
	space      *vmem.Space
	arenaStart uint64
	arenaEnd   uint64
	brk        uint64 // next uncarved block address
	blocks     map[uint64]*block
	freeLists  [numClasses][]heap.Ptr
	freeBlocks []uint64

	roots        map[heap.Ptr]struct{}
	recent       []heap.Ptr // allocated since last GC: implicit roots
	prevRecent   []heap.Ptr // previous generation, still treated as roots
	sinceGC      uint64     // bytes allocated since last GC
	liveAfterGC  uint64     // marked bytes at the end of the last GC
	disableSweep bool       // pin everything (used by error experiments)

	stats heap.Stats
}

var _ heap.Allocator = (*Heap)(nil)

// New creates a conservative-GC heap.
func New(opts Options) (*Heap, error) {
	size := opts.HeapSize
	if size == 0 {
		size = DefaultHeapSize
	}
	if size < 16*blockSize {
		return nil, fmt.Errorf("gcsim: heap size %d too small", size)
	}
	space := vmem.NewSpace()
	if opts.EnableTLB {
		space.EnableTLB()
	}
	base, err := space.Map(size, vmem.ProtRW)
	if err != nil {
		return nil, err
	}
	return &Heap{
		space:      space,
		arenaStart: base,
		arenaEnd:   base + uint64(size),
		brk:        base,
		blocks:     make(map[uint64]*block),
		roots:      make(map[heap.Ptr]struct{}),
	}, nil
}

func classFor(size int) int {
	c := 0
	for s := 8; s < size; s <<= 1 {
		c++
	}
	return c
}

func classSize(c int) int { return 8 << c }

// AddRoot registers p as a GC root: the object containing p (and
// everything reachable from it) survives collections. Workloads register
// their globals block here.
func (h *Heap) AddRoot(p heap.Ptr) { h.roots[p] = struct{}{} }

// RemoveRoot unregisters a root.
func (h *Heap) RemoveRoot(p heap.Ptr) { delete(h.roots, p) }

// SetDisableSweep pins every object regardless of reachability. Error-
// tolerance experiments use it so that the GC row of Table 1 reflects
// the free-ignoring semantics rather than root-registration accidents.
func (h *Heap) SetDisableSweep(v bool) { h.disableSweep = v }

// Malloc allocates size bytes, collecting when the allocation budget
// since the previous collection is exhausted.
func (h *Heap) Malloc(size int) (heap.Ptr, error) {
	if size < 0 {
		h.stats.FailedMallocs++
		return heap.Null, fmt.Errorf("gcsim: negative allocation size %d", size)
	}
	if size == 0 {
		size = 1
	}
	threshold := h.liveAfterGC
	if threshold < minGCThreshold {
		threshold = minGCThreshold
	}
	if h.sinceGC >= threshold {
		h.Collect()
	}
	p, err := h.alloc(size)
	if err != nil {
		// Collect and retry once before reporting exhaustion, as BDW
		// does.
		h.Collect()
		p, err = h.alloc(size)
		if err != nil {
			h.stats.FailedMallocs++
			return heap.Null, err
		}
	}
	rounded := classSize(classFor(size))
	if size > maxSmall {
		rounded = int((uint64(size) + blockSize - 1) &^ (blockSize - 1))
	}
	heap.CountMalloc(&h.stats, size, rounded)
	h.sinceGC += uint64(rounded)
	h.recent = append(h.recent, p)
	return p, nil
}

func (h *Heap) alloc(size int) (heap.Ptr, error) {
	if size > maxSmall {
		return h.allocBig(size)
	}
	c := classFor(size)
	if len(h.freeLists[c]) == 0 {
		if err := h.carveBlock(c); err != nil {
			return heap.Null, err
		}
	}
	list := h.freeLists[c]
	p := list[len(list)-1]
	h.freeLists[c] = list[:len(list)-1]
	// BDW threads its free lists through the objects themselves: honor
	// that by reading the link word out of the slot (the access is what
	// costs, and it is why recycled BDW memory is never pristine).
	if _, err := h.space.Load64(p); err != nil {
		return heap.Null, err
	}
	blk := h.blocks[(p-h.arenaStart)/blockSize*blockSize+h.arenaStart]
	idx := int(p-blk.base) / classSize(c)
	blk.alloc[idx>>6] |= 1 << (idx & 63)
	// Lock acquisition, granule lookup, and header bookkeeping of
	// GC_malloc.
	h.stats.WorkUnits += heap.WorkBitmap + 4*heap.WorkHeader
	return p, nil
}

// carveBlock dedicates a fresh (or recycled) block to class c and pushes
// its slots onto the free list.
func (h *Heap) carveBlock(c int) error {
	base, err := h.takeBlocks(1)
	if err != nil {
		return err
	}
	size := classSize(c)
	n := blockSize / size
	blk := &block{
		base:  base,
		class: c,
		nobj:  n,
		alloc: make([]uint64, (n+63)/64),
		nblks: 1,
	}
	h.blocks[base] = blk
	for i := n - 1; i >= 0; i-- {
		slot := base + uint64(i*size)
		// Thread the fresh free list through the slots.
		next := uint64(0)
		if i+1 < n {
			next = base + uint64((i+1)*size)
		}
		if err := h.space.Store64(slot, next); err != nil {
			return err
		}
		h.freeLists[c] = append(h.freeLists[c], slot)
	}
	h.stats.WorkUnits += heap.WorkMmap / 4 // block setup
	return nil
}

func (h *Heap) allocBig(size int) (heap.Ptr, error) {
	nblks := int((uint64(size) + blockSize - 1) / blockSize)
	base, err := h.takeBlocks(nblks)
	if err != nil {
		return heap.Null, err
	}
	blk := &block{
		base:  base,
		class: -1,
		nobj:  1,
		alloc: []uint64{1},
		nblks: nblks,
	}
	h.blocks[base] = blk
	h.stats.WorkUnits += heap.WorkMmap / 4
	return base, nil
}

// takeBlocks returns the base of n contiguous blocks, recycling single
// free blocks when n == 1.
func (h *Heap) takeBlocks(n int) (uint64, error) {
	if n == 1 && len(h.freeBlocks) > 0 {
		base := h.freeBlocks[len(h.freeBlocks)-1]
		h.freeBlocks = h.freeBlocks[:len(h.freeBlocks)-1]
		return base, nil
	}
	need := uint64(n * blockSize)
	if h.brk+need > h.arenaEnd {
		return 0, heap.ErrOutOfMemory
	}
	base := h.brk
	h.brk += need
	return base, nil
}

// Free is deliberately a no-op: the collector reclaims memory by
// reachability only. This single decision is why the BDW row of Table 1
// tolerates invalid frees, double frees, and dangling pointers.
func (h *Heap) Free(p heap.Ptr) error {
	h.stats.IgnoredFrees++
	return nil
}

// findObject resolves any pointer-looking value (interior pointers
// included) to its containing allocated object.
func (h *Heap) findObject(addr uint64) (*block, int, heap.Ptr, int, bool) {
	if addr < h.arenaStart || addr >= h.brk {
		return nil, 0, 0, 0, false
	}
	blockBase := (addr-h.arenaStart)/blockSize*blockSize + h.arenaStart
	blk, ok := h.blocks[blockBase]
	if !ok {
		// Interior block of a big object: scan backward for its head.
		for b := blockBase; b >= h.arenaStart; b -= blockSize {
			if cand, ok := h.blocks[b]; ok {
				if cand.class == -1 && addr < cand.base+uint64(cand.nblks*blockSize) {
					blk = cand
				}
				break
			}
		}
		if blk == nil {
			return nil, 0, 0, 0, false
		}
	}
	if blk.class == -1 {
		if blk.alloc[0]&1 == 0 {
			return nil, 0, 0, 0, false
		}
		return blk, 0, blk.base, blk.nblks * blockSize, true
	}
	size := classSize(blk.class)
	idx := int(addr-blk.base) / size
	if idx >= blk.nobj || blk.alloc[idx>>6]&(1<<(idx&63)) == 0 {
		return nil, 0, 0, 0, false
	}
	return blk, idx, blk.base + uint64(idx*size), size, true
}

// Collect runs a full conservative mark-sweep collection.
func (h *Heap) Collect() {
	h.stats.Collections++
	for _, blk := range h.blocks {
		blk.mark = make([]uint64, len(blk.alloc))
	}
	type span struct {
		start heap.Ptr
		size  int
	}
	var work []span
	markAddr := func(addr uint64) {
		blk, idx, start, size, ok := h.findObject(addr)
		if !ok {
			return
		}
		if blk.mark[idx>>6]&(1<<(idx&63)) != 0 {
			return
		}
		blk.mark[idx>>6] |= 1 << (idx & 63)
		work = append(work, span{start: start, size: size})
	}
	for r := range h.roots {
		markAddr(r)
	}
	// Both recent generations stand in for pointers held in registers
	// and stack frames, which a real conservative collector would scan.
	for _, p := range h.recent {
		markAddr(p)
	}
	for _, p := range h.prevRecent {
		markAddr(p)
	}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		for off := 0; off+8 <= s.size; off += 8 {
			v, err := h.space.Load64(s.start + uint64(off))
			if err != nil {
				continue // unbacked page: nothing to scan
			}
			h.stats.WorkUnits += heap.WorkMarkWord
			markAddr(v)
		}
	}
	// Sweep in address order so reclaimed-slot reuse is deterministic
	// across runs (map iteration order would leak into the free lists).
	bases := make([]uint64, 0, len(h.blocks))
	for b := range h.blocks {
		bases = append(bases, b)
	}
	sort.Slice(bases, func(i, j int) bool { return bases[i] < bases[j] })
	var live uint64
	for _, base := range bases {
		blk := h.blocks[base]
		if h.disableSweep {
			live += uint64(blk.nblks * blockSize)
			continue
		}
		if blk.class == -1 {
			if blk.mark[0]&1 == 0 {
				blk.alloc[0] = 0
				// Big-object blocks are not recycled individually; the
				// descriptor stays to keep the address range resolvable.
			} else {
				live += uint64(blk.nblks * blockSize)
			}
			continue
		}
		size := classSize(blk.class)
		h.stats.WorkUnits += uint64(blk.nobj) * heap.WorkMarkWord // sweep scan
		for idx := 0; idx < blk.nobj; idx++ {
			w, bit := idx>>6, uint64(1)<<(idx&63)
			if blk.alloc[w]&bit != 0 && blk.mark[w]&bit == 0 {
				blk.alloc[w] &^= bit
				slot := blk.base + uint64(idx*size)
				// Thread the reclaimed slot into the free list.
				link := uint64(0)
				if n := len(h.freeLists[blk.class]); n > 0 {
					link = h.freeLists[blk.class][n-1]
				}
				if err := h.space.Store64(slot, link); err == nil {
					h.freeLists[blk.class] = append(h.freeLists[blk.class], slot)
				}
			} else if blk.alloc[w]&bit != 0 {
				live += uint64(size)
			}
		}
	}
	h.prevRecent = h.recent
	h.recent = nil
	h.sinceGC = 0
	h.liveAfterGC = live
	for _, blk := range h.blocks {
		blk.mark = nil
	}
}

// SizeOf reports the usable size of the allocated object starting at p.
func (h *Heap) SizeOf(p heap.Ptr) (int, bool) {
	_, _, start, size, ok := h.findObject(p)
	if !ok || start != p {
		return 0, false
	}
	return size, true
}

// ObjectBounds resolves interior pointers, satisfying libc.Bounds.
func (h *Heap) ObjectBounds(p heap.Ptr) (heap.Ptr, int, bool) {
	_, _, start, size, ok := h.findObject(p)
	return start, size, ok
}

// InHeap reports whether p points into the collected arena.
func (h *Heap) InHeap(p heap.Ptr) bool {
	return p >= h.arenaStart && p < h.brk
}

// Mem returns the simulated address space backing this heap.
func (h *Heap) Mem() *vmem.Space { return h.space }

// Stats returns the allocator counters.
func (h *Heap) Stats() *heap.Stats { return &h.stats }

// Name identifies the allocator in experiment reports.
func (h *Heap) Name() string { return "gc" }

// HeapBytes reports the total bytes of carved blocks, the space-overhead
// measure quoted against malloc/free in §4.5 and §8.
func (h *Heap) HeapBytes() uint64 { return h.brk - h.arenaStart }
