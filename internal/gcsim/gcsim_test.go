package gcsim

import (
	"testing"

	"diehard/internal/heap"
)

func newHeap(t *testing.T, size int) *Heap {
	t.Helper()
	if size == 0 {
		size = 8 << 20
	}
	h, err := New(Options{HeapSize: size})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestMallocRoundTrip(t *testing.T) {
	h := newHeap(t, 0)
	p, err := h.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Mem().Store64(p, 42); err != nil {
		t.Fatal(err)
	}
	v, _ := h.Mem().Load64(p)
	if v != 42 {
		t.Fatalf("got %d", v)
	}
}

func TestFreeIsIgnored(t *testing.T) {
	// The BDW property behind its Table 1 row: free does nothing, so
	// double frees and invalid frees are harmless and dangling pointers
	// still see the object.
	h := newHeap(t, 0)
	p, _ := h.Malloc(64)
	if err := h.Mem().Store64(p, 0xcafe); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(p); err != nil { // double free
		t.Fatal(err)
	}
	if err := h.Free(0xdeadbeef); err != nil { // invalid free
		t.Fatal(err)
	}
	if h.Stats().IgnoredFrees != 3 {
		t.Fatalf("IgnoredFrees = %d", h.Stats().IgnoredFrees)
	}
	v, err := h.Mem().Load64(p)
	if err != nil || v != 0xcafe {
		t.Fatalf("dangling object lost: %v %v", v, err)
	}
}

func TestRootsKeepObjectsAlive(t *testing.T) {
	h := newHeap(t, 0)
	// Build a globals object holding a pointer chain, as the evaluation
	// workloads do.
	globals, _ := h.Malloc(64)
	h.AddRoot(globals)
	node, _ := h.Malloc(32)
	if err := h.Mem().Store64(node, 0x1111); err != nil {
		t.Fatal(err)
	}
	next, _ := h.Malloc(32)
	if err := h.Mem().Store64(next, 0x2222); err != nil {
		t.Fatal(err)
	}
	if err := h.Mem().Store64(node+8, next); err != nil { // node -> next
		t.Fatal(err)
	}
	if err := h.Mem().Store64(globals, node); err != nil { // globals -> node
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		h.Collect()
	}
	v1, _ := h.Mem().Load64(node)
	v2, _ := h.Mem().Load64(next)
	if v1 != 0x1111 || v2 != 0x2222 {
		t.Fatalf("rooted chain lost: %#x %#x", v1, v2)
	}
	if _, ok := h.SizeOf(node); !ok {
		t.Fatal("rooted object swept")
	}
}

func TestUnreachableObjectsAreReclaimed(t *testing.T) {
	h := newHeap(t, 0)
	p, _ := h.Malloc(64)
	// Three collections: p ages out of the recent generation, then the
	// previous generation, then is unreachable garbage.
	h.Collect()
	h.Collect()
	h.Collect()
	if _, ok := h.SizeOf(p); ok {
		t.Fatal("unreachable object survived three collections")
	}
	// Its slot is reused.
	seen := false
	for i := 0; i < 200; i++ {
		q, _ := h.Malloc(64)
		if q == p {
			seen = true
			break
		}
	}
	if !seen {
		t.Fatal("reclaimed slot never reused")
	}
}

func TestRecentAllocationsSurviveCollection(t *testing.T) {
	h := newHeap(t, 0)
	p, _ := h.Malloc(48)
	if err := h.Mem().Store64(p, 7); err != nil {
		t.Fatal(err)
	}
	h.Collect() // p only in the recent set
	if _, ok := h.SizeOf(p); !ok {
		t.Fatal("recently allocated object swept")
	}
	v, _ := h.Mem().Load64(p)
	if v != 7 {
		t.Fatal("recent object corrupted")
	}
}

func TestConservativeInteriorPointer(t *testing.T) {
	h := newHeap(t, 0)
	globals, _ := h.Malloc(64)
	h.AddRoot(globals)
	obj, _ := h.Malloc(256)
	if err := h.Mem().Store64(obj+128, 0xabcd); err != nil {
		t.Fatal(err)
	}
	// Only an interior pointer is stored: conservatism must keep the
	// whole object alive.
	if err := h.Mem().Store64(globals, obj+100); err != nil {
		t.Fatal(err)
	}
	h.Collect()
	h.Collect()
	v, err := h.Mem().Load64(obj + 128)
	if err != nil || v != 0xabcd {
		t.Fatal("interior-pointer-reachable object swept")
	}
}

func TestBigObjects(t *testing.T) {
	h := newHeap(t, 0)
	globals, _ := h.Malloc(64)
	h.AddRoot(globals)
	big, _ := h.Malloc(100_000)
	if err := h.Mem().Store64(big+99_000, 5); err != nil {
		t.Fatal(err)
	}
	if err := h.Mem().Store64(globals, big); err != nil {
		t.Fatal(err)
	}
	size, ok := h.SizeOf(big)
	if !ok || size < 100_000 {
		t.Fatalf("big SizeOf = %d,%v", size, ok)
	}
	h.Collect()
	h.Collect()
	if v, _ := h.Mem().Load64(big + 99_000); v != 5 {
		t.Fatal("rooted big object lost")
	}
	// Interior pointer into a middle block resolves.
	start, bsize, ok := h.ObjectBounds(big + 50_000)
	if !ok || start != big || bsize < 100_000 {
		t.Fatalf("big ObjectBounds = %#x,%d,%v", start, bsize, ok)
	}
	// Drop the reference: the object must be collected.
	if err := h.Mem().Store64(globals, 0); err != nil {
		t.Fatal(err)
	}
	h.Collect()
	h.Collect()
	if _, ok := h.SizeOf(big); ok {
		t.Fatal("unreachable big object survived")
	}
}

func TestGarbageDoesNotExhaustHeap(t *testing.T) {
	// Allocating unreachable garbage forever must succeed: collections
	// reclaim it. 2 MB heap, 16 MB of cumulative garbage.
	h := newHeap(t, 2<<20)
	for i := 0; i < 16*1024; i++ {
		p, err := h.Malloc(1024)
		if err != nil {
			t.Fatalf("allocation %d failed: %v", i, err)
		}
		if err := h.Mem().Store64(p, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if h.Stats().Collections == 0 {
		t.Fatal("no collections happened")
	}
	if h.HeapBytes() > 2<<20 {
		t.Fatalf("heap grew to %d despite garbage-only workload", h.HeapBytes())
	}
}

func TestDisableSweepPinsEverything(t *testing.T) {
	h := newHeap(t, 0)
	h.SetDisableSweep(true)
	p, _ := h.Malloc(64)
	h.Collect()
	h.Collect()
	if _, ok := h.SizeOf(p); !ok {
		t.Fatal("object swept despite disabled sweep")
	}
}

func TestSizeOfUnallocated(t *testing.T) {
	h := newHeap(t, 0)
	if _, ok := h.SizeOf(0xdeadbeef); ok {
		t.Fatal("wild pointer resolved")
	}
	p, _ := h.Malloc(64)
	if _, ok := h.SizeOf(p + 8); ok {
		t.Fatal("interior pointer accepted by SizeOf")
	}
}

func TestSpaceOverheadExceedsMalloc(t *testing.T) {
	// §8: garbage collection requires more space than malloc/free for
	// the same live set. Run a churn workload with a bounded live set
	// and compare carved heap bytes against the live volume.
	h := newHeap(t, 32<<20)
	globals, _ := h.Malloc(8 * 128)
	h.AddRoot(globals)
	var live [128]heap.Ptr
	for i := 0; i < 20000; i++ {
		slot := i % len(live)
		p, err := h.Malloc(256)
		if err != nil {
			t.Fatal(err)
		}
		live[slot] = p
		if err := h.Mem().Store64(globals+uint64(slot*8), p); err != nil {
			t.Fatal(err)
		}
	}
	liveBytes := uint64(len(live) * 256)
	if h.HeapBytes() < 2*liveBytes {
		t.Fatalf("GC heap %d unexpectedly tight for live set %d", h.HeapBytes(), liveBytes)
	}
}

func BenchmarkMallocGC(b *testing.B) {
	h, err := New(Options{HeapSize: 32 << 20})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Malloc(64); err != nil {
			b.Fatal(err)
		}
	}
}
