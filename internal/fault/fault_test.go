package fault

import (
	"reflect"
	"testing"

	"diehard/internal/core"
	"diehard/internal/heap"
	"diehard/internal/leaalloc"
)

func newBase(t *testing.T) *core.Heap {
	t.Helper()
	h, err := core.New(core.Options{HeapSize: 12 << 20, Seed: 0xfa01})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// runPattern is a deterministic allocation pattern: allocate `n` objects
// of cycling sizes, freeing each object `gap` allocations after its
// birth. It returns the pointers in allocation order.
func runPattern(t *testing.T, a heap.Allocator, n, gap int) []heap.Ptr {
	t.Helper()
	ptrs := make([]heap.Ptr, 0, n)
	for i := 0; i < n; i++ {
		size := 16 + (i%4)*24 // 16, 40, 64, 88
		p, err := a.Malloc(size)
		if err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
		ptrs = append(ptrs, p)
		if i >= gap {
			if err := a.Free(ptrs[i-gap]); err != nil {
				t.Fatalf("free %d: %v", i-gap, err)
			}
		}
	}
	return ptrs
}

func TestTracerRecordsLifetimes(t *testing.T) {
	base := newBase(t)
	tr := NewTracer(base)
	runPattern(t, tr, 100, 10)
	trace := tr.Trace()
	if len(trace.Lifetimes) != 100 {
		t.Fatalf("recorded %d lifetimes", len(trace.Lifetimes))
	}
	for i, lt := range trace.Lifetimes {
		if lt.ID != i || lt.AllocTime != i {
			t.Fatalf("lifetime %d has ID %d time %d", i, lt.ID, lt.AllocTime)
		}
		if i < 90 {
			// Object i is freed right after allocation i+10, i.e. at
			// allocation time i+11 (11 allocations have happened).
			if lt.FreeTime != i+11 {
				t.Fatalf("object %d freed at %d, want %d", i, lt.FreeTime, i+11)
			}
		} else if lt.FreeTime != -1 {
			t.Fatalf("object %d should never be freed, got %d", i, lt.FreeTime)
		}
	}
}

func TestTracerForwardsBehaviour(t *testing.T) {
	base := newBase(t)
	tr := NewTracer(base)
	p, err := tr.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if size, ok := tr.SizeOf(p); !ok || size != 64 {
		t.Fatalf("SizeOf through tracer: %d %v", size, ok)
	}
	if err := tr.Mem().Store64(p, 9); err != nil {
		t.Fatal(err)
	}
	if err := tr.Free(p); err != nil {
		t.Fatal(err)
	}
	if base.Stats().Frees != 1 {
		t.Fatal("free not forwarded")
	}
}

func TestPlanDanglingSelectsLongLivedObjects(t *testing.T) {
	base := newBase(t)
	tr := NewTracer(base)
	runPattern(t, tr, 200, 20) // lifetime 21 in allocation time
	plan := PlanDangling(tr.Trace(), 1.0, 10, 1)
	// Every freed object lives 21 > 10: all 180 freed objects chosen.
	if plan.Injected != 180 {
		t.Fatalf("injected %d, want 180", plan.Injected)
	}
	// With distance beyond every lifetime, nothing is chosen.
	plan = PlanDangling(tr.Trace(), 1.0, 50, 1)
	if plan.Injected != 0 {
		t.Fatalf("distance 50 should select nothing, got %d", plan.Injected)
	}
}

func TestPlanDanglingFrequency(t *testing.T) {
	base := newBase(t)
	tr := NewTracer(base)
	runPattern(t, tr, 2000, 20)
	plan := PlanDangling(tr.Trace(), 0.5, 10, 7)
	// 1980 candidates at 50%: expect close to 990.
	if plan.Injected < 850 || plan.Injected > 1130 {
		t.Fatalf("injected %d, want ~990", plan.Injected)
	}
	// Determinism: same seed, same plan.
	plan2 := PlanDangling(tr.Trace(), 0.5, 10, 7)
	if plan2.Injected != plan.Injected {
		t.Fatal("plans with the same seed differ")
	}
}

func TestDanglingInjectorFiresEarlyAndSwallowsRealFree(t *testing.T) {
	// Trace run.
	traceBase := newBase(t)
	tr := NewTracer(traceBase)
	runPattern(t, tr, 100, 20)
	plan := PlanDangling(tr.Trace(), 1.0, 10, 3)

	// Injection run of the identical program.
	injBase := newBase(t)
	inj := NewDanglingInjector(injBase, plan)
	runPattern(t, inj, 100, 20)

	if inj.EarlyFrees != plan.Injected {
		t.Fatalf("early frees %d != planned %d", inj.EarlyFrees, plan.Injected)
	}
	if inj.SwallowedFrees != plan.Injected {
		t.Fatalf("swallowed %d != planned %d", inj.SwallowedFrees, plan.Injected)
	}
	// Base allocator saw exactly one free per freed object (early one),
	// so its counters match the non-injected run's.
	if injBase.Stats().Frees != traceBase.Stats().Frees {
		t.Fatalf("base frees %d != trace run %d", injBase.Stats().Frees, traceBase.Stats().Frees)
	}
	if injBase.Stats().IgnoredFrees != 0 {
		t.Fatalf("injector should never double-free the base: %d ignored", injBase.Stats().IgnoredFrees)
	}
}

func TestDanglingInjectorExposesWindow(t *testing.T) {
	// The essence of the injected error: during the 10 allocations
	// between early free and real free, the object's slot is free and
	// may be handed out again. Count reuse events on a small heap.
	traceBase, err := core.New(core.Options{HeapSize: 48 << 10, Seed: 0xfa01})
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracer(traceBase)
	prog := func(t *testing.T, a heap.Allocator) map[heap.Ptr]int {
		t.Helper()
		reuse := make(map[heap.Ptr]int)
		var ring [8]heap.Ptr
		for i := 0; i < 400; i++ {
			if ring[i%8] != heap.Null {
				if err := a.Free(ring[i%8]); err != nil {
					t.Fatal(err)
				}
			}
			p, err := a.Malloc(16)
			if err != nil {
				t.Fatal(err)
			}
			reuse[p]++
			ring[i%8] = p
		}
		return reuse
	}
	prog(t, tr)
	plan := PlanDangling(tr.Trace(), 1.0, 4, 5)
	if plan.Injected == 0 {
		t.Fatal("plan selected nothing")
	}
	injBase, err := core.New(core.Options{HeapSize: 48 << 10, Seed: 0xfa01})
	if err != nil {
		t.Fatal(err)
	}
	inj := NewDanglingInjector(injBase, plan)
	prog(t, inj)
	if inj.EarlyFrees == 0 {
		t.Fatal("no early frees fired")
	}
}

func TestOverflowInjectorUnderAllocates(t *testing.T) {
	base := newBase(t)
	inj := NewOverflowInjector(base, 1.0, 32, 4, 9)
	// Requests below the threshold are untouched.
	p, _ := inj.Malloc(16)
	if size, _ := inj.SizeOf(p); size != 16 {
		t.Fatalf("small request resized: %d", size)
	}
	// A 130-byte request under-allocates to 126: DieHard class falls
	// from 256 to 128.
	p, _ = inj.Malloc(130)
	if size, _ := inj.SizeOf(p); size != 128 {
		t.Fatalf("under-allocated request class = %d, want 128", size)
	}
	if inj.Injected != 1 {
		t.Fatalf("Injected = %d, want 1", inj.Injected)
	}
}

func TestOverflowInjectorRate(t *testing.T) {
	base := newBase(t)
	inj := NewOverflowInjector(base, 0.01, 32, 4, 42)
	for i := 0; i < 10000; i++ {
		p, err := inj.Malloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := inj.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	// Binomial(10000, 0.01): ~100 expected.
	if inj.Injected < 50 || inj.Injected > 170 {
		t.Fatalf("injected %d of 10000 at 1%%", inj.Injected)
	}
}

func TestInjectedOverflowReallyOverflowsOnLea(t *testing.T) {
	// End-to-end through the boundary-tag baseline: a request whose
	// under-allocation crosses an 8-byte alignment boundary makes the
	// application's full-size write smash the next chunk tag.
	lea := leaHeap(t)
	inj := NewOverflowInjector(lea, 1.0, 32, 4, 1)
	p, err := inj.Malloc(64) // allocated as 60: payload 64 in chunk... request 60 -> chunk 72, payload 64
	if err != nil {
		t.Fatal(err)
	}
	q, err := inj.Malloc(64)
	if err != nil {
		t.Fatal(err)
	}
	// The app legitimately writes its requested 64 bytes; with the
	// paper's 4-byte under-allocation this may or may not cross a
	// boundary depending on alignment. Use a request where it does:
	// 56-byte payload after injection, 60 bytes written.
	r, err := inj.Malloc(60) // under-allocated to 56: chunk 64, payload 56
	if err != nil {
		t.Fatal(err)
	}
	if err := inj.Mem().Memset(r, 0xEE, 60); err != nil {
		t.Fatalf("app-level write must not fault: %v", err)
	}
	// The chunk after r has a smashed header now; allocator operations
	// notice sooner or later.
	_ = p
	_ = q
	errs := 0
	if err := inj.Free(r); err != nil {
		errs++
	}
	for i := 0; i < 8; i++ {
		if _, err := inj.Malloc(60); err != nil {
			errs++
			break
		}
	}
	if errs == 0 {
		t.Log("overflow landed harmlessly this time (alignment-dependent); acceptable")
	}
}

func TestPlanPanicsOnBadFrequency(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	PlanDangling(&Trace{}, 1.5, 10, 1)
}

func leaHeap(t *testing.T) heap.Allocator {
	t.Helper()
	h, err := leaalloc.New(leaalloc.Options{HeapSize: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestPlanOverflowGroundTruth(t *testing.T) {
	trace := &Trace{}
	for i := 0; i < 40; i++ {
		size := 16
		if i%2 == 1 {
			size = 64 // eligible
		}
		trace.Lifetimes = append(trace.Lifetimes, Lifetime{ID: i, Size: size, AllocTime: i, FreeTime: -1})
	}
	plan := PlanOverflow(trace, 3, 32, 4, 77)
	v := plan.Victims()
	if len(v) != 3 {
		t.Fatalf("planned %d victims, want 3", len(v))
	}
	for _, id := range v {
		if id%2 != 1 {
			t.Errorf("victim %d is not an eligible allocation", id)
		}
		if !plan.IsVictim(id) {
			t.Errorf("IsVictim(%d) = false for planned victim", id)
		}
	}
	// Deterministic in (trace, seed).
	again := PlanOverflow(trace, 3, 32, 4, 77)
	if !reflect.DeepEqual(plan.Victims(), again.Victims()) {
		t.Fatalf("PlanOverflow not deterministic: %v vs %v", v, again.Victims())
	}
	// More victims requested than eligible: all eligible selected.
	all := PlanOverflow(trace, 100, 32, 4, 1)
	if len(all.Victims()) != 20 {
		t.Fatalf("clamped plan selected %d, want all 20 eligible", len(all.Victims()))
	}
}

// recordingAlloc records malloc request sizes, standing in for a heap.
type recordingAlloc struct {
	heap.Allocator
	sizes []int
}

func (r *recordingAlloc) Malloc(size int) (heap.Ptr, error) {
	r.sizes = append(r.sizes, size)
	return r.Allocator.Malloc(size)
}

func TestPlannedOverflowInjectorShrinksExactlyVictims(t *testing.T) {
	base, err := core.New(core.Options{HeapSize: 12 << 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	rec := &recordingAlloc{Allocator: base}
	trace := &Trace{}
	for i := 0; i < 10; i++ {
		trace.Lifetimes = append(trace.Lifetimes, Lifetime{ID: i, Size: 64, AllocTime: i, FreeTime: -1})
	}
	plan := PlanOverflow(trace, 2, 32, 4, 5)
	inj := NewPlannedOverflowInjector(rec, plan)
	for i := 0; i < 10; i++ {
		if _, err := inj.Malloc(64); err != nil {
			t.Fatal(err)
		}
	}
	if inj.Injected != 2 {
		t.Fatalf("Injected = %d, want 2", inj.Injected)
	}
	for i, size := range rec.sizes {
		want := 64
		if plan.IsVictim(i) {
			want = 60
		}
		if size != want {
			t.Errorf("allocation %d reached the heap with size %d, want %d", i, size, want)
		}
	}
}
