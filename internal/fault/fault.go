// Package fault implements the fault-injection methodology of §7.3.1:
// libraries that inject memory errors into unaltered (simulated)
// applications.
//
// The protocol follows the paper exactly. A first run under the tracing
// allocator produces an allocation log: for every object, when it was
// allocated and when it was freed, both in allocation time (the number
// of allocations performed so far). A fault-injection plan is then drawn
// from that log: to inject dangling-pointer errors, selected objects are
// freed `distance` allocations earlier than the program intends, and the
// program's real free of that object is ignored; to inject buffer
// overflows, selected allocation requests are under-allocated so the
// application's writes run past the end of the object.
//
// Because the evaluation applications are deterministic, the log from
// the tracing run aligns exactly with the injection run.
package fault

import (
	"fmt"
	"sort"

	"diehard/internal/heap"
	"diehard/internal/rng"
	"diehard/internal/vmem"
)

// Lifetime records one object's allocation history in allocation time.
type Lifetime struct {
	ID        int // allocation index (0-based)
	Size      int
	AllocTime int // == ID: time of the allocation itself
	FreeTime  int // allocation time at which the program freed it; -1 if never
}

// Trace is an allocation log produced by a Tracer run.
type Trace struct {
	Lifetimes []Lifetime
}

// Tracer wraps an allocator and records the allocation log, leaving
// behavior otherwise unchanged.
type Tracer struct {
	base    heap.Allocator
	trace   Trace
	ptrToID map[heap.Ptr]int
	clock   int // allocation time
}

var _ heap.Allocator = (*Tracer)(nil)

// NewTracer wraps base with allocation logging.
func NewTracer(base heap.Allocator) *Tracer {
	return &Tracer{base: base, ptrToID: make(map[heap.Ptr]int)}
}

// Malloc allocates and logs the object.
func (t *Tracer) Malloc(size int) (heap.Ptr, error) {
	p, err := t.base.Malloc(size)
	if err != nil {
		return p, err
	}
	id := t.clock
	t.clock++
	t.trace.Lifetimes = append(t.trace.Lifetimes, Lifetime{
		ID: id, Size: size, AllocTime: id, FreeTime: -1,
	})
	t.ptrToID[p] = id
	return p, nil
}

// Free logs the free time of the object and forwards it.
func (t *Tracer) Free(p heap.Ptr) error {
	if id, ok := t.ptrToID[p]; ok {
		t.trace.Lifetimes[id].FreeTime = t.clock
		delete(t.ptrToID, p)
	}
	return t.base.Free(p)
}

// SizeOf forwards to the base allocator.
func (t *Tracer) SizeOf(p heap.Ptr) (int, bool) { return t.base.SizeOf(p) }

// Mem forwards to the base allocator.
func (t *Tracer) Mem() *vmem.Space { return t.base.Mem() }

// Stats forwards to the base allocator.
func (t *Tracer) Stats() *heap.Stats { return t.base.Stats() }

// Name identifies the tracer in reports.
func (t *Tracer) Name() string { return t.base.Name() + "+trace" }

// Trace returns the log collected so far.
func (t *Tracer) Trace() *Trace { return &t.trace }

// DanglingPlan selects the objects to free prematurely: each object that
// lives at least distance allocations is chosen independently with
// probability freq ("frequency of 50% with distance 10: one out of every
// two objects is freed ten allocations too early").
type DanglingPlan struct {
	// earlyFrees maps an allocation-time tick to the IDs to free when
	// the allocation counter reaches it.
	earlyFrees map[int][]int
	// victim reports whether an ID's real free must be ignored.
	victim map[int]bool
	// Injected is the number of planned premature frees.
	Injected int
}

// PlanDangling draws a dangling-error plan from a trace.
func PlanDangling(trace *Trace, freq float64, distance int, seed uint64) *DanglingPlan {
	if freq < 0 || freq > 1 {
		panic(fmt.Sprintf("fault: frequency %v out of [0,1]", freq))
	}
	r := rng.NewSeeded(seed)
	plan := &DanglingPlan{
		earlyFrees: make(map[int][]int),
		victim:     make(map[int]bool),
	}
	for _, lt := range trace.Lifetimes {
		if lt.FreeTime < 0 || lt.FreeTime-lt.AllocTime <= distance {
			continue // never freed, or would be freed before/at allocation
		}
		if r.Float64() >= freq {
			continue
		}
		early := lt.FreeTime - distance
		plan.earlyFrees[early] = append(plan.earlyFrees[early], lt.ID)
		plan.victim[lt.ID] = true
		plan.Injected++
	}
	return plan
}

// Victims returns the allocation IDs selected for premature freeing, in
// ascending order. The detection campaigns (exps.RunDetectionTable)
// grade the canary detector's culprit attribution against this ground
// truth.
func (p *DanglingPlan) Victims() []int {
	ids := make([]int, 0, len(p.victim))
	for id := range p.victim {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// DanglingInjector replays a program against a base allocator while
// executing a DanglingPlan: victims are freed early and their real frees
// are swallowed.
type DanglingInjector struct {
	base    heap.Allocator
	plan    *DanglingPlan
	clock   int
	idToPtr map[int]heap.Ptr
	ptrToID map[heap.Ptr]int

	// EarlyFrees counts premature frees performed so far.
	EarlyFrees int
	// SwallowedFrees counts real frees ignored because their object was
	// already freed by the injector.
	SwallowedFrees int
}

var _ heap.Allocator = (*DanglingInjector)(nil)

// NewDanglingInjector wraps base with the plan.
func NewDanglingInjector(base heap.Allocator, plan *DanglingPlan) *DanglingInjector {
	return &DanglingInjector{
		base:    base,
		plan:    plan,
		idToPtr: make(map[int]heap.Ptr),
		ptrToID: make(map[heap.Ptr]int),
	}
}

// Malloc allocates, then fires any premature frees scheduled at the new
// allocation time.
func (d *DanglingInjector) Malloc(size int) (heap.Ptr, error) {
	p, err := d.base.Malloc(size)
	if err != nil {
		return p, err
	}
	id := d.clock
	d.clock++
	d.idToPtr[id] = p
	d.ptrToID[p] = id
	for _, victim := range d.plan.earlyFrees[d.clock] {
		vp, ok := d.idToPtr[victim]
		if !ok {
			continue // trace misalignment; deterministic programs never hit this
		}
		if err := d.base.Free(vp); err != nil {
			return heap.Null, err
		}
		d.EarlyFrees++
	}
	return p, nil
}

// Free forwards the free unless the object was already freed early, in
// which case the call is swallowed (the injection library "ignores the
// subsequent (actual) call to free this object").
func (d *DanglingInjector) Free(p heap.Ptr) error {
	id, ok := d.ptrToID[p]
	if ok {
		delete(d.ptrToID, p)
		delete(d.idToPtr, id)
		if d.plan.victim[id] {
			d.SwallowedFrees++
			return nil
		}
	}
	return d.base.Free(p)
}

// SizeOf forwards to the base allocator.
func (d *DanglingInjector) SizeOf(p heap.Ptr) (int, bool) { return d.base.SizeOf(p) }

// Mem forwards to the base allocator.
func (d *DanglingInjector) Mem() *vmem.Space { return d.base.Mem() }

// Stats forwards to the base allocator.
func (d *DanglingInjector) Stats() *heap.Stats { return d.base.Stats() }

// Name identifies the injector in reports.
func (d *DanglingInjector) Name() string { return d.base.Name() + "+dangling" }

// OverflowInjector injects buffer overflows by under-allocation: with
// probability rate, a request of at least minSize bytes is shrunk by
// delta bytes before reaching the allocator, so the application's writes
// of the full requested size overflow the object (§7.3.1: "it requests
// less memory from the underlying allocator than was requested by the
// application").
type OverflowInjector struct {
	base    heap.Allocator
	rate    float64
	minSize int
	delta   int
	r       *rng.MWC

	// Injected counts under-allocated requests.
	Injected int
}

var _ heap.Allocator = (*OverflowInjector)(nil)

// NewOverflowInjector wraps base with under-allocation injection.
// The paper's experiment uses rate 0.01, minSize 32, delta 4.
func NewOverflowInjector(base heap.Allocator, rate float64, minSize, delta int, seed uint64) *OverflowInjector {
	if rate < 0 || rate > 1 {
		panic(fmt.Sprintf("fault: rate %v out of [0,1]", rate))
	}
	return &OverflowInjector{
		base:    base,
		rate:    rate,
		minSize: minSize,
		delta:   delta,
		r:       rng.NewSeeded(seed),
	}
}

// Malloc under-allocates selected requests.
func (o *OverflowInjector) Malloc(size int) (heap.Ptr, error) {
	if size >= o.minSize && o.r.Float64() < o.rate {
		o.Injected++
		size -= o.delta
	}
	return o.base.Malloc(size)
}

// Free forwards to the base allocator.
func (o *OverflowInjector) Free(p heap.Ptr) error { return o.base.Free(p) }

// SizeOf forwards to the base allocator.
func (o *OverflowInjector) SizeOf(p heap.Ptr) (int, bool) { return o.base.SizeOf(p) }

// Mem forwards to the base allocator.
func (o *OverflowInjector) Mem() *vmem.Space { return o.base.Mem() }

// Stats forwards to the base allocator.
func (o *OverflowInjector) Stats() *heap.Stats { return o.base.Stats() }

// Name identifies the injector in reports.
func (o *OverflowInjector) Name() string { return o.base.Name() + "+overflow" }

// OverflowPlan selects, by allocation ID drawn from a trace, the exact
// requests to under-allocate. Unlike OverflowInjector's independent
// coin flips, a plan makes the injected error sites known ground truth:
// the detection campaigns (exps.RunDetectionTable) grade the canary
// detector's culprit attribution against Victims.
type OverflowPlan struct {
	victim  map[int]bool
	victims []int
	// MinSize and Delta are the eligibility floor and the
	// under-allocation amount, recorded for the injector.
	MinSize int
	Delta   int
}

// PlanOverflow chooses count victims uniformly without replacement from
// the trace's allocations of at least minSize bytes, each to be
// under-allocated by delta bytes. Deterministic in (trace, seed); if
// fewer than count allocations are eligible, all of them are chosen.
func PlanOverflow(trace *Trace, count, minSize, delta int, seed uint64) *OverflowPlan {
	r := rng.NewSeeded(seed)
	var eligible []int
	for _, lt := range trace.Lifetimes {
		if lt.Size >= minSize {
			eligible = append(eligible, lt.ID)
		}
	}
	if count > len(eligible) {
		count = len(eligible)
	}
	// Partial Fisher-Yates: the first count entries end up a uniform
	// sample without replacement.
	for i := 0; i < count; i++ {
		j := i + r.Intn(len(eligible)-i)
		eligible[i], eligible[j] = eligible[j], eligible[i]
	}
	plan := &OverflowPlan{victim: make(map[int]bool, count), MinSize: minSize, Delta: delta}
	plan.victims = append(plan.victims, eligible[:count]...)
	sort.Ints(plan.victims)
	for _, id := range plan.victims {
		plan.victim[id] = true
	}
	return plan
}

// Victims returns the selected allocation IDs in ascending order.
func (p *OverflowPlan) Victims() []int { return append([]int(nil), p.victims...) }

// IsVictim reports whether allocation id is planned for under-allocation.
func (p *OverflowPlan) IsVictim(id int) bool { return p.victim[id] }

// PlannedOverflowInjector under-allocates exactly the planned victim
// requests, so every injected overflow's allocation site is known.
type PlannedOverflowInjector struct {
	base  heap.Allocator
	plan  *OverflowPlan
	clock int

	// Injected counts under-allocated requests.
	Injected int
}

var _ heap.Allocator = (*PlannedOverflowInjector)(nil)

// NewPlannedOverflowInjector wraps base with the plan.
func NewPlannedOverflowInjector(base heap.Allocator, plan *OverflowPlan) *PlannedOverflowInjector {
	return &PlannedOverflowInjector{base: base, plan: plan}
}

// Malloc under-allocates the planned victims.
func (o *PlannedOverflowInjector) Malloc(size int) (heap.Ptr, error) {
	id := o.clock
	o.clock++
	if o.plan.victim[id] && size >= o.plan.MinSize {
		o.Injected++
		size -= o.plan.Delta
	}
	return o.base.Malloc(size)
}

// Free forwards to the base allocator.
func (o *PlannedOverflowInjector) Free(p heap.Ptr) error { return o.base.Free(p) }

// SizeOf forwards to the base allocator.
func (o *PlannedOverflowInjector) SizeOf(p heap.Ptr) (int, bool) { return o.base.SizeOf(p) }

// Mem forwards to the base allocator.
func (o *PlannedOverflowInjector) Mem() *vmem.Space { return o.base.Mem() }

// Stats forwards to the base allocator.
func (o *PlannedOverflowInjector) Stats() *heap.Stats { return o.base.Stats() }

// Name identifies the injector in reports.
func (o *PlannedOverflowInjector) Name() string { return o.base.Name() + "+overflow-plan" }
