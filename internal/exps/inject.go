package exps

import (
	"bytes"
	"fmt"

	"diehard/internal/apps"
	"diehard/internal/fault"
	"diehard/internal/heap"
	"diehard/internal/squid"
)

// InjectionKind selects a §7.3.1 fault-injection experiment.
type InjectionKind string

const (
	// InjectDangling frees selected objects `Distance` allocations too
	// early (paper: frequency 50%, distance 10).
	InjectDangling InjectionKind = "dangling"
	// InjectOverflow under-allocates selected requests (paper: 1% of
	// requests of 32 bytes or more, by 4 bytes).
	InjectOverflow InjectionKind = "overflow"
)

// InjectionParams parameterizes an injection run; zero values select
// the paper's settings.
type InjectionParams struct {
	Kind     InjectionKind
	Freq     float64 // dangling selection probability (default 0.5)
	Distance int     // allocations early (default 10)
	Rate     float64 // overflow probability (default 0.01)
	MinSize  int     // overflow minimum request (default 32)
	Delta    int     // overflow under-allocation (default 4)
}

func (p *InjectionParams) defaults() {
	if p.Freq == 0 {
		p.Freq = 0.5
	}
	if p.Distance == 0 {
		p.Distance = 10
	}
	if p.Rate == 0 {
		p.Rate = 0.01
	}
	if p.MinSize == 0 {
		p.MinSize = 32
	}
	if p.Delta == 0 {
		p.Delta = 4
	}
}

// InjectionResult counts trial outcomes, the classification of §7.3.1
// ("espresso crashes in 9 out of 10 runs and enters an infinite loop in
// the tenth").
type InjectionResult struct {
	Trials      int
	Correct     int
	Crashed     int
	WrongOutput int
	Hung        int
	Injected    int // total faults injected across trials
}

// Failures is the number of non-correct runs.
func (r *InjectionResult) Failures() int { return r.Trials - r.Correct }

// injectionWorkLimit bounds each injected run; clean runs use a small
// fraction of it, so exceeding it is a hang (as one of the paper's
// injected runs did).
const injectionWorkLimit = 40_000_000

// injectionSeedBase keys the per-trial seed derivation of the injection
// campaigns (DeriveSeed); recorded so any single trial can be replayed
// from its index.
const injectionSeedBase = 0x7E57AB1E

// trialOutcome classifies one injected run.
type trialOutcome uint8

const (
	trialCorrect trialOutcome = iota
	trialCrashed
	trialWrongOutput
	trialHung
)

// RunFaultInjection reproduces §7.3.1 for one application and allocator:
// a tracing run collects the allocation log, a plan draws the faults,
// and `trials` injected runs are classified against the clean run's
// output. Trials are independent — every trial's allocator seed and
// fault plan derive from the trial index — and fan out across `workers`
// goroutines; the aggregated result is identical for any worker count.
func RunFaultInjection(appName, allocKind string, params InjectionParams, trials, scale, heapSize, workers int) (*InjectionResult, error) {
	params.defaults()
	app, ok := apps.Get(appName)
	if !ok {
		return nil, fmt.Errorf("exps: unknown app %q", appName)
	}
	if params.Kind != InjectDangling && params.Kind != InjectOverflow {
		return nil, fmt.Errorf("exps: unknown injection kind %q", params.Kind)
	}
	input := app.Input(scale)

	newAlloc := func(seed uint64) (heap.Allocator, error) {
		return NewAllocator(AllocConfig{Kind: allocKind, HeapSize: heapSize, Seed: seed})
	}

	// Reference (clean) run and, for dangling injection, the allocation
	// trace. Allocation time is a property of the program, not the
	// allocator, so one trace serves every trial.
	refAlloc, err := newAlloc(0xC1EA)
	if err != nil {
		return nil, err
	}
	tracer := fault.NewTracer(refAlloc)
	var refOut bytes.Buffer
	rt := &apps.Runtime{Alloc: tracer, Mem: refAlloc.Mem(), Input: input, Out: &refOut, WorkLimit: injectionWorkLimit}
	if err := app.Run(rt); err != nil {
		return nil, fmt.Errorf("clean reference run failed: %w", err)
	}
	reference := refOut.String()
	trace := tracer.Trace()

	type trialResult struct {
		outcome  trialOutcome
		injected int
	}
	results, err := mapTrials(trials, workers, func(trial int) (trialResult, error) {
		seed := DeriveSeed(injectionSeedBase, trial)
		base, err := newAlloc(seed)
		if err != nil {
			return trialResult{}, err
		}
		var alloc heap.Allocator
		injected := func() int { return 0 }
		switch params.Kind {
		case InjectDangling:
			plan := fault.PlanDangling(trace, params.Freq, params.Distance, seed)
			alloc = fault.NewDanglingInjector(base, plan)
			injected = func() int { return plan.Injected }
		case InjectOverflow:
			inj := fault.NewOverflowInjector(base, params.Rate, params.MinSize, params.Delta, seed)
			alloc = inj
			injected = func() int { return inj.Injected }
		}
		var out bytes.Buffer
		runRT := &apps.Runtime{Alloc: alloc, Mem: base.Mem(), Input: input, Out: &out, WorkLimit: injectionWorkLimit}
		runErr := app.Run(runRT)
		r := trialResult{injected: injected()}
		switch {
		case runErr == apps.ErrHang:
			r.outcome = trialHung
		case runErr != nil:
			r.outcome = trialCrashed
		case out.String() != reference:
			r.outcome = trialWrongOutput
		default:
			r.outcome = trialCorrect
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}

	res := &InjectionResult{Trials: trials}
	for _, r := range results {
		res.Injected += r.injected
		switch r.outcome {
		case trialCorrect:
			res.Correct++
		case trialCrashed:
			res.Crashed++
		case trialWrongOutput:
			res.WrongOutput++
		case trialHung:
			res.Hung++
		}
	}
	return res, nil
}

// SquidResult reports the §7.3 real-fault experiment for one allocator.
type SquidResult struct {
	Allocator string
	Trials    int
	Survived  int
	Crashed   int
}

// RunSquidExperiment reproduces the §7.3 "Real Faults" study: the buggy
// web cache is fed the ill-formed input under each allocator. The
// GNU-libc and BDW baselines crash; DieHard survives (probabilistically,
// hence multiple seeded trials). The (allocator, trial) grid fans out
// across the campaign worker pool with per-trial derived seeds.
func RunSquidExperiment(allocKinds []string, trials, requests, heapSize, workers int) ([]SquidResult, error) {
	input := squid.IllFormedInput(requests)
	survived, err := mapTrials(len(allocKinds)*trials, workers, func(i int) (bool, error) {
		kind := allocKinds[i/trials]
		trial := i % trials
		alloc, err := NewAllocator(AllocConfig{
			Kind: kind, HeapSize: heapSize, Seed: DeriveSeed(0x5001D, trial),
		})
		if err != nil {
			return false, err
		}
		var out bytes.Buffer
		rt := &apps.Runtime{Alloc: alloc, Mem: alloc.Mem(), Input: input, Out: &out, WorkLimit: injectionWorkLimit}
		return squid.Run(rt, squid.Options{}) == nil, nil
	})
	if err != nil {
		return nil, err
	}
	var results []SquidResult
	for k, kind := range allocKinds {
		r := SquidResult{Allocator: kind, Trials: trials}
		for t := 0; t < trials; t++ {
			if survived[k*trials+t] {
				r.Survived++
			} else {
				r.Crashed++
			}
		}
		results = append(results, r)
	}
	return results, nil
}
