package exps

import (
	"bytes"
	"fmt"

	"diehard/internal/apps"
	"diehard/internal/fault"
	"diehard/internal/heap"
	"diehard/internal/squid"
)

// InjectionKind selects a §7.3.1 fault-injection experiment.
type InjectionKind string

const (
	// InjectDangling frees selected objects `Distance` allocations too
	// early (paper: frequency 50%, distance 10).
	InjectDangling InjectionKind = "dangling"
	// InjectOverflow under-allocates selected requests (paper: 1% of
	// requests of 32 bytes or more, by 4 bytes).
	InjectOverflow InjectionKind = "overflow"
)

// InjectionParams parameterizes an injection run; zero values select
// the paper's settings.
type InjectionParams struct {
	Kind     InjectionKind
	Freq     float64 // dangling selection probability (default 0.5)
	Distance int     // allocations early (default 10)
	Rate     float64 // overflow probability (default 0.01)
	MinSize  int     // overflow minimum request (default 32)
	Delta    int     // overflow under-allocation (default 4)
}

func (p *InjectionParams) defaults() {
	if p.Freq == 0 {
		p.Freq = 0.5
	}
	if p.Distance == 0 {
		p.Distance = 10
	}
	if p.Rate == 0 {
		p.Rate = 0.01
	}
	if p.MinSize == 0 {
		p.MinSize = 32
	}
	if p.Delta == 0 {
		p.Delta = 4
	}
}

// InjectionResult counts trial outcomes, the classification of §7.3.1
// ("espresso crashes in 9 out of 10 runs and enters an infinite loop in
// the tenth").
type InjectionResult struct {
	Trials      int
	Correct     int
	Crashed     int
	WrongOutput int
	Hung        int
	Injected    int // total faults injected across trials
}

// Failures is the number of non-correct runs.
func (r *InjectionResult) Failures() int { return r.Trials - r.Correct }

// injectionWorkLimit bounds each injected run; clean runs use a small
// fraction of it, so exceeding it is a hang (as one of the paper's
// injected runs did).
const injectionWorkLimit = 40_000_000

// RunFaultInjection reproduces §7.3.1 for one application and allocator:
// a tracing run collects the allocation log, a plan draws the faults,
// and `trials` injected runs are classified against the clean run's
// output.
func RunFaultInjection(appName, allocKind string, params InjectionParams, trials, scale, heapSize int) (*InjectionResult, error) {
	params.defaults()
	app, ok := apps.Get(appName)
	if !ok {
		return nil, fmt.Errorf("exps: unknown app %q", appName)
	}
	input := app.Input(scale)

	newAlloc := func(seed uint64) (heap.Allocator, error) {
		return NewAllocator(AllocConfig{Kind: allocKind, HeapSize: heapSize, Seed: seed})
	}

	// Reference (clean) run and, for dangling injection, the allocation
	// trace. Allocation time is a property of the program, not the
	// allocator, so one trace serves every trial.
	refAlloc, err := newAlloc(0xC1EA)
	if err != nil {
		return nil, err
	}
	tracer := fault.NewTracer(refAlloc)
	var refOut bytes.Buffer
	rt := &apps.Runtime{Alloc: tracer, Mem: refAlloc.Mem(), Input: input, Out: &refOut, WorkLimit: injectionWorkLimit}
	if err := app.Run(rt); err != nil {
		return nil, fmt.Errorf("clean reference run failed: %w", err)
	}
	reference := refOut.String()

	res := &InjectionResult{Trials: trials}
	for trial := 0; trial < trials; trial++ {
		seed := uint64(trial)*2654435761 + 17
		base, err := newAlloc(seed)
		if err != nil {
			return nil, err
		}
		var alloc heap.Allocator
		switch params.Kind {
		case InjectDangling:
			plan := fault.PlanDangling(tracer.Trace(), params.Freq, params.Distance, seed)
			inj := fault.NewDanglingInjector(base, plan)
			alloc = inj
			res.Injected += plan.Injected
		case InjectOverflow:
			inj := fault.NewOverflowInjector(base, params.Rate, params.MinSize, params.Delta, seed)
			alloc = inj
			defer func() { res.Injected += inj.Injected }()
		default:
			return nil, fmt.Errorf("exps: unknown injection kind %q", params.Kind)
		}
		var out bytes.Buffer
		runRT := &apps.Runtime{Alloc: alloc, Mem: base.Mem(), Input: input, Out: &out, WorkLimit: injectionWorkLimit}
		err = app.Run(runRT)
		switch {
		case err == apps.ErrHang:
			res.Hung++
		case err != nil:
			res.Crashed++
		case out.String() != reference:
			res.WrongOutput++
		default:
			res.Correct++
		}
	}
	return res, nil
}

// SquidResult reports the §7.3 real-fault experiment for one allocator.
type SquidResult struct {
	Allocator string
	Trials    int
	Survived  int
	Crashed   int
}

// RunSquidExperiment reproduces the §7.3 "Real Faults" study: the buggy
// web cache is fed the ill-formed input under each allocator. The
// GNU-libc and BDW baselines crash; DieHard survives (probabilistically,
// hence multiple seeded trials).
func RunSquidExperiment(allocKinds []string, trials, requests, heapSize int) ([]SquidResult, error) {
	input := squid.IllFormedInput(requests)
	var results []SquidResult
	for _, kind := range allocKinds {
		r := SquidResult{Allocator: kind, Trials: trials}
		for trial := 0; trial < trials; trial++ {
			alloc, err := NewAllocator(AllocConfig{
				Kind: kind, HeapSize: heapSize, Seed: uint64(trial + 1),
			})
			if err != nil {
				return nil, err
			}
			var out bytes.Buffer
			rt := &apps.Runtime{Alloc: alloc, Mem: alloc.Mem(), Input: input, Out: &out, WorkLimit: injectionWorkLimit}
			if err := squid.Run(rt, squid.Options{}); err != nil {
				r.Crashed++
			} else {
				r.Survived++
			}
		}
		results = append(results, r)
	}
	return results, nil
}
