// Package exps is the experiment harness: every table and figure of the
// paper's evaluation (§6-§7) has an entry point here that regenerates
// its data on the simulated substrate — the error-tolerance grid
// (RunErrorTable, Table 1/Figure 6), targeted fault injection
// (RunFaultInjection, §7.1), the Squid leak scenario
// (RunSquidExperiment), the Figure 5 runtime grid (RunOverhead), and
// the §7.2.3 replicated-scaling sweep (RunReplicatedScaling). The cmd/
// executables and the repository-level benchmarks are thin wrappers
// over this package.
//
// Every campaign is a fixed list of independent trials fanned across a
// deterministic work-stealing pool (mapTrials): each trial's randomness
// derives from the campaign seed and its trial index alone (DeriveSeed),
// each trial owns its allocator and space, and results are reduced in
// trial-index order — so every Run* function takes a workers parameter
// and produces byte-identical results for any value of it (DESIGN.md
// §7). Wall-clock fields are the exception: they are host measurements
// and co-schedule when workers > 1.
package exps

import (
	"fmt"
	"math"

	"diehard/internal/core"
	"diehard/internal/gcsim"
	"diehard/internal/heap"
	"diehard/internal/leaalloc"
	"diehard/internal/winalloc"
)

// Allocator kinds available to experiments.
const (
	KindDieHard = "DieHard"
	KindMalloc  = "malloc" // GNU libc / Lea baseline
	KindGC      = "GC"     // Boehm-Demers-Weiser baseline
	KindWin     = "win"    // Windows XP default heap baseline
)

// AllocConfig selects and parameterizes an allocator for an experiment.
type AllocConfig struct {
	Kind      string
	HeapSize  int
	Seed      uint64  // DieHard only
	M         float64 // DieHard only
	EnableTLB bool
}

// NewAllocator builds an allocator for experiments.
func NewAllocator(cfg AllocConfig) (heap.Allocator, error) {
	switch cfg.Kind {
	case KindDieHard:
		return core.New(core.Options{
			HeapSize:  cfg.HeapSize,
			Seed:      cfg.Seed,
			M:         cfg.M,
			EnableTLB: cfg.EnableTLB,
		})
	case KindMalloc:
		return leaalloc.New(leaalloc.Options{HeapSize: cfg.HeapSize, EnableTLB: cfg.EnableTLB})
	case KindGC:
		return gcsim.New(gcsim.Options{HeapSize: cfg.HeapSize, EnableTLB: cfg.EnableTLB})
	case KindWin:
		return winalloc.New(winalloc.Options{HeapSize: cfg.HeapSize, EnableTLB: cfg.EnableTLB})
	}
	return nil, fmt.Errorf("exps: unknown allocator kind %q", cfg.Kind)
}

// GeoMean returns the geometric mean of xs.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}
