package exps

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"time"

	"diehard/internal/apps"
	"diehard/internal/heap"
	"diehard/internal/replicate"
)

// Platform selects a Figure 5 configuration.
type Platform string

const (
	// PlatformLinux compares the GNU-libc baseline, the BDW collector,
	// and DieHard (Figure 5(a)).
	PlatformLinux Platform = "linux"
	// PlatformWindows compares the Windows XP default heap and DieHard
	// (Figure 5(b)).
	PlatformWindows Platform = "windows"
)

// Allocators returns the allocator kinds of a platform; index 0 is the
// normalization baseline.
func (p Platform) Allocators() []string {
	if p == PlatformWindows {
		return []string{KindWin, KindDieHard}
	}
	return []string{KindMalloc, KindGC, KindDieHard}
}

// OverheadRow is one benchmark's result across allocators.
type OverheadRow struct {
	Benchmark  string
	Kind       apps.Kind
	Cycles     map[string]uint64  // modeled cycles per allocator
	Normalized map[string]float64 // cycles / baseline cycles
	WallTime   map[string]time.Duration
	TLBMisses  map[string]uint64
}

// OverheadReport is the full Figure 5 dataset.
type OverheadReport struct {
	Platform Platform
	Rows     []OverheadRow
	// GeoMean maps "<kind>/<allocator>" (kind = alloc-intensive or
	// general-purpose) to the geometric-mean normalized runtime.
	GeoMean map[string]float64
}

// RunOverhead executes the Figure 5 experiment: every benchmark on every
// allocator of the platform, under the deterministic cycle model
// (DESIGN.md §6), with the simulated TLB enabled. The paper's default
// configuration is used for DieHard (384 MB heap, M = 2) and the same
// arena budget for the baselines.
//
// The (benchmark, allocator) grid fans out across `workers` goroutines;
// each run owns its allocator and space, so the modeled cycle counts —
// and therefore the normalized figures — are identical for any worker
// count. Wall times remain what they are: host measurements, noisy under
// co-scheduling.
func RunOverhead(platform Platform, scale, heapSize int, seed uint64, workers int) (*OverheadReport, error) {
	if heapSize == 0 {
		heapSize = 384 << 20
	}
	report := &OverheadReport{Platform: platform, GeoMean: make(map[string]float64)}
	kinds := platform.Allocators()
	baseline := kinds[0]
	registry := apps.Registry()

	// One input per app, shared read-only by its cells across workers.
	inputs := make([][]byte, len(registry))
	for a, app := range registry {
		inputs[a] = app.Input(scale)
	}

	type cellResult struct {
		cycles    uint64
		wall      time.Duration
		tlbMisses uint64
	}
	cells, err := mapTrials(len(registry)*len(kinds), workers, func(i int) (cellResult, error) {
		app := registry[i/len(kinds)]
		kind := kinds[i%len(kinds)]
		alloc, err := NewAllocator(AllocConfig{
			Kind: kind, HeapSize: heapSize, Seed: seed, EnableTLB: true,
		})
		if err != nil {
			return cellResult{}, err
		}
		var out bytes.Buffer
		rt := &apps.Runtime{Alloc: alloc, Mem: alloc.Mem(), Input: inputs[i/len(kinds)], Out: &out}
		start := time.Now()
		if err := app.Run(rt); err != nil {
			return cellResult{}, fmt.Errorf("%s on %s: %w", app.Name, kind, err)
		}
		return cellResult{
			cycles:    heap.Cycles(alloc.Mem(), alloc.Stats()),
			wall:      time.Since(start),
			tlbMisses: alloc.Mem().Stats().TLBMisses,
		}, nil
	})
	if err != nil {
		return nil, err
	}

	for a, app := range registry {
		row := OverheadRow{
			Benchmark:  app.Name,
			Kind:       app.Kind,
			Cycles:     make(map[string]uint64),
			Normalized: make(map[string]float64),
			WallTime:   make(map[string]time.Duration),
			TLBMisses:  make(map[string]uint64),
		}
		for k, kind := range kinds {
			cell := cells[a*len(kinds)+k]
			row.Cycles[kind] = cell.cycles
			row.WallTime[kind] = cell.wall
			row.TLBMisses[kind] = cell.tlbMisses
		}
		for _, kind := range kinds {
			row.Normalized[kind] = float64(row.Cycles[kind]) / float64(row.Cycles[baseline])
		}
		report.Rows = append(report.Rows, row)
	}

	for _, kind := range kinds {
		var ai, gp []float64
		for _, row := range report.Rows {
			if row.Kind == apps.AllocIntensive {
				ai = append(ai, row.Normalized[kind])
			} else {
				gp = append(gp, row.Normalized[kind])
			}
		}
		report.GeoMean["alloc-intensive/"+kind] = GeoMean(ai)
		report.GeoMean["general-purpose/"+kind] = GeoMean(gp)
	}
	return report, nil
}

// ScalingPoint is one replica-count measurement of the §7.2.3
// experiment.
type ScalingPoint struct {
	Replicas  int
	Wall      time.Duration
	Survivors int
	Agreed    bool
	// Seed is the replicate master seed of this sweep point, derived
	// from the campaign seed and the point index (DeriveSeed), so any
	// point is replayable on its own.
	Seed uint64
	// OutputHash is 64-bit FNV-1a over the point's committed (voted)
	// output: the deterministic fingerprint the workers=1-vs-N
	// determinism tests compare.
	OutputHash uint64
	// RelativeToOne is wall time divided by the first point's wall time
	// (campaigns conventionally put replicas=1 first).
	RelativeToOne float64
}

// RunReplicatedScaling reproduces §7.2.3: run an application under the
// replicated runtime at each replica count (the paper: 16 replicas on a
// 16-way server, about +50% over one replica) and report wall-clock
// ratios. Replicas execute on separate goroutines, so the measurement
// reflects the host's available parallelism, as the original did.
//
// The sweep points fan out across `workers` goroutines on the campaign
// engine; each point's replicate seed derives from the campaign seed and
// its index alone, so Survivors, Agreed, and OutputHash are identical
// for any worker count. Wall times (and RelativeToOne) are host
// measurements: with workers > 1 the points co-schedule and their wall
// ratios lose meaning, so measure wall with workers = 1.
//
// lindsay is rejected: its uninitialized read makes replicas disagree,
// which is exactly why the paper excludes it (§7.2.3).
func RunReplicatedScaling(appName string, replicaCounts []int, scale, heapSize int, seed uint64, workers int) ([]ScalingPoint, error) {
	if appName == "lindsay" {
		return nil, fmt.Errorf("exps: lindsay cannot run replicated (uninitialized read); the paper excludes it too")
	}
	app, ok := apps.Get(appName)
	if !ok {
		return nil, fmt.Errorf("exps: unknown app %q", appName)
	}
	input := app.Input(scale)
	prog := func(ctx *replicate.Context) error {
		rt := &apps.Runtime{Alloc: ctx.Alloc, Mem: ctx.Mem, Input: ctx.Input, Out: ctx.Out}
		return app.Run(rt)
	}
	points, err := mapTrials(len(replicaCounts), workers, func(i int) (ScalingPoint, error) {
		pointSeed := DeriveSeed(seed, i)
		start := time.Now()
		res, err := replicate.Run(prog, input, replicate.Options{
			Replicas: replicaCounts[i],
			HeapSize: heapSize,
			Seed:     pointSeed,
		})
		if err != nil {
			return ScalingPoint{}, err
		}
		h := fnv.New64a()
		h.Write(res.Output)
		return ScalingPoint{
			Replicas:   replicaCounts[i],
			Wall:       time.Since(start),
			Survivors:  res.Survivors,
			Agreed:     res.Agreed,
			Seed:       pointSeed,
			OutputHash: h.Sum64(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	for i := range points {
		points[i].RelativeToOne = float64(points[i].Wall) / float64(points[0].Wall)
	}
	return points, nil
}
