package exps

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the shared worker-pool campaign runner behind every
// Monte-Carlo experiment in the package. The design rule that makes
// parallel campaigns byte-identical to sequential ones (DESIGN.md §7):
//
//  1. a campaign is a fixed list of independent trials, indexed 0..n-1;
//  2. everything random in trial i derives from a seed that is a pure
//     function of the campaign seed and i (DeriveSeed), never from
//     shared generator state;
//  3. results are stored by trial index and reduced in index order.
//
// Scheduling then affects only *when* a trial runs, never what it
// computes or where its result lands, so workers=N and workers=1 produce
// identical bytes.

// Workers resolves a worker-count request: values below 1 select
// GOMAXPROCS, the engine's default.
func Workers(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// DeriveSeed returns the random seed for trial i of a campaign keyed by
// base. It is a SplitMix64 step — the finalizer scrambles every bit of
// (base, i) into the seed, so per-trial streams are decorrelated even
// for consecutive trial indices and small campaign seeds. Deterministic:
// the same (base, i) always yields the same seed, which is what keeps
// parallel campaigns reproducible and every failure replayable from its
// trial index alone. The result is never 0, so allocators seeded with it
// stay deterministic rather than drawing entropy.
func DeriveSeed(base uint64, trial int) uint64 {
	z := base + (uint64(trial)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	if z == 0 {
		return 0x5EED // seed 0 means "draw true randomness" downstream
	}
	return z
}

// mapTrials runs fn(i) for every i in [0, n) on `workers` goroutines and
// returns the results in index order. Trials are claimed from a shared
// counter (work stealing), so uneven trial costs balance across workers.
// The first error cancels the remaining unclaimed trials and is returned;
// with workers <= 1 the trials run inline, sequentially, on the caller's
// goroutine — the reference ordering the determinism tests compare
// against.
func mapTrials[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if n == 0 {
		return results, nil
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			r, err := fn(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}

	var (
		next     atomic.Int64
		failed   atomic.Bool
		firstErr error
		errOnce  sync.Once
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				r, err := fn(i)
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					failed.Store(true)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if failed.Load() {
		return nil, firstErr
	}
	return results, nil
}
