package exps

import (
	"fmt"
	"hash/fnv"

	"diehard/internal/core"
	"diehard/internal/detect"
	"diehard/internal/fault"
	"diehard/internal/heap"
	"diehard/internal/rng"
)

// This file is the detection campaign: the canary engine
// (internal/detect) graded against ground truth from internal/fault
// injection plans. Each cell of the table is one error type at one heap
// multiplier; half its trials carry a planned injected error, half are
// clean, and the cell reports trial-level precision and recall plus —
// for overflows — how often the cross-layout triage localized the
// culprit allocation site. Like every campaign in this package, the
// trials fan out over mapTrials with per-trial derived seeds, so the
// table is byte-identical for any worker count.

// DetectError names a detection-campaign error type.
type DetectError string

const (
	// DetectOverflow injects planned under-allocations
	// (fault.PlanOverflow): the program writes its requested size, which
	// overflows the shrunken object.
	DetectOverflow DetectError = "overflow"
	// DetectDangling injects planned premature frees
	// (fault.PlanDangling): the program's final write to the object goes
	// through a stale pointer.
	DetectDangling DetectError = "dangling"
	// DetectUninit skips the initialization of one object, which the
	// program then reads through the checked memory view.
	DetectUninit DetectError = "uninit"
)

// DetectErrors lists the campaign's error types in table order.
var DetectErrors = []DetectError{DetectOverflow, DetectDangling, DetectUninit}

// DetectPolicy names the detection tier a cell grades (DESIGN.md §15's
// three-tier story): the canary engine's probabilistic fingerprints,
// the generation tags' deterministic temporal checks, or the replicated
// random-fill divergence vote of the paper's own replicated mode.
type DetectPolicy string

const (
	// PolicyProbabilistic is the canary engine (internal/detect): errors
	// are caught when they damage a fingerprint, at the closed-form rates
	// the analysis package quantifies.
	PolicyProbabilistic DetectPolicy = "probabilistic"
	// PolicyGenTag is the generation-tagged tier: stale frees and stale
	// accesses are rejected deterministically by the tag check, so its
	// dangling precision and recall are exactly 1.
	PolicyGenTag DetectPolicy = "gentag"
	// PolicyReplicated is the replicated vote: the same program runs on
	// independently seeded random-fill replicas, and a read whose values
	// diverge across replicas exposes uninitialized data (Theorem 3's
	// mechanism, realized sequentially).
	PolicyReplicated DetectPolicy = "replicated"
)

// DetectPolicies lists the campaign's policy tiers in table order.
var DetectPolicies = []DetectPolicy{PolicyProbabilistic, PolicyGenTag, PolicyReplicated}

// detectReplicas is the replicated tier's vote size, the paper's
// recommended three.
const detectReplicas = 3

// Injection geometry of the overflow plan. MinSize 60 with delta 32
// pushes the victim into the next-smaller size class, so the program's
// full-size writes always cross the victim's slack (guaranteed canary
// damage at the free audit) and escape into the adjacent slot (the
// layout-dependent damage triage intersects away).
const (
	detectOverflowMinSize = 60
	detectOverflowDelta   = 32
	detectDanglingFreq    = 0.08
	detectDanglingDist    = 8
)

// DetectParams configures RunDetectionTable; zero values select the
// defaults.
type DetectParams struct {
	// Trials per cell (default 16); odd-indexed trials carry the
	// injected error, even-indexed trials are clean controls.
	Trials int
	// Layouts is the number of independently seeded heap layouts each
	// detected injected overflow trial is re-run under for triage
	// (default 16).
	Layouts int
	// Multipliers are the heap expansion factors M swept (default 2, 4).
	Multipliers []float64
	// HeapSize per trial heap (default 2 MB: small heaps keep barrier
	// audits cheap without changing the engine's behavior).
	HeapSize int
	// Allocs and Live shape the workload: Allocs allocations through a
	// ring of Live simultaneously live objects (defaults 160 and 24).
	Allocs int
	Live   int
	// Seed keys the per-trial seed derivation (default 0xDE7EC7).
	Seed uint64
}

func (p *DetectParams) defaults() {
	if p.Trials == 0 {
		p.Trials = 16
	}
	if p.Layouts == 0 {
		p.Layouts = 16
	}
	if len(p.Multipliers) == 0 {
		p.Multipliers = []float64{2, 4}
	}
	if p.HeapSize == 0 {
		p.HeapSize = 2 << 20
	}
	if p.Allocs == 0 {
		p.Allocs = 160
	}
	if p.Live == 0 {
		p.Live = 24
	}
	if p.Seed == 0 {
		p.Seed = 0xDE7EC7
	}
}

// DetectCell is one (policy, error type, multiplier) entry of the
// table.
type DetectCell struct {
	// Policy is the detection tier the cell grades. Probabilistic cells
	// are the original campaign; the gentag and replicated cells grade
	// the deterministic tiers of DESIGN.md §15 on the errors they
	// target (dangling and uninit respectively).
	Policy     DetectPolicy
	Error      DetectError
	Multiplier float64
	Trials     int
	Injected   int // trials that carried the planned error
	TruePos    int // injected and detected
	FalsePos   int // clean but detected
	FalseNeg   int // injected but missed
	TrueNeg    int
	Precision  float64 // TP / (TP + FP); 1 when nothing was flagged
	Recall     float64 // TP / (TP + FN); 1 when nothing was injected
	// TriageTrials counts detected injected overflow trials that were
	// re-run across the seeded layouts; TriageLocalized how many of
	// those pinned the true victim allocation site.
	TriageTrials    int
	TriageLocalized int
	// MeanOverflowLen is the mean inferred overflow extent over the
	// localized trials — a lower bound assembled from audited damage.
	MeanOverflowLen float64
	// OutputHash is 64-bit FNV-1a over the per-trial outcomes in trial
	// order: the determinism fingerprint the workers=1-vs-N tests
	// compare.
	OutputHash uint64
}

// DetectionTable is the full campaign result.
type DetectionTable struct {
	Params DetectParams
	Cells  []DetectCell
}

// detectTrialOut is one trial's deterministic outcome.
type detectTrialOut struct {
	injected  bool
	detected  bool
	triaged   bool
	localized bool
	length    int
	evidence  int
}

// runDetectWorkload is the deterministic campaign program: Allocs
// allocations of mixed sizes through a ring of Live objects; every
// object is initialized at birth (except the uninit victim), read and
// rewritten at full intended size just before its free. Reads go
// through mem — the checked view in detection runs — and the intended
// (pre-injection) sizes come from the program, exactly as a real
// application's writes would.
func runDetectWorkload(alloc heap.Allocator, mem heap.Memory, allocs, live, uninitVictim int) error {
	ring := make([]heap.Ptr, live)
	reqs := make([]int, live)
	for i := 0; i < allocs; i++ {
		slot := i % live
		if p := ring[slot]; p != heap.Null {
			if _, err := mem.Load64(p); err != nil {
				return err
			}
			// The program's final touch: write the full intended size.
			if err := mem.Memset(p, byte(0x60+i%8), reqs[slot]); err != nil {
				return err
			}
			if err := alloc.Free(p); err != nil {
				return err
			}
		}
		size := detectWorkloadSize(i)
		p, err := alloc.Malloc(size)
		if err != nil {
			return err
		}
		if i != uninitVictim {
			if err := mem.Memset(p, byte(0x40+i%8), size); err != nil {
				return err
			}
		}
		ring[slot] = p
		reqs[slot] = size
	}
	return nil
}

// detectWorkloadSize is the request-size schedule: 24..63 bytes, all
// residues, so the workload spans two size classes and includes
// overflow-eligible (>= 60 byte) requests.
func detectWorkloadSize(i int) int { return 24 + (i*13)%40 }

// detectTrace runs the workload once under a tracing allocator to
// produce the allocation log the fault plans draw from. Allocation
// order is a property of the program, so one trace serves every trial.
func detectTrace(p DetectParams) (*fault.Trace, error) {
	h, err := core.New(core.Options{HeapSize: p.HeapSize, Seed: 0xC1EA})
	if err != nil {
		return nil, err
	}
	tracer := fault.NewTracer(h)
	if err := runDetectWorkload(tracer, h.Mem(), p.Allocs, p.Live, -1); err != nil {
		return nil, fmt.Errorf("exps: detection trace run failed: %w", err)
	}
	return tracer.Trace(), nil
}

// runDetectLayout executes one seeded layout of a trial and returns the
// detector's report. crashed reports a simulated crash (an injected
// overflow can run off the end of a subregion into its guard page —
// the randomized heap's own detection mechanism); the detector's
// evidence up to the crash is still returned.
func runDetectLayout(p DetectParams, mult float64, layoutSeed uint64,
	oplan *fault.OverflowPlan, dplan *fault.DanglingPlan, uninitVictim int) (rep *detect.Report, crashed bool, err error) {
	dh, err := detect.New(
		core.Options{HeapSize: p.HeapSize, M: mult, Seed: layoutSeed},
		detect.Options{},
	)
	if err != nil {
		return nil, false, err
	}
	var alloc heap.Allocator = dh
	switch {
	case oplan != nil:
		alloc = fault.NewPlannedOverflowInjector(dh, oplan)
	case dplan != nil:
		alloc = fault.NewDanglingInjector(dh, dplan)
	}
	runErr := runDetectWorkload(alloc, dh.Memory(), p.Allocs, p.Live, uninitVictim)
	if runErr != nil && !heap.IsCrash(runErr) {
		return nil, false, runErr
	}
	dh.Detector().HeapCheck()
	return dh.Detector().Report(), runErr != nil, nil
}

// detectKindOf maps a campaign error type to the evidence kind it
// grades against.
func detectKindOf(e DetectError) detect.Kind {
	switch e {
	case DetectOverflow:
		return detect.KindOverflow
	case DetectDangling:
		return detect.KindDangling
	default:
		return detect.KindUninit
	}
}

func hasKind(r *detect.Report, k detect.Kind) bool {
	for _, ev := range r.Evidence {
		if ev.Kind == k {
			return true
		}
	}
	return false
}

// runGenTagTrial executes one generation-tagged trial: the campaign
// workload driven through the fat-pointer API and the GenMemory view.
// An injected trial frees the victim prematurely but keeps its fat
// pointer in the ring, so the program's later read, rewrite, and free
// of the victim are stale accesses and a stale free. Detection is
// deterministic — the tag check cannot miss a dead pointer (recall 1)
// and cannot fire on a live one (precision 1) — which is the point the
// cell's exact 1.0 columns record.
func runGenTagTrial(p DetectParams, mult float64, layoutSeed uint64, victim int) (detectTrialOut, error) {
	dh, err := detect.New(
		core.Options{HeapSize: p.HeapSize, M: mult, Seed: layoutSeed, GenTags: true},
		detect.Options{},
	)
	if err != nil {
		return detectTrialOut{}, err
	}
	gm := dh.GenMemory()
	ring := make([]heap.FatPtr, p.Live)
	reqs := make([]int, p.Live)
	for i := 0; i < p.Allocs; i++ {
		slot := i % p.Live
		if fp := ring[slot]; fp.Addr != heap.Null {
			if _, err := gm.Load64(fp, 0); err != nil {
				return detectTrialOut{}, err
			}
			if err := gm.Memset(fp, 0, byte(0x60+i%8), reqs[slot]); err != nil {
				return detectTrialOut{}, err
			}
			// A stale free returns accepted=false, not an error: the
			// program plows on, exactly like a real double free under
			// this tier.
			if _, err := dh.FreeFat(fp); err != nil {
				return detectTrialOut{}, err
			}
		}
		size := detectWorkloadSize(i)
		fp, err := dh.MallocFat(size)
		if err != nil {
			return detectTrialOut{}, err
		}
		if err := gm.Memset(fp, 0, byte(0x40+i%8), size); err != nil {
			return detectTrialOut{}, err
		}
		if i == victim {
			// The injected error: the object dies now, but its fat
			// pointer stays in the ring for the revisit.
			if ok, err := dh.FreeFat(fp); !ok || err != nil {
				return detectTrialOut{}, fmt.Errorf("exps: premature free rejected: %v, %v", ok, err)
			}
		}
		ring[slot] = fp
		reqs[slot] = size
	}
	dh.Detector().HeapCheck()
	rep := dh.Detector().Report()
	return detectTrialOut{
		injected: victim >= 0,
		detected: hasKind(rep, detect.KindStaleFree) || hasKind(rep, detect.KindStaleAccess),
		evidence: len(rep.Evidence),
	}, nil
}

// recordingMem captures the value stream of the program's Load64 reads
// so replicated runs can be compared position by position.
type recordingMem struct {
	heap.Memory
	vals []uint64
}

func (m *recordingMem) Load64(addr uint64) (uint64, error) {
	v, err := m.Memory.Load64(addr)
	if err == nil {
		m.vals = append(m.vals, v)
	}
	return v, err
}

// runReplicatedTrial executes one replicated-tier trial: the same
// campaign program runs to completion on detectReplicas independently
// seeded random-fill core heaps, and the replicas' read streams are
// compared position by position. The program's own writes are
// deterministic, so clean replicas read byte-identical values; a read
// of never-initialized memory returns each replica's private random
// fill and the position diverges — Theorem 3's voting mechanism,
// realized sequentially.
func runReplicatedTrial(p DetectParams, mult float64, trialSeed uint64, victim int) (detectTrialOut, error) {
	streams := make([][]uint64, detectReplicas)
	for k := 0; k < detectReplicas; k++ {
		h, err := core.New(core.Options{
			HeapSize:   p.HeapSize,
			M:          mult,
			Seed:       DeriveSeed(trialSeed, 0x5E0+k),
			RandomFill: true,
		})
		if err != nil {
			return detectTrialOut{}, err
		}
		rm := &recordingMem{Memory: h.Mem()}
		if err := runDetectWorkload(h, rm, p.Allocs, p.Live, victim); err != nil {
			return detectTrialOut{}, err
		}
		if k > 0 && len(rm.vals) != len(streams[0]) {
			return detectTrialOut{}, fmt.Errorf("exps: replica read streams diverged in length (%d vs %d)",
				len(rm.vals), len(streams[0]))
		}
		streams[k] = rm.vals
	}
	diverged := 0
	for i := range streams[0] {
		for k := 1; k < detectReplicas; k++ {
			if streams[k][i] != streams[0][i] {
				diverged++
				break
			}
		}
	}
	return detectTrialOut{
		injected: victim >= 0,
		detected: diverged > 0,
		evidence: diverged,
	}, nil
}

// RunDetectionTable grades the canary detection engine against planned
// fault injection: for every error type and heap multiplier, half the
// trials carry an injected error with known ground truth and half are
// clean controls, yielding trial-level precision and recall. Detected
// injected overflow trials are additionally re-run under Layouts
// independently seeded heap layouts and triaged (detect.Triage); the
// cell records how often the intersection localized the true victim
// allocation site.
//
// Trials fan out across `workers` goroutines on the campaign engine;
// every trial's randomness derives from the campaign seed and its index
// (DeriveSeed), so the table — including every OutputHash — is
// byte-identical for any worker count.
func RunDetectionTable(params DetectParams, workers int) (*DetectionTable, error) {
	p := params
	p.defaults()
	if p.Live < 1 || p.Allocs <= p.Live {
		// The uninit victim must be freed (and therefore read) before the
		// workload ends, which needs Allocs > Live ring slots.
		return nil, fmt.Errorf("exps: detection workload needs Allocs (%d) > Live (%d) >= 1", p.Allocs, p.Live)
	}
	trace, err := detectTrace(p)
	if err != nil {
		return nil, err
	}
	type cellSpec struct {
		policy DetectPolicy
		kind   DetectError
		mult   float64
	}
	var specs []cellSpec
	// Probabilistic cells come first and keep the original spec order,
	// so the global trial index g — and with it DeriveSeed(p.Seed, g) —
	// of every pre-existing cell is unchanged and its OutputHash stays
	// pinned to the PR-4 recording. The deterministic tiers append after
	// with fresh indices.
	for _, m := range p.Multipliers {
		for _, k := range DetectErrors {
			specs = append(specs, cellSpec{policy: PolicyProbabilistic, kind: k, mult: m})
		}
	}
	for _, m := range p.Multipliers {
		specs = append(specs, cellSpec{policy: PolicyGenTag, kind: DetectDangling, mult: m})
	}
	for _, m := range p.Multipliers {
		specs = append(specs, cellSpec{policy: PolicyReplicated, kind: DetectUninit, mult: m})
	}
	outs, err := mapTrials(len(specs)*p.Trials, workers, func(g int) (detectTrialOut, error) {
		spec := specs[g/p.Trials]
		t := g % p.Trials
		trialSeed := DeriveSeed(p.Seed, g)
		injected := t%2 == 1
		switch spec.policy {
		case PolicyGenTag:
			victim := -1
			if injected {
				victim = int(DeriveSeed(trialSeed, 0xFA7) % uint64(p.Allocs-p.Live))
			}
			return runGenTagTrial(p, spec.mult, DeriveSeed(trialSeed, 0), victim)
		case PolicyReplicated:
			victim := -1
			if injected {
				victim = int(DeriveSeed(trialSeed, 0xBEEF) % uint64(p.Allocs-p.Live))
			}
			return runReplicatedTrial(p, spec.mult, trialSeed, victim)
		}
		var (
			oplan      *fault.OverflowPlan
			dplan      *fault.DanglingPlan
			uninit     = -1
			victimSite = -1
		)
		if injected {
			switch spec.kind {
			case DetectOverflow:
				oplan = fault.PlanOverflow(trace, 1, detectOverflowMinSize, detectOverflowDelta, trialSeed)
				if v := oplan.Victims(); len(v) == 1 {
					victimSite = v[0]
				} else {
					injected = false // no eligible allocation (degenerate params)
					oplan = nil
				}
			case DetectDangling:
				dplan = fault.PlanDangling(trace, detectDanglingFreq, detectDanglingDist, trialSeed)
				if dplan.Injected == 0 {
					injected = false
					dplan = nil
				}
			case DetectUninit:
				// A victim that is freed (and therefore read) before the
				// workload ends.
				uninit = int(DeriveSeed(trialSeed, 0xBEEF) % uint64(p.Allocs-p.Live))
			}
		}
		rep, crashed, err := runDetectLayout(p, spec.mult, DeriveSeed(trialSeed, 0), oplan, dplan, uninit)
		if err != nil {
			return detectTrialOut{}, err
		}
		if crashed && !injected {
			return detectTrialOut{}, fmt.Errorf("exps: clean detection trial crashed")
		}
		out := detectTrialOut{
			injected: injected,
			// A guard-page crash during an injected run is a detection by
			// the heap itself, counted alongside the canary evidence.
			detected: hasKind(rep, detectKindOf(spec.kind)) || (crashed && injected),
			evidence: len(rep.Evidence),
		}
		if spec.kind == DetectOverflow && injected && out.detected {
			reports := []*detect.Report{rep}
			for l := 1; l < p.Layouts; l++ {
				lr, _, err := runDetectLayout(p, spec.mult, DeriveSeed(trialSeed, l), oplan, dplan, uninit)
				if err != nil {
					return detectTrialOut{}, err
				}
				reports = append(reports, lr)
			}
			tri := detect.Triage(detect.KindOverflow, reports)
			out.triaged = true
			out.localized = tri.Culprit == victimSite
			out.length = tri.OverflowLen
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	table := &DetectionTable{Params: p}
	for ci, spec := range specs {
		cell := DetectCell{Policy: spec.policy, Error: spec.kind, Multiplier: spec.mult, Trials: p.Trials}
		h := fnv.New64a()
		var lenSum int
		for t := 0; t < p.Trials; t++ {
			o := outs[ci*p.Trials+t]
			switch {
			case o.injected && o.detected:
				cell.TruePos++
			case o.injected && !o.detected:
				cell.FalseNeg++
			case !o.injected && o.detected:
				cell.FalsePos++
			default:
				cell.TrueNeg++
			}
			if o.injected {
				cell.Injected++
			}
			if o.triaged {
				cell.TriageTrials++
				if o.localized {
					cell.TriageLocalized++
					lenSum += o.length
				}
			}
			var rec [8]byte
			rec[0] = b2b(o.injected)
			rec[1] = b2b(o.detected)
			rec[2] = b2b(o.triaged)
			rec[3] = b2b(o.localized)
			rec[4] = byte(o.length)
			rec[5] = byte(o.length >> 8)
			rec[6] = byte(o.evidence)
			rec[7] = byte(o.evidence >> 8)
			h.Write(rec[:])
		}
		cell.Precision = ratioOrOne(cell.TruePos, cell.TruePos+cell.FalsePos)
		cell.Recall = ratioOrOne(cell.TruePos, cell.TruePos+cell.FalseNeg)
		if cell.TriageLocalized > 0 {
			cell.MeanOverflowLen = float64(lenSum) / float64(cell.TriageLocalized)
		}
		cell.OutputHash = h.Sum64()
		table.Cells = append(table.Cells, cell)
	}
	return table, nil
}

func b2b(v bool) byte {
	if v {
		return 1
	}
	return 0
}

func ratioOrOne(num, den int) float64 {
	if den == 0 {
		return 1
	}
	return float64(num) / float64(den)
}

// EmpiricalOverflowDetect measures, on real detection heaps, the
// probability that an overflow of `objects` object-widths past a random
// live 64-byte object is caught by the canary sweep, with the class
// filled to the given fraction. Detection requires the damage to touch
// free (canary) space, so the measured rate validates
// analysis.CanaryOverflowDetectProb(fullness, objects) — the detection
// complement of Theorem 1's masking probability.
func EmpiricalOverflowDetect(fullness float64, objects, trials, heapSize int, seed uint64) (float64, error) {
	if fullness <= 0 || fullness > 0.5 {
		return 0, fmt.Errorf("exps: fullness %v outside (0, 1/2]", fullness)
	}
	if objects < 1 {
		return 0, fmt.Errorf("exps: objects must be >= 1")
	}
	const size = 64
	detected := 0
	for t := 0; t < trials; t++ {
		trialSeed := DeriveSeed(seed, t)
		dh, err := detect.New(core.Options{HeapSize: heapSize, Seed: trialSeed}, detect.Options{})
		if err != nil {
			return 0, err
		}
		total, _ := dh.ClassSlots(core.ClassFor(size))
		want := int(fullness * float64(total))
		ptrs := make([]heap.Ptr, want)
		for i := range ptrs {
			p, err := dh.Malloc(size)
			if err != nil {
				return 0, err
			}
			// Fully written live objects: an overflow onto them leaves no
			// canary damage, which is exactly the miss case.
			if err := dh.Mem().Memset(p, byte(0x11+i%7), size); err != nil {
				return 0, err
			}
			ptrs[i] = p
		}
		r := rng.NewSeeded(trialSeed + 1)
		victim := ptrs[r.Intn(want)]
		// Stay inside the subregion: the write must land on slots, not on
		// the guard page or the mapped tail.
		for {
			end := victim + uint64(size*(objects+1)) - 1
			if base, _, _, ok := dh.SlotAt(end); ok && base != 0 {
				break
			}
			victim = ptrs[r.Intn(want)]
		}
		if err := dh.Mem().Memset(victim+size, 0xD0, size*objects); err != nil {
			return 0, err
		}
		if dh.Detector().HeapCheckFull() > 0 {
			detected++
		}
	}
	return float64(detected) / float64(trials), nil
}
