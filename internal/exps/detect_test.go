package exps

import (
	"math"
	"reflect"
	"testing"

	"diehard/internal/analysis"
)

// tinyDetectParams keeps the always-run determinism test fast.
func tinyDetectParams() DetectParams {
	return DetectParams{
		Trials:      4,
		Layouts:     4,
		Multipliers: []float64{2},
		HeapSize:    1 << 20,
		Allocs:      80,
		Live:        16,
		Seed:        0xFACE,
	}
}

func TestDetectionTableParallelDeterminism(t *testing.T) {
	seq, err := RunDetectionTable(tinyDetectParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunDetectionTable(tinyDetectParams(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("detection table differs between workers=1 and workers=8:\nseq: %+v\npar: %+v", seq.Cells, par.Cells)
	}
	for _, c := range seq.Cells {
		if c.OutputHash == 0 {
			t.Errorf("cell %s x%v recorded no output hash", c.Error, c.Multiplier)
		}
	}
}

// TestDetectionTableAcceptance is the campaign's headline claim: at
// multiplier 2 with the 8-byte canary, injected overflows are flagged
// with precision >= 0.99, and the cross-layout triage localizes the
// culprit allocation site in >= 90% of detected overflow trials across
// 16 seeded layouts.
func TestDetectionTableAcceptance(t *testing.T) {
	skipIfShort(t)
	table, err := RunDetectionTable(DetectParams{}, 0) // defaults: 16 trials, 16 layouts
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range table.Cells {
		if c.Multiplier != 2 {
			continue
		}
		switch c.Policy {
		case PolicyGenTag:
			// The deterministic tier's headline: generation tags reject
			// every stale free/access and never fire on a live object,
			// so dangling precision and recall are exactly 1 — not
			// thresholds, identities.
			if c.Precision != 1.0 || c.Recall != 1.0 {
				t.Errorf("gentag dangling precision %.3f recall %.3f; want exactly 1.0 (%+v)",
					c.Precision, c.Recall, c)
			}
			continue
		case PolicyReplicated:
			// Three random-fill replicas: a clean read stream never
			// diverges, an uninit read diverges with overwhelming
			// probability (Theorem 3); at these trial counts that is
			// exact too.
			if c.Precision != 1.0 || c.Recall != 1.0 {
				t.Errorf("replicated uninit precision %.3f recall %.3f; want 1.0 (%+v)",
					c.Precision, c.Recall, c)
			}
			continue
		}
		switch c.Error {
		case DetectOverflow:
			if c.Precision < 0.99 {
				t.Errorf("overflow precision %.3f < 0.99 at M=2 (%+v)", c.Precision, c)
			}
			if c.Recall < 0.9 {
				t.Errorf("overflow recall %.3f < 0.9 at M=2 (%+v)", c.Recall, c)
			}
			if c.TriageTrials == 0 {
				t.Errorf("no overflow trials reached triage (%+v)", c)
			} else if rate := float64(c.TriageLocalized) / float64(c.TriageTrials); rate < 0.9 {
				t.Errorf("triage localized %.3f < 0.9 of detected overflow trials (%+v)", rate, c)
			}
		case DetectDangling:
			if c.Precision < 0.99 {
				t.Errorf("dangling precision %.3f < 0.99 (%+v)", c.Precision, c)
			}
			if c.Recall < 0.75 {
				t.Errorf("dangling recall %.3f implausibly low (%+v)", c.Recall, c)
			}
		case DetectUninit:
			// The canary read check is at least as strong as the
			// replicated detector's distinct-fill argument: Theorem 3
			// gives the probability that 3 replicas' 32-bit fills are
			// pairwise distinct, and a read of a never-written word here
			// always observes the canary.
			if want := analysis.UninitDetectProb(32, 3) - 0.01; c.Recall < want {
				t.Errorf("uninit recall %.3f below the Theorem 3 floor %.3f (%+v)", c.Recall, want, c)
			}
			if c.Precision < 0.99 {
				t.Errorf("uninit precision %.3f < 0.99 (%+v)", c.Precision, c)
			}
		}
	}
}

// TestCanaryDetectMatchesTheorem1Complement brackets the measured
// detection rate of escaped overflows against the closed form: an
// overflow of O object-widths is caught iff it touches free (canary)
// space, so the rate must track 1 - fullness^O — the complement of
// Theorem 1's masking probability (analysis.CanaryOverflowDetectProb).
func TestCanaryDetectMatchesTheorem1Complement(t *testing.T) {
	skipIfShort(t)
	const heapSize = 3 << 20
	for _, tc := range []struct {
		fullness float64
		objects  int
	}{
		{0.25, 1},
		{0.5, 1},
		{0.5, 2},
	} {
		got, err := EmpiricalOverflowDetect(tc.fullness, tc.objects, 300, heapSize, 0xCAFE)
		if err != nil {
			t.Fatal(err)
		}
		want := analysis.CanaryOverflowDetectProb(tc.fullness, tc.objects)
		if math.Abs(got-want) > 0.07 {
			t.Errorf("fullness=%v O=%d: empirical detect %.3f vs closed form %.3f",
				tc.fullness, tc.objects, got, want)
		}
	}
}
