package exps

import (
	"errors"
	"fmt"

	"diehard/internal/core"
	"diehard/internal/gcsim"
	"diehard/internal/heap"
	"diehard/internal/leaalloc"
	"diehard/internal/policies"
	"diehard/internal/replicate"
)

// Outcome classifies how a run of an error scenario ended, matching the
// vocabulary of Table 1: correct execution, undefined behaviour (crash,
// hang, or silently wrong output), or a controlled abort.
type Outcome string

const (
	OutcomeCorrect   Outcome = "correct"
	OutcomeUndefined Outcome = "undefined"
	OutcomeAbort     Outcome = "abort"
)

// ErrorClass names the six memory-error rows of Table 1.
type ErrorClass string

const (
	ErrMetadataOverwrite ErrorClass = "heap metadata overwrites"
	ErrInvalidFree       ErrorClass = "invalid frees"
	ErrDoubleFree        ErrorClass = "double frees"
	ErrDangling          ErrorClass = "dangling pointers"
	ErrOverflow          ErrorClass = "buffer overflows"
	ErrUninitRead        ErrorClass = "uninitialized reads"
)

// TableClasses lists the rows in the paper's order.
var TableClasses = []ErrorClass{
	ErrMetadataOverwrite, ErrInvalidFree, ErrDoubleFree,
	ErrDangling, ErrOverflow, ErrUninitRead,
}

// TableSystems lists the columns in the paper's order.
var TableSystems = []string{"GNU libc", "BDW GC", "CCured", "Rx", "Failure-oblivious", "DieHard"}

// scenario is one error-class program: it runs against an allocator and
// memory view, returning its observable output. The harness compares
// the output against Expected, computed from the program's intended
// semantics (what an infinite heap would produce).
type scenario struct {
	class    ErrorClass
	expected string
	run      func(alloc heap.Allocator, mem heap.Memory) (string, error)
}

var errWrongOutput = errors.New("exps: wrong output")

// writeByteLoop writes n bytes one at a time, like a C loop; checked
// runtimes then act per access rather than per bulk operation.
func writeByteLoop(mem heap.Memory, p heap.Ptr, v byte, n int) error {
	for i := 0; i < n; i++ {
		if err := mem.Store8(p+uint64(i), v); err != nil {
			return err
		}
	}
	return nil
}

// readByteLoop reads n bytes one at a time and reports how many held v.
func readByteLoop(mem heap.Memory, p heap.Ptr, v byte, n int) (int, error) {
	match := 0
	for i := 0; i < n; i++ {
		b, err := mem.Load8(p + uint64(i))
		if err != nil {
			return match, err
		}
		if b == v {
			match++
		}
	}
	return match, nil
}

// overflowScenario overflows a 40-byte object by (total-40) bytes
// through a byte loop, reads the whole range back, and checks a
// neighboring object's sentinel. On an infinite heap the write lands in
// boundless free space, so the read-back matches and the neighbor is
// intact. The fill byte 'N' (0x4E) has a zero low bit, so a smashed
// boundary tag reads as a free chunk with an absurd size — the shape of
// corruption glibc's assertions catch.
func overflowScenario(class ErrorClass, total int) scenario {
	return scenario{
		class:    class,
		expected: fmt.Sprintf("pattern=%d sentinel=5e47 alive=ok", total),
		run: func(alloc heap.Allocator, mem heap.Memory) (string, error) {
			a, err := alloc.Malloc(40)
			if err != nil {
				return "", err
			}
			b, err := alloc.Malloc(40)
			if err != nil {
				return "", err
			}
			if err := mem.Store64(b, 0x5e47); err != nil {
				return "", err
			}
			if err := writeByteLoop(mem, a, 'N', total); err != nil {
				return "", err
			}
			match, err := readByteLoop(mem, a, 'N', total)
			if err != nil {
				return "", err
			}
			sentinel, err := mem.Load64(b)
			if err != nil {
				return "", err
			}
			// Exercise the allocator over the damaged region, as the
			// program's continued execution would.
			if err := alloc.Free(a); err != nil {
				return "", err
			}
			alive := "ok"
			if p, err := alloc.Malloc(40); err != nil {
				return "", err
			} else if err := mem.Store64(p, 1); err != nil {
				return "", err
			}
			return fmt.Sprintf("pattern=%d sentinel=%x alive=%s", match, sentinel, alive), nil
		},
	}
}

// scenarios builds the six Table 1 rows.
//
// Note on the metadata row: the BDW baseline's descriptors live outside
// the simulated heap (DESIGN.md §1), so "metadata overwrite" for it is
// represented by the same overwrite corrupting the neighboring object —
// the observable undefined behaviour is identical. The row is
// distinguished from the buffer-overflow row by overwrite size: small
// enough for Rx's padding to absorb (metadata, where the paper credits
// Rx) versus larger than any padding (overflow, where it does not).
func scenarios() []scenario {
	return []scenario{
		overflowScenario(ErrMetadataOverwrite, 72),
		{
			class:    ErrInvalidFree,
			expected: "sentinel=c0ffee after=1",
			run: func(alloc heap.Allocator, mem heap.Memory) (string, error) {
				a, err := alloc.Malloc(64)
				if err != nil {
					return "", err
				}
				if err := mem.Store64(a, 0xc0ffee); err != nil {
					return "", err
				}
				if err := alloc.Free(a + 8); err != nil { // interior pointer
					return "", err
				}
				p, err := alloc.Malloc(64)
				if err != nil {
					return "", err
				}
				if err := mem.Store64(p, 1); err != nil {
					return "", err
				}
				after, err := mem.Load64(p)
				if err != nil {
					return "", err
				}
				sentinel, err := mem.Load64(a)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("sentinel=%x after=%d", sentinel, after), nil
			},
		},
		{
			class:    ErrDoubleFree,
			expected: "x=1111 y=2222",
			run: func(alloc heap.Allocator, mem heap.Memory) (string, error) {
				a, err := alloc.Malloc(48)
				if err != nil {
					return "", err
				}
				if _, err := alloc.Malloc(48); err != nil { // barrier
					return "", err
				}
				if err := alloc.Free(a); err != nil {
					return "", err
				}
				if err := alloc.Free(a); err != nil { // the double free
					return "", err
				}
				x, err := alloc.Malloc(48)
				if err != nil {
					return "", err
				}
				if err := mem.Store64(x, 0x1111); err != nil {
					return "", err
				}
				y, err := alloc.Malloc(48)
				if err != nil {
					return "", err
				}
				if err := mem.Store64(y, 0x2222); err != nil {
					return "", err
				}
				xv, err := mem.Load64(x)
				if err != nil {
					return "", err
				}
				yv, err := mem.Load64(y)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("x=%x y=%x", xv, yv), nil
			},
		},
		{
			class:    ErrDangling,
			expected: "value=feed",
			run: func(alloc heap.Allocator, mem heap.Memory) (string, error) {
				a, err := alloc.Malloc(48)
				if err != nil {
					return "", err
				}
				if err := mem.Store64(a, 0xfeed); err != nil {
					return "", err
				}
				if err := alloc.Free(a); err != nil { // premature free
					return "", err
				}
				// Fifty intervening allocations, all kept live.
				for i := 0; i < 50; i++ {
					p, err := alloc.Malloc(48)
					if err != nil {
						return "", err
					}
					if err := mem.Store64(p, 0xBBBB); err != nil {
						return "", err
					}
				}
				v, err := mem.Load64(a) // use after free
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("value=%x", v), nil
			},
		},
		overflowScenario(ErrOverflow, 240),
		{
			class:    ErrUninitRead,
			expected: "value=0",
			run: func(alloc heap.Allocator, mem heap.Memory) (string, error) {
				// Churn enough dirty allocation volume that reuse-based
				// allocators hand back stale memory, and that collected
				// heaps cycle objects out of the conservative recent
				// generations and recycle their slots.
				for i := 0; i < 30000; i++ {
					p, err := alloc.Malloc(64)
					if err != nil {
						return "", err
					}
					if err := mem.Memset(p, 0xAA, 64); err != nil {
						return "", err
					}
					if err := alloc.Free(p); err != nil {
						return "", err
					}
				}
				v, err := alloc.Malloc(64)
				if err != nil {
					return "", err
				}
				// The programmer assumed zeroed memory.
				got, err := mem.Load64(v)
				if err != nil {
					return "", err
				}
				return fmt.Sprintf("value=%x", got), nil
			},
		},
	}
}

// ErrorTable is the reproduced Table 1.
type ErrorTable struct {
	Classes []ErrorClass
	Systems []string
	Cell    map[ErrorClass]map[string]Outcome
}

// classify maps a scenario result to a Table 1 entry.
func classify(out string, err error, expected string) Outcome {
	if err != nil {
		if heap.IsAbort(err) {
			return OutcomeAbort
		}
		return OutcomeUndefined // crash, corruption, or hang
	}
	if out == expected {
		return OutcomeCorrect
	}
	return OutcomeUndefined
}

const tableHeap = 8 << 20

// diehardTrials is the number of seeds used for DieHard's probabilistic
// cells; a cell is "correct" when at least 80% of trials are.
const diehardTrials = 10

// RunErrorTable reproduces Table 1 empirically: each error-class
// scenario runs under each system and the observed behaviour is
// classified. DieHard cells are majorities over differently seeded
// trials, reflecting the paper's probabilistic asterisks; its
// uninitialized-read cell runs under the replicated runtime, where
// detection means termination ("abort" in the table).
//
// The (class, system) cells are independent and fully seeded, so they
// fan out across the campaign worker pool: the table for workers = N is
// identical to the table for workers = 1.
func RunErrorTable(workers int) (*ErrorTable, error) {
	scen := scenarios()
	type cell struct {
		s      scenario
		system string
	}
	var cells []cell
	for _, s := range scen {
		for _, system := range TableSystems {
			cells = append(cells, cell{s, system})
		}
	}
	outcomes, err := mapTrials(len(cells), workers, func(i int) (Outcome, error) {
		o, err := runScenario(cells[i].system, cells[i].s)
		if err != nil {
			return o, fmt.Errorf("%s / %s: %w", cells[i].s.class, cells[i].system, err)
		}
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	table := &ErrorTable{
		Classes: TableClasses,
		Systems: TableSystems,
		Cell:    make(map[ErrorClass]map[string]Outcome),
	}
	for i, c := range cells {
		if table.Cell[c.s.class] == nil {
			table.Cell[c.s.class] = make(map[string]Outcome)
		}
		table.Cell[c.s.class][c.system] = outcomes[i]
	}
	return table, nil
}

func runScenario(system string, s scenario) (Outcome, error) {
	switch system {
	case "GNU libc":
		h, err := leaalloc.New(leaalloc.Options{HeapSize: tableHeap})
		if err != nil {
			return "", err
		}
		out, runErr := s.run(h, h.Mem())
		return classify(out, runErr, s.expected), nil

	case "BDW GC":
		h, err := gcsim.New(gcsim.Options{HeapSize: tableHeap})
		if err != nil {
			return "", err
		}
		out, runErr := s.run(h, h.Mem())
		return classify(out, runErr, s.expected), nil

	case "CCured":
		f, err := policies.NewFailStop(tableHeap)
		if err != nil {
			return "", err
		}
		out, runErr := s.run(f, f.Memory())
		return classify(out, runErr, s.expected), nil

	case "Failure-oblivious":
		f, err := policies.NewFailOblivious(tableHeap)
		if err != nil {
			return "", err
		}
		out, runErr := s.run(f, f.Memory())
		return classify(out, runErr, s.expected), nil

	case "Rx":
		res := policies.RunRx(tableHeap, func(a heap.Allocator) error {
			out, err := s.run(a, a.Mem())
			if err != nil {
				return err
			}
			if out != s.expected {
				return errWrongOutput
			}
			return nil
		})
		if res.Err == nil {
			return OutcomeCorrect, nil
		}
		return OutcomeUndefined, nil

	case "DieHard":
		if s.class == ErrUninitRead {
			return runDieHardUninit(s)
		}
		correct := 0
		for seed := uint64(1); seed <= diehardTrials; seed++ {
			h, err := core.New(core.Options{Seed: seed}) // paper defaults: 384 MB, M=2
			if err != nil {
				return "", err
			}
			out, runErr := s.run(h, h.Mem())
			if classify(out, runErr, s.expected) == OutcomeCorrect {
				correct++
			}
		}
		if correct >= diehardTrials*8/10 {
			return OutcomeCorrect, nil
		}
		return OutcomeUndefined, nil
	}
	return "", fmt.Errorf("exps: unknown system %q", system)
}

// runDieHardUninit runs the uninitialized-read scenario under the
// replicated runtime: the randomized fills make replicas disagree, the
// voter detects it, and execution terminates — the "abort*" cell.
func runDieHardUninit(s scenario) (Outcome, error) {
	prog := func(ctx *replicate.Context) error {
		out, err := s.run(ctx.Alloc, ctx.Mem)
		if err != nil {
			return err
		}
		_, err = ctx.Out.Write([]byte(out))
		return err
	}
	res, err := replicate.Run(prog, nil, replicate.Options{Replicas: 3, Seed: 0xD1CE})
	if err != nil {
		return "", err
	}
	if res.UninitSuspected {
		return OutcomeAbort, nil
	}
	if res.Agreed && string(res.Output) == s.expected {
		return OutcomeCorrect, nil
	}
	return OutcomeUndefined, nil
}
