package exps

import (
	"math"
	"runtime"
	"testing"

	"diehard/internal/analysis"
	"diehard/internal/apps"
	"diehard/internal/replicate"
)

// --- Figure 4(a): buffer overflow masking, validated on the real
// allocator ---

func TestFigure4aReproduction(t *testing.T) {
	skipIfShort(t)
	const heapSize = 3 << 20 // 256 KB per class: fast fills, same math
	for _, tc := range []struct {
		fullness float64
		k        int
	}{
		{1.0 / 8, 1},
		{1.0 / 8, 3},
		{1.0 / 4, 1},
		{1.0 / 2, 1},
	} {
		want := analysis.OverflowMaskProb(tc.fullness, 1, tc.k)
		got, err := EmpiricalOverflowMask(tc.fullness, tc.k, 2000, heapSize, 42)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.04 {
			t.Errorf("fullness=%v k=%d: empirical %.3f vs Theorem 1 %.3f",
				tc.fullness, tc.k, got, want)
		}
	}
}

// --- Figure 4(b): dangling masking, validated on the real allocator ---

func TestFigure4bReproduction(t *testing.T) {
	skipIfShort(t)
	// Small heap so the effect is measurable: 12 pages -> class-64
	// partition is one page = 64 slots.
	const heapSize = 12 << 12
	for _, tc := range []struct {
		size, allocs int
	}{
		{64, 8},
		{64, 16},
		{64, 24},
	} {
		got, err := EmpiricalDanglingMask(tc.size, tc.allocs, 3000, heapSize, 7)
		if err != nil {
			t.Fatal(err)
		}
		// q = one page / 64 = 64 slots; Theorem 2 bound = 1 - A/q.
		want := 1 - float64(tc.allocs)/64
		if got < want-0.05 {
			t.Errorf("S=%d A=%d: empirical %.3f below Theorem 2 bound %.3f",
				tc.size, tc.allocs, got, want)
		}
		if got > want+0.08 {
			t.Errorf("S=%d A=%d: empirical %.3f implausibly above bound %.3f",
				tc.size, tc.allocs, got, want)
		}
	}
}

// --- §6.2 worked example ---

func TestDanglingWorkedExample(t *testing.T) {
	p := analysis.DanglingMaskProb(10000, 8, analysis.DefaultClassFreeBytes, 1)
	if p <= 0.995 {
		t.Fatalf("default-config 8-byte/10000-alloc masking = %v, paper says > 99.5%%", p)
	}
}

// --- §4.2 expected probes ---

func TestExpectedProbesMatchesBound(t *testing.T) {
	skipIfShort(t)
	for _, m := range []float64{2, 4} {
		got, err := EmpiricalProbeCount(m, 3<<20, 99)
		if err != nil {
			t.Fatal(err)
		}
		want := 1 / (1 - 1/m)
		if math.Abs(got-want) > 0.2 {
			t.Errorf("M=%v: mean probes %.3f, expected about %.3f", m, got, want)
		}
	}
}

// --- Table 1 ---

func TestTable1ErrorMatrix(t *testing.T) {
	skipIfShort(t)
	table, err := RunErrorTable(1)
	if err != nil {
		t.Fatal(err)
	}
	want := map[ErrorClass]map[string]Outcome{
		ErrMetadataOverwrite: {
			"GNU libc": OutcomeUndefined, "BDW GC": OutcomeUndefined,
			"CCured": OutcomeAbort, "Rx": OutcomeCorrect,
			"Failure-oblivious": OutcomeUndefined, "DieHard": OutcomeCorrect,
		},
		ErrInvalidFree: {
			"GNU libc": OutcomeUndefined, "BDW GC": OutcomeCorrect,
			"CCured": OutcomeCorrect, "Rx": OutcomeUndefined,
			"Failure-oblivious": OutcomeUndefined, "DieHard": OutcomeCorrect,
		},
		ErrDoubleFree: {
			"GNU libc": OutcomeUndefined, "BDW GC": OutcomeCorrect,
			"CCured": OutcomeCorrect, "Rx": OutcomeCorrect,
			"Failure-oblivious": OutcomeUndefined, "DieHard": OutcomeCorrect,
		},
		ErrDangling: {
			"GNU libc": OutcomeUndefined, "BDW GC": OutcomeCorrect,
			"CCured": OutcomeCorrect, "Rx": OutcomeUndefined,
			"Failure-oblivious": OutcomeUndefined, "DieHard": OutcomeCorrect,
		},
		ErrOverflow: {
			"GNU libc": OutcomeUndefined, "BDW GC": OutcomeUndefined,
			"CCured": OutcomeAbort, "Rx": OutcomeUndefined,
			"Failure-oblivious": OutcomeUndefined, "DieHard": OutcomeCorrect,
		},
		ErrUninitRead: {
			"GNU libc": OutcomeUndefined, "BDW GC": OutcomeUndefined,
			"CCured": OutcomeAbort, "Rx": OutcomeUndefined,
			"Failure-oblivious": OutcomeUndefined, "DieHard": OutcomeAbort,
		},
	}
	for _, class := range TableClasses {
		for _, system := range TableSystems {
			if got := table.Cell[class][system]; got != want[class][system] {
				t.Errorf("%s x %s: got %s, paper says %s",
					class, system, got, want[class][system])
			}
		}
	}
}

// --- §7.3.1 fault injection ---

func TestFaultInjectionDangling(t *testing.T) {
	skipIfShort(t)
	const trials = 10
	// "This high error rate prevents espresso from running to
	// completion with the default allocator in all runs."
	libc, err := RunFaultInjection("espresso", KindMalloc,
		InjectionParams{Kind: InjectDangling}, trials, 1, 16<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if libc.Injected == 0 {
		t.Fatal("no faults injected")
	}
	if libc.Failures() < trials-1 {
		t.Errorf("libc survived %d/%d dangling runs; paper: 0/10 complete correctly (%+v)",
			libc.Correct, trials, libc)
	}
	// "However, with DieHard, espresso runs correctly in 9 out of 10
	// runs."
	dh, err := RunFaultInjection("espresso", KindDieHard,
		InjectionParams{Kind: InjectDangling}, trials, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dh.Correct < trials-1 {
		t.Errorf("DieHard correct in %d/%d dangling runs; paper: 9/10 (%+v)", dh.Correct, trials, dh)
	}
}

func TestFaultInjectionOverflow(t *testing.T) {
	skipIfShort(t)
	const trials = 10
	// "With the default allocator, espresso crashes in 9 out of 10 runs
	// and enters an infinite loop in the tenth."
	libc, err := RunFaultInjection("espresso", KindMalloc,
		InjectionParams{Kind: InjectOverflow}, trials, 3, 16<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if libc.Failures() < trials/2 {
		t.Errorf("libc survived %d/%d overflow runs; paper: 0/10 (%+v)", libc.Correct, trials, libc)
	}
	// "With DieHard, it runs successfully in all 10 of 10 runs."
	dh, err := RunFaultInjection("espresso", KindDieHard,
		InjectionParams{Kind: InjectOverflow}, trials, 3, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if dh.Correct < trials-1 {
		t.Errorf("DieHard correct in %d/%d overflow runs; paper: 10/10 (%+v)", dh.Correct, trials, dh)
	}
}

// --- §7.3 Squid real fault ---

func TestSquidRealFault(t *testing.T) {
	skipIfShort(t)
	results, err := RunSquidExperiment([]string{KindMalloc, KindGC, KindDieHard}, 8, 900, 24<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SquidResult{}
	for _, r := range results {
		byName[r.Allocator] = r
	}
	if byName[KindMalloc].Crashed != 8 {
		t.Errorf("libc squid: %+v, paper: crashes", byName[KindMalloc])
	}
	if byName[KindGC].Crashed != 8 {
		t.Errorf("GC squid: %+v, paper: crashes", byName[KindGC])
	}
	if byName[KindDieHard].Survived < 7 {
		t.Errorf("DieHard squid: %+v, paper: overflow has no effect", byName[KindDieHard])
	}
}

// --- Figure 5 shape ---

func TestFigure5aShape(t *testing.T) {
	skipIfShort(t)
	report, err := RunOverhead(PlatformLinux, 1, 0, 0x5a5a, 1)
	if err != nil {
		t.Fatal(err)
	}
	dhAI := report.GeoMean["alloc-intensive/"+KindDieHard]
	dhGP := report.GeoMean["general-purpose/"+KindDieHard]
	gcAI := report.GeoMean["alloc-intensive/"+KindGC]

	// DieHard costs more than malloc on the alloc-intensive suite.
	if dhAI <= 1.0 {
		t.Errorf("DieHard alloc-intensive geomean %.3f; paper: clearly above 1", dhAI)
	}
	// Its overhead on general-purpose codes is much lower than on
	// allocation-intensive ones (paper: 12%% vs 40%%).
	if dhGP >= dhAI {
		t.Errorf("DieHard general-purpose %.3f should undercut alloc-intensive %.3f", dhGP, dhAI)
	}
	if dhGP > 1.5 {
		t.Errorf("DieHard general-purpose geomean %.3f implausibly high", dhGP)
	}
	// GC also costs more than malloc on alloc-intensive codes.
	if gcAI <= 1.0 {
		t.Errorf("GC alloc-intensive geomean %.3f; paper: above 1", gcAI)
	}
	// The TLB outlier: twolf's DieHard run misses far more than its
	// malloc run (§7.2.1).
	for _, row := range report.Rows {
		if row.Benchmark == "300.twolf" {
			if row.TLBMisses[KindDieHard] <= row.TLBMisses[KindMalloc] {
				t.Errorf("twolf TLB misses: DieHard %d vs malloc %d; paper: DieHard much worse",
					row.TLBMisses[KindDieHard], row.TLBMisses[KindMalloc])
			}
		}
	}
}

func TestFigure5bShape(t *testing.T) {
	skipIfShort(t)
	report, err := RunOverhead(PlatformWindows, 1, 0, 0xb0b0, 1)
	if err != nil {
		t.Fatal(err)
	}
	dhAI := report.GeoMean["alloc-intensive/"+KindDieHard]
	// Against the slow Windows default heap, DieHard is competitive
	// (paper: geometric mean effectively the same; some benchmarks run
	// faster).
	if dhAI > 1.15 {
		t.Errorf("DieHard vs Windows default heap geomean %.3f; paper: about 1.0", dhAI)
	}
	faster := 0
	for _, row := range report.Rows {
		if row.Kind == apps.AllocIntensive && row.Normalized[KindDieHard] < 1.0 {
			faster++
		}
	}
	if faster == 0 {
		t.Error("no benchmark runs faster under DieHard than the default heap; paper: several do")
	}
}

// --- §7.2.3 replicated scaling ---

func TestReplicatedScaling(t *testing.T) {
	skipIfShort(t)
	// workers=1: the assertion below is about wall-clock ratios, which
	// only mean something when the sweep points run one at a time.
	points, err := RunReplicatedScaling("espresso", []int{1, 16}, 1, 12<<20, 0xca1e, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("want 2 points, got %d", len(points))
	}
	p16 := points[1]
	if p16.Survivors != 16 || !p16.Agreed {
		t.Fatalf("16 replicas did not agree: %+v", p16)
	}
	// On a multiprocessor the 16-replica run costs far less than 16x
	// one replica (paper: about 1.5x on a 16-way machine). Bound the
	// assertion by available parallelism so the test is meaningful on
	// any host.
	if runtime.NumCPU() >= 8 && p16.RelativeToOne > 8 {
		t.Errorf("16 replicas cost %.1fx one replica on %d CPUs; replication is not scaling",
			p16.RelativeToOne, runtime.NumCPU())
	}
}

func TestReplicatedScalingRejectsLindsay(t *testing.T) {
	if _, err := RunReplicatedScaling("lindsay", []int{1}, 1, 12<<20, 1, 1); err == nil {
		t.Fatal("lindsay must be rejected, as the paper excludes it")
	}
}

// --- plumbing ---

func TestNewAllocatorKinds(t *testing.T) {
	for _, kind := range []string{KindDieHard, KindMalloc, KindGC, KindWin} {
		a, err := NewAllocator(AllocConfig{Kind: kind, HeapSize: 8 << 20, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		p, err := a.Malloc(64)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := a.Mem().Store64(p, 1); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if _, err := NewAllocator(AllocConfig{Kind: "bogus"}); err == nil {
		t.Fatal("bogus allocator kind accepted")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("GeoMean(2,8) = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("GeoMean(nil) = %v", g)
	}
}

// --- §5 end to end: real workloads under replication ---

func TestAppsAgreeUnderReplication(t *testing.T) {
	skipIfShort(t)
	// Deterministic applications produce identical output in every
	// replica despite fully randomized, randomly-filled heaps; the
	// voter commits unanimously.
	for _, name := range []string{"cfrac", "espresso", "p2c", "255.vortex"} {
		app, _ := apps.Get(name)
		prog := func(ctx *replicate.Context) error {
			rt := &apps.Runtime{Alloc: ctx.Alloc, Mem: ctx.Mem, Input: ctx.Input, Out: ctx.Out}
			return app.Run(rt)
		}
		res, err := replicate.Run(prog, app.Input(1), replicate.Options{
			Replicas: 3, HeapSize: 48 << 20, Seed: 0xAA + uint64(len(name)),
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.Agreed || res.Survivors != 3 {
			t.Errorf("%s: replicas disagreed: %+v", name, res)
		}
		if len(res.Output) == 0 {
			t.Errorf("%s: no output committed", name)
		}
	}
}

func TestLindsayDetectedUnderReplication(t *testing.T) {
	// The paper found lindsay's uninitialized read with replicated
	// DieHard ("The replicated version of DieHard typically terminated
	// in several seconds", §6.3); our lindsay carries the same bug and
	// is detected the same way.
	app, _ := apps.Get("lindsay")
	prog := func(ctx *replicate.Context) error {
		rt := &apps.Runtime{Alloc: ctx.Alloc, Mem: ctx.Mem, Input: ctx.Input, Out: ctx.Out}
		return app.Run(rt)
	}
	res, err := replicate.Run(prog, app.Input(1), replicate.Options{
		Replicas: 3, HeapSize: 48 << 20, Seed: 0x11D,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.UninitSuspected {
		t.Fatalf("lindsay's uninitialized read went undetected: %+v", res)
	}
}

// --- validation entry points guard their inputs ---

func TestEmpiricalValidatorErrors(t *testing.T) {
	if _, err := EmpiricalOverflowMask(0.9, 1, 10, 3<<20, 1); err == nil {
		t.Fatal("fullness beyond 1/M accepted")
	}
	if _, err := EmpiricalOverflowMask(0, 1, 10, 3<<20, 1); err == nil {
		t.Fatal("zero fullness accepted")
	}
}

// skipIfShort skips the long statistical reproductions in -short mode;
// the race-detector CI job uses it to focus on the concurrency tests.
func skipIfShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("statistical reproduction skipped in short mode")
	}
}
