package exps

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
)

// Determinism tests for the parallel campaign engine (DESIGN.md §7):
// fanning a campaign across workers must not change a single byte of its
// result, because every trial's randomness derives from its trial index
// and results are reduced in index order.

func TestErrorTableParallelDeterminism(t *testing.T) {
	skipIfShort(t)
	seq, err := RunErrorTable(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunErrorTable(8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("error table differs between workers=1 and workers=8:\nseq: %+v\npar: %+v", seq.Cell, par.Cell)
	}
}

func TestInjectionParallelDeterminism(t *testing.T) {
	params := InjectionParams{Kind: InjectDangling}
	seq, err := RunFaultInjection("espresso", KindDieHard, params, 8, 1, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunFaultInjection("espresso", KindDieHard, params, 8, 1, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("injection campaign differs between workers=1 and workers=8:\nseq: %+v\npar: %+v", seq, par)
	}
}

func TestSquidParallelDeterminism(t *testing.T) {
	kinds := []string{KindMalloc, KindDieHard}
	seq, err := RunSquidExperiment(kinds, 4, 300, 24<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunSquidExperiment(kinds, 4, 300, 24<<20, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("squid campaign differs between workers=1 and workers=8:\nseq: %+v\npar: %+v", seq, par)
	}
}

func TestReplicatedScalingParallelDeterminism(t *testing.T) {
	// The §7.2.3 sweep on the campaign engine: every deterministic field
	// of every point — seeds, fates, and the hash of the voted output —
	// must be identical whether the points run one at a time or fanned
	// out. Wall times are host measurements and are excluded.
	counts := []int{1, 2, 3}
	seq, err := RunReplicatedScaling("espresso", counts, 1, 12<<20, 0xca1e, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunReplicatedScaling("espresso", counts, 1, 12<<20, 0xca1e, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		a, b := seq[i], par[i]
		a.Wall, a.RelativeToOne = 0, 0
		b.Wall, b.RelativeToOne = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Errorf("point %d differs between workers=1 and workers=8:\nseq: %+v\npar: %+v", i, a, b)
		}
		if a.OutputHash == 0 {
			t.Errorf("point %d committed no output", i)
		}
	}
}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(1, 0) != DeriveSeed(1, 0) {
		t.Fatal("DeriveSeed not deterministic")
	}
	if DeriveSeed(1, 0) == DeriveSeed(1, 1) || DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Fatal("DeriveSeed collides on adjacent inputs")
	}
	seen := map[uint64]bool{}
	for i := 0; i < 10000; i++ {
		s := DeriveSeed(0, i)
		if s == 0 {
			t.Fatal("DeriveSeed produced 0, which would draw entropy downstream")
		}
		if seen[s] {
			t.Fatal("DeriveSeed collision within one campaign")
		}
		seen[s] = true
	}
}

func TestMapTrialsOrderAndErrors(t *testing.T) {
	// Results land by index regardless of claim order.
	got, err := mapTrials(100, 8, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d", i, v, i*i)
		}
	}
	// First error wins and cancels the rest.
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err = mapTrials(1000, 4, func(i int) (int, error) {
		ran.Add(1)
		if i == 3 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := ran.Load(); n == 1000 {
		t.Error("error did not cancel remaining trials")
	}
	// Degenerate inputs.
	if r, err := mapTrials(0, 4, func(i int) (int, error) { return 0, nil }); err != nil || len(r) != 0 {
		t.Fatalf("empty campaign: %v %v", r, err)
	}
	if w := Workers(0); w < 1 {
		t.Fatalf("Workers(0) = %d", w)
	}
	if w := Workers(3); w != 3 {
		t.Fatalf("Workers(3) = %d", w)
	}
}
