package exps

import (
	"fmt"

	"diehard/internal/core"
	"diehard/internal/heap"
	"diehard/internal/rng"
)

// This file validates the Figure 4 probability formulas against the
// real allocator (not just the abstract Monte Carlo model in
// internal/analysis): objects are placed by the actual randomized
// allocator and the masking events are observed directly.

// EmpiricalOverflowMask measures, on real DieHard heaps, the probability
// that a one-object overflow lands on free space in at least one of k
// replicas, with the target size class filled to the given fraction.
// Compare with analysis.OverflowMaskProb(fullness, 1, k).
func EmpiricalOverflowMask(fullness float64, k, trials int, heapSize int, seed uint64) (float64, error) {
	if fullness <= 0 || fullness > 0.5 {
		return 0, fmt.Errorf("exps: fullness %v outside (0, 1/2]", fullness)
	}
	const size = 64
	class := core.ClassFor(size)
	r := rng.NewSeeded(seed)
	masked := 0
	// Replica heaps are rebuilt per batch to amortize setup while
	// keeping layouts independent across trials.
	const batch = 64
	for done := 0; done < trials; {
		heaps := make([]*core.Heap, k)
		ptrs := make([][]heap.Ptr, k)
		for i := range heaps {
			h, err := core.New(core.Options{HeapSize: heapSize, Seed: r.Next64() | 1})
			if err != nil {
				return 0, err
			}
			total, _ := h.ClassSlots(class)
			want := int(fullness * float64(total))
			ps := make([]heap.Ptr, want)
			for j := range ps {
				p, err := h.Malloc(size)
				if err != nil {
					return 0, err
				}
				ps[j] = p
			}
			heaps[i] = h
			ptrs[i] = ps
		}
		for b := 0; b < batch && done < trials; b++ {
			// The overflowing object is the same logical object in
			// every replica; its physical neighbor differs per layout.
			victim := r.Intn(len(ptrs[0]))
			anyClean := false
			for i := range heaps {
				p := ptrs[i][victim]
				neighbor := p + size // one object's width past the end
				// The write is masked if the neighboring slot is not a
				// live object in this replica.
				if _, _, ok := heaps[i].ObjectBounds(neighbor); !ok {
					anyClean = true
					break
				}
			}
			if anyClean {
				masked++
			}
			done++
		}
	}
	return float64(masked) / float64(trials), nil
}

// EmpiricalDanglingMask measures, on a real DieHard heap, the
// probability that an object freed A allocations early still holds its
// contents when its real free would occur (Theorem 2, Figure 4(b)).
// The heap is sized so the class has q slots; compare with
// 1 - A/q for one replica.
func EmpiricalDanglingMask(size, allocs, trials, heapSize int, seed uint64) (float64, error) {
	r := rng.NewSeeded(seed)
	intact := 0
	for t := 0; t < trials; t++ {
		h, err := core.New(core.Options{HeapSize: heapSize, Seed: r.Next64() | 1})
		if err != nil {
			return 0, err
		}
		victim, err := h.Malloc(size)
		if err != nil {
			return 0, err
		}
		if err := h.Mem().Store64(victim, 0xfeedface); err != nil {
			return 0, err
		}
		if err := h.Free(victim); err != nil { // premature free
			return 0, err
		}
		ok := true
		for a := 0; a < allocs; a++ {
			p, err := h.Malloc(size)
			if err != nil {
				return 0, err
			}
			// Worst case per Theorem 2: the new object is written and
			// nothing is freed.
			if err := h.Mem().Store64(p, uint64(a)); err != nil {
				return 0, err
			}
		}
		v, err := h.Mem().Load64(victim)
		if err != nil {
			return 0, err
		}
		if v != 0xfeedface {
			ok = false
		}
		if ok {
			intact++
		}
	}
	return float64(intact) / float64(trials), nil
}

// EmpiricalProbeCount measures the mean number of bitmap probes per
// allocation at the threshold fullness, validating §4.2's expected
// 1/(1-1/M) bound.
func EmpiricalProbeCount(m float64, heapSize int, seed uint64) (float64, error) {
	h, err := core.New(core.Options{HeapSize: heapSize, M: m, Seed: seed})
	if err != nil {
		return 0, err
	}
	const size = 64
	class := core.ClassFor(size)
	_, maxInUse := h.ClassSlots(class)
	ptrs := make([]heap.Ptr, maxInUse)
	for i := range ptrs {
		p, err := h.Malloc(size)
		if err != nil {
			return 0, err
		}
		ptrs[i] = p
	}
	r := rng.NewSeeded(seed + 1)
	before := h.Stats().Probes
	const pairs = 20000
	for i := 0; i < pairs; i++ {
		j := r.Intn(len(ptrs))
		if err := h.Free(ptrs[j]); err != nil {
			return 0, err
		}
		p, err := h.Malloc(size)
		if err != nil {
			return 0, err
		}
		ptrs[j] = p
	}
	return float64(h.Stats().Probes-before) / pairs, nil
}
