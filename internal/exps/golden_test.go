package exps

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// Golden campaign fingerprints, recorded at PR 4 — before the lock-free
// malloc engine — with workers=1 on the per-class-mutex allocator. The
// lock-free CAS engine consumes exactly the same per-class draw stream
// when one goroutine allocates (DESIGN.md §10), so every campaign cell
// must still hash to these values; a mismatch means the concurrency
// refactor changed placement, and with it the randomized-placement
// guarantees the campaigns measure.

// goldenDetectHashes are the per-cell OutputHash values of the tiny
// detection table (tinyDetectParams, workers=1) in cell order
// (overflow, dangling, uninit at multiplier 2).
var goldenDetectHashes = map[DetectError]uint64{
	DetectOverflow: 0x2a79411f06e748cb,
	DetectDangling: 0xc529cc2338e92028,
	DetectUninit:   0xe88b9d83855ef1e5,
}

// goldenErrorTableHash is 64-bit FNV-1a over fmt's rendering of the
// Table 1 cell map (map printing is key-sorted, so the rendering is
// deterministic).
const goldenErrorTableHash = 0x4f362baa046c63a5

func TestDetectionTableMatchesPR4Recording(t *testing.T) {
	table, err := RunDetectionTable(tinyDetectParams(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// The PR 4 recording predates the policy axis: only the
	// probabilistic cells are pinned, and every one of them must still
	// be present and hash-identical (the deterministic tiers append
	// after them, sharing no trial indices).
	prob := 0
	for _, c := range table.Cells {
		if c.Policy == PolicyProbabilistic {
			prob++
		}
	}
	if prob != len(goldenDetectHashes) {
		t.Fatalf("table has %d probabilistic cells, recording has %d", prob, len(goldenDetectHashes))
	}
	for _, c := range table.Cells {
		if c.Policy != PolicyProbabilistic {
			continue
		}
		want, ok := goldenDetectHashes[c.Error]
		if !ok {
			t.Errorf("cell %s x%v not in the PR 4 recording", c.Error, c.Multiplier)
			continue
		}
		if c.OutputHash != want {
			t.Errorf("cell %s x%v OutputHash = %#x, PR 4 recorded %#x — the engine refactor changed campaign output",
				c.Error, c.Multiplier, c.OutputHash, want)
		}
	}
}

func TestErrorTableMatchesPR4Recording(t *testing.T) {
	skipIfShort(t)
	table, err := RunErrorTable(1)
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%+v", table.Cell)
	if got := h.Sum64(); got != goldenErrorTableHash {
		t.Errorf("error table hash = %#x, PR 4 recorded %#x — a Table 1 cell changed:\n%+v",
			got, goldenErrorTableHash, table.Cell)
	}
}
