// Package rng implements Marsaglia's multiply-with-carry pseudo-random
// number generator, the generator used by the DieHard allocator (Berger &
// Zorn, PLDI 2006, §4.1). It is small, fast, and deterministic given a
// seed, which the replication harness depends on: every replica derives a
// distinct stream from a true random seed.
package rng

import (
	"crypto/rand"
	"encoding/binary"
)

// MWC is a multiply-with-carry generator after Marsaglia (1994). The zero
// value is not usable; construct with New or NewSeeded.
type MWC struct {
	z uint32
	w uint32
}

// Default seeds from Marsaglia's posting; used when a caller-provided seed
// half is zero (a zero lag destroys the generator's period).
const (
	defaultZ = 362436069
	defaultW = 521288629
)

// New returns a generator seeded from the operating system's entropy
// source, mirroring DieHard's use of /dev/urandom for true random seeds.
func New() *MWC {
	var buf [8]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// Entropy exhaustion is not a recoverable condition for a
		// randomized allocator; fall back to fixed seeds so the
		// allocator still functions (tests never hit this path).
		return NewSeeded(uint64(defaultZ)<<32 | defaultW)
	}
	return NewSeeded(binary.LittleEndian.Uint64(buf[:]))
}

// NewSeeded returns a deterministic generator. Both 32-bit halves of the
// seed are used; zero halves are replaced with Marsaglia's constants so
// that every seed yields a full-period stream.
func NewSeeded(seed uint64) *MWC {
	z := uint32(seed >> 32)
	w := uint32(seed)
	if z == 0 {
		z = defaultZ
	}
	if w == 0 {
		w = defaultW
	}
	return &MWC{z: z, w: w}
}

// Next returns the next 32-bit pseudo-random value.
func (r *MWC) Next() uint32 {
	r.z = 36969*(r.z&65535) + (r.z >> 16)
	r.w = 18000*(r.w&65535) + (r.w >> 16)
	return (r.z << 16) + r.w
}

// Next64 returns a 64-bit value assembled from two successive draws.
func (r *MWC) Next64() uint64 {
	hi := uint64(r.Next())
	lo := uint64(r.Next())
	return hi<<32 | lo
}

// Step advances a packed MWC state by one draw and returns the successor
// state and the drawn value. The state encoding is the one Seed reports
// and NewSeeded consumes (z in the high half, w in the low half), and the
// recurrence is exactly Next's, so a stream advanced through Step is
// bit-identical to one advanced through the method. The DieHard
// allocator's lock-free malloc path keeps each size class's stream in an
// atomic word and advances it by compare-and-swap of (state, Step(state));
// nonzero halves are preserved by the recurrence, so packed states
// round-trip exactly.
func Step(state uint64) (next uint64, value uint32) {
	z := uint32(state >> 32)
	w := uint32(state)
	z = 36969*(z&65535) + (z >> 16)
	w = 18000*(w&65535) + (w >> 16)
	return uint64(z)<<32 | uint64(w), z<<16 + w
}

// Batch is a register-resident draw cursor over a packed MWC stream:
// the batched-draw API behind the allocator's magazine refills
// (DESIGN.md §11). A batch starts from a published packed state, draws
// any number of values locally (no shared memory is touched), and the
// caller publishes the whole advance at once — for the lock-free heap,
// one CAS of (Start, State). The draw recurrence is exactly Step's, so
// a batch of k draws consumes precisely the k-value prefix of the
// stream an unbatched consumer would have drawn one CAS at a time;
// Reset rewinds to the starting state so a caller whose publication
// CAS lost can replay the identical protocol from the fresh state.
type Batch struct {
	start uint64
	cur   uint64
}

// StartBatch opens a batch at the given packed state.
func StartBatch(state uint64) Batch { return Batch{start: state, cur: state} }

// Next draws the next 32-bit value, advancing only the local cursor.
func (b *Batch) Next() uint32 {
	next, v := Step(b.cur)
	b.cur = next
	return v
}

// Uint32n draws a uniform value in [0, n) using the same Lemire
// multiply-shift-with-rejection reduction as MWC.Uint32n, so a batched
// consumer sees the identical value sequence for identical requests.
func (b *Batch) Uint32n(n uint32) uint32 {
	if n == 0 {
		panic("rng: Uint32n with n == 0")
	}
	m := uint64(b.Next()) * uint64(n)
	if l := uint32(m); l < n {
		t := -n % n
		for l < t {
			m = uint64(b.Next()) * uint64(n)
			l = uint32(m)
		}
	}
	return uint32(m >> 32)
}

// Start reports the packed state the batch opened at: the expected
// "old" value of the caller's publication CAS.
func (b *Batch) Start() uint64 { return b.start }

// State reports the current packed state after the draws so far: the
// "new" value of the caller's publication CAS.
func (b *Batch) State() uint64 { return b.cur }

// Reset rewinds the cursor to the starting state for a replay after a
// lost publication CAS.
func (b *Batch) Reset() { b.cur = b.start }

// Uintn returns a uniform value in [0, n). n must be positive.
// DieHard's slot probing only needs modulo-style uniformity; we use
// rejection sampling to avoid modulo bias so the analytical results in
// internal/analysis hold exactly.
func (r *MWC) Uintn(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uintn with n == 0")
	}
	if n&(n-1) == 0 { // power of two: mask is exact
		return r.Next64() & (n - 1)
	}
	limit := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Next64()
		if v < limit {
			return v % n
		}
	}
}

// Uint32n returns a uniform value in [0, n). It uses Lemire's
// multiply-shift reduction with rejection, so it is exactly uniform (the
// analytical results in internal/analysis depend on that) while drawing
// a single 32-bit value in the common case — half the generator steps of
// Uintn. The allocator's probe loop is its main client.
func (r *MWC) Uint32n(n uint32) uint32 {
	if n == 0 {
		panic("rng: Uint32n with n == 0")
	}
	m := uint64(r.Next()) * uint64(n)
	if l := uint32(m); l < n {
		t := -n % n
		for l < t {
			m = uint64(r.Next()) * uint64(n)
			l = uint32(m)
		}
	}
	return uint32(m >> 32)
}

// Intn returns a uniform value in [0, n) as an int. n must be positive.
func (r *MWC) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uintn(uint64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (r *MWC) Float64() float64 {
	return float64(r.Next64()>>11) / (1 << 53)
}

// Bool returns a uniform boolean.
func (r *MWC) Bool() bool { return r.Next()&1 == 1 }

// Split derives a new independent-seeming generator from this one. The
// replication harness uses Split to give each replica its own stream from
// one true-random master seed, which keeps experiment runs reproducible
// from a single recorded seed.
func (r *MWC) Split() *MWC {
	return NewSeeded(r.Next64() ^ 0x9e3779b97f4a7c15)
}

// Seed reports a seed that reconstructs the generator's current state via
// NewSeeded. Useful for logging the exact state that produced a failure.
func (r *MWC) Seed() uint64 {
	return uint64(r.z)<<32 | uint64(r.w)
}
