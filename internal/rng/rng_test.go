package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministicStream(t *testing.T) {
	a := NewSeeded(12345)
	b := NewSeeded(12345)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestDifferentSeedsDiverge(t *testing.T) {
	a := NewSeeded(1)
	b := NewSeeded(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 coincide on %d/1000 draws", same)
	}
}

func TestZeroSeedHalvesReplaced(t *testing.T) {
	// A zero lag would make the MWC stream collapse; NewSeeded must
	// substitute the default constants.
	r := NewSeeded(0)
	seen := make(map[uint32]bool)
	for i := 0; i < 100; i++ {
		seen[r.Next()] = true
	}
	if len(seen) < 90 {
		t.Fatalf("zero-seeded stream looks degenerate: %d distinct of 100", len(seen))
	}
}

func TestUintnRange(t *testing.T) {
	r := NewSeeded(99)
	for _, n := range []uint64{1, 2, 3, 7, 8, 1000, 1 << 20} {
		for i := 0; i < 200; i++ {
			if v := r.Uintn(n); v >= n {
				t.Fatalf("Uintn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUintnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Uintn(0)")
		}
	}()
	NewSeeded(1).Uintn(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewSeeded(1).Intn(0)
}

func TestUintnUniformity(t *testing.T) {
	// Chi-squared test over 16 buckets; loose bound, just catches gross
	// modulo bias or a broken generator.
	r := NewSeeded(7)
	const buckets = 16
	const draws = 160000
	var counts [buckets]int
	for i := 0; i < draws; i++ {
		counts[r.Uintn(buckets)]++
	}
	expected := float64(draws) / buckets
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 15 degrees of freedom; 99.9th percentile is about 37.7.
	if chi2 > 37.7 {
		t.Fatalf("chi-squared %f too high; counts %v", chi2, counts)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewSeeded(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %f", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %f far from 0.5", mean)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewSeeded(42)
	child := parent.Split()
	matches := 0
	for i := 0; i < 1000; i++ {
		if parent.Next() == child.Next() {
			matches++
		}
	}
	if matches > 2 {
		t.Fatalf("split stream tracks parent: %d/1000 matches", matches)
	}
}

func TestSeedRoundTrip(t *testing.T) {
	r := NewSeeded(777)
	for i := 0; i < 10; i++ {
		r.Next()
	}
	clone := NewSeeded(r.Seed())
	for i := 0; i < 100; i++ {
		if a, b := r.Next(), clone.Next(); a != b {
			t.Fatalf("seed round-trip diverged at %d", i)
		}
	}
}

func TestNewIsSeededFromEntropy(t *testing.T) {
	a, b := New(), New()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == 100 {
		t.Fatal("two entropy-seeded generators produced identical streams")
	}
}

func TestQuickUintnAlwaysInRange(t *testing.T) {
	f := func(seed uint64, n uint32) bool {
		if n == 0 {
			n = 1
		}
		r := NewSeeded(seed)
		for i := 0; i < 20; i++ {
			if r.Uintn(uint64(n)) >= uint64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkNext(b *testing.B) {
	r := NewSeeded(1)
	for i := 0; i < b.N; i++ {
		_ = r.Next()
	}
}

func BenchmarkUintn(b *testing.B) {
	r := NewSeeded(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uintn(12345)
	}
}
