package heal

import "testing"

// testSchedule is the planned fault schedule the regression battery
// pins: site 7 overflows 24 bytes past its 48-byte object every 3rd
// cycle (8 bytes escape the 16-byte slack into the adjacent slot), and
// site 29 is freed prematurely and written through a stale pointer
// every 4th cycle.
func testSchedule() Schedule {
	return Schedule{
		Sites:        48,
		ObjectSize:   48,
		OverflowSite: 7, OverflowReach: 24, OverflowEvery: 3,
		DanglingSite: 29, DanglingEvery: 4,
	}
}

func testConfig(heal bool) Config {
	return Config{
		Seed:        0xC0FFEE,
		Schedule:    testSchedule(),
		Cycles:      240,
		EpochCycles: 80,
		Heal:        heal,
	}
}

// TestHealConvergesToGroundTruth is the deterministic fault-schedule
// regression: the supervisor must convict exactly the two planted
// culprit sites, apply both countermeasures live (zero restarts between
// onset and mitigation), and stop the failures.
func TestHealConvergesToGroundTruth(t *testing.T) {
	res, err := Run(testConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	sch := testSchedule()
	if res.Overflow.Culprit != sch.OverflowSite {
		t.Errorf("overflow culprit = %d, want ground truth %d (votes %v)",
			res.Overflow.Culprit, sch.OverflowSite, res.Overflow.Votes)
	}
	if res.Dangling.Culprit != sch.DanglingSite {
		t.Errorf("dangling culprit = %d, want ground truth %d (votes %v)",
			res.Dangling.Culprit, sch.DanglingSite, res.Dangling.Votes)
	}
	if res.MitigatedCycle < 0 {
		t.Fatal("no countermeasure was ever applied")
	}
	if res.OnsetCycle < 0 || res.MitigatedCycle < res.OnsetCycle {
		t.Errorf("timeline out of order: onset %d, mitigated %d", res.OnsetCycle, res.MitigatedCycle)
	}
	if res.RestartsOnsetToMitigation != 0 {
		t.Errorf("%d restarts between fault onset and mitigation; countermeasures must be live",
			res.RestartsOnsetToMitigation)
	}
	if pad := res.PadTable[sch.OverflowSite]; pad < sch.OverflowReach {
		t.Errorf("pad %dB cannot contain the %dB overflow reach", pad, sch.OverflowReach)
	}
	if len(res.QuarantineSites) != 1 || res.QuarantineSites[0] != sch.DanglingSite {
		t.Errorf("quarantine sites = %v, want exactly [%d]", res.QuarantineSites, sch.DanglingSite)
	}
	if res.Quarantined == 0 {
		t.Error("quarantine convicted the dangling site but never held a free")
	}
	// Convergence bound: both verdicts within N = ConfidenceBar * max
	// injection period cycles of onset, with slack for barrier latency.
	cfg := testConfig(true)
	cfgd, _ := cfg.withDefaults()
	n := cfgd.ConfidenceBar*4*sch.DanglingEvery + cfgd.HeapCheckEvery/sch.Sites
	var lastApply int
	for _, ev := range res.Timeline {
		if ev.Kind == "pad" || ev.Kind == "quarantine" {
			lastApply = ev.Cycle
		}
	}
	if lastApply-res.OnsetCycle > n {
		t.Errorf("mitigation took %d cycles after onset, want <= %d", lastApply-res.OnsetCycle, n)
	}
}

// TestHealMTBF is the grading property: under the same planned schedule
// and seeds, the healed service must survive at least 5x longer between
// invariant failures than the unhealed baseline.
func TestHealMTBF(t *testing.T) {
	base, err := Run(testConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	healed, err := Run(testConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	if base.Failures == 0 {
		t.Fatal("unhealed baseline never failed; the schedule is not exercising faults")
	}
	t.Logf("MTBF unhealed %.1f (%d failures) -> healed %.1f (%d failures)",
		base.MTBF, base.Failures, healed.MTBF, healed.Failures)
	if healed.MTBF < 5*base.MTBF {
		t.Errorf("healed MTBF %.1f < 5x unhealed %.1f", healed.MTBF, base.MTBF)
	}
	// The countermeasures, not luck, must explain the improvement: after
	// the last mitigation both injections keep firing every cycle window,
	// so a healed service that still fails is not healed.
	if healed.Failures > base.Failures/3 {
		t.Errorf("healed run still failed %d times (baseline %d)", healed.Failures, base.Failures)
	}
}

// TestHealCampaignDeterministicAcrossWorkers pins the replicated
// campaign's w=1 vs w=8 byte-identity: same seeds, same replica
// results, same merged verdicts, same hash.
func TestHealCampaignDeterministicAcrossWorkers(t *testing.T) {
	cfg := testConfig(true)
	cfg.Cycles = 120
	one, err := RunCampaign(cfg, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	eight, err := RunCampaign(cfg, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	if one.VerdictHash != eight.VerdictHash {
		t.Fatalf("campaign verdict hash differs across workers: w1=%#x w8=%#x",
			one.VerdictHash, eight.VerdictHash)
	}
	if one.Overflow.Culprit != eight.Overflow.Culprit || one.Dangling.Culprit != eight.Dangling.Culprit {
		t.Errorf("merged culprits differ: w1=(%d,%d) w8=(%d,%d)",
			one.Overflow.Culprit, one.Dangling.Culprit, eight.Overflow.Culprit, eight.Dangling.Culprit)
	}
	if one.Overflow.Culprit != testSchedule().OverflowSite {
		t.Errorf("campaign overflow culprit = %d, want %d", one.Overflow.Culprit, testSchedule().OverflowSite)
	}
	if one.Dangling.Culprit != testSchedule().DanglingSite {
		t.Errorf("campaign dangling culprit = %d, want %d", one.Dangling.Culprit, testSchedule().DanglingSite)
	}
	for i, r := range one.Replicas {
		if r.Failures != eight.Replicas[i].Failures || r.MitigatedCycle != eight.Replicas[i].MitigatedCycle {
			t.Errorf("replica %d diverges across worker counts", i)
		}
	}
}

// TestHealAdaptiveCadence verifies the folded-in PR-4 follow-up: the
// barrier cadence tightens below HeapCheckEvery once evidence appears.
func TestHealAdaptiveCadence(t *testing.T) {
	res, err := Run(testConfig(true))
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(true)
	cfgd, _ := cfg.withDefaults()
	if res.MinCadence >= cfgd.HeapCheckEvery {
		t.Errorf("cadence never tightened: min %d, HeapCheckEvery %d", res.MinCadence, cfgd.HeapCheckEvery)
	}
	if res.MinCadence < cfgd.HeapCheckMin {
		t.Errorf("cadence %d fell below the floor %d", res.MinCadence, cfgd.HeapCheckMin)
	}
}

// TestHealBaselineReportsButNeverApplies: with Heal off the verdicts
// still localize the culprits (the evidence pipeline is identical) but
// no countermeasure may be installed.
func TestHealBaselineReportsButNeverApplies(t *testing.T) {
	res, err := Run(testConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PadTable) != 0 || len(res.QuarantineSites) != 0 {
		t.Errorf("baseline installed countermeasures: pads %v quarantine %v",
			res.PadTable, res.QuarantineSites)
	}
	if res.Quarantined != 0 {
		t.Errorf("baseline quarantined %d frees", res.Quarantined)
	}
	if res.Overflow.Culprit != testSchedule().OverflowSite {
		t.Errorf("baseline overflow verdict = %d, want %d (evidence pipeline should not depend on Heal)",
			res.Overflow.Culprit, testSchedule().OverflowSite)
	}
	if res.MitigatedCycle != -1 {
		t.Errorf("baseline logged a mitigation at cycle %d", res.MitigatedCycle)
	}
}

// TestHealConfigValidation pins the rejection surface.
func TestHealConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Schedule.Sites = 0 },
		func(c *Config) { c.Cycles = 0 },
		func(c *Config) { c.Schedule.ObjectSize = 4 },
		func(c *Config) { c.Schedule.OverflowSite = c.Schedule.Sites },
		func(c *Config) { c.Schedule.OverflowEvery = 0 },
		func(c *Config) { c.Schedule.DanglingEvery = 0 },
		func(c *Config) { c.Schedule.DanglingSite = c.Schedule.OverflowSite },
	}
	for i, mutate := range bad {
		cfg := testConfig(true)
		mutate(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
