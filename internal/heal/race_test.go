package heal

import (
	"sync"
	"testing"

	"diehard/internal/core"
	"diehard/internal/detect"
	"diehard/internal/heap"
	"diehard/internal/rng"
)

// TestHealRaceBattery is the 8-goroutine concurrency battery of the
// healing machinery (runs under -race in CI): workers churn a shared
// lock-free heap whose SizeAdjust/FreeFilter hooks consult a live
// Mitigations table while a supervisor goroutine installs pads and
// quarantines mid-flight and every worker simultaneously streams
// evidence windows into one shared Accumulator (plus a private one that
// is Merged at the end). The run must end with the quarantine flushed,
// CheckInvariants clean — which enforces bitmap popcount == inUse, with
// the quarantined slots' bits and occupancy units accounted — and the
// accumulated verdict naming the planted culprit.
func TestHealRaceBattery(t *testing.T) {
	const workers = 8
	const rounds = 400
	const culprit = 7

	mit := NewMitigations()
	shared := &detect.Accumulator{}

	h, err := core.New(core.Options{
		HeapSize:      48 << 20,
		Seed:          0xBA77,
		Concurrent:    true,
		QuarantineCap: 64,
		// Site identity in this battery is the requested size (the hooks
		// run on every goroutine concurrently, so the table reads race
		// the supervisor's copy-on-write publishes — the point of the
		// test).
		SizeAdjust: func(size int) int { return size + mit.Pad(size) },
	})
	if err != nil {
		t.Fatal(err)
	}
	// FreeFilter keys on the slot size serving the request.
	hq, err := core.New(core.Options{HeapSize: 48 << 20, Seed: 0xBA78, Concurrent: true,
		QuarantineCap: 64,
		FreeFilter:    func(p heap.Ptr, slotSize int) bool { return mit.Quarantined(slotSize) }})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.NewSeeded(uint64(id)*0x9E3779B9 + 3)
			priv := &detect.Accumulator{}
			var live, liveQ []heap.Ptr
			for i := 0; i < rounds; i++ {
				size := 8 << r.Intn(3) // classes 0..2, shared across workers
				p, err := h.Malloc(size)
				if err != nil {
					errs[id] = err
					return
				}
				live = append(live, p)
				q, err := hq.Malloc(size)
				if err != nil {
					errs[id] = err
					return
				}
				liveQ = append(liveQ, q)
				if len(live) > 48 {
					j := r.Intn(len(live))
					if err := h.Free(live[j]); err != nil {
						errs[id] = err
						return
					}
					live[j] = live[len(live)-1]
					live = live[:len(live)-1]
					j = r.Intn(len(liveQ))
					if err := hq.Free(liveQ[j]); err != nil {
						errs[id] = err
						return
					}
					liveQ[j] = liveQ[len(liveQ)-1]
					liveQ = liveQ[:len(liveQ)-1]
				}
				// One evidence window per round: the planted culprit plus
				// a per-worker noise site, half into the shared
				// accumulator directly, half via the private one.
				win := []detect.Evidence{
					{Kind: detect.KindOverflow, AllocSite: culprit, Length: 24},
					{Kind: detect.KindOverflow, AllocSite: 100 + id, Length: 8},
				}
				if i%2 == 0 {
					shared.Observe(win, 0)
				} else {
					priv.Observe(win, 0)
				}
				// Reads of the verdict race the writes by design.
				_ = shared.Verdict(detect.KindOverflow, 3)
			}
			for _, p := range live {
				if err := h.Free(p); err != nil {
					errs[id] = err
					return
				}
			}
			for _, p := range liveQ {
				if err := hq.Free(p); err != nil {
					errs[id] = err
					return
				}
			}
			shared.Merge(priv)
		}(w)
	}
	// The supervisor: applies countermeasures while the workers run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, size := range []int{8, 16, 32} {
			mit.SetPad(size, size) // doubles the request: next class up
			mit.SetQuarantine(size << 1)
		}
	}()
	wg.Wait()
	for id, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", id, err)
		}
	}

	// On a 1-CPU host the scheduler may run every worker to completion
	// before the supervisor goroutine gets a slice, so whether any free
	// was held mid-battery is timing-dependent. This coda is not: the
	// supervisor has joined, quarantines are installed, and these frees
	// must be held.
	for i := 0; i < 8; i++ {
		p, err := hq.Malloc(16)
		if err != nil {
			t.Fatal(err)
		}
		if err := hq.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if flushed := hq.FlushQuarantine(); flushed == 0 {
		t.Error("supervisor quarantined live classes but no free was ever held")
	}
	for _, hp := range []*core.Heap{h, hq} {
		if err := hp.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		st := hp.Stats()
		if st.LiveObjects != 0 {
			t.Errorf("LiveObjects = %d after teardown", st.LiveObjects)
		}
		if st.Quarantined != st.QuarantineOut {
			t.Errorf("quarantine accounting: %d held, %d released (every free was unique)",
				st.Quarantined, st.QuarantineOut)
		}
	}

	v := shared.Verdict(detect.KindOverflow, 3)
	if v == nil || v.Culprit != culprit {
		t.Fatalf("concurrent accumulation lost the culprit: %+v", v)
	}
	if want := workers * rounds; v.Votes[culprit] != want {
		t.Errorf("culprit votes = %d, want %d (every window names it)", v.Votes[culprit], want)
	}
	if v.OverflowLen != 24 {
		t.Errorf("merged OverflowLen = %d, want 24", v.OverflowLen)
	}
}
