// Package heal closes the Exterminator-style loop the DieHard lineage
// points at (Berger & Zorn, PLDI 2006, §9): detection evidence → cross-
// layout triage → live runtime countermeasure, running continuously
// inside a service instead of as an offline analysis.
//
// A Supervisor drives a deterministic session service over a canary-
// armed detection heap (internal/detect) under a *planned fault
// schedule*: every cycle allocates the same sequence of allocation
// sites, and the schedule injects a buffer overflow at one site and a
// premature free + stale write at another. Evidence drains out of the
// detector after every cycle into a detect.Accumulator; when a culprit
// site crosses the confidence bar (an absolute vote floor plus Triage's
// strict majority), the supervisor applies a countermeasure *live* —
// no restart, no pause:
//
//   - overflow culprits get a per-site overallocation pad, installed in
//     the Mitigations table that core.Options.SizeAdjust consults on
//     every Malloc: the buggy write past the requested end now lands in
//     the object's own (enlarged) slot, harming no neighbor. Pads are
//     sized from the evidence (max observed damage extent plus slack)
//     and max-merged, so an under-estimated pad self-corrects when the
//     next escape reveals a longer reach;
//   - dangling culprits get per-site free quarantine, consulted by
//     core.Options.FreeFilter: the site's frees divert into the heap's
//     delayed-reuse FIFO, keeping the slot out of the probe stream so a
//     stale write lands on memory no new owner holds.
//
// Scheduled epoch restarts re-seed the heap (fresh randomized layout)
// while the Accumulator and Mitigations persist — evidence accumulates
// *across* restart cycles, which is exactly what separates layout-
// coincidental candidates from the true culprit. The adaptive heap-
// check cadence (detect.Options.HeapCheckMin) tightens barriers after
// fresh evidence and backs off exponentially when clean.
//
// The grade is MTBF: mean cycles between invariant failures (a session
// object whose token read-back mismatches, i.e. real corruption a
// plain heap would have suffered), measured unhealed vs healed under
// the same schedule and seeds. RunCampaign replicates the supervisor
// over independently seeded layouts on a deterministic worker pool and
// merges verdicts order-independently, so campaign results are
// byte-identical at any worker count.
package heal

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"diehard/internal/core"
	"diehard/internal/detect"
	"diehard/internal/exps"
	"diehard/internal/heap"
	"diehard/internal/obs"
)

// Schedule is a planned fault schedule: the deterministic per-cycle
// session program plus which allocation sites misbehave, how, and how
// often. Site identity is the allocation index within a cycle — every
// cycle allocates exactly Sites objects in the same order, so site s is
// the s-th allocation of any cycle in any epoch, the layout-invariant
// identity triage needs.
type Schedule struct {
	// Sites is the number of allocations per cycle; ObjectSize the bytes
	// each requests.
	Sites      int
	ObjectSize int
	// OverflowSite, when >= 0, writes OverflowReach bytes past its
	// object's requested end on every OverflowEvery-th cycle.
	OverflowSite  int
	OverflowReach int
	OverflowEvery int
	// DanglingSite, when >= 0, frees its object immediately after
	// initialization on every DanglingEvery-th cycle, then writes
	// through the stale pointer after the cycle's remaining allocations
	// have run (so the slot may have changed hands).
	DanglingSite  int
	DanglingEvery int
}

// Config configures a Supervisor run.
type Config struct {
	// Seed is the base layout seed; epochs and campaign replicas derive
	// from it.
	Seed uint64
	// HeapSize and M configure the underlying DieHard heap. The default
	// heap is deliberately small (96 KB) so the class region the
	// schedule exercises runs near its 1/M threshold — a nearly full
	// heap is where unhealed faults actually strike neighbors.
	HeapSize int
	M        float64
	Schedule Schedule
	// Cycles is the total session cycles to run; EpochCycles, when
	// positive, discards and re-seeds the heap every that many cycles
	// (the scheduled restart that re-randomizes the layout). Evidence
	// and countermeasures persist across epochs.
	Cycles      int
	EpochCycles int
	// Heal enables the countermeasure loop; false measures the unhealed
	// baseline (evidence still accumulates, verdicts are still reported,
	// nothing is applied).
	Heal bool
	// ConfidenceBar is the absolute vote floor a culprit needs before a
	// countermeasure fires (default 3); Triage's strict-majority rule
	// applies on top.
	ConfidenceBar int
	// PadSlack is added to the max observed damage extent when sizing an
	// overflow pad (default 8, one canary width).
	PadSlack int
	// QuarantineCap bounds the heap's delayed-reuse FIFO (default 8).
	QuarantineCap int
	// HeapCheckEvery / HeapCheckMin set the detector's barrier cadence
	// (defaults 4*Sites and max(1, Sites/2): adaptive, tightening after
	// evidence).
	HeapCheckEvery int
	HeapCheckMin   int
	// Obs, when non-nil, receives the supervisor's slice of the unified
	// metrics tree: heal.* gauges over the run's tally, a heal.cycle_ns
	// latency histogram, and the detect.* gauges of the live epoch
	// (re-bound on every restart — the registry's idempotent rebind).
	// The supervisor is sequential, so scrape from its goroutine or at
	// quiescence. Purely observational: no timestamps feed the verdicts,
	// so VerdictHash is unchanged by wiring this.
	Obs *obs.Registry
	// Trace, when non-nil, attaches the flight recorder: the supervisor
	// and its detection heap share ring SupervisorRing — EvEvidence per
	// recorded canary hit, EvBarrier per heap check, EvCountermeasure
	// per pad/quarantine installation.
	Trace *obs.Recorder
}

// SupervisorRing is the flight-recorder worker id the heal supervisor
// emits on, disjoint from serve's workers (0..W-1) and shard rings
// (100+).
const SupervisorRing = 200

func (c *Config) withDefaults() (Config, error) {
	v := *c
	if v.HeapSize == 0 {
		v.HeapSize = 96 << 10
	}
	if v.M == 0 {
		v.M = 2.0
	}
	if v.ConfidenceBar == 0 {
		v.ConfidenceBar = 3
	}
	if v.PadSlack == 0 {
		v.PadSlack = 8
	}
	if v.QuarantineCap == 0 {
		v.QuarantineCap = 8
	}
	s := v.Schedule
	if s.Sites <= 0 || v.Cycles <= 0 {
		return v, fmt.Errorf("heal: Sites and Cycles must be positive")
	}
	if s.ObjectSize < 8 || s.ObjectSize > core.MaxObjectSize {
		return v, fmt.Errorf("heal: ObjectSize %d outside [8, %d]", s.ObjectSize, core.MaxObjectSize)
	}
	if s.OverflowSite >= s.Sites || s.DanglingSite >= s.Sites {
		return v, fmt.Errorf("heal: fault sites must lie below Sites=%d", s.Sites)
	}
	if s.OverflowSite >= 0 && (s.OverflowEvery <= 0 || s.OverflowReach <= 0) {
		return v, fmt.Errorf("heal: OverflowSite needs positive OverflowEvery and OverflowReach")
	}
	if s.DanglingSite >= 0 && s.DanglingEvery <= 0 {
		return v, fmt.Errorf("heal: DanglingSite needs positive DanglingEvery")
	}
	if s.OverflowSite >= 0 && s.OverflowSite == s.DanglingSite {
		return v, fmt.Errorf("heal: overflow and dangling sites must differ")
	}
	if v.HeapCheckEvery == 0 {
		v.HeapCheckEvery = 4 * s.Sites
	}
	if v.HeapCheckMin == 0 {
		v.HeapCheckMin = s.Sites / 2
		if v.HeapCheckMin < 1 {
			v.HeapCheckMin = 1
		}
	}
	return v, nil
}

// Event is one entry in the supervisor's timeline.
type Event struct {
	Cycle int
	Kind  string // "onset", "pad", "quarantine", "restart"
	Site  int    // convicted site for pad/quarantine, -1 otherwise
	Note  string
}

// Result is one supervisor run's outcome.
type Result struct {
	Seed     uint64
	Cycles   int
	Failures int // cycles with >= 1 corrupted session token (or failed malloc)
	Restarts int
	// MTBF is mean cycles between failures: Cycles / max(1, Failures).
	MTBF float64
	// OnsetCycle is the first cycle with a failure or fresh evidence;
	// MitigatedCycle the first countermeasure application (-1 when
	// never). RestartsOnsetToMitigation counts restarts strictly between
	// the two — zero is the "applied live" property the acceptance
	// criteria demand.
	OnsetCycle                int
	MitigatedCycle            int
	RestartsOnsetToMitigation int
	Timeline                  []Event
	// Overflow and Dangling are this run's final verdicts; PadTable and
	// QuarantineSites the countermeasures in force at the end.
	Overflow        *detect.TriageResult
	Dangling        *detect.TriageResult
	PadTable        map[int]int
	QuarantineSites []int
	// EvidenceWindows counts cycles that produced evidence; MinCadence
	// is the tightest barrier interval the adaptive cadence reached.
	EvidenceWindows int
	MinCadence      int
	// Quarantined / QuarantineOut are the final epoch's FIFO counters.
	Quarantined   uint64
	QuarantineOut uint64
}

// supervisor is one replica's running state.
type supervisor struct {
	cfg Config
	mit *Mitigations
	acc *detect.Accumulator
	res *Result

	h       *detect.Heap
	det     *detect.Detector
	mem     heap.Memory
	curSite int
	ptrs    []heap.Ptr
	epoch   int

	ring    *obs.Ring      // supervisor + detection-heap trace ring
	cycleNs *obs.Histogram // per-cycle wall latency (Obs runs only)
}

// Run executes one supervisor under cfg and returns its Result.
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &supervisor{
		cfg: cfg,
		mit: NewMitigations(),
		acc: &detect.Accumulator{},
		res: &Result{
			Seed: cfg.Seed, OnsetCycle: -1, MitigatedCycle: -1,
			MinCadence: cfg.HeapCheckEvery,
		},
		ptrs: make([]heap.Ptr, cfg.Schedule.Sites),
	}
	s.ring = cfg.Trace.Ring(SupervisorRing)
	if cfg.Obs != nil {
		s.cycleNs = &obs.Histogram{}
		cfg.Obs.Histogram("heal.cycle_ns", s.cycleNs)
		res := s.res
		cfg.Obs.Gauge("heal.failures", func() float64 { return float64(res.Failures) })
		cfg.Obs.Gauge("heal.restarts", func() float64 { return float64(res.Restarts) })
		cfg.Obs.Gauge("heal.evidence_windows", func() float64 { return float64(res.EvidenceWindows) })
		cfg.Obs.Gauge("heal.min_cadence", func() float64 { return float64(res.MinCadence) })
		cfg.Obs.Gauge("heal.pads_installed", func() float64 { return float64(s.mit.PadCount()) })
		cfg.Obs.Gauge("heal.quarantine_sites", func() float64 { return float64(s.mit.QuarantineCount()) })
	}
	if err := s.startEpoch(); err != nil {
		return nil, err
	}
	for c := 0; c < cfg.Cycles; c++ {
		if cfg.EpochCycles > 0 && c > 0 && c%cfg.EpochCycles == 0 {
			if err := s.restart(c); err != nil {
				return nil, err
			}
		}
		var t0 time.Time
		if s.cycleNs != nil {
			t0 = time.Now()
		}
		if err := s.cycle(c); err != nil {
			return nil, err
		}
		if s.cycleNs != nil {
			s.cycleNs.Record(time.Since(t0).Nanoseconds())
		}
	}
	if err := s.h.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("heal: final invariant check: %w", err)
	}
	st := s.h.Stats()
	s.res.Quarantined = st.Quarantined
	s.res.QuarantineOut = st.QuarantineOut
	s.res.Cycles = cfg.Cycles
	s.res.MTBF = float64(cfg.Cycles) / float64(max(1, s.res.Failures))
	s.res.Overflow = s.acc.Verdict(detect.KindOverflow, cfg.ConfidenceBar)
	s.res.Dangling = s.acc.Verdict(detect.KindDangling, cfg.ConfidenceBar)
	s.res.PadTable = s.mit.PadTable()
	s.res.QuarantineSites = s.mit.QuarantineSites()
	return s.res, nil
}

// startEpoch builds a fresh canary-armed heap for the current epoch,
// wiring the live Mitigations table into the allocator hooks. The table
// and the accumulator outlive every epoch.
func (s *supervisor) startEpoch() error {
	copts := core.Options{
		HeapSize:      s.cfg.HeapSize,
		M:             s.cfg.M,
		Seed:          exps.DeriveSeed(s.cfg.Seed, s.epoch),
		QuarantineCap: s.cfg.QuarantineCap,
	}
	if s.cfg.Heal {
		copts.SizeAdjust = func(size int) int { return size + s.mit.Pad(s.curSite) }
		copts.FreeFilter = func(p heap.Ptr, slot int) bool { return s.mit.Quarantined(s.curSite) }
	}
	h, err := detect.New(copts, detect.Options{
		HeapCheckEvery: s.cfg.HeapCheckEvery,
		HeapCheckMin:   s.cfg.HeapCheckMin,
		Trace:          s.ring,
	})
	if err != nil {
		return err
	}
	s.h, s.det, s.mem = h, h.Detector(), h.Memory()
	// Each epoch's detector re-binds the detect.* gauges, so the tree
	// always reads the live heap (the dead epoch's tallies persist in
	// the supervisor's own heal.* gauges and the accumulator).
	s.det.PublishMetrics(s.cfg.Obs)
	s.epoch++
	return nil
}

// restart is the scheduled epoch restart: drain what the dying layout
// still knows (flush the quarantine so its releases get their reuse
// audits, run a final barrier, bank the evidence), then re-seed.
func (s *supervisor) restart(c int) error {
	s.h.FlushQuarantine()
	s.det.HeapCheck()
	s.drainEvidence(c)
	st := s.h.Stats()
	s.res.Quarantined += st.Quarantined
	s.res.QuarantineOut += st.QuarantineOut
	s.res.Restarts++
	s.log(Event{Cycle: c, Kind: "restart", Site: -1,
		Note: fmt.Sprintf("epoch %d: re-seeded layout", s.epoch)})
	if s.res.OnsetCycle >= 0 && s.res.MitigatedCycle < 0 {
		s.res.RestartsOnsetToMitigation++
	}
	return s.startEpoch()
}

// token is the value session objects are initialized with and verified
// against: unique per (site, cycle), never zero, never canary.
func token(site, cycle int) uint64 {
	z := uint64(site)<<32 ^ uint64(cycle) ^ 0xd1e4a5d1e4a5d1e4
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	return z | 1
}

// cycle runs one session cycle: allocate all sites, inject the planned
// faults, verify every surviving object's token, tear down, drain
// evidence, and (when healing) adjudicate and apply countermeasures.
func (s *supervisor) cycle(c int) error {
	sch := &s.cfg.Schedule
	injectDangling := sch.DanglingSite >= 0 && c%sch.DanglingEvery == sch.DanglingEvery-1
	injectOverflow := sch.OverflowSite >= 0 && c%sch.OverflowEvery == sch.OverflowEvery-1
	var stale heap.Ptr
	failed := false

	for site := 0; site < sch.Sites; site++ {
		s.curSite = site
		p, err := s.h.Malloc(sch.ObjectSize)
		if err != nil {
			// A planned schedule never exhausts the heap; treat refusal
			// as a failure and keep serving.
			failed = true
			s.ptrs[site] = heap.Null
			continue
		}
		s.ptrs[site] = p
		_ = s.mem.Store64(uint64(p), token(site, c))
		if injectDangling && site == sch.DanglingSite {
			// Premature free: the program will still write through (and
			// verify) this pointer later in the cycle.
			stale = p
			s.curSite = site
			_ = s.h.Free(p)
			s.ptrs[site] = heap.Null
		}
	}

	if injectOverflow && s.ptrs[sch.OverflowSite] != heap.Null {
		// The overflow writes past the *requested* end — padding enlarges
		// the slot underneath, not the program's idea of its object.
		base := uint64(s.ptrs[sch.OverflowSite]) + uint64(sch.ObjectSize)
		junk := make([]byte, sch.OverflowReach)
		for i := range junk {
			junk[i] = 0xEE
		}
		_ = s.h.Mem().WriteBytes(base, junk) // may run off the region: the fault is the point
	}
	if injectDangling && stale != heap.Null {
		// Stale write after the cycle's remaining allocations: the slot
		// may belong to someone else now — unless quarantine held it.
		_ = s.h.Mem().WriteBytes(uint64(stale), []byte{0xDD, 0xDD, 0xDD, 0xDD, 0xDD, 0xDD, 0xDD, 0xDD})
	}

	// Verify: every live session object must still carry its token.
	for site := 0; site < sch.Sites; site++ {
		if s.ptrs[site] == heap.Null {
			continue
		}
		v, err := s.mem.Load64(uint64(s.ptrs[site]))
		if err != nil || v != token(site, c) {
			failed = true
		}
	}
	// Teardown frees every surviving object; slack audits fire here.
	for site := 0; site < sch.Sites; site++ {
		if s.ptrs[site] == heap.Null {
			continue
		}
		s.curSite = site
		_ = s.h.Free(s.ptrs[site])
		s.ptrs[site] = heap.Null
	}

	if failed {
		s.res.Failures++
	}
	fresh := s.drainEvidence(c)
	if (failed || fresh) && s.res.OnsetCycle < 0 {
		s.res.OnsetCycle = c
		s.log(Event{Cycle: c, Kind: "onset", Site: -1, Note: "first failure or evidence"})
	}
	if s.cfg.Heal {
		s.adjudicate(c)
	}
	if cad := s.det.Cadence(); cad < s.res.MinCadence {
		s.res.MinCadence = cad
	}
	return nil
}

// drainEvidence moves the detector's evidence into the accumulator as
// one window (site identity = allocation index mod Sites). Returns
// whether the window carried anything.
func (s *supervisor) drainEvidence(c int) bool {
	evs, _ := s.det.TakeEvidence()
	if len(evs) == 0 {
		return false
	}
	s.acc.Observe(evs, s.cfg.Schedule.Sites)
	s.res.EvidenceWindows++
	return true
}

// adjudicate checks both verdicts against the confidence bar and applies
// any newly warranted countermeasure — between two cycles of a running
// service, with no restart.
func (s *supervisor) adjudicate(c int) {
	if v := s.acc.Verdict(detect.KindOverflow, s.cfg.ConfidenceBar); v.Culprit >= 0 {
		pad := (v.OverflowLen + s.cfg.PadSlack + 7) &^ 7
		if s.mit.SetPad(v.Culprit, pad) {
			s.noteMitigation(c)
			if s.ring != nil {
				s.ring.Emit(obs.EvCountermeasure, uint64(v.Culprit))
			}
			s.log(Event{Cycle: c, Kind: "pad", Site: v.Culprit,
				Note: fmt.Sprintf("pad=%dB votes=%d/%d", pad, v.Votes[v.Culprit], v.Detected)})
		}
	}
	if v := s.acc.Verdict(detect.KindDangling, s.cfg.ConfidenceBar); v.Culprit >= 0 {
		if s.mit.SetQuarantine(v.Culprit) {
			s.noteMitigation(c)
			if s.ring != nil {
				s.ring.Emit(obs.EvCountermeasure, uint64(v.Culprit))
			}
			s.log(Event{Cycle: c, Kind: "quarantine", Site: v.Culprit,
				Note: fmt.Sprintf("votes=%d/%d", v.Votes[v.Culprit], v.Detected)})
		}
	}
}

func (s *supervisor) noteMitigation(c int) {
	if s.res.MitigatedCycle < 0 {
		s.res.MitigatedCycle = c
	}
}

func (s *supervisor) log(ev Event) { s.res.Timeline = append(s.res.Timeline, ev) }

// CampaignResult aggregates a replicated supervisor campaign.
type CampaignResult struct {
	Replicas []*Result
	// Cycles / Failures / Restarts are totals; MTBF the pooled mean
	// cycles between failures.
	Cycles   int
	Failures int
	Restarts int
	MTBF     float64
	// Overflow and Dangling are the verdicts over the merged cross-
	// replica accumulator evidence — per-replica windows re-adjudicated
	// jointly, the replicated analog of detect.Triage.
	Overflow *detect.TriageResult
	Dangling *detect.TriageResult
	// VerdictHash is an FNV-1a digest of every replica's observable
	// outcome plus the merged verdicts: byte-identical across worker
	// counts by construction, pinned by the regression tests.
	VerdictHash uint64
}

// RunCampaign replicates the supervisor over `replicas` independently
// seeded layouts (seeds derived SplitMix64-style from cfg.Seed) on a
// pool of `workers` goroutines. Each replica is fully sequential and
// self-contained — its own heap, accumulator, and mitigation table — so
// scheduling cannot perturb it; merging is order-independent sums, so
// the campaign result is byte-identical at any worker count.
func RunCampaign(cfg Config, replicas, workers int) (*CampaignResult, error) {
	if replicas <= 0 {
		return nil, fmt.Errorf("heal: replicas must be positive")
	}
	if workers <= 0 {
		workers = 1
	}
	if workers > replicas {
		workers = replicas
	}
	results := make([]*Result, replicas)
	errs := make([]error, replicas)
	idx := make(chan int, replicas)
	for i := 0; i < replicas; i++ {
		idx <- i
	}
	close(idx)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				rcfg := cfg
				rcfg.Seed = exps.DeriveSeed(cfg.Seed, i)
				results[i], errs[i] = Run(rcfg)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	cfgd, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	cr := &CampaignResult{Replicas: results}
	merged := &detect.Accumulator{}
	for _, r := range results {
		cr.Cycles += r.Cycles
		cr.Failures += r.Failures
		cr.Restarts += r.Restarts
		mergeVerdict(merged, r.Overflow)
		mergeVerdict(merged, r.Dangling)
	}
	cr.MTBF = float64(cr.Cycles) / float64(max(1, cr.Failures))
	cr.Overflow = merged.Verdict(detect.KindOverflow, cfgd.ConfidenceBar)
	cr.Dangling = merged.Verdict(detect.KindDangling, cfgd.ConfidenceBar)
	cr.VerdictHash = cr.hash()
	return cr, nil
}

// mergeVerdict folds one replica's per-kind tally into the campaign
// accumulator by replaying its votes as synthetic windows. Votes and
// window counts are sums either way, so this equals merging the live
// accumulators, without keeping them alive past their replica.
func mergeVerdict(acc *detect.Accumulator, v *detect.TriageResult) {
	if v == nil || v.Detected == 0 {
		return
	}
	b := &detect.Accumulator{}
	sites := make([]int, 0, len(v.Votes))
	for s := range v.Votes {
		sites = append(sites, s)
	}
	sort.Ints(sites)
	// Replay: Detected windows, the i-th containing every site with more
	// than i votes. Vote multisets are preserved exactly.
	for i := 0; i < v.Detected; i++ {
		var evs []detect.Evidence
		for _, s := range sites {
			if v.Votes[s] > i {
				evs = append(evs, detect.Evidence{Kind: v.Kind, AllocSite: s, Length: v.OverflowLen})
			}
		}
		if evs != nil {
			b.Observe(evs, 0)
		}
	}
	acc.Merge(b)
}

// hash digests the campaign's observable outcome.
func (cr *CampaignResult) hash() uint64 {
	h := fnv.New64a()
	wr := func(vs ...int) {
		var b [8]byte
		for _, v := range vs {
			for i := 0; i < 8; i++ {
				b[i] = byte(uint64(v) >> (8 * i))
			}
			h.Write(b[:])
		}
	}
	wrVerdict := func(v *detect.TriageResult) {
		wr(len(v.Kind), v.Trials, v.Detected, v.Culprit, v.OverflowLen)
		sites := make([]int, 0, len(v.Votes))
		for s := range v.Votes {
			sites = append(sites, s)
		}
		sort.Ints(sites)
		for _, s := range sites {
			wr(s, v.Votes[s])
		}
	}
	for _, r := range cr.Replicas {
		wr(r.Cycles, r.Failures, r.Restarts, r.OnsetCycle, r.MitigatedCycle,
			r.RestartsOnsetToMitigation, r.EvidenceWindows, r.MinCadence,
			int(r.Quarantined), int(r.QuarantineOut))
		sites := make([]int, 0, len(r.PadTable))
		for s := range r.PadTable {
			sites = append(sites, s)
		}
		sort.Ints(sites)
		for _, s := range sites {
			wr(s, r.PadTable[s])
		}
		wr(r.QuarantineSites...)
		wrVerdict(r.Overflow)
		wrVerdict(r.Dangling)
	}
	wrVerdict(cr.Overflow)
	wrVerdict(cr.Dangling)
	return h.Sum64()
}
