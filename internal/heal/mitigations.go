package heal

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Mitigations is the live countermeasure table: per-site overallocation
// pads for convicted overflow culprits and per-site free-quarantine
// flags for convicted dangling culprits. Readers sit on allocator hot
// paths (every Malloc consults Pad through core.Options.SizeAdjust,
// every Free consults Quarantined through FreeFilter, and serve workers
// consult both inline), so lookups are wait-free: both tables are
// immutable maps behind atomic pointers, republished copy-on-write by
// the supervisor's rare writes. Applying a countermeasure is therefore
// *live* by construction — the next allocation or free anywhere in the
// service observes it, with no restart, no barrier, and no locking on
// the read side.
type Mitigations struct {
	mu   sync.Mutex // serializes writers; readers never take it
	pads atomic.Pointer[map[int]int]
	quar atomic.Pointer[map[int]bool]
}

// NewMitigations returns an empty, immediately usable table.
func NewMitigations() *Mitigations {
	m := &Mitigations{}
	empty := map[int]int{}
	m.pads.Store(&empty)
	none := map[int]bool{}
	m.quar.Store(&none)
	return m
}

// Pad returns the extra bytes allocation site should over-allocate by
// (0 when the site is not convicted).
func (m *Mitigations) Pad(site int) int { return (*m.pads.Load())[site] }

// Quarantined reports whether frees from allocation site are diverted
// into delayed-reuse quarantine.
func (m *Mitigations) Quarantined(site int) bool { return (*m.quar.Load())[site] }

// SetPad installs (or raises — pads are max-merged, so an escape past an
// under-estimated pad can only grow it) the overallocation pad for a
// site. Returns true when the table changed.
func (m *Mitigations) SetPad(site, pad int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := *m.pads.Load()
	if old[site] >= pad {
		return false
	}
	next := make(map[int]int, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[site] = pad
	m.pads.Store(&next)
	return true
}

// SetQuarantine marks a site's frees for quarantine. Returns true when
// the table changed.
func (m *Mitigations) SetQuarantine(site int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	old := *m.quar.Load()
	if old[site] {
		return false
	}
	next := make(map[int]bool, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[site] = true
	m.quar.Store(&next)
	return true
}

// PadCount and QuarantineCount report how many countermeasures are in
// force — race-clean gauges (one atomic pointer load each).
func (m *Mitigations) PadCount() int        { return len(*m.pads.Load()) }
func (m *Mitigations) QuarantineCount() int { return len(*m.quar.Load()) }

// PadTable returns a copy of the pad table.
func (m *Mitigations) PadTable() map[int]int {
	old := *m.pads.Load()
	out := make(map[int]int, len(old))
	for k, v := range old {
		out[k] = v
	}
	return out
}

// QuarantineSites returns the quarantined sites in ascending order.
func (m *Mitigations) QuarantineSites() []int {
	old := *m.quar.Load()
	out := make([]int, 0, len(old))
	for s := range old {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}
