package replicate

import (
	"bytes"

	"diehard/internal/obs"
)

// The sequential voting engine: the paper's lock-step pipe protocol.
// Every replica rendezvouses with the voter at each buffer boundary and
// stalls until the round is adjudicated — the exact §5.2 barrier, kept
// as the semantic reference and the baseline the pipelined engine
// (pipeline.go) is benchmarked against.

// seqWriter stages a replica's output and synchronizes with the voter at
// buffer boundaries: an unbuffered send followed by an acknowledgement
// the replica blocks on, so a replica never runs ahead of the vote.
type seqWriter struct {
	buf    []byte
	size   int
	ch     chan chunk
	ack    chan bool
	killed bool
}

func newSeqWriter(size int) *seqWriter {
	return &seqWriter{
		size: size,
		ch:   make(chan chunk),
		ack:  make(chan bool),
	}
}

func (w *seqWriter) Write(p []byte) (int, error) {
	if w.killed {
		return 0, ErrKilled
	}
	w.buf = append(w.buf, p...)
	for len(w.buf) >= w.size {
		out := make([]byte, w.size)
		copy(out, w.buf[:w.size])
		w.buf = w.buf[w.size:]
		w.ch <- chunk{data: out, hash: chunkHash(out, false)}
		if !<-w.ack {
			w.killed = true
			return 0, ErrKilled
		}
	}
	return len(p), nil
}

// finish sends the final (possibly empty) partial buffer.
func (w *seqWriter) finish(progErr error) {
	if w.killed {
		return
	}
	w.ch <- chunk{data: w.buf, hash: chunkHash(w.buf, true), done: true, err: progErr}
	<-w.ack
}

// runSequential drives a replicated run through the barrier voter,
// filling res (everything except Survivors, which Run derives from the
// per-replica reports).
func runSequential(prog Program, input []byte, opts Options, seeds []uint64, res *Result) {
	k := opts.Replicas
	writers := make([]*seqWriter, k)
	rws := make([]replicaWriter, k)
	reps := make([]*ReplicaReport, k)
	for i := range writers {
		writers[i] = newSeqWriter(opts.BufferSize)
		rws[i] = writers[i]
		reps[i] = &res.Replicas[i] // fixed-size slice: pointers stay valid
	}
	wg := spawnReplicas(prog, input, opts, seeds, rws, reps)

	states := make([]replicaState, k)
	var output bytes.Buffer
	var ctrRounds *obs.Counter
	if opts.Obs != nil {
		ctrRounds = opts.Obs.Counter("replicate.rounds")
	}

	for liveCount(states) > 0 {
		res.Rounds++
		ctrRounds.Inc()
		// Barrier: collect one message from every running replica.
		msgs := make(map[int]chunk)
		var ids []int
		for i := 0; i < k; i++ {
			if states[i] != rsRunning {
				continue
			}
			m := <-writers[i].ch
			if m.err != nil {
				// Crashed replicas are dropped; their output is
				// discarded.
				states[i] = rsCrashed
				res.Replicas[i].Err = m.err
				writers[i].ack <- true // release the goroutine
				continue
			}
			msgs[i] = m
			ids = append(ids, i)
		}
		if len(ids) == 0 {
			break
		}
		d := adjudicate(ids, msgs, k)
		if d.noAgreement {
			res.UninitSuspected = true
			res.Agreed = false
			for _, i := range d.losers {
				states[i] = rsKilled
				res.Replicas[i].Killed = true
				writers[i].ack <- false
			}
			break
		}
		if d.quorumLost {
			// A lone survivor has no one to agree with; stream its
			// output for availability but note the lost quorum.
			res.Agreed = false
		}
		output.Write(msgs[d.winner[0]].data)
		for _, i := range d.losers {
			// Quorum held; the minority is killed and the run can still
			// count as agreed.
			states[i] = rsKilled
			res.Replicas[i].Killed = true
			writers[i].ack <- false
		}
		for _, i := range d.winner {
			if msgs[i].done {
				states[i] = rsFinished
				res.Replicas[i].Completed = true
			}
			writers[i].ack <- true
		}
	}

	wg.Wait()
	res.Output = output.Bytes()
}
