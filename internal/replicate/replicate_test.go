package replicate

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"diehard/internal/heap"
	"diehard/internal/libc"
)

const testHeap = 12 << 20

// echoProgram copies input to output through the simulated heap.
func echoProgram(ctx *Context) error {
	buf, err := ctx.Alloc.Malloc(len(ctx.Input) + 1)
	if err != nil {
		return err
	}
	if err := ctx.Mem.WriteBytes(buf, ctx.Input); err != nil {
		return err
	}
	out := make([]byte, len(ctx.Input))
	if err := ctx.Mem.ReadBytes(buf, out); err != nil {
		return err
	}
	_, err = ctx.Out.Write(out)
	return err
}

func TestReplicatedEcho(t *testing.T) {
	input := []byte(strings.Repeat("the quick brown fox ", 100))
	res, err := Run(echoProgram, input, Options{Replicas: 3, HeapSize: testHeap, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Output, input) {
		t.Fatalf("output differs from input: %d vs %d bytes", len(res.Output), len(input))
	}
	if !res.Agreed || res.Survivors != 3 || res.UninitSuspected {
		t.Fatalf("result %+v", res)
	}
}

func TestSingleReplicaPassThrough(t *testing.T) {
	res, err := Run(echoProgram, []byte("hello"), Options{Replicas: 1, HeapSize: testHeap, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "hello" || !res.Agreed {
		t.Fatalf("result %+v", res)
	}
}

func TestReplicasGetDistinctSeeds(t *testing.T) {
	res, err := Run(echoProgram, []byte("x"), Options{Replicas: 5, HeapSize: testHeap, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for _, r := range res.Replicas {
		if seen[r.Seed] {
			t.Fatal("two replicas share a seed")
		}
		seen[r.Seed] = true
	}
}

func TestMultiChunkOutput(t *testing.T) {
	// Output far larger than the 4 KB voting buffer: several barriers.
	prog := func(ctx *Context) error {
		line := []byte(strings.Repeat("z", 100))
		for i := 0; i < 500; i++ {
			if _, err := ctx.Out.Write(line); err != nil {
				return err
			}
		}
		return nil
	}
	res, err := Run(prog, nil, Options{Replicas: 3, HeapSize: testHeap, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != 50000 {
		t.Fatalf("output %d bytes, want 50000", len(res.Output))
	}
	if res.Rounds < 12 {
		t.Fatalf("expected many voting rounds, got %d", res.Rounds)
	}
	if !res.Agreed {
		t.Fatal("identical replicas should agree")
	}
}

func TestDivergentMinorityIsKilled(t *testing.T) {
	// One replica misbehaves (branching on its index stands in for a
	// corrupted replica); the majority commits and the deviant dies.
	prog := func(ctx *Context) error {
		msg := "all agree on this message\n"
		if ctx.Replica == 1 {
			msg = "i took a memory error to the knee\n"
		}
		_, err := ctx.Out.Write([]byte(msg))
		return err
	}
	res, err := Run(prog, nil, Options{Replicas: 3, HeapSize: testHeap, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "all agree on this message\n" {
		t.Fatalf("committed %q", res.Output)
	}
	if !res.Replicas[1].Killed {
		t.Fatal("deviant replica not killed")
	}
	if res.Survivors != 2 || !res.Agreed {
		t.Fatalf("result %+v", res)
	}
}

func TestKilledReplicaWritesFail(t *testing.T) {
	// A killed replica's writes return ErrKilled. Under the pipelined
	// voter the kill may land up to PipelineDepth buffers after the
	// disagreeing one, so the deviant keeps writing until it fails; the
	// bound asserts the kill arrives within the documented window.
	sawKill := make(chan error, 1)
	prog := func(ctx *Context) error {
		payload := bytes.Repeat([]byte("a"), DefaultBufferSize)
		if ctx.Replica == 0 {
			payload = bytes.Repeat([]byte("b"), DefaultBufferSize)
		}
		if ctx.Replica == 0 {
			for i := 0; i < DefaultPipelineDepth+2; i++ {
				if _, err := ctx.Out.Write(payload); err != nil {
					sawKill <- err
					return err
				}
			}
			sawKill <- nil
			return nil
		}
		for i := 0; i < DefaultPipelineDepth+2; i++ {
			if _, err := ctx.Out.Write(payload); err != nil {
				return err
			}
		}
		return nil
	}
	res, err := Run(prog, nil, Options{Replicas: 3, HeapSize: testHeap, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Replicas[0].Killed {
		t.Fatalf("replica 0 should be killed: %+v", res)
	}
	if e := <-sawKill; e != ErrKilled {
		t.Fatalf("killed replica's write returned %v", e)
	}
}

func TestCrashedReplicaIsDiscarded(t *testing.T) {
	// One replica segfaults (simulated via a wild read); the others
	// complete and agree.
	prog := func(ctx *Context) error {
		if ctx.Replica == 2 {
			if _, err := ctx.Mem.Load8(0xdead0000); err != nil {
				return err // the crash
			}
		}
		_, err := ctx.Out.Write([]byte("fine\n"))
		return err
	}
	res, err := Run(prog, nil, Options{Replicas: 3, HeapSize: testHeap, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "fine\n" {
		t.Fatalf("committed %q", res.Output)
	}
	if res.Replicas[2].Err == nil {
		t.Fatal("crashed replica has no recorded error")
	}
	if res.Survivors != 2 {
		t.Fatalf("survivors = %d", res.Survivors)
	}
}

func TestAllCrashedNoOutput(t *testing.T) {
	prog := func(ctx *Context) error {
		_, err := ctx.Mem.Load8(0xdead0000)
		return err
	}
	res, err := Run(prog, nil, Options{Replicas: 3, HeapSize: testHeap, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Survivors != 0 || res.Agreed {
		t.Fatalf("result %+v", res)
	}
}

func TestUninitializedReadDetected(t *testing.T) {
	// The flagship §3.2 behaviour: a program whose output depends on
	// uninitialized heap memory produces a different result in every
	// replica (random fill with distinct seeds), so no two agree.
	prog := func(ctx *Context) error {
		p, err := ctx.Alloc.Malloc(64)
		if err != nil {
			return err
		}
		v, err := ctx.Mem.Load64(p) // never written: uninitialized read
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(ctx.Out, "value: %d\n", v)
		return err
	}
	res, err := Run(prog, nil, Options{Replicas: 3, HeapSize: testHeap, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.UninitSuspected {
		t.Fatalf("uninitialized read not detected: %+v", res)
	}
	if res.Agreed {
		t.Fatal("run with divergent output cannot be agreed")
	}
}

func TestUninitializedReadMissedWithoutRandomFill(t *testing.T) {
	// Control experiment: the same program run on stand-alone heaps
	// (zero-filled fresh pages) would agree everywhere. This guards the
	// mechanism: detection comes from the random fill, not the voter.
	type probe struct {
		val uint64
	}
	vals := make(chan probe, 3)
	prog := func(ctx *Context) error {
		p, err := ctx.Alloc.Malloc(64)
		if err != nil {
			return err
		}
		v, err := ctx.Mem.Load64(p)
		if err != nil {
			return err
		}
		vals <- probe{v}
		_, err = ctx.Out.Write([]byte("done"))
		return err
	}
	res, err := Run(prog, nil, Options{Replicas: 3, HeapSize: testHeap, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Replicated mode fills memory randomly, so the three probes differ.
	a, b, c := <-vals, <-vals, <-vals
	if a.val == b.val && b.val == c.val {
		t.Fatal("replicated heaps returned identical uninitialized contents")
	}
	_ = res
}

func TestVirtualClockIsDeterministic(t *testing.T) {
	// Replicas that consult the clock still agree: the date functions
	// are intercepted (§5.3).
	prog := func(ctx *Context) error {
		for i := 0; i < 5; i++ {
			if _, err := fmt.Fprintf(ctx.Out, "t=%d\n", ctx.Now()); err != nil {
				return err
			}
		}
		return nil
	}
	res, err := Run(prog, nil, Options{Replicas: 3, HeapSize: testHeap, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreed || res.Survivors != 3 {
		t.Fatalf("clock-using replicas disagreed: %+v", res)
	}
	if !strings.Contains(string(res.Output), "t=1150000001") {
		t.Fatalf("unexpected clock output %q", res.Output)
	}
}

func TestCheckedLibcAvailable(t *testing.T) {
	// The Context exposes bounds resolution so programs can use the
	// safe strcpy replacement.
	prog := func(ctx *Context) error {
		src, err := ctx.Alloc.Malloc(64)
		if err != nil {
			return err
		}
		dst, err := ctx.Alloc.Malloc(8)
		if err != nil {
			return err
		}
		if err := libc.WriteString(ctx.Mem, src, strings.Repeat("Q", 40)); err != nil {
			return err
		}
		n, err := libc.SafeStrcpy(ctx.Bounds, ctx.Mem, dst, src)
		if err != nil {
			return err
		}
		_, err = fmt.Fprintf(ctx.Out, "copied %d\n", n)
		return err
	}
	res, err := Run(prog, nil, Options{Replicas: 3, HeapSize: testHeap, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "copied 7\n" || !res.Agreed {
		t.Fatalf("result %q %+v", res.Output, res)
	}
}

func TestManyReplicas(t *testing.T) {
	// The §7.2.3 configuration: sixteen replicas.
	input := []byte(strings.Repeat("scale ", 200))
	res, err := Run(echoProgram, input, Options{Replicas: 16, HeapSize: testHeap, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if res.Survivors != 16 || !res.Agreed {
		t.Fatalf("result %+v", res)
	}
	if !bytes.Equal(res.Output, input) {
		t.Fatal("output mismatch")
	}
}

func TestPanicInReplicaIsACrash(t *testing.T) {
	prog := func(ctx *Context) error {
		if ctx.Replica == 0 {
			panic("boom")
		}
		_, err := ctx.Out.Write([]byte("ok"))
		return err
	}
	res, err := Run(prog, nil, Options{Replicas: 3, HeapSize: testHeap, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replicas[0].Err == nil || res.Survivors != 2 {
		t.Fatalf("panic not treated as crash: %+v", res)
	}
	if string(res.Output) != "ok" {
		t.Fatalf("output %q", res.Output)
	}
}

func TestInvalidReplicaCount(t *testing.T) {
	if _, err := Run(echoProgram, nil, Options{Replicas: -1}); err == nil {
		t.Fatal("negative replica count accepted")
	}
}

var _ = heap.Null

func TestTwoReplicasCannotAdjudicate(t *testing.T) {
	// With two replicas the voter cannot tell who is right (§6 assumes
	// one or at least three); disagreement terminates the run like an
	// uninitialized-read detection.
	prog := func(ctx *Context) error {
		msg := "a"
		if ctx.Replica == 1 {
			msg = "b"
		}
		_, err := ctx.Out.Write([]byte(msg))
		return err
	}
	res, err := Run(prog, nil, Options{Replicas: 2, HeapSize: testHeap, Seed: 20})
	if err != nil {
		t.Fatal(err)
	}
	if !res.UninitSuspected || res.Agreed {
		t.Fatalf("two disagreeing replicas must terminate: %+v", res)
	}
}

func TestLoneSurvivorLosesQuorum(t *testing.T) {
	// Two of three replicas crash; the survivor's output streams for
	// availability but the run is not "agreed".
	prog := func(ctx *Context) error {
		if ctx.Replica != 0 {
			_, err := ctx.Mem.Load8(0xdead0000)
			return err
		}
		_, err := ctx.Out.Write([]byte("alone\n"))
		return err
	}
	res, err := Run(prog, nil, Options{Replicas: 3, HeapSize: testHeap, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "alone\n" {
		t.Fatalf("survivor output lost: %q", res.Output)
	}
	if res.Agreed {
		t.Fatal("a lone survivor has no quorum")
	}
	if res.Survivors != 1 {
		t.Fatalf("survivors = %d", res.Survivors)
	}
}

func TestEmptyOutputAgrees(t *testing.T) {
	prog := func(ctx *Context) error { return nil }
	res, err := Run(prog, nil, Options{Replicas: 3, HeapSize: testHeap, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Agreed || res.Survivors != 3 || len(res.Output) != 0 {
		t.Fatalf("%+v", res)
	}
}

func TestPageFillerCountsInReplicatedMode(t *testing.T) {
	// §4.1 realized lazily: in replicated (RandomFill) mode every page a
	// replica first touches is pre-filled from its private stream, and
	// each page is filled exactly once. PagesDirty counts filler
	// invocations; the deltas must match the pages an allocation
	// actually touches, and re-touching must fire nothing.
	const replicas = 3
	type obs struct {
		deltaFirst  uint64
		deltaSecond uint64
	}
	var mu sync.Mutex
	results := make(map[int]obs)

	prog := func(ctx *Context) error {
		st := ctx.Alloc.Mem().Stats()
		// A 64 KB object: RandomFill writes the whole object, so at
		// least 16 pages must be instantiated (17 if it straddles).
		before := st.PagesDirty
		p, err := ctx.Alloc.Malloc(64 << 10)
		if err != nil {
			return err
		}
		deltaFirst := st.PagesDirty - before

		// Rewriting the same object must not re-fire the filler.
		mid := st.PagesDirty
		if err := ctx.Mem.Memset(p, 0xEE, 64<<10); err != nil {
			return err
		}
		if err := ctx.Mem.Memset(p, 0x11, 64<<10); err != nil {
			return err
		}
		deltaSecond := st.PagesDirty - mid

		mu.Lock()
		results[ctx.Replica] = obs{deltaFirst, deltaSecond}
		mu.Unlock()
		_, err = ctx.Out.Write([]byte("done"))
		return err
	}

	res, err := Run(prog, nil, Options{Replicas: replicas, HeapSize: testHeap, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if res.Survivors != replicas || !res.Agreed {
		t.Fatalf("replicated run failed: %+v", res)
	}
	for i := 0; i < replicas; i++ {
		o, ok := results[i]
		if !ok {
			t.Fatalf("replica %d reported nothing", i)
		}
		if o.deltaFirst < 16 || o.deltaFirst > 17 {
			t.Errorf("replica %d: first touch instantiated %d pages, want 16-17", i, o.deltaFirst)
		}
		if o.deltaSecond != 0 {
			t.Errorf("replica %d: re-touch instantiated %d pages, want 0", i, o.deltaSecond)
		}
	}
}
