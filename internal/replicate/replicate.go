// Package replicate implements DieHard's replicated mode (§5): several
// replicas of the same program execute simultaneously, each with a
// differently-seeded fully-randomized memory manager; input is broadcast
// to all replicas; output is committed only when replicas agree on it.
//
// The paper runs replicas as processes wired up with pipes and shared
// memory; here each replica is a goroutine owning a private simulated
// address space (DESIGN.md §1), its output staged through a buffer the
// size of a pipe transfer unit (4 KB). A voter adjudicates the stream of
// buffers exactly as §5.2 prescribes:
//
//   - if all live replicas produced identical buffers, the contents are
//     committed to the output;
//   - otherwise a buffer agreed on by at least two replicas wins, and
//     disagreeing replicas are killed ("a replica that has generated
//     anomalous output is no longer useful since it has entered into an
//     undefined state");
//   - if no two replicas agree, an uninitialized read (or equivalent
//     divergence) has been detected and execution terminates.
//
// Two voting engines implement those semantics (DESIGN.md §8). The
// default pipelined engine tags every buffer with a 64-bit hash in the
// replica's own goroutine and streams it through a buffered per-replica
// channel, so surviving replicas keep executing their next buffers while
// the current round is being voted; agreement is decided hash-first,
// with byte comparison only between hash-equal buffers, so the committed
// output is exactly what §5.2's byte-wise comparison would commit. The
// sequential engine (Options.Voter = VoterSequential) barrier-stalls
// every replica at each voting round, which is the paper's lock-step
// pipe protocol and the baseline the pipelined engine is benchmarked
// against. Both engines share one adjudication function, so they commit
// byte-identical output for any replica count.
//
// Replicas that crash are discarded and the live-replica count drops,
// mirroring the signal handling of the real system. Functions that would
// let replicas observe the environment differently (the clock) are
// virtualized so correct replicas are output-equivalent (§5.3).
package replicate

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"diehard/internal/obs"

	"diehard/internal/core"
	"diehard/internal/detect"
	"diehard/internal/heap"
	"diehard/internal/libc"
	"diehard/internal/rng"
)

// DefaultBufferSize is the voting granularity: the unit of transfer of a
// pipe, as in §5.2.
const DefaultBufferSize = 4096

// DefaultPipelineDepth is the base run-ahead allowance of the pipelined
// engine: the starting point of each replica's adaptive window (see
// Options.PipelineDepth).
const DefaultPipelineDepth = 4

// ErrKilled is returned from output writes of a replica the voter has
// killed for disagreeing. The replica's program unwinds on it. Under the
// pipelined voter the error surfaces on the first write after the kill
// is observed, which may be up to PipelineDepth buffers after the
// disagreeing one; none of the intervening output is ever committed.
var ErrKilled = errors.New("replicate: replica killed by voter")

// ErrNoAgreement reports a barrier at which no two replicas agreed — the
// signature of an uninitialized read propagating to output.
var ErrNoAgreement = errors.New("replicate: no two replicas agree; uninitialized read suspected")

// VoterMode selects the voting engine.
type VoterMode int

const (
	// VoterPipelined is the default hash-then-vote engine: replicas
	// stream hashed buffers through buffered channels and keep executing
	// while the voter adjudicates (DESIGN.md §8).
	VoterPipelined VoterMode = iota
	// VoterSequential is the paper's lock-step protocol: every replica
	// stalls at each voting barrier until the round is committed. Kept
	// as the semantic reference and benchmark baseline.
	VoterSequential
)

// Context is a replica's view of the world, passed to the Program.
type Context struct {
	// Alloc is the replica's private randomized allocator.
	Alloc heap.Allocator
	// Mem is the replica's view of memory.
	Mem heap.Memory
	// Bounds exposes object-bounds resolution for DieHard's checked
	// library functions (§4.4).
	Bounds libc.Bounds
	// Input is the replica's copy of the broadcast standard input.
	Input []byte
	// Out is the replica's standard output; writes are staged in the
	// voting buffer.
	Out io.Writer
	// Now is the virtualized clock (§5.3): deterministic and identical
	// across correct replicas.
	Now func() int64
	// Replica is the replica index, for diagnostics only; programs that
	// branch on it will be killed by the voter, which is occasionally
	// useful in tests.
	Replica int
}

// Program is a deterministic application run under replication.
type Program func(ctx *Context) error

// Options configures a replicated run.
type Options struct {
	// Replicas is the number of replicas; the voter cannot adjudicate
	// two, so use 1 or at least 3 (§6). Defaults to 3.
	Replicas int
	// HeapSize, M: per-replica DieHard configuration (defaults as in
	// internal/core).
	HeapSize int
	M        float64
	// Seed seeds the master stream from which replica seeds derive;
	// 0 draws a true random seed.
	Seed uint64
	// BufferSize is the voting granularity; defaults to 4 KB.
	BufferSize int
	// Voter selects the voting engine; the zero value is the pipelined
	// hash-then-vote engine. Committed output is byte-identical between
	// engines for any replica count.
	Voter VoterMode
	// PipelineDepth is the base run-ahead allowance of the pipelined
	// engine: each replica's window starts here and adapts toward the
	// measured voter lag within [1, 2×PipelineDepth] (laggards shrink
	// to 1, replicas the voter keeps waiting behind a slower sibling
	// widen to 2×). Defaults to DefaultPipelineDepth. The window never
	// affects committed output, only how far execution runs ahead of
	// adjudication.
	PipelineDepth int
	// MaxRestarts lets the pipelined voter replenish the quorum: each
	// time it kills a divergent replica, a fresh replica with a newly
	// derived seed re-executes the program over the broadcast input, its
	// replayed output is checked against the committed prefix, and —
	// when the replay matches — it joins the vote (§5's long-running
	// service story). A replacement whose replay diverges is killed in
	// turn; each attempt consumes one restart. 0 disables restarts; the
	// sequential reference voter ignores them.
	MaxRestarts int
	// Obs, when non-nil, receives live replicate.* counters while the
	// pipelined voter runs: vote rounds, kills, restarts, and the peak
	// adaptive run-ahead window. Purely observational — registration
	// happens before the first round and the counters are updated from
	// the voter goroutine only, so scraping mid-run is race-clean. The
	// sequential reference voter publishes rounds only.
	Obs *obs.Registry
	// Detect swaps each replica's random fill for the canary detection
	// engine (internal/detect): replicas still diverge on uninitialized
	// reads (their canary patterns derive from their distinct seeds), and
	// every replica's heap-error evidence is collected into its
	// ReplicaReport — so when the voter kills a divergent replica, the
	// evidence from its heap feeds Result.TriageKilled.
	Detect bool
}

// ReplicaReport describes one replica's fate.
type ReplicaReport struct {
	Seed      uint64
	Err       error // program error; nil if it completed or was killed
	Killed    bool
	Completed bool
	// Restarted marks a replacement replica spawned by the pipelined
	// voter after a kill (Options.MaxRestarts).
	Restarted bool
	// Evidence is the replica's heap-error evidence (Options.Detect
	// only), collected after the program unwound — completed, crashed,
	// or killed.
	Evidence []detect.Evidence
}

// Result is the outcome of a replicated run.
type Result struct {
	// Output is the committed (voted) output.
	Output []byte
	// Agreed reports whether every committed chunk had a quorum (all
	// chunks unanimous or majority-approved, never a lone survivor).
	Agreed bool
	// UninitSuspected reports a barrier where all live replicas
	// disagreed pairwise.
	UninitSuspected bool
	// Survivors is the number of replicas alive at the end.
	Survivors int
	// Rounds is the number of voting barriers.
	Rounds int
	// PipelineDepthPeak is the widest adaptive run-ahead window any
	// replica earned during the run (pipelined voter only; zero under
	// the sequential engine or when no chunk was ever voted). The
	// window starts at Options.PipelineDepth and resizes toward the
	// measured voter lag within [1, 2×PipelineDepth]; the peak reports
	// how much run-ahead the workload actually used.
	PipelineDepthPeak int
	// Replicas holds per-replica reports, including the exact seeds for
	// reproduction.
	Replicas []ReplicaReport
}

// replicaWriter is the staging writer a voting engine hands each
// replica: an io.Writer that chunks output at the voting granularity,
// plus the end-of-program handshake.
type replicaWriter interface {
	io.Writer
	finish(progErr error)
}

// Run executes prog under replication and votes on its output.
func Run(prog Program, input []byte, opts Options) (*Result, error) {
	if opts.Replicas == 0 {
		opts.Replicas = 3
	}
	if opts.Replicas < 1 {
		return nil, fmt.Errorf("replicate: invalid replica count %d", opts.Replicas)
	}
	if opts.BufferSize == 0 {
		opts.BufferSize = DefaultBufferSize
	}
	if opts.PipelineDepth <= 0 {
		opts.PipelineDepth = DefaultPipelineDepth
	}
	k := opts.Replicas
	master := rng.NewSeeded(opts.Seed)
	if opts.Seed == 0 {
		master = rng.New()
	}
	res := &Result{
		Agreed:   true,
		Replicas: make([]ReplicaReport, k),
	}
	seeds := make([]uint64, k)
	for i := 0; i < k; i++ {
		seeds[i] = master.Next64() | 1 // never zero: zero means "draw entropy"
		res.Replicas[i].Seed = seeds[i]
	}
	switch opts.Voter {
	case VoterSequential:
		runSequential(prog, input, opts, seeds, res)
	default:
		// Replacement replicas draw from the same master stream the
		// original seeds came from, so restarted runs stay reproducible
		// from Options.Seed alone.
		nextSeed := func() uint64 { return master.Next64() | 1 }
		runPipelined(prog, input, opts, seeds, nextSeed, res)
	}
	res.Survivors = 0
	for i := range res.Replicas {
		if res.Replicas[i].Completed {
			res.Survivors++
		}
	}
	if res.Survivors == 0 {
		res.Agreed = false
	}
	return res, nil
}

// TriageKilled intersects the heap-error evidence of the replicas the
// voter killed or that crashed (Options.Detect runs only) across their
// independently seeded layouts, localizing the culprit allocation site
// of the error that made them diverge. Returns nil when no such replica
// carried evidence.
func (r *Result) TriageKilled(kind detect.Kind) *detect.TriageResult {
	var reports []*detect.Report
	for i := range r.Replicas {
		rep := &r.Replicas[i]
		if (rep.Killed || rep.Err != nil) && len(rep.Evidence) > 0 {
			reports = append(reports, &detect.Report{Seed: rep.Seed, Evidence: rep.Evidence})
		}
	}
	if len(reports) == 0 {
		return nil
	}
	return detect.Triage(kind, reports)
}

// spawnReplicas starts one goroutine per replica, each with a private
// randomized heap seeded from seeds[i] and its output staged through
// writers[i]; detection evidence (Options.Detect) lands in reps[i]. The
// returned WaitGroup is done when every replica has unwound (completed,
// crashed, or killed).
func spawnReplicas(prog Program, input []byte, opts Options, seeds []uint64, writers []replicaWriter, reps []*ReplicaReport) *sync.WaitGroup {
	var wg sync.WaitGroup
	for i := range writers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runReplica(i, prog, input, opts, seeds[i], writers[i], reps[i])
		}(i)
	}
	return &wg
}

// runReplica executes one replica to completion: heap construction,
// input copy, the program itself (panics demoted to crashes), and the
// final partial-buffer handshake with the voter. After the program has
// unwound — however it unwound — a detection replica runs a final heap
// check and stashes its evidence in rep, which is what feeds the triage
// of killed replicas.
func runReplica(i int, prog Program, input []byte, opts Options, seed uint64, w replicaWriter, rep *ReplicaReport) {
	var progErr error
	var det *detect.Detector
	func() {
		defer func() {
			if r := recover(); r != nil {
				progErr = fmt.Errorf("replica panic: %v", r)
			}
		}()
		var (
			alloc  heap.Allocator
			mem    heap.Memory
			bounds libc.Bounds
		)
		if opts.Detect {
			dh, err := detect.New(core.Options{
				HeapSize: opts.HeapSize,
				M:        opts.M,
				Seed:     seed,
			}, detect.Options{})
			if err != nil {
				progErr = err
				return
			}
			det = dh.Detector()
			alloc, mem, bounds = dh, dh.Memory(), dh
		} else {
			h, err := core.New(core.Options{
				HeapSize:   opts.HeapSize,
				M:          opts.M,
				Seed:       seed,
				RandomFill: true,
			})
			if err != nil {
				progErr = err
				return
			}
			alloc, mem, bounds = h, h.Mem(), h
		}
		in := make([]byte, len(input))
		copy(in, input)
		var clock int64
		ctx := &Context{
			Alloc:   alloc,
			Mem:     mem,
			Bounds:  bounds,
			Input:   in,
			Out:     w,
			Replica: i,
			Now: func() int64 {
				clock++
				return 1_150_000_000 + clock // fixed virtual epoch
			},
		}
		progErr = prog(ctx)
	}()
	if det != nil {
		det.HeapCheck()
		rep.Evidence = det.Report().Evidence
	}
	if errors.Is(progErr, ErrKilled) {
		return // voter already knows
	}
	w.finish(progErr)
}
