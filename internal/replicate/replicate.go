// Package replicate implements DieHard's replicated mode (§5): several
// replicas of the same program execute simultaneously, each with a
// differently-seeded fully-randomized memory manager; input is broadcast
// to all replicas; output is committed only when replicas agree on it.
//
// The paper runs replicas as processes wired up with pipes and shared
// memory; here each replica is a goroutine owning a private simulated
// address space (DESIGN.md §1), its output staged through a buffer the
// size of a pipe transfer unit (4 KB). The voter synchronizes replicas
// at buffer-full or termination barriers, exactly like §5.2:
//
//   - if all live replicas produced identical buffers, the contents are
//     committed to the output;
//   - otherwise a buffer agreed on by at least two replicas wins, and
//     disagreeing replicas are killed ("a replica that has generated
//     anomalous output is no longer useful since it has entered into an
//     undefined state");
//   - if no two replicas agree, an uninitialized read (or equivalent
//     divergence) has been detected and execution terminates.
//
// Replicas that crash are discarded and the live-replica count drops,
// mirroring the signal handling of the real system. Functions that would
// let replicas observe the environment differently (the clock) are
// virtualized so correct replicas are output-equivalent (§5.3).
package replicate

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"

	"diehard/internal/core"
	"diehard/internal/heap"
	"diehard/internal/libc"
	"diehard/internal/rng"
)

// DefaultBufferSize is the voting granularity: the unit of transfer of a
// pipe, as in §5.2.
const DefaultBufferSize = 4096

// ErrKilled is returned from output writes of a replica the voter has
// killed for disagreeing. The replica's program unwinds on it.
var ErrKilled = errors.New("replicate: replica killed by voter")

// ErrNoAgreement reports a barrier at which no two replicas agreed — the
// signature of an uninitialized read propagating to output.
var ErrNoAgreement = errors.New("replicate: no two replicas agree; uninitialized read suspected")

// Context is a replica's view of the world, passed to the Program.
type Context struct {
	// Alloc is the replica's private randomized allocator.
	Alloc heap.Allocator
	// Mem is the replica's view of memory.
	Mem heap.Memory
	// Bounds exposes object-bounds resolution for DieHard's checked
	// library functions (§4.4).
	Bounds libc.Bounds
	// Input is the replica's copy of the broadcast standard input.
	Input []byte
	// Out is the replica's standard output; writes are staged in the
	// voting buffer.
	Out io.Writer
	// Now is the virtualized clock (§5.3): deterministic and identical
	// across correct replicas.
	Now func() int64
	// Replica is the replica index, for diagnostics only; programs that
	// branch on it will be killed by the voter, which is occasionally
	// useful in tests.
	Replica int
}

// Program is a deterministic application run under replication.
type Program func(ctx *Context) error

// Options configures a replicated run.
type Options struct {
	// Replicas is the number of replicas; the voter cannot adjudicate
	// two, so use 1 or at least 3 (§6). Defaults to 3.
	Replicas int
	// HeapSize, M: per-replica DieHard configuration (defaults as in
	// internal/core).
	HeapSize int
	M        float64
	// Seed seeds the master stream from which replica seeds derive;
	// 0 draws a true random seed.
	Seed uint64
	// BufferSize is the voting granularity; defaults to 4 KB.
	BufferSize int
}

// ReplicaReport describes one replica's fate.
type ReplicaReport struct {
	Seed      uint64
	Err       error // program error; nil if it completed or was killed
	Killed    bool
	Completed bool
}

// Result is the outcome of a replicated run.
type Result struct {
	// Output is the committed (voted) output.
	Output []byte
	// Agreed reports whether every committed chunk had a quorum (all
	// chunks unanimous or majority-approved, never a lone survivor).
	Agreed bool
	// UninitSuspected reports a barrier where all live replicas
	// disagreed pairwise.
	UninitSuspected bool
	// Survivors is the number of replicas alive at the end.
	Survivors int
	// Rounds is the number of voting barriers.
	Rounds int
	// Replicas holds per-replica reports, including the exact seeds for
	// reproduction.
	Replicas []ReplicaReport
}

// chunk is one message from a replica to the voter.
type chunk struct {
	data []byte
	done bool
	err  error
}

// chunkWriter stages a replica's output and synchronizes with the voter
// at buffer boundaries.
type chunkWriter struct {
	buf    []byte
	size   int
	ch     chan chunk
	ack    chan bool
	killed bool
}

func (w *chunkWriter) Write(p []byte) (int, error) {
	if w.killed {
		return 0, ErrKilled
	}
	w.buf = append(w.buf, p...)
	for len(w.buf) >= w.size {
		out := make([]byte, w.size)
		copy(out, w.buf[:w.size])
		w.buf = w.buf[w.size:]
		w.ch <- chunk{data: out}
		if !<-w.ack {
			w.killed = true
			return 0, ErrKilled
		}
	}
	return len(p), nil
}

// finish sends the final (possibly empty) partial buffer.
func (w *chunkWriter) finish(progErr error) {
	if w.killed {
		return
	}
	w.ch <- chunk{data: w.buf, done: true, err: progErr}
	<-w.ack
}

// Run executes prog under replication and votes on its output.
func Run(prog Program, input []byte, opts Options) (*Result, error) {
	if opts.Replicas == 0 {
		opts.Replicas = 3
	}
	if opts.Replicas < 1 {
		return nil, fmt.Errorf("replicate: invalid replica count %d", opts.Replicas)
	}
	if opts.BufferSize == 0 {
		opts.BufferSize = DefaultBufferSize
	}
	k := opts.Replicas
	master := rng.NewSeeded(opts.Seed)
	if opts.Seed == 0 {
		master = rng.New()
	}

	res := &Result{
		Agreed:   true,
		Replicas: make([]ReplicaReport, k),
	}
	writers := make([]*chunkWriter, k)
	seeds := make([]uint64, k)
	for i := 0; i < k; i++ {
		seeds[i] = master.Next64() | 1 // never zero: zero means "draw entropy"
		res.Replicas[i].Seed = seeds[i]
		writers[i] = &chunkWriter{
			size: opts.BufferSize,
			ch:   make(chan chunk),
			ack:  make(chan bool),
		}
	}

	runReplica := func(i int) {
		w := writers[i]
		var progErr error
		func() {
			defer func() {
				if r := recover(); r != nil {
					progErr = fmt.Errorf("replica panic: %v", r)
				}
			}()
			h, err := core.New(core.Options{
				HeapSize:   opts.HeapSize,
				M:          opts.M,
				Seed:       seeds[i],
				RandomFill: true,
			})
			if err != nil {
				progErr = err
				return
			}
			in := make([]byte, len(input))
			copy(in, input)
			var clock int64
			ctx := &Context{
				Alloc:   h,
				Mem:     h.Mem(),
				Bounds:  h,
				Input:   in,
				Out:     w,
				Replica: i,
				Now: func() int64 {
					clock++
					return 1_150_000_000 + clock // fixed virtual epoch
				},
			}
			progErr = prog(ctx)
		}()
		if errors.Is(progErr, ErrKilled) {
			return // voter already knows
		}
		w.finish(progErr)
	}

	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			runReplica(i)
		}(i)
	}

	type state int
	const (
		running state = iota
		finished
		crashed
		killedState
	)
	states := make([]state, k)
	var output bytes.Buffer

	liveCount := func() int {
		n := 0
		for _, s := range states {
			if s == running {
				n++
			}
		}
		return n
	}

	for liveCount() > 0 {
		res.Rounds++
		// Barrier: collect one message from every running replica.
		msgs := make(map[int]chunk)
		for i := 0; i < k; i++ {
			if states[i] == running {
				msgs[i] = <-writers[i].ch
			}
		}
		// Crashed replicas are dropped; their output is discarded.
		voterIDs := make([]int, 0, len(msgs))
		for i, m := range msgs {
			if m.err != nil {
				states[i] = crashed
				res.Replicas[i].Err = m.err
				writers[i].ack <- true // release the goroutine
				continue
			}
			voterIDs = append(voterIDs, i)
		}
		if len(voterIDs) == 0 {
			break
		}
		// Group identical buffers.
		groups := make(map[string][]int)
		for _, i := range voterIDs {
			key := string(msgs[i].data) + fmt.Sprintf("|done=%v", msgs[i].done)
			groups[key] = append(groups[key], i)
		}
		var winner []int
		for _, ids := range groups {
			if len(ids) > len(winner) {
				winner = ids
			}
		}
		if len(groups) > 1 && len(winner) < 2 {
			// No two replicas agree: §3.2's uninitialized-read
			// detection. Terminate.
			res.UninitSuspected = true
			res.Agreed = false
			for _, i := range voterIDs {
				states[i] = killedState
				res.Replicas[i].Killed = true
				writers[i].ack <- false
			}
			break
		}
		if k > 1 && len(winner) < 2 {
			// A lone survivor has no one to agree with; stream its
			// output for availability but note the lost quorum.
			res.Agreed = false
		}
		output.Write(msgs[winner[0]].data)
		for _, i := range voterIDs {
			agreeing := false
			for _, w := range winner {
				if w == i {
					agreeing = true
					break
				}
			}
			if !agreeing {
				// Quorum held; the minority is killed and the run can
				// still count as agreed.
				states[i] = killedState
				res.Replicas[i].Killed = true
				writers[i].ack <- false
				continue
			}
			if msgs[i].done {
				states[i] = finished
				res.Replicas[i].Completed = true
			}
			writers[i].ack <- true
		}
	}

	wg.Wait()
	res.Output = output.Bytes()
	for _, s := range states {
		if s == finished {
			res.Survivors++
		}
	}
	if res.Survivors == 0 {
		res.Agreed = false
	}
	return res, nil
}
