package replicate

import (
	"bytes"
	"sync"
)

// The pipelined voting engine (DESIGN.md §8). Three changes over the
// sequential barrier protocol, none of which alter what gets committed:
//
//  1. Each replica hashes its buffer in its own goroutine and sends it
//     through a channel buffered to PipelineDepth, so a replica only
//     blocks once it has run PipelineDepth buffers ahead of the voter —
//     surviving replicas keep executing while the current round is
//     being voted, instead of stalling at a barrier.
//  2. The voter groups buffers by hash and byte-compares only within
//     hash-equal groups (adjudicate), so a round over k replicas that
//     all agree costs k hash lookups and one byte comparison chain
//     instead of k full concatenation-keyed map inserts.
//  3. Kills are delivered by closing a per-replica channel rather than
//     by a negative acknowledgement, because a killed replica may be
//     anywhere — computing, blocked on a full pipeline, or already in
//     its final handshake.
//
// Rounds are still adjudicated strictly in order: the voter takes the
// next buffer from every live replica's FIFO channel, so round r is
// always every replica's r-th buffer and the committed output is
// byte-identical to the sequential engine's for any replica count.
//
// How far a replica may run ahead is adaptive (open since PR 3): each
// writer carries a run-ahead window that resizes toward the voter lag
// the voter measures when it releases the chunk's credit — after the
// chunk's round adjudicates — within [1, 2×depth]. A
// replica the voter keeps waiting on (its queue is drained on arrival)
// shrinks toward a window of 1 — it is the laggard; buffering ahead of
// it buys nothing. A replica that keeps saturating its allowance while
// the voter is stuck on a slower sibling widens toward 2×depth, so the
// buffer memory migrates to exactly the replicas that can use it. The
// window gates only how far execution runs ahead of adjudication —
// round order, and therefore the committed output, is untouched
// (TestPipelinedMatchesSequential pins this against the sequential
// engine).

// pipeWriter stages a replica's output into a buffered channel. The
// voter kills the replica by closing kill; the writer observes the kill
// on its next write or while waiting for run-ahead credit. The channel
// capacity is the hard 2×depth bound, so once acquire grants credit the
// send itself never blocks.
type pipeWriter struct {
	buf    []byte
	size   int
	ch     chan chunk
	kill   chan struct{}
	killed bool

	mu       sync.Mutex
	cond     *sync.Cond
	inFlight int  // chunks granted credit and not yet consumed by the voter
	window   int  // adaptive run-ahead allowance, within [1, 2*base]
	base     int  // configured PipelineDepth
	dead     bool // kill observed; wakes acquire waiters
}

func newPipeWriter(size, depth int) *pipeWriter {
	w := &pipeWriter{
		size:   size,
		ch:     make(chan chunk, 2*depth),
		kill:   make(chan struct{}),
		window: depth,
		base:   depth,
	}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// acquire blocks until the replica holds run-ahead credit for one more
// chunk (or the voter killed it — false). This is the only place a
// healthy writer waits: the channel itself never fills.
func (w *pipeWriter) acquire() bool {
	w.mu.Lock()
	for w.inFlight >= w.window && !w.dead {
		w.cond.Wait()
	}
	ok := !w.dead
	if ok {
		w.inFlight++
	}
	w.mu.Unlock()
	return ok
}

// release is the voter half of the window: called once per consumed
// chunk, it returns the credit and steps the window one unit toward the
// lag the voter just observed (the chunks still queued on arrival). A
// writer found saturated widens — the voter was the laggard here; a
// writer found drained narrows — the replica was. Returns the new
// window for Result.PipelineDepthPeak.
func (w *pipeWriter) release() int {
	w.mu.Lock()
	w.inFlight--
	switch lag := w.inFlight; {
	case lag+1 >= w.window:
		if w.window < 2*w.base {
			w.window++
		}
	case w.window > lag+1:
		w.window--
	}
	win := w.window
	w.cond.Signal()
	w.mu.Unlock()
	return win
}

// markDead wakes any acquire waiter after a kill; the closed kill
// channel covers the writer's other blocking points.
func (w *pipeWriter) markDead() {
	w.mu.Lock()
	w.dead = true
	w.cond.Broadcast()
	w.mu.Unlock()
}

func (w *pipeWriter) Write(p []byte) (int, error) {
	if w.killed {
		return 0, ErrKilled
	}
	select {
	case <-w.kill:
		w.killed = true
		return 0, ErrKilled
	default:
	}
	w.buf = append(w.buf, p...)
	for len(w.buf) >= w.size {
		out := make([]byte, w.size)
		copy(out, w.buf[:w.size])
		w.buf = w.buf[w.size:]
		if !w.acquire() {
			w.killed = true
			return 0, ErrKilled
		}
		w.ch <- chunk{data: out, hash: chunkHash(out, false)}
	}
	return len(p), nil
}

// finish sends the final (possibly empty) partial buffer; unlike the
// sequential writer there is no acknowledgement to wait for — the
// replica goroutine exits as soon as the buffer is queued.
func (w *pipeWriter) finish(progErr error) {
	if w.killed {
		return
	}
	if !w.acquire() {
		return
	}
	w.ch <- chunk{data: w.buf, hash: chunkHash(w.buf, true), done: true, err: progErr}
}

// runPipelined drives a replicated run through the pipelined voter,
// filling res (everything except Survivors, which Run derives from the
// per-replica reports). When Options.MaxRestarts is positive, each kill
// of a divergent replica is followed by a restart attempt: a fresh
// replica with a seed from nextSeed re-executes the program over the
// broadcast input, the voter replays its output against the committed
// prefix, and on a byte-exact match the replacement joins the next
// voting round — restoring the quorum, as §5 suggests for long-running
// services.
func runPipelined(prog Program, input []byte, opts Options, seeds []uint64, nextSeed func() uint64, res *Result) {
	k := opts.Replicas
	writers := make([]*pipeWriter, 0, k+opts.MaxRestarts)
	reps := make([]*ReplicaReport, 0, k+opts.MaxRestarts)
	states := make([]replicaState, 0, k+opts.MaxRestarts)
	var wg sync.WaitGroup

	// spawn starts one replica goroutine. Reports are individually heap
	// allocated because restarts grow the slices mid-run; res.Replicas
	// is assembled from them once every goroutine has unwound.
	spawn := func(seed uint64, restarted bool) int {
		i := len(writers)
		w := newPipeWriter(opts.BufferSize, opts.PipelineDepth)
		rep := &ReplicaReport{Seed: seed, Restarted: restarted}
		writers = append(writers, w)
		reps = append(reps, rep)
		states = append(states, rsRunning)
		wg.Add(1)
		go func() {
			defer wg.Done()
			runReplica(i, prog, input, opts, seed, w, rep)
		}()
		return i
	}
	for i := 0; i < k; i++ {
		spawn(seeds[i], false)
	}

	var output bytes.Buffer
	restarts := 0

	// Live telemetry: nil-safe counters (a nil registry yields nil
	// counters, and nil *obs.Counter methods are no-ops), plus a gauge
	// over the result's depth peak so a mid-run scrape sees the widest
	// window earned so far.
	ctrRounds := opts.Obs.Counter("replicate.rounds")
	ctrKills := opts.Obs.Counter("replicate.kills")
	ctrRestarts := opts.Obs.Counter("replicate.restarts")
	opts.Obs.Gauge("replicate.pipeline_depth_peak", func() float64 {
		return float64(res.PipelineDepthPeak)
	})

	kill := func(i int) {
		states[i] = rsKilled
		reps[i].Killed = true
		ctrKills.Inc()
		close(writers[i].kill)
		writers[i].markDead()
	}

	// recv consumes replica i's next chunk; release returns its
	// run-ahead credit and folds the window into the result's peak.
	// Credit is released only after the chunk's round adjudicates, and
	// only for survivors: a loser never regains credit for the round
	// that kills it, so a replica that diverges blocks in acquire within
	// window+1 buffers of the divergence and markDead unwinds it with
	// ErrKilled — the same observation bound as a fixed-depth pipeline.
	recv := func(i int) chunk { return <-writers[i].ch }
	release := func(i int) {
		if win := writers[i].release(); win > res.PipelineDepthPeak {
			res.PipelineDepthPeak = win
		}
	}

	// restart spawns and catches up one replacement replica, retrying
	// (within the budget) if a replacement itself diverges from the
	// committed prefix or crashes during replay. Restart is only
	// attempted while the committed output is buffer-aligned: a partial
	// committed chunk means some replica already finished, so the run is
	// ending and the replayed stream could not be re-chunked to match.
	restart := func() {
		for restarts < opts.MaxRestarts {
			if output.Len()%opts.BufferSize != 0 {
				return
			}
			restarts++
			ctrRestarts.Inc()
			idx := spawn(nextSeed(), true)
			committed := output.Bytes()
			ok := true
			for off := 0; off < len(committed); off += opts.BufferSize {
				m := recv(idx)
				if m.err != nil {
					states[idx] = rsCrashed
					reps[idx].Err = m.err
					ok = false
					break
				}
				if m.done || !bytes.Equal(m.data, committed[off:off+opts.BufferSize]) {
					// The replacement's replay diverged: it is as useless
					// as the replica it was meant to replace.
					kill(idx)
					ok = false
					break
				}
				release(idx)
			}
			if ok {
				return // caught up; joins the next round as a voter
			}
		}
	}

	for liveCount(states) > 0 {
		res.Rounds++
		ctrRounds.Inc()
		// Round r is every live replica's r-th buffer: channels are
		// FIFO, and exactly one buffer per replica is consumed per
		// round, so the receive below blocks only on replicas that have
		// not yet produced this round's buffer — the others were
		// already queued while earlier rounds were being voted. A
		// caught-up replacement's next buffer is exactly the next
		// round's, by construction of the replay.
		msgs := make(map[int]chunk)
		var ids []int
		for i := 0; i < len(writers); i++ {
			if states[i] != rsRunning {
				continue
			}
			m := recv(i)
			if m.err != nil {
				// Crashed replicas are dropped and their final partial
				// buffer is discarded. Full buffers the replica queued
				// before crashing belong to earlier rounds (the err
				// chunk is FIFO-last) and were adjudicated normally.
				states[i] = rsCrashed
				reps[i].Err = m.err
				continue
			}
			msgs[i] = m
			ids = append(ids, i)
		}
		if len(ids) == 0 {
			break
		}
		d := adjudicate(ids, msgs, k)
		if d.noAgreement {
			// All live replicas disagree: an uninitialized read, not a
			// killable minority — terminating, not restarting, is the
			// detection (§3.2).
			res.UninitSuspected = true
			res.Agreed = false
			for _, i := range d.losers {
				kill(i)
			}
			break
		}
		if d.quorumLost {
			res.Agreed = false
		}
		output.Write(msgs[d.winner[0]].data)
		killed := len(d.losers)
		for _, i := range d.losers {
			kill(i)
		}
		for _, i := range d.winner {
			release(i)
			if msgs[i].done {
				states[i] = rsFinished
				reps[i].Completed = true
			}
		}
		for ; killed > 0; killed-- {
			restart()
		}
	}

	wg.Wait()
	res.Output = output.Bytes()
	res.Replicas = make([]ReplicaReport, len(reps))
	for i, r := range reps {
		res.Replicas[i] = *r
	}
}
